#!/usr/bin/env bash
# Checks that every relative markdown link in the repo's *.md files
# resolves to an existing file or directory. External URLs, mailto links
# and in-page anchors are skipped. Exit 1 (after listing every offender)
# if any link is broken.
set -u
cd "$(dirname "$0")/.."

fail=0
while IFS= read -r file; do
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"   # strip in-page anchor
    path="${path%% *}"     # strip optional markdown link title
    [ -z "$path" ] && continue
    dir=$(dirname "$file")
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "broken link in $file: ($target)"
      fail=1
    fi
  done < <(grep -o ']([^)]*)' "$file" 2>/dev/null | sed 's/^](//; s/)$//')
done < <(find . -name '*.md' -not -path './build/*' -not -path './.git/*')

if [ "$fail" -eq 0 ]; then
  echo "check_docs: all relative markdown links resolve"
fi
exit "$fail"
