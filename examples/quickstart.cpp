// Quickstart: the 5-minute tour of the library.
//
// Generates a synthetic SDSS-like color catalog, builds the three spatial
// indexes of the paper (layered grid, kd-tree, sampled Voronoi), and runs
// one query of each kind:
//   * an adaptive sample query ("give me ~1000 points of this box"),
//   * a polyhedron query (a color-cut WHERE clause),
//   * a k-nearest-neighbor search.
//
// Build & run:  ./examples/quickstart

#include <cmath>
#include <cstdio>

#include "core/kdtree.h"
#include "core/knn.h"
#include "core/layered_grid.h"
#include "core/voronoi_index.h"
#include "sdss/catalog.h"

using namespace mds;

int main() {
  // 1. A 100K-object synthetic catalog (5 magnitudes per object).
  CatalogConfig config;
  config.num_objects = 100000;
  config.seed = 2007;
  Catalog catalog = GenerateCatalog(config);
  std::printf("catalog: %zu objects in %zu-D magnitude space\n",
              catalog.size(), catalog.colors.dim());

  // 2. Index it three ways.
  auto grid = LayeredGridIndex::Build(&catalog.colors);
  auto tree = KdTreeIndex::Build(&catalog.colors);
  VoronoiIndexConfig vc;
  vc.num_seeds = 512;
  auto voronoi = VoronoiIndex::Build(&catalog.colors, vc);
  if (!grid.ok() || !tree.ok() || !voronoi.ok()) {
    std::printf("index build failed\n");
    return 1;
  }
  std::printf("indexes: grid %u layers | kd-tree %u leaves | voronoi %u cells\n",
              grid->num_layers(), tree->num_leaves(), voronoi->num_seeds());

  // 3. Adaptive sample query: ~1000 points of the central region,
  //    following the underlying density (what the visualizer asks for).
  Box region = grid->bounding_box();
  for (size_t j = 0; j < region.dim(); ++j) {
    double center = 0.5 * (region.lo(j) + region.hi(j));
    double half = 0.25 * (region.hi(j) - region.lo(j));
    region.set_lo(j, center - half);
    region.set_hi(j, center + half);
  }
  std::vector<uint64_t> sample;
  GridQueryStats grid_stats;
  Status st = grid->SampleQuery(region, 1000, &sample, &grid_stats);
  std::printf("sample query: %zu points (scanned %llu) -> %s\n", sample.size(),
              (unsigned long long)grid_stats.points_scanned,
              st.ToString().c_str());

  // 4. Polyhedron query: "quasar candidates" — UV-excess color cuts, the
  //    kind of WHERE clause in Figure 2. Halfspace = {x : n.x <= b}.
  Polyhedron cuts(kNumBands);
  // u - g < 0.6  (UV excess)
  cuts.AddHalfspace({1, -1, 0, 0, 0}, 0.6);
  // g - r < 0.5  (blue)
  cuts.AddHalfspace({0, 1, -1, 0, 0}, 0.5);
  // r < 20.5     (bright enough)
  cuts.AddHalfspace({0, 0, 1, 0, 0}, 20.5);
  std::vector<uint64_t> candidates;
  KdQueryStats kd_stats;
  tree->QueryPolyhedron(cuts, &candidates, &kd_stats);
  size_t true_quasars = 0;
  for (uint64_t id : candidates) {
    if (catalog.classes[id] == SpectralClass::kQuasar) ++true_quasars;
  }
  std::printf(
      "polyhedron query: %zu candidates (%zu true quasars, %.0f%% purity); "
      "%llu/%u leaves ranged, %llu points tested\n",
      candidates.size(), true_quasars,
      candidates.empty() ? 0.0 : 100.0 * true_quasars / candidates.size(),
      (unsigned long long)kd_stats.leaves_full, tree->num_leaves(),
      (unsigned long long)kd_stats.points_tested);

  // 5. k-NN: the 5 most similar objects to the first quasar, via the
  //    paper's boundary-point region-growing search (§3.3).
  for (uint64_t i = 0; i < catalog.size(); ++i) {
    if (catalog.classes[i] != SpectralClass::kQuasar) continue;
    KdKnnSearcher searcher(&*tree);
    KnnStats knn_stats;
    auto neighbors = searcher.BoundaryGrow(catalog.colors.point(i), 6,
                                           &knn_stats);
    std::printf("nearest neighbors of object %llu (a quasar):\n",
                (unsigned long long)i);
    const char* names[] = {"star", "galaxy", "quasar", "outlier"};
    for (const Neighbor& n : neighbors) {
      if (n.id == i) continue;  // itself
      std::printf("  obj %-7llu dist=%.3f class=%s\n",
                  (unsigned long long)n.id, std::sqrt(n.squared_distance),
                  names[static_cast<int>(catalog.classes[n.id])]);
    }
    std::printf("  (examined %llu of %u leaves)\n",
                (unsigned long long)knn_stats.leaves_examined,
                tree->num_leaves());
    break;
  }

  // 6. Voronoi point location by directed walk (§3.4).
  double probe[kNumBands];
  QuasarLocus(1.2, 0.0, probe);
  WalkStats walk;
  uint32_t cell = voronoi->WalkLocate(probe, 0, &walk);
  std::printf("directed walk located cell %u in %llu steps (exact: %s)\n",
              cell, (unsigned long long)walk.steps,
              cell == voronoi->NearestSeed(probe) ? "yes" : "no");
  return 0;
}
