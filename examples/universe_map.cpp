// Scenario: Figure 14 — "Visualization of the large scale structure of the
// Universe ... Each point represents a galaxy, and additional structure,
// clusters of galaxies are clearly visible."
//
// A synthetic redshift survey (ra, dec, z with galaxy clusters and their
// Finger-of-God elongation) is converted to 3-D positions via Hubble's
// law, indexed with the layered grid, and explored by the adaptive
// visualization pipeline: wide view first, then a zoom into the richest
// cluster. Frames land in universe_map_<k>.ppm.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/layered_grid.h"
#include "sdss/sky.h"
#include "viz/app.h"
#include "viz/producers.h"
#include "viz/renderer.h"

using namespace mds;

int main() {
  SkyCatalogConfig config;
  config.num_galaxies = 500000;
  SkyCatalog sky = GenerateSkyCatalog(config);
  std::printf("survey: %zu galaxies, %u clusters, z <= %.2f\n", sky.size(),
              config.num_clusters, config.max_redshift);

  auto grid = LayeredGridIndex::Build(&sky.positions);
  if (!grid.ok()) return 1;

  VisualizationApp app;
  app.AddPipeline(std::make_unique<PointCloudProducer>(&*grid, false));
  auto renderer = std::make_unique<PpmRenderer>(600, 600);
  PpmRenderer* renderer_ptr = renderer.get();
  app.SetConsumer(std::move(renderer));
  if (!app.Start().ok()) return 1;
  auto* cloud = dynamic_cast<PointCloudProducer*>(app.producer(0));

  // Find the richest cluster (most members) to aim the zoom at.
  std::vector<uint64_t> members(config.num_clusters, 0);
  for (int32_t id : sky.cluster_id) {
    if (id >= 0) ++members[id];
  }
  uint32_t richest = static_cast<uint32_t>(
      std::max_element(members.begin(), members.end()) - members.begin());
  // Cluster centroid in Cartesian space.
  double centroid[3] = {0, 0, 0};
  uint64_t count = 0;
  for (uint64_t i = 0; i < sky.size(); ++i) {
    if (sky.cluster_id[i] != static_cast<int32_t>(richest)) continue;
    for (int j = 0; j < 3; ++j) centroid[j] += sky.positions.coord(i, j);
    ++count;
  }
  for (double& c : centroid) c /= count;
  std::printf("zoom target: cluster %u with %llu members\n", richest,
              (unsigned long long)count);

  Camera camera = cloud->SuggestInitial();
  camera.detail = 100000;  // "displaying 500K points every frame" scaled
  for (int step = 0; step < 6; ++step) {
    app.SetCamera(camera);
    app.DrainFrames();
    char path[64];
    std::snprintf(path, sizeof(path), "universe_map_%d.ppm", step);
    Status st = renderer_ptr->WritePpm(path);
    auto geometry = cloud->GetOutput();
    std::printf("step %d: %zu galaxies in view, frame %s (coverage %.1f%%)\n",
                step, geometry != nullptr ? geometry->points.size() : 0,
                st.ok() ? path : st.ToString().c_str(),
                100.0 * renderer_ptr->CoverageFraction());
    // Shrink the view around the cluster centroid.
    Camera next = camera;
    for (int j = 0; j < 3; ++j) {
      double half = 0.5 * (camera.view.hi(j) - camera.view.lo(j)) * 0.45;
      next.view.set_lo(j, centroid[j] - half);
      next.view.set_hi(j, centroid[j] + half);
    }
    camera = next;
  }
  std::printf("index fetches %llu, cache hits %llu\n",
              (unsigned long long)cloud->db_fetches(),
              (unsigned long long)cloud->cache_hits());
  app.Stop();
  return 0;
}
