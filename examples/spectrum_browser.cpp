// Scenario: the §4.2 spectral similarity workflow (Figures 9-10).
//
// Synthesizes an archive of galaxy/quasar spectra (3000 samples each),
// fits the Karhunen-Loeve transform, keeps 5 principal components, and
// answers "show me objects like this one" queries through the same kd-tree
// k-NN machinery the magnitude space uses. Finishes with the
// simulation-matching exercise: recover physical parameters of an
// "observed" spectrum from its closest synthetic match.

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "spectra/similarity.h"
#include "spectra/spectrum_generator.h"

using namespace mds;

int main() {
  SpectrumGrid grid;  // 3000 samples, 3800..9200 Angstrom, like SDSS
  SpectrumGenerator generator(grid);
  Rng rng(2007);

  const char* names[] = {"elliptical", "spiral", "starburst", "quasar"};
  std::vector<std::vector<float>> archive;
  std::vector<SpectrumParams> params;
  for (size_t c = 0; c < kNumSpectrumClasses; ++c) {
    for (int i = 0; i < 250; ++i) {
      SpectrumParams p =
          generator.RandomParams(static_cast<SpectrumClass>(c), rng);
      archive.push_back(generator.GenerateNoisy(p, 0.02, rng));
      params.push_back(p);
    }
  }
  std::printf("archive: %zu spectra x %zu samples\n", archive.size(),
              grid.num_samples);

  std::vector<std::vector<float>> training(archive.begin(),
                                           archive.begin() + 400);
  auto space = SpectralFeatureSpace::Fit(training, 5);
  if (!space.ok()) {
    std::printf("KL fit failed: %s\n", space.status().ToString().c_str());
    return 1;
  }
  std::printf("Karhunen-Loeve transform: 5 components carry %.1f%% of the "
              "variance (indexing all %zu dimensions 'would be "
              "prohibitive')\n",
              100.0 * space->ExplainedVarianceRatio(), grid.num_samples);

  auto search = SpectralSimilaritySearch::Build(&*space, archive);
  if (!search.ok()) return 1;

  // "The top figure is a typical elliptic galaxy..." — query with a fresh
  // elliptical and a fresh quasar, print their most similar archive hits.
  for (SpectrumClass cls : {SpectrumClass::kElliptical, SpectrumClass::kQuasar}) {
    SpectrumParams truth = generator.RandomParams(cls, rng);
    std::vector<float> query = generator.GenerateNoisy(truth, 0.02, rng);
    auto hits = search->FindSimilar(query, 3);
    std::printf("\nquery: %s (z=%.2f age=%.2f)\n",
                names[static_cast<int>(cls)], truth.redshift, truth.age);
    for (const Neighbor& h : hits) {
      const SpectrumParams& m = params[h.id];
      std::printf("  match #%llu: %s z=%.2f age=%.2f  (feature dist %.3f)\n",
                  (unsigned long long)h.id, names[static_cast<int>(m.cls)],
                  m.redshift, m.age, std::sqrt(h.squared_distance));
    }
  }

  // Reverse engineering via simulations: average parameter recovery error
  // over 50 noisy observations.
  double dz = 0.0, dage = 0.0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    SpectrumParams truth = generator.RandomParams(
        static_cast<SpectrumClass>(t % kNumSpectrumClasses), rng);
    std::vector<float> observed = generator.GenerateNoisy(truth, 0.03, rng);
    auto hits = search->FindSimilar(observed, 1);
    dz += std::abs(params[hits[0].id].redshift - truth.redshift);
    dage += std::abs(params[hits[0].id].age - truth.age);
  }
  std::printf("\nsimulation matching over %d observations: |dz|=%.3f "
              "|dage|=%.2f\n",
              trials, dz / trials, dage / trials);
  return 0;
}
