// Scenario: the §4.1 photometric-redshift pipeline, end to end.
//
// 1M galaxies with 5-band photometry; ~1% have spectroscopic redshifts
// (the reference set). The k-NN local polynomial estimator assigns
// redshifts to everything else; the mis-calibrated template-fitting
// baseline shows why the paper's method halves the error. Also writes
// `photoz_scatter.csv` with (true_z, knn_z, template_z) rows — the data
// behind Figures 7 and 8.

#include <cstdio>

#include "common/timer.h"

#include "photoz/knn_photoz.h"
#include "photoz/template_fitting.h"
#include "sdss/catalog.h"

using namespace mds;

int main() {
  CatalogConfig config;
  config.num_objects = 1000000;
  config.seed = 41;
  config.star_fraction = 0.0;
  config.galaxy_fraction = 1.0;
  config.quasar_fraction = 0.0;
  Catalog catalog = GenerateCatalog(config);

  ReferenceSplit split = SplitReferenceSet(catalog, 0.01, 42);
  PointSet ref_colors(kNumBands, 0);
  std::vector<float> ref_z;
  for (uint64_t id : split.reference) {
    ref_colors.Append(catalog.colors.point(id));
    ref_z.push_back(catalog.redshifts[id]);
  }
  std::printf("catalog: %zu galaxies; reference set with spectro-z: %zu\n",
              catalog.size(), ref_colors.size());

  auto knn = KnnPhotoZEstimator::Build(&ref_colors, &ref_z);
  auto tmpl = TemplateFittingEstimator::Build();
  if (!knn.ok() || !tmpl.ok()) {
    std::printf("estimator build failed\n");
    return 1;
  }

  std::FILE* csv = std::fopen("photoz_scatter.csv", "w");
  if (csv != nullptr) std::fprintf(csv, "true_z,knn_z,template_z\n");

  PhotoZScorer knn_scorer, tmpl_scorer;
  WallTimer timer;
  uint64_t estimated = 0;
  for (size_t idx = 0; idx < split.unknown.size(); idx += 40) {
    uint64_t id = split.unknown[idx];
    const float* colors = catalog.colors.point(id);
    double knn_z = knn->Estimate(colors).redshift;
    double tmpl_z = tmpl->Estimate(colors);
    knn_scorer.Add(knn_z, catalog.redshifts[id]);
    tmpl_scorer.Add(tmpl_z, catalog.redshifts[id]);
    if (csv != nullptr && estimated < 20000) {
      std::fprintf(csv, "%.4f,%.4f,%.4f\n", catalog.redshifts[id], knn_z,
                   tmpl_z);
    }
    ++estimated;
  }
  double secs = timer.Seconds();
  if (csv != nullptr) std::fclose(csv);

  PhotoZEvaluation k = knn_scorer.Finish();
  PhotoZEvaluation t = tmpl_scorer.Finish();
  std::printf("estimated %llu objects in %.1fs (%.3f ms/object, both "
              "methods)\n",
              (unsigned long long)estimated, secs, 1e3 * secs / estimated);
  std::printf("  template fitting : rms=%.4f bias=%+.4f   (Figure 7)\n",
              t.rms_error, t.bias);
  std::printf("  k-NN poly fit    : rms=%.4f bias=%+.4f   (Figure 8)\n",
              k.rms_error, k.bias);
  std::printf("  error reduction  : %.0f%% (paper: >50%%)\n",
              100.0 * (1.0 - k.rms_error / t.rms_error));
  std::printf("scatter data written to photoz_scatter.csv\n");
  return 0;
}
