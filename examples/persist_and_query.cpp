// Scenario: the out-of-core lifecycle. Build a database FILE holding the
// magnitude table (clustered in kd order) plus the serialized kd-tree,
// close everything, reopen the file cold with a small buffer pool, and
// answer queries while reporting physical page I/O — the regime the
// paper's 2 TB archive lives in, where indexes exist precisely because the
// data does not fit in memory.

#include <cstdio>
#include <filesystem>

#include "core/access_path.h"
#include "core/index_io.h"
#include "core/point_table.h"
#include "sdss/catalog.h"
#include "storage/pager.h"

using namespace mds;

int main() {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mds_demo.db").string();
  CatalogConfig config;
  config.num_objects = 400000;
  config.seed = 77;
  Catalog catalog = GenerateCatalog(config);

  PageId index_head = kInvalidPageId;
  uint64_t table_pages = 0;

  // --- Phase 1: create the database file. -------------------------------
  {
    auto pager = FilePager::Create(path);
    if (!pager.ok()) {
      std::printf("create failed: %s\n", pager.status().ToString().c_str());
      return 1;
    }
    BufferPool pool(pager->get(), 1024);
    auto tree = KdTreeIndex::Build(&catalog.colors);
    if (!tree.ok()) return 1;
    auto table =
        MaterializePointTable(&pool, catalog.colors, tree->clustered_order());
    if (!table.ok()) return 1;
    table_pages = table->num_pages();
    auto head = IndexIo::SaveKdTree(&pool, *tree);
    if (!head.ok()) return 1;
    index_head = *head;
    if (!pool.FlushAll().ok()) return 1;
    std::printf("created %s: %llu table pages + %llu total pages "
                "(index chain head at page %llu)\n",
                path.c_str(), (unsigned long long)table_pages,
                (unsigned long long)pager->get()->NumPages(),
                (unsigned long long)index_head);
  }

  // --- Phase 2: reopen cold and query. ----------------------------------
  {
    auto pager = FilePager::Open(path);
    if (!pager.ok()) return 1;
    // A deliberately small pool: 64 pages = 512 KB against a ~15 MB file —
    // the out-of-core regime.
    BufferPool pool(pager->get(), 64);
    CounterSnapshot before_load = pool.Snapshot();
    auto tree = IndexIo::LoadKdTree(&pool, index_head, &catalog.colors);
    if (!tree.ok()) {
      std::printf("index load failed: %s\n",
                  tree.status().ToString().c_str());
      return 1;
    }
    uint64_t load_reads = pool.Delta(before_load).physical_reads;
    std::printf("reopened cold; kd-tree restored (%u leaves) with %llu "
                "physical page reads\n",
                tree->num_leaves(), (unsigned long long)load_reads);

    // Rebind the table over its original page range (pages 0..N-1 were
    // written first by MaterializePointTable).
    std::vector<PageId> table_page_ids(table_pages);
    for (uint64_t p = 0; p < table_pages; ++p) table_page_ids[p] = p;
    auto table = Table::Attach(&pool, PointTableSchema(kNumBands),
                               std::move(table_page_ids), catalog.size());
    if (!table.ok()) {
      std::printf("table attach failed: %s\n",
                  table.status().ToString().c_str());
      return 1;
    }

    Polyhedron cuts(kNumBands);
    cuts.AddHalfspace({1, -1, 0, 0, 0}, 0.6);   // u - g < 0.6
    cuts.AddHalfspace({0, 1, -1, 0, 0}, 0.5);   // g - r < 0.5
    cuts.AddHalfspace({0, 0, 1, 0, 0}, 20.0);   // r < 20

    CounterSnapshot before_kd = pool.Snapshot();
    KdTreePath kd_path(BindPointTable(&*table, kNumBands), *tree, cuts);
    auto kd_result = ExecuteAccessPath(&kd_path);
    if (!kd_result.ok()) return 1;
    uint64_t kd_reads = pool.Delta(before_kd).physical_reads;

    CounterSnapshot before_scan = pool.Snapshot();
    FullScanPath scan_path(BindPointTable(&*table, kNumBands), cuts);
    auto scan_result = ExecuteAccessPath(&scan_path);
    if (!scan_result.ok()) return 1;
    uint64_t scan_reads = pool.Delta(before_scan).physical_reads;

    std::printf("query via kd-tree : %zu rows, %llu physical page reads\n",
                kd_result->objids.size(), (unsigned long long)kd_reads);
    std::printf("query via scan    : %zu rows, %llu physical page reads "
                "(the whole %llu-page table)\n",
                scan_result->objids.size(), (unsigned long long)scan_reads,
                (unsigned long long)table_pages);
    std::printf("I/O saved by the index: %.1fx\n",
                static_cast<double>(scan_reads) /
                    static_cast<double>(std::max<uint64_t>(kd_reads, 1)));
  }
  std::filesystem::remove(path);
  return 0;
}
