// Scenario: the §5 adaptive visualization tool, headless.
//
// Builds the visualization pipeline of Figure 11 over the first three
// principal components of the magnitude table: a threaded point-cloud
// producer backed by the layered grid, a kd-box producer, and the PPM
// renderer as consumer. A scripted camera flies into the dense core and
// writes a frame per stop (sky_frame_<step>.ppm) — the Figure 14/15
// experience without a GPU.

#include <cstdio>
#include <memory>

#include "core/kdtree.h"
#include "core/layered_grid.h"
#include "linalg/pca.h"
#include "sdss/catalog.h"
#include "viz/app.h"
#include "viz/producers.h"
#include "viz/renderer.h"

using namespace mds;

int main() {
  CatalogConfig config;
  config.num_objects = 500000;
  config.seed = 7;
  Catalog catalog = GenerateCatalog(config);

  // First 3 principal components — what the paper's client displays.
  Matrix data(std::min<size_t>(catalog.size(), 50000), kNumBands);
  for (size_t i = 0; i < data.rows(); ++i) {
    const float* p = catalog.colors.point(i);
    for (size_t j = 0; j < kNumBands; ++j) data(i, j) = p[j];
  }
  auto pca = Pca::Fit(data, 3);
  if (!pca.ok()) return 1;
  PointSet projected(3, 0);
  projected.Reserve(catalog.size());
  double row[kNumBands], out[3];
  for (size_t i = 0; i < catalog.size(); ++i) {
    const float* p = catalog.colors.point(i);
    for (size_t j = 0; j < kNumBands; ++j) row[j] = p[j];
    pca->TransformPoint(row, 3, out);
    projected.Append(out);
  }

  auto grid = LayeredGridIndex::Build(&projected);
  auto tree = KdTreeIndex::Build(&projected);
  if (!grid.ok() || !tree.ok()) return 1;
  std::printf("indexed %zu points (grid: %u layers, kd: %u leaves)\n",
              projected.size(), grid->num_layers(), tree->num_leaves());

  VisualizationApp app;
  // Multi-threaded producer, as in §5.1: camera events go to a worker,
  // GetOutput never blocks the frame loop.
  app.AddPipeline(std::make_unique<PointCloudProducer>(&*grid,
                                                       /*threaded=*/true));
  app.AddPipeline(std::make_unique<KdBoxProducer>(&*tree, 300,
                                                  /*threaded=*/false));
  auto renderer = std::make_unique<PpmRenderer>(480, 480);
  PpmRenderer* renderer_ptr = renderer.get();
  app.SetConsumer(std::move(renderer));
  if (!app.Start().ok()) return 1;

  auto* cloud = dynamic_cast<PointCloudProducer*>(app.producer(0));
  Camera camera = cloud->SuggestInitial();
  camera.detail = 50000;

  for (int step = 0; step < 6; ++step) {
    app.SetCamera(camera);
    auto report = app.DrainFrames();
    char path[64];
    std::snprintf(path, sizeof(path), "sky_frame_%d.ppm", step);
    Status st = renderer_ptr->WritePpm(path);
    std::printf(
        "step %d: view volume %.3g, %llu primitives, %u productions -> %s\n",
        step, camera.view.Volume(), (unsigned long long)report.primitives,
        report.outputs_collected, st.ok() ? path : st.ToString().c_str());
    camera = ZoomCamera(camera, 0.5);
  }
  std::printf("index fetches: %llu, cache hits: %llu\n",
              (unsigned long long)cloud->db_fetches(),
              (unsigned long long)cloud->cache_hits());
  app.Stop();
  return 0;
}
