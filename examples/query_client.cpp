// query_client — walkthrough of the mdsd wire client.
//
// Run the server in one terminal:
//   ./build/src/server/mdsd --quick
//   mdsd: serving 100000 rows on 127.0.0.1:PORT
//
// then point this example at it:
//   ./build/examples/query_client PORT
//
// With no arguments it starts an in-process server over a small dataset,
// runs the same walkthrough against it, and shuts it down — so the
// example is also a self-contained smoke test (CI runs it both ways).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "sdss/catalog.h"
#include "server/client.h"
#include "server/dataset.h"
#include "server/server.h"

using namespace mds;

namespace {

Box LocusBox(double half_width) {
  double mags[kNumBands];
  StellarLocus(0.5, 0.0, mags);
  std::vector<double> lo(mags, mags + kNumBands);
  std::vector<double> hi = lo;
  for (size_t j = 0; j < kNumBands; ++j) {
    lo[j] -= half_width;
    hi[j] += half_width;
  }
  return Box(lo, hi);
}

int Walkthrough(uint16_t port) {
  // 1. Connect. One QueryClient = one connection = one request at a time.
  auto client = QueryClient::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  // 2. Health: what is this server serving?
  auto health = client->Health();
  if (!health.ok()) {
    std::fprintf(stderr, "health failed: %s\n",
                 health.status().ToString().c_str());
    return 1;
  }
  std::printf("connected: %llu rows, dim %u%s\n",
              (unsigned long long)health->served_rows, health->dim,
              health->draining ? " (draining)" : "");

  // 3. Count, then fetch, the stars near the stellar locus.
  const Box box = LocusBox(0.8);
  auto count = client->PointCount(box);
  if (!count.ok()) {
    std::fprintf(stderr, "count failed: %s\n",
                 count.status().ToString().c_str());
    return 1;
  }
  std::printf("locus box holds %llu objects\n", (unsigned long long)*count);

  auto rows = client->BoxQuery(box, /*limit=*/5);
  if (!rows.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 rows.status().ToString().c_str());
    return 1;
  }
  std::printf("box query via %s: %llu rows, %llu pages fetched; first ids:",
              rows->chosen_path.c_str(), (unsigned long long)rows->row_count,
              (unsigned long long)rows->pages_fetched);
  for (int64_t id : rows->objids) std::printf(" %lld", (long long)id);
  std::printf("\n");

  // 4. Per-request options: planner hints, deadlines, degraded reads.
  QueryClient::Options opts;
  opts.force_full_scan = true;  // compare the clustered scan's I/O
  opts.deadline_ms = 10000;     // server drops it if it can't run in time
  auto scan = client->BoxQuery(box, 0, opts);
  if (scan.ok()) {
    std::printf("forced %s: %llu rows scanned, %llu pages fetched\n",
                scan->chosen_path.c_str(),
                (unsigned long long)scan->rows_scanned,
                (unsigned long long)scan->pages_fetched);
  }

  // 5. kNN: the 3 nearest stored objects to a locus point.
  double mags[kNumBands];
  StellarLocus(0.3, 0.0, mags);
  auto knn = client->Knn(std::vector<double>(mags, mags + kNumBands), 3);
  if (!knn.ok()) {
    std::fprintf(stderr, "knn failed: %s\n", knn.status().ToString().c_str());
    return 1;
  }
  std::printf("3 nearest neighbors:");
  for (const auto& n : knn->neighbors) {
    std::printf(" (id %lld, d2 %.4f)", (long long)n.id, n.squared_distance);
  }
  std::printf("\n");

  // 6. TABLESAMPLE: a reproducible 10% page sample, TOP(5), in the box.
  auto sample = client->TableSample(box, 10.0, 5, /*seed=*/42);
  if (sample.ok()) {
    std::printf("tablesample(10%%) TOP(5):");
    for (int64_t id : sample->objids) std::printf(" %lld", (long long)id);
    std::printf("\n");
  }

  // 7. Partial results: against an mdsc coordinator, allow_partial lets
  // the reply degrade to the surviving shards when some are down (the
  // reply says how many answered). A plain mdsd always owns 100% of the
  // data, so it ignores the flag and reports no shard coverage.
  QueryClient::Options partial_opts;
  partial_opts.allow_partial = true;
  partial_opts.deadline_ms = 10000;
  auto best_effort = client->BoxQuery(box, /*limit=*/5, partial_opts);
  if (best_effort.ok()) {
    if (best_effort->shards_total == 0) {
      std::printf("allow_partial: single-server reply, always complete\n");
    } else {
      std::printf("allow_partial: %u/%u shards answered (%s)\n",
                  best_effort->shards_answered, best_effort->shards_total,
                  best_effort->partial ? "PARTIAL result" : "complete");
    }
  }

  // 8. Pipelining: stream a whole batch of requests before reading the
  // first reply. One RTT's worth of syscalls covers all of them; replies
  // come back correlated by request id, and a bad request fails only its
  // own slot.
  std::vector<Box> batch;
  for (int i = 0; i < 4; ++i) batch.push_back(LocusBox(0.2 + 0.2 * i));
  auto counts = client->PointCountPipeline(batch);
  std::printf("pipelined counts (4 boxes, one round trip):");
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i].ok()) {
      std::printf(" %llu", (unsigned long long)*counts[i]);
    } else {
      std::printf(" <%s>",
                  std::string(StatusCodeToString(counts[i].status().code()))
                      .c_str());
    }
  }
  std::printf("\n");

  // 9. Server stats: counters plus per-type latency percentiles.
  auto stats = client->ServerStats();
  if (!stats.ok()) {
    std::fprintf(stderr, "stats failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("server: %llu requests, %llu ok, %llu bytes out\n",
              (unsigned long long)stats->requests_total,
              (unsigned long long)stats->replies_ok,
              (unsigned long long)stats->bytes_out);
  std::printf("cache: %llu hits, %llu misses, %llu bytes (epoch %llu)\n",
              (unsigned long long)stats->cache_hits,
              (unsigned long long)stats->cache_misses,
              (unsigned long long)stats->cache_bytes,
              (unsigned long long)stats->dataset_epoch);
  if (stats->accept_errors > 0) {
    std::printf("accept backoffs (fd exhaustion): %llu\n",
                (unsigned long long)stats->accept_errors);
  }
  const auto& pc =
      stats->per_type[protocol::TypeIndex(protocol::MessageType::kPointCount)];
  if (pc.count > 0) {
    std::printf("point-count latency: p50=%lluus p99=%lluus over %llu calls\n",
                (unsigned long long)pc.p50_us, (unsigned long long)pc.p99_us,
                (unsigned long long)pc.count);
  }
  // Non-empty only when the far end is an mdsc coordinator: per-shard
  // routing counters (the server-smoke failover phase greps these).
  for (size_t s = 0; s < stats->shards.size(); ++s) {
    const auto& shard = stats->shards[s];
    std::printf("shard %zu: %u/%u replicas healthy, %llu requests, "
                "failovers=%llu hedges=%llu/%llu errors=%llu "
                "p50=%lluus p99=%lluus\n",
                s, shard.healthy_replicas, shard.replicas,
                (unsigned long long)shard.requests,
                (unsigned long long)shard.failovers,
                (unsigned long long)shard.hedges_won,
                (unsigned long long)shard.hedges_fired,
                (unsigned long long)shard.backend_errors,
                (unsigned long long)shard.p50_us,
                (unsigned long long)shard.p99_us);
    if (shard.open_breakers > 0 || shard.half_open_breakers > 0 ||
        shard.retries_denied > 0 || shard.breaker_short_circuits > 0) {
      std::printf("  breakers: %u open, %u half-open; %llu retries denied, "
                  "%llu attempts short-circuited\n",
                  shard.open_breakers, shard.half_open_breakers,
                  (unsigned long long)shard.retries_denied,
                  (unsigned long long)shard.breaker_short_circuits);
    }
  }
  if (stats->partial_replies > 0) {
    std::printf("partial replies served: %llu\n",
                (unsigned long long)stats->partial_replies);
  }

  // 10. Hot swap: ask the server to reload its dataset (empty path =
  // reload the current source). The new generation is built and
  // validated while queries keep running, then swapped in with an epoch
  // bump that invalidates the response cache wholesale — this same
  // connection keeps working across the swap, no reconnect. A server
  // without a reload handler refuses with FailedPrecondition.
  const uint64_t epoch_before = stats->dataset_epoch;
  QueryClient::Options reload_opts;
  reload_opts.deadline_ms = 60000;  // the reload covers a dataset build
  auto reloaded = client->Reload("", reload_opts);
  if (reloaded.ok()) {
    std::printf("reload: epoch %llu -> %llu, %llu rows, same connection\n",
                (unsigned long long)reloaded->old_epoch,
                (unsigned long long)reloaded->new_epoch,
                (unsigned long long)reloaded->served_rows);
    auto after = client->ServerStats();
    if (after.ok()) {
      std::printf("stats confirm epoch %llu -> %llu\n",
                  (unsigned long long)epoch_before,
                  (unsigned long long)after->dataset_epoch);
    }
  } else {
    std::printf("reload not available here: %s\n",
                reloaded.status().ToString().c_str());
  }

  std::printf("query_client: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    // Against an external mdsd (started separately; see file header).
    return Walkthrough(static_cast<uint16_t>(std::atoi(argv[1])));
  }

  // Self-contained: in-process server over a small dataset.
  DatasetConfig dataset_config;
  dataset_config.num_rows = 50000;
  auto dataset = ServedDataset::Build(dataset_config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset build failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  auto served = std::make_shared<const ServedDataset>(std::move(*dataset));
  QueryServer server(served, ServerConfig{});
  // Same-config rebuild on reload: a no-op generation with byte-identical
  // replies, demonstrating the epoch bump without changing the data.
  server.SetReloadHandler(
      [dataset_config](const std::string&)
          -> Result<std::shared_ptr<ServedDataset>> {
        auto next = ServedDataset::Build(dataset_config);
        if (!next.ok()) return next.status();
        return std::make_shared<ServedDataset>(std::move(*next));
      });
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("in-process mdsd on 127.0.0.1:%u\n", server.port());
  const int rc = Walkthrough(server.port());
  server.Shutdown();
  return rc;
}
