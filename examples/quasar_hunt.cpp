// Scenario: a SkyServer-style complex spatial query (Figure 2) run through
// the storage engine with all three access paths, followed by BST
// clustering to find the quasar cloud without any labels (§4 / Figure 6).
//
// This is the workflow the paper's introduction motivates: a scientist
// writes color cuts as linear predicates, the engine turns them into a
// polyhedron query, and unsupervised density clustering cross-checks the
// selection.

#include <algorithm>
#include <cstdio>

#include "cluster/basin_spanning_tree.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/access_path.h"
#include "core/point_table.h"
#include "core/query_planner.h"
#include "sdss/catalog.h"
#include "storage/pager.h"

using namespace mds;

int main() {
  CatalogConfig config;
  config.num_objects = 300000;
  config.seed = 11;
  Catalog catalog = GenerateCatalog(config);
  std::printf("catalog: %zu objects\n", catalog.size());

  // Indexes + clustered tables inside the storage engine.
  auto tree = KdTreeIndex::Build(&catalog.colors);
  VoronoiIndexConfig vc;
  vc.num_seeds = 1024;
  auto voronoi = VoronoiIndex::Build(&catalog.colors, vc);
  if (!tree.ok() || !voronoi.ok()) return 1;

  MemPager pager;
  BufferPool pool(&pager, 1u << 16);
  auto kd_table =
      MaterializePointTable(&pool, catalog.colors, tree->clustered_order());
  auto vo_table =
      MaterializePointTable(&pool, catalog.colors, voronoi->clustered_order());
  auto heap_table = MaterializePointTable(&pool, catalog.colors, {});
  if (!kd_table.ok() || !vo_table.ok() || !heap_table.ok()) return 1;

  // The Figure 2 flavor: a conjunction of magnitude/color predicates.
  // Columns: u g r i z. Each WHERE clause line is one halfspace.
  Polyhedron query(kNumBands);
  query.AddHalfspace({1, -1, 0, 0, 0}, 0.7);    // u - g < 0.7
  query.AddHalfspace({0, 1, -1, 0, 0}, 0.45);   // g - r < 0.45
  query.AddHalfspace({0, -1, 1, 0, 0}, 0.25);   // r - g < 0.25
  query.AddHalfspace({0, 0, 1, 0, 0}, 21.0);    // r < 21
  query.AddHalfspace({0, 0, -1, 0, 0}, -17.0);  // r > 17

  auto report = [&](const char* name, const StorageQueryResult& result,
                    double ms) {
    size_t quasars = 0;
    for (int64_t id : result.objids) {
      if (catalog.classes[static_cast<uint64_t>(id)] ==
          SpectralClass::kQuasar) {
        ++quasars;
      }
    }
    std::printf("%-10s: %6zu rows in %7.2f ms (%llu pages, purity %.0f%%)\n",
                name, result.objids.size(), ms,
                (unsigned long long)result.pages_fetched,
                result.objids.empty() ? 0.0
                                      : 100.0 * quasars / result.objids.size());
  };

  {
    WallTimer t;
    FullScanPath path(BindPointTable(&*heap_table, 5), query);
    auto r = ExecuteAccessPath(&path);
    if (!r.ok()) return 1;
    report("full scan", *r, t.Millis());
  }
  {
    WallTimer t;
    KdTreePath path(BindPointTable(&*kd_table, 5), *tree, query);
    auto r = ExecuteAccessPath(&path);
    if (!r.ok()) return 1;
    report("kd-tree", *r, t.Millis());
  }
  {
    WallTimer t;
    VoronoiPath path(BindPointTable(&*vo_table, 5), *voronoi, query);
    auto r = ExecuteAccessPath(&path);
    if (!r.ok()) return 1;
    report("voronoi", *r, t.Millis());
  }

  // The cost-based planner run over all three candidates at once — this is
  // how a client would normally issue the query.
  {
    QueryPlanner planner;
    planner
        .AddPath(std::make_unique<FullScanPath>(BindPointTable(&*heap_table, 5),
                                                query))
        .AddPath(std::make_unique<KdTreePath>(BindPointTable(&*kd_table, 5),
                                              *tree, query))
        .AddPath(std::make_unique<VoronoiPath>(BindPointTable(&*vo_table, 5),
                                               *voronoi, query));
    for (const auto& cand : planner.ExplainAll()) {
      std::printf("  plan %-10s est pages=%8.0f ranges=%6.0f total=%10.1f\n",
                  cand.name.c_str(), cand.cost.page_fetches, cand.cost.ranges,
                  cand.cost.Total());
    }
    WallTimer t;
    std::string chosen;
    auto r = planner.Execute(nullptr, &chosen);
    if (!r.ok()) return 1;
    std::printf("planner picked: %s\n", chosen.c_str());
    report("planner", *r, t.Millis());
  }

  // Unsupervised cross-check: BST clustering over Voronoi cell densities.
  Rng rng(3);
  std::vector<double> density = voronoi->EstimateCellDensities(400000, rng);
  auto bst = BuildBasinSpanningTree(voronoi->seed_graph(), density);
  if (!bst.ok()) return 1;
  std::printf("BST clustering: %u density clusters from %u cells\n",
              bst->num_clusters(), voronoi->num_seeds());

  // Which cluster is "the quasar cloud"? The one whose members contain the
  // highest fraction of our color-cut candidates.
  KdTreePath recheck(BindPointTable(&*kd_table, 5), *tree, query);
  auto kd_result = ExecuteAccessPath(&recheck);
  if (!kd_result.ok()) return 1;
  std::vector<uint64_t> members_per_cluster(bst->num_clusters(), 0);
  std::vector<uint64_t> hits_per_cluster(bst->num_clusters(), 0);
  for (uint64_t i = 0; i < catalog.size(); ++i) {
    ++members_per_cluster[bst->cluster[voronoi->tag(i)]];
  }
  for (int64_t id : kd_result->objids) {
    ++hits_per_cluster[bst->cluster[voronoi->tag(static_cast<uint64_t>(id))]];
  }
  uint32_t best = 0;
  for (uint32_t c = 1; c < bst->num_clusters(); ++c) {
    if (hits_per_cluster[c] > hits_per_cluster[best]) best = c;
  }
  size_t cluster_quasars = 0, cluster_size = 0;
  for (uint64_t i = 0; i < catalog.size(); ++i) {
    if (bst->cluster[voronoi->tag(i)] != best) continue;
    ++cluster_size;
    if (catalog.classes[i] == SpectralClass::kQuasar) ++cluster_quasars;
  }
  std::printf(
      "cluster %u holds %llu of the candidates; it has %zu members, "
      "%.0f%% true quasars\n",
      best, (unsigned long long)hits_per_cluster[best], cluster_size,
      cluster_size == 0 ? 0.0 : 100.0 * cluster_quasars / cluster_size);
  return 0;
}
