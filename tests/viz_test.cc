#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "common/rng.h"
#include "core/layered_grid.h"
#include "viz/app.h"
#include "viz/geometry_cache.h"
#include "viz/producers.h"
#include "viz/pipes.h"
#include "viz/renderer.h"

namespace mds {
namespace {

PointSet Cloud3D(size_t n, uint64_t seed) {
  Rng rng(seed);
  PointSet ps(3, 0);
  ps.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    float p[3];
    double mode = rng.NextDouble();
    for (int j = 0; j < 3; ++j) {
      p[j] = static_cast<float>(mode < 0.5 ? 0.5 + 0.08 * rng.NextGaussian()
                                           : rng.NextDouble());
    }
    ps.Append(p);
  }
  return ps;
}

TEST(RegistryTest, CameraEventsReachSubscribers) {
  Registry registry;
  int calls = 0;
  Camera seen;
  registry.SubscribeCameraChanged([&](const Camera& c) {
    ++calls;
    seen = c;
  });
  Camera camera;
  camera.detail = 777;
  registry.EmitCameraChanged(camera);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen.detail, 777u);
}

TEST(RegistryTest, ProductionSignalLatches) {
  Registry registry;
  EXPECT_FALSE(registry.ConsumeProductionSignal());
  registry.SignalProduction(nullptr);
  registry.SignalProduction(nullptr);
  EXPECT_TRUE(registry.ConsumeProductionSignal());
  EXPECT_FALSE(registry.ConsumeProductionSignal());  // cleared
}

TEST(GeometryCacheTest, CoveringEntryHits) {
  GeometryCache cache(2);
  Camera big;
  big.view = Box({0, 0, 0}, {1, 1, 1});
  big.detail = 1000;
  // Cached geometry dense inside [0.2, 0.4]^3 so sub-views can be served.
  auto geometry = std::make_shared<GeometrySet>();
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    float p[3];
    for (int j = 0; j < 3; ++j) {
      p[j] = static_cast<float>(rng.NextUniform(0.2, 0.4));
    }
    geometry->points.Append(p);
  }
  cache.Insert(big, geometry);

  // Identical view: always a hit.
  EXPECT_EQ(cache.Lookup(big), geometry);
  EXPECT_EQ(cache.hits(), 1u);

  // Covered view with enough cached points inside: hit.
  Camera inside;
  inside.view = Box({0.2, 0.2, 0.2}, {0.4, 0.4, 0.4});
  inside.detail = 500;
  EXPECT_EQ(cache.Lookup(inside), geometry);
  EXPECT_EQ(cache.hits(), 2u);

  // Covered view where the cached points are too sparse: miss (zooming in
  // needs "additional geometry").
  Camera sparse;
  sparse.view = Box({0.6, 0.6, 0.6}, {0.9, 0.9, 0.9});
  sparse.detail = 500;
  EXPECT_EQ(cache.Lookup(sparse), nullptr);

  Camera outside;
  outside.view = Box({-1, 0, 0}, {0.5, 1, 1});
  outside.detail = 500;
  EXPECT_EQ(cache.Lookup(outside), nullptr);

  Camera more_detail = inside;
  more_detail.detail = 5000;  // needs more points than the cached result
  EXPECT_EQ(cache.Lookup(more_detail), nullptr);
}

TEST(GeometryCacheTest, LruEviction) {
  GeometryCache cache(2);
  for (int i = 0; i < 3; ++i) {
    Camera c;
    c.view = Box({double(10 * i), 0, 0}, {double(10 * i + 1), 1, 1});
    c.detail = 10;
    cache.Insert(c, std::make_shared<GeometrySet>());
  }
  EXPECT_EQ(cache.size(), 2u);
  Camera first;
  first.view = Box({0, 0, 0}, {1, 1, 1});
  first.detail = 10;
  EXPECT_EQ(cache.Lookup(first), nullptr);  // evicted
}

TEST(PointCloudProducerTest, DeliversRequestedDetail) {
  PointSet ps = Cloud3D(100000, 1);
  auto index = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(index.ok());
  PointCloudProducer producer(&*index, /*threaded=*/false);
  Registry registry;
  ASSERT_TRUE(producer.Initialize(&registry));
  ASSERT_TRUE(producer.Start());

  Camera camera = producer.SuggestInitial();
  camera.detail = 5000;
  registry.EmitCameraChanged(camera);
  EXPECT_TRUE(registry.ConsumeProductionSignal());
  auto geometry = producer.GetOutput();
  ASSERT_NE(geometry, nullptr);
  EXPECT_GE(geometry->points.size(), 5000u);
  EXPECT_EQ(producer.db_fetches(), 1u);
}

TEST(PointCloudProducerTest, ZoomOutServedFromCache) {
  // The E15 claim: "when zooming in and then back out, the cache reduces
  // time delay to zero" — no new index queries on the way out.
  PointSet ps = Cloud3D(100000, 3);
  auto index = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(index.ok());
  PointCloudProducer producer(&*index, /*threaded=*/false);
  Registry registry;
  ASSERT_TRUE(producer.Initialize(&registry));
  ASSERT_TRUE(producer.Start());

  Camera camera = producer.SuggestInitial();
  camera.detail = 2000;
  std::vector<Camera> zoom_path = {camera};
  for (int i = 0; i < 4; ++i) {
    zoom_path.push_back(ZoomCamera(zoom_path.back(), 0.6));
  }
  // Zoom in. Some steps may be served from the cache when the covering
  // result is already dense enough in the sub-view; all others fetch.
  for (const Camera& c : zoom_path) registry.EmitCameraChanged(c);
  uint64_t fetches_at_max_zoom = producer.db_fetches();
  EXPECT_GE(fetches_at_max_zoom, 1u);
  EXPECT_LE(fetches_at_max_zoom, zoom_path.size());
  // Zoom back out: every view is servable from the way in — zero new
  // database fetches ("the cache reduces time delay to zero").
  for (auto it = zoom_path.rbegin(); it != zoom_path.rend(); ++it) {
    registry.EmitCameraChanged(*it);
  }
  EXPECT_EQ(producer.db_fetches(), fetches_at_max_zoom);
  EXPECT_GE(producer.cache_hits(), zoom_path.size());
}

TEST(ThreadedProducerTest, WorkerProducesAndSignals) {
  PointSet ps = Cloud3D(50000, 5);
  auto index = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(index.ok());
  PointCloudProducer producer(&*index, /*threaded=*/true);
  Registry registry;
  ASSERT_TRUE(producer.Initialize(&registry));
  ASSERT_TRUE(producer.Start());
  Camera camera = producer.SuggestInitial();
  camera.detail = 1000;
  registry.EmitCameraChanged(camera);
  producer.WaitIdle();
  EXPECT_TRUE(registry.ConsumeProductionSignal());
  auto geometry = producer.GetOutput();
  ASSERT_NE(geometry, nullptr);
  EXPECT_GE(geometry->points.size(), 1000u);
  EXPECT_TRUE(producer.Stop());
}

TEST(ThreadedProducerTest, CollapsesBurstOfCameraEvents) {
  PointSet ps = Cloud3D(50000, 7);
  auto index = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(index.ok());
  PointCloudProducer producer(&*index, /*threaded=*/true);
  Registry registry;
  ASSERT_TRUE(producer.Initialize(&registry));
  ASSERT_TRUE(producer.Start());
  Camera camera = producer.SuggestInitial();
  camera.detail = 500;
  // A burst of camera events: the worker may skip intermediate ones (only
  // the latest matters), so productions <= events.
  for (int i = 0; i < 20; ++i) {
    registry.EmitCameraChanged(ZoomCamera(camera, 1.0 - 0.01 * i));
  }
  producer.WaitIdle();
  EXPECT_GE(producer.productions(), 1u);
  EXPECT_LE(producer.productions(), 20u);
  EXPECT_TRUE(producer.Stop());
}

TEST(KdBoxProducerTest, AtLeastMinBoxesInView) {
  PointSet ps = Cloud3D(50000, 9);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  ASSERT_GE(tree->num_leaves(), 256u);
  KdBoxProducer producer(&*tree, /*min_boxes=*/100);
  Registry registry;
  ASSERT_TRUE(producer.Initialize(&registry));
  ASSERT_TRUE(producer.Start());
  Camera camera = producer.SuggestInitial();
  registry.EmitCameraChanged(camera);
  ASSERT_TRUE(registry.ConsumeProductionSignal());
  auto geometry = producer.GetOutput();
  ASSERT_NE(geometry, nullptr);
  EXPECT_GE(geometry->boxes.size(), 100u);
  // Zooming into a small region still yields >= min boxes (deeper levels).
  Camera zoomed = ZoomCamera(camera, 0.2);
  registry.EmitCameraChanged(zoomed);
  ASSERT_TRUE(registry.ConsumeProductionSignal());
  auto zoomed_geometry = producer.GetOutput();
  ASSERT_NE(zoomed_geometry, nullptr);
  EXPECT_GE(zoomed_geometry->boxes.size(), 100u);
  // All returned boxes intersect the view (in the constrained axes).
  for (const Box& b : zoomed_geometry->boxes) {
    bool intersects = true;
    for (size_t j = 0; j < 3; ++j) {
      if (b.hi(j) < zoomed.view.lo(j) || b.lo(j) > zoomed.view.hi(j)) {
        intersects = false;
      }
    }
    EXPECT_TRUE(intersects);
  }
}

std::vector<AdaptiveGraphLevel> MakeLevels(uint64_t seed) {
  // Three levels of increasing edge density over the unit cube.
  Rng rng(seed);
  std::vector<AdaptiveGraphLevel> levels;
  for (size_t n : {20u, 200u, 2000u}) {
    AdaptiveGraphLevel level;
    level.seeds = PointSet(3, 0);
    for (size_t i = 0; i < n; ++i) {
      float p[3] = {static_cast<float>(rng.NextDouble()),
                    static_cast<float>(rng.NextDouble()),
                    static_cast<float>(rng.NextDouble())};
      level.seeds.Append(p);
      level.seed_values.push_back(static_cast<float>(rng.NextDouble()));
    }
    for (size_t i = 0; i + 1 < n; ++i) {
      level.edges.emplace_back(i, i + 1);
    }
    levels.push_back(std::move(level));
  }
  return levels;
}

TEST(DelaunayProducerTest, PicksCoarsestSufficientLevel) {
  DelaunayProducer producer(MakeLevels(11), /*min_edges=*/100);
  Registry registry;
  ASSERT_TRUE(producer.Initialize(&registry));
  ASSERT_TRUE(producer.Start());
  Camera wide = producer.SuggestInitial();
  registry.EmitCameraChanged(wide);
  ASSERT_TRUE(registry.ConsumeProductionSignal());
  auto geometry = producer.GetOutput();
  ASSERT_NE(geometry, nullptr);
  // Level 0 has 19 edges (< 100), level 1 has 199 (>= 100).
  EXPECT_EQ(producer.last_level(), 1u);
  EXPECT_GE(geometry->segments.size(), 100u);
}

TEST(DelaunayProducerTest, ZoomForcesFinerLevel) {
  DelaunayProducer producer(MakeLevels(13), /*min_edges=*/50);
  Registry registry;
  ASSERT_TRUE(producer.Initialize(&registry));
  ASSERT_TRUE(producer.Start());
  Camera tiny;
  tiny.view = Box({0.4, 0.4, 0.4}, {0.45, 0.45, 0.45});
  registry.EmitCameraChanged(tiny);
  ASSERT_TRUE(registry.ConsumeProductionSignal());
  auto geometry = producer.GetOutput();
  ASSERT_NE(geometry, nullptr);
  // A tiny view has few edges even at the finest level: ends at level 2.
  EXPECT_EQ(producer.last_level(), 2u);
}

TEST(VoronoiCellProducerTest, EmitsValuesWithPoints) {
  VoronoiCellProducer producer(MakeLevels(15), /*min_points=*/50);
  Registry registry;
  ASSERT_TRUE(producer.Initialize(&registry));
  ASSERT_TRUE(producer.Start());
  Camera camera = producer.SuggestInitial();
  registry.EmitCameraChanged(camera);
  ASSERT_TRUE(registry.ConsumeProductionSignal());
  auto geometry = producer.GetOutput();
  ASSERT_NE(geometry, nullptr);
  EXPECT_GE(geometry->points.size(), 50u);
  EXPECT_EQ(geometry->points.size(), geometry->point_values.size());
}

TEST(PipeTest, DecimateKeepsEveryKth) {
  auto geometry = std::make_shared<GeometrySet>();
  for (int i = 0; i < 100; ++i) {
    float p[3] = {static_cast<float>(i), 0, 0};
    geometry->points.Append(p);
    geometry->point_values.push_back(static_cast<float>(i));
  }
  geometry->boxes.push_back(Box({0, 0, 0}, {1, 1, 1}));
  DecimatePipe pipe(10);
  auto out = pipe.Transform(geometry);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->points.size(), 10u);
  EXPECT_EQ(out->point_values.size(), 10u);
  EXPECT_FLOAT_EQ(out->points.coord(3, 0), 30.0f);
  EXPECT_EQ(out->boxes.size(), 1u);  // non-point geometry passes through
  // Stride 1 passes the input through unchanged (same object).
  DecimatePipe identity(1);
  EXPECT_EQ(identity.Transform(geometry), geometry);
  // Null input passes through.
  EXPECT_EQ(pipe.Transform(nullptr), nullptr);
}

TEST(PipeTest, ColorByAxisAssignsCoordinates) {
  auto geometry = std::make_shared<GeometrySet>();
  for (int i = 0; i < 5; ++i) {
    float p[3] = {0, static_cast<float>(2 * i), 0};
    geometry->points.Append(p);
  }
  ColorByAxisPipe pipe(1);
  auto out = pipe.Transform(geometry);
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(out->point_values.size(), 5u);
  EXPECT_FLOAT_EQ(out->point_values[3], 6.0f);
  // Out-of-range axis passes through untouched.
  ColorByAxisPipe bad(7);
  EXPECT_EQ(bad.Transform(geometry), geometry);
}

TEST(PipeTest, BoundingBoxAppendsBox) {
  auto geometry = std::make_shared<GeometrySet>();
  float a[3] = {1, 2, 3}, b[3] = {-1, 5, 0};
  geometry->points.Append(a);
  geometry->points.Append(b);
  BoundingBoxPipe pipe;
  auto out = pipe.Transform(geometry);
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(out->boxes.size(), 1u);
  EXPECT_DOUBLE_EQ(out->boxes[0].lo(0), -1.0);
  EXPECT_DOUBLE_EQ(out->boxes[0].hi(1), 5.0);
  // Empty geometry passes through.
  auto empty = std::make_shared<GeometrySet>();
  EXPECT_EQ(pipe.Transform(empty), empty);
}

TEST(PipeTest, PipesComposeInAppPipeline) {
  PointSet ps = Cloud3D(50000, 23);
  auto grid = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(grid.ok());
  VisualizationApp app;
  std::vector<std::unique_ptr<Pipe>> pipes;
  pipes.push_back(std::make_unique<DecimatePipe>(5));
  pipes.push_back(std::make_unique<ColorByAxisPipe>(2));
  pipes.push_back(std::make_unique<BoundingBoxPipe>());
  app.AddPipeline(std::make_unique<PointCloudProducer>(&*grid, false),
                  std::move(pipes));
  app.SetConsumer(std::make_unique<RecordingConsumer>());
  ASSERT_TRUE(app.Start().ok());
  Camera camera = app.producer(0)->SuggestInitial();
  camera.detail = 5000;
  app.SetCamera(camera);
  auto report = app.DrainFrames();
  EXPECT_EQ(report.outputs_collected, 1u);
  // ~1/5 of the produced points survive the decimator, plus one box.
  EXPECT_GE(report.primitives, 1000u);
  EXPECT_LT(report.primitives, 5000u);
  app.Stop();
}

TEST(VisualizationAppTest, FullPipelineFrameCycle) {
  PointSet ps = Cloud3D(60000, 17);
  auto grid = LayeredGridIndex::Build(&ps);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(grid.ok());
  ASSERT_TRUE(tree.ok());

  VisualizationApp app;
  app.AddPipeline(std::make_unique<PointCloudProducer>(&*grid, true));
  app.AddPipeline(std::make_unique<KdBoxProducer>(&*tree, 64, false));
  auto renderer = std::make_unique<PpmRenderer>(64, 64);
  PpmRenderer* renderer_ptr = renderer.get();
  app.SetConsumer(std::move(renderer));
  ASSERT_TRUE(app.Start().ok());

  Camera camera = app.SuggestInitial();
  camera.detail = 2000;
  app.SetCamera(camera);
  auto report = app.DrainFrames();
  EXPECT_GE(report.outputs_collected, 2u);
  EXPECT_GT(report.primitives, 2000u);
  EXPECT_GE(renderer_ptr->frames_consumed(), 2u);
  EXPECT_GT(renderer_ptr->CoverageFraction(), 0.0);

  // Render to a PPM and check the file exists and is non-trivial.
  std::string path =
      (std::filesystem::temp_directory_path() / "mds_viz_test.ppm").string();
  ASSERT_TRUE(renderer_ptr->WritePpm(path).ok());
  EXPECT_GT(std::filesystem::file_size(path), 64u * 64u);
  std::filesystem::remove(path);
  app.Stop();
}

TEST(VisualizationAppTest, ZoomSequenceKeepsDetail) {
  PointSet ps = Cloud3D(120000, 19);
  auto grid = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(grid.ok());
  VisualizationApp app;
  app.AddPipeline(std::make_unique<PointCloudProducer>(&*grid, false));
  app.SetConsumer(std::make_unique<RecordingConsumer>());
  ASSERT_TRUE(app.Start().ok());
  auto* producer = dynamic_cast<PointCloudProducer*>(app.producer(0));
  ASSERT_NE(producer, nullptr);

  Camera camera = producer->SuggestInitial();
  camera.detail = 3000;
  // Zoom toward the dense cluster at (0.5, 0.5, 0.5): every view must keep
  // >= detail points (the region stays populated).
  for (int i = 0; i < 5; ++i) {
    app.SetCamera(camera);
    auto report = app.DrainFrames();
    ASSERT_EQ(report.outputs_collected, 1u) << "zoom step " << i;
    EXPECT_GE(report.primitives, 3000u) << "zoom step " << i;
    // Shrink around the cluster center.
    Camera next = camera;
    for (int j = 0; j < 3; ++j) {
      double center = 0.5;
      double half = 0.5 * (camera.view.hi(j) - camera.view.lo(j)) * 0.6;
      next.view.set_lo(j, center - half);
      next.view.set_hi(j, center + half);
    }
    camera = next;
  }
  app.Stop();
}

}  // namespace
}  // namespace mds
