#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/histogram.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace mds {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::IOError("disk exploded");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(st.message(), "disk exploded");
  EXPECT_EQ(st.ToString(), "IOError: disk exploded");
}

TEST(StatusTest, AllFactoryCodesDistinct) {
  std::vector<Status> all = {
      Status::InvalidArgument("x"), Status::OutOfRange("x"),
      Status::NotFound("x"),        Status::AlreadyExists("x"),
      Status::IOError("x"),         Status::Corruption("x"),
      Status::ResourceExhausted("x"), Status::FailedPrecondition("x"),
      Status::Unimplemented("x"),   Status::Internal("x")};
  std::set<StatusCode> codes;
  for (const Status& st : all) {
    EXPECT_FALSE(st.ok());
    codes.insert(st.code());
  }
  EXPECT_EQ(codes.size(), all.size());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::Corruption("bad page"); };
  auto wrapper = [&]() -> Status {
    MDS_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kCorruption);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto producer = [](bool ok) -> Result<std::string> {
    if (!ok) return Status::Internal("nope");
    return std::string("value");
  };
  auto consumer = [&](bool ok) -> Result<size_t> {
    MDS_ASSIGN_OR_RETURN(std::string s, producer(ok));
    return s.size();
  };
  ASSERT_TRUE(consumer(true).ok());
  EXPECT_EQ(*consumer(true), 5u);
  EXPECT_EQ(consumer(false).status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = r.MoveValue();
  EXPECT_EQ(v.size(), 3u);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextGaussian();
    sum += x;
    sum2 += x * x;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(17);
  auto p = rng.Permutation(1000);
  std::vector<uint64_t> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(sorted[i], i);
  // Not the identity (probability ~ 0 for n=1000).
  EXPECT_NE(p, sorted);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  auto s = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<uint64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (uint64_t v : s) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(23);
  auto s = rng.SampleWithoutReplacement(10, 10);
  std::set<uint64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(RngTest, SampleUniformity) {
  // Each element of [0, 20) should appear in a k=5 sample with p = 1/4.
  Rng rng(29);
  std::vector<int> counts(20, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (uint64_t v : rng.SampleWithoutReplacement(20, 5)) ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.25, 0.02);
  }
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(timer.Seconds(), 0.0);
  EXPECT_LE(timer.Millis(), timer.Micros());  // unit consistency
  timer.Restart();
  EXPECT_LT(timer.Seconds(), 1.0);
}

// --- Histogram::Snapshot::ValueAtPercentile edge cases ----------------------
//
// Values below 2^kSubBucketBits (and up through one full octave above) land
// in single-value buckets, so small-sample percentiles are exact — the
// tests below rely on that to pin nearest-rank semantics precisely.

TEST(HistogramTest, EmptySnapshotIsZeroEverywhere) {
  Histogram h;
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.ValueAtPercentile(0), 0u);
  EXPECT_EQ(snap.ValueAtPercentile(50), 0u);
  EXPECT_EQ(snap.ValueAtPercentile(100), 0u);
  EXPECT_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, SingleSampleAtEveryPercentile) {
  Histogram h;
  h.Record(5);
  const Histogram::Snapshot snap = h.TakeSnapshot();
  ASSERT_EQ(snap.count, 1u);
  // With one sample, every percentile is that sample (rank clamps to 1).
  EXPECT_EQ(snap.ValueAtPercentile(0), 5u);
  EXPECT_EQ(snap.ValueAtPercentile(50), 5u);
  EXPECT_EQ(snap.ValueAtPercentile(100), 5u);
}

TEST(HistogramTest, NearestRankSmallSamples) {
  Histogram h;
  h.Record(1);
  h.Record(2);
  h.Record(3);
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.ValueAtPercentile(0), 1u);    // rank clamps up to 1
  // Regression: p=34 of 3 samples is rank ceil(1.02) = 2; round-half-up
  // used to pick rank 1 here.
  EXPECT_EQ(snap.ValueAtPercentile(34), 2u);
  EXPECT_EQ(snap.ValueAtPercentile(50), 2u);   // rank ceil(1.5) = 2
  EXPECT_EQ(snap.ValueAtPercentile(66.7), 3u);
  EXPECT_EQ(snap.ValueAtPercentile(100), 3u);  // the maximum, not beyond
}

TEST(HistogramTest, PercentileClampsOutOfRangeInput) {
  Histogram h;
  h.Record(2);
  h.Record(7);
  const Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.ValueAtPercentile(-10), snap.ValueAtPercentile(0));
  EXPECT_EQ(snap.ValueAtPercentile(250), snap.ValueAtPercentile(100));
  const double nan = std::nan("");
  EXPECT_EQ(snap.ValueAtPercentile(nan), snap.ValueAtPercentile(0));
}

TEST(HistogramTest, PercentilesMonotonicInP) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v * 37 % 9973);
  const Histogram::Snapshot snap = h.TakeSnapshot();
  uint64_t prev = 0;
  for (double p = 0.0; p <= 100.0; p += 0.5) {
    const uint64_t v = snap.ValueAtPercentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(HistogramTest, AllSamplesInUnboundedTopBucket) {
  // The catch-all top bucket has no finite upper bound; its midpoint would
  // be a meaningless ~2^63 value. The reported quantile is its lower bound.
  Histogram h;
  const uint64_t max = std::numeric_limits<uint64_t>::max();
  h.Record(max);
  h.Record(max - 1);
  const Histogram::Snapshot snap = h.TakeSnapshot();
  const uint64_t lo =
      Histogram::BucketLowerBound(Histogram::BucketIndex(max));
  EXPECT_EQ(snap.ValueAtPercentile(50), lo);
  EXPECT_EQ(snap.ValueAtPercentile(100), lo);
}

TEST(HistogramTest, HugeCountDoesNotOverflowRank) {
  // Casting p/100 * count straight to uint64_t is UB once the product
  // rounds to 2^64; build such a snapshot by hand and demand sane answers.
  Histogram::Snapshot snap;
  snap.buckets.resize(Histogram::kNumBuckets, 0);
  snap.count = std::numeric_limits<uint64_t>::max();
  snap.buckets[Histogram::BucketIndex(7)] = snap.count;
  EXPECT_EQ(snap.ValueAtPercentile(100), 7u);
  EXPECT_EQ(snap.ValueAtPercentile(50), 7u);
  EXPECT_EQ(snap.ValueAtPercentile(0), 7u);
}

TEST(HistogramTest, MergedSnapshotPercentiles) {
  Histogram a, b;
  a.Record(1);
  a.Record(2);
  b.Record(3);
  b.Record(7);
  Histogram::Snapshot snap = a.TakeSnapshot();
  snap.Merge(b.TakeSnapshot());
  ASSERT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 13u);
  EXPECT_EQ(snap.ValueAtPercentile(0), 1u);
  EXPECT_EQ(snap.ValueAtPercentile(50), 2u);   // rank 2 of 4
  EXPECT_EQ(snap.ValueAtPercentile(75), 3u);   // rank 3 of 4
  EXPECT_EQ(snap.ValueAtPercentile(100), 7u);
  // Merging into an empty snapshot (zero-length buckets) must also work.
  Histogram::Snapshot empty;
  empty.Merge(snap);
  EXPECT_EQ(empty.count, 4u);
  EXPECT_EQ(empty.ValueAtPercentile(100), 7u);
}

TEST(HistogramTest, BucketBoundsRoundTrip) {
  // Every value's bucket must contain it.
  const uint64_t probes[] = {0,  1,   3,    4,    5,        8,       100,
                             1u << 20, (1u << 20) + 12345, 1ull << 40,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : probes) {
    const size_t idx = Histogram::BucketIndex(v);
    ASSERT_LT(idx, Histogram::kNumBuckets);
    EXPECT_LE(Histogram::BucketLowerBound(idx), v);
    EXPECT_GE(Histogram::BucketUpperBound(idx), v);
  }
}

}  // namespace
}  // namespace mds
