#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/eigen.h"
#include "linalg/least_squares.h"
#include "linalg/matrix.h"
#include "linalg/pca.h"
#include "linalg/whitening.h"

namespace mds {
namespace {

TEST(MatrixTest, MultiplyIdentity) {
  Matrix a(3, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 2) = 3;
  a(2, 0) = -1;
  Matrix product = a.Multiply(Matrix::Identity(3));
  EXPECT_EQ(product, a);
}

TEST(MatrixTest, MultiplyKnown) {
  Matrix a(2, 3), b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double av[] = {1, 2, 3, 4, 5, 6};
  double bv[] = {7, 8, 9, 10, 11, 12};
  for (size_t i = 0; i < 2; ++i)
    for (size_t j = 0; j < 3; ++j) a(i, j) = av[i * 3 + j];
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 2; ++j) b(i, j) = bv[i * 2 + j];
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Rng rng(5);
  Matrix a(4, 7);
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = 0; j < 7; ++j) a(i, j) = rng.NextGaussian();
  EXPECT_EQ(a.Transposed().Transposed(), a);
}

TEST(MatrixTest, Apply) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 0;
  a(1, 1) = 3;
  std::vector<double> v = {1.0, 2.0};
  auto out = a.Apply(v);
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
}

TEST(CholeskyTest, SolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [8, 7] -> x = [1.5, 4/3]... solve directly.
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  auto x = SolveCholesky(a, {8, 7});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(4 * (*x)[0] + 2 * (*x)[1], 8.0, 1e-12);
  EXPECT_NEAR(2 * (*x)[0] + 3 * (*x)[1], 7.0, 1e-12);
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // indefinite
  auto x = SolveCholesky(a, {1, 1});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CholeskyTest, RejectsDimensionMismatch) {
  auto x = SolveCholesky(Matrix(2, 3), {1, 1});
  EXPECT_EQ(x.status().code(), StatusCode::kInvalidArgument);
}

TEST(LeastSquaresTest, RecoversExactLinearModel) {
  // y = 3 + 2 x0 - x1, no noise.
  Rng rng(7);
  const size_t n = 50;
  Matrix pts(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    pts(i, 0) = rng.NextGaussian();
    pts(i, 1) = rng.NextGaussian();
    y[i] = 3.0 + 2.0 * pts(i, 0) - pts(i, 1);
  }
  Matrix design = PolynomialDesign(pts, 1);
  auto beta = FitLeastSquares(design, y);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR((*beta)[0], 3.0, 1e-6);
  EXPECT_NEAR((*beta)[1], 2.0, 1e-6);
  EXPECT_NEAR((*beta)[2], -1.0, 1e-6);
}

TEST(LeastSquaresTest, RecoversQuadraticModel) {
  Rng rng(11);
  const size_t n = 200;
  Matrix pts(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    pts(i, 0) = rng.NextGaussian();
    pts(i, 1) = rng.NextGaussian();
    double x0 = pts(i, 0), x1 = pts(i, 1);
    y[i] = 1.0 - x0 + 0.5 * x1 + 0.25 * x0 * x0 - 0.75 * x0 * x1 + 2 * x1 * x1;
  }
  Matrix design = PolynomialDesign(pts, 2);
  auto beta = FitLeastSquares(design, y);
  ASSERT_TRUE(beta.ok());
  // Evaluate at a fresh point and compare against the true model.
  double p[2] = {0.3, -0.7};
  double truth = 1.0 - p[0] + 0.5 * p[1] + 0.25 * p[0] * p[0] -
                 0.75 * p[0] * p[1] + 2 * p[1] * p[1];
  EXPECT_NEAR(EvaluatePolynomial(*beta, p, 2, 2), truth, 1e-6);
}

TEST(LeastSquaresTest, TermCounts) {
  EXPECT_EQ(PolynomialTermCount(5, 0), 1u);
  EXPECT_EQ(PolynomialTermCount(5, 1), 6u);
  EXPECT_EQ(PolynomialTermCount(5, 2), 21u);
}

TEST(LeastSquaresTest, RejectsUnderdetermined) {
  Matrix design(2, 5);
  auto beta = FitLeastSquares(design, {1, 2});
  EXPECT_FALSE(beta.ok());
}

TEST(EigenTest, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 1;
  a(1, 1) = 5;
  a(2, 2) = 3;
  auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 5, 1e-12);
  EXPECT_NEAR(eig->values[1], 3, 1e-12);
  EXPECT_NEAR(eig->values[2], 1, 1e-12);
}

TEST(EigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] -> eigenvalues 3 and 1.
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-12);
}

class EigenPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EigenPropertyTest, EigenEquationAndOrthonormality) {
  const size_t n = GetParam();
  Rng rng(100 + n);
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      a(i, j) = rng.NextGaussian();
      a(j, i) = a(i, j);
    }
  }
  auto eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.ok());
  // A v_j = lambda_j v_j.
  for (size_t j = 0; j < n; ++j) {
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i) v[i] = eig->vectors(i, j);
    std::vector<double> av = a.Apply(v);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(av[i], eig->values[j] * v[i], 1e-8) << "n=" << n;
    }
  }
  // V^T V = I.
  for (size_t j = 0; j < n; ++j) {
    for (size_t k = 0; k < n; ++k) {
      double dot = 0.0;
      for (size_t i = 0; i < n; ++i) {
        dot += eig->vectors(i, j) * eig->vectors(i, k);
      }
      EXPECT_NEAR(dot, j == k ? 1.0 : 0.0, 1e-10);
    }
  }
  // Sorted descending.
  for (size_t j = 1; j < n; ++j) {
    EXPECT_GE(eig->values[j - 1], eig->values[j]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenPropertyTest,
                         ::testing::Values(2, 3, 5, 8, 16, 25));

TEST(PcaTest, RecoversDominantDirection) {
  // Data stretched along (1, 1)/sqrt(2).
  Rng rng(21);
  const size_t n = 2000;
  Matrix data(n, 2);
  for (size_t i = 0; i < n; ++i) {
    double t = 5.0 * rng.NextGaussian();
    double s = 0.3 * rng.NextGaussian();
    data(i, 0) = t + s;
    data(i, 1) = t - s;
  }
  auto pca = Pca::Fit(data);
  ASSERT_TRUE(pca.ok());
  double c0 = pca->components()(0, 0);
  double c1 = pca->components()(0, 1);
  EXPECT_NEAR(std::abs(c0), std::sqrt(0.5), 0.02);
  EXPECT_NEAR(std::abs(c1), std::sqrt(0.5), 0.02);
  EXPECT_GT(c0 * c1, 0.0);  // same sign: the (1,1) direction
  EXPECT_GT(pca->ExplainedVarianceRatio(1), 0.98);
}

TEST(PcaTest, VarianceDescending) {
  Rng rng(23);
  Matrix data(300, 6);
  for (size_t i = 0; i < 300; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      data(i, j) = rng.NextGaussian() * (j + 1);
    }
  }
  auto pca = Pca::Fit(data);
  ASSERT_TRUE(pca.ok());
  const auto& var = pca->explained_variance();
  for (size_t j = 1; j < var.size(); ++j) EXPECT_GE(var[j - 1], var[j]);
  EXPECT_NEAR(pca->ExplainedVarianceRatio(var.size()), 1.0, 1e-9);
}

TEST(PcaTest, DualPathMatchesPrimal) {
  // Wide data (d > n) exercises the Gram-matrix path; a thin copy of the
  // same data exercises the primal path. Projections must agree up to
  // component sign.
  Rng rng(27);
  const size_t n = 20, d = 50;
  Matrix wide(n, d);
  for (size_t i = 0; i < n; ++i) {
    double a = rng.NextGaussian(), b = rng.NextGaussian();
    for (size_t j = 0; j < d; ++j) {
      wide(i, j) = a * std::sin(0.1 * j) + b * std::cos(0.07 * j) +
                   0.01 * rng.NextGaussian();
    }
  }
  auto pca = Pca::Fit(wide, 3);
  ASSERT_TRUE(pca.ok());
  EXPECT_EQ(pca->num_components(), 3u);
  // Components are unit length in input space.
  for (size_t c = 0; c < 3; ++c) {
    double norm = 0.0;
    for (size_t j = 0; j < d; ++j) {
      norm += pca->components()(c, j) * pca->components()(c, j);
    }
    EXPECT_NEAR(norm, 1.0, 1e-6);
  }
  // Two dominant latent directions: 2 components capture almost all.
  EXPECT_GT(pca->ExplainedVarianceRatio(2), 0.99);
}

TEST(PcaTest, ReconstructionErrorSmallForLowRankData) {
  Rng rng(31);
  const size_t n = 100, d = 8;
  Matrix data(n, d);
  for (size_t i = 0; i < n; ++i) {
    double a = rng.NextGaussian(), b = rng.NextGaussian();
    for (size_t j = 0; j < d; ++j) {
      data(i, j) = 2.0 * a * j - b * (j % 3) + 7.0;
    }
  }
  auto pca = Pca::Fit(data, 2);
  ASSERT_TRUE(pca.ok());
  for (size_t i = 0; i < 10; ++i) {
    double proj[2];
    pca->TransformPoint(data.RowPtr(i), 2, proj);
    std::vector<double> rec = pca->InverseTransformPoint(proj, 2);
    for (size_t j = 0; j < d; ++j) {
      EXPECT_NEAR(rec[j], data(i, j), 1e-6);
    }
  }
}

TEST(PcaTest, RejectsTooFewRows) {
  EXPECT_FALSE(Pca::Fit(Matrix(1, 5)).ok());
}

TEST(WhiteningTest, ProducesIdentityCovariance) {
  Rng rng(37);
  const size_t n = 5000, d = 4;
  Matrix data(n, d);
  for (size_t i = 0; i < n; ++i) {
    double a = rng.NextGaussian(), b = rng.NextGaussian(),
           c = rng.NextGaussian(), e = rng.NextGaussian();
    data(i, 0) = 3.0 * a + 1.0;
    data(i, 1) = a + 0.5 * b - 2.0;
    data(i, 2) = 0.2 * c + b;
    data(i, 3) = e + a + b;
  }
  auto w = Whitening::Fit(data);
  ASSERT_TRUE(w.ok());
  Matrix white = w->Transform(data);
  // Covariance of the whitened data ~ identity.
  std::vector<double> mean(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) mean[j] += white(i, j);
  }
  for (double& m : mean) m /= n;
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a; b < d; ++b) {
      double cov = 0.0;
      for (size_t i = 0; i < n; ++i) {
        cov += (white(i, a) - mean[a]) * (white(i, b) - mean[b]);
      }
      cov /= n - 1;
      EXPECT_NEAR(cov, a == b ? 1.0 : 0.0, 0.05) << a << "," << b;
    }
  }
}

TEST(WhiteningTest, InverseRoundTrip) {
  Rng rng(41);
  Matrix data(200, 3);
  for (size_t i = 0; i < 200; ++i) {
    data(i, 0) = rng.NextGaussian() * 2;
    data(i, 1) = data(i, 0) + rng.NextGaussian();
    data(i, 2) = rng.NextUniform(-1, 5);
  }
  auto w = Whitening::Fit(data);
  ASSERT_TRUE(w.ok());
  double in[3] = {1.5, -0.5, 2.0}, mid[3], out[3];
  w->TransformPoint(in, mid);
  w->InverseTransformPoint(mid, out);
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(out[j], in[j], 1e-6);
}

}  // namespace
}  // namespace mds
