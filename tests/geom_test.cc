#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geom/box.h"
#include "geom/point_set.h"
#include "geom/polyhedron.h"

namespace mds {
namespace {

TEST(PointSetTest, AppendAndAccess) {
  PointSet ps(3, 0);
  float a[3] = {1, 2, 3};
  double b[3] = {4, 5, 6};
  ps.Append(a);
  ps.Append(b);
  EXPECT_EQ(ps.size(), 2u);
  EXPECT_FLOAT_EQ(ps.coord(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(ps.coord(1, 2), 6.0f);
  ps.set_coord(1, 0, 9.0f);
  EXPECT_FLOAT_EQ(ps.point(1)[0], 9.0f);
}

TEST(PointSetTest, Gather) {
  PointSet ps(2, 3);
  for (size_t i = 0; i < 3; ++i) {
    ps.set_coord(i, 0, static_cast<float>(i));
    ps.set_coord(i, 1, static_cast<float>(10 * i));
  }
  PointSet g = ps.Gather({2, 0});
  EXPECT_EQ(g.size(), 2u);
  EXPECT_FLOAT_EQ(g.coord(0, 1), 20.0f);
  EXPECT_FLOAT_EQ(g.coord(1, 0), 0.0f);
}

TEST(PointSetTest, SquaredDistance) {
  float a[2] = {0, 0}, b[2] = {3, 4};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b, 2), 25.0);
  double c[2] = {1, 1};
  EXPECT_DOUBLE_EQ(SquaredDistance(c, b, 2), 4.0 + 9.0);
}

TEST(BoxTest, ExtendAndContains) {
  Box b = Box::Empty(2);
  float p1[2] = {0, 0}, p2[2] = {2, 3};
  b.Extend(p1);
  b.Extend(p2);
  EXPECT_DOUBLE_EQ(b.lo(0), 0);
  EXPECT_DOUBLE_EQ(b.hi(1), 3);
  float inside[2] = {1, 1}, outside[2] = {3, 1}, edge[2] = {2, 3};
  EXPECT_TRUE(b.Contains(inside));
  EXPECT_FALSE(b.Contains(outside));
  EXPECT_TRUE(b.Contains(edge));  // closed box
}

TEST(BoxTest, IntersectsAndContainsBox) {
  Box a({0, 0}, {2, 2});
  Box b({1, 1}, {3, 3});
  Box c({2.5, 2.5}, {4, 4});
  Box inner({0.5, 0.5}, {1.5, 1.5});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(c));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.ContainsBox(inner));
  EXPECT_FALSE(a.ContainsBox(b));
  // Touching edges count as intersection (closed boxes).
  Box d({2, 0}, {3, 2});
  EXPECT_TRUE(a.Intersects(d));
}

TEST(BoxTest, VolumeAndCenter) {
  Box b({1, 2, 3}, {2, 4, 6});
  EXPECT_DOUBLE_EQ(b.Volume(), 1.0 * 2.0 * 3.0);
  auto c = b.Center();
  EXPECT_DOUBLE_EQ(c[0], 1.5);
  EXPECT_DOUBLE_EQ(c[2], 4.5);
}

TEST(BoxTest, CornersEnumerateAll) {
  Box b({0, 0, 0}, {1, 2, 3});
  std::set<std::vector<double>> corners;
  for (uint64_t k = 0; k < 8; ++k) corners.insert(b.Corner(k));
  EXPECT_EQ(corners.size(), 8u);
  EXPECT_TRUE(corners.count({0, 0, 0}));
  EXPECT_TRUE(corners.count({1, 2, 3}));
  EXPECT_TRUE(corners.count({1, 0, 3}));
}

TEST(BoxTest, MinMaxSquaredDistance) {
  Box b({0, 0}, {1, 1});
  double inside[2] = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(b.MinSquaredDistance(inside), 0.0);
  EXPECT_DOUBLE_EQ(b.MaxSquaredDistance(inside), 0.5);
  double outside[2] = {2, 3};
  EXPECT_DOUBLE_EQ(b.MinSquaredDistance(outside), 1.0 + 4.0);
  EXPECT_DOUBLE_EQ(b.MaxSquaredDistance(outside), 4.0 + 9.0);
}

TEST(BoxTest, InflateGrowsBothSides) {
  Box b({0, 0}, {1, 1});
  b.Inflate(0.5);
  EXPECT_DOUBLE_EQ(b.lo(0), -0.5);
  EXPECT_DOUBLE_EQ(b.hi(1), 1.5);
}

TEST(HalfspaceTest, Contains) {
  Halfspace h{{1.0, 0.0}, 2.0};  // x <= 2
  float in[2] = {1, 100}, on[2] = {2, 0}, out[2] = {3, 0};
  EXPECT_TRUE(h.Contains(in));
  EXPECT_TRUE(h.Contains(on));
  EXPECT_FALSE(h.Contains(out));
}

TEST(PolyhedronTest, FromBoxMatchesBoxMembership) {
  Box b({-1, 0, 2}, {1, 3, 5});
  Polyhedron poly = Polyhedron::FromBox(b);
  EXPECT_EQ(poly.num_halfspaces(), 6u);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    float p[3];
    for (int j = 0; j < 3; ++j) {
      p[j] = static_cast<float>(rng.NextUniform(-3, 7));
    }
    EXPECT_EQ(poly.Contains(p), b.Contains(p));
  }
}

TEST(PolyhedronTest, BallApproximationContainsBall) {
  std::vector<double> center = {1.0, -2.0, 0.5};
  Polyhedron poly = Polyhedron::BallApproximation(center, 2.0, 20);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    // Points inside the ball must be inside the (circumscribed) polyhedron.
    double p[3];
    double r2 = 0.0;
    for (int j = 0; j < 3; ++j) {
      p[j] = rng.NextGaussian();
      r2 += p[j] * p[j];
    }
    double scale = 2.0 * std::pow(rng.NextDouble(), 1.0 / 3) / std::sqrt(r2);
    for (int j = 0; j < 3; ++j) p[j] = center[j] + p[j] * scale;
    EXPECT_TRUE(poly.Contains(p));
  }
  // The center is deep inside; a far point is outside.
  EXPECT_TRUE(poly.Contains(center.data()));
  double far[3] = {100, 100, 100};
  EXPECT_FALSE(poly.Contains(far));
}

class ClassifyPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ClassifyPropertyTest, ClassificationConsistentWithMembership) {
  const size_t d = GetParam();
  Rng rng(40 + d);
  std::vector<double> center(d, 0.0);
  for (auto& c : center) c = rng.NextUniform(-1, 1);
  Polyhedron poly = Polyhedron::BallApproximation(center, 1.0, 4 * d);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> lo(d), hi(d);
    for (size_t j = 0; j < d; ++j) {
      double a = rng.NextUniform(-2.5, 2.5);
      double b = a + rng.NextUniform(0.01, 1.5);
      lo[j] = a;
      hi[j] = b;
    }
    Box box(lo, hi);
    BoxClass cls = poly.Classify(box);
    // Sample points in the box; their membership must be consistent with
    // the classification (kInside -> all in, kOutside -> none in).
    for (int s = 0; s < 50; ++s) {
      std::vector<double> p(d);
      for (size_t j = 0; j < d; ++j) {
        p[j] = rng.NextUniform(box.lo(j), box.hi(j));
      }
      bool in = poly.Contains(p.data());
      if (cls == BoxClass::kInside) EXPECT_TRUE(in);
      if (cls == BoxClass::kOutside) EXPECT_FALSE(in);
    }
    // Corners too (extremes of the box).
    for (uint64_t k = 0; k < (uint64_t{1} << d); ++k) {
      std::vector<double> corner = box.Corner(k);
      bool in = poly.Contains(corner.data());
      if (cls == BoxClass::kInside) EXPECT_TRUE(in);
      if (cls == BoxClass::kOutside) EXPECT_FALSE(in);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, ClassifyPropertyTest,
                         ::testing::Values(2, 3, 5));

TEST(PolyhedronTest, ClassifyExactForBoxQueries) {
  // For a box-shaped polyhedron the classification must be exact, not just
  // conservative.
  Box query({0, 0}, {4, 4});
  Polyhedron poly = Polyhedron::FromBox(query);
  EXPECT_EQ(poly.Classify(Box({1, 1}, {2, 2})), BoxClass::kInside);
  EXPECT_EQ(poly.Classify(Box({5, 5}, {6, 6})), BoxClass::kOutside);
  EXPECT_EQ(poly.Classify(Box({3, 3}, {5, 5})), BoxClass::kPartial);
  EXPECT_EQ(poly.Classify(Box({0, 0}, {4, 4})), BoxClass::kInside);
  // Off to the side in just one axis.
  EXPECT_EQ(poly.Classify(Box({10, 1}, {11, 2})), BoxClass::kOutside);
}

TEST(PolyhedronTest, ContainsAll) {
  PointSet ps(2, 0);
  float a[2] = {1, 1}, b[2] = {3, 3}, c[2] = {9, 9};
  ps.Append(a);
  ps.Append(b);
  ps.Append(c);
  Polyhedron poly = Polyhedron::FromBox(Box({0, 0}, {4, 4}));
  EXPECT_TRUE(poly.ContainsAll(ps, {0, 1}));
  EXPECT_FALSE(poly.ContainsAll(ps, {0, 1, 2}));
}

}  // namespace
}  // namespace mds
