// Tests of the mdsc shard coordinator: the shard-map grammar, the pure
// merge helpers, and the full scatter-gather path end-to-end — parity
// over 2 and 4 shards against a single mdsd (rows AND ordering), replica
// failover under a mid-load backend kill, hedging against a stalled
// replica, graceful drain, and the per-shard routing counters.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "sdss/catalog.h"
#include "server/client.h"
#include "server/coordinator.h"
#include "server/dataset.h"
#include "server/server.h"

namespace mds {
namespace {

using protocol::WireNeighbor;

// --- ParseShardMap ---------------------------------------------------------

TEST(ParseShardMapTest, SemicolonsCommasAndReplicaOrder) {
  auto map =
      ParseShardMap("127.0.0.1:7001,127.0.0.1:7101;127.0.0.1:7002");
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  ASSERT_EQ(map->shards.size(), 2u);
  ASSERT_EQ(map->shards[0].size(), 2u);  // two replicas, nearest first
  EXPECT_EQ(map->shards[0][0].port, 7001);
  EXPECT_EQ(map->shards[0][1].port, 7101);
  ASSERT_EQ(map->shards[1].size(), 1u);
  EXPECT_EQ(map->shards[1][0].host, "127.0.0.1");
  EXPECT_EQ(map->shards[1][0].port, 7002);
}

TEST(ParseShardMapTest, FileGrammarNewlinesCommentsBlanks) {
  auto map = ParseShardMap(
      "# the replica sets, one shard per line\n"
      "\n"
      "  127.0.0.1:7001 , 127.0.0.1:7101  \n"
      "127.0.0.1:7002\n");
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  ASSERT_EQ(map->shards.size(), 2u);
  EXPECT_EQ(map->shards[0].size(), 2u);  // whitespace around ',' is trimmed
  EXPECT_EQ(map->shards[0][1].port, 7101);
}

TEST(ParseShardMapTest, RejectsMalformedEndpoints) {
  EXPECT_FALSE(ParseShardMap("").ok());
  EXPECT_FALSE(ParseShardMap("# only a comment\n").ok());
  EXPECT_FALSE(ParseShardMap("127.0.0.1").ok());       // no port
  EXPECT_FALSE(ParseShardMap(":7001").ok());           // no host
  EXPECT_FALSE(ParseShardMap("127.0.0.1:").ok());      // empty port
  EXPECT_FALSE(ParseShardMap("127.0.0.1:http").ok());  // non-numeric
  EXPECT_FALSE(ParseShardMap("127.0.0.1:70016").ok()); // > 65535
  EXPECT_FALSE(ParseShardMap("127.0.0.1:70x1").ok());  // trailing junk
  EXPECT_FALSE(ParseShardMap("127.0.0.1:7001,,127.0.0.1:7002").ok());
}

// --- MergeKnnNeighbors -----------------------------------------------------

WireNeighbor N(int64_t id, double d2) {
  WireNeighbor n;
  n.id = id;
  n.squared_distance = d2;
  return n;
}

TEST(MergeKnnTest, InterleavesSortedListsAndTruncatesToK) {
  std::vector<std::vector<WireNeighbor>> shards = {
      {N(10, 0.1), N(11, 0.4)},
      {N(20, 0.2), N(21, 0.3), N(22, 0.9)},
  };
  auto merged = MergeKnnNeighbors(shards, 4);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].id, 10);
  EXPECT_EQ(merged[1].id, 20);
  EXPECT_EQ(merged[2].id, 21);
  EXPECT_EQ(merged[3].id, 11);
}

TEST(MergeKnnTest, DuplicateDistancesBreakTiesById) {
  // Equal distances across shards must order by id — the engine's
  // Neighbor::operator< — or the merge would not be bit-identical to a
  // single server.
  std::vector<std::vector<WireNeighbor>> shards = {
      {N(7, 0.5), N(9, 0.5)},
      {N(3, 0.5), N(8, 0.5)},
  };
  auto merged = MergeKnnNeighbors(shards, 4);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].id, 3);
  EXPECT_EQ(merged[1].id, 7);
  EXPECT_EQ(merged[2].id, 8);
  EXPECT_EQ(merged[3].id, 9);
}

TEST(MergeKnnTest, KLargerThanUnionReturnsEveryNeighbor) {
  std::vector<std::vector<WireNeighbor>> shards = {
      {N(1, 0.1)},
      {},  // an empty shard reply is fine
      {N(2, 0.2)},
  };
  auto merged = MergeKnnNeighbors(shards, 100);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].id, 1);
  EXPECT_EQ(merged[1].id, 2);
  EXPECT_TRUE(MergeKnnNeighbors({}, 5).empty());
  EXPECT_TRUE(MergeKnnNeighbors({{}, {}}, 5).empty());
}

// --- MergeQueryReplies -----------------------------------------------------

protocol::QueryReply Reply(uint64_t rows, std::vector<int64_t> objids,
                           const std::string& path) {
  protocol::QueryReply r;
  r.row_count = rows;
  r.objids = std::move(objids);
  r.rows_scanned = rows;
  r.pages_fetched = 2;
  r.pages_read = 2;
  r.pages_skipped = 1;
  r.chosen_path = path;
  return r;
}

TEST(MergeQueryRepliesTest, SumsCountersAndConcatenatesInShardOrder) {
  std::vector<protocol::QueryReply> shards;
  shards.push_back(Reply(2, {5, 9}, "kd-tree"));
  shards.push_back(Reply(3, {1, 3, 7}, "kd-tree"));
  auto merged = MergeQueryReplies(std::move(shards), 0);
  EXPECT_EQ(merged.row_count, 5u);
  EXPECT_EQ(merged.rows_scanned, 5u);
  EXPECT_EQ(merged.pages_fetched, 4u);
  EXPECT_EQ(merged.pages_read, 4u);
  EXPECT_EQ(merged.pages_skipped, 2u);
  EXPECT_FALSE(merged.degraded);
  EXPECT_EQ(merged.chosen_path, "kd-tree");
  // Shard order, NOT sorted: shard order is global clustered order.
  EXPECT_EQ(merged.objids, (std::vector<int64_t>{5, 9, 1, 3, 7}));
}

TEST(MergeQueryRepliesTest, LimitTruncatesDegradedOrsPathsMix) {
  std::vector<protocol::QueryReply> shards;
  shards.push_back(Reply(2, {5, 9}, "kd-tree"));
  auto degraded = Reply(3, {1, 3, 7}, "full-scan");
  degraded.degraded = true;
  shards.push_back(std::move(degraded));
  auto merged = MergeQueryReplies(std::move(shards), 3);
  EXPECT_EQ(merged.row_count, 5u);  // row_count is the true total
  EXPECT_EQ(merged.objids, (std::vector<int64_t>{5, 9, 1}));
  EXPECT_TRUE(merged.degraded);
  EXPECT_EQ(merged.chosen_path, "mixed");
}

// --- end-to-end fixtures ---------------------------------------------------

/// Shard datasets are the expensive part, so the suite builds them once:
/// the full catalog plus its 2-way and 4-way kd-subtree shardings, all
/// over the same --n/--seed (which is what makes them one logical
/// catalog).
class CoordinatorTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kRows = 20000;
  static constexpr uint64_t kSeed = 7;

  static void SetUpTestSuite() {
    single_ = BuildShard(0, 1);
    for (uint32_t i = 0; i < 2; ++i) shard2_[i] = BuildShard(i, 2);
    for (uint32_t i = 0; i < 4; ++i) shard4_[i] = BuildShard(i, 4);
  }

  static void TearDownTestSuite() {
    delete single_;
    single_ = nullptr;
    for (auto& d : shard2_) { delete d; d = nullptr; }
    for (auto& d : shard4_) { delete d; d = nullptr; }
  }

  static ServedDataset* BuildShard(uint32_t index, uint32_t count) {
    DatasetConfig config;
    config.num_rows = kRows;
    config.seed = kSeed;
    config.shard_index = index;
    config.shard_count = count;
    auto built = ServedDataset::Build(config);
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    return built.ok() ? new ServedDataset(std::move(*built)) : nullptr;
  }

  /// In-process topology: one mdsd QueryServer per (shard, replica) plus
  /// an mdsc Coordinator over them. `shards[s]` lists the datasets of
  /// shard s's replicas (replicas of one shard share a dataset).
  struct Topology {
    std::vector<std::unique_ptr<QueryServer>> backends;
    std::unique_ptr<Coordinator> coordinator;

    Topology() = default;
    Topology(Topology&&) = default;
    Topology& operator=(Topology&&) = default;

    ~Topology() {
      if (coordinator) coordinator->Shutdown();
      for (auto& b : backends) b->Shutdown();
    }
  };

  static Topology Start(
      const std::vector<std::vector<ServedDataset*>>& shards,
      CoordinatorConfig config = {}) {
    Topology t;
    ShardMap map;
    for (const auto& replicas : shards) {
      std::vector<BackendAddress> addrs;
      for (ServedDataset* dataset : replicas) {
        auto server =
            std::make_unique<QueryServer>(dataset, ServerConfig{});
        EXPECT_TRUE(server->Start().ok());
        addrs.push_back({"127.0.0.1", server->port()});
        t.backends.push_back(std::move(server));
      }
      map.shards.push_back(std::move(addrs));
    }
    t.coordinator = std::make_unique<Coordinator>(map, config);
    Status started = t.coordinator->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return t;
  }

  static QueryClient MustConnect(uint16_t port) {
    auto client = QueryClient::Connect("127.0.0.1", port);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  static Box LocusBox(double half_width) {
    double mags[kNumBands];
    StellarLocus(0.5, 0.0, mags);
    std::vector<double> lo(mags, mags + kNumBands);
    std::vector<double> hi = lo;
    for (size_t j = 0; j < kNumBands; ++j) {
      lo[j] -= half_width;
      hi[j] += half_width;
    }
    return Box(lo, hi);
  }

  /// Asserts every query type answers identically (rows AND ordering)
  /// through the coordinator and through the single server.
  static void AssertParity(QueryClient& via_coord, QueryClient& via_single) {
    const Box box = LocusBox(0.8);

    auto count_c = via_coord.PointCount(box);
    auto count_s = via_single.PointCount(box);
    ASSERT_TRUE(count_c.ok()) << count_c.status().ToString();
    ASSERT_TRUE(count_s.ok());
    EXPECT_EQ(*count_c, *count_s);
    EXPECT_GT(*count_s, 0u);

    // Unhinted, each shard's planner chooses independently, and a shard
    // holding half the rows may pick a different access path (hence a
    // different emit order) than the single server does — so the
    // guaranteed unhinted parity is the row set. Exact ordering parity
    // is asserted below with the access path pinned on both sides.
    auto query_c = via_coord.BoxQuery(box);
    auto query_s = via_single.BoxQuery(box);
    ASSERT_TRUE(query_c.ok()) << query_c.status().ToString();
    ASSERT_TRUE(query_s.ok());
    EXPECT_EQ(query_c->row_count, query_s->row_count);
    std::vector<int64_t> set_c = query_c->objids;
    std::vector<int64_t> set_s = query_s->objids;
    std::sort(set_c.begin(), set_c.end());
    std::sort(set_s.begin(), set_s.end());
    EXPECT_EQ(set_c, set_s);

    // Same access path on every server => shard concatenation must
    // reproduce the single server's emit order exactly.
    for (const bool full_scan : {true, false}) {
      QueryOptions hint;
      hint.force_full_scan = full_scan;
      hint.force_index = !full_scan;
      auto hinted_c = via_coord.BoxQuery(box, 0, hint);
      auto hinted_s = via_single.BoxQuery(box, 0, hint);
      ASSERT_TRUE(hinted_c.ok()) << hinted_c.status().ToString();
      ASSERT_TRUE(hinted_s.ok());
      EXPECT_EQ(hinted_c->objids, hinted_s->objids)
          << (full_scan ? "full-scan" : "kd-tree");
      EXPECT_EQ(hinted_c->chosen_path, hinted_s->chosen_path);

      auto limited_c = via_coord.BoxQuery(box, 7, hint);
      auto limited_s = via_single.BoxQuery(box, 7, hint);
      ASSERT_TRUE(limited_c.ok());
      ASSERT_TRUE(limited_s.ok());
      EXPECT_EQ(limited_c->objids, limited_s->objids);
      EXPECT_EQ(limited_c->objids.size(), 7u);
      // TOP(limit) is a prefix of the unlimited reply.
      EXPECT_TRUE(std::equal(limited_c->objids.begin(),
                             limited_c->objids.end(),
                             hinted_c->objids.begin()));
    }

    double target[kNumBands];
    StellarLocus(0.62, 0.3, target);
    const std::vector<double> point(target, target + kNumBands);
    for (uint32_t k : {1u, 5u, 100u}) {
      auto knn_c = via_coord.Knn(point, k);
      auto knn_s = via_single.Knn(point, k);
      ASSERT_TRUE(knn_c.ok()) << knn_c.status().ToString();
      ASSERT_TRUE(knn_s.ok());
      ASSERT_EQ(knn_c->neighbors.size(), k);
      ASSERT_EQ(knn_s->neighbors.size(), k);
      for (uint32_t i = 0; i < k; ++i) {
        EXPECT_EQ(knn_c->neighbors[i].id, knn_s->neighbors[i].id) << i;
        EXPECT_EQ(knn_c->neighbors[i].squared_distance,
                  knn_s->neighbors[i].squared_distance)
            << i;
      }
    }

    const std::vector<Box> boxes = {LocusBox(0.2), LocusBox(0.5),
                                    LocusBox(0.8)};
    auto pipe_c = via_coord.PointCountPipeline(boxes);
    auto pipe_s = via_single.PointCountPipeline(boxes);
    ASSERT_EQ(pipe_c.size(), boxes.size());
    for (size_t i = 0; i < boxes.size(); ++i) {
      ASSERT_TRUE(pipe_c[i].ok()) << pipe_c[i].status().ToString();
      ASSERT_TRUE(pipe_s[i].ok());
      EXPECT_EQ(*pipe_c[i], *pipe_s[i]) << i;
    }
  }

  static ServedDataset* single_;
  static ServedDataset* shard2_[2];
  static ServedDataset* shard4_[4];
};

ServedDataset* CoordinatorTest::single_ = nullptr;
ServedDataset* CoordinatorTest::shard2_[2] = {};
ServedDataset* CoordinatorTest::shard4_[4] = {};

// --- parity ----------------------------------------------------------------

TEST_F(CoordinatorTest, ShardedDatasetsPartitionTheCatalog) {
  ASSERT_NE(single_, nullptr);
  uint64_t total2 = 0, total4 = 0;
  for (auto* d : shard2_) { ASSERT_NE(d, nullptr); total2 += d->num_rows(); }
  for (auto* d : shard4_) { ASSERT_NE(d, nullptr); total4 += d->num_rows(); }
  EXPECT_EQ(total2, single_->num_rows());
  EXPECT_EQ(total4, single_->num_rows());
  for (auto* d : shard4_) EXPECT_LT(d->num_rows(), single_->num_rows());
}

TEST_F(CoordinatorTest, TwoShardParityWithSingleServer) {
  QueryServer single(single_, ServerConfig{});
  ASSERT_TRUE(single.Start().ok());
  Topology t = Start({{shard2_[0]}, {shard2_[1]}});

  QueryClient via_coord = MustConnect(t.coordinator->port());
  QueryClient via_single = MustConnect(single.port());

  auto health = via_coord.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->served_rows, kRows);
  EXPECT_EQ(health->dim, kNumBands);
  EXPECT_FALSE(health->draining);

  AssertParity(via_coord, via_single);
  single.Shutdown();
}

TEST_F(CoordinatorTest, FourShardParityWithSingleServer) {
  QueryServer single(single_, ServerConfig{});
  ASSERT_TRUE(single.Start().ok());
  Topology t =
      Start({{shard4_[0]}, {shard4_[1]}, {shard4_[2]}, {shard4_[3]}});

  QueryClient via_coord = MustConnect(t.coordinator->port());
  QueryClient via_single = MustConnect(single.port());
  AssertParity(via_coord, via_single);
  single.Shutdown();
}

TEST_F(CoordinatorTest, TableSampleDeterministicAndContained) {
  Topology t = Start({{shard2_[0]}, {shard2_[1]}});
  QueryClient client = MustConnect(t.coordinator->port());

  const Box box = LocusBox(0.8);
  auto a = client.TableSample(box, 10.0, 50, /*seed=*/123);
  auto b = client.TableSample(box, 10.0, 50, /*seed=*/123);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  // Same seed through the same topology => the same sample.
  EXPECT_EQ(a->objids, b->objids);
  EXPECT_LE(a->objids.size(), 50u);
  EXPECT_FALSE(a->objids.empty());
  // TABLESAMPLE row_count counts the returned rows (post-TOP).
  EXPECT_EQ(a->row_count, a->objids.size());
  // Every sampled objid is a real catalog row inside the box.
  const PointSet& points = single_->points();
  for (int64_t id : a->objids) {
    ASSERT_GE(id, 0);
    ASSERT_LT(static_cast<uint64_t>(id), points.size());
    EXPECT_TRUE(box.Contains(points.point(static_cast<uint64_t>(id))));
  }
}

TEST_F(CoordinatorTest, PlannerHintsPassThroughToShards) {
  Topology t = Start({{shard2_[0]}, {shard2_[1]}});
  QueryClient client = MustConnect(t.coordinator->port());
  const Box box = LocusBox(0.8);

  QueryOptions full_scan;
  full_scan.force_full_scan = true;
  auto scanned = client.BoxQuery(box, 0, full_scan);
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  // Every shard obeyed the hint, so the merged path is not "mixed".
  EXPECT_EQ(scanned->chosen_path, "full-scan");
  EXPECT_EQ(scanned->rows_scanned, kRows);  // both shards scanned fully

  QueryOptions indexed;
  indexed.force_index = true;
  auto via_index = client.BoxQuery(box, 0, indexed);
  ASSERT_TRUE(via_index.ok());
  EXPECT_EQ(via_index->chosen_path, "kd-tree");
  // The two paths emit in different orders; the row set must agree.
  std::vector<int64_t> by_index = via_index->objids;
  std::vector<int64_t> by_scan = scanned->objids;
  std::sort(by_index.begin(), by_index.end());
  std::sort(by_scan.begin(), by_scan.end());
  EXPECT_EQ(by_index, by_scan);
}

// --- kNN bounds across shards ----------------------------------------------

TEST_F(CoordinatorTest, KnnLargerThanOneShardSmallerThanUnion) {
  QueryServer single(single_, ServerConfig{});
  ASSERT_TRUE(single.Start().ok());
  Topology t =
      Start({{shard4_[0]}, {shard4_[1]}, {shard4_[2]}, {shard4_[3]}});
  QueryClient via_coord = MustConnect(t.coordinator->port());
  QueryClient via_single = MustConnect(single.port());

  // k exceeds every single shard's population (kRows/4) but not the
  // union: each shard must be asked for min(k, its rows) and the merge
  // must still equal the single server bit for bit.
  const uint32_t k = static_cast<uint32_t>(kRows / 4 + 100);
  double target[kNumBands];
  StellarLocus(0.5, 0.0, target);
  const std::vector<double> point(target, target + kNumBands);

  auto knn_c = via_coord.Knn(point, k);
  auto knn_s = via_single.Knn(point, k);
  ASSERT_TRUE(knn_c.ok()) << knn_c.status().ToString();
  ASSERT_TRUE(knn_s.ok());
  ASSERT_EQ(knn_c->neighbors.size(), k);
  ASSERT_EQ(knn_c->neighbors.size(), knn_s->neighbors.size());
  for (uint32_t i = 0; i < k; ++i) {
    ASSERT_EQ(knn_c->neighbors[i].id, knn_s->neighbors[i].id) << i;
  }

  // k beyond the union is InvalidArgument, exactly like a single server
  // — and not retryable, so it must come back after one round, not after
  // walking replicas.
  auto too_big = via_coord.Knn(point, static_cast<uint32_t>(kRows + 1));
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kInvalidArgument);
  single.Shutdown();
}

TEST_F(CoordinatorTest, DimensionMismatchIsInvalidArgument) {
  Topology t = Start({{shard2_[0]}, {shard2_[1]}});
  QueryClient client = MustConnect(t.coordinator->port());
  const Box flat({0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});  // dim 3, catalog dim 5
  auto count = client.PointCount(flat);
  ASSERT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), StatusCode::kInvalidArgument);
  // The connection survives a semantic error.
  auto ok = client.PointCount(LocusBox(0.5));
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

// --- failover, hedging, drain ----------------------------------------------

TEST_F(CoordinatorTest, BackendKillMidLoadFailsOverWithZeroClientErrors) {
  // One shard, two replicas over the same dataset. Replica 0 dies while
  // clients are querying; every client request must still succeed.
  CoordinatorConfig config;
  config.sub_deadline_ms = 2000;
  Topology t = Start({{single_, single_}}, config);

  QueryClient warmup = MustConnect(t.coordinator->port());
  auto first = warmup.PointCount(LocusBox(0.5));
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> successes{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> loaders;
  for (int i = 0; i < 3; ++i) {
    loaders.emplace_back([&t, &stop, &successes, &failures] {
      QueryClient client = MustConnect(t.coordinator->port());
      const Box box = LocusBox(0.5);
      while (!stop.load(std::memory_order_relaxed)) {
        auto count = client.PointCount(box);
        if (count.ok()) {
          successes.fetch_add(1, std::memory_order_relaxed);
        } else {
          failures.fetch_add(1, std::memory_order_relaxed);
          ADD_FAILURE() << "client saw: " << count.status().ToString();
          // The exchange failure closed the connection; reconnect.
          client = MustConnect(t.coordinator->port());
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  t.backends[0]->Shutdown();  // kill replica 0 mid-load
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  for (auto& th : loaders) th.join();

  EXPECT_GT(successes.load(), 0u);
  EXPECT_EQ(failures.load(), 0u);

  const auto stats = t.coordinator->Stats();
  ASSERT_EQ(stats.shards.size(), 1u);
  EXPECT_GE(stats.shards[0].failovers, 1u);
  EXPECT_GE(stats.shards[0].backend_errors, 1u);
  // Replica 0 accumulated consecutive failures and sits in backoff.
  EXPECT_LT(stats.shards[0].healthy_replicas, stats.shards[0].replicas);
}

TEST_F(CoordinatorTest, HedgeFiresAgainstStalledReplicaAndWins) {
  // Replica 0 is a black hole: it accepts connections and never replies.
  // With a fixed hedge delay well under the sub-deadline, the hedge to
  // replica 1 must answer the client promptly and be counted as won.
  auto stall = TcpListener::Listen(0);
  ASSERT_TRUE(stall.ok());
  const uint16_t stall_port = stall->port();
  std::atomic<bool> stall_stop{false};
  std::vector<Socket> swallowed;
  std::thread stall_thread([&stall, &stall_stop, &swallowed] {
    while (!stall_stop.load(std::memory_order_relaxed)) {
      auto sock = stall->Accept(IoDeadline::After(50));
      if (sock.ok()) swallowed.push_back(std::move(*sock));
    }
  });

  auto backend = std::make_unique<QueryServer>(single_, ServerConfig{});
  ASSERT_TRUE(backend->Start().ok());

  ShardMap map;
  map.shards.push_back(
      {{"127.0.0.1", stall_port}, {"127.0.0.1", backend->port()}});
  CoordinatorConfig config;
  config.hedge_delay_ms = 50;
  config.sub_deadline_ms = 300;
  Coordinator coordinator(map, config);
  // Start() probes replica 0, times out, and falls through to replica 1.
  ASSERT_TRUE(coordinator.Start().ok());

  QueryClient client = MustConnect(coordinator.port());
  auto count = client.PointCount(LocusBox(0.5));
  ASSERT_TRUE(count.ok()) << count.status().ToString();

  const auto stats = coordinator.Stats();
  ASSERT_EQ(stats.shards.size(), 1u);
  EXPECT_GE(stats.shards[0].hedges_fired, 1u);
  EXPECT_GE(stats.shards[0].hedges_won, 1u);

  // Shutdown waits out the stalled attempt (sub-deadline + client slack).
  coordinator.Shutdown();
  backend->Shutdown();
  stall_stop.store(true);
  stall_thread.join();
}

TEST_F(CoordinatorTest, DrainShedsQueriesButAnswersHealth) {
  Topology t = Start({{shard2_[0]}, {shard2_[1]}});
  QueryClient client = MustConnect(t.coordinator->port());
  // Complete one request so the accept thread has registered this
  // connection before the drain starts (a connection still in the accept
  // queue when drain begins is dropped, like any new arrival).
  ASSERT_TRUE(client.PointCount(LocusBox(0.5)).ok());

  t.coordinator->RequestDrain();
  EXPECT_TRUE(t.coordinator->draining());

  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_TRUE(health->draining);

  auto count = client.PointCount(LocusBox(0.5));
  ASSERT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), StatusCode::kUnavailable);

  const auto stats = t.coordinator->Stats();
  EXPECT_GE(stats.rejected_draining, 1u);
}

TEST_F(CoordinatorTest, StatsCarryPerShardRoutingCounters) {
  Topology t = Start({{shard2_[0]}, {shard2_[1]}});
  QueryClient client = MustConnect(t.coordinator->port());

  const Box box = LocusBox(0.5);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.PointCount(box).ok());
  }

  // Over the wire, through the same kStats request mdsd serves.
  auto stats = client.ServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->requests_total, 4u);  // 3 counts + this stats request
  EXPECT_GE(stats->replies_ok, 4u);      // the stats reply counts itself
  EXPECT_EQ(stats->replies_error, 0u);
  EXPECT_GT(stats->bytes_in, 0u);
  EXPECT_GT(stats->bytes_out, 0u);
  ASSERT_EQ(stats->shards.size(), 2u);
  for (const auto& shard : stats->shards) {
    EXPECT_EQ(shard.replicas, 1u);
    EXPECT_EQ(shard.healthy_replicas, 1u);
    EXPECT_GE(shard.requests, 3u);
    EXPECT_EQ(shard.failovers, 0u);
    EXPECT_EQ(shard.backend_errors, 0u);
    EXPECT_GT(shard.p99_us, 0u);
  }
}

}  // namespace
}  // namespace mds
