#include <gtest/gtest.h>

#include <cmath>

#include <map>

#include "geom/box.h"
#include "sdss/catalog.h"
#include "sdss/magnitude_table.h"
#include "sdss/sky.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace mds {
namespace {

TEST(CatalogTest, Deterministic) {
  CatalogConfig config;
  config.num_objects = 5000;
  config.seed = 42;
  Catalog a = GenerateCatalog(config);
  Catalog b = GenerateCatalog(config);
  EXPECT_EQ(a.colors.raw(), b.colors.raw());
  EXPECT_EQ(a.classes, b.classes);
  EXPECT_EQ(a.redshifts, b.redshifts);
}

TEST(CatalogTest, ClassFractionsRoughlyHonored) {
  CatalogConfig config;
  config.num_objects = 100000;
  Catalog cat = GenerateCatalog(config);
  size_t counts[4] = {0, 0, 0, 0};
  for (SpectralClass c : cat.classes) ++counts[static_cast<size_t>(c)];
  double n = static_cast<double>(cat.size());
  EXPECT_NEAR(counts[0] / n, config.star_fraction, 0.01);
  EXPECT_NEAR(counts[1] / n, config.galaxy_fraction, 0.01);
  EXPECT_NEAR(counts[2] / n, config.quasar_fraction, 0.005);
  EXPECT_GT(counts[3], 0u);  // outliers exist (§2.1)
}

TEST(CatalogTest, RedshiftsOnlyForExtragalactic) {
  CatalogConfig config;
  config.num_objects = 20000;
  Catalog cat = GenerateCatalog(config);
  for (size_t i = 0; i < cat.size(); ++i) {
    switch (cat.classes[i]) {
      case SpectralClass::kStar:
      case SpectralClass::kOutlier:
        EXPECT_EQ(cat.redshifts[i], 0.0f);
        break;
      case SpectralClass::kGalaxy:
        EXPECT_GT(cat.redshifts[i], 0.0f);
        EXPECT_LE(cat.redshifts[i], config.max_galaxy_redshift);
        break;
      case SpectralClass::kQuasar:
        EXPECT_LE(cat.redshifts[i], config.max_quasar_redshift);
        break;
    }
  }
}

TEST(CatalogTest, DistributionIsNonUniform) {
  // Figure 1's key property: strong density contrast. Compare occupancy of
  // a coarse grid: the busiest cell must hold orders of magnitude more
  // points than the median non-empty cell count would under uniformity.
  CatalogConfig config;
  config.num_objects = 50000;
  Catalog cat = GenerateCatalog(config);
  Box bounds = Box::Bounding(cat.colors);
  const int res = 8;
  std::map<int64_t, int> cells;
  for (size_t i = 0; i < cat.size(); ++i) {
    const float* p = cat.colors.point(i);
    int64_t cell = 0;
    for (size_t j = 0; j < kNumBands; ++j) {
      double t = (p[j] - bounds.lo(j)) / (bounds.hi(j) - bounds.lo(j));
      int c = std::min(res - 1, static_cast<int>(t * res));
      cell = cell * res + c;
    }
    ++cells[cell];
  }
  int max_count = 0;
  for (const auto& [cell, count] : cells) max_count = std::max(max_count, count);
  double uniform_expect =
      static_cast<double>(cat.size()) / std::pow(res, kNumBands);
  EXPECT_GT(max_count, 100 * uniform_expect);
}

TEST(CatalogTest, LociAreSmooth) {
  // Galaxy locus: colors move continuously with redshift.
  double a[kNumBands], b[kNumBands];
  GalaxyLocus(0.2, 0.0, a);
  GalaxyLocus(0.201, 0.0, b);
  for (size_t j = 0; j < kNumBands; ++j) {
    EXPECT_NEAR(a[j], b[j], 0.02);
  }
  // Different redshifts produce different colors (invertibility basis).
  GalaxyLocus(0.4, 0.0, b);
  double diff = 0.0;
  for (size_t j = 0; j < kNumBands; ++j) diff += std::abs(a[j] - b[j]);
  EXPECT_GT(diff, 0.1);
}

TEST(ReferenceSplitTest, FractionAndEligibility) {
  CatalogConfig config;
  config.num_objects = 50000;
  Catalog cat = GenerateCatalog(config);
  ReferenceSplit split = SplitReferenceSet(cat, 0.01, 7);
  EXPECT_EQ(split.reference.size() + split.unknown.size(), cat.size());
  for (uint64_t id : split.reference) {
    EXPECT_TRUE(cat.classes[id] == SpectralClass::kGalaxy ||
                cat.classes[id] == SpectralClass::kQuasar);
  }
  // ~1% of eligible objects.
  double eligible = 0;
  for (SpectralClass c : cat.classes) {
    if (c == SpectralClass::kGalaxy || c == SpectralClass::kQuasar) ++eligible;
  }
  EXPECT_NEAR(split.reference.size() / eligible, 0.01, 0.003);
}

TEST(MagnitudeTableTest, MaterializeAndReadBack) {
  CatalogConfig config;
  config.num_objects = 3000;
  Catalog cat = GenerateCatalog(config);
  MemPager pager;
  BufferPool pool(&pager, 256);
  auto table = MaterializeMagnitudeTable(&pool, cat, {});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), cat.size());
  float mags[kNumBands];
  ASSERT_TRUE(table
                  ->Scan([&](uint64_t row_id, RowRef ref) {
                    EXPECT_EQ(ref.GetInt64(kColObjId),
                              static_cast<int64_t>(row_id));
                    ReadMagnitudes(ref, mags);
                    for (size_t b = 0; b < kNumBands; ++b) {
                      EXPECT_FLOAT_EQ(mags[b], cat.colors.coord(row_id, b));
                    }
                    EXPECT_EQ(ref.GetInt64(kColClass),
                              static_cast<int64_t>(cat.classes[row_id]));
                    EXPECT_FLOAT_EQ(ref.GetFloat32(kColRedshift),
                                    cat.redshifts[row_id]);
                  })
                  .ok());
}

TEST(MagnitudeTableTest, MaterializeWithPermutation) {
  CatalogConfig config;
  config.num_objects = 1000;
  Catalog cat = GenerateCatalog(config);
  std::vector<uint64_t> order(cat.size());
  for (uint64_t i = 0; i < cat.size(); ++i) order[i] = cat.size() - 1 - i;
  MemPager pager;
  BufferPool pool(&pager, 64);
  auto table = MaterializeMagnitudeTable(&pool, cat, order);
  ASSERT_TRUE(table.ok());
  std::vector<uint8_t> buf(table->schema().row_size());
  ASSERT_TRUE(table->ReadRow(0, buf.data()).ok());
  RowRef ref(&table->schema(), buf.data());
  EXPECT_EQ(ref.GetInt64(kColObjId), static_cast<int64_t>(cat.size() - 1));
}

TEST(SkyCatalogTest, DeterministicAndInFootprint) {
  SkyCatalogConfig config;
  config.num_galaxies = 20000;
  SkyCatalog a = GenerateSkyCatalog(config);
  SkyCatalog b = GenerateSkyCatalog(config);
  EXPECT_EQ(a.redshift, b.redshift);
  EXPECT_EQ(a.positions.raw(), b.positions.raw());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a.dec[i], config.dec_min - 5 * config.cluster_sigma_deg);
    EXPECT_LE(a.dec[i], config.dec_max + 5 * config.cluster_sigma_deg);
    EXPECT_GT(a.redshift[i], 0.0f);
    EXPECT_LE(a.redshift[i],
              config.max_redshift + 6 * config.finger_sigma_z);
  }
}

TEST(SkyCatalogTest, CartesianConsistentWithHubbleLaw) {
  SkyCatalogConfig config;
  config.num_galaxies = 2000;
  SkyCatalog cat = GenerateSkyCatalog(config);
  for (size_t i = 0; i < cat.size(); i += 47) {
    double p[3];
    SkyToCartesian(cat.ra[i], cat.dec[i], cat.redshift[i], p);
    double r = std::sqrt(p[0] * p[0] + p[1] * p[1] + p[2] * p[2]);
    // Radial distance is linear in redshift: r = 2998 z (h^-1 Mpc).
    EXPECT_NEAR(r, 2998.0 * cat.redshift[i], 1e-6 * r + 1e-9);
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(cat.positions.coord(i, j), p[j], 1e-3);
    }
  }
}

TEST(SkyCatalogTest, FingersOfGodAreRadial) {
  // Cluster members scatter much more along the line of sight (redshift)
  // than across it (angle) — the Figure 14 signature.
  SkyCatalogConfig config;
  config.num_galaxies = 100000;
  SkyCatalog cat = GenerateSkyCatalog(config);
  // Per-cluster spreads.
  std::map<int32_t, std::vector<size_t>> members;
  for (size_t i = 0; i < cat.size(); ++i) {
    if (cat.cluster_id[i] >= 0) members[cat.cluster_id[i]].push_back(i);
  }
  ASSERT_GT(members.size(), 50u);
  size_t radial_dominant = 0, checked = 0;
  for (const auto& [cid, ids] : members) {
    if (ids.size() < 30) continue;
    // Mean position and scatter along/across the radial direction.
    double mean[3] = {0, 0, 0};
    for (size_t id : ids) {
      for (int j = 0; j < 3; ++j) mean[j] += cat.positions.coord(id, j);
    }
    for (double& m : mean) m /= ids.size();
    double norm = std::sqrt(mean[0] * mean[0] + mean[1] * mean[1] +
                            mean[2] * mean[2]);
    double radial[3] = {mean[0] / norm, mean[1] / norm, mean[2] / norm};
    double var_along = 0, var_across = 0;
    for (size_t id : ids) {
      double d[3], along = 0;
      for (int j = 0; j < 3; ++j) {
        d[j] = cat.positions.coord(id, j) - mean[j];
        along += d[j] * radial[j];
      }
      double total = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
      var_along += along * along;
      var_across += (total - along * along) / 2;  // per transverse axis
    }
    ++checked;
    if (var_along > 2.0 * var_across) ++radial_dominant;
  }
  ASSERT_GT(checked, 30u);
  EXPECT_GT(static_cast<double>(radial_dominant) / checked, 0.8);
}

TEST(SkyCatalogTest, ClusteredFractionHonored) {
  SkyCatalogConfig config;
  config.num_galaxies = 50000;
  config.clustered_fraction = 0.3;
  SkyCatalog cat = GenerateSkyCatalog(config);
  size_t clustered = 0;
  for (int32_t id : cat.cluster_id) clustered += id >= 0;
  EXPECT_NEAR(static_cast<double>(clustered) / cat.size(), 0.3, 0.02);
}

}  // namespace
}  // namespace mds
