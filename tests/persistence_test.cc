#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "core/index_io.h"
#include "core/knn.h"
#include "core/point_table.h"
#include "core/query_engine.h"
#include "storage/page_stream.h"
#include "storage/pager.h"

namespace mds {
namespace {

TEST(PageStreamTest, RoundTripSmall) {
  MemPager pager;
  BufferPool pool(&pager, 16);
  PageStreamWriter w(&pool);
  ASSERT_TRUE(w.WriteValue<uint64_t>(0xfeedface).ok());
  ASSERT_TRUE(w.WriteValue<double>(3.25).ok());
  std::vector<int32_t> v = {1, -2, 3};
  ASSERT_TRUE(w.WriteVector(v).ok());
  auto head = w.Finish();
  ASSERT_TRUE(head.ok());

  PageStreamReader r(&pool, *head);
  EXPECT_EQ(*r.ReadValue<uint64_t>(), 0xfeedfaceULL);
  EXPECT_EQ(*r.ReadValue<double>(), 3.25);
  auto back = r.ReadVector<int32_t>();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, v);
  // Reading past the end fails cleanly.
  EXPECT_EQ(r.ReadValue<uint8_t>().status().code(), StatusCode::kOutOfRange);
}

TEST(PageStreamTest, RoundTripMultiPage) {
  MemPager pager;
  BufferPool pool(&pager, 64);
  Rng rng(3);
  std::vector<uint64_t> big(100000);
  for (auto& x : big) x = rng.NextU64();
  PageStreamWriter w(&pool);
  ASSERT_TRUE(w.WriteVector(big).ok());
  auto head = w.Finish();
  ASSERT_TRUE(head.ok());
  // ~800 KB spans ~100 pages; the pool holds 64, so the chain is also
  // exercised through eviction and write-back.
  EXPECT_GT(pager.NumPages(), 50u);

  PageStreamReader r(&pool, *head);
  auto back = r.ReadVector<uint64_t>();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, big);
}

TEST(PageStreamTest, EmptyStream) {
  MemPager pager;
  BufferPool pool(&pager, 8);
  PageStreamWriter w(&pool);
  auto head = w.Finish();
  ASSERT_TRUE(head.ok());
  PageStreamReader r(&pool, *head);
  EXPECT_EQ(r.ReadValue<uint8_t>().status().code(), StatusCode::kOutOfRange);
}

TEST(PageStreamTest, WriteAfterFinishFails) {
  MemPager pager;
  BufferPool pool(&pager, 8);
  PageStreamWriter w(&pool);
  ASSERT_TRUE(w.WriteValue<int>(1).ok());
  ASSERT_TRUE(w.Finish().ok());
  EXPECT_EQ(w.WriteValue<int>(2).code(), StatusCode::kFailedPrecondition);
}

TEST(PageStreamTest, CorruptVectorLengthRejected) {
  MemPager pager;
  BufferPool pool(&pager, 8);
  PageStreamWriter w(&pool);
  ASSERT_TRUE(w.WriteValue<uint64_t>(~uint64_t{0}).ok());  // absurd length
  auto head = w.Finish();
  ASSERT_TRUE(head.ok());
  PageStreamReader r(&pool, *head);
  EXPECT_EQ(r.ReadVector<uint32_t>().status().code(), StatusCode::kCorruption);
}

PointSet MakePoints(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  PointSet ps(d, 0);
  ps.Reserve(n);
  std::vector<double> p(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      p[j] = rng.NextDouble() < 0.5 ? 0.4 + 0.05 * rng.NextGaussian()
                                    : rng.NextDouble();
    }
    ps.Append(p.data());
  }
  return ps;
}

TEST(IndexIoTest, KdTreeRoundTrip) {
  PointSet ps = MakePoints(20000, 3, 5);
  MemPager pager;
  BufferPool pool(&pager, 4096);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  auto head = IndexIo::SaveKdTree(&pool, *tree);
  ASSERT_TRUE(head.ok());
  auto loaded = IndexIo::LoadKdTree(&pool, *head, &ps);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded->num_leaves(), tree->num_leaves());
  EXPECT_EQ(loaded->num_levels(), tree->num_levels());
  EXPECT_EQ(loaded->clustered_order(), tree->clustered_order());
  // Query equivalence.
  Polyhedron poly = Polyhedron::BallApproximation({0.4, 0.4, 0.4}, 0.2, 12);
  std::vector<uint64_t> a, b;
  tree->QueryPolyhedron(poly, &a);
  loaded->QueryPolyhedron(poly, &b);
  EXPECT_EQ(a, b);
  // k-NN equivalence.
  KdKnnSearcher sa(&*tree), sb(&*loaded);
  double q[3] = {0.41, 0.39, 0.42};
  auto na = sa.BoundaryGrow(q, 10);
  auto nb = sb.BoundaryGrow(q, 10);
  for (size_t i = 0; i < na.size(); ++i) {
    EXPECT_DOUBLE_EQ(na[i].squared_distance, nb[i].squared_distance);
  }
}

TEST(IndexIoTest, LayeredGridRoundTrip) {
  PointSet ps = MakePoints(30000, 3, 7);
  MemPager pager;
  BufferPool pool(&pager, 4096);
  auto grid = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(grid.ok());
  auto head = IndexIo::SaveLayeredGrid(&pool, *grid);
  ASSERT_TRUE(head.ok());
  auto loaded = IndexIo::LoadLayeredGrid(&pool, *head, &ps);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded->num_layers(), grid->num_layers());
  EXPECT_EQ(loaded->clustered_order(), grid->clustered_order());
  Box q({0.3, 0.3, 0.3}, {0.5, 0.5, 0.5});
  std::vector<uint64_t> a, b;
  ASSERT_TRUE(grid->SampleQuery(q, 500, &a).ok());
  ASSERT_TRUE(loaded->SampleQuery(q, 500, &b).ok());
  EXPECT_EQ(a, b);
}

TEST(IndexIoTest, VoronoiRoundTrip) {
  PointSet ps = MakePoints(15000, 3, 9);
  MemPager pager;
  BufferPool pool(&pager, 4096);
  VoronoiIndexConfig config;
  config.num_seeds = 128;
  auto index = VoronoiIndex::Build(&ps, config);
  ASSERT_TRUE(index.ok());
  auto head = IndexIo::SaveVoronoi(&pool, *index);
  ASSERT_TRUE(head.ok());
  auto loaded = IndexIo::LoadVoronoi(&pool, *head, &ps);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded->num_seeds(), index->num_seeds());
  EXPECT_EQ(loaded->seed_graph(), index->seed_graph());
  EXPECT_EQ(loaded->clustered_order(), index->clustered_order());
  for (uint64_t i = 0; i < ps.size(); i += 97) {
    EXPECT_EQ(loaded->tag(i), index->tag(i));
  }
  // Walk + exact nearest-seed equivalence.
  double q[3] = {0.5, 0.5, 0.5};
  EXPECT_EQ(loaded->NearestSeed(q), index->NearestSeed(q));
  Polyhedron poly = Polyhedron::BallApproximation({0.4, 0.4, 0.4}, 0.15, 10);
  std::vector<uint64_t> a, b;
  index->QueryPolyhedron(poly, &a);
  loaded->QueryPolyhedron(poly, &b);
  EXPECT_EQ(a, b);
}

TEST(IndexIoTest, WrongMagicRejected) {
  PointSet ps = MakePoints(5000, 3, 11);
  MemPager pager;
  BufferPool pool(&pager, 1024);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  auto head = IndexIo::SaveKdTree(&pool, *tree);
  ASSERT_TRUE(head.ok());
  // Loading a kd-tree chain as a grid must fail on magic.
  EXPECT_EQ(IndexIo::LoadLayeredGrid(&pool, *head, &ps).status().code(),
            StatusCode::kCorruption);
}

TEST(IndexIoTest, MismatchedPointSetRejected) {
  PointSet ps = MakePoints(5000, 3, 13);
  PointSet other = MakePoints(4999, 3, 13);
  MemPager pager;
  BufferPool pool(&pager, 1024);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  auto head = IndexIo::SaveKdTree(&pool, *tree);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(IndexIo::LoadKdTree(&pool, *head, &other).status().code(),
            StatusCode::kInvalidArgument);
}

/// End-to-end persistence: table + index into one FILE, close, reopen,
/// query — the out-of-core database lifecycle.
TEST(IndexIoTest, FilePagerReopenLifecycle) {
  std::string path =
      (std::filesystem::temp_directory_path() / "mds_persist_test.db").string();
  PointSet ps = MakePoints(20000, 3, 17);
  PageId table_first_page;
  PageId index_head;
  uint64_t table_pages;
  {
    auto pager = FilePager::Create(path);
    ASSERT_TRUE(pager.ok());
    BufferPool pool(pager->get(), 512);
    auto tree = KdTreeIndex::Build(&ps);
    ASSERT_TRUE(tree.ok());
    auto table =
        MaterializePointTable(&pool, ps, tree->clustered_order());
    ASSERT_TRUE(table.ok());
    table_pages = table->num_pages();
    table_first_page = 0;  // tables allocate from page 0 here
    auto head = IndexIo::SaveKdTree(&pool, *tree);
    ASSERT_TRUE(head.ok());
    index_head = *head;
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  // Reopen the file cold.
  {
    auto pager = FilePager::Open(path);
    ASSERT_TRUE(pager.ok());
    BufferPool pool(pager->get(), 512);
    auto loaded = IndexIo::LoadKdTree(&pool, index_head, &ps);
    ASSERT_TRUE(loaded.ok());
    // Rebind the table: the schema is known, pages 0..table_pages-1.
    auto table = Table::Create(&pool, PointTableSchema(3));
    ASSERT_TRUE(table.ok());
    // Instead of poking table internals, verify via the index alone:
    Polyhedron poly =
        Polyhedron::BallApproximation({0.4, 0.4, 0.4}, 0.1, 12);
    std::vector<uint64_t> got;
    loaded->QueryPolyhedron(poly, &got);
    std::vector<uint64_t> expect;
    for (uint64_t i = 0; i < ps.size(); ++i) {
      if (poly.Contains(ps.point(i))) expect.push_back(i);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect);
    (void)table_pages;
    (void)table_first_page;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mds
