#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "core/index_io.h"
#include "core/knn.h"
#include "core/point_table.h"
#include "core/query_engine.h"
#include "server/dataset.h"
#include "storage/mmap_pager.h"
#include "storage/page_stream.h"
#include "storage/pager.h"

namespace mds {
namespace {

TEST(PageStreamTest, RoundTripSmall) {
  MemPager pager;
  BufferPool pool(&pager, 16);
  PageStreamWriter w(&pool);
  ASSERT_TRUE(w.WriteValue<uint64_t>(0xfeedface).ok());
  ASSERT_TRUE(w.WriteValue<double>(3.25).ok());
  std::vector<int32_t> v = {1, -2, 3};
  ASSERT_TRUE(w.WriteVector(v).ok());
  auto head = w.Finish();
  ASSERT_TRUE(head.ok());

  PageStreamReader r(&pool, *head);
  EXPECT_EQ(*r.ReadValue<uint64_t>(), 0xfeedfaceULL);
  EXPECT_EQ(*r.ReadValue<double>(), 3.25);
  auto back = r.ReadVector<int32_t>();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, v);
  // Reading past the end fails cleanly.
  EXPECT_EQ(r.ReadValue<uint8_t>().status().code(), StatusCode::kOutOfRange);
}

TEST(PageStreamTest, RoundTripMultiPage) {
  MemPager pager;
  BufferPool pool(&pager, 64);
  Rng rng(3);
  std::vector<uint64_t> big(100000);
  for (auto& x : big) x = rng.NextU64();
  PageStreamWriter w(&pool);
  ASSERT_TRUE(w.WriteVector(big).ok());
  auto head = w.Finish();
  ASSERT_TRUE(head.ok());
  // ~800 KB spans ~100 pages; the pool holds 64, so the chain is also
  // exercised through eviction and write-back.
  EXPECT_GT(pager.NumPages(), 50u);

  PageStreamReader r(&pool, *head);
  auto back = r.ReadVector<uint64_t>();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, big);
}

TEST(PageStreamTest, EmptyStream) {
  MemPager pager;
  BufferPool pool(&pager, 8);
  PageStreamWriter w(&pool);
  auto head = w.Finish();
  ASSERT_TRUE(head.ok());
  PageStreamReader r(&pool, *head);
  EXPECT_EQ(r.ReadValue<uint8_t>().status().code(), StatusCode::kOutOfRange);
}

TEST(PageStreamTest, WriteAfterFinishFails) {
  MemPager pager;
  BufferPool pool(&pager, 8);
  PageStreamWriter w(&pool);
  ASSERT_TRUE(w.WriteValue<int>(1).ok());
  ASSERT_TRUE(w.Finish().ok());
  EXPECT_EQ(w.WriteValue<int>(2).code(), StatusCode::kFailedPrecondition);
}

TEST(PageStreamTest, CorruptVectorLengthRejected) {
  MemPager pager;
  BufferPool pool(&pager, 8);
  PageStreamWriter w(&pool);
  ASSERT_TRUE(w.WriteValue<uint64_t>(~uint64_t{0}).ok());  // absurd length
  auto head = w.Finish();
  ASSERT_TRUE(head.ok());
  PageStreamReader r(&pool, *head);
  EXPECT_EQ(r.ReadVector<uint32_t>().status().code(), StatusCode::kCorruption);
}

PointSet MakePoints(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  PointSet ps(d, 0);
  ps.Reserve(n);
  std::vector<double> p(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      p[j] = rng.NextDouble() < 0.5 ? 0.4 + 0.05 * rng.NextGaussian()
                                    : rng.NextDouble();
    }
    ps.Append(p.data());
  }
  return ps;
}

TEST(IndexIoTest, KdTreeRoundTrip) {
  PointSet ps = MakePoints(20000, 3, 5);
  MemPager pager;
  BufferPool pool(&pager, 4096);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  auto head = IndexIo::SaveKdTree(&pool, *tree);
  ASSERT_TRUE(head.ok());
  auto loaded = IndexIo::LoadKdTree(&pool, *head, &ps);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded->num_leaves(), tree->num_leaves());
  EXPECT_EQ(loaded->num_levels(), tree->num_levels());
  EXPECT_EQ(loaded->clustered_order(), tree->clustered_order());
  // Query equivalence.
  Polyhedron poly = Polyhedron::BallApproximation({0.4, 0.4, 0.4}, 0.2, 12);
  std::vector<uint64_t> a, b;
  tree->QueryPolyhedron(poly, &a);
  loaded->QueryPolyhedron(poly, &b);
  EXPECT_EQ(a, b);
  // k-NN equivalence.
  KdKnnSearcher sa(&*tree), sb(&*loaded);
  double q[3] = {0.41, 0.39, 0.42};
  auto na = sa.BoundaryGrow(q, 10);
  auto nb = sb.BoundaryGrow(q, 10);
  for (size_t i = 0; i < na.size(); ++i) {
    EXPECT_DOUBLE_EQ(na[i].squared_distance, nb[i].squared_distance);
  }
}

TEST(IndexIoTest, LayeredGridRoundTrip) {
  PointSet ps = MakePoints(30000, 3, 7);
  MemPager pager;
  BufferPool pool(&pager, 4096);
  auto grid = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(grid.ok());
  auto head = IndexIo::SaveLayeredGrid(&pool, *grid);
  ASSERT_TRUE(head.ok());
  auto loaded = IndexIo::LoadLayeredGrid(&pool, *head, &ps);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded->num_layers(), grid->num_layers());
  EXPECT_EQ(loaded->clustered_order(), grid->clustered_order());
  Box q({0.3, 0.3, 0.3}, {0.5, 0.5, 0.5});
  std::vector<uint64_t> a, b;
  ASSERT_TRUE(grid->SampleQuery(q, 500, &a).ok());
  ASSERT_TRUE(loaded->SampleQuery(q, 500, &b).ok());
  EXPECT_EQ(a, b);
}

TEST(IndexIoTest, VoronoiRoundTrip) {
  PointSet ps = MakePoints(15000, 3, 9);
  MemPager pager;
  BufferPool pool(&pager, 4096);
  VoronoiIndexConfig config;
  config.num_seeds = 128;
  auto index = VoronoiIndex::Build(&ps, config);
  ASSERT_TRUE(index.ok());
  auto head = IndexIo::SaveVoronoi(&pool, *index);
  ASSERT_TRUE(head.ok());
  auto loaded = IndexIo::LoadVoronoi(&pool, *head, &ps);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded->num_seeds(), index->num_seeds());
  EXPECT_EQ(loaded->seed_graph(), index->seed_graph());
  EXPECT_EQ(loaded->clustered_order(), index->clustered_order());
  for (uint64_t i = 0; i < ps.size(); i += 97) {
    EXPECT_EQ(loaded->tag(i), index->tag(i));
  }
  // Walk + exact nearest-seed equivalence.
  double q[3] = {0.5, 0.5, 0.5};
  EXPECT_EQ(loaded->NearestSeed(q), index->NearestSeed(q));
  Polyhedron poly = Polyhedron::BallApproximation({0.4, 0.4, 0.4}, 0.15, 10);
  std::vector<uint64_t> a, b;
  index->QueryPolyhedron(poly, &a);
  loaded->QueryPolyhedron(poly, &b);
  EXPECT_EQ(a, b);
}

TEST(IndexIoTest, WrongMagicRejected) {
  PointSet ps = MakePoints(5000, 3, 11);
  MemPager pager;
  BufferPool pool(&pager, 1024);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  auto head = IndexIo::SaveKdTree(&pool, *tree);
  ASSERT_TRUE(head.ok());
  // Loading a kd-tree chain as a grid must fail on magic.
  EXPECT_EQ(IndexIo::LoadLayeredGrid(&pool, *head, &ps).status().code(),
            StatusCode::kCorruption);
}

TEST(IndexIoTest, MismatchedPointSetRejected) {
  PointSet ps = MakePoints(5000, 3, 13);
  PointSet other = MakePoints(4999, 3, 13);
  MemPager pager;
  BufferPool pool(&pager, 1024);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  auto head = IndexIo::SaveKdTree(&pool, *tree);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(IndexIo::LoadKdTree(&pool, *head, &other).status().code(),
            StatusCode::kInvalidArgument);
}

/// End-to-end persistence: table + index into one FILE, close, reopen,
/// query — the out-of-core database lifecycle.
TEST(IndexIoTest, FilePagerReopenLifecycle) {
  std::string path =
      (std::filesystem::temp_directory_path() / "mds_persist_test.db").string();
  PointSet ps = MakePoints(20000, 3, 17);
  PageId table_first_page;
  PageId index_head;
  uint64_t table_pages;
  {
    auto pager = FilePager::Create(path);
    ASSERT_TRUE(pager.ok());
    BufferPool pool(pager->get(), 512);
    auto tree = KdTreeIndex::Build(&ps);
    ASSERT_TRUE(tree.ok());
    auto table =
        MaterializePointTable(&pool, ps, tree->clustered_order());
    ASSERT_TRUE(table.ok());
    table_pages = table->num_pages();
    table_first_page = 0;  // tables allocate from page 0 here
    auto head = IndexIo::SaveKdTree(&pool, *tree);
    ASSERT_TRUE(head.ok());
    index_head = *head;
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  // Reopen the file cold.
  {
    auto pager = FilePager::Open(path);
    ASSERT_TRUE(pager.ok());
    BufferPool pool(pager->get(), 512);
    auto loaded = IndexIo::LoadKdTree(&pool, index_head, &ps);
    ASSERT_TRUE(loaded.ok());
    // Rebind the table: the schema is known, pages 0..table_pages-1.
    auto table = Table::Create(&pool, PointTableSchema(3));
    ASSERT_TRUE(table.ok());
    // Instead of poking table internals, verify via the index alone:
    Polyhedron poly =
        Polyhedron::BallApproximation({0.4, 0.4, 0.4}, 0.1, 12);
    std::vector<uint64_t> got;
    loaded->QueryPolyhedron(poly, &got);
    std::vector<uint64_t> expect;
    for (uint64_t i = 0; i < ps.size(); ++i) {
      if (poly.Contains(ps.point(i))) expect.push_back(i);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect);
    (void)table_pages;
    (void)table_first_page;
  }
  std::remove(path.c_str());
}

// --- dataset manifest + file lifecycle --------------------------------------

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(DatasetManifestTest, RoundTrip) {
  MemPager pager;
  BufferPool pool(&pager, 64);
  DatasetManifest manifest;
  manifest.dim = 5;
  manifest.table_rows = 1234;
  manifest.total_rows = 4321;
  manifest.seed = 99;
  manifest.provenance = "synthetic seed=99 rows=4321";
  manifest.shard_index = 1;
  manifest.shard_count = 4;
  manifest.table_pages = {7, 8, 9};
  manifest.points_head = 42;
  manifest.kdtree_head = 43;
  auto head = IndexIo::SaveManifest(&pool, manifest);
  ASSERT_TRUE(head.ok());
  auto back = IndexIo::LoadManifest(&pool, *head);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->version, DatasetManifest::kVersion);
  EXPECT_EQ(back->dim, manifest.dim);
  EXPECT_EQ(back->table_rows, manifest.table_rows);
  EXPECT_EQ(back->total_rows, manifest.total_rows);
  EXPECT_EQ(back->seed, manifest.seed);
  EXPECT_EQ(back->provenance, manifest.provenance);
  EXPECT_EQ(back->shard_index, manifest.shard_index);
  EXPECT_EQ(back->shard_count, manifest.shard_count);
  EXPECT_EQ(back->table_pages, manifest.table_pages);
  EXPECT_EQ(back->points_head, manifest.points_head);
  EXPECT_EQ(back->kdtree_head, manifest.kdtree_head);
  EXPECT_EQ(back->grid_head, kInvalidPageId);
  EXPECT_EQ(back->voronoi_head, kInvalidPageId);
}

TEST(DatasetManifestTest, PointSetRoundTrip) {
  PointSet ps = MakePoints(5000, 4, 21);
  MemPager pager;
  BufferPool pool(&pager, 256);
  auto head = IndexIo::SavePointSet(&pool, ps);
  ASSERT_TRUE(head.ok());
  auto back = IndexIo::LoadPointSet(&pool, *head);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->dim(), ps.dim());
  EXPECT_EQ(back->size(), ps.size());
  EXPECT_EQ(back->raw(), ps.raw());
}

TEST(DatasetManifestTest, SuperblockRefusals) {
  // An empty pager is not a dataset file.
  {
    MemPager pager;
    BufferPool pool(&pager, 8);
    EXPECT_EQ(IndexIo::ReadSuperblock(&pool).status().code(),
              StatusCode::kCorruption);
  }
  // A page-0 blob that is not a superblock fails on magic, and a damaged
  // superblock fails on CRC.
  {
    MemPager pager;
    BufferPool pool(&pager, 8);
    auto zero = pool.Allocate();
    ASSERT_TRUE(zero.ok());
    ASSERT_EQ(zero->id(), 0u);
    zero->Release();
    EXPECT_EQ(IndexIo::ReadSuperblock(&pool).status().code(),
              StatusCode::kCorruption);
    ASSERT_TRUE(IndexIo::WriteSuperblock(&pool, 3).ok());
    auto head = IndexIo::ReadSuperblock(&pool);
    ASSERT_TRUE(head.ok());
    EXPECT_EQ(*head, 3u);
    auto guard = pool.Fetch(0);
    ASSERT_TRUE(guard.ok());
    guard->MutablePage().WriteAt<uint64_t>(16, 12345);  // flip manifest_head
    guard->Release();
    ASSERT_TRUE(pool.FlushAll().ok());
    EXPECT_EQ(IndexIo::ReadSuperblock(&pool).status().code(),
              StatusCode::kCorruption);
  }
}

TEST(DatasetFileTest, BuildLoadRoundTrip) {
  const std::string path = TempPath("mds_dataset_roundtrip.mds");
  DatasetFileOptions options;
  options.dataset.num_rows = 20000;
  options.dataset.seed = 7;
  ASSERT_TRUE(WriteDatasetFile(options, path).ok());

  auto loaded = ServedDataset::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto built = ServedDataset::Build(options.dataset);
  ASSERT_TRUE(built.ok());

  EXPECT_EQ(loaded->dim(), built->dim());
  EXPECT_EQ(loaded->num_rows(), built->num_rows());
  EXPECT_EQ(loaded->seed(), 7u);
  EXPECT_EQ(loaded->total_rows(), 20000u);
  // Same generation seed => identical points and identical clustering.
  EXPECT_EQ(loaded->points().raw(), built->points().raw());
  EXPECT_EQ(loaded->tree().clustered_order(),
            built->tree().clustered_order());
}

TEST(DatasetFileTest, ShardSlicedRoundTrip) {
  DatasetFileOptions options;
  options.dataset.num_rows = 16000;
  options.dataset.seed = 11;
  options.dataset.shard_count = 2;

  uint64_t shard_rows_total = 0;
  for (uint32_t s = 0; s < 2; ++s) {
    const std::string path =
        TempPath(("mds_dataset_shard" + std::to_string(s) + ".mds").c_str());
    options.dataset.shard_index = s;
    ASSERT_TRUE(WriteDatasetFile(options, path).ok());
    auto loaded = ServedDataset::Load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->shard_index(), s);
    EXPECT_EQ(loaded->shard_count(), 2u);
    EXPECT_LT(loaded->num_rows(), 16000u);
    EXPECT_EQ(loaded->total_rows(), 16000u);

    // The loaded shard serves exactly the rows the in-memory shard build
    // serves.
    DatasetConfig build = options.dataset;
    auto built = ServedDataset::Build(build);
    ASSERT_TRUE(built.ok());
    EXPECT_EQ(loaded->num_rows(), built->num_rows());
    EXPECT_EQ(loaded->tree().clustered_order(),
              built->tree().clustered_order());
    shard_rows_total += loaded->num_rows();
    std::remove(path.c_str());
  }
  EXPECT_EQ(shard_rows_total, 16000u);
}

TEST(DatasetFileTest, CorruptManifestRefused) {
  const std::string path = TempPath("mds_dataset_corrupt.mds");
  DatasetFileOptions options;
  options.dataset.num_rows = 8000;
  options.dataset.seed = 3;
  ASSERT_TRUE(WriteDatasetFile(options, path).ok());
  auto head = [&] {
    auto pager = FilePager::Open(path);
    EXPECT_TRUE(pager.ok());
    BufferPool pool(pager->get(), 64);
    auto h = IndexIo::ReadSuperblock(&pool);
    EXPECT_TRUE(h.ok());
    return *h;
  }();

  // Flip one byte inside the manifest page's payload: the page CRC (or,
  // if the page were rewritten, the manifest blob CRC) must refuse it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(head * kPageSize + 64));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(static_cast<std::streamoff>(head * kPageSize + 64));
    byte = static_cast<char>(byte ^ 0x5a);
    f.write(&byte, 1);
  }
  auto loaded = ServedDataset::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(DatasetFileTest, TruncatedFileRefused) {
  const std::string path = TempPath("mds_dataset_truncated.mds");
  DatasetFileOptions options;
  options.dataset.num_rows = 8000;
  options.dataset.seed = 3;
  ASSERT_TRUE(WriteDatasetFile(options, path).ok());

  // Chop the file to its first page: the superblock survives but every
  // chain head points past the end.
  std::filesystem::resize_file(path, kPageSize);
  auto loaded = ServedDataset::Load(path);
  ASSERT_FALSE(loaded.ok());

  // A torn (non-page-multiple) file is refused outright.
  std::filesystem::resize_file(path, kPageSize / 2);
  EXPECT_FALSE(MmapPager::Open(path).ok());
  EXPECT_FALSE(ServedDataset::Load(path).ok());
  std::remove(path.c_str());
}

TEST(DatasetFileTest, MmapPagerMatchesFilePager) {
  const std::string path = TempPath("mds_dataset_mmap.mds");
  DatasetFileOptions options;
  options.dataset.num_rows = 10000;
  options.dataset.seed = 23;
  ASSERT_TRUE(WriteDatasetFile(options, path).ok());

  ServedDataset::LoadOptions mmap_opts;
  auto via_mmap = ServedDataset::Load(path, mmap_opts);
  ASSERT_TRUE(via_mmap.ok()) << via_mmap.status().ToString();
  EXPECT_TRUE(via_mmap->mmap_backed());

  ServedDataset::LoadOptions file_opts;
  file_opts.prefer_mmap = false;
  auto via_file = ServedDataset::Load(path, file_opts);
  ASSERT_TRUE(via_file.ok());
  EXPECT_FALSE(via_file->mmap_backed());

  EXPECT_EQ(via_mmap->points().raw(), via_file->points().raw());
  EXPECT_EQ(via_mmap->tree().clustered_order(),
            via_file->tree().clustered_order());
  std::remove(path.c_str());
}

TEST(DatasetFileTest, IngestedPointsRoundTrip) {
  const std::string path = TempPath("mds_dataset_ingest.mds");
  PointSet ps = MakePoints(6000, 3, 31);
  DatasetFileOptions options;
  options.ingest = &ps;
  options.provenance = "unit-test ingest";
  ASSERT_TRUE(WriteDatasetFile(options, path).ok());
  auto loaded = ServedDataset::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->dim(), 3u);
  EXPECT_EQ(loaded->num_rows(), 6000u);
  EXPECT_EQ(loaded->points().raw(), ps.raw());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mds
