// EventLoop unit tests: fd readiness dispatch, self-removal safety, the
// timer wheel (including multi-revolution delays), cross-thread Post and
// Stop semantics. Everything runs against real pipes/sockets — no mocks —
// because the loop's contract is with the kernel.

#include "common/event_loop.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace mds {
namespace {

/// RAII pipe pair for readiness tests.
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(pipe2(fds, O_NONBLOCK | O_CLOEXEC), 0); }
  ~Pipe() {
    if (fds[0] >= 0) close(fds[0]);
    if (fds[1] >= 0) close(fds[1]);
  }
  int rd() const { return fds[0]; }
  int wr() const { return fds[1]; }
  void WriteByte() const {
    const uint8_t b = 1;
    ASSERT_EQ(write(wr(), &b, 1), 1);
  }
};

TEST(EventLoopTest, ConstructsValid) {
  EventLoop loop;
  ASSERT_TRUE(loop.valid());
}

TEST(EventLoopTest, DispatchesReadableFd) {
  EventLoop loop;
  Pipe p;
  int fired = 0;
  ASSERT_TRUE(loop.Add(p.rd(), EventLoop::kReadable, [&](uint32_t ready) {
                    EXPECT_TRUE(ready & EventLoop::kReadable);
                    ++fired;
                    uint8_t buf[8];
                    (void)read(p.rd(), buf, sizeof(buf));
                    loop.Stop();
                  })
                  .ok());
  p.WriteByte();
  loop.Run();
  EXPECT_EQ(fired, 1);
}

TEST(EventLoopTest, HandlerMayRemoveItsOwnFd) {
  // The regression this guards: Remove() from inside the fd's own handler
  // destroys the registered closure; the loop must invoke a copy so the
  // executing code (and its captures) survive the erase.
  EventLoop loop;
  Pipe p;
  auto guard = std::make_shared<int>(42);
  std::weak_ptr<int> observer = guard;
  int after_remove = 0;
  ASSERT_TRUE(loop.Add(p.rd(), EventLoop::kReadable,
                       [&, guard = std::move(guard)](uint32_t) {
                         loop.Remove(p.rd());
                         // The map entry (and its shared_ptr) is gone; our
                         // executing copy must still hold the object.
                         EXPECT_FALSE(observer.expired());
                         after_remove = *observer.lock();
                         loop.Stop();
                       })
                  .ok());
  p.WriteByte();
  loop.Run();
  EXPECT_EQ(after_remove, 42);
  EXPECT_TRUE(observer.expired());  // released once dispatch finished
}

TEST(EventLoopTest, ModifySwitchesInterest) {
  EventLoop loop;
  Pipe p;
  int reads = 0;
  ASSERT_TRUE(loop.Add(p.rd(), EventLoop::kReadable, [&](uint32_t) {
                    ++reads;
                    uint8_t buf[8];
                    (void)read(p.rd(), buf, sizeof(buf));
                    // Drop interest: the next write must not dispatch.
                    ASSERT_TRUE(loop.Modify(p.rd(), 0).ok());
                    loop.AddTimer(30, [&] {
                      p.WriteByte();  // readable again, but mask is empty
                      loop.AddTimer(30, [&] { loop.Stop(); });
                    });
                  })
                  .ok());
  p.WriteByte();
  loop.Run();
  EXPECT_EQ(reads, 1);
}

TEST(EventLoopTest, TimerFiresOnceAfterDelay) {
  EventLoop loop;
  const auto start = std::chrono::steady_clock::now();
  std::chrono::steady_clock::duration elapsed{};
  int fired = 0;
  loop.AddTimer(50, [&] {
    ++fired;
    elapsed = std::chrono::steady_clock::now() - start;
    loop.Stop();
  });
  loop.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_GE(elapsed, std::chrono::milliseconds(40));
}

TEST(EventLoopTest, TimerLongerThanOneWheelRevolutionFires) {
  // 512 slots x 10ms tick = 5.12s per revolution; a delay past one
  // revolution exercises the rounds counter. Use a delay just over one
  // revolution boundary in ticks by scheduling at the wheel granularity:
  // 5200ms would slow the suite, so instead verify the rounds bookkeeping
  // indirectly — a 600ms timer must not fire early even though its slot
  // is visited dozens of times. (A slot is revisited every 5.12s; 600ms
  // stays within one revolution, so also add a canary that a 60ms timer
  // sharing computation does not fire late.)
  EventLoop loop;
  std::vector<int> order;
  loop.AddTimer(600, [&] {
    order.push_back(600);
    loop.Stop();
  });
  loop.AddTimer(60, [&] { order.push_back(60); });
  const auto start = std::chrono::steady_clock::now();
  loop.Run();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 60);
  EXPECT_EQ(order[1], 600);
  EXPECT_GE(elapsed, std::chrono::milliseconds(580));
}

TEST(EventLoopTest, CancelTimerPreventsFiring) {
  EventLoop loop;
  int cancelled_fired = 0;
  const EventLoop::TimerId id =
      loop.AddTimer(50, [&] { ++cancelled_fired; });
  loop.AddTimer(10, [&] { loop.CancelTimer(id); });
  loop.AddTimer(120, [&] { loop.Stop(); });
  loop.Run();
  EXPECT_EQ(cancelled_fired, 0);
}

TEST(EventLoopTest, TimerCallbackMayAddTimers) {
  EventLoop loop;
  int chain = 0;
  loop.AddTimer(10, [&] {
    ++chain;
    loop.AddTimer(10, [&] {
      ++chain;
      loop.AddTimer(10, [&] {
        ++chain;
        loop.Stop();
      });
    });
  });
  loop.Run();
  EXPECT_EQ(chain, 3);
}

TEST(EventLoopTest, PostFromAnotherThreadRunsOnLoop) {
  EventLoop loop;
  std::atomic<bool> ran{false};
  std::thread poster([&] {
    // Post may race loop startup; Post before Run is also legal.
    loop.Post([&] {
      EXPECT_TRUE(loop.InLoopThread());
      ran.store(true);
      loop.Stop();
    });
  });
  loop.Run();
  poster.join();
  EXPECT_TRUE(ran.load());
}

TEST(EventLoopTest, ManyPostsAllRun) {
  EventLoop loop;
  constexpr int kPosts = 10000;
  std::atomic<int> count{0};
  std::thread poster([&] {
    for (int i = 0; i < kPosts; ++i) {
      loop.Post([&] {
        if (count.fetch_add(1) + 1 == kPosts) loop.Stop();
      });
    }
  });
  loop.Run();
  poster.join();
  EXPECT_EQ(count.load(), kPosts);
}

TEST(EventLoopTest, StopFromAnotherThreadWakesBlockedLoop) {
  EventLoop loop;
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    loop.Stop();
  });
  const auto start = std::chrono::steady_clock::now();
  loop.Run();  // no fds, no timers: blocks in epoll_wait until woken
  const auto elapsed = std::chrono::steady_clock::now() - start;
  stopper.join();
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(EventLoopTest, PostedCallbackAfterStopStillRuns) {
  // Posts racing Stop() must not be dropped: the loop drains the post
  // queue once more after leaving the wait loop.
  EventLoop loop;
  std::atomic<bool> ran{false};
  loop.Post([&] {
    loop.Stop();
    loop.Post([&] { ran.store(true); });
  });
  loop.Run();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace mds
