#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "spectra/similarity.h"
#include "spectra/spectrum_generator.h"

namespace mds {
namespace {

SpectrumGrid SmallGrid() {
  SpectrumGrid grid;
  grid.num_samples = 400;  // keep PCA fits fast in tests
  return grid;
}

TEST(SpectrumGeneratorTest, NormalizedAndNonNegative) {
  SpectrumGenerator gen(SmallGrid());
  for (auto cls : {SpectrumClass::kElliptical, SpectrumClass::kSpiral,
                   SpectrumClass::kStarburst, SpectrumClass::kQuasar}) {
    SpectrumParams p;
    p.cls = cls;
    p.redshift = 0.1;
    std::vector<float> flux = gen.Generate(p);
    ASSERT_EQ(flux.size(), 400u);
    double mean = 0.0;
    for (float f : flux) {
      EXPECT_GE(f, 0.0f);
      mean += f;
    }
    mean /= flux.size();
    EXPECT_NEAR(mean, 1.0, 1e-6);
  }
}

TEST(SpectrumGeneratorTest, RedshiftMovesFeatures) {
  SpectrumGenerator gen(SmallGrid());
  SpectrumParams a, b;
  a.cls = b.cls = SpectrumClass::kStarburst;
  a.redshift = 0.0;
  b.redshift = 0.2;
  auto fa = gen.Generate(a);
  auto fb = gen.Generate(b);
  // The Halpha emission peak shifts redward: find the strongest sample.
  auto peak = [&](const std::vector<float>& f) {
    return std::distance(f.begin(), std::max_element(f.begin(), f.end()));
  };
  EXPECT_GT(peak(fb), peak(fa));
}

TEST(SpectrumGeneratorTest, ClassesDiffer) {
  SpectrumGenerator gen(SmallGrid());
  SpectrumParams e, q;
  e.cls = SpectrumClass::kElliptical;
  q.cls = SpectrumClass::kQuasar;
  auto fe = gen.Generate(e);
  auto fq = gen.Generate(q);
  double diff = 0.0;
  for (size_t i = 0; i < fe.size(); ++i) {
    diff += std::abs(fe[i] - fq[i]);
  }
  EXPECT_GT(diff / fe.size(), 0.05);
}

TEST(SpectrumGeneratorTest, NoiseIsBounded) {
  SpectrumGenerator gen(SmallGrid());
  Rng rng(3);
  SpectrumParams p;
  p.cls = SpectrumClass::kSpiral;
  auto clean = gen.Generate(p);
  auto noisy = gen.GenerateNoisy(p, 0.02, rng);
  double rel = 0.0;
  for (size_t i = 0; i < clean.size(); ++i) {
    if (clean[i] > 0.1f) {
      rel += std::abs(noisy[i] - clean[i]) / clean[i];
    }
  }
  EXPECT_LT(rel / clean.size(), 0.05);
}

struct SpectraSet {
  std::vector<std::vector<float>> spectra;
  std::vector<SpectrumClass> classes;
  std::vector<SpectrumParams> params;
};

SpectraSet MakeArchive(size_t per_class, uint64_t seed, double noise) {
  SpectrumGenerator gen(SmallGrid());
  Rng rng(seed);
  SpectraSet set;
  for (size_t c = 0; c < kNumSpectrumClasses; ++c) {
    for (size_t i = 0; i < per_class; ++i) {
      SpectrumParams p =
          gen.RandomParams(static_cast<SpectrumClass>(c), rng);
      set.spectra.push_back(gen.GenerateNoisy(p, noise, rng));
      set.classes.push_back(p.cls);
      set.params.push_back(p);
    }
  }
  return set;
}

TEST(SpectralFeatureSpaceTest, FiveComponentsCaptureMostVariance) {
  SpectraSet archive = MakeArchive(100, 5, 0.01);
  auto space = SpectralFeatureSpace::Fit(archive.spectra, 5);
  ASSERT_TRUE(space.ok());
  // The §4.2 premise: "the first few principal components ... is enough to
  // describe most of the physical characteristics".
  EXPECT_GT(space->ExplainedVarianceRatio(), 0.80);
}

TEST(SpectralFeatureSpaceTest, ReconstructionClose) {
  SpectraSet archive = MakeArchive(60, 7, 0.0);
  auto space = SpectralFeatureSpace::Fit(archive.spectra, 8);
  ASSERT_TRUE(space.ok());
  double worst = 0.0;
  for (size_t i = 0; i < archive.spectra.size(); i += 17) {
    auto features = space->Project(archive.spectra[i]);
    auto rec = space->Reconstruct(features);
    double err = 0.0, norm = 0.0;
    for (size_t j = 0; j < rec.size(); ++j) {
      err += (rec[j] - archive.spectra[i][j]) * (rec[j] - archive.spectra[i][j]);
      norm += archive.spectra[i][j] * archive.spectra[i][j];
    }
    worst = std::max(worst, std::sqrt(err / norm));
  }
  EXPECT_LT(worst, 0.25);
}

TEST(SpectralFeatureSpaceTest, RejectsRaggedInput) {
  std::vector<std::vector<float>> bad = {{1, 2, 3}, {1, 2}};
  EXPECT_FALSE(SpectralFeatureSpace::Fit(bad, 2).ok());
}

TEST(SimilaritySearchTest, RetrievesSameClass) {
  SpectraSet archive = MakeArchive(150, 9, 0.02);
  auto space = SpectralFeatureSpace::Fit(archive.spectra, 5);
  ASSERT_TRUE(space.ok());
  auto search = SpectralSimilaritySearch::Build(&*space, archive.spectra);
  ASSERT_TRUE(search.ok());

  SpectrumGenerator gen(SmallGrid());
  Rng rng(11);
  size_t correct = 0, total = 0;
  for (size_t c = 0; c < kNumSpectrumClasses; ++c) {
    for (int t = 0; t < 10; ++t) {
      SpectrumParams p = gen.RandomParams(static_cast<SpectrumClass>(c), rng);
      std::vector<float> query = gen.GenerateNoisy(p, 0.02, rng);
      auto hits = search->FindSimilar(query, 5);
      for (const Neighbor& h : hits) {
        ++total;
        if (archive.classes[h.id] == p.cls) ++correct;
      }
    }
  }
  // Figures 9-10: the most similar spectra are the same kind of object.
  EXPECT_GT(static_cast<double>(correct) / total, 0.8);
}

TEST(SimilaritySearchTest, ExactSelfMatch) {
  SpectraSet archive = MakeArchive(50, 13, 0.0);
  auto space = SpectralFeatureSpace::Fit(archive.spectra, 5);
  ASSERT_TRUE(space.ok());
  auto search = SpectralSimilaritySearch::Build(&*space, archive.spectra);
  ASSERT_TRUE(search.ok());
  for (size_t i = 0; i < archive.spectra.size(); i += 13) {
    auto hits = search->FindSimilar(archive.spectra[i], 1);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NEAR(hits[0].squared_distance, 0.0, 1e-6);
  }
}

TEST(SimulationMatchingTest, RecoversGeneratingParameters) {
  // §4.2 / E13: match "observed" spectra against a simulated grid and read
  // off the parameters of the nearest simulated spectrum.
  SpectraSet simulated = MakeArchive(400, 15, 0.0);
  auto space = SpectralFeatureSpace::Fit(simulated.spectra, 5);
  ASSERT_TRUE(space.ok());
  auto search = SpectralSimilaritySearch::Build(&*space, simulated.spectra);
  ASSERT_TRUE(search.ok());

  SpectrumGenerator gen(SmallGrid());
  Rng rng(17);
  double z_err = 0.0, age_err = 0.0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    SpectrumParams truth = gen.RandomParams(
        static_cast<SpectrumClass>(t % kNumSpectrumClasses), rng);
    std::vector<float> observed = gen.GenerateNoisy(truth, 0.02, rng);
    auto hits = search->FindSimilar(observed, 1);
    ASSERT_EQ(hits.size(), 1u);
    const SpectrumParams& match = simulated.params[hits[0].id];
    EXPECT_EQ(match.cls, truth.cls) << "trial " << t;
    z_err += std::abs(match.redshift - truth.redshift);
    age_err += std::abs(match.age - truth.age);
  }
  EXPECT_LT(z_err / trials, 0.05);
  EXPECT_LT(age_err / trials, 0.35);
}

}  // namespace
}  // namespace mds
