// End-to-end tests of the mdsd query server through the client library:
// remote answers must match the embedded engine exactly, admission control
// must shed (never hang), deadlines must expire queued work, and graceful
// drain must complete admitted requests while rejecting new ones.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/knn.h"
#include "server/client.h"
#include "server/dataset.h"
#include "server/server.h"

namespace mds {
namespace {

/// One shared dataset for the whole suite (the expensive part); each test
/// starts its own server over it with the config it needs.
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.num_rows = 50000;
    auto built = ServedDataset::Build(config);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    dataset_ = new ServedDataset(std::move(*built));
  }

  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static QueryClient MustConnect(const QueryServer& server) {
    auto client = QueryClient::Connect("127.0.0.1", server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  /// A box around the stellar locus with a healthy number of matches.
  static Box LocusBox(double half_width) {
    double mags[kNumBands];
    StellarLocus(0.5, 0.0, mags);
    std::vector<double> lo(mags, mags + kNumBands);
    std::vector<double> hi = lo;
    for (size_t j = 0; j < kNumBands; ++j) {
      lo[j] -= half_width;
      hi[j] += half_width;
    }
    return Box(lo, hi);
  }

  static std::vector<int64_t> BruteForceBox(const Box& box) {
    const PointSet& points = dataset_->points();
    std::vector<int64_t> out;
    for (uint64_t i = 0; i < points.size(); ++i) {
      if (box.Contains(points.point(i))) {
        out.push_back(static_cast<int64_t>(i));
      }
    }
    return out;
  }

  static ServedDataset* dataset_;
};

ServedDataset* ServerTest::dataset_ = nullptr;

TEST_F(ServerTest, HealthAndPointCountAndBoxQueryMatchEngine) {
  QueryServer server(dataset_, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  QueryClient client = MustConnect(server);

  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_FALSE(health->draining);
  EXPECT_EQ(health->served_rows, dataset_->num_rows());
  EXPECT_EQ(health->dim, kNumBands);

  const Box box = LocusBox(0.8);
  const std::vector<int64_t> expected = BruteForceBox(box);
  ASSERT_FALSE(expected.empty());

  auto count = client.PointCount(box);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, expected.size());

  auto query = client.BoxQuery(box);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->row_count, expected.size());
  std::vector<int64_t> got = query->objids;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
  EXPECT_FALSE(query->degraded);
  EXPECT_FALSE(query->chosen_path.empty());
  EXPECT_GT(query->pages_fetched, 0u);

  // TOP(limit): a prefix of the unlimited reply, in clustered row order.
  auto limited = client.BoxQuery(box, 3);
  ASSERT_TRUE(limited.ok());
  ASSERT_EQ(limited->objids.size(), 3u);
  EXPECT_TRUE(std::equal(limited->objids.begin(), limited->objids.end(),
                         query->objids.begin()));

  server.Shutdown();
}

TEST_F(ServerTest, PlannerHintsForceAccessPaths) {
  QueryServer server(dataset_, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  QueryClient client = MustConnect(server);

  const Box box = LocusBox(0.4);
  const std::vector<int64_t> expected = BruteForceBox(box);

  QueryClient::Options full;
  full.force_full_scan = true;
  auto via_scan = client.BoxQuery(box, 0, full);
  ASSERT_TRUE(via_scan.ok()) << via_scan.status().ToString();
  EXPECT_EQ(via_scan->chosen_path, "full-scan");
  EXPECT_EQ(via_scan->rows_scanned, dataset_->num_rows());

  QueryClient::Options index;
  index.force_index = true;
  auto via_index = client.BoxQuery(box, 0, index);
  ASSERT_TRUE(via_index.ok()) << via_index.status().ToString();
  EXPECT_EQ(via_index->chosen_path, "kd-tree");

  std::vector<int64_t> a = via_scan->objids;
  std::vector<int64_t> b = via_index->objids;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, expected);
  EXPECT_EQ(b, expected);

  // skip_corrupt maps onto the degraded-query scan path; over clean
  // storage it must change nothing.
  QueryClient::Options degraded_ok;
  degraded_ok.skip_corrupt = true;
  auto tolerant = client.BoxQuery(box, 0, degraded_ok);
  ASSERT_TRUE(tolerant.ok());
  EXPECT_FALSE(tolerant->degraded);
  EXPECT_EQ(tolerant->row_count, expected.size());

  server.Shutdown();
}

TEST_F(ServerTest, KnnMatchesDirectSearcher) {
  QueryServer server(dataset_, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  QueryClient client = MustConnect(server);

  double mags[kNumBands];
  StellarLocus(0.3, 0.0, mags);
  std::vector<double> probe(mags, mags + kNumBands);

  KdKnnSearcher searcher(&dataset_->tree());
  const std::vector<Neighbor> expected = searcher.BoundaryGrow(probe.data(), 10);

  auto remote = client.Knn(probe, 10);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ASSERT_EQ(remote->neighbors.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(remote->neighbors[i].id,
              static_cast<int64_t>(expected[i].id));
    EXPECT_DOUBLE_EQ(remote->neighbors[i].squared_distance,
                     expected[i].squared_distance);
  }

  // k larger than the table is a boundary error, not a silent clamp: an
  // answer with fewer than k neighbors is indistinguishable from data loss.
  auto too_big = client.Knn(probe, 60000);
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kInvalidArgument);

  server.Shutdown();
}

TEST_F(ServerTest, DegenerateInputsRejectedAsInvalidArgument) {
  QueryServer server(dataset_, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  QueryClient client = MustConnect(server);

  const std::vector<double> probe(kNumBands, 0.5);

  // kNN k=0: nothing to answer, never an empty success.
  auto zero_k = client.Knn(probe, 0);
  ASSERT_FALSE(zero_k.ok());
  EXPECT_EQ(zero_k.status().code(), StatusCode::kInvalidArgument);

  // Inverted box (lo > hi on one axis).
  std::vector<double> lo(kNumBands, 0.0), hi(kNumBands, 1.0);
  std::swap(lo[2], hi[2]);
  auto inverted = client.PointCount(Box(lo, hi));
  ASSERT_FALSE(inverted.ok());
  EXPECT_EQ(inverted.status().code(), StatusCode::kInvalidArgument);

  // NaN bound: every comparison against it is false, which silently turns
  // the box empty — reject it instead.
  std::vector<double> nlo(kNumBands, 0.0), nhi(kNumBands, 1.0);
  nhi[0] = std::nan("");
  auto nan_box = client.BoxQuery(Box(nlo, nhi));
  ASSERT_FALSE(nan_box.ok());
  EXPECT_EQ(nan_box.status().code(), StatusCode::kInvalidArgument);

  // NaN kNN probe coordinate.
  std::vector<double> nan_probe(kNumBands, 0.5);
  nan_probe[1] = std::nan("");
  auto nan_knn = client.Knn(nan_probe, 3);
  ASSERT_FALSE(nan_knn.ok());
  EXPECT_EQ(nan_knn.status().code(), StatusCode::kInvalidArgument);

  // TABLESAMPLE fraction outside (0, 100]: zero, negative, above 100, NaN.
  const Box box = LocusBox(1.0);
  for (double pct : {0.0, -5.0, 150.0, std::nan("")}) {
    auto sampled = client.TableSample(box, pct, 10, /*seed=*/1);
    ASSERT_FALSE(sampled.ok()) << "percent=" << pct;
    EXPECT_EQ(sampled.status().code(), StatusCode::kInvalidArgument);
  }

  // These are error replies, not protocol violations: the connection must
  // stay usable afterwards.
  auto ok = client.PointCount(LocusBox(0.5));
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();

  server.Shutdown();
}

TEST_F(ServerTest, ResponseCacheServesRepeatsAndCountsStats) {
  ServerConfig config;
  config.cache_bytes = 8u << 20;
  QueryServer server(dataset_, config);
  ASSERT_TRUE(server.Start().ok());
  QueryClient client = MustConnect(server);

  const Box box = LocusBox(0.7);
  auto first = client.BoxQuery(box);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Repeats of the identical request are hits: same answer, same
  // accounting, served without executing.
  for (int i = 0; i < 4; ++i) {
    auto again = client.BoxQuery(box);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->objids, first->objids);
    EXPECT_EQ(again->pages_fetched, first->pages_fetched);
    EXPECT_EQ(again->chosen_path, first->chosen_path);
  }

  // A different request type over the same body bytes is a separate entry.
  auto count = client.PointCount(box);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, first->row_count);

  const auto stats = server.Stats();
  EXPECT_EQ(stats.cache_hits, 4u);
  EXPECT_GE(stats.cache_misses, 2u);  // first BoxQuery + first PointCount
  EXPECT_GE(stats.cache_insertions, 2u);
  EXPECT_GT(stats.cache_bytes, 0u);
  EXPECT_GE(stats.cache_entries, 2u);
  EXPECT_EQ(stats.dataset_epoch, dataset_->epoch());

  // The wire stats reply carries the same counters.
  auto remote = client.ServerStats();
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(remote->cache_hits, stats.cache_hits);
  EXPECT_EQ(remote->dataset_epoch, stats.dataset_epoch);

  server.Shutdown();
}

TEST_F(ServerTest, EpochBumpInvalidatesCachedReplies) {
  ServerConfig config;
  config.cache_bytes = 8u << 20;
  QueryServer server(dataset_, config);
  ASSERT_TRUE(server.Start().ok());
  QueryClient client = MustConnect(server);

  const Box box = LocusBox(0.6);
  ASSERT_TRUE(client.PointCount(box).ok());  // miss, populates
  ASSERT_TRUE(client.PointCount(box).ok());  // hit
  EXPECT_EQ(server.Stats().cache_hits, 1u);

  // One atomic store invalidates everything cached so far.
  dataset_->BumpEpoch();
  ASSERT_TRUE(client.PointCount(box).ok());  // miss under the new epoch
  EXPECT_EQ(server.Stats().cache_hits, 1u);
  ASSERT_TRUE(client.PointCount(box).ok());  // repopulated: hit again
  EXPECT_EQ(server.Stats().cache_hits, 2u);
  EXPECT_GE(server.Stats().cache_misses, 2u);

  server.Shutdown();
}

TEST_F(ServerTest, UncacheableRequestsBypassTheCache) {
  ServerConfig config;
  config.cache_bytes = 8u << 20;
  QueryServer server(dataset_, config);
  ASSERT_TRUE(server.Start().ok());
  QueryClient client = MustConnect(server);

  const Box box = LocusBox(0.5);
  // skip_corrupt and planner hints pin execution behavior; memoizing them
  // would mix their replies with default-planned ones. They never probe
  // and never populate.
  QueryClient::Options tolerant;
  tolerant.skip_corrupt = true;
  QueryClient::Options pinned;
  pinned.force_full_scan = true;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.BoxQuery(box, 0, tolerant).ok());
    ASSERT_TRUE(client.BoxQuery(box, 0, pinned).ok());
  }
  auto stats = server.Stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.cache_entries, 0u);

  // Health and stats requests are control-plane: also uncacheable.
  ASSERT_TRUE(client.Health().ok());
  ASSERT_TRUE(client.ServerStats().ok());
  EXPECT_EQ(server.Stats().cache_entries, 0u);

  server.Shutdown();
}

TEST_F(ServerTest, CacheDisabledByDefaultConfig) {
  QueryServer server(dataset_, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  QueryClient client = MustConnect(server);
  const Box box = LocusBox(0.5);
  ASSERT_TRUE(client.PointCount(box).ok());
  ASSERT_TRUE(client.PointCount(box).ok());
  const auto stats = server.Stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.cache_bytes, 0u);
  EXPECT_EQ(stats.dataset_epoch, dataset_->epoch());
  server.Shutdown();
}

TEST_F(ServerTest, TableSampleIsSeedDeterministic) {
  QueryServer server(dataset_, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  QueryClient client = MustConnect(server);

  const Box box = LocusBox(1.5);
  auto a = client.TableSample(box, 20.0, 50, /*seed=*/7);
  auto b = client.TableSample(box, 20.0, 50, /*seed=*/7);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->objids, b->objids);  // same seed, same page sample

  // Every sampled objid is a true match.
  const std::vector<int64_t> all = BruteForceBox(box);
  for (int64_t id : a->objids) {
    EXPECT_TRUE(std::binary_search(all.begin(), all.end(), id));
  }

  server.Shutdown();
}

TEST_F(ServerTest, AdmissionControlShedsBeyondCap) {
  ServerConfig config;
  config.num_workers = 2;
  config.max_in_flight = 2;
  QueryServer server(dataset_, config);
  ASSERT_TRUE(server.Start().ok());

  // 4x the in-flight cap in concurrent closed-loop clients: every request
  // must terminate (reply or reject), rejects must be retryable, and under
  // sustained 4x pressure at least one arrival must have been shed.
  const size_t kClients = 8;
  const int kPerClient = 12;
  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> other{0};
  std::vector<std::thread> threads;
  const Box box = LocusBox(1.2);
  for (size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      auto client = QueryClient::Connect("127.0.0.1", server.port());
      ASSERT_TRUE(client.ok());
      for (int i = 0; i < kPerClient; ++i) {
        auto result = client->BoxQuery(box);
        if (result.ok()) {
          ok_count.fetch_add(1);
        } else if (result.status().IsTransient()) {
          rejected.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(ok_count + rejected + other, kClients * kPerClient);
  EXPECT_EQ(other.load(), 0u);      // only OK or retryable, never a hang/IO error
  EXPECT_GT(ok_count.load(), 0u);   // the server kept serving under pressure
  EXPECT_GT(rejected.load(), 0u);   // and it shed, not buffered

  const auto stats = server.Stats();
  EXPECT_EQ(stats.rejected_overload, rejected.load());
  EXPECT_LE(stats.in_flight_peak, config.max_in_flight);

  server.Shutdown();
}

TEST_F(ServerTest, QueuedDeadlineExpiresWithoutExecuting) {
  ServerConfig config;
  config.num_workers = 1;  // one worker: queued work sits measurably
  config.max_in_flight = 16;
  QueryServer server(dataset_, config);
  ASSERT_TRUE(server.Start().ok());

  // Occupy the single worker with wide full scans from other connections.
  std::vector<std::thread> busy;
  for (int t = 0; t < 3; ++t) {
    busy.emplace_back([&] {
      auto client = QueryClient::Connect("127.0.0.1", server.port());
      ASSERT_TRUE(client.ok());
      QueryClient::Options slow;
      slow.force_full_scan = true;
      for (int i = 0; i < 4; ++i) {
        auto r = client->BoxQuery(LocusBox(2.0), 0, slow);
        EXPECT_TRUE(r.ok() || r.status().IsTransient());
      }
    });
  }

  QueryClient client = MustConnect(server);
  QueryClient::Options tight;
  tight.deadline_ms = 1;
  int expired = 0;
  for (int i = 0; i < 8; ++i) {
    auto r = client.PointCount(LocusBox(0.5), tight);
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsTransient()) << r.status().ToString();
      ++expired;
    }
  }
  for (auto& th : busy) th.join();
  // With a 1 ms deadline behind multi-ms full scans, at least one request
  // must have timed out in the queue; the stats counter agrees.
  EXPECT_GT(expired, 0);
  EXPECT_GE(server.Stats().deadline_timeouts, static_cast<uint64_t>(expired));

  server.Shutdown();
}

TEST_F(ServerTest, GracefulDrainCompletesAdmittedRejectsNew) {
  ServerConfig config;
  config.num_workers = 2;
  config.max_in_flight = 32;
  QueryServer server(dataset_, config);
  ASSERT_TRUE(server.Start().ok());

  // In-flight work across several connections while the drain lands.
  std::atomic<bool> drain_requested{false};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> rejected{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      auto client = QueryClient::Connect("127.0.0.1", server.port());
      ASSERT_TRUE(client.ok());
      for (int i = 0; i < 10; ++i) {
        auto r = client->PointCount(LocusBox(1.0));
        if (r.ok()) {
          completed.fetch_add(1);
        } else {
          // Post-drain arrivals are rejected retryably; nothing else may
          // fail. (The reply still arrives — connections stay usable.)
          EXPECT_TRUE(r.status().IsTransient()) << r.status().ToString();
          EXPECT_TRUE(drain_requested.load());
          rejected.fetch_add(1);
        }
      }
    });
  }

  // Let some requests through, then drain mid-stream.
  while (completed.load() == 0) std::this_thread::yield();
  drain_requested.store(true);
  server.RequestDrain();
  EXPECT_TRUE(server.draining());

  for (auto& th : workers) th.join();
  EXPECT_GT(completed.load(), 0u);
  EXPECT_GT(rejected.load(), 0u);  // drain landed mid-stream

  // New connections are no longer accepted while draining.
  auto late = QueryClient::Connect("127.0.0.1", server.port(), 500);
  if (late.ok()) {
    QueryClient::Options bounded;
    bounded.deadline_ms = 2000;
    auto r = late->PointCount(LocusBox(0.5), bounded);
    EXPECT_FALSE(r.ok());
  }

  const auto stats = server.Stats();
  EXPECT_EQ(stats.rejected_draining, rejected.load());
  EXPECT_EQ(stats.replies_ok, completed.load());

  server.Shutdown();  // must not hang: everything admitted has finished
}

TEST_F(ServerTest, StatsReportCountsAndLatencies) {
  QueryServer server(dataset_, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  QueryClient client = MustConnect(server);

  const Box box = LocusBox(0.6);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.PointCount(box).ok());
  }
  ASSERT_TRUE(client.Knn(std::vector<double>(kNumBands, 0.5), 3).ok());
  ASSERT_TRUE(client.BoxQuery(Box(std::vector<double>(2, 0.0),
                                  std::vector<double>(2, 1.0)))
                  .ok()
              == false);  // dim mismatch: a counted error reply

  auto stats = client.ServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->requests_total, 8u);
  EXPECT_GE(stats->replies_ok, 6u);
  EXPECT_GE(stats->replies_error, 1u);
  EXPECT_GT(stats->bytes_in, 0u);
  EXPECT_GT(stats->bytes_out, 0u);
  EXPECT_GE(stats->connections_accepted, 1u);
  EXPECT_GT(stats->pool_logical_reads, 0u);

  using protocol::MessageType;
  using protocol::TypeIndex;
  const auto& pc = stats->per_type[TypeIndex(MessageType::kPointCount)];
  EXPECT_EQ(pc.count, 5u);
  EXPECT_GT(pc.p50_us, 0u);
  EXPECT_LE(pc.p50_us, pc.p99_us);
  EXPECT_LE(pc.p99_us, pc.max_us);
  const auto& knn = stats->per_type[TypeIndex(MessageType::kKnn)];
  EXPECT_EQ(knn.count, 1u);
  const auto& bq = stats->per_type[TypeIndex(MessageType::kBoxQuery)];
  EXPECT_EQ(bq.errors, 1u);

  server.Shutdown();
}

TEST_F(ServerTest, ShutdownIsIdempotentAndRestartFreesPort) {
  ServerConfig config;
  QueryServer first(dataset_, config);
  ASSERT_TRUE(first.Start().ok());
  const uint16_t port = first.port();
  first.Shutdown();
  first.Shutdown();  // idempotent

  // The port is free again (SO_REUSEADDR + all sockets closed).
  ServerConfig reuse;
  reuse.port = port;
  QueryServer second(dataset_, reuse);
  ASSERT_TRUE(second.Start().ok()) << "port " << port << " not released";
  QueryClient client = MustConnect(second);
  EXPECT_TRUE(client.Health().ok());
  second.Shutdown();
}

TEST_F(ServerTest, PipelinedBatchMatchesSequentialExactly) {
  // Pipelining parity: k pipelined requests must produce, slot for slot,
  // exactly the replies of k sequential round trips — same objids, same
  // chosen access path, same I/O accounting — whether the server ganged
  // them into one ExecuteBatch call or not. Cache off, so every request
  // truly executes.
  ServerConfig config;
  config.num_workers = 2;
  QueryServer server(dataset_, config);
  ASSERT_TRUE(server.Start().ok());

  std::vector<Box> boxes;
  for (int i = 0; i < 12; ++i) {
    boxes.push_back(LocusBox(0.2 + 0.1 * i));  // selective through wide
  }

  QueryClient sequential = MustConnect(server);
  std::vector<QueryClient::QueryResult> expected;
  for (const Box& box : boxes) {
    auto r = sequential.BoxQuery(box);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(std::move(*r));
  }

  QueryClient pipelined = MustConnect(server);
  auto got = pipelined.BoxQueryPipeline(boxes);
  ASSERT_EQ(got.size(), boxes.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].ok()) << i << ": " << got[i].status().ToString();
    EXPECT_EQ(got[i]->row_count, expected[i].row_count) << i;
    EXPECT_EQ(got[i]->objids, expected[i].objids) << i;
    EXPECT_EQ(got[i]->chosen_path, expected[i].chosen_path) << i;
    EXPECT_EQ(got[i]->rows_scanned, expected[i].rows_scanned) << i;
    EXPECT_EQ(got[i]->pages_fetched, expected[i].pages_fetched) << i;
    EXPECT_EQ(got[i]->pages_read, expected[i].pages_read) << i;
    EXPECT_EQ(got[i]->degraded, expected[i].degraded) << i;
  }

  // PointCount rides the same path; limits apply per slot.
  auto counts = pipelined.PointCountPipeline(boxes);
  ASSERT_EQ(counts.size(), boxes.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    ASSERT_TRUE(counts[i].ok()) << i;
    EXPECT_EQ(*counts[i], expected[i].row_count) << i;
  }
  auto limited = pipelined.BoxQueryPipeline(boxes, 2);
  ASSERT_EQ(limited.size(), boxes.size());
  for (size_t i = 0; i < limited.size(); ++i) {
    ASSERT_TRUE(limited[i].ok()) << i;
    const size_t want =
        std::min<size_t>(2, static_cast<size_t>(expected[i].row_count));
    ASSERT_EQ(limited[i]->objids.size(), want) << i;
    EXPECT_TRUE(std::equal(limited[i]->objids.begin(),
                           limited[i]->objids.end(),
                           expected[i].objids.begin()))
        << i;
  }

  server.Shutdown();
}

TEST_F(ServerTest, PipelinedErrorsFailOnlyTheirSlot) {
  // A malformed request inside a pipelined burst must not poison its
  // neighbors: the bad slot gets its own error status, every other slot
  // its normal answer, on the same connection.
  QueryServer server(dataset_, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  QueryClient client = MustConnect(server);

  std::vector<Box> boxes;
  boxes.push_back(LocusBox(0.6));
  boxes.push_back(Box(std::vector<double>(2, 0.0),
                      std::vector<double>(2, 1.0)));  // dim mismatch
  boxes.push_back(LocusBox(0.3));

  auto got = client.BoxQueryPipeline(boxes);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_TRUE(got[0].ok()) << got[0].status().ToString();
  ASSERT_FALSE(got[1].ok());
  EXPECT_EQ(got[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(got[2].ok()) << got[2].status().ToString();

  // The connection survived the per-slot error.
  EXPECT_TRUE(client.Health().ok());
  server.Shutdown();
}

TEST_F(ServerTest, PipelinedBurstMixingCacheHitsAndMisses) {
  // With the response cache on, a pipelined burst can contain slots the
  // I/O thread answers inline (hits) interleaved with slots that gang to
  // a worker (misses). Every slot must still get its answer and the
  // connection must survive — the mdsd default configuration runs with
  // the cache enabled, so this is the production shape of a burst.
  ServerConfig config;
  config.cache_bytes = 8u << 20;
  QueryServer server(dataset_, config);
  ASSERT_TRUE(server.Start().ok());
  QueryClient client = MustConnect(server);

  std::vector<Box> boxes;
  for (int i = 0; i < 4; ++i) boxes.push_back(LocusBox(0.2 + 0.2 * i));

  // Warm exactly one slot's entry (the last), as a prior singleton query.
  auto warm = client.PointCount(boxes.back());
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  auto counts = client.PointCountPipeline(boxes);
  ASSERT_EQ(counts.size(), boxes.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    ASSERT_TRUE(counts[i].ok())
        << "slot " << i << ": " << counts[i].status().ToString();
    EXPECT_EQ(*counts[i], BruteForceBox(boxes[i]).size()) << "slot " << i;
  }
  const auto stats = server.Stats();
  EXPECT_GE(stats.cache_hits, 1u);
  EXPECT_TRUE(client.Health().ok());  // connection survived the mix
  server.Shutdown();
}

TEST_F(ServerTest, ThousandIdleConnectionsOnOneIoThread) {
  // The reactor's raison d'être: connection count decoupled from thread
  // count. Park >=1000 idle connections on the default single I/O thread
  // and verify the process spawned no additional threads for them, while
  // the server still answers queries promptly.
  auto count_threads = [] {
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
      if (line.rfind("Threads:", 0) == 0) {
        return std::stoi(line.substr(8));
      }
    }
    return -1;
  };

  ServerConfig config;
  config.io_threads = 1;
  config.max_connections = 1200;
  config.idle_timeout_ms = 0;  // idle on purpose; don't reap them
  QueryServer server(dataset_, config);
  ASSERT_TRUE(server.Start().ok());

  const int threads_before = count_threads();
  ASSERT_GT(threads_before, 0);

  constexpr size_t kIdle = 1000;
  std::vector<Socket> idle;
  idle.reserve(kIdle);
  for (size_t i = 0; i < kIdle; ++i) {
    auto sock = TcpConnect("127.0.0.1", server.port(), 5000);
    ASSERT_TRUE(sock.ok()) << "connection " << i << ": "
                           << sock.status().ToString();
    idle.push_back(std::move(*sock));
  }

  // Give the loop a beat to register the tail end of the accept burst,
  // then verify: same thread count, and a live query path.
  QueryClient client = MustConnect(server);
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  auto count = client.PointCount(LocusBox(0.5));
  ASSERT_TRUE(count.ok()) << count.status().ToString();

  const int threads_after = count_threads();
  EXPECT_EQ(threads_after, threads_before)
      << kIdle << " idle connections must not cost threads";

  const auto stats = server.Stats();
  EXPECT_GE(stats.connections_accepted, kIdle);

  idle.clear();
  server.Shutdown();
}

TEST_F(ServerTest, AcceptBackoffRecoversFromFdExhaustion) {
  // Synthetic EMFILE on the first accepts (the debug hook mirrors the
  // real branch: count, close, deregister, re-arm after backoff). The
  // server must count accept_errors, keep running, and serve connections
  // normally once the pressure clears.
  ServerConfig config;
  config.debug_fail_first_accepts = 3;
  QueryServer server(dataset_, config);
  ASSERT_TRUE(server.Start().ok());

  // Early connects may be swallowed by the synthetic failures; keep
  // trying until a request round-trips. Backoff caps at 10+20+40ms here,
  // so well under the retry budget.
  bool served = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    auto client = QueryClient::Connect("127.0.0.1", server.port(), 1000);
    if (client.ok() && client->Health().ok()) {
      served = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(served) << "server never recovered from synthetic EMFILE";

  const auto stats = server.Stats();
  EXPECT_EQ(stats.accept_errors, 3u);
  EXPECT_GE(stats.connections_accepted, 1u);

  // The counter also travels the wire.
  QueryClient client = MustConnect(server);
  auto remote = client.ServerStats();
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(remote->accept_errors, 3u);

  server.Shutdown();
}

TEST_F(ServerTest, ClientDeadlineExceededInsteadOfHanging) {
  // A server that accepts but never replies must not hang the client: a
  // request with a deadline comes back kDeadlineExceeded (retryable)
  // once the exchange bound expires.
  auto listener = TcpListener::Listen(0);
  ASSERT_TRUE(listener.ok());
  std::thread sink([&] {
    auto sock = listener->Accept(IoDeadline::After(10000));
    if (sock.ok()) {
      // Hold the connection open, reading nothing, replying nothing,
      // until well past the client's exchange bound (deadline + 2 s
      // slack) so the client's clock, not a reset, ends the wait.
      std::this_thread::sleep_for(std::chrono::milliseconds(4000));
    }
  });

  auto client = QueryClient::Connect("127.0.0.1", listener->port());
  ASSERT_TRUE(client.ok());
  QueryClient::Options options;
  options.deadline_ms = 100;
  const auto start = std::chrono::steady_clock::now();
  auto result = client->PointCount(LocusBox(0.5), options);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
  EXPECT_TRUE(result.status().IsTransient());
  // Bounded by deadline + client slack, far under the no-deadline bound.
  EXPECT_LT(elapsed, std::chrono::seconds(30));
  EXPECT_FALSE(client->connected());  // stream is desynchronized

  listener->Shutdown();
  sink.join();
}

// --- hot swap ---------------------------------------------------------------

/// A reload handler that rebuilds the dataset from `config` — with the
/// startup config this is a no-op generation whose replies are
/// byte-identical to the old one.
QueryServer::ReloadHandler RebuildHandler(DatasetConfig config) {
  return [config](const std::string&)
             -> Result<std::shared_ptr<ServedDataset>> {
    auto next = ServedDataset::Build(config);
    if (!next.ok()) return next.status();
    return std::make_shared<ServedDataset>(std::move(*next));
  };
}

DatasetConfig SuiteConfig() {
  DatasetConfig config;
  config.num_rows = 50000;  // matches the fixture dataset
  return config;
}

TEST_F(ServerTest, ReloadWithoutHandlerIsRefused) {
  QueryServer server(dataset_, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  QueryClient client = MustConnect(server);
  auto reply = client.Reload("");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kFailedPrecondition);
  // An error reply, not a protocol violation: the connection survives.
  EXPECT_TRUE(client.Health().ok());
  server.Shutdown();
}

TEST_F(ServerTest, NoOpReloadKeepsRepliesByteIdentical) {
  auto served = std::make_shared<const ServedDataset>(
      std::move(*ServedDataset::Build(SuiteConfig())));
  QueryServer server(served, ServerConfig{});
  server.SetReloadHandler(RebuildHandler(SuiteConfig()));
  ASSERT_TRUE(server.Start().ok());
  QueryClient client = MustConnect(server);

  const Box box = LocusBox(0.7);
  auto before = client.BoxQuery(box);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  double mags[kNumBands];
  StellarLocus(0.3, 0.0, mags);
  auto knn_before = client.Knn(std::vector<double>(mags, mags + kNumBands), 5);
  ASSERT_TRUE(knn_before.ok());

  QueryClient::Options slow;
  slow.deadline_ms = 60000;  // the reload covers a full dataset build
  auto reply = client.Reload("", slow);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->new_epoch, reply->old_epoch + 1);
  EXPECT_EQ(reply->served_rows, served->num_rows());

  // Same connection, same requests: byte-identical answers from the new
  // generation (same seed => same points, same clustering, same I/O).
  auto after = client.BoxQuery(box);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->objids, before->objids);
  EXPECT_EQ(after->row_count, before->row_count);
  EXPECT_EQ(after->chosen_path, before->chosen_path);
  EXPECT_EQ(after->rows_scanned, before->rows_scanned);
  EXPECT_EQ(after->pages_fetched, before->pages_fetched);
  auto knn_after = client.Knn(std::vector<double>(mags, mags + kNumBands), 5);
  ASSERT_TRUE(knn_after.ok());
  ASSERT_EQ(knn_after->neighbors.size(), knn_before->neighbors.size());
  for (size_t i = 0; i < knn_after->neighbors.size(); ++i) {
    EXPECT_EQ(knn_after->neighbors[i].id, knn_before->neighbors[i].id);
    EXPECT_DOUBLE_EQ(knn_after->neighbors[i].squared_distance,
                     knn_before->neighbors[i].squared_distance);
  }

  // The stats reply observes the bump.
  auto stats = client.ServerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->dataset_epoch, reply->new_epoch);
  server.Shutdown();
}

TEST_F(ServerTest, ReloadInvalidatesCacheWholesale) {
  auto served = std::make_shared<const ServedDataset>(
      std::move(*ServedDataset::Build(SuiteConfig())));
  ServerConfig config;
  config.cache_bytes = 8u << 20;
  QueryServer server(served, config);
  server.SetReloadHandler(RebuildHandler(SuiteConfig()));
  ASSERT_TRUE(server.Start().ok());
  QueryClient client = MustConnect(server);

  // Warm: miss then hit — ratio 1.0 on repeats.
  const Box box = LocusBox(0.6);
  ASSERT_TRUE(client.PointCount(box).ok());
  ASSERT_TRUE(client.PointCount(box).ok());
  EXPECT_EQ(server.Stats().cache_hits, 1u);

  QueryClient::Options slow;
  slow.deadline_ms = 60000;
  auto reply = client.Reload("", slow);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();

  // Every pre-swap entry is dead: first repeat misses, then hits again.
  ASSERT_TRUE(client.PointCount(box).ok());
  EXPECT_EQ(server.Stats().cache_hits, 1u);  // miss under the new epoch
  ASSERT_TRUE(client.PointCount(box).ok());
  EXPECT_EQ(server.Stats().cache_hits, 2u);  // repopulated
  server.Shutdown();
}

TEST_F(ServerTest, ReloadRefusesIncompatibleDataset) {
  auto served = std::make_shared<const ServedDataset>(
      std::move(*ServedDataset::Build(SuiteConfig())));
  QueryServer server(served, ServerConfig{});
  // A handler that comes back with a shard slice the server wasn't
  // serving: shape change mid-flight would silently drop data.
  server.SetReloadHandler([](const std::string&)
                              -> Result<std::shared_ptr<ServedDataset>> {
    DatasetConfig sharded = SuiteConfig();
    sharded.shard_count = 2;
    auto next = ServedDataset::Build(sharded);
    if (!next.ok()) return next.status();
    return std::make_shared<ServedDataset>(std::move(*next));
  });
  ASSERT_TRUE(server.Start().ok());
  QueryClient client = MustConnect(server);

  const uint64_t epoch_before = server.Stats().dataset_epoch;
  QueryClient::Options slow;
  slow.deadline_ms = 60000;
  auto reply = client.Reload("", slow);
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kFailedPrecondition);

  // The refused generation changed nothing: same epoch, old data serves.
  EXPECT_EQ(server.Stats().dataset_epoch, epoch_before);
  auto count = client.PointCount(LocusBox(0.5));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, BruteForceBox(LocusBox(0.5)).size());
  server.Shutdown();
}

TEST_F(ServerTest, ReloadHandlerFailurePropagatesAndKeepsServing) {
  auto served = std::make_shared<const ServedDataset>(
      std::move(*ServedDataset::Build(SuiteConfig())));
  QueryServer server(served, ServerConfig{});
  server.SetReloadHandler([](const std::string& path)
                              -> Result<std::shared_ptr<ServedDataset>> {
    return Status::NotFound("no dataset at '" + path + "'");
  });
  ASSERT_TRUE(server.Start().ok());
  QueryClient client = MustConnect(server);
  auto reply = client.Reload("/nonexistent.mds");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(client.Health().ok());
  server.Shutdown();
}

TEST_F(ServerTest, HotSwapUnderConcurrentLoadLosesNoRequests) {
  // The acceptance bar for the whole subsystem: a swap lands while
  // closed-loop clients hammer the server, and not one request fails —
  // in-flight queries finish on the old snapshot, later ones run on the
  // new, the cache flips wholesale, and every answer stays correct
  // (the generations are byte-identical, so one brute-force oracle
  // checks both sides of the swap).
  auto served = std::make_shared<const ServedDataset>(
      std::move(*ServedDataset::Build(SuiteConfig())));
  ServerConfig config;
  config.cache_bytes = 8u << 20;
  config.num_workers = 4;
  config.max_in_flight = 256;
  QueryServer server(served, config);
  server.SetReloadHandler(RebuildHandler(SuiteConfig()));
  ASSERT_TRUE(server.Start().ok());

  const Box box = LocusBox(0.8);
  const std::vector<int64_t> expected = BruteForceBox(box);
  ASSERT_FALSE(expected.empty());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries_ok{0};
  std::atomic<uint64_t> queries_failed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      auto client = QueryClient::Connect("127.0.0.1", server.port());
      ASSERT_TRUE(client.ok());
      QueryClient::Options bounded;
      bounded.deadline_ms = 30000;
      while (!stop.load()) {
        auto r = client->PointCount(box, bounded);
        if (r.ok() && *r == expected.size()) {
          queries_ok.fetch_add(1);
        } else {
          queries_failed.fetch_add(1);
        }
      }
    });
  }

  // Let traffic establish, then swap live — twice, to also cover a
  // second generation retiring a first reloaded one.
  while (queries_ok.load() < 50) std::this_thread::yield();
  auto admin = QueryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(admin.ok());
  QueryClient::Options slow;
  slow.deadline_ms = 60000;
  auto first = admin->Reload("", slow);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const uint64_t mid = queries_ok.load();
  while (queries_ok.load() < mid + 50) std::this_thread::yield();
  auto second = admin->Reload("", slow);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->old_epoch, first->new_epoch);
  EXPECT_EQ(second->new_epoch, first->new_epoch + 1);

  stop.store(true);
  for (auto& th : workers) th.join();

  EXPECT_GT(queries_ok.load(), 100u);
  EXPECT_EQ(queries_failed.load(), 0u)
      << "hot swap must lose zero requests";
  EXPECT_EQ(server.Stats().dataset_epoch, second->new_epoch);
  server.Shutdown();
}

}  // namespace
}  // namespace mds
