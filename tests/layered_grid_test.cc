#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/layered_grid.h"

namespace mds {
namespace {

PointSet ClusteredPoints(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  PointSet ps(d, 0);
  ps.Reserve(n);
  std::vector<double> p(d);
  for (size_t i = 0; i < n; ++i) {
    double mode = rng.NextDouble();
    for (size_t j = 0; j < d; ++j) {
      if (mode < 0.6) {
        p[j] = 0.5 + 0.05 * rng.NextGaussian();
      } else {
        p[j] = rng.NextDouble();
      }
    }
    ps.Append(p.data());
  }
  return ps;
}

TEST(LayeredGridTest, BuildInvariants) {
  const size_t n = 50000;
  PointSet ps = ClusteredPoints(n, 3, 1);
  auto index = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(index.ok());

  // Layer sizes follow 1024 * 8^(l-1) until the remainder.
  uint64_t expected = 1024;
  uint64_t total = 0;
  for (uint32_t l = 0; l < index->num_layers(); ++l) {
    const auto& layer = index->layer(l);
    uint64_t size = layer.row_end - layer.row_begin;
    if (l + 1 < index->num_layers()) {
      EXPECT_EQ(size, expected) << "layer " << l;
    } else {
      EXPECT_EQ(size, n - total);
    }
    total += size;
    expected *= 8;
    EXPECT_EQ(layer.resolution, uint32_t{1} << (l + 1));
  }
  EXPECT_EQ(total, n);

  // RandomID is a permutation; Layer/ContainedBy consistent with CellOf.
  std::set<int64_t> rids;
  for (uint64_t i = 0; i < n; ++i) {
    rids.insert(index->random_id(i));
    uint32_t layer = static_cast<uint32_t>(index->layer_of(i)) - 1;
    EXPECT_EQ(index->contained_by(i), index->CellOf(ps.point(i), layer));
  }
  EXPECT_EQ(rids.size(), n);

  // Clustered order sorted by (layer, cell, random id).
  const auto& order = index->clustered_order();
  for (uint64_t r = 1; r < n; ++r) {
    uint64_t a = order[r - 1], b = order[r];
    auto key = [&](uint64_t id) {
      return std::make_tuple(index->layer_of(id), index->contained_by(id),
                             index->random_id(id));
    };
    EXPECT_LT(key(a), key(b));
  }

  // Cell directories cover their layers exactly.
  for (uint32_t l = 0; l < index->num_layers(); ++l) {
    const auto& layer = index->layer(l);
    uint64_t covered = 0;
    int64_t prev_cell = -1;
    for (const auto& cr : layer.cells) {
      EXPECT_GT(cr.cell, prev_cell);  // sorted, unique
      prev_cell = cr.cell;
      covered += cr.row_end - cr.row_begin;
    }
    EXPECT_EQ(covered, layer.row_end - layer.row_begin);
  }
}

TEST(LayeredGridTest, FullBoxReturnsEverythingWhenAskedForAll) {
  const size_t n = 20000;
  PointSet ps = ClusteredPoints(n, 3, 3);
  auto index = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(index.ok());
  Box everything = index->bounding_box();
  std::vector<uint64_t> out;
  ASSERT_TRUE(index->SampleQuery(everything, n, &out).ok());
  EXPECT_EQ(out.size(), n);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  EXPECT_EQ(out.size(), n);  // no duplicates
}

TEST(LayeredGridTest, ReturnsAtLeastNAndAllInBox) {
  const size_t n = 100000;
  PointSet ps = ClusteredPoints(n, 3, 5);
  auto index = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(index.ok());
  Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<double> lo(3), hi(3);
    for (int j = 0; j < 3; ++j) {
      lo[j] = rng.NextUniform(0.0, 0.7);
      hi[j] = lo[j] + rng.NextUniform(0.05, 0.3);
    }
    Box q(lo, hi);
    const uint64_t want = 500;
    std::vector<uint64_t> out;
    GridQueryStats stats;
    ASSERT_TRUE(index->SampleQuery(q, want, &out, &stats).ok());
    // Everything returned is in the box.
    for (uint64_t id : out) EXPECT_TRUE(q.Contains(ps.point(id)));
    // Count the box population; if >= want, the query must deliver.
    uint64_t population = 0;
    for (uint64_t i = 0; i < ps.size(); ++i) {
      if (q.Contains(ps.point(i))) ++population;
    }
    if (population >= want) {
      EXPECT_GE(out.size(), want);
    } else {
      EXPECT_EQ(out.size(), population);
    }
    EXPECT_EQ(stats.points_returned, out.size());
  }
}

TEST(LayeredGridTest, SampleFollowsUnderlyingDistribution) {
  // Two clusters with 3:1 mass ratio inside the query box: a fair sampler
  // must return them in roughly that ratio even when asked for a small n.
  Rng rng(11);
  PointSet ps(3, 0);
  const size_t n = 80000;
  for (size_t i = 0; i < n; ++i) {
    double cx = (i % 4 != 0) ? 0.25 : 0.75;  // 3:1
    double p[3];
    for (int j = 0; j < 3; ++j) {
      p[j] = cx + 0.03 * rng.NextGaussian();
    }
    ps.Append(p);
  }
  auto index = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(index.ok());
  Box q({0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});
  std::vector<uint64_t> out;
  ASSERT_TRUE(index->SampleQuery(q, 2000, &out).ok());
  ASSERT_GE(out.size(), 2000u);
  uint64_t left = 0;
  for (uint64_t id : out) {
    if (ps.coord(id, 0) < 0.5) ++left;
  }
  double fraction = static_cast<double>(left) / out.size();
  EXPECT_NEAR(fraction, 0.75, 0.05);
}

TEST(LayeredGridTest, SmallBoxesStopAtDeepLayers) {
  const size_t n = 200000;
  PointSet ps = ClusteredPoints(n, 3, 13);
  auto index = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(index.ok());
  // A large box satisfied by layer 1; a tiny box requiring deep layers.
  std::vector<uint64_t> out;
  GridQueryStats big_stats;
  ASSERT_TRUE(index
                  ->SampleQuery(index->bounding_box(), 100, &out, &big_stats)
                  .ok());
  EXPECT_EQ(big_stats.layers_visited, 1u);
  // Scanning only layer 1 touches at most 1024 points.
  EXPECT_LE(big_stats.points_scanned, 1024u);

  out.clear();
  GridQueryStats small_stats;
  Box tiny({0.49, 0.49, 0.49}, {0.51, 0.51, 0.51});
  ASSERT_TRUE(index->SampleQuery(tiny, 100, &out, &small_stats).ok());
  EXPECT_GT(small_stats.layers_visited, 1u);
  // The box straddles the densest cell corner — the uniform grid's worst
  // case (the paper notes "the grid is not adaptive"). Even so, deep
  // layers are never touched once n is reached, so the scan stays well
  // under the table size.
  EXPECT_LT(small_stats.layers_visited, index->num_layers());
  EXPECT_LT(small_stats.points_scanned, n / 3);
}

TEST(LayeredGridTest, DimensionMismatchRejected) {
  PointSet ps = ClusteredPoints(5000, 3, 17);
  auto index = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(index.ok());
  std::vector<uint64_t> out;
  EXPECT_FALSE(index->SampleQuery(Box({0, 0}, {1, 1}), 10, &out).ok());
}

TEST(LayeredGridTest, TwoDimensionalData) {
  PointSet ps = ClusteredPoints(30000, 2, 19);
  auto index = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(index.ok());
  // Layer multiplier is 2^d = 4 in 2-D.
  const auto& l0 = index->layer(0);
  const auto& l1 = index->layer(1);
  EXPECT_EQ(l0.row_end - l0.row_begin, 1024u);
  EXPECT_EQ(l1.row_end - l1.row_begin, 4096u);
  std::vector<uint64_t> out;
  ASSERT_TRUE(
      index->SampleQuery(Box({0.2, 0.2}, {0.8, 0.8}), 300, &out).ok());
  EXPECT_GE(out.size(), 300u);
}

TEST(LayeredGridTest, DegenerateAxisHandled) {
  // All points share one coordinate: the bounding box would be flat.
  Rng rng(23);
  PointSet ps(3, 0);
  for (int i = 0; i < 5000; ++i) {
    float p[3] = {static_cast<float>(rng.NextDouble()),
                  static_cast<float>(rng.NextDouble()), 2.5f};
    ps.Append(p);
  }
  auto index = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(index.ok());
  std::vector<uint64_t> out;
  Box q({0.0, 0.0, 2.0}, {1.0, 1.0, 3.0});
  ASSERT_TRUE(index->SampleQuery(q, 100, &out).ok());
  EXPECT_GE(out.size(), 100u);
}

TEST(LayeredGridStreamTest, StreamMatchesBatchQuery) {
  PointSet ps = ClusteredPoints(50000, 3, 29);
  auto index = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(index.ok());
  Box q({0.3, 0.3, 0.3}, {0.6, 0.6, 0.6});
  std::vector<uint64_t> batch;
  ASSERT_TRUE(index->SampleQuery(q, 800, &batch).ok());
  std::vector<uint64_t> streamed;
  std::vector<uint32_t> layers;
  ASSERT_TRUE(index
                  ->SampleQueryStream(q, 800,
                                      [&](uint64_t id, uint32_t layer) {
                                        streamed.push_back(id);
                                        layers.push_back(layer);
                                      })
                  .ok());
  EXPECT_EQ(streamed, batch);
  // Points arrive layer by layer, coarse to fine (§3.1 streaming).
  for (size_t i = 1; i < layers.size(); ++i) {
    EXPECT_LE(layers[i - 1], layers[i]);
  }
}

TEST(LayeredGridStreamTest, EarlyAbortStopsStream) {
  PointSet ps = ClusteredPoints(20000, 3, 31);
  auto index = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(index.ok());
  uint64_t received = 0;
  ASSERT_TRUE(index
                  ->SampleQueryStream(index->bounding_box(), 100000,
                                      [&](uint64_t, uint32_t) -> bool {
                                        return ++received < 50;
                                      })
                  .ok());
  EXPECT_EQ(received, 50u);
}

TEST(LayeredGridStreamTest, DimensionMismatchRejected) {
  PointSet ps = ClusteredPoints(5000, 3, 33);
  auto index = LayeredGridIndex::Build(&ps);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index
                   ->SampleQueryStream(Box({0, 0}, {1, 1}), 10,
                                       [](uint64_t, uint32_t) {})
                   .ok());
}

TEST(LayeredGridTest, EmptyPointSetRejected) {
  PointSet empty(3, 0);
  EXPECT_FALSE(LayeredGridIndex::Build(&empty).ok());
}

}  // namespace
}  // namespace mds
