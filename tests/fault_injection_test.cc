#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/access_path.h"
#include "core/index_io.h"
#include "core/point_table.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace mds {
namespace {

/// Campaign seed, overridable from the environment so CI can sweep several
/// seeds (`MDS_FAULT_SEED=17 ./fault_injection_test`). Every derived seed
/// below offsets from this one, so one env var reshuffles all campaigns.
uint64_t CampaignSeed() {
  const char* env = std::getenv("MDS_FAULT_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void Accumulate(FaultStats* total, const FaultStats& s) {
  total->ops += s.ops;
  total->bit_flips += s.bit_flips;
  total->torn_writes += s.torn_writes;
  total->short_reads += s.short_reads;
  total->transients += s.transients;
  total->permanents += s.permanents;
  total->budget_faults += s.budget_faults;
}

/// Read-path campaign: a clean on-disk point table queried thousands of
/// times through a fault-injecting stack. Every query must either match the
/// fault-free baseline exactly, fail with a non-OK Status, or come back
/// degraded with an accurate pages_skipped bound — silent wrong answers are
/// the one forbidden outcome.
TEST(FaultCampaignTest, ReadPathNeverLiesSilently) {
  const uint64_t seed = CampaignSeed();
  const std::string path = TempPath("mds_fault_read_campaign.db");

  Rng rng(seed * 7919 + 1);
  PointSet points(2, 0);
  std::vector<double> p(2);
  for (int i = 0; i < 20000; ++i) {
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble();
    points.Append(p.data());
  }
  Schema schema = PointTableSchema(2);
  std::vector<PageId> page_ids;
  uint64_t num_rows = 0;
  uint32_t rows_per_page = 0;
  {
    auto pager = FilePager::Create(path);
    ASSERT_TRUE(pager.ok());
    BufferPool pool(pager->get(), 256);
    auto table = MaterializePointTable(&pool, points, {});
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(pool.FlushAll().ok());
    num_rows = table->num_rows();
    rows_per_page = table->rows_per_page();
    for (uint64_t i = 0; i < table->num_pages(); ++i) {
      page_ids.push_back(table->page_id(i));
    }
  }

  Polyhedron poly = Polyhedron::BallApproximation({0.5, 0.5}, 0.4, 16);
  std::vector<int64_t> expected;
  for (uint64_t i = 0; i < points.size(); ++i) {
    if (poly.Contains(points.point(i))) {
      expected.push_back(static_cast<int64_t>(i));
    }
  }
  std::sort(expected.begin(), expected.end());
  ASSERT_FALSE(expected.empty());

  FaultConfig config;
  config.seed = seed;
  config.p_bit_flip = 0.08;
  config.p_short_read = 0.04;
  config.p_transient = 0.08;
  config.p_permanent = 0.02;

  auto pager = FilePager::Open(path);
  ASSERT_TRUE(pager.ok());
  FaultInjectionPager faulty(pager->get(), config);
  RetryingPager retrying(&faulty, RetryingPager::Options{4, 0});

  const uint64_t kTargetInjected = 7000;
  uint64_t ok_exact = 0, ok_degraded = 0, failed = 0;
  int iter = 0;
  while (faulty.stats().total_injected() < kTargetInjected) {
    ASSERT_LT(iter, 50000) << "campaign failed to reach its fault target";
    // A fresh pool per query: quarantine is per-pool and permanent, so one
    // long-lived pool would stop generating physical reads (and faults).
    BufferPool pool(&retrying, 64);
    auto table = Table::Attach(&pool, schema, page_ids, num_rows);
    ASSERT_TRUE(table.ok());
    FullScanPath scan(BindPointTable(&*table, 2), poly);
    RangeScanner::ScanOptions options;
    options.skip_corrupt_pages = (iter % 2 == 1);

    auto result = ExecuteAccessPath(&scan, options);
    if (!result.ok()) {
      ++failed;  // an honest error is always acceptable
    } else {
      std::vector<int64_t> got = result->objids;
      std::sort(got.begin(), got.end());
      if (result->degraded) {
        ASSERT_TRUE(options.skip_corrupt_pages);
        ASSERT_GT(result->pages_skipped, 0u);
        // Partial answers must be honest: a subset of the truth, missing
        // no more rows than the skipped pages could have held.
        ASSERT_TRUE(std::includes(expected.begin(), expected.end(),
                                  got.begin(), got.end()))
            << "degraded result contained rows not in the baseline";
        ASSERT_LE(expected.size() - got.size(),
                  result->pages_skipped * uint64_t{rows_per_page});
        ++ok_degraded;
      } else {
        ASSERT_EQ(got, expected) << "non-degraded result differed from the "
                                    "fault-free baseline (iteration "
                                 << iter << ")";
        ASSERT_EQ(result->pages_skipped, 0u);
        ++ok_exact;
      }
    }
    ++iter;
  }

  const FaultStats stats = faulty.stats();
  EXPECT_GE(stats.total_injected(), kTargetInjected);
  EXPECT_GT(stats.bit_flips, 0u);
  EXPECT_GT(stats.short_reads, 0u);
  EXPECT_GT(stats.transients, 0u);
  EXPECT_GT(stats.permanents, 0u);
  EXPECT_GT(retrying.retries(), 0u);  // transients were absorbed, not fatal
  // Exercise sanity: the campaign saw every outcome class.
  EXPECT_GT(ok_exact, 0u);
  EXPECT_GT(ok_degraded, 0u);
  EXPECT_GT(failed, 0u);
  std::remove(path.c_str());
}

/// Write-path campaign: tables built while torn writes, transients and
/// permanent errors hit the pager. After a successful flush, a clean reopen
/// must see every appended row either byte-exact or rejected with
/// Corruption — never silently wrong.
TEST(FaultCampaignTest, WritePathTornWritesAreCaught) {
  const uint64_t seed = CampaignSeed();
  const std::string path = TempPath("mds_fault_write_campaign.db");
  Schema schema = PointTableSchema(2);

  const uint64_t kTargetInjected = 3000;
  FaultStats total;
  uint64_t rows_verified = 0, rows_corrupt = 0, flush_gave_up = 0;
  int iter = 0;
  while (total.total_injected() < kTargetInjected) {
    ASSERT_LT(iter, 20000) << "campaign failed to reach its fault target";
    FaultConfig config;
    config.seed = seed + 1000003 * static_cast<uint64_t>(iter + 1);
    config.p_torn_write = 0.12;
    config.p_transient = 0.08;
    config.p_permanent = 0.02;

    auto pager = FilePager::Create(path);
    ASSERT_TRUE(pager.ok());
    FaultInjectionPager faulty(pager->get(), config);
    RetryingPager retrying(&faulty, RetryingPager::Options{4, 0});

    std::vector<PageId> page_ids;
    uint64_t appended = 0;
    uint32_t rows_per_page = 0;
    bool durable = false;
    {
      // Tiny pool so evictions force physical writes mid-append.
      BufferPool pool(&retrying, 4);
      auto table = Table::Create(&pool, schema);
      if (table.ok()) {
        rows_per_page = table->rows_per_page();
        RowBuilder row(&schema);
        for (int i = 0; i < 3000; ++i) {
          row.SetInt64(0, i + 1);
          row.SetFloat32(1, (i + 1) * 0.5f);
          row.SetFloat32(2, (i + 1) * 0.25f);
          // Stop at the first failure: a failed append may have allocated
          // a page it never linked rows into, and rows past the failure
          // were never promised to exist.
          if (!table->Append(row).ok()) break;
          ++appended;
        }
        // FlushAll keeps pages dirty when their write-back fails, so
        // retrying it makes progress against transient/permanent faults.
        for (int attempt = 0; attempt < 300 && !durable; ++attempt) {
          durable = pool.FlushAll().ok();
        }
        if (durable && appended > 0) {
          const uint64_t needed =
              (appended + rows_per_page - 1) / rows_per_page;
          for (uint64_t i = 0; i < needed; ++i) {
            page_ids.push_back(table->page_id(i));
          }
        }
      }
      Accumulate(&total, faulty.stats());
    }
    ++iter;
    if (!durable || appended == 0) {
      // Durability was never promised for this table; nothing to verify.
      ++flush_gave_up;
      continue;
    }

    // Clean reopen, no injection: the moment of truth.
    auto clean = FilePager::Open(path);
    ASSERT_TRUE(clean.ok());
    BufferPool vpool(clean->get(), 64);
    auto vtable = Table::Attach(&vpool, schema, page_ids, appended);
    ASSERT_TRUE(vtable.ok());
    std::vector<uint8_t> buf(schema.row_size());
    for (uint64_t r = 0; r < appended; ++r) {
      Status status = vtable->ReadRow(r, buf.data());
      if (status.ok()) {
        int64_t objid;
        float x, y;
        std::memcpy(&objid, buf.data() + schema.offset(0), sizeof(objid));
        std::memcpy(&x, buf.data() + schema.offset(1), sizeof(x));
        std::memcpy(&y, buf.data() + schema.offset(2), sizeof(y));
        ASSERT_EQ(objid, static_cast<int64_t>(r) + 1)
            << "silently wrong row " << r << " (iteration " << iter << ")";
        ASSERT_EQ(x, (r + 1) * 0.5f);
        ASSERT_EQ(y, (r + 1) * 0.25f);
        ++rows_verified;
      } else {
        ASSERT_EQ(status.code(), StatusCode::kCorruption)
            << status.message() << " (row " << r << ", iteration " << iter
            << ")";
        ++rows_corrupt;
      }
    }
  }

  EXPECT_GE(total.total_injected(), kTargetInjected);
  EXPECT_GT(total.torn_writes, 0u);
  EXPECT_GT(total.transients, 0u);
  EXPECT_GT(rows_verified, 0u);
  EXPECT_GT(rows_corrupt, 0u);  // some torn write must have been caught
  std::remove(path.c_str());
}

/// Combined gate: the two campaigns above each enforce their own floor
/// (7000 + 3000), so together a default run injects >= 10k faults.

/// Atomic save: fail at every operation index during an IndexIo save and
/// check the previously saved index is still loadable afterwards. Save
/// chains live in freshly allocated pages and are flushed before the head
/// escapes, so an aborted save must never damage the old one.
TEST(FaultCampaignTest, AtomicSaveSurvivesFaultAtEveryOpIndex) {
  Rng rng(CampaignSeed() * 31 + 5);
  PointSet points(2, 0);
  std::vector<double> p(2);
  for (int i = 0; i < 2000; ++i) {
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble();
    points.Append(p.data());
  }
  auto built = KdTreeIndex::Build(&points);
  ASSERT_TRUE(built.ok());
  const KdTreeIndex& tree = *built;

  MemPager base;
  FaultInjectionPager faulty(&base, FaultConfig::kUnlimited);

  // Fault-free save of the "previous" index, and the op budget one save
  // consumes.
  PageId head0 = kInvalidPageId;
  uint64_t ops_used = 0;
  {
    BufferPool pool(&faulty, 256);
    const uint64_t ops_before = faulty.stats().ops;
    auto saved = IndexIo::SaveKdTree(&pool, tree);
    ASSERT_TRUE(saved.ok());
    head0 = *saved;
    ops_used = faulty.stats().ops - ops_before;
  }
  ASSERT_GT(ops_used, 0u);

  uint64_t aborted = 0;
  for (uint64_t k = 0; k < ops_used; ++k) {
    faulty.Reset(k);  // the (k+1)-th pager op, and all after it, fail
    {
      BufferPool pool(&faulty, 256);
      auto attempt = IndexIo::SaveKdTree(&pool, tree);
      if (!attempt.ok()) ++aborted;
      faulty.Reset(FaultConfig::kUnlimited);
      // Pool teardown flushes whatever the aborted save left dirty; those
      // are orphan fresh pages, harmless to the committed chain.
    }
    BufferPool reload_pool(&base, 256);
    auto reloaded = IndexIo::LoadKdTree(&reload_pool, head0, &points);
    ASSERT_TRUE(reloaded.ok())
        << "old index unreadable after save aborted at op " << k << ": "
        << reloaded.status().ToString();
    ASSERT_EQ(reloaded->clustered_order(), tree.clustered_order());
  }
  EXPECT_GT(aborted, 0u);  // the sweep actually aborted saves mid-flight
  EXPECT_GT(faulty.stats().budget_faults, 0u);
}

}  // namespace
}  // namespace mds
