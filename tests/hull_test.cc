#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "hull/delaunay.h"
#include "hull/quickhull.h"
#include "hull/voronoi.h"

namespace mds {
namespace {

/// All input points must satisfy every facet plane (within tolerance) —
/// the defining property of a convex hull.
void ExpectAllPointsInside(const ConvexHull& hull,
                           const std::vector<double>& points, double tol) {
  const size_t d = hull.dim;
  const size_t n = points.size() / d;
  for (const HullFacet& f : hull.facets) {
    for (size_t i = 0; i < n; ++i) {
      double dot = 0.0;
      for (size_t j = 0; j < d; ++j) dot += f.normal[j] * points[i * d + j];
      EXPECT_LE(dot, f.offset + tol) << "point " << i << " above a facet";
    }
  }
}

/// Every facet must have exactly d alive neighbors and each neighbor must
/// share d-1 vertices.
void ExpectFacetGraphConsistent(const ConvexHull& hull) {
  const size_t d = hull.dim;
  for (size_t fi = 0; fi < hull.facets.size(); ++fi) {
    const HullFacet& f = hull.facets[fi];
    EXPECT_EQ(f.vertices.size(), d);
    EXPECT_EQ(f.neighbors.size(), d) << "facet " << fi;
    for (uint32_t nb : f.neighbors) {
      ASSERT_LT(nb, hull.facets.size());
      const HullFacet& g = hull.facets[nb];
      std::vector<uint32_t> shared;
      std::set_intersection(f.vertices.begin(), f.vertices.end(),
                            g.vertices.begin(), g.vertices.end(),
                            std::back_inserter(shared));
      EXPECT_EQ(shared.size(), d - 1);
    }
  }
}

TEST(QuickhullTest, Square2D) {
  // Unit square corners plus interior points.
  std::vector<double> pts = {0, 0, 1, 0, 0, 1, 1, 1,
                             0.5, 0.5, 0.25, 0.75, 0.9, 0.1};
  auto hull = ComputeConvexHull(pts, 2);
  ASSERT_TRUE(hull.ok());
  EXPECT_EQ(hull->facets.size(), 4u);
  EXPECT_EQ(hull->hull_vertices.size(), 4u);
  std::set<uint32_t> hv(hull->hull_vertices.begin(),
                        hull->hull_vertices.end());
  EXPECT_EQ(hv, (std::set<uint32_t>{0, 1, 2, 3}));
  ExpectAllPointsInside(*hull, pts, 1e-9);
  ExpectFacetGraphConsistent(*hull);
}

TEST(QuickhullTest, Cube3D) {
  std::vector<double> pts;
  for (int x = 0; x <= 1; ++x)
    for (int y = 0; y <= 1; ++y)
      for (int z = 0; z <= 1; ++z) {
        pts.push_back(x);
        pts.push_back(y);
        pts.push_back(z);
      }
  pts.insert(pts.end(), {0.5, 0.5, 0.5});  // interior
  auto hull = ComputeConvexHull(pts, 3);
  ASSERT_TRUE(hull.ok());
  // Cube faces triangulate (possibly with joggle) but all 8 corners are on
  // the hull and the interior point is not.
  EXPECT_EQ(hull->hull_vertices.size(), 8u);
  ExpectAllPointsInside(*hull, pts, 1e-5);
}

TEST(QuickhullTest, Simplex4D) {
  // A 4-simplex: exactly 5 facets.
  std::vector<double> pts = {
      0, 0, 0, 0,  1, 0, 0, 0,  0, 1, 0, 0,  0, 0, 1, 0,  0, 0, 0, 1,
  };
  auto hull = ComputeConvexHull(pts, 4);
  ASSERT_TRUE(hull.ok());
  EXPECT_EQ(hull->facets.size(), 5u);
  ExpectFacetGraphConsistent(*hull);
}

class QuickhullRandomTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(QuickhullRandomTest, HullProperty) {
  auto [d, n] = GetParam();
  Rng rng(500 + d * 100 + n);
  std::vector<double> pts(n * d);
  for (double& x : pts) x = rng.NextGaussian();
  auto hull = ComputeConvexHull(pts, d);
  ASSERT_TRUE(hull.ok()) << hull.status().ToString();
  EXPECT_GE(hull->facets.size(), d + 1);
  ExpectAllPointsInside(*hull, pts, 1e-7);
  ExpectFacetGraphConsistent(*hull);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSizes, QuickhullRandomTest,
    ::testing::Values(std::make_tuple(2, 50), std::make_tuple(2, 500),
                      std::make_tuple(3, 100), std::make_tuple(3, 1000),
                      std::make_tuple(4, 200), std::make_tuple(5, 150),
                      std::make_tuple(6, 100)));

TEST(QuickhullTest, HullVerticesMatchBruteForce2D) {
  // In 2D a point is a hull vertex iff it is not a convex combination of
  // others; verify against an O(n^3) brute force on a small set.
  Rng rng(9);
  const size_t n = 40;
  std::vector<double> pts(n * 2);
  for (double& x : pts) x = rng.NextUniform(-1, 1);
  auto hull = ComputeConvexHull(pts, 2);
  ASSERT_TRUE(hull.ok());
  std::set<uint32_t> hv(hull->hull_vertices.begin(),
                        hull->hull_vertices.end());
  // Brute force: i is on the hull iff some halfplane through i has all
  // other points on one side (test all directions defined by point pairs).
  for (uint32_t i = 0; i < n; ++i) {
    bool extreme = false;
    for (uint32_t a = 0; a < n && !extreme; ++a) {
      for (uint32_t b = 0; b < n && !extreme; ++b) {
        if (a == b) continue;
        // Normal of segment a->b.
        double nx = -(pts[b * 2 + 1] - pts[a * 2 + 1]);
        double ny = pts[b * 2] - pts[a * 2];
        double di = nx * pts[i * 2] + ny * pts[i * 2 + 1];
        bool all_below = true;
        for (uint32_t k = 0; k < n; ++k) {
          if (k == i) continue;
          double dk = nx * pts[k * 2] + ny * pts[k * 2 + 1];
          if (dk > di - 1e-12) {
            all_below = false;
            break;
          }
        }
        if (all_below) extreme = true;
      }
    }
    EXPECT_EQ(hv.count(i) > 0, extreme) << "point " << i;
  }
}

TEST(QuickhullTest, DegenerateNeedsJoggle) {
  // A planar grid embedded in 3D: flat input. Without joggle it must fail
  // cleanly; with joggle it must produce a hull.
  std::vector<double> pts;
  for (int x = 0; x < 4; ++x)
    for (int y = 0; y < 4; ++y) {
      pts.push_back(x);
      pts.push_back(y);
      pts.push_back(0.0);
    }
  QuickhullOptions no_joggle;
  no_joggle.joggle = false;
  auto flat = ComputeConvexHull(pts, 3, no_joggle);
  EXPECT_FALSE(flat.ok());
  auto joggled = ComputeConvexHull(pts, 3);
  EXPECT_TRUE(joggled.ok());
}

TEST(QuickhullTest, CosphericalJoggles) {
  // Points exactly on a sphere are degenerate for the lifted Delaunay but
  // fine for a plain hull; all of them end up hull vertices.
  Rng rng(11);
  const size_t n = 100;
  std::vector<double> pts(n * 3);
  for (size_t i = 0; i < n; ++i) {
    double x = rng.NextGaussian(), y = rng.NextGaussian(),
           z = rng.NextGaussian();
    double r = std::sqrt(x * x + y * y + z * z);
    pts[i * 3] = x / r;
    pts[i * 3 + 1] = y / r;
    pts[i * 3 + 2] = z / r;
  }
  auto hull = ComputeConvexHull(pts, 3);
  ASSERT_TRUE(hull.ok());
  EXPECT_EQ(hull->hull_vertices.size(), n);
}

TEST(QuickhullTest, RejectsTooFewPoints) {
  std::vector<double> pts = {0, 0, 1, 1};
  EXPECT_FALSE(ComputeConvexHull(pts, 2).ok());
}

TEST(CircumcenterTest, EquilateralTriangle) {
  std::vector<double> verts = {0, 0, 1, 0, 0.5, std::sqrt(3) / 2};
  auto c = Circumcenter(verts, 2);
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR((*c)[0], 0.5, 1e-12);
  EXPECT_NEAR((*c)[1], std::sqrt(3) / 6, 1e-12);
}

TEST(CircumcenterTest, EquidistanceProperty) {
  Rng rng(13);
  for (size_t d = 2; d <= 5; ++d) {
    std::vector<double> verts((d + 1) * d);
    for (double& x : verts) x = rng.NextGaussian();
    auto c = Circumcenter(verts, d);
    ASSERT_TRUE(c.ok());
    double r0 = 0.0;
    for (size_t j = 0; j < d; ++j) {
      double diff = (*c)[j] - verts[j];
      r0 += diff * diff;
    }
    for (size_t i = 1; i <= d; ++i) {
      double ri = 0.0;
      for (size_t j = 0; j < d; ++j) {
        double diff = (*c)[j] - verts[i * d + j];
        ri += diff * diff;
      }
      EXPECT_NEAR(ri, r0, 1e-6 * (1.0 + r0));
    }
  }
}

TEST(DelaunayTest, EmptyCircumsphereProperty2D) {
  Rng rng(17);
  const size_t n = 60;
  std::vector<double> pts(n * 2);
  for (double& x : pts) x = rng.NextUniform(0, 10);
  auto tri = DelaunayTriangulation::Compute(pts, 2);
  ASSERT_TRUE(tri.ok());
  // Triangle count sanity: 2n - 2 - h for n points with h on the hull.
  size_t h = 0;
  for (char c : tri->on_hull()) h += c;
  EXPECT_EQ(tri->simplices().size(), 2 * n - 2 - h);
  // The defining property: no point strictly inside a circumcircle.
  for (const DelaunaySimplex& s : tri->simplices()) {
    for (size_t i = 0; i < n; ++i) {
      double d2 = 0.0;
      for (size_t j = 0; j < 2; ++j) {
        double diff = pts[i * 2 + j] - s.circumcenter[j];
        d2 += diff * diff;
      }
      EXPECT_GE(d2, s.circumradius2 * (1 - 1e-6))
          << "point " << i << " inside a circumcircle";
    }
  }
}

TEST(DelaunayTest, GraphSymmetricAndConnected) {
  Rng rng(19);
  const size_t n = 80;
  std::vector<double> pts(n * 3);
  for (double& x : pts) x = rng.NextGaussian();
  auto tri = DelaunayTriangulation::Compute(pts, 3);
  ASSERT_TRUE(tri.ok());
  const auto& graph = tri->seed_graph();
  ASSERT_EQ(graph.size(), n);
  for (uint32_t u = 0; u < n; ++u) {
    EXPECT_FALSE(graph[u].empty());
    for (uint32_t v : graph[u]) {
      EXPECT_TRUE(std::binary_search(graph[v].begin(), graph[v].end(), u))
          << u << "<->" << v;
    }
  }
  // Connectivity: BFS reaches everything.
  std::vector<char> seen(n, 0);
  std::vector<uint32_t> stack = {0};
  seen[0] = 1;
  size_t visited = 0;
  while (!stack.empty()) {
    uint32_t u = stack.back();
    stack.pop_back();
    ++visited;
    for (uint32_t v : graph[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        stack.push_back(v);
      }
    }
  }
  EXPECT_EQ(visited, n);
}

TEST(DelaunayTest, IncidentSimplicesCoverAllSimplices) {
  Rng rng(23);
  const size_t n = 50;
  std::vector<double> pts(n * 2);
  for (double& x : pts) x = rng.NextGaussian();
  auto tri = DelaunayTriangulation::Compute(pts, 2);
  ASSERT_TRUE(tri.ok());
  std::vector<size_t> counted(tri->simplices().size(), 0);
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t sid : tri->incident_simplices()[s]) ++counted[sid];
  }
  for (size_t sid = 0; sid < counted.size(); ++sid) {
    EXPECT_EQ(counted[sid], 3u);  // each triangle has 3 vertices
  }
}

TEST(VoronoiDiagramTest, CellAreas2DSumToCoveredRegion) {
  // Seeds on a jittered grid inside [0,1]^2: bounded interior cells must
  // tile most of the unit square; compare the summed interior area to the
  // area of the square minus a boundary margin... instead verify each
  // interior area against Monte-Carlo nearest-seed counts.
  Rng rng(29);
  const size_t gs = 7;
  std::vector<double> pts;
  for (size_t x = 0; x < gs; ++x) {
    for (size_t y = 0; y < gs; ++y) {
      pts.push_back((x + 0.5 + 0.2 * (rng.NextDouble() - 0.5)) / gs);
      pts.push_back((y + 0.5 + 0.2 * (rng.NextDouble() - 0.5)) / gs);
    }
  }
  const size_t n = pts.size() / 2;
  auto tri = DelaunayTriangulation::Compute(pts, 2);
  ASSERT_TRUE(tri.ok());
  VoronoiDiagram diagram(&*tri, &pts);
  // Monte-Carlo reference areas.
  const size_t samples = 400000;
  std::vector<double> mc(n, 0.0);
  for (size_t s = 0; s < samples; ++s) {
    double px = rng.NextDouble(), py = rng.NextDouble();
    size_t best = 0;
    double best_d2 = 1e300;
    for (size_t i = 0; i < n; ++i) {
      double dx = px - pts[i * 2], dy = py - pts[i * 2 + 1];
      double d2 = dx * dx + dy * dy;
      if (d2 < best_d2) {
        best_d2 = d2;
        best = i;
      }
    }
    mc[best] += 1.0 / samples;
  }
  size_t checked = 0;
  for (uint32_t i = 0; i < n; ++i) {
    VoronoiCellStats stats = diagram.CellStats(i);
    if (!stats.bounded) continue;
    // Near-boundary cells legitimately extend outside the unit square (the
    // MC reference only samples inside it); compare only cells whose
    // vertices all lie within the square.
    bool fully_inside = true;
    for (const auto& v : diagram.CellVertices(i)) {
      if (v[0] < 0 || v[0] > 1 || v[1] < 0 || v[1] > 1) {
        fully_inside = false;
        break;
      }
    }
    if (!fully_inside) continue;
    auto area = diagram.CellArea2D(i);
    ASSERT_TRUE(area.ok());
    EXPECT_NEAR(*area, mc[i], 0.15 * std::max(mc[i], 1e-3)) << "cell " << i;
    ++checked;
  }
  EXPECT_GE(checked, (gs - 2) * (gs - 2));  // at least the interior seeds
}

TEST(VoronoiDiagramTest, UnboundedCellRejected) {
  std::vector<double> pts = {0, 0, 1, 0, 0, 1, 1, 1, 0.5, 0.5};
  auto tri = DelaunayTriangulation::Compute(pts, 2);
  ASSERT_TRUE(tri.ok());
  VoronoiDiagram diagram(&*tri, &pts);
  EXPECT_FALSE(diagram.CellStats(0).bounded);  // corner seed
  EXPECT_EQ(diagram.CellArea2D(0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(diagram.CellStats(4).bounded);  // center seed
  EXPECT_TRUE(diagram.CellArea2D(4).ok());
}

TEST(VoronoiDiagramTest, CellVertexCountsGrowWithDimension) {
  // The §3.4 "roundness" trend: average vertices per bounded cell grows
  // steeply with dimension (vs 2^d corners of a box).
  Rng rng(31);
  double prev_avg = 0.0;
  for (size_t d = 2; d <= 4; ++d) {
    const size_t n = 120;
    std::vector<double> pts(n * d);
    for (double& x : pts) x = rng.NextGaussian();
    auto tri = DelaunayTriangulation::Compute(pts, d);
    ASSERT_TRUE(tri.ok());
    VoronoiDiagram diagram(&*tri, &pts);
    double sum = 0.0;
    size_t bounded = 0;
    for (uint32_t i = 0; i < n; ++i) {
      VoronoiCellStats stats = diagram.CellStats(i);
      if (!stats.bounded) continue;
      sum += stats.num_vertices;
      ++bounded;
    }
    ASSERT_GT(bounded, 0u);
    double avg = sum / bounded;
    EXPECT_GT(avg, prev_avg);
    prev_avg = avg;
  }
}

}  // namespace
}  // namespace mds
