#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/access_path.h"
#include "core/point_table.h"
#include "core/query_planner.h"
#include "sdss/catalog.h"
#include "storage/pager.h"

namespace mds {
namespace {

/// Shared 10^5-point seeded catalog plus the four differently-clustered
/// tables, built once for the whole suite.
class AccessPathTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogConfig config;
    config.num_objects = 100000;
    config.seed = 2007;
    catalog_ = new Catalog(GenerateCatalog(config));
    const PointSet& points = catalog_->colors;

    pager_ = new MemPager();
    pool_ = new BufferPool(pager_, 1u << 16);

    kd_index_ = new KdTreeIndex(KdTreeIndex::Build(&points).MoveValue());
    grid_index_ =
        new LayeredGridIndex(LayeredGridIndex::Build(&points).MoveValue());
    VoronoiIndexConfig vc;
    vc.num_seeds = 256;
    voronoi_index_ =
        new VoronoiIndex(VoronoiIndex::Build(&points, vc).MoveValue());

    heap_table_ = new Table(
        MaterializePointTable(pool_, points, {}).MoveValue());
    kd_table_ = new Table(
        MaterializePointTable(pool_, points, kd_index_->clustered_order())
            .MoveValue());
    grid_table_ = new Table(
        MaterializePointTable(pool_, points, grid_index_->clustered_order())
            .MoveValue());
    voronoi_table_ = new Table(
        MaterializePointTable(pool_, points,
                              voronoi_index_->clustered_order())
            .MoveValue());
  }

  static void TearDownTestSuite() {
    delete voronoi_table_;
    delete grid_table_;
    delete kd_table_;
    delete heap_table_;
    delete voronoi_index_;
    delete grid_index_;
    delete kd_index_;
    delete pool_;
    delete pager_;
    delete catalog_;
  }

  static std::vector<int64_t> SortedIds(const StorageQueryResult& result) {
    std::vector<int64_t> ids = result.objids;
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  static std::vector<int64_t> BruteForce(const Polyhedron& poly) {
    std::vector<int64_t> out;
    const PointSet& points = catalog_->colors;
    for (uint64_t i = 0; i < points.size(); ++i) {
      if (poly.Contains(points.point(i))) {
        out.push_back(static_cast<int64_t>(i));
      }
    }
    return out;
  }

  /// A color-space box around the stellar locus holding a few thousand
  /// points — selective but well populated.
  static Box LocusBox(double half_width) {
    double mags[kNumBands];
    StellarLocus(0.5, 0.0, mags);
    std::vector<double> lo(kNumBands), hi(kNumBands);
    for (size_t j = 0; j < kNumBands; ++j) {
      lo[j] = mags[j] - half_width;
      hi[j] = mags[j] + half_width;
    }
    return Box(lo, hi);
  }

  static Catalog* catalog_;
  static MemPager* pager_;
  static BufferPool* pool_;
  static KdTreeIndex* kd_index_;
  static LayeredGridIndex* grid_index_;
  static VoronoiIndex* voronoi_index_;
  static Table* heap_table_;
  static Table* kd_table_;
  static Table* grid_table_;
  static Table* voronoi_table_;
};

Catalog* AccessPathTest::catalog_ = nullptr;
MemPager* AccessPathTest::pager_ = nullptr;
BufferPool* AccessPathTest::pool_ = nullptr;
KdTreeIndex* AccessPathTest::kd_index_ = nullptr;
LayeredGridIndex* AccessPathTest::grid_index_ = nullptr;
VoronoiIndex* AccessPathTest::voronoi_index_ = nullptr;
Table* AccessPathTest::heap_table_ = nullptr;
Table* AccessPathTest::kd_table_ = nullptr;
Table* AccessPathTest::grid_table_ = nullptr;
Table* AccessPathTest::voronoi_table_ = nullptr;

TEST_F(AccessPathTest, AllPathsReturnIdenticalObjidSet) {
  // One region expressed both ways: a box for the grid path, the
  // equivalent polyhedron for the other three.
  const Box box = LocusBox(0.8);
  const Polyhedron poly = Polyhedron::FromBox(box);
  const std::vector<int64_t> truth = BruteForce(poly);
  ASSERT_GT(truth.size(), 1000u);
  ASSERT_LT(truth.size(), catalog_->size() / 2);

  FullScanPath scan(BindPointTable(heap_table_, kNumBands), poly);
  KdTreePath kd(BindPointTable(kd_table_, kNumBands), *kd_index_, poly);
  // n beyond the population: the sample query degenerates to "all points
  // of the box", making it set-comparable with the exact paths.
  GridSamplePath grid(BindPointTable(grid_table_, kNumBands), *grid_index_,
                      box, catalog_->size());
  VoronoiPath voronoi(BindPointTable(voronoi_table_, kNumBands),
                      *voronoi_index_, poly);

  AccessPath* paths[] = {&scan, &kd, &grid, &voronoi};
  for (AccessPath* path : paths) {
    QueryStats stats;
    auto result = ExecuteAccessPath(path, &stats);
    ASSERT_TRUE(result.ok()) << path->name();
    EXPECT_EQ(SortedIds(*result), truth) << path->name();
    // Unified instrumentation invariants: every emitted row was scanned,
    // untested rows can only come from `full` ranges, and the result size
    // matches the emitted counter.
    EXPECT_EQ(stats.rows_emitted, result->objids.size()) << path->name();
    EXPECT_LE(stats.rows_tested, stats.rows_scanned) << path->name();
    EXPECT_GE(stats.rows_emitted, stats.rows_scanned - stats.rows_tested)
        << path->name();
  }
}

TEST_F(AccessPathTest, FullRangesNeverRequirePerRowTests) {
  const Box box = LocusBox(1.2);
  const Polyhedron poly = Polyhedron::FromBox(box);
  // The grid's coarse cells span a quarter of the data range per axis, so
  // give its box most of the space — narrower boxes legitimately contain
  // no whole cell in 5-D.
  const Box grid_bounds = grid_index_->bounding_box();
  std::vector<double> glo(kNumBands), ghi(kNumBands);
  for (size_t j = 0; j < kNumBands; ++j) {
    const double center = 0.5 * (grid_bounds.lo(j) + grid_bounds.hi(j));
    const double half = 0.40 * (grid_bounds.hi(j) - grid_bounds.lo(j));
    glo[j] = center - half;
    ghi[j] = center + half;
  }
  const Box grid_box(glo, ghi);

  // Drive fresh plans step by step and check the ground truth directly:
  // every row inside a `full`-tagged range must satisfy the predicate, so
  // emitting it without a test is sound.
  KdTreePath kd(BindPointTable(kd_table_, kNumBands), *kd_index_, poly);
  GridSamplePath grid(BindPointTable(grid_table_, kNumBands), *grid_index_,
                      grid_box, catalog_->size());
  VoronoiPath voronoi(BindPointTable(voronoi_table_, kNumBands),
                      *voronoi_index_, poly);

  struct Case {
    AccessPath* path;
    const Table* table;
  };
  Case cases[] = {{&kd, kd_table_}, {&grid, grid_table_},
                  {&voronoi, voronoi_table_}};
  for (auto& [path, table] : cases) {
    QueryStats stats;
    PlanStep step;
    uint64_t full_ranges = 0;
    while (path->NextStep(&stats, &step)) {
      for (const RowRange& range : step.ranges) {
        if (range.kind != RangeKind::kFull) continue;
        ++full_ranges;
        float coords[kNumBands];
        auto status = table->ScanRange(
            range.begin, range.end, [&](uint64_t, RowRef ref) {
              ref.GetFloat32Span(1, kNumBands, coords);
              EXPECT_TRUE(path->predicate().Matches(coords)) << path->name();
            });
        ASSERT_TRUE(status.ok());
      }
      // Keep the adaptive paths walking: pretend nothing was found so the
      // grid visits every layer.
    }
    EXPECT_GT(full_ranges, 0u) << path->name()
                               << ": expected some full ranges on a wide box";
  }
}

TEST_F(AccessPathTest, StatsSeparateTestedFromUntestedRows) {
  const Box box = LocusBox(1.2);
  const Polyhedron poly = Polyhedron::FromBox(box);
  KdTreePath kd(BindPointTable(kd_table_, kNumBands), *kd_index_, poly);
  QueryStats stats;
  auto result = ExecuteAccessPath(&kd, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(stats.ranges_full, 0u);
  // Rows from full ranges are never tested and always emitted: the
  // emitted count must equal untested rows plus tested rows that passed.
  const uint64_t untested = stats.rows_scanned - stats.rows_tested;
  EXPECT_GT(untested, 0u);
  EXPECT_GE(stats.rows_emitted, untested);
  EXPECT_EQ(stats.rows_emitted, result->objids.size());
  EXPECT_EQ(stats.cells_full, kd.plan_stats().leaves_full);
}

TEST_F(AccessPathTest, PlannerPicksKdForSelectiveAndScanForWholeSpace) {
  // Selective query: the kd plan touches a small fraction of the pages.
  const Polyhedron selective = Polyhedron::FromBox(LocusBox(0.4));
  {
    QueryPlanner planner;
    planner
        .AddPath(std::make_unique<FullScanPath>(
            BindPointTable(heap_table_, kNumBands), selective))
        .AddPath(std::make_unique<KdTreePath>(
            BindPointTable(kd_table_, kNumBands), *kd_index_, selective));
    auto best = planner.ChooseBest();
    ASSERT_TRUE(best.ok());
    EXPECT_STREQ(planner.path(*best).name(), "kd-tree");

    std::string chosen;
    QueryStats stats;
    auto result = planner.Execute(&stats, &chosen);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(chosen, "kd-tree");
    EXPECT_EQ(SortedIds(*result), BruteForce(selective));
    EXPECT_LT(stats.pages_fetched, kd_table_->num_pages() / 2);
  }

  // Whole-space query: every row qualifies, the index plan covers every
  // page anyway, and the planner must fall back to the plain scan.
  Box everything = Box::Bounding(catalog_->colors);
  everything.Inflate(1.0);
  const Polyhedron whole = Polyhedron::FromBox(everything);
  {
    QueryPlanner planner;
    planner
        .AddPath(std::make_unique<FullScanPath>(
            BindPointTable(heap_table_, kNumBands), whole))
        .AddPath(std::make_unique<KdTreePath>(
            BindPointTable(kd_table_, kNumBands), *kd_index_, whole));
    auto best = planner.ChooseBest();
    ASSERT_TRUE(best.ok());
    EXPECT_STREQ(planner.path(*best).name(), "full-scan");

    std::string chosen;
    auto result = planner.Execute(nullptr, &chosen);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(chosen, "full-scan");
    EXPECT_EQ(result->objids.size(), catalog_->size());
  }
}

TEST_F(AccessPathTest, PlannerRejectsInfeasibleOnlyPaths) {
  Polyhedron wrong_dim(2);
  QueryPlanner planner;
  planner.AddPath(std::make_unique<FullScanPath>(
      BindPointTable(heap_table_, kNumBands), wrong_dim));
  EXPECT_FALSE(planner.ChooseBest().ok());
}

TEST_F(AccessPathTest, TableSamplePathHonorsTopNLimit) {
  Rng rng(13);
  const Box everything = Box::Bounding(catalog_->colors);
  TableSamplePath path(BindPointTable(heap_table_, kNumBands), everything,
                       50.0, 100, &rng);
  QueryStats stats;
  auto result = ExecuteAccessPath(&path, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->objids.size(), 100u);
  EXPECT_EQ(stats.rows_emitted, 100u);
  EXPECT_LT(stats.rows_scanned, catalog_->size());
}

}  // namespace
}  // namespace mds
