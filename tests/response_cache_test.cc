// ResponseCache unit tests: key discrimination (type/epoch/body), LRU byte
// bound, replacement, oversize rejection, the ReplyCacheable policy gate,
// counter accounting, and a concurrent hammering test meant to run under
// TSan (.github/workflows/ci.yml runs this binary in the tsan job).

#include "server/response_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace mds {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::vector<uint8_t> TailBytes(const ResponseCache::CachedReply& hit) {
  if (!hit.tail) return {};
  return std::vector<uint8_t>(hit.tail.data(), hit.tail.data() + hit.tail.size());
}

void Put(ResponseCache* cache, uint16_t type, uint64_t epoch,
         const std::string& body, const std::string& tail,
         uint32_t flags = 0) {
  const std::vector<uint8_t> b = Bytes(body);
  const std::vector<uint8_t> t = Bytes(tail);
  cache->Insert(type, epoch, b.data(), b.size(), flags, t.data(), t.size());
}

bool Get(ResponseCache* cache, uint16_t type, uint64_t epoch,
         const std::string& body, ResponseCache::CachedReply* out) {
  const std::vector<uint8_t> b = Bytes(body);
  return cache->Lookup(type, epoch, b.data(), b.size(), out);
}

TEST(ResponseCacheTest, RoundTripPreservesTailAndFlags) {
  ResponseCache cache(1 << 20, 1);
  Put(&cache, 4, 1, "box-body", "reply-bytes", /*flags=*/0x10);

  ResponseCache::CachedReply hit;
  ASSERT_TRUE(Get(&cache, 4, 1, "box-body", &hit));
  EXPECT_EQ(TailBytes(hit), Bytes("reply-bytes"));
  EXPECT_EQ(hit.flags, 0x10u);
}

TEST(ResponseCacheTest, MissesOnTypeEpochAndBody) {
  ResponseCache cache(1 << 20, 1);
  Put(&cache, 4, 1, "body", "reply");

  ResponseCache::CachedReply hit;
  EXPECT_FALSE(Get(&cache, 5, 1, "body", &hit));   // different type
  EXPECT_FALSE(Get(&cache, 4, 2, "body", &hit));   // different epoch
  EXPECT_FALSE(Get(&cache, 4, 1, "body2", &hit));  // different body
  EXPECT_TRUE(Get(&cache, 4, 1, "body", &hit));

  const ResponseCache::StatsSnapshot s = cache.Stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.insertions, 1u);
}

TEST(ResponseCacheTest, EmptyBodyAndEmptyTailAreValid) {
  ResponseCache cache(1 << 20, 1);
  cache.Insert(3, 1, nullptr, 0, 0, nullptr, 0);
  ResponseCache::CachedReply hit;
  ASSERT_TRUE(cache.Lookup(3, 1, nullptr, 0, &hit));
  EXPECT_EQ(hit.tail.size(), 0u);
}

TEST(ResponseCacheTest, InsertReplacesExistingEntry) {
  ResponseCache cache(1 << 20, 1);
  Put(&cache, 4, 1, "body", "old-reply");
  Put(&cache, 4, 1, "body", "new-reply");

  ResponseCache::CachedReply hit;
  ASSERT_TRUE(Get(&cache, 4, 1, "body", &hit));
  EXPECT_EQ(TailBytes(hit), Bytes("new-reply"));
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(ResponseCacheTest, ByteBoundEvictsLeastRecentlyUsed) {
  // Single shard so the LRU order is fully deterministic. Each entry
  // charges key (2 + 8 + 4 bytes) + tail (100) + overhead, so a 1 KiB
  // budget holds a handful of entries at most.
  ResponseCache cache(1024, 1);
  const std::string tail(100, 'x');
  for (int i = 0; i < 32; ++i) {
    Put(&cache, 4, 1, "body" + std::to_string(i), tail);
  }

  const ResponseCache::StatsSnapshot s = cache.Stats();
  EXPECT_LE(s.bytes, 1024u);
  EXPECT_GT(s.evictions, 0u);
  EXPECT_GT(s.entries, 0u);

  // The newest entry survives; the oldest was evicted.
  ResponseCache::CachedReply hit;
  EXPECT_TRUE(Get(&cache, 4, 1, "body31", &hit));
  EXPECT_FALSE(Get(&cache, 4, 1, "body0", &hit));
}

TEST(ResponseCacheTest, LookupRefreshesRecency) {
  ResponseCache cache(1024, 1);
  const std::string tail(100, 'x');
  Put(&cache, 4, 1, "keep", tail);
  Put(&cache, 4, 1, "drop", tail);

  // Touch "keep" so "drop" is the LRU victim when the budget overflows.
  ResponseCache::CachedReply hit;
  ASSERT_TRUE(Get(&cache, 4, 1, "keep", &hit));
  for (int i = 0; i < 8; ++i) {
    Put(&cache, 4, 1, "filler" + std::to_string(i), tail);
  }
  EXPECT_FALSE(Get(&cache, 4, 1, "drop", &hit));
}

TEST(ResponseCacheTest, OversizedEntryRejected) {
  ResponseCache cache(256, 1);
  const std::string huge(4096, 'x');
  Put(&cache, 4, 1, "body", huge);

  ResponseCache::CachedReply hit;
  EXPECT_FALSE(Get(&cache, 4, 1, "body", &hit));
  const ResponseCache::StatsSnapshot s = cache.Stats();
  EXPECT_EQ(s.insertions, 0u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
}

TEST(ResponseCacheTest, ShardCountClampedToAtLeastOne) {
  ResponseCache cache(1 << 20, 0);
  Put(&cache, 4, 1, "body", "reply");
  ResponseCache::CachedReply hit;
  EXPECT_TRUE(Get(&cache, 4, 1, "body", &hit));
}

TEST(ResponseCacheTest, StatsBytesAccountsInsertAndEvict) {
  ResponseCache cache(1 << 20, 4);
  EXPECT_EQ(cache.Stats().bytes, 0u);
  Put(&cache, 4, 1, "a", "reply-a");
  Put(&cache, 4, 1, "b", "reply-b");
  const ResponseCache::StatsSnapshot s = cache.Stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_GT(s.bytes, 0u);
  EXPECT_EQ(s.insertions, 2u);
  EXPECT_EQ(s.evictions, 0u);
}

// Satellite regression for the byte-accounting-drift class of bug: after
// an arbitrary mix of inserts, same-key replacements (with different tail
// sizes, so old and new charges differ) and bound-driven evictions, the
// incremental `bytes` counter must equal the sum of live entry charges.
// A replace path that charged the new entry without fully discharging the
// old one drifts here immediately.
TEST(ResponseCacheTest, ByteAccountingExactAfterRandomizedReplaceEvict) {
  ResponseCache cache(32 * 1024, 2);
  uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int i = 0; i < 20000; ++i) {
    const std::string body = "key" + std::to_string(next() % 48);
    const std::vector<uint8_t> b(body.begin(), body.end());
    // Tail sizes straddle several slab classes (and zero), so replacing
    // an entry usually changes its charge.
    const size_t tail_len = next() % 1500;
    const std::string tail(tail_len, 'r');
    if (next() % 4 == 0) {
      ResponseCache::CachedReply hit;
      cache.Lookup(4, 1, b.data(), b.size(), &hit);
    } else {
      cache.Insert(4, 1, b.data(), b.size(), 0,
                   reinterpret_cast<const uint8_t*>(tail.data()), tail_len);
    }
    if (i % 997 == 0) {
      EXPECT_EQ(cache.Stats().bytes, cache.DebugRecomputeBytes());
    }
  }
  const ResponseCache::StatsSnapshot s = cache.Stats();
  EXPECT_EQ(s.bytes, cache.DebugRecomputeBytes());
  EXPECT_LE(s.bytes, 32u * 1024u);
  EXPECT_GT(s.evictions, 0u);
}

TEST(ReplyCacheableTest, PolicyGate) {
  EXPECT_TRUE(ReplyCacheable(Status::OK(), false, 0));
  // Errors, degraded replies and partial scans must never be memoized.
  EXPECT_FALSE(ReplyCacheable(Status::Unavailable("x"), false, 0));
  EXPECT_FALSE(ReplyCacheable(Status::OK(), true, 0));
  EXPECT_FALSE(ReplyCacheable(Status::OK(), false, 3));
}

// Concurrent hammering over a shared key space: writers insert, readers
// look up, everyone touches overlapping keys. Run under TSan this proves
// the shard locking; the byte bound must also hold at every snapshot.
TEST(ResponseCacheTest, ConcurrentHammeringHoldsByteBound) {
  constexpr size_t kMaxBytes = 64 * 1024;
  ResponseCache cache(kMaxBytes, 4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr int kKeySpace = 64;

  std::atomic<uint64_t> observed_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &cache, &observed_hits, kMaxBytes]() {
      const std::string tail(200 + t, 'v');
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string body =
            "key" + std::to_string((t * 7919 + i) % kKeySpace);
        const std::vector<uint8_t> b(body.begin(), body.end());
        if (i % 3 == 0) {
          const std::vector<uint8_t> tl(tail.begin(), tail.end());
          cache.Insert(4, 1, b.data(), b.size(), 0, tl.data(), tl.size());
        } else {
          ResponseCache::CachedReply hit;
          if (cache.Lookup(4, 1, b.data(), b.size(), &hit)) {
            observed_hits.fetch_add(1, std::memory_order_relaxed);
            // A hit must carry a tail some writer actually inserted.
            ASSERT_GE(hit.tail.size(), 200u);
            ASSERT_LT(hit.tail.size(), 200u + kThreads);
          }
        }
        if (i % 512 == 0) {
          ASSERT_LE(cache.Stats().bytes, kMaxBytes);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  const ResponseCache::StatsSnapshot s = cache.Stats();
  EXPECT_LE(s.bytes, kMaxBytes);
  EXPECT_EQ(s.hits, observed_hits.load());
  EXPECT_GT(s.hits + s.misses, 0u);
}

}  // namespace
}  // namespace mds
