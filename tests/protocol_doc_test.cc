// Keeps docs/PROTOCOL.md honest: the constants table between the
// `protocol-constants:begin/end` markers is parsed and every row is
// compared against the compiled values in src/server/protocol.h. A new
// wire constant must be added to the table (and a doc edit that drifts
// from the header fails here, not in a reader's debugger).

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "server/protocol.h"

namespace mds {
namespace {

/// Parses "| `name` | `value` |" table rows between the two marker
/// comments; values are decimal or 0x-hex.
std::map<std::string, uint64_t> ParseConstantsTable(const std::string& path,
                                                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return {};
  }
  std::map<std::string, uint64_t> out;
  std::string line;
  bool inside = false;
  while (std::getline(in, line)) {
    if (line.find("protocol-constants:begin") != std::string::npos) {
      inside = true;
      continue;
    }
    if (line.find("protocol-constants:end") != std::string::npos) break;
    if (!inside || line.empty() || line[0] != '|') continue;

    // Split the row into cells on '|'.
    std::vector<std::string> cells;
    std::stringstream row(line);
    std::string cell;
    while (std::getline(row, cell, '|')) cells.push_back(cell);
    if (cells.size() < 3) continue;

    auto strip = [](std::string s) {
      const char* junk = " \t`";
      const size_t b = s.find_first_not_of(junk);
      if (b == std::string::npos) return std::string();
      const size_t e = s.find_last_not_of(junk);
      return s.substr(b, e - b + 1);
    };
    const std::string name = strip(cells[1]);
    const std::string value = strip(cells[2]);
    if (name.empty() || name == "Constant") continue;  // header/rule rows
    if (value.find_first_not_of("-") == std::string::npos) continue;

    try {
      out[name] = std::stoull(value, nullptr, 0);  // base 0: 0x... or decimal
    } catch (...) {
      *error = "row for '" + name + "' has unparseable value '" + value + "'";
      return {};
    }
  }
  if (!inside) *error = "no protocol-constants:begin marker found";
  return out;
}

TEST(ProtocolDocTest, ConstantsTableMatchesHeader) {
  std::string error;
  const auto doc = ParseConstantsTable(
      std::string(MDS_REPO_ROOT) + "/docs/PROTOCOL.md", &error);
  ASSERT_TRUE(error.empty()) << error;

  const std::map<std::string, uint64_t> expected = {
      {"kFrameMagic", protocol::kFrameMagic},
      {"kProtocolVersion", protocol::kProtocolVersion},
      {"kFramePrefixBytes", protocol::kFramePrefixBytes},
      {"kMessageHeaderBytes", protocol::kMessageHeaderBytes},
      {"kMaxPayloadBytes", protocol::kMaxPayloadBytes},
      {"kMaxDim", protocol::kMaxDim},
      {"kNumRequestTypes", protocol::kNumRequestTypes},
      {"kMaxShardStats", protocol::kMaxShardStats},
      {"kHealth",
       static_cast<uint64_t>(protocol::MessageType::kHealth)},
      {"kStats", static_cast<uint64_t>(protocol::MessageType::kStats)},
      {"kPointCount",
       static_cast<uint64_t>(protocol::MessageType::kPointCount)},
      {"kBoxQuery",
       static_cast<uint64_t>(protocol::MessageType::kBoxQuery)},
      {"kKnn", static_cast<uint64_t>(protocol::MessageType::kKnn)},
      {"kTableSample",
       static_cast<uint64_t>(protocol::MessageType::kTableSample)},
      {"kReload", static_cast<uint64_t>(protocol::MessageType::kReload)},
      {"kFlagReply", protocol::kFlagReply},
      {"kFlagSkipCorrupt", protocol::kFlagSkipCorrupt},
      {"kFlagHintFullScan", protocol::kFlagHintFullScan},
      {"kFlagHintIndex", protocol::kFlagHintIndex},
      {"kFlagDegraded", protocol::kFlagDegraded},
      {"kFlagDraining", protocol::kFlagDraining},
      {"kFlagAllowPartial", protocol::kFlagAllowPartial},
      {"kFlagPartial", protocol::kFlagPartial},
  };

  // Every documented row must match the header...
  for (const auto& [name, value] : doc) {
    auto it = expected.find(name);
    if (it == expected.end()) {
      ADD_FAILURE() << "docs/PROTOCOL.md documents unknown constant '" << name
                    << "' — remove it or teach protocol_doc_test about it";
      continue;
    }
    EXPECT_EQ(value, it->second)
        << "docs/PROTOCOL.md says " << name << " = " << value
        << " but protocol.h says " << it->second;
  }
  // ...and every header constant must be documented.
  for (const auto& [name, value] : expected) {
    EXPECT_TRUE(doc.count(name))
        << "protocol.h constant '" << name
        << "' is missing from the docs/PROTOCOL.md constants table";
  }
}

/// The doc asserts sizes the codec never states explicitly; pin them so
/// a struct change breaks this test, not just readers of the doc.
TEST(ProtocolDocTest, DocumentedStructSizesHold) {
  EXPECT_EQ(sizeof(protocol::WireNeighbor), 16u);  // "16 B each"
  // "Twenty-two u64 scalar counters": count them via the encoded size of
  // an empty snapshot = 22*8 scalars + 6 per-type records of 6*8+8 bytes
  // + u32 empty shard list + u64 partial_replies tail + 4 u64 reply-path
  // memory counters (slab_allocations/recycles/bytes_in_use +
  // reply_tail_copies).
  protocol::ServerStatsSnapshot snapshot;
  std::vector<uint8_t> buf;
  WireWriter w(&buf);
  protocol::EncodeServerStats(snapshot, &w);
  EXPECT_EQ(buf.size(),
            22u * 8 + protocol::kNumRequestTypes * (6 * 8 + 8) + 4 + 8 +
                4 * 8);
  // One shard-stats entry is 2 u32 + 7 u64 + 2 u32 + 2 u64 = 88 bytes.
  snapshot.shards.resize(1);
  buf.clear();
  WireWriter w2(&buf);
  protocol::EncodeServerStats(snapshot, &w2);
  EXPECT_EQ(buf.size(),
            22u * 8 + protocol::kNumRequestTypes * (6 * 8 + 8) + 4 + 88 + 8 +
                4 * 8);
  // The shard-coverage tail on QueryReply/KnnReply is 16 bytes, and is
  // absent entirely when shards_total == 0 (a plain mdsd reply).
  protocol::QueryReply qr;
  std::vector<uint8_t> plain, tailed;
  WireWriter wp(&plain);
  protocol::EncodeQueryReply(qr, &wp);
  qr.shards_total = 2;
  qr.shards_answered = 1;
  qr.shards_mask = 0x1;
  WireWriter wt(&tailed);
  protocol::EncodeQueryReply(qr, &wt);
  EXPECT_EQ(tailed.size(), plain.size() + 16);
}

}  // namespace
}  // namespace mds
