#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/page_checksum.h"
#include "storage/page_stream.h"
#include "storage/pager.h"
#include "storage/vector_codec.h"

namespace mds {
namespace {

/// Seeded corruption fuzzing over the deserialization surfaces: every
/// mutated input must produce a clean Status (or a provably consistent
/// success) — never a crash, hang, or over-read. The suite is meant to run
/// under ASan/UBSan in CI, where any out-of-bounds access aborts loudly.

std::vector<float> RandomVector(Rng* rng, size_t n) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(rng->NextDouble() * 2000.0 - 1000.0);
  }
  return v;
}

void FlipRandomBit(Rng* rng, std::vector<uint8_t>* buf) {
  if (buf->empty()) return;
  const uint64_t bit = rng->NextBounded(buf->size() * 8);
  (*buf)[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
}

// --- Codec fuzzing ----------------------------------------------------------

TEST(CodecFuzzTest, RawTruncationsAlwaysFail) {
  Rng rng(101);
  for (int round = 0; round < 50; ++round) {
    const size_t n = rng.NextBounded(64);
    std::vector<float> v = RandomVector(&rng, n);
    std::vector<uint8_t> buf;
    RawVectorCodec::Encode(v.data(), n, &buf);
    // Raw's count prefix implies the exact payload size, so every proper
    // prefix is detectably short.
    for (size_t len = 0; len < buf.size(); ++len) {
      auto decoded = RawVectorCodec::Decode(buf.data(), len);
      ASSERT_FALSE(decoded.ok()) << "n=" << n << " len=" << len;
      ASSERT_EQ(decoded.status().code(), StatusCode::kCorruption);
      float out[64];
      auto into = RawVectorCodec::DecodeInto(buf.data(), len, out, 64);
      ASSERT_FALSE(into.ok()) << "n=" << n << " len=" << len;
    }
  }
}

TEST(CodecFuzzTest, TlvTruncationsAlwaysFail) {
  Rng rng(102);
  for (int round = 0; round < 50; ++round) {
    const size_t n = rng.NextBounded(64);
    std::vector<float> v = RandomVector(&rng, n);
    std::vector<uint8_t> buf;
    TlvVectorCodec::Encode(v.data(), n, &buf);
    for (size_t len = 0; len < buf.size(); ++len) {
      auto decoded = TlvVectorCodec::Decode(buf.data(), len);
      ASSERT_FALSE(decoded.ok()) << "n=" << n << " len=" << len;
      ASSERT_EQ(decoded.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST(CodecFuzzTest, RandomBitFlipsNeverCrash) {
  Rng rng(103);
  for (int round = 0; round < 4000; ++round) {
    const size_t n = rng.NextBounded(48);
    std::vector<float> v = RandomVector(&rng, n);
    std::vector<uint8_t> raw, tlv;
    RawVectorCodec::Encode(v.data(), n, &raw);
    TlvVectorCodec::Encode(v.data(), n, &tlv);
    const int flips = 1 + static_cast<int>(rng.NextBounded(8));
    for (int f = 0; f < flips; ++f) {
      FlipRandomBit(&rng, &raw);
      FlipRandomBit(&rng, &tlv);
    }

    // The codecs carry no payload checksum, so a flip confined to float
    // bytes may legitimately decode. What must hold: no crash, no
    // over-read (ASan's job), and any success is internally consistent.
    auto raw_decoded = RawVectorCodec::Decode(raw.data(), raw.size());
    if (raw_decoded.ok()) {
      uint32_t count;
      std::memcpy(&count, raw.data(), 4);
      ASSERT_EQ(raw_decoded->size(), count);
      ASSERT_LE(4 + 4 * static_cast<size_t>(count), raw.size());
    } else {
      ASSERT_EQ(raw_decoded.status().code(), StatusCode::kCorruption);
    }
    float out[48];
    auto into = RawVectorCodec::DecodeInto(raw.data(), raw.size(), out, 48);
    if (!into.ok()) {
      ASSERT_TRUE(into.status().code() == StatusCode::kCorruption ||
                  into.status().code() == StatusCode::kInvalidArgument)
          << into.status().ToString();
    }

    auto tlv_decoded = TlvVectorCodec::Decode(tlv.data(), tlv.size());
    if (!tlv_decoded.ok()) {
      ASSERT_EQ(tlv_decoded.status().code(), StatusCode::kCorruption);
    } else {
      ASSERT_EQ(tlv_decoded->size(), n);  // structure survived the flips
    }
  }
}

// --- Page-stream fuzzing -----------------------------------------------------

/// One fuzz round: build a multi-page stream, mutate one on-disk page, then
/// read it back through a verifying pool. `restamp` mimics corruption the
/// checksum cannot see (a valid CRC over bad content), which is exactly
/// when the reader's own structural validation must hold the line.
void FuzzStreamRound(uint64_t seed, bool restamp) {
  Rng rng(seed);
  MemPager pager;
  BufferPool pool(&pager, 64);

  const size_t n = 2000 + rng.NextBounded(4000);
  std::vector<uint64_t> payload(n);
  for (size_t i = 0; i < n; ++i) payload[i] = rng.NextU64();

  PageStreamWriter writer(&pool);
  ASSERT_TRUE(writer.WriteValue<uint32_t>(0xfeedbeefu).ok());
  ASSERT_TRUE(writer.WriteVector(payload).ok());
  auto head = writer.Finish();
  ASSERT_TRUE(head.ok());
  ASSERT_TRUE(pool.FlushAll().ok());

  // The chain spans several pages; pick one and corrupt it behind the
  // pool's back.
  const uint64_t num_pages = pager.NumPages();
  ASSERT_GT(num_pages, 2u);
  const PageId victim = rng.NextBounded(num_pages);
  Page page;
  ASSERT_TRUE(pager.ReadPage(victim, &page).ok());
  switch (rng.NextBounded(3)) {
    case 0: {  // random bit flips anywhere in the page
      const int flips = 1 + static_cast<int>(rng.NextBounded(16));
      for (int f = 0; f < flips; ++f) {
        const uint64_t bit = rng.NextBounded(kPageSize * 8);
        page.bytes()[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      }
      break;
    }
    case 1:  // corrupt the next-page link (offset 0, u64)
      page.WriteAt<uint64_t>(0, rng.NextU64());
      break;
    default:  // corrupt the used-bytes field (offset 8, u32)
      page.WriteAt<uint32_t>(8, static_cast<uint32_t>(rng.NextU64()));
      break;
  }
  if (restamp) StampPageChecksum(&page);
  ASSERT_TRUE(pager.WritePage(victim, page).ok());

  // Fresh pool: the mutated page must be re-read from "disk".
  BufferPool reader_pool(&pager, 64);
  PageStreamReader reader(&reader_pool, *head);
  auto magic = reader.ReadValue<uint32_t>();
  if (magic.ok()) {
    // Bound the vector read so a corrupted length prefix costs bounded
    // work instead of a giant allocation.
    auto back = reader.ReadVector<uint64_t>(/*max_elements=*/1u << 20);
    if (back.ok() && !restamp) {
      // Without a restamp the checksum catches everything, so a clean
      // read-through means the victim page was off-chain (the pager also
      // holds non-stream pages is impossible here, but the corrupted bits
      // may have landed after `used`): the data must be intact.
      ASSERT_EQ(back->size(), payload.size());
      ASSERT_EQ(*back, payload);
    }
    // Restamped success may return altered data — corruption past the
    // checksum's reach is detectable only by structure, and payload bytes
    // have none. No crash and bounded work is the contract.
  } else {
    ASSERT_TRUE(magic.status().code() == StatusCode::kCorruption ||
                magic.status().code() == StatusCode::kOutOfRange)
        << magic.status().ToString();
  }
}

TEST(PageStreamFuzzTest, RawMutationsCaughtByChecksum) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    FuzzStreamRound(seed * 65537, /*restamp=*/false);
  }
}

TEST(PageStreamFuzzTest, RestampedMutationsNeverCrashReader) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    FuzzStreamRound(seed * 92821, /*restamp=*/true);
  }
}

}  // namespace
}  // namespace mds
