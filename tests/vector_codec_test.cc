#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/vector_codec.h"

namespace mds {
namespace {

TEST(RawVectorCodecTest, RoundTrip) {
  std::vector<float> v = {1.5f, -2.25f, 0.0f, 3e10f, -1e-10f};
  std::vector<uint8_t> buf;
  RawVectorCodec::Encode(v.data(), v.size(), &buf);
  EXPECT_EQ(buf.size(), RawVectorCodec::EncodedSize(v.size()));
  auto decoded = RawVectorCodec::Decode(buf.data(), buf.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, v);
}

TEST(RawVectorCodecTest, EmptyVector) {
  std::vector<uint8_t> buf;
  RawVectorCodec::Encode(nullptr, 0, &buf);
  auto decoded = RawVectorCodec::Decode(buf.data(), buf.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(RawVectorCodecTest, TruncatedFails) {
  std::vector<float> v = {1, 2, 3};
  std::vector<uint8_t> buf;
  RawVectorCodec::Encode(v.data(), v.size(), &buf);
  EXPECT_EQ(RawVectorCodec::Decode(buf.data(), 2).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(RawVectorCodec::Decode(buf.data(), buf.size() - 1).status().code(),
            StatusCode::kCorruption);
}

TEST(RawVectorCodecTest, DecodeInto) {
  std::vector<float> v = {9.0f, 8.0f};
  std::vector<uint8_t> buf;
  RawVectorCodec::Encode(v.data(), v.size(), &buf);
  float out[4];
  auto n = RawVectorCodec::DecodeInto(buf.data(), buf.size(), out, 4);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  EXPECT_FLOAT_EQ(out[0], 9.0f);
  // Capacity too small.
  auto small = RawVectorCodec::DecodeInto(buf.data(), buf.size(), out, 1);
  EXPECT_EQ(small.status().code(), StatusCode::kInvalidArgument);
}

TEST(TlvVectorCodecTest, RoundTrip) {
  Rng rng(5);
  std::vector<float> v(64);
  for (float& x : v) x = static_cast<float>(rng.NextGaussian());
  std::vector<uint8_t> buf;
  TlvVectorCodec::Encode(v.data(), v.size(), &buf);
  EXPECT_EQ(buf.size(), TlvVectorCodec::EncodedSize(v.size()));
  auto decoded = TlvVectorCodec::Decode(buf.data(), buf.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, v);
}

TEST(TlvVectorCodecTest, CorruptTagFails) {
  std::vector<float> v = {1, 2};
  std::vector<uint8_t> buf;
  TlvVectorCodec::Encode(v.data(), v.size(), &buf);
  buf[buf.size() - 6] = 0xff;  // clobber the last element's tag
  EXPECT_EQ(TlvVectorCodec::Decode(buf.data(), buf.size()).status().code(),
            StatusCode::kCorruption);
}

TEST(TlvVectorCodecTest, CorruptNameFails) {
  std::vector<float> v = {1};
  std::vector<uint8_t> buf;
  TlvVectorCodec::Encode(v.data(), v.size(), &buf);
  buf[3] ^= 0x7;  // flip a type-name byte
  EXPECT_EQ(TlvVectorCodec::Decode(buf.data(), buf.size()).status().code(),
            StatusCode::kCorruption);
}

TEST(TlvVectorCodecTest, TruncatedFails) {
  std::vector<float> v = {1, 2, 3};
  std::vector<uint8_t> buf;
  TlvVectorCodec::Encode(v.data(), v.size(), &buf);
  for (size_t cut : {1u, 5u, 20u}) {
    if (cut < buf.size()) {
      EXPECT_FALSE(TlvVectorCodec::Decode(buf.data(), cut).ok());
    }
  }
}

TEST(VectorCodecTest, TlvIsLargerThanRaw) {
  // The generic format pays per-element overhead — the root cause of the
  // §3.5 CPU cost it models.
  EXPECT_GT(TlvVectorCodec::EncodedSize(5), RawVectorCodec::EncodedSize(5));
}

}  // namespace
}  // namespace mds
