// Concurrency suite: the thread-safe BufferPool, the ParallelRangeScanner
// merge contract, QueryEngine::ExecuteBatch and the parallel kd-tree build.
// Every test asserts bit-equality against the serial execution — parallel
// query execution must be an invisible optimization. Runs under TSan in CI
// (MDS_SANITIZE=thread).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "core/access_path.h"
#include "core/point_table.h"
#include "core/query_engine.h"
#include "sdss/catalog.h"
#include "storage/pager.h"

namespace mds {
namespace {

/// Shared seeded catalog plus a kd-clustered stored table over a pool
/// large enough to hold it, built once for the whole suite.
class ConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogConfig config;
    config.num_objects = 60000;
    config.seed = 2007;
    catalog_ = new Catalog(GenerateCatalog(config));
    const PointSet& points = catalog_->colors;

    KdTreeConfig tree_config;
    tree_config.build_threads = 1;  // serial reference build
    kd_index_ = new KdTreeIndex(
        KdTreeIndex::Build(&points, tree_config).MoveValue());

    pager_ = new MemPager();
    pool_ = new BufferPool(pager_, 1u << 16);
    kd_table_ = new Table(
        MaterializePointTable(pool_, points, kd_index_->clustered_order())
            .MoveValue());
  }

  static void TearDownTestSuite() {
    delete kd_table_;
    delete pool_;
    delete pager_;
    delete kd_index_;
    delete catalog_;
  }

  static PointTableBinding Binding() {
    return BindPointTable(kd_table_, kNumBands);
  }

  /// A family of ball queries of varying radius (and thus selectivity)
  /// centered at points along the stellar locus.
  static std::vector<Polyhedron> QueryMix(size_t count) {
    std::vector<Polyhedron> queries;
    queries.reserve(count);
    for (size_t q = 0; q < count; ++q) {
      double mags[kNumBands];
      StellarLocus(0.1 + 0.8 * static_cast<double>(q) / count, 0.0, mags);
      std::vector<double> center(mags, mags + kNumBands);
      // Radii cycle tiny (point-like lookup) to wide (range scan).
      const double radius = 0.05 * (1 << (q % 6));
      queries.push_back(Polyhedron::BallApproximation(center, radius, 12));
    }
    return queries;
  }

  static Catalog* catalog_;
  static MemPager* pager_;
  static BufferPool* pool_;
  static KdTreeIndex* kd_index_;
  static Table* kd_table_;
};

Catalog* ConcurrencyTest::catalog_ = nullptr;
MemPager* ConcurrencyTest::pager_ = nullptr;
BufferPool* ConcurrencyTest::pool_ = nullptr;
KdTreeIndex* ConcurrencyTest::kd_index_ = nullptr;
Table* ConcurrencyTest::kd_table_ = nullptr;

TEST_F(ConcurrencyTest, AutoShardingKeepsSmallPoolsSingleSharded) {
  MemPager pager;
  // Below 2 * kMinShardCapacity the pool must degrade to one shard —
  // that is what preserves the exact global-LRU semantics storage_test
  // asserts at capacities 1..4.
  EXPECT_EQ(BufferPool(&pager, 1).num_shards(), 1u);
  EXPECT_EQ(BufferPool(&pager, 127).num_shards(), 1u);
  // From there every doubling of per-shard headroom splits again, capped
  // at kMaxAutoShards.
  EXPECT_EQ(BufferPool(&pager, 128).num_shards(), 2u);
  EXPECT_EQ(BufferPool(&pager, 512).num_shards(), 8u);
  EXPECT_EQ(BufferPool(&pager, 1u << 20).num_shards(),
            BufferPool::kMaxAutoShards);
  // Explicit shard counts are honored (clamped to capacity).
  EXPECT_EQ(BufferPool(&pager, 64, 4).num_shards(), 4u);
  EXPECT_EQ(BufferPool(&pager, 2, 8).num_shards(), 2u);
}

TEST_F(ConcurrencyTest, ShardedPoolSurvivesConcurrentFetchHammer) {
  MemPager pager;
  const uint64_t kPages = 512;
  {
    BufferPool setup_pool(&pager, 4);
    for (uint64_t i = 0; i < kPages; ++i) {
      auto guard = setup_pool.Allocate();
      ASSERT_TRUE(guard.ok());
    }
    ASSERT_TRUE(setup_pool.FlushAll().ok());
  }
  BufferPool pool(&pager, 256);  // smaller than the page set: evictions
  ASSERT_GT(pool.num_shards(), 1u);

  const unsigned kThreads = 8;
  const uint64_t kFetchesPerThread = 4000;
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t state = 0x9e3779b97f4a7c15ull * (t + 1);
      for (uint64_t i = 0; i < kFetchesPerThread; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const PageId id = (state >> 33) % kPages;
        bool physical = false;
        auto guard = pool.Fetch(id, &physical);
        if (!guard.ok() || guard->id() != id) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_LE(pool.resident(), pool.capacity());
  // Every fetch is accounted exactly once in the aggregated counters.
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.logical_reads, uint64_t{kThreads} * kFetchesPerThread);
  EXPECT_GT(stats.physical_reads, 0u);  // cold pool smaller than the data
  EXPECT_LE(stats.physical_reads, stats.logical_reads);
}

TEST_F(ConcurrencyTest, ParallelScannerMatchesSerialScanExactly) {
  const auto queries = QueryMix(6);
  for (const Polyhedron& poly : queries) {
    KdTreePath serial_path(Binding(), *kd_index_, poly);
    QueryStats serial_stats;
    auto serial = ExecuteAccessPath(&serial_path, &serial_stats);
    ASSERT_TRUE(serial.ok());

    for (unsigned threads : {2u, 4u}) {
      KdTreePath parallel_path(Binding(), *kd_index_, poly);
      QueryStats parallel_stats;
      auto parallel =
          ExecuteAccessPathParallel(&parallel_path, threads, &parallel_stats);
      ASSERT_TRUE(parallel.ok());
      // Same emitted sequence, not just the same set: page-aligned
      // partitions are concatenated in plan order.
      EXPECT_EQ(parallel->objids, serial->objids) << threads << " threads";
      // limit == 0: every row and page counter must merge to the serial
      // values exactly — the EXPERIMENTS.md page-table invariant.
      EXPECT_EQ(parallel_stats.rows_scanned, serial_stats.rows_scanned);
      EXPECT_EQ(parallel_stats.rows_tested, serial_stats.rows_tested);
      EXPECT_EQ(parallel_stats.rows_emitted, serial_stats.rows_emitted);
      EXPECT_EQ(parallel_stats.pages_fetched, serial_stats.pages_fetched);
      EXPECT_EQ(parallel_stats.ranges_full, serial_stats.ranges_full);
      EXPECT_EQ(parallel_stats.ranges_partial, serial_stats.ranges_partial);
    }
  }
}

TEST_F(ConcurrencyTest, ParallelFullScanHonorsRowLimit) {
  Box everything = Box::Bounding(catalog_->colors);
  everything.Inflate(1.0);
  const Polyhedron whole = Polyhedron::FromBox(everything);

  FullScanPath serial_path(Binding(), whole);
  auto serial = ExecuteAccessPath(&serial_path);
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(serial->objids.size(), catalog_->size());

  FullScanPath parallel_path(Binding(), whole);
  auto parallel = ExecuteAccessPathParallel(&parallel_path, 4);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->objids, serial->objids);
}

TEST_F(ConcurrencyTest, ExecuteBatchMatchesSerialWithExactCounterTotals) {
  const auto queries = QueryMix(24);

  // Serial reference: one query at a time, per-query stats kept.
  std::vector<std::vector<int64_t>> expected;
  std::vector<QueryStats> serial_stats(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    KdTreePath path(Binding(), *kd_index_, queries[q]);
    auto result = ExecuteAccessPath(&path, &serial_stats[q]);
    ASSERT_TRUE(result.ok());
    expected.push_back(std::move(result->objids));
  }

  // Concurrent run of the same batch over the shared pool.
  std::vector<std::unique_ptr<AccessPath>> paths;
  for (const Polyhedron& poly : queries) {
    paths.push_back(
        std::make_unique<KdTreePath>(Binding(), *kd_index_, poly));
  }
  const CounterSnapshot before = pool_->Snapshot();
  QueryEngine::BatchOptions options;
  options.num_threads = 4;
  std::vector<QueryStats> batch_stats;
  auto results =
      QueryEngine::ExecuteBatch(std::move(paths), options, &batch_stats);
  const CounterSnapshot::Delta delta = pool_->Delta(before);

  ASSERT_EQ(results.size(), queries.size());
  ASSERT_EQ(batch_stats.size(), queries.size());
  uint64_t sum_fetched = 0;
  uint64_t sum_read = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_TRUE(results[q].ok()) << "query " << q;
    // Identical result sequence per query slot.
    EXPECT_EQ(results[q]->objids, expected[q]) << "query " << q;
    // Logical fetches are a property of the plan, not of the cache state,
    // so they match the serial run per query even under interleaving.
    EXPECT_EQ(batch_stats[q].pages_fetched, serial_stats[q].pages_fetched)
        << "query " << q;
    EXPECT_EQ(batch_stats[q].rows_scanned, serial_stats[q].rows_scanned)
        << "query " << q;
    sum_fetched += batch_stats[q].pages_fetched;
    sum_read += batch_stats[q].pages_read;
  }
  // Per-scanner attribution sums exactly to the pool-level delta: no
  // fetch is lost or double-counted across the worker pool.
  EXPECT_EQ(delta.logical_reads, sum_fetched);
  EXPECT_EQ(delta.physical_reads, sum_read);
}

TEST_F(ConcurrencyTest, MixedQueryHammerAgainstPrecomputedResults) {
  // N threads independently run the same mixed point/range query list
  // against the shared pool; every thread must see the serial answers.
  const auto queries = QueryMix(12);
  std::vector<std::vector<int64_t>> expected;
  for (const Polyhedron& poly : queries) {
    KdTreePath path(Binding(), *kd_index_, poly);
    auto result = ExecuteAccessPath(&path);
    ASSERT_TRUE(result.ok());
    expected.push_back(std::move(result->objids));
  }

  const unsigned kThreads = 8;
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < 3; ++round) {
        for (size_t q = 0; q < queries.size(); ++q) {
          // Stagger the start point so threads collide on different pages.
          const size_t i = (q + t) % queries.size();
          KdTreePath path(Binding(), *kd_index_, queries[i]);
          auto result = ExecuteAccessPath(&path);
          if (!result.ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
          } else if (result->objids != expected[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST_F(ConcurrencyTest, ParallelKdBuildBitIdenticalToSerial) {
  const PointSet& points = catalog_->colors;
  for (bool max_spread : {false, true}) {
    KdTreeConfig serial_config;
    serial_config.build_threads = 1;
    serial_config.max_spread_split = max_spread;
    auto serial = KdTreeIndex::Build(&points, serial_config);
    ASSERT_TRUE(serial.ok());

    KdTreeConfig parallel_config = serial_config;
    parallel_config.build_threads = 4;
    auto parallel = KdTreeIndex::Build(&points, parallel_config);
    ASSERT_TRUE(parallel.ok());

    EXPECT_EQ(parallel->clustered_order(), serial->clustered_order())
        << "max_spread=" << max_spread;
    ASSERT_EQ(parallel->nodes().size(), serial->nodes().size());
    for (size_t i = 0; i < serial->nodes().size(); ++i) {
      const auto& a = parallel->nodes()[i];
      const auto& b = serial->nodes()[i];
      EXPECT_EQ(a.split_dim, b.split_dim) << "node " << i;
      EXPECT_EQ(a.split_value, b.split_value) << "node " << i;
      EXPECT_EQ(a.row_begin, b.row_begin) << "node " << i;
      EXPECT_EQ(a.row_end, b.row_end) << "node " << i;
      EXPECT_EQ(a.post_order, b.post_order) << "node " << i;
    }
  }
}

TEST_F(ConcurrencyTest, TaskPoolRunsEveryWorkerExactlyOnce) {
  TaskPool pool(4);
  ASSERT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(4);
  for (auto& h : hits) h.store(0);
  for (int round = 0; round < 100; ++round) {
    pool.Run([&](unsigned worker) {
      hits[worker].fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (unsigned w = 0; w < 4; ++w) {
    EXPECT_EQ(hits[w].load(), 100) << "worker " << w;
  }

  // ParallelFor covers [0, n) exactly once for any grain.
  std::vector<std::atomic<int>> counts(1000);
  for (auto& c : counts) c.store(0);
  ParallelFor(&pool, counts.size(), 7,
              [&](uint64_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < counts.size(); ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

}  // namespace
}  // namespace mds
