#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/kdtree.h"
#include "hull/hull_query.h"
#include "sdss/catalog.h"

namespace mds {
namespace {

TEST(HullQueryTest, SquareHull) {
  std::vector<double> pts = {0, 0, 1, 0, 0, 1, 1, 1, 0.5, 0.5};
  auto poly = ConvexHullPolyhedron(pts, 2);
  ASSERT_TRUE(poly.ok());
  EXPECT_EQ(poly->num_halfspaces(), 4u);
  double inside[2] = {0.5, 0.7}, outside[2] = {1.2, 0.5}, corner[2] = {0, 0};
  EXPECT_TRUE(poly->Contains(inside));
  EXPECT_FALSE(poly->Contains(outside));
  EXPECT_TRUE(poly->Contains(corner));
}

TEST(HullQueryTest, TrainingPointsAlwaysInside) {
  Rng rng(3);
  for (size_t d : {2u, 3u, 5u}) {
    const size_t n = 100;
    std::vector<double> pts(n * d);
    for (double& x : pts) x = rng.NextGaussian();
    auto poly = ConvexHullPolyhedron(pts, d);
    ASSERT_TRUE(poly.ok());
    for (size_t i = 0; i < n; ++i) {
      // Tolerance via a tiny margin-inflated hull (hull planes can cut
      // within 1e-10 of their defining vertices).
      EXPECT_TRUE(
          ConvexHullPolyhedron(pts, d, 1e-9)->Contains(&pts[i * d]))
          << "d=" << d << " i=" << i;
    }
  }
}

TEST(HullQueryTest, MarginExpandsHull) {
  std::vector<double> pts = {0, 0, 1, 0, 0, 1, 1, 1};
  auto tight = ConvexHullPolyhedron(pts, 2, 0.0);
  auto fat = ConvexHullPolyhedron(pts, 2, 0.25);
  ASSERT_TRUE(tight.ok());
  ASSERT_TRUE(fat.ok());
  double near[2] = {1.2, 0.5};
  EXPECT_FALSE(tight->Contains(near));
  EXPECT_TRUE(fat->Contains(near));
}

TEST(HullQueryTest, PointSetOverload) {
  PointSet ps(2, 0);
  float a[2] = {0, 0}, b[2] = {2, 0}, c[2] = {0, 2}, d[2] = {2, 2},
        mid[2] = {1, 1};
  ps.Append(a);
  ps.Append(b);
  ps.Append(c);
  ps.Append(d);
  ps.Append(mid);
  auto poly = ConvexHullPolyhedron(ps, {0, 1, 2, 3, 4});
  ASSERT_TRUE(poly.ok());
  float inside[2] = {1.5f, 0.5f}, outside[2] = {2.5f, 0.5f};
  EXPECT_TRUE(poly->Contains(inside));
  EXPECT_FALSE(poly->Contains(outside));
}

TEST(HullQueryTest, SimilarObjectSearchOnCatalog) {
  // The §2.2 workflow: hull of a quasar training set queried through the
  // kd-tree finds the rest of the quasar population with high purity.
  CatalogConfig config;
  config.num_objects = 50000;
  config.seed = 31;
  Catalog cat = GenerateCatalog(config);
  std::vector<uint64_t> training;
  for (uint64_t i = 0; i < cat.size() && training.size() < 400; ++i) {
    if (cat.classes[i] == SpectralClass::kQuasar) training.push_back(i);
  }
  ASSERT_GE(training.size(), 100u);
  auto poly = ConvexHullPolyhedron(cat.colors, training, 0.0);
  ASSERT_TRUE(poly.ok());

  auto tree = KdTreeIndex::Build(&cat.colors);
  ASSERT_TRUE(tree.ok());
  std::vector<uint64_t> hits;
  tree->QueryPolyhedron(*poly, &hits);
  // Everything returned matches brute force.
  std::vector<uint64_t> expect;
  for (uint64_t i = 0; i < cat.size(); ++i) {
    if (poly->Contains(cat.colors.point(i))) expect.push_back(i);
  }
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, expect);

  // Training points are found, and the haul is mostly quasars.
  size_t quasars = 0;
  for (uint64_t id : hits) {
    if (cat.classes[id] == SpectralClass::kQuasar) ++quasars;
  }
  EXPECT_GE(hits.size(), training.size());
  EXPECT_GT(static_cast<double>(quasars) / hits.size(), 0.7);
  // And the search generalizes: more quasars than the training set alone.
  EXPECT_GT(quasars, training.size());
}

TEST(HullQueryTest, DegenerateTrainingSetFails) {
  std::vector<double> collinear = {0, 0, 1, 1, 2, 2, 3, 3};
  QuickhullOptions options;
  options.joggle = false;
  auto poly = ConvexHullPolyhedron(collinear, 2, 0.0, options);
  EXPECT_FALSE(poly.ok());
}

}  // namespace
}  // namespace mds
