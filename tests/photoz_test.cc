#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "photoz/knn_photoz.h"
#include "photoz/template_fitting.h"
#include "sdss/catalog.h"

namespace mds {
namespace {

/// Reference + unknown galaxy sets built from the synthetic catalog.
struct PhotoZFixtureData {
  PointSet ref_colors{kNumBands, 0};
  std::vector<float> ref_z;
  PointSet unk_colors{kNumBands, 0};
  std::vector<float> unk_z;
};

PhotoZFixtureData MakeData(uint64_t n, uint64_t seed) {
  CatalogConfig config;
  config.num_objects = n;
  config.seed = seed;
  config.star_fraction = 0.0;  // galaxies only: the §4.1 setting
  config.galaxy_fraction = 1.0;
  config.quasar_fraction = 0.0;
  Catalog cat = GenerateCatalog(config);
  ReferenceSplit split = SplitReferenceSet(cat, 0.1, seed + 1);
  PhotoZFixtureData data;
  for (uint64_t id : split.reference) {
    data.ref_colors.Append(cat.colors.point(id));
    data.ref_z.push_back(cat.redshifts[id]);
  }
  for (uint64_t id : split.unknown) {
    data.unk_colors.Append(cat.colors.point(id));
    data.unk_z.push_back(cat.redshifts[id]);
  }
  return data;
}

TEST(KnnPhotoZTest, BuildValidation) {
  PhotoZFixtureData data = MakeData(2000, 3);
  KnnPhotoZConfig config;
  config.k = data.ref_colors.size() + 1;  // too large
  EXPECT_FALSE(
      KnnPhotoZEstimator::Build(&data.ref_colors, &data.ref_z, config).ok());
  config.k = 8;
  config.degree = 3;  // unsupported
  EXPECT_FALSE(
      KnnPhotoZEstimator::Build(&data.ref_colors, &data.ref_z, config).ok());
}

TEST(KnnPhotoZTest, EstimatesAreAccurate) {
  PhotoZFixtureData data = MakeData(20000, 5);
  KnnPhotoZConfig config;
  config.k = 32;
  config.degree = 1;
  auto est = KnnPhotoZEstimator::Build(&data.ref_colors, &data.ref_z, config);
  ASSERT_TRUE(est.ok());
  PhotoZScorer scorer;
  for (size_t i = 0; i < data.unk_colors.size(); i += 10) {
    PhotoZEstimate e = est->Estimate(data.unk_colors.point(i));
    scorer.Add(e.redshift, data.unk_z[i]);
  }
  PhotoZEvaluation eval = scorer.Finish();
  EXPECT_GT(eval.count, 100u);
  // The catalog's intrinsic scatter limits accuracy; the estimator must
  // stay well within the redshift range (0..0.6).
  EXPECT_LT(eval.rms_error, 0.1);
  EXPECT_LT(std::abs(eval.bias), 0.02);
}

TEST(KnnPhotoZTest, PolynomialFitBeatsPlainAverage) {
  PhotoZFixtureData data = MakeData(20000, 7);
  KnnPhotoZConfig fit_config;
  fit_config.k = 48;
  fit_config.degree = 1;
  KnnPhotoZConfig avg_config;
  avg_config.k = 48;
  avg_config.degree = 0;
  auto fit = KnnPhotoZEstimator::Build(&data.ref_colors, &data.ref_z,
                                       fit_config);
  auto avg = KnnPhotoZEstimator::Build(&data.ref_colors, &data.ref_z,
                                       avg_config);
  ASSERT_TRUE(fit.ok());
  ASSERT_TRUE(avg.ok());
  PhotoZScorer fit_scorer, avg_scorer;
  for (size_t i = 0; i < data.unk_colors.size(); i += 20) {
    fit_scorer.Add(fit->Estimate(data.unk_colors.point(i)).redshift,
                   data.unk_z[i]);
    avg_scorer.Add(avg->Estimate(data.unk_colors.point(i)).redshift,
                   data.unk_z[i]);
  }
  // "instead of using the average, a local low order polynomial fit over
  // the neighbors gives a better estimate" (§4.1).
  EXPECT_LT(fit_scorer.Finish().rms_error, avg_scorer.Finish().rms_error);
}

TEST(TemplateFittingTest, OracleCalibrationIsAccurate) {
  // With zero calibration offsets the template grid is the true locus, so
  // the chi^2 fit should be nearly unbiased.
  PhotoZFixtureData data = MakeData(5000, 9);
  TemplateFittingConfig config;
  config.calibration_offset = {0, 0, 0, 0, 0};
  config.miscalibration = 0.0;
  auto est = TemplateFittingEstimator::Build(config);
  ASSERT_TRUE(est.ok());
  PhotoZScorer scorer;
  for (size_t i = 0; i < data.unk_colors.size(); i += 5) {
    scorer.Add(est->Estimate(data.unk_colors.point(i)), data.unk_z[i]);
  }
  PhotoZEvaluation eval = scorer.Finish();
  EXPECT_LT(eval.rms_error, 0.08);
  EXPECT_LT(std::abs(eval.bias), 0.02);
}

TEST(TemplateFittingTest, CalibrationErrorDegradesAccuracy) {
  PhotoZFixtureData data = MakeData(5000, 11);
  TemplateFittingConfig clean;
  clean.calibration_offset = {0, 0, 0, 0, 0};
  clean.miscalibration = 0.0;
  TemplateFittingConfig biased;  // default offsets
  auto clean_est = TemplateFittingEstimator::Build(clean);
  auto biased_est = TemplateFittingEstimator::Build(biased);
  ASSERT_TRUE(clean_est.ok());
  ASSERT_TRUE(biased_est.ok());
  PhotoZScorer clean_scorer, biased_scorer;
  for (size_t i = 0; i < data.unk_colors.size(); i += 5) {
    clean_scorer.Add(clean_est->Estimate(data.unk_colors.point(i)),
                     data.unk_z[i]);
    biased_scorer.Add(biased_est->Estimate(data.unk_colors.point(i)),
                      data.unk_z[i]);
  }
  EXPECT_GT(biased_scorer.Finish().rms_error,
            clean_scorer.Finish().rms_error);
}

TEST(PhotoZComparisonTest, KnnHalvesTemplateFittingError) {
  // The headline §4.1 result (Figures 7 vs 8): the k-NN estimator's error
  // is less than half of the (mis-calibrated) template fitting error.
  PhotoZFixtureData data = MakeData(30000, 13);
  auto knn = KnnPhotoZEstimator::Build(&data.ref_colors, &data.ref_z);
  auto tmpl = TemplateFittingEstimator::Build();
  ASSERT_TRUE(knn.ok());
  ASSERT_TRUE(tmpl.ok());
  PhotoZScorer knn_scorer, tmpl_scorer;
  for (size_t i = 0; i < data.unk_colors.size(); i += 25) {
    knn_scorer.Add(knn->Estimate(data.unk_colors.point(i)).redshift,
                   data.unk_z[i]);
    tmpl_scorer.Add(tmpl->Estimate(data.unk_colors.point(i)), data.unk_z[i]);
  }
  double knn_rms = knn_scorer.Finish().rms_error;
  double tmpl_rms = tmpl_scorer.Finish().rms_error;
  EXPECT_LT(knn_rms, 0.5 * tmpl_rms)
      << "knn=" << knn_rms << " template=" << tmpl_rms;
}

TEST(PhotoZScorerTest, Statistics) {
  PhotoZScorer scorer;
  scorer.Add(1.0, 0.5);   // err +0.5
  scorer.Add(0.0, 0.5);   // err -0.5
  PhotoZEvaluation eval = scorer.Finish();
  EXPECT_EQ(eval.count, 2u);
  EXPECT_DOUBLE_EQ(eval.rms_error, 0.5);
  EXPECT_DOUBLE_EQ(eval.mean_abs_error, 0.5);
  EXPECT_DOUBLE_EQ(eval.bias, 0.0);
}

TEST(PhotoZScorerTest, EmptyIsZero) {
  PhotoZScorer scorer;
  PhotoZEvaluation eval = scorer.Finish();
  EXPECT_EQ(eval.count, 0u);
  EXPECT_EQ(eval.rms_error, 0.0);
}

}  // namespace
}  // namespace mds
