#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/point_table.h"
#include "core/query_engine.h"
#include "storage/pager.h"

namespace mds {
namespace {

PointSet MakePoints(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  PointSet ps(d, 0);
  ps.Reserve(n);
  std::vector<double> p(d);
  for (size_t i = 0; i < n; ++i) {
    double mode = rng.NextDouble();
    for (size_t j = 0; j < d; ++j) {
      p[j] = mode < 0.6 ? 0.4 + 0.05 * rng.NextGaussian() : rng.NextDouble();
    }
    ps.Append(p.data());
  }
  return ps;
}

std::vector<int64_t> BruteForce(const PointSet& ps, const Polyhedron& poly) {
  std::vector<int64_t> out;
  for (uint64_t i = 0; i < ps.size(); ++i) {
    if (poly.Contains(ps.point(i))) out.push_back(static_cast<int64_t>(i));
  }
  return out;
}

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    points_ = MakePoints(20000, 3, 11);
    pool_ = std::make_unique<BufferPool>(&pager_, 4096);
  }

  PointSet points_{3, 0};
  MemPager pager_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(QueryEngineTest, FullScanMatchesBruteForce) {
  auto table = MaterializePointTable(pool_.get(), points_, {});
  ASSERT_TRUE(table.ok());
  PointTableBinding binding = BindPointTable(&*table, 3);
  Polyhedron poly =
      Polyhedron::BallApproximation({0.4, 0.4, 0.4}, 0.1, 10);
  auto result = StorageQueryExecutor::FullScan(binding, poly);
  ASSERT_TRUE(result.ok());
  std::vector<int64_t> got = result->objids;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, BruteForce(points_, poly));
  EXPECT_EQ(result->rows_scanned, points_.size());
}

TEST_F(QueryEngineTest, KdPlanMatchesAndReadsFewerPages) {
  auto tree = KdTreeIndex::Build(&points_);
  ASSERT_TRUE(tree.ok());
  auto table =
      MaterializePointTable(pool_.get(), points_, tree->clustered_order());
  ASSERT_TRUE(table.ok());
  PointTableBinding binding = BindPointTable(&*table, 3);

  // A selective query in the sparse background — the Figure 5 regime where
  // the kd-tree wins by a wide margin.
  Polyhedron poly =
      Polyhedron::BallApproximation({0.8, 0.8, 0.8}, 0.06, 20);
  auto kd = StorageQueryExecutor::ExecuteKdPlan(binding, *tree, poly);
  ASSERT_TRUE(kd.ok());
  // objids from the kd path are original ids; brute force uses originals.
  std::vector<int64_t> got = kd->objids;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, BruteForce(points_, poly));

  auto scan = StorageQueryExecutor::FullScan(binding, poly);
  ASSERT_TRUE(scan.ok());
  EXPECT_LT(kd->rows_scanned, scan.MoveValue().rows_scanned / 4);

  // A non-selective query still returns the exact answer.
  Polyhedron big = Polyhedron::BallApproximation({0.4, 0.4, 0.4}, 0.3, 12);
  auto kd_big = StorageQueryExecutor::ExecuteKdPlan(binding, *tree, big);
  ASSERT_TRUE(kd_big.ok());
  std::vector<int64_t> got_big = kd_big->objids;
  std::sort(got_big.begin(), got_big.end());
  EXPECT_EQ(got_big, BruteForce(points_, big));
}

TEST_F(QueryEngineTest, KdPlanPageIoSmallForSelectiveQuery) {
  auto tree = KdTreeIndex::Build(&points_);
  ASSERT_TRUE(tree.ok());
  auto table =
      MaterializePointTable(pool_.get(), points_, tree->clustered_order());
  ASSERT_TRUE(table.ok());
  PointTableBinding binding = BindPointTable(&*table, 3);
  Polyhedron poly =
      Polyhedron::BallApproximation({0.8, 0.8, 0.8}, 0.05, 20);
  auto kd = StorageQueryExecutor::ExecuteKdPlan(binding, *tree, poly);
  ASSERT_TRUE(kd.ok());
  EXPECT_LT(kd->pages_fetched, table->num_pages() / 2);
}

TEST_F(QueryEngineTest, VoronoiExecutionMatches) {
  VoronoiIndexConfig config;
  config.num_seeds = 64;
  auto index = VoronoiIndex::Build(&points_, config);
  ASSERT_TRUE(index.ok());
  auto table =
      MaterializePointTable(pool_.get(), points_, index->clustered_order());
  ASSERT_TRUE(table.ok());
  PointTableBinding binding = BindPointTable(&*table, 3);
  Polyhedron poly =
      Polyhedron::BallApproximation({0.5, 0.5, 0.5}, 0.2, 14);
  VoronoiQueryStats stats;
  auto result =
      StorageQueryExecutor::ExecuteVoronoi(binding, *index, poly, &stats);
  ASSERT_TRUE(result.ok());
  std::vector<int64_t> got = result->objids;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, BruteForce(points_, poly));
  EXPECT_EQ(stats.cells_inside + stats.cells_outside + stats.cells_partial,
            index->num_seeds());
}

TEST_F(QueryEngineTest, GridSampleDeliversAndReadsFewPages) {
  auto index = LayeredGridIndex::Build(&points_);
  ASSERT_TRUE(index.ok());
  auto table =
      MaterializePointTable(pool_.get(), points_, index->clustered_order());
  ASSERT_TRUE(table.ok());
  PointTableBinding binding = BindPointTable(&*table, 3);

  Box q({0.3, 0.3, 0.3}, {0.5, 0.5, 0.5});
  GridQueryStats grid_stats;
  auto result =
      StorageQueryExecutor::GridSample(binding, *index, q, 500, &grid_stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->objids.size(), 500u);
  for (int64_t objid : result->objids) {
    EXPECT_TRUE(q.Contains(points_.point(static_cast<uint64_t>(objid))));
  }
  // The §3.1 claim: pages fetched stay close to the pages that hold the
  // returned rows (here: well under a full scan).
  EXPECT_LT(result->pages_fetched, table->num_pages() / 2);

  // In-memory and storage-backed paths agree.
  std::vector<uint64_t> mem_ids;
  ASSERT_TRUE(index->SampleQuery(q, 500, &mem_ids).ok());
  std::vector<int64_t> mem(mem_ids.begin(), mem_ids.end());
  std::vector<int64_t> got = result->objids;
  std::sort(mem.begin(), mem.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, mem);
}

TEST_F(QueryEngineTest, TableSampleTopNStopsEarly) {
  auto table = MaterializePointTable(pool_.get(), points_, {});
  ASSERT_TRUE(table.ok());
  PointTableBinding binding = BindPointTable(&*table, 3);
  Rng rng(13);
  Box q({0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});
  auto result =
      StorageQueryExecutor::TableSampleTopN(binding, q, 50.0, 100, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->objids.size(), 100u);
  EXPECT_LT(result->rows_scanned, points_.size());
}

TEST_F(QueryEngineTest, TableSampleUndersamplesSmallBoxes) {
  // The E3 failure mode: with a small p, a selective box returns far fewer
  // than n points even though the box holds plenty.
  auto table = MaterializePointTable(pool_.get(), points_, {});
  ASSERT_TRUE(table.ok());
  PointTableBinding binding = BindPointTable(&*table, 3);
  Rng rng(17);
  Box q({0.38, 0.38, 0.38}, {0.42, 0.42, 0.42});
  uint64_t population = 0;
  for (uint64_t i = 0; i < points_.size(); ++i) {
    if (q.Contains(points_.point(i))) ++population;
  }
  ASSERT_GT(population, 200u);
  auto result =
      StorageQueryExecutor::TableSampleTopN(binding, q, 1.0, 200, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->objids.size(), 200u);
}

TEST_F(QueryEngineTest, ObjIdSecondaryIndexJoinsBack) {
  // Clustered table + B+-tree on objID: spatial hits join back to stored
  // rows without scanning.
  auto tree = KdTreeIndex::Build(&points_);
  ASSERT_TRUE(tree.ok());
  auto table =
      MaterializePointTable(pool_.get(), points_, tree->clustered_order());
  ASSERT_TRUE(table.ok());
  auto objid_index = BuildObjIdIndex(pool_.get(), *table);
  ASSERT_TRUE(objid_index.ok());
  EXPECT_EQ(objid_index->num_entries(), points_.size());

  Polyhedron poly = Polyhedron::BallApproximation({0.4, 0.4, 0.4}, 0.05, 12);
  auto result = StorageQueryExecutor::ExecuteKdPlan(
      BindPointTable(&*table, 3), *tree, poly);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->objids.empty());
  float coords[3];
  for (size_t i = 0; i < result->objids.size(); i += 7) {
    int64_t objid = result->objids[i];
    ASSERT_TRUE(
        LookupByObjId(*table, *objid_index, objid, coords, 3).ok());
    for (int j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(coords[j],
                      points_.coord(static_cast<uint64_t>(objid), j));
    }
  }
  // Unknown id fails cleanly.
  EXPECT_EQ(LookupByObjId(*table, *objid_index, -5, coords, 3).code(),
            StatusCode::kNotFound);
}

TEST_F(QueryEngineTest, DimensionMismatchRejected) {
  auto table = MaterializePointTable(pool_.get(), points_, {});
  ASSERT_TRUE(table.ok());
  PointTableBinding binding = BindPointTable(&*table, 3);
  Polyhedron poly2(2);
  EXPECT_FALSE(StorageQueryExecutor::FullScan(binding, poly2).ok());
}

TEST_F(QueryEngineTest, ExecuteBatchPreservesSiblingsOnFailure) {
  auto table = MaterializePointTable(pool_.get(), points_, {});
  ASSERT_TRUE(table.ok());
  PointTableBinding binding = BindPointTable(&*table, 3);

  const Polyhedron good =
      Polyhedron::BallApproximation({0.4, 0.4, 0.4}, 0.15, 10);
  const Polyhedron bad(2);  // dimension mismatch: this entry must fail

  std::vector<std::unique_ptr<AccessPath>> paths;
  paths.push_back(std::make_unique<FullScanPath>(binding, good));
  paths.push_back(std::make_unique<FullScanPath>(binding, bad));
  paths.push_back(std::make_unique<FullScanPath>(binding, good));

  std::vector<QueryStats> stats;
  auto results = QueryEngine::ExecuteBatch(std::move(paths), {}, &stats);
  ASSERT_EQ(results.size(), 3u);
  ASSERT_EQ(stats.size(), 3u);

  // Siblings of the failing entry keep their full results.
  ASSERT_TRUE(results[0].ok());
  ASSERT_TRUE(results[2].ok());
  std::vector<int64_t> got = results[0]->objids;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, BruteForce(points_, good));
  EXPECT_EQ(results[0]->objids, results[2]->objids);
  EXPECT_EQ(stats[0].rows_scanned, points_.size());

  // The failing entry reports its own status, annotated with its index.
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(results[1].status().message().find("ExecuteBatch[1]"),
            std::string::npos);

  // A null path entry fails its slot only, same annotation contract.
  FullScanPath solo(binding, good);
  std::vector<AccessPath*> raw{&solo, nullptr};
  auto mixed = QueryEngine::ExecuteBatch(raw);
  ASSERT_EQ(mixed.size(), 2u);
  EXPECT_TRUE(mixed[0].ok());
  ASSERT_FALSE(mixed[1].ok());
  EXPECT_NE(mixed[1].status().message().find("ExecuteBatch[1]"),
            std::string::npos);
}

}  // namespace
}  // namespace mds
