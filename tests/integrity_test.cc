#include <gtest/gtest.h>

#include <cstdio>
#include <fcntl.h>
#include <filesystem>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/rng.h"
#include "core/access_path.h"
#include "core/index_io.h"
#include "core/point_table.h"
#include "core/query_planner.h"
#include "storage/buffer_pool.h"
#include "storage/page_checksum.h"
#include "storage/pager.h"

namespace mds {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Flips one bit of page `id` directly in the pager file, bypassing every
/// software layer — the test's stand-in for media corruption.
void FlipBitOnDisk(const std::string& path, PageId id, uint64_t byte,
                   uint8_t mask) {
  int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  uint8_t b = 0;
  ASSERT_EQ(::pread(fd, &b, 1, static_cast<off_t>(id * kPageSize + byte)), 1);
  b ^= mask;
  ASSERT_EQ(::pwrite(fd, &b, 1, static_cast<off_t>(id * kPageSize + byte)), 1);
  ::close(fd);
}

// --- CRC-32C ---------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // The canonical CRC-32C check value (RFC 3720 appendix / crcutil).
  EXPECT_EQ(Crc32c("123456789", 9), 0xe3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // 32 zero bytes, another published vector.
  uint8_t zeros[32] = {};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8a9136aau);
}

TEST(Crc32cTest, Incremental) {
  const char* data = "the quick brown fox jumps over the lazy dog";
  const size_t n = 43;
  const uint32_t whole = Crc32c(data, n);
  for (size_t split : {size_t{1}, size_t{7}, size_t{20}, size_t{42}}) {
    uint32_t crc = Crc32c(0, data, split);
    crc = Crc32c(crc, data + split, n - split);
    EXPECT_EQ(crc, whole);
  }
}

TEST(Crc32cTest, LargeBufferMatchesByteAtATime) {
  // Page-sized and larger inputs take the interleaved multi-stream path;
  // folding one byte at a time never does. Agreement pins the stream-merge
  // arithmetic to the reference bytewise definition.
  Rng rng(42);
  for (size_t size : {size_t{8188}, size_t{8192}, size_t{30000}}) {
    std::vector<uint8_t> buf(size);
    for (auto& byte : buf) byte = static_cast<uint8_t>(rng.NextU64());
    const uint32_t whole = Crc32c(buf.data(), buf.size());
    uint32_t crc = 0;
    for (size_t i = 0; i < buf.size(); ++i) {
      crc = Crc32c(crc, buf.data() + i, 1);
    }
    EXPECT_EQ(crc, whole) << size;
  }
}

// --- Page checksum ---------------------------------------------------------

TEST(PageChecksumTest, StampVerifyRoundTrip) {
  Page page;
  Rng rng(7);
  for (size_t i = 0; i < kPageUsableSize; ++i) {
    page.bytes()[i] = static_cast<uint8_t>(rng.NextU64());
  }
  StampPageChecksum(&page);
  EXPECT_EQ(VerifyPageChecksum(page), PageVerdict::kOk);
  EXPECT_EQ(page.ReadAt<uint8_t>(kPageFormatOffset), kPageFormatV1);
}

TEST(PageChecksumTest, DetectsAnySingleBitFlip) {
  Page page;
  Rng rng(8);
  for (size_t i = 0; i < kPageUsableSize; ++i) {
    page.bytes()[i] = static_cast<uint8_t>(rng.NextU64());
  }
  StampPageChecksum(&page);
  // Sampled positions across payload, format byte and the CRC itself.
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t bit = rng.NextBounded(kPageSize * 8);
    page.bytes()[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_EQ(VerifyPageChecksum(page), PageVerdict::kCorrupt) << bit;
    page.bytes()[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
  EXPECT_EQ(VerifyPageChecksum(page), PageVerdict::kOk);
}

TEST(PageChecksumTest, FreshZeroPageIsUnformatted) {
  Page page;
  EXPECT_EQ(VerifyPageChecksum(page), PageVerdict::kUnformatted);
}

TEST(PageChecksumTest, TornWriteOverFreshPageIsCorrupt) {
  // A stamped page whose tail (footer included) never hit the disk leaves
  // payload bytes under a zero footer. Format 0 must NOT mean "skip" then:
  // only an all-zero page is legitimately unformatted.
  Page page;
  page.WriteAt<uint64_t>(64, 0x1234567890abcdefULL);
  EXPECT_EQ(VerifyPageChecksum(page), PageVerdict::kCorrupt);
}

TEST(PageChecksumTest, UnknownFormatIsCorrupt) {
  Page page;
  StampPageChecksum(&page);
  page.WriteAt<uint8_t>(kPageFormatOffset, 0x7f);
  EXPECT_EQ(VerifyPageChecksum(page), PageVerdict::kCorrupt);
}

// --- Buffer-pool verification & quarantine ---------------------------------

TEST(BufferPoolChecksumTest, StampsOnWriteVerifiesOnRead) {
  const std::string path = TempPath("mds_integrity_stamp.db");
  Schema schema = PointTableSchema(2);
  std::vector<PageId> page_ids;
  uint64_t num_rows = 0;
  {
    auto pager = FilePager::Create(path);
    ASSERT_TRUE(pager.ok());
    BufferPool pool(pager->get(), 32);
    auto table = Table::Create(&pool, schema);
    ASSERT_TRUE(table.ok());
    RowBuilder row(&schema);
    for (int i = 0; i < 2000; ++i) {
      row.SetInt64(0, i);
      row.SetFloat32(1, static_cast<float>(i));
      row.SetFloat32(2, static_cast<float>(2 * i));
      ASSERT_TRUE(table->Append(row).ok());
    }
    ASSERT_TRUE(pool.FlushAll().ok());
    num_rows = table->num_rows();
    for (uint64_t p = 0; p < table->num_pages(); ++p) {
      page_ids.push_back(table->page_id(p));
    }
  }

  // Every page written through the pool carries a valid v1 stamp on disk.
  {
    auto pager = FilePager::Open(path);
    ASSERT_TRUE(pager.ok());
    Page page;
    for (PageId id : page_ids) {
      ASSERT_TRUE((*pager)->ReadPage(id, &page).ok());
      EXPECT_EQ(VerifyPageChecksum(page), PageVerdict::kOk) << id;
    }
  }

  // Reopen through a pool: misses verify, and the counters say so.
  {
    auto pager = FilePager::Open(path);
    ASSERT_TRUE(pager.ok());
    BufferPool pool(pager->get(), 32);
    auto table = Table::Attach(&pool, schema, page_ids, num_rows);
    ASSERT_TRUE(table.ok());
    const CounterSnapshot before = pool.Snapshot();
    uint8_t buf[16];
    ASSERT_TRUE(table->ReadRow(0, buf).ok());
    ASSERT_TRUE(table->ReadRow(num_rows - 1, buf).ok());
    const CounterSnapshot::Delta delta = pool.Delta(before);
    EXPECT_EQ(delta.physical_reads, 2u);
    EXPECT_EQ(delta.checksums_verified, 2u);
    EXPECT_EQ(delta.checksum_skips, 0u);
    EXPECT_EQ(pool.stats().checksum_failures, 0u);
  }
  std::remove(path.c_str());
}

TEST(BufferPoolChecksumTest, CorruptPageQuarantined) {
  const std::string path = TempPath("mds_integrity_quarantine.db");
  Schema schema = PointTableSchema(2);
  std::vector<PageId> page_ids;
  uint64_t num_rows = 0;
  {
    auto pager = FilePager::Create(path);
    ASSERT_TRUE(pager.ok());
    BufferPool pool(pager->get(), 32);
    auto table = Table::Create(&pool, schema);
    ASSERT_TRUE(table.ok());
    RowBuilder row(&schema);
    for (int i = 0; i < 2000; ++i) {
      row.SetInt64(0, i);
      row.SetFloat32(1, 1.0f);
      row.SetFloat32(2, 2.0f);
      ASSERT_TRUE(table->Append(row).ok());
    }
    ASSERT_TRUE(pool.FlushAll().ok());
    num_rows = table->num_rows();
    for (uint64_t p = 0; p < table->num_pages(); ++p) {
      page_ids.push_back(table->page_id(p));
    }
  }
  ASSERT_GE(page_ids.size(), 2u);
  FlipBitOnDisk(path, page_ids[1], 123, 0x10);

  auto pager = FilePager::Open(path);
  ASSERT_TRUE(pager.ok());
  BufferPool pool(pager->get(), 32);
  auto table = Table::Attach(&pool, schema, page_ids, num_rows);
  ASSERT_TRUE(table.ok());

  uint8_t buf[16];
  // Rows on the clean page read fine.
  ASSERT_TRUE(table->ReadRow(0, buf).ok());
  // Rows on the corrupt page fail with Corruption and quarantine it.
  const uint64_t bad_row = table->rows_per_page();  // first row of page 1
  Status bad = table->ReadRow(bad_row, buf);
  EXPECT_EQ(bad.code(), StatusCode::kCorruption);
  EXPECT_TRUE(pool.IsQuarantined(page_ids[1]));
  EXPECT_EQ(pool.quarantined_count(), 1u);
  EXPECT_EQ(pool.stats().checksum_failures, 1u);

  // A second attempt fails fast out of quarantine: no new physical read,
  // no double-counted failure.
  const BufferPoolStats before = pool.stats();
  EXPECT_EQ(table->ReadRow(bad_row, buf).code(), StatusCode::kCorruption);
  const BufferPoolStats after = pool.stats();
  EXPECT_EQ(after.physical_reads, before.physical_reads);
  EXPECT_EQ(after.checksum_failures, before.checksum_failures);
  std::remove(path.c_str());
}

TEST(BufferPoolChecksumTest, VerifyDisabledSkipsBoth) {
  const std::string path = TempPath("mds_integrity_noverify.db");
  {
    auto pager = FilePager::Create(path);
    ASSERT_TRUE(pager.ok());
    BufferPool pool(pager->get(), 8, 0, /*verify_checksums=*/false);
    auto guard = pool.Allocate();
    ASSERT_TRUE(guard.ok());
    guard->MutablePage().WriteAt<uint64_t>(0, 42);
    guard->Release();
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  auto pager = FilePager::Open(path);
  ASSERT_TRUE(pager.ok());
  Page page;
  ASSERT_TRUE((*pager)->ReadPage(0, &page).ok());
  // No stamp was written...
  EXPECT_EQ(page.ReadAt<uint8_t>(kPageFormatOffset), kPageFormatNone);
  // ...and a verifying pool would reject it (nonzero payload, no footer),
  // while a non-verifying pool reads it back without complaint.
  BufferPool no_verify(pager->get(), 8, 0, /*verify_checksums=*/false);
  auto fetched = no_verify.Fetch(0);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->page().ReadAt<uint64_t>(0), 42u);
  EXPECT_EQ(no_verify.stats().checksums_verified, 0u);
  std::remove(path.c_str());
}

// --- FilePager retries & error context -------------------------------------

TEST(FilePagerTest, ErrorsCarryPathAndPageId) {
  const std::string path = TempPath("mds_integrity_ctx.db");
  auto pager = FilePager::Create(path);
  ASSERT_TRUE(pager.ok());
  Page page;
  Status status = (*pager)->ReadPage(17, &page);
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  EXPECT_NE(status.message().find(path), std::string::npos) << status.message();
  EXPECT_NE(status.message().find("17"), std::string::npos) << status.message();
  std::remove(path.c_str());
}

TEST(AnnotateStatusTest, PrependsContextPreservesCode) {
  Status inner = Status::IOError("pread: whoops");
  Status annotated = AnnotateStatus(inner, "ReadPage(id=3)");
  EXPECT_EQ(annotated.code(), StatusCode::kIOError);
  EXPECT_EQ(annotated.message(), "ReadPage(id=3): pread: whoops");
  EXPECT_TRUE(AnnotateStatus(Status::OK(), "ctx").ok());
}

// --- RetryingPager ---------------------------------------------------------

TEST(RetryingPagerTest, AbsorbsTransients) {
  MemPager base;
  FaultConfig config;
  config.seed = 11;
  config.p_transient = 1.0;  // every first attempt fails, retry passes
  FaultInjectionPager faulty(&base, config);
  RetryingPager retrying(&faulty, RetryingPager::Options{4, 0});

  auto id = retrying.AllocatePage();
  ASSERT_TRUE(id.ok());
  Page page;
  page.WriteAt<uint64_t>(0, 99);
  ASSERT_TRUE(retrying.WritePage(*id, page).ok());
  Page back;
  ASSERT_TRUE(retrying.ReadPage(*id, &back).ok());
  EXPECT_EQ(back.ReadAt<uint64_t>(0), 99u);
  ASSERT_TRUE(retrying.Sync().ok());
  EXPECT_EQ(retrying.retries(), 4u);  // one retry per operation
  EXPECT_EQ(retrying.exhausted(), 0u);
  EXPECT_EQ(faulty.stats().transients, 4u);
}

TEST(RetryingPagerTest, ReportsExhaustion) {
  MemPager base;
  FaultConfig config;
  config.seed = 12;
  config.p_permanent = 1.0;  // never recoverable
  FaultInjectionPager faulty(&base, config);
  RetryingPager retrying(&faulty, RetryingPager::Options{3, 0});
  Page page;
  EXPECT_EQ(retrying.ReadPage(0, &page).code(), StatusCode::kIOError);
  // Permanent errors are not transient: no retry, no exhaustion.
  EXPECT_EQ(retrying.retries(), 0u);

  FaultConfig flaky;
  flaky.seed = 13;
  flaky.p_transient = 1.0;
  FaultInjectionPager always_transient(&base, flaky);
  RetryingPager one_shot(&always_transient, RetryingPager::Options{1, 0});
  EXPECT_EQ(one_shot.ReadPage(0, &page).code(), StatusCode::kUnavailable);
  EXPECT_EQ(one_shot.exhausted(), 1u);
}

// --- Degraded scans and planner fallback ------------------------------------

class DegradedQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("mds_integrity_degraded.db");
    Rng rng(2026);
    points_ = PointSet(2, 0);
    std::vector<double> p(2);
    for (int i = 0; i < 20000; ++i) {
      p[0] = rng.NextDouble();
      p[1] = rng.NextDouble();
      points_.Append(p.data());
    }
    auto pager = FilePager::Create(path_);
    ASSERT_TRUE(pager.ok());
    BufferPool pool(pager->get(), 256);
    auto kd = KdTreeIndex::Build(&points_);
    ASSERT_TRUE(kd.ok());
    kd_ = std::make_unique<KdTreeIndex>(std::move(*kd));
    auto table =
        MaterializePointTable(&pool, points_, kd_->clustered_order());
    ASSERT_TRUE(table.ok());
    num_rows_ = table->num_rows();
    for (uint64_t p2 = 0; p2 < table->num_pages(); ++p2) {
      page_ids_.push_back(table->page_id(p2));
    }
    ASSERT_TRUE(pool.FlushAll().ok());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<int64_t> BruteForce(const Polyhedron& poly) const {
    std::vector<int64_t> out;
    for (uint64_t i = 0; i < points_.size(); ++i) {
      if (poly.Contains(points_.point(i))) {
        out.push_back(static_cast<int64_t>(i));
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::string path_;
  PointSet points_{2, 0};
  std::unique_ptr<KdTreeIndex> kd_;
  std::vector<PageId> page_ids_;
  uint64_t num_rows_ = 0;
};

TEST_F(DegradedQueryTest, StrictFailsSkipModeDegrades) {
  // Corrupt one mid-table page on disk.
  FlipBitOnDisk(path_, page_ids_[page_ids_.size() / 2], 1000, 0x01);

  auto pager = FilePager::Open(path_);
  ASSERT_TRUE(pager.ok());
  BufferPool pool(pager->get(), 256);
  Schema schema = PointTableSchema(2);
  auto table = Table::Attach(&pool, schema, page_ids_, num_rows_);
  ASSERT_TRUE(table.ok());
  PointTableBinding binding = BindPointTable(&*table, 2);

  Polyhedron poly = Polyhedron::BallApproximation({0.5, 0.5}, 0.45, 16);
  const std::vector<int64_t> expected = BruteForce(poly);
  ASSERT_FALSE(expected.empty());

  // Strict: the scan aborts with Corruption.
  {
    FullScanPath scan(binding, poly);
    auto result = ExecuteAccessPath(&scan);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  }

  // Skip mode: partial answer, accurately flagged.
  {
    FullScanPath scan(binding, poly);
    RangeScanner::ScanOptions options;
    options.skip_corrupt_pages = true;
    QueryStats stats;
    auto result = ExecuteAccessPath(&scan, options, &stats);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->degraded);
    EXPECT_EQ(result->pages_skipped, 1u);
    EXPECT_TRUE(stats.degraded);
    std::vector<int64_t> got = result->objids;
    std::sort(got.begin(), got.end());
    // Subset of the fault-free answer, missing at most one page of rows.
    EXPECT_TRUE(std::includes(expected.begin(), expected.end(), got.begin(),
                              got.end()));
    EXPECT_LE(expected.size() - got.size(), table->rows_per_page());
  }

  // Parallel scan reports the same degradation.
  {
    FullScanPath scan(binding, poly);
    RangeScanner::ScanOptions options;
    options.skip_corrupt_pages = true;
    auto result = ExecuteAccessPathParallel(&scan, 4, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->degraded);
    EXPECT_EQ(result->pages_skipped, 1u);
  }
}

TEST_F(DegradedQueryTest, PlannerFallsBackToCleanPath) {
  auto pager = FilePager::Open(path_);
  ASSERT_TRUE(pager.ok());
  BufferPool pool(pager->get(), 256);
  Schema schema = PointTableSchema(2);
  auto kd_table = Table::Attach(&pool, schema, page_ids_, num_rows_);
  ASSERT_TRUE(kd_table.ok());

  // A second, heap-ordered copy of the data in the same file — the
  // fallback target. Built before the corruption is injected.
  auto heap_table = MaterializePointTable(&pool, points_, {});
  ASSERT_TRUE(heap_table.ok());
  ASSERT_TRUE(pool.FlushAll().ok());

  // Corrupt every page of the kd-clustered table so any index-path scan
  // hits a checksum failure. The heap copy stays clean.
  for (PageId id : page_ids_) {
    FlipBitOnDisk(path_, id, 64, 0x08);
  }

  Polyhedron poly = Polyhedron::BallApproximation({0.5, 0.5}, 0.1, 16);
  const std::vector<int64_t> expected = BruteForce(poly);
  ASSERT_FALSE(expected.empty());

  QueryPlanner planner;
  planner.AddPath(std::make_unique<KdTreePath>(BindPointTable(&*kd_table, 2),
                                               *kd_, poly));
  planner.AddPath(
      std::make_unique<FullScanPath>(BindPointTable(&*heap_table, 2), poly));

  // The kd path is cheaper for this selective query, so the planner picks
  // it, hits corruption, and falls back to the clean full scan.
  std::string chosen;
  QueryStats stats;
  auto result = planner.Execute(QueryPlanner::ExecuteOptions{}, &stats,
                                &chosen);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(chosen, "full-scan");
  EXPECT_TRUE(result->degraded);  // corruption was detected en route
  std::vector<int64_t> got = result->objids;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);  // ...but the answer itself is complete

  // With fallback disabled the same query surfaces the Corruption.
  QueryPlanner::ExecuteOptions strict;
  strict.fallback_on_corruption = false;
  QueryPlanner planner2;
  planner2.AddPath(std::make_unique<KdTreePath>(BindPointTable(&*kd_table, 2),
                                                *kd_, poly));
  planner2.AddPath(
      std::make_unique<FullScanPath>(BindPointTable(&*heap_table, 2), poly));
  auto failed = planner2.Execute(strict);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kCorruption);
}

// --- Atomic index save ------------------------------------------------------

TEST(IndexIoAtomicTest, SaveIsDurableBeforeHeadReturns) {
  const std::string path = TempPath("mds_integrity_atomic.db");
  Rng rng(5);
  PointSet ps(2, 0);
  std::vector<double> p(2);
  for (int i = 0; i < 5000; ++i) {
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble();
    ps.Append(p.data());
  }
  PageId head = kInvalidPageId;
  {
    auto pager = FilePager::Create(path);
    ASSERT_TRUE(pager.ok());
    BufferPool pool(pager->get(), 64);
    auto tree = KdTreeIndex::Build(&ps);
    ASSERT_TRUE(tree.ok());
    auto saved = IndexIo::SaveKdTree(&pool, *tree);
    ASSERT_TRUE(saved.ok());
    head = *saved;
    // No FlushAll here: Save itself must have made the chain durable.
  }
  auto pager = FilePager::Open(path);
  ASSERT_TRUE(pager.ok());
  BufferPool pool(pager->get(), 64);
  auto loaded = IndexIo::LoadKdTree(&pool, head, &ps);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST(IndexIoAtomicTest, LoadErrorsCarryHeadContext) {
  MemPager pager;
  BufferPool pool(&pager, 16);
  PageStreamWriter w(&pool);
  ASSERT_TRUE(w.WriteValue<uint64_t>(0xbadbadbadULL).ok());  // wrong magic
  auto head = w.Finish();
  ASSERT_TRUE(head.ok());
  PointSet ps(2, 0);
  auto loaded = IndexIo::LoadKdTree(&pool, *head, &ps);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("LoadKdTree"), std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("head=" + std::to_string(*head)),
            std::string::npos)
      << loaded.status().message();
}

}  // namespace
}  // namespace mds
