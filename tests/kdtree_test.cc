#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "core/kdtree.h"

namespace mds {
namespace {

PointSet RandomPoints(size_t n, size_t d, uint64_t seed,
                      bool clustered = false) {
  Rng rng(seed);
  PointSet ps(d, 0);
  ps.Reserve(n);
  std::vector<double> p(d);
  for (size_t i = 0; i < n; ++i) {
    if (clustered && rng.NextDouble() < 0.7) {
      // Two dense Gaussian blobs plus background: the non-uniform regime
      // the paper targets.
      double cx = rng.NextDouble() < 0.5 ? -2.0 : 3.0;
      for (size_t j = 0; j < d; ++j) {
        p[j] = cx + 0.3 * rng.NextGaussian();
      }
    } else {
      for (size_t j = 0; j < d; ++j) p[j] = rng.NextUniform(-5, 5);
    }
    ps.Append(p.data());
  }
  return ps;
}

std::vector<uint64_t> BruteForcePolyQuery(const PointSet& points,
                                          const Polyhedron& poly) {
  std::vector<uint64_t> out;
  for (uint64_t i = 0; i < points.size(); ++i) {
    if (poly.Contains(points.point(i))) out.push_back(i);
  }
  return out;
}

TEST(KdTreeTest, BuildInvariants) {
  PointSet ps = RandomPoints(10000, 3, 1);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  // The paper's sizing: #leaves ~ sqrt(N), here next power of two of 100.
  EXPECT_EQ(tree->num_leaves(), 128u);
  EXPECT_EQ(tree->num_levels(), 8u);  // 2^7 leaves -> 8 levels
  EXPECT_EQ(tree->nodes().size(), 2u * 128 - 1);
  EXPECT_EQ(tree->clustered_order().size(), 10000u);

  // Clustered order is a permutation.
  std::vector<uint64_t> sorted = tree->clustered_order();
  std::sort(sorted.begin(), sorted.end());
  for (uint64_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);

  // Leaf row ranges partition [0, N).
  uint64_t expect_begin = 0;
  for (uint32_t l = 0; l < tree->num_leaves(); ++l) {
    const auto& leaf = tree->leaf(l);
    EXPECT_EQ(leaf.row_begin, expect_begin);
    EXPECT_GT(leaf.row_end, leaf.row_begin);
    expect_begin = leaf.row_end;
  }
  EXPECT_EQ(expect_begin, 10000u);

  // Balanced: leaf sizes within 1 of each other.
  uint64_t min_size = UINT64_MAX, max_size = 0;
  for (uint32_t l = 0; l < tree->num_leaves(); ++l) {
    uint64_t size = tree->leaf(l).row_end - tree->leaf(l).row_begin;
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(KdTreeTest, PostOrderNumberingInvariant) {
  PointSet ps = RandomPoints(3000, 2, 3);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  // Post-order ids are a permutation of [0, num_nodes).
  std::set<uint32_t> ids;
  for (const auto& node : tree->nodes()) ids.insert(node.post_order);
  EXPECT_EQ(ids.size(), tree->nodes().size());
  EXPECT_EQ(*ids.rbegin(), tree->nodes().size() - 1);

  // The BETWEEN invariant: every subtree's leaves form the contiguous
  // ordinal interval [first_leaf, last_leaf], children adjacent, and the
  // parent's post-order is larger than all its descendants'.
  for (const auto& node : tree->nodes()) {
    if (node.split_dim < 0) {
      EXPECT_EQ(node.first_leaf, node.last_leaf);
      continue;
    }
    const auto& l = tree->nodes()[node.left];
    const auto& r = tree->nodes()[node.right];
    EXPECT_EQ(node.first_leaf, l.first_leaf);
    EXPECT_EQ(node.last_leaf, r.last_leaf);
    EXPECT_EQ(l.last_leaf + 1, r.first_leaf);
    EXPECT_GT(node.post_order, l.post_order);
    EXPECT_GT(node.post_order, r.post_order);
    // Row ranges concatenate.
    EXPECT_EQ(node.row_begin, l.row_begin);
    EXPECT_EQ(l.row_end, r.row_begin);
    EXPECT_EQ(node.row_end, r.row_end);
  }
}

TEST(KdTreeTest, RegionsTileAndBoundsAreTight) {
  PointSet ps = RandomPoints(5000, 3, 5, /*clustered=*/true);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  for (const auto& node : tree->nodes()) {
    // Every point of the node is inside both its region and tight bounds.
    for (uint64_t r = node.row_begin; r < node.row_end; ++r) {
      const float* p = ps.point(tree->clustered_order()[r]);
      EXPECT_TRUE(node.region.Contains(p));
      EXPECT_TRUE(node.bounds.Contains(p));
    }
    // Tight bounds within region.
    EXPECT_TRUE(node.region.ContainsBox(node.bounds));
  }
}

TEST(KdTreeTest, FindLeafConsistent) {
  PointSet ps = RandomPoints(2000, 3, 7);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  // Every data point locates to a leaf whose (closed) region contains it;
  // unless the point sits exactly on a split plane, that leaf also stores
  // the point's row. (Points on a split plane may be stored in the sibling
  // — regions are closed on both sides there — which is fine for every
  // consumer of FindLeaf.)
  for (uint64_t i = 0; i < ps.size(); i += 17) {
    uint32_t ordinal = tree->FindLeaf(ps.point(i));
    const auto& leaf = tree->leaf(ordinal);
    EXPECT_TRUE(leaf.region.Contains(ps.point(i))) << "point " << i;
    bool on_boundary = false;
    for (size_t j = 0; j < 3; ++j) {
      double v = ps.coord(i, j);
      if (v == leaf.region.lo(j) || v == leaf.region.hi(j)) {
        on_boundary = true;
      }
    }
    bool found = false;
    for (uint64_t r = leaf.row_begin; r < leaf.row_end; ++r) {
      if (tree->clustered_order()[r] == i) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found || on_boundary) << "point " << i;
  }
}

TEST(KdTreeTest, SinglePointAndTinyTrees) {
  PointSet one(2, 1);
  one.set_coord(0, 0, 1.0f);
  one.set_coord(0, 1, 2.0f);
  auto tree = KdTreeIndex::Build(&one);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_leaves(), 1u);
  std::vector<uint64_t> out;
  tree->QueryBox(Box({0, 0}, {2, 3}), &out);
  EXPECT_EQ(out.size(), 1u);

  PointSet empty(2, 0);
  EXPECT_FALSE(KdTreeIndex::Build(&empty).ok());
}

TEST(KdTreeTest, DuplicatePointsHandled) {
  PointSet ps(2, 0);
  float p[2] = {1.0f, 1.0f};
  for (int i = 0; i < 1000; ++i) ps.Append(p);
  float q[2] = {2.0f, 2.0f};
  for (int i = 0; i < 10; ++i) ps.Append(q);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  std::vector<uint64_t> out;
  tree->QueryBox(Box({0.5, 0.5}, {1.5, 1.5}), &out);
  EXPECT_EQ(out.size(), 1000u);
  out.clear();
  tree->QueryBox(Box({1.5, 1.5}, {2.5, 2.5}), &out);
  EXPECT_EQ(out.size(), 10u);
}

struct QueryCase {
  size_t dim;
  size_t n;
  bool clustered;
  bool max_spread;
};

class KdQueryPropertyTest : public ::testing::TestWithParam<QueryCase> {};

TEST_P(KdQueryPropertyTest, MatchesBruteForce) {
  const QueryCase& tc = GetParam();
  PointSet ps = RandomPoints(tc.n, tc.dim, 11 + tc.n, tc.clustered);
  KdTreeConfig config;
  config.max_spread_split = tc.max_spread;
  auto tree = KdTreeIndex::Build(&ps, config);
  ASSERT_TRUE(tree.ok());
  Rng rng(13);
  for (int trial = 0; trial < 25; ++trial) {
    // Alternate box queries and ball-approximation polyhedra across a wide
    // range of selectivities.
    Polyhedron poly(tc.dim);
    if (trial % 2 == 0) {
      std::vector<double> lo(tc.dim), hi(tc.dim);
      for (size_t j = 0; j < tc.dim; ++j) {
        double a = rng.NextUniform(-6, 6);
        lo[j] = a;
        hi[j] = a + rng.NextUniform(0.1, 8.0);
      }
      poly = Polyhedron::FromBox(Box(lo, hi));
    } else {
      std::vector<double> center(tc.dim);
      for (auto& c : center) c = rng.NextUniform(-4, 4);
      poly = Polyhedron::BallApproximation(center, rng.NextUniform(0.3, 4.0),
                                           3 * tc.dim + trial);
    }
    std::vector<uint64_t> got;
    KdQueryStats stats;
    tree->QueryPolyhedron(poly, &got, &stats);
    std::vector<uint64_t> expect = BruteForcePolyQuery(ps, poly);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect) << "dim=" << tc.dim << " trial=" << trial;
    EXPECT_EQ(stats.points_emitted, expect.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, KdQueryPropertyTest,
    ::testing::Values(QueryCase{1, 500, false, false},
                      QueryCase{2, 2000, false, false},
                      QueryCase{2, 2000, true, false},
                      QueryCase{3, 5000, true, false},
                      QueryCase{3, 5000, true, true},
                      QueryCase{5, 3000, true, false},
                      QueryCase{5, 3000, false, true}));

TEST(KdTreeTest, PlanCoversExactlyQueryRows) {
  PointSet ps = RandomPoints(8000, 3, 17, true);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  std::vector<double> center = {0, 0, 0};
  Polyhedron poly = Polyhedron::BallApproximation(center, 3.0, 12);
  std::vector<std::pair<uint64_t, uint64_t>> full, partial;
  tree->PlanPolyhedron(poly, &full, &partial);
  // Full ranges: every row qualifies. Partial: mixed. Union of qualifying
  // rows equals the brute-force result.
  std::set<uint64_t> got;
  for (auto [b, e] : full) {
    for (uint64_t r = b; r < e; ++r) {
      uint64_t id = tree->clustered_order()[r];
      EXPECT_TRUE(poly.Contains(ps.point(id)));
      got.insert(id);
    }
  }
  for (auto [b, e] : partial) {
    for (uint64_t r = b; r < e; ++r) {
      uint64_t id = tree->clustered_order()[r];
      if (poly.Contains(ps.point(id))) got.insert(id);
    }
  }
  std::vector<uint64_t> expect = BruteForcePolyQuery(ps, poly);
  EXPECT_EQ(got.size(), expect.size());
}

TEST(KdTreeTest, LowSelectivityTouchesFewLeaves) {
  // The Figure 5 regime: tiny queries should visit a small fraction of the
  // tree.
  PointSet ps = RandomPoints(50000, 5, 19, true);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  Box tiny({-2.1, -2.1, -2.1, -2.1, -2.1}, {-1.9, -1.9, -1.9, -1.9, -1.9});
  std::vector<uint64_t> out;
  KdQueryStats stats;
  tree->QueryBox(tiny, &out, &stats);
  uint64_t leaves_touched = stats.leaves_full + stats.leaves_partial;
  EXPECT_LT(leaves_touched, tree->num_leaves() / 4);
  EXPECT_LT(stats.points_tested, ps.size() / 4);
}

TEST(KdTreeTest, ExplicitLeafCountRespected) {
  PointSet ps = RandomPoints(4096, 2, 23);
  KdTreeConfig config;
  config.num_leaves = 64;
  auto tree = KdTreeIndex::Build(&ps, config);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_leaves(), 64u);
  for (uint32_t l = 0; l < 64; ++l) {
    EXPECT_EQ(tree->leaf(l).row_end - tree->leaf(l).row_begin, 64u);
  }
}

TEST(KdTreeTest, MaxSpreadReducesElongation) {
  // Data stretched 100x along one axis: round-robin splitting leaves
  // elongated boxes, max-spread splitting cuts the long axis first. The
  // Figure 15 observation and its [8] remedy.
  Rng rng(29);
  PointSet ps(3, 0);
  for (int i = 0; i < 8192; ++i) {
    float p[3] = {static_cast<float>(100.0 * rng.NextGaussian()),
                  static_cast<float>(rng.NextGaussian()),
                  static_cast<float>(rng.NextGaussian())};
    ps.Append(p);
  }
  auto aspect = [&](const KdTreeIndex& tree) {
    double total = 0.0;
    for (uint32_t l = 0; l < tree.num_leaves(); ++l) {
      const Box& b = tree.leaf(l).bounds;
      double longest = 0, shortest = 1e300;
      for (size_t j = 0; j < 3; ++j) {
        double ext = b.hi(j) - b.lo(j);
        longest = std::max(longest, ext);
        shortest = std::min(shortest, ext);
      }
      total += longest / std::max(shortest, 1e-9);
    }
    return total / tree.num_leaves();
  };
  KdTreeConfig round_robin;
  KdTreeConfig max_spread;
  max_spread.max_spread_split = true;
  auto t1 = KdTreeIndex::Build(&ps, round_robin);
  auto t2 = KdTreeIndex::Build(&ps, max_spread);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_LT(aspect(*t2), aspect(*t1));
}

}  // namespace
}  // namespace mds
