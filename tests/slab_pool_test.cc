// SlabPool: the reply-payload slice allocator behind the zero-copy serve
// path. These tests pin the size-class geometry, the refcount lifecycle
// (a slice shared by a cache entry and a socket write queue recycles only
// on the last drop), cross-thread release, the oversize heap fallback and
// the stats the server exports on the wire.

#include "common/slab_pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

namespace mds {
namespace {

TEST(SlabPool, ZeroByteRequestYieldsNullSlice) {
  SlabPool pool;
  SlabPool::Slice s = pool.Allocate(0);
  EXPECT_FALSE(s);
  EXPECT_EQ(pool.Stats().allocations, 0u);
}

TEST(SlabPool, RoundsUpToPowerOfTwoClasses) {
  SlabPool pool;
  struct Case {
    size_t request;
    size_t expected_capacity;
  };
  const Case cases[] = {
      {1, 256},      {255, 256},    {256, 256},     {257, 512},
      {512, 512},    {1000, 1024},  {4096, 4096},   {4097, 8192},
      {65536, 65536}, {1u << 20, 1u << 20},
  };
  for (const Case& c : cases) {
    SlabPool::Slice s = pool.Allocate(c.request);
    ASSERT_TRUE(s) << c.request;
    EXPECT_EQ(s.capacity(), c.expected_capacity) << c.request;
    EXPECT_EQ(s.size(), c.request);
    // The payload is writable through the handle.
    std::memset(s.data(), 0xAB, s.size());
  }
}

TEST(SlabPool, OversizeFallsBackToHeapAndIsNeverRecycled) {
  SlabPool pool;
  const size_t big = SlabPool::kMaxSliceBytes + 1;
  {
    SlabPool::Slice s = pool.Allocate(big);
    ASSERT_TRUE(s);
    EXPECT_EQ(s.capacity(), big);  // exact, not a class
    EXPECT_EQ(s.size(), big);
    s.data()[big - 1] = 0x5A;
    EXPECT_EQ(pool.Stats().oversize, 1u);
    EXPECT_EQ(pool.Stats().bytes_in_use, big);
  }
  EXPECT_EQ(pool.Stats().live_slices, 0u);
  SlabPool::Slice again = pool.Allocate(big);
  EXPECT_EQ(pool.Stats().recycles, 0u);  // heap fallback, no free list
  EXPECT_EQ(pool.Stats().oversize, 2u);
}

TEST(SlabPool, SetSizeWithinCapacity) {
  SlabPool pool;
  SlabPool::Slice s = pool.Allocate(10);
  EXPECT_EQ(s.size(), 10u);
  s.set_size(200);
  EXPECT_EQ(s.size(), 200u);
  EXPECT_EQ(s.capacity(), 256u);
}

TEST(SlabPool, CopySharesBytesAndLastDropRecycles) {
  SlabPool pool;
  SlabPool::Slice a = pool.Allocate(100);
  std::memset(a.data(), 0x42, a.size());
  const uint8_t* payload = a.data();

  SlabPool::Slice b = a;  // refcount 2
  EXPECT_EQ(b.data(), payload);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(pool.Stats().live_slices, 1u);  // one slice, two handles

  a.Reset();
  EXPECT_FALSE(a);
  // The surviving handle still owns live bytes.
  EXPECT_EQ(pool.Stats().live_slices, 1u);
  EXPECT_EQ(b.data()[50], 0x42);

  b.Reset();
  EXPECT_EQ(pool.Stats().live_slices, 0u);
  EXPECT_EQ(pool.Stats().bytes_in_use, 0u);

  // The freed slice recycles: same class comes back from the free list
  // (same thread -> same stripe).
  SlabPool::Slice c = pool.Allocate(100);
  EXPECT_GE(pool.Stats().recycles, 1u);
}

TEST(SlabPool, MoveTransfersOwnershipWithoutRefcountChurn) {
  SlabPool pool;
  SlabPool::Slice a = pool.Allocate(300);
  const uint8_t* payload = a.data();
  SlabPool::Slice b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): post-move null is API
  EXPECT_EQ(b.data(), payload);
  EXPECT_EQ(pool.Stats().live_slices, 1u);
  b = SlabPool::Slice();
  EXPECT_EQ(pool.Stats().live_slices, 0u);
}

TEST(SlabPool, CrossThreadReleaseReturnsSliceToOwningStripe) {
  SlabPool pool;
  SlabPool::Slice s = pool.Allocate(1024);
  std::memset(s.data(), 7, s.size());
  // The I/O-thread pattern: the slice is handed to another thread (the
  // write queue's flush) which drops the last reference there.
  std::thread t([moved = std::move(s)]() mutable { moved.Reset(); });
  t.join();
  EXPECT_EQ(pool.Stats().live_slices, 0u);
  // The recycled slice is reachable again from the allocating thread.
  SlabPool::Slice again = pool.Allocate(1024);
  ASSERT_TRUE(again);
  EXPECT_GE(pool.Stats().recycles, 1u);
}

TEST(SlabPool, DistinctLiveSlicesDoNotAlias) {
  SlabPool pool;
  std::vector<SlabPool::Slice> live;
  std::set<const uint8_t*> starts;
  for (int i = 0; i < 64; ++i) {
    SlabPool::Slice s = pool.Allocate(256);
    std::memset(s.data(), i, s.size());
    starts.insert(s.data());
    live.push_back(std::move(s));
  }
  EXPECT_EQ(starts.size(), live.size());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(live[i].data()[0], i);
    EXPECT_EQ(live[i].data()[255], i);
  }
  EXPECT_EQ(pool.Stats().live_slices, 64u);
  EXPECT_EQ(pool.Stats().bytes_in_use, 64u * 256u);
}

TEST(SlabPool, StatsSnapshotCounts) {
  SlabPool pool;
  const SlabPool::StatsSnapshot before = pool.Stats();
  EXPECT_EQ(before.allocations, 0u);

  { SlabPool::Slice a = pool.Allocate(500); }
  { SlabPool::Slice b = pool.Allocate(500); }  // recycled from a's release
  SlabPool::Slice c = pool.Allocate(2000);

  const SlabPool::StatsSnapshot after = pool.Stats();
  EXPECT_EQ(after.allocations, 3u);
  EXPECT_GE(after.recycles, 1u);
  EXPECT_EQ(after.live_slices, 1u);
  EXPECT_EQ(after.bytes_in_use, 2048u);
}

TEST(SlabPool, GlobalIsASingleton) {
  SlabPool& a = SlabPool::Global();
  SlabPool& b = SlabPool::Global();
  EXPECT_EQ(&a, &b);
  SlabPool::Slice s = a.Allocate(64);
  EXPECT_TRUE(s);
}

TEST(SlabPool, ConcurrentAllocateReleaseIsCoherent) {
  SlabPool pool(4);
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      uint64_t x = 0x9E3779B97F4A7C15ull + static_cast<uint64_t>(t);
      auto next = [&x] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
      };
      std::vector<SlabPool::Slice> held;
      for (int i = 0; i < kIters; ++i) {
        const size_t n = 1 + next() % 5000;
        SlabPool::Slice s = pool.Allocate(n);
        ASSERT_TRUE(s);
        ASSERT_GE(s.capacity(), n);
        s.data()[0] = static_cast<uint8_t>(t);
        s.data()[n - 1] = static_cast<uint8_t>(i);
        if (next() % 3 == 0) held.push_back(std::move(s));
        if (held.size() > 16) held.erase(held.begin());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(pool.Stats().live_slices, 0u);
  EXPECT_EQ(pool.Stats().bytes_in_use, 0u);
  EXPECT_EQ(pool.Stats().allocations,
            static_cast<uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace mds
