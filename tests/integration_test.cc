#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/basin_spanning_tree.h"
#include "common/rng.h"
#include "core/point_table.h"
#include "core/query_engine.h"
#include "linalg/pca.h"
#include "photoz/knn_photoz.h"
#include "sdss/catalog.h"
#include "sdss/magnitude_table.h"
#include "storage/pager.h"

namespace mds {
namespace {

/// End-to-end: catalog -> three indexes -> the same polyhedron query gives
/// identical answers on every access path, in memory and through storage.
TEST(IntegrationTest, AllIndexPathsAgreeOnPolyhedronQueries) {
  CatalogConfig config;
  config.num_objects = 30000;
  config.seed = 99;
  Catalog cat = GenerateCatalog(config);
  const PointSet& colors = cat.colors;

  auto tree = KdTreeIndex::Build(&colors);
  ASSERT_TRUE(tree.ok());
  VoronoiIndexConfig vconfig;
  vconfig.num_seeds = 128;
  auto voronoi = VoronoiIndex::Build(&colors, vconfig);
  ASSERT_TRUE(voronoi.ok());

  MemPager pager;
  BufferPool pool(&pager, 8192);
  auto kd_table = MaterializePointTable(&pool, colors, tree->clustered_order());
  auto vo_table =
      MaterializePointTable(&pool, colors, voronoi->clustered_order());
  auto heap_table = MaterializePointTable(&pool, colors, {});
  ASSERT_TRUE(kd_table.ok());
  ASSERT_TRUE(vo_table.ok());
  ASSERT_TRUE(heap_table.ok());

  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    // Query polyhedra shaped like the Figure 2 cuts: magnitude and color
    // constraints (differences of magnitudes are linear halfspaces).
    Polyhedron poly(kNumBands);
    // r < threshold.
    std::vector<double> r_cut(kNumBands, 0.0);
    r_cut[2] = 1.0;
    poly.AddHalfspace(r_cut, rng.NextUniform(18.0, 21.0));
    // g - r < c1.
    std::vector<double> gr(kNumBands, 0.0);
    gr[1] = 1.0;
    gr[2] = -1.0;
    poly.AddHalfspace(gr, rng.NextUniform(0.5, 1.5));
    // u - g > c2  <=>  g - u <= -c2.
    std::vector<double> ug(kNumBands, 0.0);
    ug[0] = -1.0;
    ug[1] = 1.0;
    poly.AddHalfspace(ug, -rng.NextUniform(0.2, 1.0));

    std::vector<int64_t> expect;
    for (uint64_t i = 0; i < colors.size(); ++i) {
      if (poly.Contains(colors.point(i))) {
        expect.push_back(static_cast<int64_t>(i));
      }
    }

    // In-memory paths.
    std::vector<uint64_t> kd_mem, vo_mem;
    tree->QueryPolyhedron(poly, &kd_mem);
    voronoi->QueryPolyhedron(poly, &vo_mem);
    std::sort(kd_mem.begin(), kd_mem.end());
    std::sort(vo_mem.begin(), vo_mem.end());
    std::vector<int64_t> kd_mem_i(kd_mem.begin(), kd_mem.end());
    std::vector<int64_t> vo_mem_i(vo_mem.begin(), vo_mem.end());
    EXPECT_EQ(kd_mem_i, expect);
    EXPECT_EQ(vo_mem_i, expect);

    // Storage paths.
    PointTableBinding kd_binding = BindPointTable(&*kd_table, kNumBands);
    PointTableBinding vo_binding = BindPointTable(&*vo_table, kNumBands);
    PointTableBinding heap_binding = BindPointTable(&*heap_table, kNumBands);
    auto kd_res = StorageQueryExecutor::ExecuteKdPlan(kd_binding, *tree, poly);
    auto vo_res =
        StorageQueryExecutor::ExecuteVoronoi(vo_binding, *voronoi, poly);
    auto scan_res = StorageQueryExecutor::FullScan(heap_binding, poly);
    ASSERT_TRUE(kd_res.ok());
    ASSERT_TRUE(vo_res.ok());
    ASSERT_TRUE(scan_res.ok());
    auto sorted = [](std::vector<int64_t> v) {
      std::sort(v.begin(), v.end());
      return v;
    };
    EXPECT_EQ(sorted(kd_res->objids), expect);
    EXPECT_EQ(sorted(vo_res->objids), expect);
    EXPECT_EQ(sorted(scan_res->objids), expect);
  }
}

/// The §4 clustering pipeline on a labeled catalog: Voronoi densities ->
/// BST -> majority classification. The paper reports 92% on 100K objects;
/// we require >= 80% on a smaller catalog (exact figures are generator-
/// dependent; the bench reports the full-size number).
TEST(IntegrationTest, BstClassificationAccuracy) {
  CatalogConfig config;
  config.num_objects = 40000;
  config.seed = 17;
  // Exclude outliers: the paper's 100K comparison set has a priori classes.
  Catalog cat = GenerateCatalog(config);

  VoronoiIndexConfig vconfig;
  vconfig.num_seeds = 800;
  vconfig.seed = 5;
  auto index = VoronoiIndex::Build(&cat.colors, vconfig);
  ASSERT_TRUE(index.ok());
  Rng rng(3);
  std::vector<double> density = index->EstimateCellDensities(300000, rng);
  auto bst = BuildBasinSpanningTree(index->seed_graph(), density);
  ASSERT_TRUE(bst.ok());

  // Score on objects with a-priori spectral classes (the paper's 100K
  // comparison subset), i.e. not the outlier artifacts.
  std::vector<uint32_t> point_cluster;
  std::vector<uint32_t> point_label;
  for (uint64_t i = 0; i < cat.size(); ++i) {
    if (cat.classes[i] == SpectralClass::kOutlier) continue;
    point_cluster.push_back(bst->cluster[index->tag(i)]);
    point_label.push_back(static_cast<uint32_t>(cat.classes[i]));
  }
  auto eval = EvaluateClusterClassification(point_cluster, point_label,
                                            bst->num_clusters());
  ASSERT_TRUE(eval.ok());
  // Paper: 92% on 100K real objects. Our synthetic color space has more
  // class overlap (the per-cell majority oracle itself sits near 88%);
  // the bench (E10) reports the exact measured value.
  EXPECT_GT(eval->accuracy, 0.75);
}

/// The §4.1 pipeline wired through the magnitude table in storage: pull
/// the reference set out of the table, build the estimator, estimate for
/// stored unknowns.
TEST(IntegrationTest, PhotoZThroughStorage) {
  CatalogConfig config;
  config.num_objects = 20000;
  config.seed = 23;
  config.star_fraction = 0.0;
  config.galaxy_fraction = 1.0;
  config.quasar_fraction = 0.0;
  Catalog cat = GenerateCatalog(config);

  MemPager pager;
  BufferPool pool(&pager, 4096);
  auto table = MaterializeMagnitudeTable(&pool, cat, {});
  ASSERT_TRUE(table.ok());

  // Reference set: every 10th row, read back from the table.
  PointSet ref_colors(kNumBands, 0);
  std::vector<float> ref_z;
  float mags[kNumBands];
  ASSERT_TRUE(table
                  ->Scan([&](uint64_t row_id, RowRef ref) {
                    if (row_id % 10 != 0) return;
                    ReadMagnitudes(ref, mags);
                    ref_colors.Append(mags);
                    ref_z.push_back(ref.GetFloat32(kColRedshift));
                  })
                  .ok());
  auto est = KnnPhotoZEstimator::Build(&ref_colors, &ref_z);
  ASSERT_TRUE(est.ok());

  PhotoZScorer scorer;
  ASSERT_TRUE(table
                  ->Scan([&](uint64_t row_id, RowRef ref) {
                    if (row_id % 10 == 0 || row_id % 7 != 0) return;
                    ReadMagnitudes(ref, mags);
                    scorer.Add(est->Estimate(mags).redshift,
                               ref.GetFloat32(kColRedshift));
                  })
                  .ok());
  PhotoZEvaluation eval = scorer.Finish();
  EXPECT_GT(eval.count, 1000u);
  EXPECT_LT(eval.rms_error, 0.1);
}

/// §3.1/§5: the visualization's "first three principal components" path —
/// PCA of the magnitude space feeds the layered grid.
TEST(IntegrationTest, PcaProjectionFeedsGrid) {
  CatalogConfig config;
  config.num_objects = 30000;
  config.seed = 29;
  Catalog cat = GenerateCatalog(config);
  Matrix data(cat.size(), kNumBands);
  for (uint64_t i = 0; i < cat.size(); ++i) {
    const float* p = cat.colors.point(i);
    for (size_t j = 0; j < kNumBands; ++j) data(i, j) = p[j];
  }
  auto pca = Pca::Fit(data, 3);
  ASSERT_TRUE(pca.ok());
  PointSet projected(3, 0);
  projected.Reserve(cat.size());
  double out[3];
  for (uint64_t i = 0; i < cat.size(); ++i) {
    pca->TransformPoint(data.RowPtr(i), 3, out);
    projected.Append(out);
  }
  auto grid = LayeredGridIndex::Build(&projected);
  ASSERT_TRUE(grid.ok());
  std::vector<uint64_t> ids;
  ASSERT_TRUE(
      grid->SampleQuery(grid->bounding_box(), 5000, &ids).ok());
  EXPECT_GE(ids.size(), 5000u);
}

}  // namespace
}  // namespace mds
