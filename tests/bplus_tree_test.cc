#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "storage/bplus_tree.h"

namespace mds {
namespace {

std::vector<uint64_t> Collect(const BPlusTree& tree, int64_t lo, int64_t hi) {
  std::vector<uint64_t> out;
  EXPECT_TRUE(tree.RangeLookup(lo, hi,
                               [&](int64_t, uint64_t v) {
                                 out.push_back(v);
                                 return true;
                               })
                  .ok());
  return out;
}

TEST(BPlusTreeTest, EmptyTree) {
  MemPager pager;
  BufferPool pool(&pager, 64);
  auto tree = BPlusTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_entries(), 0u);
  EXPECT_TRUE(Collect(*tree, INT64_MIN, INT64_MAX).empty());
}

TEST(BPlusTreeTest, InsertAndLookupSmall) {
  MemPager pager;
  BufferPool pool(&pager, 64);
  auto tree = BPlusTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  for (int64_t k : {5, 1, 9, 3, 7}) {
    ASSERT_TRUE(tree->Insert(k, static_cast<uint64_t>(k * 10)).ok());
  }
  auto vals = tree->Lookup(3);
  ASSERT_TRUE(vals.ok());
  ASSERT_EQ(vals->size(), 1u);
  EXPECT_EQ((*vals)[0], 30u);
  EXPECT_TRUE(tree->Lookup(4)->empty());
  auto range = Collect(*tree, 3, 7);
  EXPECT_EQ(range, (std::vector<uint64_t>{30, 50, 70}));
}

TEST(BPlusTreeTest, DuplicateKeys) {
  MemPager pager;
  BufferPool pool(&pager, 64);
  auto tree = BPlusTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  for (uint64_t v = 0; v < 100; ++v) {
    ASSERT_TRUE(tree->Insert(42, v).ok());
  }
  ASSERT_TRUE(tree->Insert(41, 1000).ok());
  ASSERT_TRUE(tree->Insert(43, 2000).ok());
  auto vals = tree->Lookup(42);
  ASSERT_TRUE(vals.ok());
  EXPECT_EQ(vals->size(), 100u);
}

class BPlusTreeRandomTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BPlusTreeRandomTest, MatchesReferenceMultimap) {
  const size_t n = GetParam();
  MemPager pager;
  BufferPool pool(&pager, 4096);
  auto tree = BPlusTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  Rng rng(1000 + n);
  std::multimap<int64_t, uint64_t> reference;
  for (size_t i = 0; i < n; ++i) {
    int64_t key = static_cast<int64_t>(rng.NextBounded(n / 2 + 1));
    ASSERT_TRUE(tree->Insert(key, i).ok());
    reference.emplace(key, i);
  }
  EXPECT_EQ(tree->num_entries(), n);
  // Point lookups.
  for (int64_t key = 0; key < static_cast<int64_t>(n / 2 + 1); key += 7) {
    auto vals = tree->Lookup(key);
    ASSERT_TRUE(vals.ok());
    auto [lo, hi] = reference.equal_range(key);
    std::vector<uint64_t> expect;
    for (auto it = lo; it != hi; ++it) expect.push_back(it->second);
    std::sort(vals->begin(), vals->end());
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(*vals, expect) << "key " << key;
  }
  // Range lookups.
  for (int trial = 0; trial < 20; ++trial) {
    int64_t a = static_cast<int64_t>(rng.NextBounded(n / 2 + 1));
    int64_t b = static_cast<int64_t>(rng.NextBounded(n / 2 + 1));
    if (a > b) std::swap(a, b);
    auto got = Collect(*tree, a, b);
    std::vector<uint64_t> expect;
    for (auto it = reference.lower_bound(a);
         it != reference.end() && it->first <= b; ++it) {
      expect.push_back(it->second);
    }
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(got, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BPlusTreeRandomTest,
                         ::testing::Values(10, 100, 1000, 20000));

TEST(BPlusTreeTest, BulkLoadMatchesInserts) {
  MemPager pager;
  BufferPool pool(&pager, 4096);
  Rng rng(31);
  const size_t n = 30000;
  std::vector<std::pair<int64_t, uint64_t>> pairs;
  for (size_t i = 0; i < n; ++i) {
    pairs.emplace_back(static_cast<int64_t>(rng.NextBounded(5000)), i);
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  auto tree = BPlusTree::BulkLoad(&pool, pairs);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_entries(), n);
  EXPECT_GE(tree->height(), 2u);

  // Key-ordered full scan matches.
  std::vector<std::pair<int64_t, uint64_t>> scanned;
  ASSERT_TRUE(tree->RangeLookup(INT64_MIN, INT64_MAX,
                                [&](int64_t k, uint64_t v) {
                                  scanned.emplace_back(k, v);
                                  return true;
                                })
                  .ok());
  ASSERT_EQ(scanned.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(scanned[i].first, pairs[i].first);
  }
  // Random lookups against reference.
  std::multimap<int64_t, uint64_t> reference(pairs.begin(), pairs.end());
  for (int64_t key = 0; key < 5000; key += 137) {
    auto vals = tree->Lookup(key);
    ASSERT_TRUE(vals.ok());
    EXPECT_EQ(vals->size(), reference.count(key)) << key;
  }
}

TEST(BPlusTreeTest, BulkLoadRejectsUnsorted) {
  MemPager pager;
  BufferPool pool(&pager, 64);
  auto tree = BPlusTree::BulkLoad(&pool, {{3, 0}, {1, 1}});
  EXPECT_EQ(tree.status().code(), StatusCode::kInvalidArgument);
}

TEST(BPlusTreeTest, BulkLoadThenInsertMore) {
  MemPager pager;
  BufferPool pool(&pager, 1024);
  std::vector<std::pair<int64_t, uint64_t>> pairs;
  for (int64_t i = 0; i < 5000; ++i) pairs.emplace_back(i * 2, i);
  auto tree = BPlusTree::BulkLoad(&pool, pairs);
  ASSERT_TRUE(tree.ok());
  // Insert odd keys afterwards.
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree->Insert(i * 2 + 1, 100000 + i).ok());
  }
  auto got = Collect(*tree, 0, 19);
  EXPECT_EQ(got.size(), 20u);
  // Early termination of the callback.
  size_t count = 0;
  ASSERT_TRUE(tree->RangeLookup(0, INT64_MAX,
                                [&](int64_t, uint64_t) {
                                  return ++count < 10;
                                })
                  .ok());
  EXPECT_EQ(count, 10u);
}

TEST(BPlusTreeTest, RangeBoundaryDuplicatesAcrossLeaves) {
  // Force many duplicates so runs straddle leaf boundaries; all must be
  // found by both Lookup and RangeLookup.
  MemPager pager;
  BufferPool pool(&pager, 4096);
  auto tree = BPlusTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  const size_t dup = BPlusTree::kLeafCapacity * 3;
  for (size_t i = 0; i < dup; ++i) {
    ASSERT_TRUE(tree->Insert(7, i).ok());
  }
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree->Insert(6, 100000 + i).ok());
    ASSERT_TRUE(tree->Insert(8, 200000 + i).ok());
  }
  auto vals = tree->Lookup(7);
  ASSERT_TRUE(vals.ok());
  EXPECT_EQ(vals->size(), dup);
  EXPECT_EQ(Collect(*tree, 6, 6).size(), 100u);
  EXPECT_EQ(Collect(*tree, 6, 8).size(), dup + 200);
}

}  // namespace
}  // namespace mds
