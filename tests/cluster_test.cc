#include <gtest/gtest.h>

#include <cmath>

#include "cluster/basin_spanning_tree.h"

namespace mds {
namespace {

/// Builds a 1-D chain graph 0-1-2-...-(n-1).
std::vector<std::vector<uint32_t>> ChainGraph(uint32_t n) {
  std::vector<std::vector<uint32_t>> graph(n);
  for (uint32_t i = 0; i + 1 < n; ++i) {
    graph[i].push_back(i + 1);
    graph[i + 1].push_back(i);
  }
  return graph;
}

TEST(BstTest, TwoPeaksOnAChain) {
  // Density: two bumps with a valley between them.
  const uint32_t n = 11;
  std::vector<double> density = {1, 3, 5, 3, 1, 0.5, 1, 4, 6, 4, 1};
  auto bst = BuildBasinSpanningTree(ChainGraph(n), density);
  ASSERT_TRUE(bst.ok());
  EXPECT_EQ(bst->num_clusters(), 2u);
  // Peaks are cells 2 and 8.
  EXPECT_EQ(bst->parent[2], 2u);
  EXPECT_EQ(bst->parent[8], 8u);
  // Left bump drains to peak 2, right bump to peak 8.
  for (uint32_t c : {0u, 1u, 2u, 3u, 4u}) {
    EXPECT_EQ(bst->cluster[c], bst->cluster[2]) << c;
  }
  for (uint32_t c : {7u, 8u, 9u, 10u}) {
    EXPECT_EQ(bst->cluster[c], bst->cluster[8]) << c;
  }
  EXPECT_NE(bst->cluster[2], bst->cluster[8]);
}

TEST(BstTest, SinglePeak) {
  std::vector<double> density = {1, 2, 3, 4, 5};
  auto bst = BuildBasinSpanningTree(ChainGraph(5), density);
  ASSERT_TRUE(bst.ok());
  EXPECT_EQ(bst->num_clusters(), 1u);
  for (uint32_t c = 0; c < 5; ++c) EXPECT_EQ(bst->cluster[c], 0u);
  EXPECT_EQ(bst->peaks[0], 4u);
}

TEST(BstTest, PlateauIsAcyclic) {
  // All equal densities: id tie-break must produce a single basin without
  // infinite loops.
  std::vector<double> density(20, 1.0);
  auto bst = BuildBasinSpanningTree(ChainGraph(20), density);
  ASSERT_TRUE(bst.ok());
  EXPECT_EQ(bst->num_clusters(), 1u);
  EXPECT_EQ(bst->peaks[0], 0u);  // smallest id wins ties
}

TEST(BstTest, IsolatedVerticesAreOwnPeaks) {
  std::vector<std::vector<uint32_t>> graph(3);  // no edges
  std::vector<double> density = {1, 2, 3};
  auto bst = BuildBasinSpanningTree(graph, density);
  ASSERT_TRUE(bst.ok());
  EXPECT_EQ(bst->num_clusters(), 3u);
}

TEST(BstTest, GridWithFourBlobs) {
  // 20x20 grid graph, density = sum of 4 Gaussian bumps; expect exactly 4
  // clusters and correct basin assignment near the bump centers.
  const uint32_t gs = 20;
  const uint32_t n = gs * gs;
  std::vector<std::vector<uint32_t>> graph(n);
  auto id = [&](uint32_t x, uint32_t y) { return y * gs + x; };
  for (uint32_t y = 0; y < gs; ++y) {
    for (uint32_t x = 0; x < gs; ++x) {
      if (x + 1 < gs) {
        graph[id(x, y)].push_back(id(x + 1, y));
        graph[id(x + 1, y)].push_back(id(x, y));
      }
      if (y + 1 < gs) {
        graph[id(x, y)].push_back(id(x, y + 1));
        graph[id(x, y + 1)].push_back(id(x, y));
      }
    }
  }
  const double centers[4][2] = {{4, 4}, {4, 15}, {15, 4}, {15, 15}};
  std::vector<double> density(n);
  for (uint32_t y = 0; y < gs; ++y) {
    for (uint32_t x = 0; x < gs; ++x) {
      double d = 0.0;
      for (const auto& c : centers) {
        double dx = x - c[0], dy = y - c[1];
        d += std::exp(-(dx * dx + dy * dy) / 8.0);
      }
      density[id(x, y)] = d;
    }
  }
  auto bst = BuildBasinSpanningTree(graph, density);
  ASSERT_TRUE(bst.ok());
  EXPECT_EQ(bst->num_clusters(), 4u);
  // The four centers land in four distinct clusters.
  std::set<uint32_t> center_clusters;
  for (const auto& c : centers) {
    center_clusters.insert(
        bst->cluster[id(static_cast<uint32_t>(c[0]),
                        static_cast<uint32_t>(c[1]))]);
  }
  EXPECT_EQ(center_clusters.size(), 4u);
}

TEST(BstTest, SizeMismatchRejected) {
  auto bst = BuildBasinSpanningTree(ChainGraph(3), {1.0, 2.0});
  EXPECT_EQ(bst.status().code(), StatusCode::kInvalidArgument);
}

TEST(BstTest, BadNeighborRejected) {
  std::vector<std::vector<uint32_t>> graph = {{5}};
  auto bst = BuildBasinSpanningTree(graph, {1.0});
  EXPECT_EQ(bst.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClusterClassificationTest, MajorityVote) {
  // Two clusters; cluster 0 mostly label 1, cluster 1 mostly label 0.
  std::vector<uint32_t> cluster = {0, 0, 0, 0, 1, 1, 1};
  std::vector<uint32_t> label = {1, 1, 1, 0, 0, 0, 1};
  auto eval = EvaluateClusterClassification(cluster, label, 2);
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->cluster_label[0], 1u);
  EXPECT_EQ(eval->cluster_label[1], 0u);
  EXPECT_NEAR(eval->accuracy, 5.0 / 7.0, 1e-12);
}

TEST(ClusterClassificationTest, PerfectClustering) {
  std::vector<uint32_t> cluster = {0, 0, 1, 1, 2, 2};
  std::vector<uint32_t> label = {7, 7, 3, 3, 5, 5};
  auto eval = EvaluateClusterClassification(cluster, label, 3);
  ASSERT_TRUE(eval.ok());
  EXPECT_DOUBLE_EQ(eval->accuracy, 1.0);
}

TEST(ClusterClassificationTest, ErrorsRejected) {
  EXPECT_FALSE(EvaluateClusterClassification({0, 1}, {0}, 2).ok());
  EXPECT_FALSE(EvaluateClusterClassification({5}, {0}, 2).ok());
}

}  // namespace
}  // namespace mds
