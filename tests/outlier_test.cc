#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/outlier.h"
#include "common/rng.h"
#include "sdss/catalog.h"

namespace mds {
namespace {

/// Dense blob + a handful of far-away planted outliers.
struct PlantedData {
  PointSet points{3, 0};
  std::vector<char> is_outlier;
};

PlantedData MakePlanted(size_t n_inliers, size_t n_outliers, uint64_t seed) {
  Rng rng(seed);
  PlantedData data;
  for (size_t i = 0; i < n_inliers; ++i) {
    float p[3];
    for (int j = 0; j < 3; ++j) {
      p[j] = static_cast<float>(0.1 * rng.NextGaussian());
    }
    data.points.Append(p);
    data.is_outlier.push_back(0);
  }
  for (size_t i = 0; i < n_outliers; ++i) {
    float p[3];
    for (int j = 0; j < 3; ++j) {
      p[j] = static_cast<float>(rng.NextUniform(2.0, 5.0) *
                                (rng.NextDouble() < 0.5 ? -1.0 : 1.0));
    }
    data.points.Append(p);
    data.is_outlier.push_back(1);
  }
  return data;
}

TEST(KnnOutlierTest, PlantedOutliersScoreHighest) {
  PlantedData data = MakePlanted(5000, 25, 3);
  auto detector = KnnOutlierDetector::Build(&data.points, 8);
  ASSERT_TRUE(detector.ok());
  std::vector<double> scores = detector->ScoreAll();
  double precision =
      OutlierPrecisionAtTop(scores, data.is_outlier, 25.0 / 5025.0);
  EXPECT_GT(precision, 0.9);
}

TEST(KnnOutlierTest, QueryPointScore) {
  PlantedData data = MakePlanted(3000, 10, 5);
  auto detector = KnnOutlierDetector::Build(&data.points, 8);
  ASSERT_TRUE(detector.ok());
  double core[3] = {0.0, 0.0, 0.0};
  double far[3] = {8.0, 8.0, 8.0};
  EXPECT_GT(detector->Score(far), 10.0 * detector->Score(core));
}

TEST(KnnOutlierTest, BuildValidation) {
  PointSet tiny(2, 3);
  EXPECT_FALSE(KnnOutlierDetector::Build(&tiny, 5).ok());
  EXPECT_FALSE(KnnOutlierDetector::Build(&tiny, 0).ok());
}

TEST(VoronoiOutlierTest, PlantedOutliersScoreHighest) {
  PlantedData data = MakePlanted(8000, 40, 7);
  VoronoiIndexConfig config;
  config.num_seeds = 256;
  auto index = VoronoiIndex::Build(&data.points, config);
  ASSERT_TRUE(index.ok());
  Rng rng(9);
  auto detector = VoronoiOutlierDetector::Build(&*index, 200000, rng);
  ASSERT_TRUE(detector.ok());
  std::vector<double> scores = detector->ScoreAll();
  // Cell granularity makes the top of the ranking coarser than the k-NN
  // detector (a sparse fringe cell promotes all its members at once), so
  // assert recall instead: nearly all planted outliers sit inside the top
  // 5% of scores.
  std::vector<double> sorted = scores;
  std::sort(sorted.begin(), sorted.end());
  double threshold = sorted[sorted.size() * 95 / 100];
  size_t recalled = 0, planted = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (!data.is_outlier[i]) continue;
    ++planted;
    if (scores[i] >= threshold) ++recalled;
  }
  EXPECT_GT(static_cast<double>(recalled) / planted, 0.85);
  // And the ranking is still far better than chance at the contamination
  // level (chance would be ~0.005).
  double precision =
      OutlierPrecisionAtTop(scores, data.is_outlier, 40.0 / 8040.0);
  EXPECT_GT(precision, 0.2);
}

TEST(VoronoiOutlierTest, DenseCellsScoreLow) {
  PlantedData data = MakePlanted(8000, 40, 11);
  VoronoiIndexConfig config;
  config.num_seeds = 256;
  auto index = VoronoiIndex::Build(&data.points, config);
  ASSERT_TRUE(index.ok());
  Rng rng(13);
  auto detector = VoronoiOutlierDetector::Build(&*index, 200000, rng);
  ASSERT_TRUE(detector.ok());
  // The cell containing the blob center scores far below the cell of a
  // planted outlier.
  double center[3] = {0, 0, 0};
  uint32_t core_cell = index->NearestSeed(center);
  uint64_t some_outlier = 8000;  // first planted outlier id
  EXPECT_LT(detector->cell_scores()[core_cell],
            detector->Score(some_outlier));
}

TEST(VoronoiOutlierTest, BuildValidation) {
  PlantedData data = MakePlanted(100, 2, 15);
  VoronoiIndexConfig config;
  config.num_seeds = 16;
  auto index = VoronoiIndex::Build(&data.points, config);
  ASSERT_TRUE(index.ok());
  Rng rng(1);
  EXPECT_FALSE(VoronoiOutlierDetector::Build(&*index, 0, rng).ok());
}

TEST(OutlierEvalTest, PrecisionAtTop) {
  std::vector<double> scores = {0.1, 0.9, 0.2, 0.8, 0.3};
  std::vector<char> labels = {0, 1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(OutlierPrecisionAtTop(scores, labels, 0.4), 1.0);
  EXPECT_DOUBLE_EQ(OutlierPrecisionAtTop(scores, labels, 1.0), 0.4);
  std::vector<char> inverted = {1, 0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(OutlierPrecisionAtTop(scores, inverted, 0.4), 0.0);
}

TEST(OutlierEvalTest, CatalogOutliersDetected) {
  // End-to-end on the synthetic SDSS catalog: the generator's measurement
  // artifacts (class kOutlier) should surface among the top k-NN scores.
  CatalogConfig config;
  config.num_objects = 20000;
  config.seed = 21;
  Catalog cat = GenerateCatalog(config);
  std::vector<char> labels;
  size_t planted = 0;
  for (SpectralClass c : cat.classes) {
    bool out = c == SpectralClass::kOutlier;
    labels.push_back(out);
    planted += out;
  }
  ASSERT_GT(planted, 50u);
  auto detector = KnnOutlierDetector::Build(&cat.colors, 8);
  ASSERT_TRUE(detector.ok());
  std::vector<double> scores = detector->ScoreAll();
  double contamination = static_cast<double>(planted) / cat.size();
  double precision = OutlierPrecisionAtTop(scores, labels, contamination);
  // Half of the generator's outliers are single-band glitches far off the
  // loci; the uniform-scatter half can land inside dense regions, so
  // precision is bounded away from 1 but must far exceed chance (~1%).
  EXPECT_GT(precision, 0.35);
}

}  // namespace
}  // namespace mds
