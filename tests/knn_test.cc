#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/knn.h"

namespace mds {
namespace {

PointSet MakeData(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  PointSet ps(d, 0);
  ps.Reserve(n);
  std::vector<double> p(d);
  for (size_t i = 0; i < n; ++i) {
    double mode = rng.NextDouble();
    for (size_t j = 0; j < d; ++j) {
      if (mode < 0.4) {
        p[j] = 0.4 * rng.NextGaussian();  // dense core
      } else if (mode < 0.8) {
        p[j] = 4.0 + 0.8 * rng.NextGaussian();  // second cluster
      } else {
        p[j] = rng.NextUniform(-8, 8);  // background + outliers
      }
    }
    ps.Append(p.data());
  }
  return ps;
}

struct KnnCase {
  size_t dim;
  size_t n;
  size_t k;
};

class KnnPropertyTest : public ::testing::TestWithParam<KnnCase> {};

TEST_P(KnnPropertyTest, AllEnginesAgree) {
  const KnnCase& tc = GetParam();
  PointSet ps = MakeData(tc.n, tc.dim, 100 + tc.n + tc.dim);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  KdKnnSearcher searcher(&*tree);
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q(tc.dim);
    // Mix of query locations: near data, in voids, outside the bounding
    // box entirely.
    double mode = rng.NextDouble();
    for (size_t j = 0; j < tc.dim; ++j) {
      if (mode < 0.4) {
        q[j] = 0.4 * rng.NextGaussian();
      } else if (mode < 0.7) {
        q[j] = rng.NextUniform(-8, 8);
      } else {
        q[j] = rng.NextUniform(-20, 20);
      }
    }
    auto brute = searcher.BruteForce(q.data(), tc.k);
    auto best_first = searcher.BestFirst(q.data(), tc.k);
    auto boundary = searcher.BoundaryGrow(q.data(), tc.k);
    ASSERT_EQ(brute.size(), tc.k);
    ASSERT_EQ(best_first.size(), tc.k);
    ASSERT_EQ(boundary.size(), tc.k);
    for (size_t i = 0; i < tc.k; ++i) {
      // Distances must agree exactly (same arithmetic); ids may differ
      // only under exact ties.
      EXPECT_DOUBLE_EQ(best_first[i].squared_distance,
                       brute[i].squared_distance)
          << "trial " << trial << " i " << i;
      EXPECT_DOUBLE_EQ(boundary[i].squared_distance,
                       brute[i].squared_distance)
          << "trial " << trial << " i " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, KnnPropertyTest,
    ::testing::Values(KnnCase{1, 1000, 5}, KnnCase{2, 3000, 1},
                      KnnCase{2, 3000, 10}, KnnCase{3, 5000, 10},
                      KnnCase{3, 5000, 100}, KnnCase{5, 4000, 10},
                      KnnCase{5, 4000, 50}, KnnCase{7, 2000, 10}));

TEST(KnnTest, KLargerThanDataset) {
  PointSet ps = MakeData(50, 3, 5);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  KdKnnSearcher searcher(&*tree);
  double q[3] = {0, 0, 0};
  auto result = searcher.BoundaryGrow(q, 100);
  EXPECT_EQ(result.size(), 50u);
  // Sorted ascending.
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_GE(result[i].squared_distance, result[i - 1].squared_distance);
  }
}

TEST(KnnTest, QueryOnDataPointFindsItself) {
  PointSet ps = MakeData(2000, 4, 9);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  KdKnnSearcher searcher(&*tree);
  for (uint64_t i = 0; i < ps.size(); i += 111) {
    std::vector<double> q(4);
    for (size_t j = 0; j < 4; ++j) q[j] = ps.coord(i, j);
    auto result = searcher.BoundaryGrow(q.data(), 1);
    ASSERT_EQ(result.size(), 1u);
    EXPECT_DOUBLE_EQ(result[0].squared_distance, 0.0);
  }
}

TEST(KnnTest, BoundaryGrowExaminesFewLeaves) {
  // The point of §3.3: for local queries only a small neighborhood of
  // leaves is scanned.
  PointSet ps = MakeData(50000, 3, 13);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  KdKnnSearcher searcher(&*tree);
  Rng rng(17);
  uint64_t total_leaves = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    double q[3] = {0.4 * rng.NextGaussian(), 0.4 * rng.NextGaussian(),
                   0.4 * rng.NextGaussian()};
    KnnStats stats;
    searcher.BoundaryGrow(q, 10, &stats);
    total_leaves += stats.leaves_examined;
    EXPECT_GT(stats.boundary_points_checked, 0u);
  }
  double avg = static_cast<double>(total_leaves) / trials;
  EXPECT_LT(avg, tree->num_leaves() / 8.0);
}

TEST(KnnTest, StatsAccounting) {
  PointSet ps = MakeData(5000, 2, 21);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  KdKnnSearcher searcher(&*tree);
  double q[2] = {0.1, -0.2};
  KnnStats brute_stats, bf_stats, bg_stats;
  searcher.BruteForce(q, 10, &brute_stats);
  searcher.BestFirst(q, 10, &bf_stats);
  searcher.BoundaryGrow(q, 10, &bg_stats);
  EXPECT_EQ(brute_stats.points_examined, ps.size());
  EXPECT_LT(bf_stats.points_examined, ps.size());
  EXPECT_LT(bg_stats.points_examined, ps.size());
  EXPECT_GE(bg_stats.leaves_examined, 1u);
  EXPECT_GE(bg_stats.rounds + 1, bg_stats.leaves_examined);
}

TEST(KnnTest, DegenerateDuplicateData) {
  PointSet ps(2, 0);
  float p[2] = {1, 1};
  for (int i = 0; i < 500; ++i) ps.Append(p);
  auto tree = KdTreeIndex::Build(&ps);
  ASSERT_TRUE(tree.ok());
  KdKnnSearcher searcher(&*tree);
  double q[2] = {1, 1};
  auto result = searcher.BoundaryGrow(q, 5);
  ASSERT_EQ(result.size(), 5u);
  for (const auto& n : result) {
    EXPECT_DOUBLE_EQ(n.squared_distance, 0.0);
  }
}

}  // namespace
}  // namespace mds
