// simd_dist: the vector kernels must be BIT-IDENTICAL to the scalar
// reference on every input — that is the whole contract that lets the
// scan loops switch tiers without changing neighbor sets, tie ordering
// or wire bytes. These tests sweep dims 1-8, unaligned row starts,
// NaN/infinity probes and coordinates, and exact-tie distances, and
// compare raw double bit patterns (not values, which would let -0.0 or
// differently-payloaded NaNs slip through) on every tier the host can
// reach. CI re-runs them with MDS_NO_SIMD=1 and MDS_SIMD_TIER=sse2.

#include "core/simd_dist.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/kdtree.h"
#include "core/knn.h"
#include "geom/box.h"
#include "geom/point_set.h"

namespace mds {
namespace {

uint64_t Bits(double v) {
  uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

/// Every tier reachable on this host, never raising past the startup
/// tier (which already folds in hardware support and the env caps).
std::vector<SimdTier> ReachableTiers() {
  const SimdTier top = ActiveSimdTier();
  std::vector<SimdTier> tiers = {SimdTier::kScalar};
  if (top >= SimdTier::kSse2) tiers.push_back(SimdTier::kSse2);
  if (top >= SimdTier::kAvx2) tiers.push_back(SimdTier::kAvx2);
  return tiers;
}

/// RAII: run a test body at a forced tier, restore the startup tier.
class TierGuard {
 public:
  explicit TierGuard(SimdTier tier) : restore_(ActiveSimdTier()) {
    SetSimdTierForTest(tier);
  }
  ~TierGuard() { SetSimdTierForTest(restore_); }

 private:
  SimdTier restore_;
};

uint64_t SplitMix(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

float RandomCoord(uint64_t* state) {
  // Mostly ordinary magnitudes, with occasional specials so every batch
  // exercises the IEEE corner cases.
  const uint64_t r = SplitMix(state);
  switch (r % 37) {
    case 0:
      return std::numeric_limits<float>::quiet_NaN();
    case 1:
      return std::numeric_limits<float>::infinity();
    case 2:
      return -std::numeric_limits<float>::infinity();
    case 3:
      return 0.0f;
    case 4:
      return -0.0f;
    case 5:
      return std::numeric_limits<float>::denorm_min();
    case 6:
      return std::numeric_limits<float>::max();
    default:
      return (static_cast<float>(r % 100000) - 50000.0f) / 317.0f;
  }
}

/// Scalar reference, computed through the same geom/point_set.h routine
/// the row-at-a-time loops used before the kernels existed.
void ReferenceBatch(const double* p, const float* rows, size_t n, size_t dim,
                    double* d2) {
  for (size_t i = 0; i < n; ++i) {
    d2[i] = SquaredDistance(p, rows + i * dim, dim);
  }
}

TEST(SimdDist, TierPlumbing) {
  const SimdTier startup = ActiveSimdTier();
  EXPECT_NE(SimdTierName(startup), nullptr);
  {
    TierGuard guard(SimdTier::kScalar);
    EXPECT_EQ(ActiveSimdTier(), SimdTier::kScalar);
  }
  EXPECT_EQ(ActiveSimdTier(), startup);
  // SetSimdTierForTest never raises beyond the hardware/env tier.
  SetSimdTierForTest(SimdTier::kAvx2);
  EXPECT_LE(ActiveSimdTier(), startup);
  SetSimdTierForTest(startup);
}

TEST(SimdDist, BatchBitIdenticalAcrossDimsTiersAndLengths) {
  uint64_t state = 1;
  for (SimdTier tier : ReachableTiers()) {
    TierGuard guard(tier);
    for (size_t dim = 1; dim <= 8; ++dim) {
      for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{4},
                       size_t{5}, size_t{7}, size_t{8}, size_t{15},
                       size_t{64}, size_t{257}}) {
        std::vector<float> rows(n * dim);
        for (float& v : rows) v = RandomCoord(&state);
        std::vector<double> p(dim);
        for (double& v : p) v = static_cast<double>(RandomCoord(&state));

        std::vector<double> expected(n, -1.0), got(n, -2.0);
        ReferenceBatch(p.data(), rows.data(), n, dim, expected.data());
        SquaredDistanceBatch(p.data(), rows.data(), n, dim, got.data());
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(Bits(got[i]), Bits(expected[i]))
              << "tier=" << SimdTierName(tier) << " dim=" << dim
              << " n=" << n << " i=" << i << " got=" << got[i]
              << " expected=" << expected[i];
        }
      }
    }
  }
}

TEST(SimdDist, BatchHandlesUnalignedRowStarts) {
  uint64_t state = 2;
  const size_t dim = 5;
  const size_t n = 133;
  // Over-allocate and start the row block at every float offset 0..7:
  // none of 1..7 is 32-byte aligned, so the kernels must not assume
  // aligned loads anywhere.
  std::vector<float> backing(8 + n * dim);
  for (float& v : backing) v = RandomCoord(&state);
  std::vector<double> p(dim);
  for (double& v : p) v = 0.25 * static_cast<double>(SplitMix(&state) % 1000);

  for (SimdTier tier : ReachableTiers()) {
    TierGuard guard(tier);
    for (size_t offset = 0; offset < 8; ++offset) {
      const float* rows = backing.data() + offset;
      std::vector<double> expected(n), got(n);
      ReferenceBatch(p.data(), rows, n, dim, expected.data());
      SquaredDistanceBatch(p.data(), rows, n, dim, got.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(Bits(got[i]), Bits(expected[i]))
            << "tier=" << SimdTierName(tier) << " offset=" << offset
            << " i=" << i;
      }
    }
  }
}

TEST(SimdDist, NaNAndInfinityProbesPropagateExactly) {
  const size_t dim = 5;
  const size_t n = 29;
  uint64_t state = 3;
  std::vector<float> rows(n * dim);
  for (float& v : rows) v = RandomCoord(&state);

  const double specials[] = {std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(), 0.0};
  for (double special : specials) {
    for (size_t axis = 0; axis < dim; ++axis) {
      std::vector<double> p(dim, 1.5);
      p[axis] = special;
      std::vector<double> expected(n), got(n);
      ReferenceBatch(p.data(), rows.data(), n, dim, expected.data());
      for (SimdTier tier : ReachableTiers()) {
        TierGuard guard(tier);
        SquaredDistanceBatch(p.data(), rows.data(), n, dim, got.data());
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(Bits(got[i]), Bits(expected[i]))
              << "tier=" << SimdTierName(tier) << " axis=" << axis
              << " special=" << special << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdDist, GatherMatchesBatchOnShuffledIds) {
  uint64_t state = 4;
  const size_t dim = 5;
  const size_t table_rows = 400;
  std::vector<float> table(table_rows * dim);
  for (float& v : table) v = RandomCoord(&state);
  std::vector<double> p(dim);
  for (double& v : p) v = static_cast<double>(RandomCoord(&state));

  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{5}, size_t{97}}) {
    std::vector<uint64_t> ids64(n);
    std::vector<uint32_t> ids32(n);
    for (size_t i = 0; i < n; ++i) {
      ids64[i] = SplitMix(&state) % table_rows;
      ids32[i] = static_cast<uint32_t>(ids64[i]);
    }
    std::vector<double> expected(n);
    for (size_t i = 0; i < n; ++i) {
      expected[i] = SquaredDistance(p.data(), table.data() + ids64[i] * dim,
                                    dim);
    }
    for (SimdTier tier : ReachableTiers()) {
      TierGuard guard(tier);
      std::vector<double> got64(n), got32(n);
      SquaredDistanceGather(p.data(), table.data(), ids64.data(), n, dim,
                            got64.data());
      SquaredDistanceGather(p.data(), table.data(), ids32.data(), n, dim,
                            got32.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(Bits(got64[i]), Bits(expected[i]))
            << "tier=" << SimdTierName(tier) << " n=" << n << " i=" << i;
        ASSERT_EQ(Bits(got32[i]), Bits(expected[i]))
            << "tier=" << SimdTierName(tier) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdDist, BoxContainsBatchMatchesBoxContains) {
  uint64_t state = 5;
  for (size_t dim = 1; dim <= 8; ++dim) {
    std::vector<double> lo(dim), hi(dim);
    for (size_t j = 0; j < dim; ++j) {
      double a = static_cast<double>(SplitMix(&state) % 200) - 100.0;
      double b = static_cast<double>(SplitMix(&state) % 200) - 100.0;
      lo[j] = std::min(a, b);
      hi[j] = std::max(a, b);
    }
    Box box(lo, hi);
    for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{8}, size_t{63},
                     size_t{200}}) {
      std::vector<float> rows(n * dim);
      for (size_t i = 0; i < rows.size(); ++i) {
        // Dense coverage of in/out/boundary plus NaN coordinates (which
        // Box::Contains counts as contained: NaN compares false against
        // both bounds).
        const uint64_t r = SplitMix(&state);
        if (r % 23 == 0) {
          rows[i] = std::numeric_limits<float>::quiet_NaN();
        } else if (r % 23 == 1) {
          const size_t j = i % dim;
          rows[i] = static_cast<float>((r & 1) ? lo[j] : hi[j]);  // boundary
        } else {
          rows[i] = static_cast<float>(r % 300) - 150.0f;
        }
      }
      for (SimdTier tier : ReachableTiers()) {
        TierGuard guard(tier);
        std::vector<uint8_t> mask(n, 0xCC);
        BoxContainsBatch(lo.data(), hi.data(), rows.data(), n, dim,
                         mask.data());
        for (size_t i = 0; i < n; ++i) {
          const uint8_t expected =
              box.Contains(rows.data() + i * dim) ? 1 : 0;
          ASSERT_EQ(mask[i], expected)
              << "tier=" << SimdTierName(tier) << " dim=" << dim
              << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdDist, KnnNeighborOrderIdenticalAcrossTiersWithTies) {
  // End-to-end tie regression: a point set full of exact duplicates makes
  // the k-th distance a many-way tie, so any kernel that changed insert
  // order or rounded differently would surface as a different id set or
  // sequence. The (d2, id) sequences must match the scalar tier exactly.
  const size_t dim = 5;
  const uint64_t n = 3000;
  uint64_t state = 6;
  PointSet points(dim, 0);
  points.Reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    float row[8];
    // Snap coordinates to a coarse lattice: lots of duplicate rows.
    for (size_t j = 0; j < dim; ++j) {
      row[j] = static_cast<float>(SplitMix(&state) % 7);
    }
    points.Append(row);
  }
  auto tree = KdTreeIndex::Build(&points, KdTreeConfig{});
  ASSERT_TRUE(tree.ok());
  KdKnnSearcher searcher(&*tree);

  const double probes[][8] = {{3.1, 2.9, 3.0, 3.2, 2.8},
                              {0.0, 0.0, 0.0, 0.0, 0.0},
                              {6.0, 6.0, 6.0, 6.0, 6.0}};
  for (const double* p : probes) {
    // BestFirst and BruteForce each get their own scalar reference: with
    // heavy ties at the k-th distance the two algorithms may legitimately
    // keep different tied subsets (they insert in different orders), but
    // each must be invariant across tiers.
    std::vector<Neighbor> ref_best, ref_brute;
    {
      TierGuard guard(SimdTier::kScalar);
      ref_best = searcher.BestFirst(p, 25);
      ref_brute = searcher.BruteForce(p, 25);
    }
    ASSERT_EQ(ref_best.size(), 25u);
    for (SimdTier tier : ReachableTiers()) {
      TierGuard guard(tier);
      std::vector<Neighbor> got = searcher.BestFirst(p, 25);
      ASSERT_EQ(got.size(), ref_best.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, ref_best[i].id)
            << "tier=" << SimdTierName(tier) << " i=" << i;
        EXPECT_EQ(Bits(got[i].squared_distance),
                  Bits(ref_best[i].squared_distance))
            << "tier=" << SimdTierName(tier) << " i=" << i;
      }
      std::vector<Neighbor> brute = searcher.BruteForce(p, 25);
      ASSERT_EQ(brute.size(), ref_brute.size());
      for (size_t i = 0; i < brute.size(); ++i) {
        EXPECT_EQ(brute[i].id, ref_brute[i].id)
            << "tier=" << SimdTierName(tier) << " i=" << i;
        EXPECT_EQ(Bits(brute[i].squared_distance),
                  Bits(ref_brute[i].squared_distance))
            << "tier=" << SimdTierName(tier) << " i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace mds
