// Protocol robustness: the mdsd wire codec and server must survive
// truncated frames, oversized length prefixes, corrupted payloads, unknown
// versions/types and slow-loris partial writes with clean connection
// closes — never a crash, a hang, or a desynchronized reply. These tests
// speak raw bytes (no QueryClient) so they can violate the protocol on
// purpose; CI runs them under ASan and TSan.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "common/crc32c.h"
#include "server/client.h"
#include "server/dataset.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/wire.h"

namespace mds {
namespace {

using protocol::MessageHeader;
using protocol::MessageType;

// --- Codec unit tests (no sockets) -----------------------------------------

TEST(WireCodec, RoundTripsScalars) {
  std::vector<uint8_t> buf;
  WireWriter w(&buf);
  w.PutU8(7);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEFu);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutF64(3.25);
  w.PutString("mdsd");

  WireReader r(buf);
  EXPECT_EQ(r.GetU8(), 7u);
  EXPECT_EQ(r.GetU16(), 0xBEEFu);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.GetI64(), -42);
  EXPECT_EQ(r.GetF64(), 3.25);
  EXPECT_EQ(r.GetString(), "mdsd");
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(WireCodec, TruncatedReadFailsSticky) {
  std::vector<uint8_t> buf;
  WireWriter w(&buf);
  w.PutU32(1);
  WireReader r(buf);
  (void)r.GetU64();  // 8 > 4 bytes present
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.GetU32(), 0u);  // sticky: later reads yield zero, not UB
  EXPECT_FALSE(r.ExpectEnd().ok());
}

TEST(WireCodec, PodVectorCountMustFitPayload) {
  std::vector<uint8_t> buf;
  WireWriter w(&buf);
  w.PutU64(1u << 30);  // claims 2^30 int64 elements, provides none
  WireReader r(buf);
  auto v = r.GetPodVector<int64_t>();
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
}

TEST(WireCodec, TrailingBytesRejected) {
  std::vector<uint8_t> buf;
  WireWriter w(&buf);
  w.PutU32(1);
  w.PutU8(0);
  WireReader r(buf);
  (void)r.GetU32();
  EXPECT_FALSE(r.ExpectEnd().ok());
}

TEST(ProtocolCodec, RequestReplyRoundTrips) {
  {
    protocol::BoxQueryRequest req;
    req.lo = {0.0, 1.0, 2.0};
    req.hi = {3.0, 4.0, 5.0};
    req.limit = 17;
    std::vector<uint8_t> buf;
    WireWriter w(&buf);
    EncodeBoxQueryRequest(req, &w);
    WireReader r(buf);
    protocol::BoxQueryRequest got;
    ASSERT_TRUE(DecodeBoxQueryRequest(&r, &got).ok());
    EXPECT_EQ(got.lo, req.lo);
    EXPECT_EQ(got.hi, req.hi);
    EXPECT_EQ(got.limit, req.limit);
    EXPECT_TRUE(r.ExpectEnd().ok());
  }
  {
    protocol::KnnRequest req;
    req.point = {1.5, -2.5};
    req.k = 9;
    std::vector<uint8_t> buf;
    WireWriter w(&buf);
    EncodeKnnRequest(req, &w);
    WireReader r(buf);
    protocol::KnnRequest got;
    ASSERT_TRUE(DecodeKnnRequest(&r, &got).ok());
    EXPECT_EQ(got.point, req.point);
    EXPECT_EQ(got.k, req.k);
  }
  {
    protocol::QueryReply reply;
    reply.row_count = 3;
    reply.objids = {5, 7, 11};
    reply.rows_scanned = 100;
    reply.pages_fetched = 4;
    reply.degraded = true;
    reply.chosen_path = "kd-tree";
    std::vector<uint8_t> buf;
    WireWriter w(&buf);
    EncodeQueryReply(reply, &w);
    WireReader r(buf);
    protocol::QueryReply got;
    ASSERT_TRUE(DecodeQueryReply(&r, &got).ok());
    EXPECT_EQ(got.objids, reply.objids);
    EXPECT_EQ(got.degraded, true);
    EXPECT_EQ(got.chosen_path, "kd-tree");
  }
  {
    Status in = Status::Unavailable("retry");
    std::vector<uint8_t> buf;
    WireWriter w(&buf);
    protocol::EncodeStatus(in, &w);
    WireReader r(buf);
    Status out;
    ASSERT_TRUE(protocol::DecodeStatus(&r, &out).ok());
    EXPECT_EQ(out.code(), StatusCode::kUnavailable);
    EXPECT_EQ(out.message(), "retry");
  }
}

TEST(ProtocolCodec, RejectsInvertedAndNaNBoxBounds) {
  // An inverted box (lo > hi) or a NaN bound silently matches nothing in
  // every comparison downstream; the codec rejects both at the boundary so
  // no engine layer ever sees them.
  {
    protocol::BoxQueryRequest req;
    req.lo = {0.0, 2.0};
    req.hi = {1.0, 1.0};  // axis 1 inverted
    std::vector<uint8_t> buf;
    WireWriter w(&buf);
    EncodeBoxQueryRequest(req, &w);
    WireReader r(buf);
    protocol::BoxQueryRequest got;
    Status st = DecodeBoxQueryRequest(&r, &got);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
  {
    protocol::BoxQueryRequest req;
    req.lo = {0.0, std::nan("")};
    req.hi = {1.0, 1.0};
    std::vector<uint8_t> buf;
    WireWriter w(&buf);
    EncodeBoxQueryRequest(req, &w);
    WireReader r(buf);
    protocol::BoxQueryRequest got;
    EXPECT_EQ(DecodeBoxQueryRequest(&r, &got).code(),
              StatusCode::kInvalidArgument);
  }
  {
    // lo == hi is a legal degenerate (single point), not an inversion.
    protocol::BoxQueryRequest req;
    req.lo = {1.0, 2.0};
    req.hi = {1.0, 2.0};
    std::vector<uint8_t> buf;
    WireWriter w(&buf);
    EncodeBoxQueryRequest(req, &w);
    WireReader r(buf);
    protocol::BoxQueryRequest got;
    EXPECT_TRUE(DecodeBoxQueryRequest(&r, &got).ok());
  }
}

TEST(ProtocolCodec, RejectsNaNKnnProbe) {
  protocol::KnnRequest req;
  req.point = {0.5, std::nan("")};
  req.k = 3;
  std::vector<uint8_t> buf;
  WireWriter w(&buf);
  EncodeKnnRequest(req, &w);
  WireReader r(buf);
  protocol::KnnRequest got;
  EXPECT_EQ(DecodeKnnRequest(&r, &got).code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolCodec, RejectsOutOfRangeSampleFraction) {
  for (double pct : {0.0, -1.0, 100.5, std::nan("")}) {
    protocol::TableSampleRequest req;
    req.lo = {0.0};
    req.hi = {1.0};
    req.percent = pct;
    req.n = 5;
    std::vector<uint8_t> buf;
    WireWriter w(&buf);
    EncodeTableSampleRequest(req, &w);
    WireReader r(buf);
    protocol::TableSampleRequest got;
    Status st = DecodeTableSampleRequest(&r, &got);
    ASSERT_FALSE(st.ok()) << "percent=" << pct;
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
  // The boundary itself (100%) is legal: sample every page.
  protocol::TableSampleRequest req;
  req.lo = {0.0};
  req.hi = {1.0};
  req.percent = 100.0;
  std::vector<uint8_t> buf;
  WireWriter w(&buf);
  EncodeTableSampleRequest(req, &w);
  WireReader r(buf);
  protocol::TableSampleRequest got;
  EXPECT_TRUE(DecodeTableSampleRequest(&r, &got).ok());
}

TEST(ProtocolCodec, RejectsBadDimensionAndParameters) {
  {
    std::vector<uint8_t> buf;
    WireWriter w(&buf);
    w.PutU32(protocol::kMaxDim + 1);  // dim beyond the engine's cap
    WireReader r(buf);
    std::vector<double> v;
    EXPECT_FALSE(protocol::DecodeCoords(&r, &v).ok());
  }
  {
    protocol::KnnRequest req;
    req.point = {0.0};
    req.k = 1;
    std::vector<uint8_t> buf;
    WireWriter w(&buf);
    EncodeKnnRequest(req, &w);
    buf[buf.size() - 4] = 0;  // k -> 0
    buf[buf.size() - 3] = 0;
    buf[buf.size() - 2] = 0;
    buf[buf.size() - 1] = 0;
    WireReader r(buf);
    protocol::KnnRequest got;
    EXPECT_FALSE(DecodeKnnRequest(&r, &got).ok());
  }
}

// --- Live-server abuse ------------------------------------------------------

class ServerProtocolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    config.num_rows = 20000;
    auto built = ServedDataset::Build(config);
    ASSERT_TRUE(built.ok());
    dataset_ = new ServedDataset(std::move(*built));

    ServerConfig server_config;
    server_config.num_workers = 2;
    server_config.idle_timeout_ms = 1000;  // fast slow-loris verdicts
    server_ = new QueryServer(dataset_, server_config);
    ASSERT_TRUE(server_->Start().ok());
  }

  static void TearDownTestSuite() {
    server_->Shutdown();
    delete server_;
    delete dataset_;
    server_ = nullptr;
    dataset_ = nullptr;
  }

  static Socket MustConnect() {
    auto sock = TcpConnect("127.0.0.1", server_->port(), 5000);
    EXPECT_TRUE(sock.ok()) << sock.status().ToString();
    return std::move(*sock);
  }

  /// True when the peer closed the connection (any read failure short of
  /// a deadline counts; a protocol-violating client only learns "closed").
  static bool ServerClosed(Socket* sock) {
    uint8_t byte = 0;
    Status st = sock->ReadFull(&byte, 1, IoDeadline::After(5000));
    return !st.ok() && st.code() != StatusCode::kUnavailable;
  }

  /// The server must still answer a well-formed request after abuse.
  static void ExpectServerHealthy() {
    auto client = QueryClient::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto health = client->Health();
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    EXPECT_EQ(health->served_rows, dataset_->num_rows());
  }

  static ServedDataset* dataset_;
  static QueryServer* server_;
};

ServedDataset* ServerProtocolTest::dataset_ = nullptr;
QueryServer* ServerProtocolTest::server_ = nullptr;

TEST_F(ServerProtocolTest, BadMagicClosesConnection) {
  Socket sock = MustConnect();
  std::vector<uint8_t> junk(64, 0xAB);
  ASSERT_TRUE(
      sock.WriteFull(junk.data(), junk.size(), IoDeadline::After(5000)).ok());
  EXPECT_TRUE(ServerClosed(&sock));
  ExpectServerHealthy();
}

TEST_F(ServerProtocolTest, OversizedLengthPrefixClosesConnection) {
  Socket sock = MustConnect();
  std::vector<uint8_t> frame;
  WireWriter w(&frame);
  w.PutU32(protocol::kFrameMagic);
  w.PutU32(0xFFFFFFFFu);  // 4 GiB claim: must be rejected before allocation
  w.PutU32(0);
  ASSERT_TRUE(
      sock.WriteFull(frame.data(), frame.size(), IoDeadline::After(5000)).ok());
  EXPECT_TRUE(ServerClosed(&sock));
  ExpectServerHealthy();
}

TEST_F(ServerProtocolTest, BadCrcClosesConnection) {
  std::vector<uint8_t> payload;
  WireWriter pw(&payload);
  EncodeMessageHeader(MessageHeader{}, &pw);
  pw.PutU32(0);  // deadline prefix

  std::vector<uint8_t> frame;
  protocol::AppendFrame(payload, &frame);
  frame[frame.size() - 1] ^= 0x01;  // flip a payload bit; CRC now wrong

  Socket sock = MustConnect();
  ASSERT_TRUE(
      sock.WriteFull(frame.data(), frame.size(), IoDeadline::After(5000)).ok());
  EXPECT_TRUE(ServerClosed(&sock));
  ExpectServerHealthy();
}

TEST_F(ServerProtocolTest, UnknownVersionClosesConnection) {
  std::vector<uint8_t> payload;
  WireWriter pw(&payload);
  MessageHeader header;
  header.version = 99;
  header.type = MessageType::kHealth;
  EncodeMessageHeader(header, &pw);
  pw.PutU32(0);

  std::vector<uint8_t> frame;
  protocol::AppendFrame(payload, &frame);
  Socket sock = MustConnect();
  ASSERT_TRUE(
      sock.WriteFull(frame.data(), frame.size(), IoDeadline::After(5000)).ok());
  EXPECT_TRUE(ServerClosed(&sock));
  ExpectServerHealthy();
}

TEST_F(ServerProtocolTest, UnknownTypeGetsUnimplementedReply) {
  std::vector<uint8_t> payload;
  WireWriter pw(&payload);
  MessageHeader header;
  header.type = static_cast<MessageType>(77);
  header.request_id = 5;
  EncodeMessageHeader(header, &pw);
  pw.PutU32(0);

  std::vector<uint8_t> frame;
  protocol::AppendFrame(payload, &frame);
  Socket sock = MustConnect();
  ASSERT_TRUE(
      sock.WriteFull(frame.data(), frame.size(), IoDeadline::After(5000)).ok());

  std::vector<uint8_t> reply;
  ASSERT_TRUE(
      protocol::ReadFrame(&sock, IoDeadline::After(5000), &reply).ok());
  WireReader r(reply);
  MessageHeader reply_header;
  ASSERT_TRUE(DecodeMessageHeader(&r, &reply_header).ok());
  EXPECT_EQ(reply_header.request_id, 5u);
  Status remote;
  ASSERT_TRUE(protocol::DecodeStatus(&r, &remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kUnimplemented);
}

TEST_F(ServerProtocolTest, TruncatedBodyGetsErrorReply) {
  // Well-framed payload whose body stops mid-request: the frame passes CRC,
  // decode fails cleanly, and the server answers with a status instead of
  // crashing on the short buffer.
  std::vector<uint8_t> payload;
  WireWriter pw(&payload);
  MessageHeader header;
  header.type = MessageType::kBoxQuery;
  header.request_id = 6;
  EncodeMessageHeader(header, &pw);
  pw.PutU32(0);   // deadline
  pw.PutU32(3);   // dim=3 but no coordinates follow

  std::vector<uint8_t> frame;
  protocol::AppendFrame(payload, &frame);
  Socket sock = MustConnect();
  ASSERT_TRUE(
      sock.WriteFull(frame.data(), frame.size(), IoDeadline::After(5000)).ok());

  std::vector<uint8_t> reply;
  ASSERT_TRUE(
      protocol::ReadFrame(&sock, IoDeadline::After(5000), &reply).ok());
  WireReader r(reply);
  MessageHeader reply_header;
  ASSERT_TRUE(DecodeMessageHeader(&r, &reply_header).ok());
  Status remote;
  ASSERT_TRUE(protocol::DecodeStatus(&r, &remote).ok());
  EXPECT_FALSE(remote.ok());
}

TEST_F(ServerProtocolTest, SlowLorisPartialFrameTimesOutCleanly) {
  // Send half a valid frame, then stall. The per-frame idle deadline
  // (1 s in this suite) must reap the connection; the server stays up.
  std::vector<uint8_t> payload;
  WireWriter pw(&payload);
  EncodeMessageHeader(MessageHeader{}, &pw);
  pw.PutU32(0);
  std::vector<uint8_t> frame;
  protocol::AppendFrame(payload, &frame);

  Socket sock = MustConnect();
  ASSERT_TRUE(
      sock.WriteFull(frame.data(), frame.size() / 2, IoDeadline::After(5000))
          .ok());
  EXPECT_TRUE(ServerClosed(&sock));  // bounded by the 5 s read deadline
  ExpectServerHealthy();
}

TEST_F(ServerProtocolTest, CachedReplyIsByteIdenticalOnTheWire) {
  // A cache-enabled server must hand back the memoized reply byte for byte
  // — same payload, same CRC-able bytes — when the same request (including
  // request_id) repeats, and differ only in the echoed request_id when a
  // different id asks for the same work.
  ServerConfig config;
  config.num_workers = 2;
  config.cache_bytes = 4u << 20;
  QueryServer server(dataset_, config);
  ASSERT_TRUE(server.Start().ok());

  const size_t dim = dataset_->dim();
  auto make_request = [&](uint64_t request_id) {
    std::vector<uint8_t> payload;
    WireWriter pw(&payload);
    MessageHeader header;
    header.type = MessageType::kPointCount;
    header.request_id = request_id;
    EncodeMessageHeader(header, &pw);
    pw.PutU32(0);  // deadline
    protocol::BoxQueryRequest req;
    req.lo.assign(dim, -10.0);
    req.hi.assign(dim, 10.0);
    EncodeBoxQueryRequest(req, &pw);
    std::vector<uint8_t> frame;
    protocol::AppendFrame(payload, &frame);
    return frame;
  };

  auto connected = TcpConnect("127.0.0.1", server.port(), 5000);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  Socket sock = std::move(*connected);
  auto exchange = [&](uint64_t request_id) {
    const std::vector<uint8_t> frame = make_request(request_id);
    EXPECT_TRUE(
        sock.WriteFull(frame.data(), frame.size(), IoDeadline::After(5000))
            .ok());
    std::vector<uint8_t> reply;
    EXPECT_TRUE(
        protocol::ReadFrame(&sock, IoDeadline::After(5000), &reply).ok());
    return reply;
  };

  const std::vector<uint8_t> executed = exchange(1);   // miss: executes
  const std::vector<uint8_t> memoized = exchange(1);   // hit: same id
  EXPECT_EQ(memoized, executed);
  EXPECT_EQ(server.Stats().cache_hits, 1u);

  const std::vector<uint8_t> reheaded = exchange(2);   // hit: new id
  ASSERT_EQ(reheaded.size(), executed.size());
  // The request_id lives in header bytes [8, 16); everything else matches.
  EXPECT_NE(std::memcmp(reheaded.data() + 8, executed.data() + 8, 8), 0);
  EXPECT_EQ(std::memcmp(reheaded.data(), executed.data(), 8), 0);
  EXPECT_EQ(std::memcmp(reheaded.data() + 16, executed.data() + 16,
                        executed.size() - 16),
            0);
  EXPECT_EQ(server.Stats().cache_hits, 2u);

  server.Shutdown();
}

TEST_F(ServerProtocolTest, PipelinedBurstCorrelatesByRequestId) {
  // Raw-wire pipelining: k request frames in one write, with request ids
  // deliberately out of ascending order. The server must answer every id
  // exactly once, and each reply must be byte-identical to the reply the
  // same request gets on its own connection — only the echoed request_id
  // bytes (header [8, 16)) may differ.
  const size_t dim = dataset_->dim();
  auto make_request = [&](uint64_t request_id, double half_width) {
    std::vector<uint8_t> payload;
    WireWriter pw(&payload);
    MessageHeader header;
    header.type = MessageType::kBoxQuery;
    header.request_id = request_id;
    EncodeMessageHeader(header, &pw);
    pw.PutU32(0);  // deadline
    protocol::BoxQueryRequest req;
    req.lo.assign(dim, -half_width);
    req.hi.assign(dim, half_width);
    EncodeBoxQueryRequest(req, &pw);
    std::vector<uint8_t> frame;
    protocol::AppendFrame(payload, &frame);
    return frame;
  };

  constexpr size_t kBurst = 8;
  const double widths[kBurst] = {0.4, 1.1, 0.2, 2.0, 0.7, 1.6, 0.9, 0.5};
  // Shuffled ids: correlation must not assume arrival order == id order.
  const uint64_t ids[kBurst] = {905, 901, 908, 903, 907, 902, 906, 904};

  // Reference replies, one exchange at a time on a separate connection.
  std::vector<std::vector<uint8_t>> reference(kBurst);
  {
    Socket sock = MustConnect();
    for (size_t i = 0; i < kBurst; ++i) {
      const std::vector<uint8_t> frame = make_request(700 + i, widths[i]);
      ASSERT_TRUE(
          sock.WriteFull(frame.data(), frame.size(), IoDeadline::After(5000))
              .ok());
      ASSERT_TRUE(
          protocol::ReadFrame(&sock, IoDeadline::After(5000), &reference[i])
              .ok());
    }
  }

  // The pipelined burst: all frames in one write, then read them all.
  Socket sock = MustConnect();
  std::vector<uint8_t> burst;
  for (size_t i = 0; i < kBurst; ++i) {
    const std::vector<uint8_t> frame = make_request(ids[i], widths[i]);
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(
      sock.WriteFull(burst.data(), burst.size(), IoDeadline::After(5000))
          .ok());

  std::vector<bool> answered(kBurst, false);
  for (size_t n = 0; n < kBurst; ++n) {
    std::vector<uint8_t> reply;
    ASSERT_TRUE(
        protocol::ReadFrame(&sock, IoDeadline::After(10000), &reply).ok());
    WireReader r(reply);
    MessageHeader reply_header;
    ASSERT_TRUE(DecodeMessageHeader(&r, &reply_header).ok());
    size_t slot = kBurst;
    for (size_t i = 0; i < kBurst; ++i) {
      if (ids[i] == reply_header.request_id) {
        slot = i;
        break;
      }
    }
    ASSERT_LT(slot, kBurst) << "reply for unknown id "
                            << reply_header.request_id;
    EXPECT_FALSE(answered[slot]) << "duplicate reply for id " << ids[slot];
    answered[slot] = true;

    // Byte parity with the solo exchange, modulo the request_id echo.
    const std::vector<uint8_t>& ref = reference[slot];
    ASSERT_EQ(reply.size(), ref.size()) << "slot " << slot;
    EXPECT_EQ(std::memcmp(reply.data(), ref.data(), 8), 0) << "slot " << slot;
    EXPECT_EQ(std::memcmp(reply.data() + 16, ref.data() + 16,
                          ref.size() - 16),
              0)
        << "slot " << slot;
  }
  for (size_t i = 0; i < kBurst; ++i) {
    EXPECT_TRUE(answered[i]) << "no reply for id " << ids[i];
  }
  ExpectServerHealthy();
}

TEST_F(ServerProtocolTest, PeerCloseMidReplyLeavesServerServing) {
  // A client that submits a large query and slams the connection shut (RST
  // via zero-linger) before reading the reply must cost the server nothing
  // but the wasted work: the reply write fails with a status — never a
  // SIGPIPE, which would kill the whole process.
  const size_t dim = dataset_->dim();
  for (int i = 0; i < 8; ++i) {
    auto sock = TcpConnect("127.0.0.1", server_->port(), 5000);
    ASSERT_TRUE(sock.ok());
    std::vector<uint8_t> payload;
    WireWriter pw(&payload);
    MessageHeader header;
    header.type = MessageType::kBoxQuery;
    header.request_id = static_cast<uint64_t>(i) + 100;
    EncodeMessageHeader(header, &pw);
    pw.PutU32(0);
    protocol::BoxQueryRequest req;  // whole-table box: a multi-MB reply
    req.lo.assign(dim, -100.0);
    req.hi.assign(dim, 100.0);
    EncodeBoxQueryRequest(req, &pw);
    std::vector<uint8_t> frame;
    protocol::AppendFrame(payload, &frame);
    ASSERT_TRUE(
        sock->WriteFull(frame.data(), frame.size(), IoDeadline::After(5000))
            .ok());

    // Half the iterations RST immediately; the rest give the server a head
    // start so some writes fail mid-stream rather than up front.
    if (i % 2 == 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    struct linger lin;
    lin.l_onoff = 1;
    lin.l_linger = 0;
    ASSERT_EQ(
        setsockopt(sock->fd(), SOL_SOCKET, SO_LINGER, &lin, sizeof(lin)), 0);
    sock->Close();  // RST: the server's pending write hits ECONNRESET/EPIPE
  }
  // The process survived every mid-reply close and still serves correctly.
  ExpectServerHealthy();
}

TEST_F(ServerProtocolTest, AbuseBarrageLeavesServerServing) {
  // A burst of mixed violations from several threads, then a correctness
  // probe: the server must still answer queries with exact results.
  std::vector<std::thread> abusers;
  for (int t = 0; t < 4; ++t) {
    abusers.emplace_back([t] {
      for (int i = 0; i < 8; ++i) {
        auto sock = TcpConnect("127.0.0.1", server_->port(), 5000);
        if (!sock.ok()) continue;
        std::vector<uint8_t> junk((t * 8 + i) % 23 + 1,
                                  static_cast<uint8_t>(i * 37 + t));
        (void)sock->WriteFull(junk.data(), junk.size(),
                              IoDeadline::After(1000));
        // Half the abusers vanish without closing properly.
        if (i % 2 == 0) sock->ShutdownBoth();
      }
    });
  }
  for (auto& a : abusers) a.join();
  ExpectServerHealthy();
}

}  // namespace
}  // namespace mds
