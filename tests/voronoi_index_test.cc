#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "core/voronoi_index.h"

namespace mds {
namespace {

PointSet BlobData(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  PointSet ps(d, 0);
  ps.Reserve(n);
  std::vector<double> p(d);
  for (size_t i = 0; i < n; ++i) {
    double mode = rng.NextDouble();
    for (size_t j = 0; j < d; ++j) {
      if (mode < 0.5) {
        p[j] = 0.3 + 0.04 * rng.NextGaussian();
      } else if (mode < 0.8) {
        p[j] = 0.7 + 0.06 * rng.NextGaussian();
      } else {
        p[j] = rng.NextDouble();
      }
    }
    ps.Append(p.data());
  }
  return ps;
}

uint32_t BruteForceNearestSeed(const VoronoiIndex& index, const float* p) {
  uint32_t best = 0;
  double best_d2 = 1e300;
  for (uint32_t s = 0; s < index.num_seeds(); ++s) {
    double d2 = SquaredDistance(index.seeds().point(s), p, index.dim());
    if (d2 < best_d2) {
      best_d2 = d2;
      best = s;
    }
  }
  return best;
}

TEST(VoronoiIndexTest, TagsAreNearestSeeds) {
  PointSet ps = BlobData(5000, 3, 1);
  VoronoiIndexConfig config;
  config.num_seeds = 64;
  auto index = VoronoiIndex::Build(&ps, config);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_seeds(), 64u);
  for (uint64_t i = 0; i < ps.size(); i += 37) {
    uint32_t brute = BruteForceNearestSeed(*index, ps.point(i));
    double d_tag = SquaredDistance(index->seeds().point(index->tag(i)),
                                   ps.point(i), 3);
    double d_brute =
        SquaredDistance(index->seeds().point(brute), ps.point(i), 3);
    EXPECT_DOUBLE_EQ(d_tag, d_brute) << "point " << i;
  }
}

TEST(VoronoiIndexTest, CellRowsPartition) {
  PointSet ps = BlobData(8000, 3, 3);
  VoronoiIndexConfig config;
  config.num_seeds = 100;
  auto index = VoronoiIndex::Build(&ps, config);
  ASSERT_TRUE(index.ok());
  uint64_t total = 0;
  std::set<uint64_t> seen;
  for (uint32_t c = 0; c < index->num_seeds(); ++c) {
    for (uint64_t r = index->cell_row_begin(c); r < index->cell_row_end(c);
         ++r) {
      uint64_t id = index->clustered_order()[r];
      EXPECT_EQ(index->tag(id), c);
      seen.insert(id);
      ++total;
    }
  }
  EXPECT_EQ(total, ps.size());
  EXPECT_EQ(seen.size(), ps.size());
}

TEST(VoronoiIndexTest, CellBoundsContainMembers) {
  PointSet ps = BlobData(4000, 2, 5);
  VoronoiIndexConfig config;
  config.num_seeds = 50;
  auto index = VoronoiIndex::Build(&ps, config);
  ASSERT_TRUE(index.ok());
  for (uint64_t i = 0; i < ps.size(); ++i) {
    EXPECT_TRUE(index->cell_bounds(index->tag(i)).Contains(ps.point(i)));
  }
}

TEST(VoronoiIndexTest, SeedIdsMapToSeedCoordinates) {
  PointSet ps = BlobData(2000, 3, 7);
  VoronoiIndexConfig config;
  config.num_seeds = 32;
  auto index = VoronoiIndex::Build(&ps, config);
  ASSERT_TRUE(index.ok());
  ASSERT_EQ(index->seed_point_ids().size(), 32u);
  for (uint32_t s = 0; s < 32; ++s) {
    uint64_t id = index->seed_point_ids()[s];
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(index->seeds().coord(s, j), ps.coord(id, j));
    }
  }
}

TEST(VoronoiIndexTest, ExactDelaunayWalkFindsNearestSeed) {
  PointSet ps = BlobData(3000, 2, 9);
  VoronoiIndexConfig config;
  config.num_seeds = 80;
  config.graph_mode = VoronoiGraphMode::kExactDelaunay;
  auto index = VoronoiIndex::Build(&ps, config);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->delaunay().has_value());
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    double q[2] = {rng.NextDouble(), rng.NextDouble()};
    WalkStats stats;
    uint32_t walked = index->WalkLocate(q, trial % index->num_seeds(), &stats);
    uint32_t exact = index->NearestSeed(q);
    // The directed walk on the exact Delaunay graph reaches the nearest
    // seed (up to exact distance ties).
    double dw = SquaredDistance(q, index->seeds().point(walked), 2);
    double de = SquaredDistance(q, index->seeds().point(exact), 2);
    EXPECT_DOUBLE_EQ(dw, de) << "trial " << trial;
    EXPECT_LT(stats.steps, index->num_seeds());
  }
}

TEST(VoronoiIndexTest, WitnessWalkMostlyFindsNearestSeed) {
  PointSet ps = BlobData(20000, 3, 13);
  VoronoiIndexConfig config;
  config.num_seeds = 128;
  config.graph_mode = VoronoiGraphMode::kWitness;
  auto index = VoronoiIndex::Build(&ps, config);
  ASSERT_TRUE(index.ok());
  Rng rng(17);
  int hits = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    // Query near the data distribution, where the witness graph is dense.
    uint64_t anchor = rng.NextBounded(ps.size());
    double q[3];
    for (size_t j = 0; j < 3; ++j) {
      q[j] = ps.coord(anchor, j) + 0.01 * rng.NextGaussian();
    }
    uint32_t walked = index->WalkLocate(q, 0);
    uint32_t exact = index->NearestSeed(q);
    double dw = SquaredDistance(q, index->seeds().point(walked), 3);
    double de = SquaredDistance(q, index->seeds().point(exact), 3);
    if (dw == de) ++hits;
  }
  EXPECT_GT(hits, trials * 8 / 10);
}

TEST(VoronoiIndexTest, QueryPolyhedronMatchesBruteForce) {
  PointSet ps = BlobData(10000, 3, 19);
  VoronoiIndexConfig config;
  config.num_seeds = 96;
  auto index = VoronoiIndex::Build(&ps, config);
  ASSERT_TRUE(index.ok());
  Rng rng(21);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<double> center = {rng.NextDouble(), rng.NextDouble(),
                                  rng.NextDouble()};
    Polyhedron poly = Polyhedron::BallApproximation(
        center, rng.NextUniform(0.05, 0.5), 10 + trial);
    std::vector<uint64_t> got;
    VoronoiQueryStats stats;
    index->QueryPolyhedron(poly, &got, &stats);
    std::vector<uint64_t> expect;
    for (uint64_t i = 0; i < ps.size(); ++i) {
      if (poly.Contains(ps.point(i))) expect.push_back(i);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect) << "trial " << trial;
    EXPECT_EQ(stats.points_emitted, expect.size());
    EXPECT_EQ(stats.cells_inside + stats.cells_outside + stats.cells_partial,
              index->num_seeds());
  }
}

TEST(VoronoiIndexTest, VolumesSumToBoxVolume) {
  PointSet ps = BlobData(3000, 2, 23);
  VoronoiIndexConfig config;
  config.num_seeds = 40;
  auto index = VoronoiIndex::Build(&ps, config);
  ASSERT_TRUE(index.ok());
  Rng rng(25);
  std::vector<double> volumes = index->EstimateCellVolumes(100000, rng);
  double sum = 0.0;
  for (double v : volumes) sum += v;
  Box bounds = Box::Bounding(ps);
  EXPECT_NEAR(sum, bounds.Volume(), 1e-9);
}

TEST(VoronoiIndexTest, DensityTracksLocalCrowding) {
  // Cells in the dense blob must report much higher density than cells in
  // the sparse background — the §3.4 inverse-volume density estimator.
  PointSet ps = BlobData(30000, 2, 27);
  VoronoiIndexConfig config;
  config.num_seeds = 120;
  auto index = VoronoiIndex::Build(&ps, config);
  ASSERT_TRUE(index.ok());
  Rng rng(29);
  std::vector<double> density = index->EstimateCellDensities(200000, rng);
  // Identify the seed nearest the dense blob center and one far corner.
  double blob_center[2] = {0.3, 0.3};
  double corner[2] = {0.02, 0.98};
  uint32_t dense_cell = index->NearestSeed(blob_center);
  uint32_t sparse_cell = index->NearestSeed(corner);
  EXPECT_GT(density[dense_cell], 5.0 * density[sparse_cell]);
}

TEST(VoronoiIndexTest, WitnessGraphSymmetric) {
  PointSet ps = BlobData(5000, 3, 31);
  VoronoiIndexConfig config;
  config.num_seeds = 60;
  auto index = VoronoiIndex::Build(&ps, config);
  ASSERT_TRUE(index.ok());
  const auto& graph = index->seed_graph();
  for (uint32_t u = 0; u < graph.size(); ++u) {
    for (uint32_t v : graph[u]) {
      EXPECT_TRUE(std::binary_search(graph[v].begin(), graph[v].end(), u));
    }
  }
}

TEST(VoronoiIndexTest, ClampsedSeedCount) {
  PointSet ps = BlobData(10, 2, 33);
  VoronoiIndexConfig config;
  config.num_seeds = 1000;
  auto index = VoronoiIndex::Build(&ps, config);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_seeds(), 10u);
}

}  // namespace
}  // namespace mds
