#ifndef MDS_TESTS_CHAOS_HARNESS_H_
#define MDS_TESTS_CHAOS_HARNESS_H_

// Cluster-under-chaos fixture: boots one mdsd QueryServer per (shard,
// replica), one ChaosProxy in front of each, and an mdsc Coordinator
// whose shard map points at the proxy ports — so every byte between the
// coordinator and its backends crosses a seeded fault injector, while
// the client-to-coordinator link stays clean.
//
// Proxies start fault-free so the coordinator's Start() probe always
// succeeds; tests apply the chaos policy afterwards (per-frame faults
// affect existing links, per-connection fates apply to links accepted
// later — run the coordinator with pool_connections_per_replica = 0 when
// a test needs every leg to draw a fresh connection fate).

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/chaos_proxy.h"
#include "common/result.h"
#include "server/coordinator.h"
#include "server/dataset.h"
#include "server/server.h"

namespace mds {
namespace chaos {

class ChaosCluster {
 public:
  using FrameObserver = std::function<void(const std::vector<uint8_t>&)>;

  /// `shards[s]` lists the datasets of shard s's replicas (replicas of
  /// one shard share a dataset). Proxy i (in boot order) is seeded
  /// `seed + i`, so one campaign seed fixes every link's fault schedule.
  ChaosCluster(std::vector<std::vector<ServedDataset*>> shards, uint64_t seed,
               CoordinatorConfig config = {})
      : datasets_(std::move(shards)), seed_(seed), config_(config) {}

  ~ChaosCluster() { Shutdown(); }

  ChaosCluster(const ChaosCluster&) = delete;
  ChaosCluster& operator=(const ChaosCluster&) = delete;

  /// Registers an observer for every client->server frame payload on the
  /// (shard, replica) link. Must be called before Start().
  void ObserveClientFrames(size_t shard, size_t replica, FrameObserver fn) {
    pending_observers_.push_back({shard, replica, std::move(fn)});
  }

  Status Start() {
    uint64_t link = 0;
    ShardMap map;
    for (size_t s = 0; s < datasets_.size(); ++s) {
      std::vector<BackendAddress> addrs;
      backends_.emplace_back();
      proxies_.emplace_back();
      for (ServedDataset* dataset : datasets_[s]) {
        auto server = std::make_unique<QueryServer>(dataset, ServerConfig{});
        MDS_RETURN_NOT_OK(server->Start());
        auto proxy = std::make_unique<ChaosProxy>(
            "127.0.0.1", server->port(), seed_ + link, ChaosPolicy{});
        for (const PendingObserver& pending : pending_observers_) {
          if (pending.shard == s && pending.replica == backends_[s].size()) {
            proxy->SetClientFrameObserver(pending.fn);
          }
        }
        MDS_RETURN_NOT_OK(proxy->Start());
        addrs.push_back({"127.0.0.1", proxy->port()});
        backends_[s].push_back(std::move(server));
        proxies_[s].push_back(std::move(proxy));
        ++link;
      }
      map.shards.push_back(std::move(addrs));
    }
    coordinator_ = std::make_unique<Coordinator>(map, config_);
    return coordinator_->Start();
  }

  /// Applies one policy to every link's proxy.
  void ApplyPolicyEverywhere(const ChaosPolicy& policy) {
    for (auto& shard : proxies_) {
      for (auto& proxy : shard) proxy->SetPolicy(policy);
    }
  }

  Coordinator& coordinator() { return *coordinator_; }
  uint16_t port() const { return coordinator_->port(); }

  ChaosProxy& proxy(size_t shard, size_t replica) {
    return *proxies_[shard][replica];
  }
  QueryServer& backend(size_t shard, size_t replica) {
    return *backends_[shard][replica];
  }
  /// Direct (unproxied) backend port — oracle queries go here.
  uint16_t backend_port(size_t shard, size_t replica) const {
    return backends_[shard][replica]->port();
  }

  /// Sum of every proxy's counters: proves a campaign's faults actually
  /// fired.
  ChaosProxy::Counters TotalProxyCounters() const {
    ChaosProxy::Counters total;
    for (const auto& shard : proxies_) {
      for (const auto& proxy : shard) {
        const ChaosProxy::Counters c = proxy->counters();
        total.connections_accepted += c.connections_accepted;
        total.connections_reset += c.connections_reset;
        total.connections_blackholed += c.connections_blackholed;
        total.frames_in += c.frames_in;
        total.frames_out += c.frames_out;
        total.frames_truncated += c.frames_truncated;
        total.frames_bitflipped += c.frames_bitflipped;
      }
    }
    return total;
  }

  /// Coordinator first (it waits out in-flight legs, which the proxies'
  /// fault deadlines bound), then the proxies, then the backends.
  void Shutdown() {
    if (coordinator_) coordinator_->Shutdown();
    for (auto& shard : proxies_) {
      for (auto& proxy : shard) proxy->Shutdown();
    }
    for (auto& shard : backends_) {
      for (auto& server : shard) server->Shutdown();
    }
  }

 private:
  struct PendingObserver {
    size_t shard = 0;
    size_t replica = 0;
    FrameObserver fn;
  };

  std::vector<std::vector<ServedDataset*>> datasets_;
  uint64_t seed_;
  CoordinatorConfig config_;
  std::vector<PendingObserver> pending_observers_;

  std::vector<std::vector<std::unique_ptr<QueryServer>>> backends_;
  std::vector<std::vector<std::unique_ptr<ChaosProxy>>> proxies_;
  std::unique_ptr<Coordinator> coordinator_;
};

}  // namespace chaos
}  // namespace mds

#endif  // MDS_TESTS_CHAOS_HARNESS_H_
