// Seeded chaos campaign over mdsc + mdsd: every byte between the
// coordinator and its backends crosses a fault-injecting proxy
// (tests/chaos/harness.h), and every client request must terminate
// within its deadline budget as exactly one of
//   - a full reply, byte-identical to the all-shards oracle,
//   - a correctly flagged partial reply, byte-identical to the
//     surviving-shard oracle (only when the client sent allow_partial),
//   - an honest retryable error,
// never a hang and never a silently wrong merge. Deterministic tests
// then pin the individual mechanisms: the deadline budget strictly
// decreasing across backend legs, a 100 ms deadline honored under a
// blackholed replica, exact deadline_timeouts/failovers accounting for a
// slow-but-alive backend, hedge-loser connection hygiene, and the
// partial-reply oracle check.
//
// Environment knobs (CI runs a seed matrix):
//   MDS_CHAOS_SEED      campaign seed         (default 1)
//   MDS_CHAOS_REQUESTS  requests per fault mix (default 160)

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "chaos/harness.h"
#include "geom/box.h"
#include "sdss/catalog.h"
#include "server/client.h"
#include "server/coordinator.h"
#include "server/dataset.h"
#include "server/protocol.h"
#include "server/server.h"

namespace mds {
namespace {

using chaos::ChaosCluster;
using protocol::WireNeighbor;

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

int64_t ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

/// The failure codes the coordinator may honestly hand a client when
/// backends fail under it: retryable transport/shed codes plus a spent
/// deadline. Anything else (kCorruption leaking through the transport,
/// kInternal, a surprise kInvalidArgument) is a bug the campaign flags.
bool HonestFailure(const Status& st) {
  switch (st.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kIOError:
    case StatusCode::kNotFound:
      return true;
    default:
      return false;
  }
}

protocol::QueryReply ToWire(const QueryClient::QueryResult& r) {
  protocol::QueryReply w;
  w.row_count = r.row_count;
  w.objids = r.objids;
  w.rows_scanned = r.rows_scanned;
  w.pages_fetched = r.pages_fetched;
  w.pages_read = r.pages_read;
  w.pages_skipped = r.pages_skipped;
  w.degraded = r.degraded;
  w.chosen_path = r.chosen_path;
  return w;
}

// --- the campaign fixture --------------------------------------------------

class ChaosCampaignTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kRows = 20000;
  static constexpr uint64_t kDataSeed = 7;
  static constexpr size_t kShards = 2;
  static constexpr uint32_t kDeadlineMs = 2000;

  /// One request shape plus its per-shard oracle replies, precomputed
  /// over direct (unproxied) backends, so any surviving-shard subset can
  /// be merged with the coordinator's own exported merge helpers and
  /// byte-compared.
  struct Shape {
    enum Kind { kCount, kBox, kKnn, kSample };
    Kind kind;
    Box box;
    uint64_t limit = 0;
    std::vector<double> point;
    uint32_t k = 0;
    double percent = 10.0;
    uint64_t n = 50;
    uint64_t sample_seed = 123;
    std::vector<protocol::QueryReply> shard_replies;
    std::vector<std::vector<WireNeighbor>> shard_neighbors;
    Shape(Kind kind_arg, Box box_arg) : kind(kind_arg), box(std::move(box_arg)) {}
  };

  static void SetUpTestSuite() {
    for (uint32_t s = 0; s < kShards; ++s) {
      DatasetConfig config;
      config.num_rows = kRows;
      config.seed = kDataSeed;
      config.shard_index = s;
      config.shard_count = kShards;
      auto built = ServedDataset::Build(config);
      ASSERT_TRUE(built.ok()) << built.status().ToString();
      shard_[s] = new ServedDataset(std::move(*built));
    }
    BuildShapes();
  }

  static void TearDownTestSuite() {
    delete shapes_;
    shapes_ = nullptr;
    for (auto& d : shard_) {
      delete d;
      d = nullptr;
    }
  }

  static Box LocusBox(double half_width) {
    double mags[kNumBands];
    StellarLocus(0.5, 0.0, mags);
    std::vector<double> lo(mags, mags + kNumBands);
    std::vector<double> hi = lo;
    for (size_t j = 0; j < kNumBands; ++j) {
      lo[j] -= half_width;
      hi[j] += half_width;
    }
    return Box(lo, hi);
  }

  /// Query options a campaign request of this shape uses. Box queries pin
  /// the access path so each shard's emit order (hence the merge) is
  /// deterministic; the oracle below pins the same path.
  static QueryOptions ShapeOptions(const Shape& shape, bool allow_partial) {
    QueryOptions opt;
    opt.deadline_ms = kDeadlineMs;
    opt.allow_partial = allow_partial;
    if (shape.kind == Shape::kBox) opt.force_index = true;
    return opt;
  }

  /// Precomputes each shape's per-shard replies through short-lived
  /// direct servers — the same sub-requests the coordinator issues
  /// (per-shard kNN k clamped to the shard's rows, limits passed
  /// through).
  static void BuildShapes() {
    shapes_ = new std::vector<Shape>;
    {
      Shape count(Shape::kCount, LocusBox(0.5));
      shapes_->push_back(std::move(count));
      Shape all_rows(Shape::kBox, LocusBox(0.8));
      shapes_->push_back(std::move(all_rows));
      Shape limited(Shape::kBox, LocusBox(0.6));
      limited.limit = 7;
      shapes_->push_back(std::move(limited));
      Shape knn(Shape::kKnn, LocusBox(0.1));
      double target[kNumBands];
      StellarLocus(0.62, 0.3, target);
      knn.point.assign(target, target + kNumBands);
      knn.k = 50;
      shapes_->push_back(std::move(knn));
      Shape sample(Shape::kSample, LocusBox(0.8));
      shapes_->push_back(std::move(sample));
    }

    for (size_t s = 0; s < kShards; ++s) {
      QueryServer server(shard_[s], ServerConfig{});
      ASSERT_TRUE(server.Start().ok());
      auto client = QueryClient::Connect("127.0.0.1", server.port());
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      for (Shape& shape : *shapes_) {
        const QueryOptions opt = ShapeOptions(shape, false);
        switch (shape.kind) {
          case Shape::kCount: {
            auto r = client->PointCountDetailed(shape.box, opt);
            ASSERT_TRUE(r.ok()) << r.status().ToString();
            shape.shard_replies.push_back(ToWire(*r));
            break;
          }
          case Shape::kBox: {
            auto r = client->BoxQuery(shape.box, shape.limit, opt);
            ASSERT_TRUE(r.ok()) << r.status().ToString();
            shape.shard_replies.push_back(ToWire(*r));
            break;
          }
          case Shape::kKnn: {
            const uint32_t k_shard = static_cast<uint32_t>(
                std::min<uint64_t>(shape.k, shard_[s]->num_rows()));
            auto r = client->Knn(shape.point, k_shard, opt);
            ASSERT_TRUE(r.ok()) << r.status().ToString();
            shape.shard_neighbors.push_back(std::move(r->neighbors));
            break;
          }
          case Shape::kSample: {
            auto r = client->TableSample(shape.box, shape.percent, shape.n,
                                         shape.sample_seed, opt);
            ASSERT_TRUE(r.ok()) << r.status().ToString();
            shape.shard_replies.push_back(ToWire(*r));
            break;
          }
        }
      }
      server.Shutdown();
    }
  }

  /// Oracle merge over the shards in `mask`, via the coordinator's own
  /// exported merge helpers.
  static protocol::QueryReply ExpectedQuery(const Shape& shape, uint64_t mask) {
    std::vector<protocol::QueryReply> parts;
    for (size_t s = 0; s < kShards; ++s) {
      if (mask & (1ull << s)) parts.push_back(shape.shard_replies[s]);
    }
    const uint64_t limit =
        shape.kind == Shape::kSample ? shape.n : shape.limit;
    protocol::QueryReply merged = MergeQueryReplies(std::move(parts), limit);
    if (shape.kind == Shape::kSample) merged.row_count = merged.objids.size();
    return merged;
  }

  static std::vector<WireNeighbor> ExpectedKnn(const Shape& shape,
                                               uint64_t mask) {
    std::vector<std::vector<WireNeighbor>> parts;
    for (size_t s = 0; s < kShards; ++s) {
      if (mask & (1ull << s)) parts.push_back(shape.shard_neighbors[s]);
    }
    return MergeKnnNeighbors(parts, shape.k);
  }

  /// Coverage invariants every OK reply must satisfy.
  static void CheckCoverage(bool allow_partial, bool partial, bool degraded,
                            uint32_t answered, uint32_t total, uint64_t mask) {
    EXPECT_EQ(total, kShards);
    EXPECT_EQ(static_cast<uint32_t>(__builtin_popcountll(mask)), answered);
    if (partial) {
      EXPECT_TRUE(allow_partial) << "partial reply without client opt-in";
      EXPECT_TRUE(degraded) << "partial reply must also carry kFlagDegraded";
      EXPECT_GE(answered, 1u);
      EXPECT_LT(answered, total);
    } else {
      EXPECT_EQ(answered, total);
      EXPECT_EQ(mask, (1ull << kShards) - 1);
    }
  }

  struct Tally {
    std::atomic<uint64_t> ok_full{0};
    std::atomic<uint64_t> ok_partial{0};
    std::atomic<uint64_t> errors{0};
  };

  /// One campaign worker: a closed loop of rotating request shapes,
  /// alternating allow_partial, classifying every outcome against the
  /// oracle. Reconnects after transport failures like a real client.
  static void Worker(ChaosCluster& cluster, int worker, uint64_t requests,
                     Tally* tally) {
    auto connect = [&]() -> Result<QueryClient> {
      return QueryClient::Connect("127.0.0.1", cluster.port());
    };
    auto client = connect();
    ASSERT_TRUE(client.ok()) << client.status().ToString();

    for (uint64_t i = 0; i < requests; ++i) {
      if (!client->connected()) {
        client = connect();
        ASSERT_TRUE(client.ok()) << client.status().ToString();
      }
      const Shape& shape =
          (*shapes_)[(static_cast<uint64_t>(worker) + i) % shapes_->size()];
      const bool allow_partial = (i % 2) == 0;
      const QueryOptions opt = ShapeOptions(shape, allow_partial);
      SCOPED_TRACE("worker " + std::to_string(worker) + " request " +
                   std::to_string(i) + " shape kind " +
                   std::to_string(shape.kind) +
                   (allow_partial ? " allow_partial" : ""));

      const auto start = std::chrono::steady_clock::now();
      Status st = Status::OK();
      switch (shape.kind) {
        case Shape::kCount: {
          auto r = client->PointCountDetailed(shape.box, opt);
          st = r.status();
          if (r.ok()) {
            CheckCoverage(allow_partial, r->partial, r->degraded,
                          r->shards_answered, r->shards_total, r->shards_mask);
            EXPECT_EQ(r->row_count,
                      ExpectedQuery(shape, r->shards_mask).row_count);
            (r->partial ? tally->ok_partial : tally->ok_full)
                .fetch_add(1, std::memory_order_relaxed);
          }
          break;
        }
        case Shape::kBox: {
          auto r = client->BoxQuery(shape.box, shape.limit, opt);
          st = r.status();
          if (r.ok()) {
            CheckCoverage(allow_partial, r->partial, r->degraded,
                          r->shards_answered, r->shards_total, r->shards_mask);
            const protocol::QueryReply want =
                ExpectedQuery(shape, r->shards_mask);
            EXPECT_EQ(r->row_count, want.row_count);
            EXPECT_EQ(r->objids, want.objids);
            (r->partial ? tally->ok_partial : tally->ok_full)
                .fetch_add(1, std::memory_order_relaxed);
          }
          break;
        }
        case Shape::kKnn: {
          auto r = client->Knn(shape.point, shape.k, opt);
          st = r.status();
          if (r.ok()) {
            CheckCoverage(allow_partial, r->partial, r->degraded,
                          r->shards_answered, r->shards_total, r->shards_mask);
            const std::vector<WireNeighbor> want =
                ExpectedKnn(shape, r->shards_mask);
            ASSERT_EQ(r->neighbors.size(), want.size());
            for (size_t j = 0; j < want.size(); ++j) {
              EXPECT_EQ(r->neighbors[j].id, want[j].id) << j;
              EXPECT_EQ(r->neighbors[j].squared_distance,
                        want[j].squared_distance)
                  << j;
            }
            (r->partial ? tally->ok_partial : tally->ok_full)
                .fetch_add(1, std::memory_order_relaxed);
          }
          break;
        }
        case Shape::kSample: {
          auto r = client->TableSample(shape.box, shape.percent, shape.n,
                                       shape.sample_seed, opt);
          st = r.status();
          if (r.ok()) {
            CheckCoverage(allow_partial, r->partial, r->degraded,
                          r->shards_answered, r->shards_total, r->shards_mask);
            const protocol::QueryReply want =
                ExpectedQuery(shape, r->shards_mask);
            EXPECT_EQ(r->row_count, want.row_count);
            EXPECT_EQ(r->objids, want.objids);
            (r->partial ? tally->ok_partial : tally->ok_full)
                .fetch_add(1, std::memory_order_relaxed);
          }
          break;
        }
      }
      if (!st.ok()) {
        EXPECT_TRUE(HonestFailure(st)) << st.ToString();
        tally->errors.fetch_add(1, std::memory_order_relaxed);
      }
      // Terminate-within-deadline: the coordinator's legs are budgeted to
      // kDeadlineMs, so well before the client's own exchange bound
      // (deadline + 2 s slack) there must be an answer. A request that
      // rides the client bound means the coordinator wedged.
      EXPECT_LT(ElapsedMs(start), static_cast<int64_t>(kDeadlineMs) + 1500)
          << "request exceeded deadline + slack: coordinator hang";
    }
  }

  /// Runs one fault mix: a fresh cluster (fresh breakers and budgets),
  /// the policy applied to every link, 4 workers classifying every
  /// reply. Returns the totals for mix-specific assertions.
  struct MixReport {
    Tally tally;
    ChaosProxy::Counters faults;
  };

  void RunMix(const char* name, const ChaosPolicy& policy, MixReport* report) {
    const uint64_t seed = EnvU64("MDS_CHAOS_SEED", 1);
    const uint64_t requests = EnvU64("MDS_CHAOS_REQUESTS", 160);
    SCOPED_TRACE(std::string("mix ") + name + " seed " + std::to_string(seed));

    CoordinatorConfig config;
    config.sub_deadline_ms = 250;
    config.jitter_seed = seed;
    // Every leg makes a fresh backend connection, so every leg draws a
    // per-connection fault fate — a fault-free pooled steady state would
    // sidestep reset/blackhole mixes entirely.
    config.pool_connections_per_replica = 0;
    ChaosCluster cluster({{shard_[0], shard_[0]}, {shard_[1], shard_[1]}},
                         seed * 1000, config);
    ASSERT_TRUE(cluster.Start().ok());
    cluster.ApplyPolicyEverywhere(policy);

    constexpr int kWorkers = 4;
    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&cluster, w, requests, report] {
        Worker(cluster, w, requests / kWorkers, &report->tally);
      });
    }
    for (auto& t : workers) t.join();
    report->faults = cluster.TotalProxyCounters();

    const uint64_t ok_full = report->tally.ok_full.load();
    const uint64_t ok_partial = report->tally.ok_partial.load();
    const uint64_t errors = report->tally.errors.load();
    std::printf("chaos mix %-10s seed %llu: %llu full, %llu partial, "
                "%llu errors (reset=%llu blackholed=%llu truncated=%llu "
                "bitflipped=%llu)\n",
                name, static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(ok_full),
                static_cast<unsigned long long>(ok_partial),
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(report->faults.connections_reset),
                static_cast<unsigned long long>(
                    report->faults.connections_blackholed),
                static_cast<unsigned long long>(report->faults.frames_truncated),
                static_cast<unsigned long long>(
                    report->faults.frames_bitflipped));
    // Some requests must get through even under fire, and the accounting
    // must cover every request issued.
    EXPECT_GT(ok_full + ok_partial, 0u);
    EXPECT_EQ(ok_full + ok_partial + errors,
              (requests / kWorkers) * kWorkers);
  }

  static ServedDataset* shard_[kShards];
  static std::vector<Shape>* shapes_;
};

ServedDataset* ChaosCampaignTest::shard_[ChaosCampaignTest::kShards] = {};
std::vector<ChaosCampaignTest::Shape>* ChaosCampaignTest::shapes_ = nullptr;

// --- the five-mix seeded campaign ------------------------------------------

TEST_F(ChaosCampaignTest, CampaignConnectionResets) {
  ChaosPolicy policy;
  policy.reset_probability = 0.15;
  MixReport report;
  RunMix("reset", policy, &report);
  EXPECT_GT(report.faults.connections_reset, 0u);
}

TEST_F(ChaosCampaignTest, CampaignBlackholes) {
  ChaosPolicy policy;
  policy.blackhole_probability = 0.1;
  MixReport report;
  RunMix("blackhole", policy, &report);
  EXPECT_GT(report.faults.connections_blackholed, 0u);
}

TEST_F(ChaosCampaignTest, CampaignLatency) {
  ChaosPolicy policy;
  policy.latency_ms = 5;
  policy.jitter_ms = 10;
  policy.throttle_bytes_per_sec = 4 << 20;
  MixReport report;
  RunMix("latency", policy, &report);
  EXPECT_GT(report.faults.frames_in, 0u);
  // A merely slow network loses no requests: every request succeeded in
  // full (15 ms worst-case legs against a 250 ms sub-deadline).
  EXPECT_EQ(report.tally.errors.load(), 0u);
  EXPECT_EQ(report.tally.ok_partial.load(), 0u);
}

TEST_F(ChaosCampaignTest, CampaignTruncation) {
  ChaosPolicy policy;
  policy.truncate_probability = 0.2;
  MixReport report;
  RunMix("truncate", policy, &report);
  EXPECT_GT(report.faults.frames_truncated, 0u);
}

TEST_F(ChaosCampaignTest, CampaignBitFlips) {
  ChaosPolicy policy;
  policy.bitflip_probability = 0.2;
  MixReport report;
  RunMix("bitflip", policy, &report);
  EXPECT_GT(report.faults.frames_bitflipped, 0u);
}

// --- deadline propagation ---------------------------------------------------

TEST_F(ChaosCampaignTest, DeadlineBudgetStrictlyDecreasesAcrossLegs) {
  // Both replicas' links add 10 ms and then kill the connection after
  // forwarding one request frame, so the request walks both replicas and
  // each backend leg's frame records the deadline the backend would see.
  std::mutex mu;
  std::vector<uint32_t> observed;
  const auto observe = [&mu, &observed](const std::vector<uint8_t>& payload) {
    // MessageHeader: u16 version, u16 type, u32 flags, u64 request id;
    // every query body then opens with u32 deadline_ms.
    if (payload.size() < 20) return;
    uint16_t type = 0;
    std::memcpy(&type, payload.data() + 2, sizeof(type));
    if (type != static_cast<uint16_t>(protocol::MessageType::kPointCount)) {
      return;
    }
    uint32_t deadline = 0;
    std::memcpy(&deadline, payload.data() + 16, sizeof(deadline));
    std::lock_guard<std::mutex> lock(mu);
    observed.push_back(deadline);
  };

  CoordinatorConfig config;
  config.pool_connections_per_replica = 0;
  config.jitter_seed = 1;
  ChaosCluster cluster({{shard_[0], shard_[0]}}, /*seed=*/42, config);
  cluster.ObserveClientFrames(0, 0, observe);
  cluster.ObserveClientFrames(0, 1, observe);
  ASSERT_TRUE(cluster.Start().ok());

  ChaosPolicy policy;
  policy.reset_probability = 1.0;
  policy.reset_after_request_frames = 1;
  policy.latency_ms = 10;
  cluster.ApplyPolicyEverywhere(policy);

  auto client = QueryClient::Connect("127.0.0.1", cluster.port());
  ASSERT_TRUE(client.ok());
  QueryOptions opt;
  opt.deadline_ms = 500;
  auto count = client->PointCount(LocusBox(0.5), opt);
  ASSERT_FALSE(count.ok());  // both replicas die mid-conversation
  EXPECT_TRUE(HonestFailure(count.status())) << count.status().ToString();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_GE(observed.size(), 2u) << "expected a failover leg";
  EXPECT_LE(observed[0], 500u) << "leg budget must never exceed the client's";
  for (size_t i = 1; i < observed.size(); ++i) {
    EXPECT_LT(observed[i], observed[i - 1])
        << "backend-observed deadline budget must strictly decrease "
           "across legs (leg "
        << i << ")";
  }
}

TEST_F(ChaosCampaignTest, BlackholedReplicaHonorsHundredMsDeadline) {
  // Replica 0 accepts and never answers; replica 1 is clean. A 100 ms
  // request must come back well under 150 ms — the fixed 20 ms hedge
  // reaches replica 1 long before the blackholed leg's deadline, and the
  // blackholed leg itself is capped at the remaining budget, not at the
  // 10 s sub-deadline.
  CoordinatorConfig config;
  config.hedge_delay_ms = 20;
  config.pool_connections_per_replica = 0;
  config.jitter_seed = 1;
  ChaosCluster cluster({{shard_[0], shard_[0]}}, /*seed=*/43, config);
  ASSERT_TRUE(cluster.Start().ok());

  ChaosPolicy blackhole;
  blackhole.blackhole_probability = 1.0;
  cluster.proxy(0, 0).SetPolicy(blackhole);

  auto oracle = QueryClient::Connect("127.0.0.1", cluster.backend_port(0, 1));
  ASSERT_TRUE(oracle.ok());
  auto expected = oracle->PointCount(LocusBox(0.5));
  ASSERT_TRUE(expected.ok());

  auto client = QueryClient::Connect("127.0.0.1", cluster.port());
  ASSERT_TRUE(client.ok());
  constexpr int kRequests = 5;
  for (int i = 0; i < kRequests; ++i) {
    QueryOptions opt;
    opt.deadline_ms = 100;
    const auto start = std::chrono::steady_clock::now();
    auto count = client->PointCount(LocusBox(0.5), opt);
    const int64_t elapsed = ElapsedMs(start);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    EXPECT_EQ(*count, *expected);
    EXPECT_LT(elapsed, 150) << "request " << i;
  }

  const auto stats = cluster.coordinator().Stats();
  ASSERT_EQ(stats.shards.size(), 1u);
  EXPECT_GE(stats.shards[0].hedges_fired, static_cast<uint64_t>(kRequests));
  EXPECT_GE(stats.shards[0].hedges_won, static_cast<uint64_t>(kRequests));
}

TEST_F(ChaosCampaignTest, SlowButAliveBackendTimesOutWithExactCounters) {
  // Replica 0's link delays every request frame by 400 ms — the backend
  // is alive, just slower than the 100 ms leg deadline. The leg's read
  // deadline must fire (deadline_timeouts), and failover must happen
  // exactly when budget remains for another leg.
  CoordinatorConfig config;
  config.sub_deadline_ms = 100;
  config.pool_connections_per_replica = 0;
  config.jitter_seed = 1;
  ChaosCluster cluster({{shard_[0], shard_[0]}}, /*seed=*/44, config);
  ASSERT_TRUE(cluster.Start().ok());

  ChaosPolicy slow;
  slow.latency_ms = 400;
  cluster.proxy(0, 0).SetPolicy(slow);

  auto oracle = QueryClient::Connect("127.0.0.1", cluster.backend_port(0, 1));
  ASSERT_TRUE(oracle.ok());
  auto expected = oracle->PointCount(LocusBox(0.5));
  ASSERT_TRUE(expected.ok());

  auto client = QueryClient::Connect("127.0.0.1", cluster.port());
  ASSERT_TRUE(client.ok());

  // Ample budget: the timed-out leg fails over and the request succeeds.
  {
    QueryOptions opt;
    opt.deadline_ms = 1000;
    const auto start = std::chrono::steady_clock::now();
    auto count = client->PointCount(LocusBox(0.5), opt);
    const int64_t elapsed = ElapsedMs(start);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    EXPECT_EQ(*count, *expected);
    // The leg deadline (100 ms + 25 ms slack) had to fire, and the reply
    // must not have waited out the replica's 400 ms latency.
    EXPECT_GE(elapsed, 100);
    EXPECT_LT(elapsed, 380);
  }
  auto stats = cluster.coordinator().Stats();
  ASSERT_EQ(stats.shards.size(), 1u);
  EXPECT_EQ(stats.deadline_timeouts, 1u);
  EXPECT_EQ(stats.shards[0].failovers, 1u);
  EXPECT_EQ(stats.shards[0].backend_errors, 1u);

  // Budget == one leg: the timeout consumes it, so no failover leg may
  // start and the client gets an honest deadline error — promptly.
  {
    QueryOptions opt;
    opt.deadline_ms = 100;
    const auto start = std::chrono::steady_clock::now();
    auto count = client->PointCount(LocusBox(0.5), opt);
    const int64_t elapsed = ElapsedMs(start);
    ASSERT_FALSE(count.ok());
    EXPECT_EQ(count.status().code(), StatusCode::kDeadlineExceeded)
        << count.status().ToString();
    EXPECT_LT(elapsed, 380);
  }
  stats = cluster.coordinator().Stats();
  EXPECT_EQ(stats.deadline_timeouts, 2u);
  EXPECT_EQ(stats.shards[0].failovers, 1u) << "no budget => no failover leg";
  EXPECT_EQ(stats.shards[0].backend_errors, 2u);
}

// --- hedge hygiene ----------------------------------------------------------

TEST_F(ChaosCampaignTest, HedgeLoserIsReapedNotPooled) {
  // Replica 0 is slow-but-alive (400 ms); the 20 ms hedge against
  // replica 1 wins every race. The losing leg's connection has a stale
  // reply due on it, so pooling it would poison a later request — the
  // winner must abort and discard it. Connection pooling stays ON here:
  // the pool is exactly what this regression test is about.
  CoordinatorConfig config;
  config.hedge_delay_ms = 20;
  config.sub_deadline_ms = 2000;
  config.jitter_seed = 1;
  ChaosCluster cluster({{shard_[0], shard_[0]}}, /*seed=*/45, config);
  ASSERT_TRUE(cluster.Start().ok());

  ChaosPolicy slow;
  slow.latency_ms = 400;
  cluster.proxy(0, 0).SetPolicy(slow);

  auto oracle = QueryClient::Connect("127.0.0.1", cluster.backend_port(0, 1));
  ASSERT_TRUE(oracle.ok());
  auto expected = oracle->PointCount(LocusBox(0.5));
  ASSERT_TRUE(expected.ok());

  auto client = QueryClient::Connect("127.0.0.1", cluster.port());
  ASSERT_TRUE(client.ok());
  {
    const auto start = std::chrono::steady_clock::now();
    auto count = client->PointCount(LocusBox(0.5));
    const int64_t elapsed = ElapsedMs(start);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    EXPECT_EQ(*count, *expected);
    EXPECT_LT(elapsed, 300) << "the hedge, not the slow primary, must answer";
  }

  // Let the stalled primary's stale reply arrive at (and die against) the
  // aborted socket, then clear the fault and hammer the shard. If the
  // loser had been pooled, a later leg would acquire the poisoned
  // connection and fail: backend_errors must stay zero.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  cluster.proxy(0, 0).SetPolicy(ChaosPolicy{});
  for (int i = 0; i < 10; ++i) {
    auto count = client->PointCount(LocusBox(0.5));
    ASSERT_TRUE(count.ok()) << "request " << i << ": "
                            << count.status().ToString();
    EXPECT_EQ(*count, *expected) << i;
  }

  const auto stats = cluster.coordinator().Stats();
  ASSERT_EQ(stats.shards.size(), 1u);
  EXPECT_GE(stats.shards[0].hedges_won, 1u);
  EXPECT_EQ(stats.shards[0].backend_errors, 0u)
      << "an aborted hedge loser must cost nothing — a backend error here "
         "means its connection was pooled or its outcome was recorded";
  EXPECT_EQ(stats.shards[0].failovers, 0u);
}

// --- partial-result degradation ---------------------------------------------

TEST_F(ChaosCampaignTest, PartialReplyMatchesSurvivorOracle) {
  // Shard 0's only replica is blackholed; shard 1 is clean. allow_partial
  // requests must degrade to exactly the survivor's reply; the same
  // request without the flag must fail with the shard-0 exhaustion error.
  CoordinatorConfig config;
  config.sub_deadline_ms = 100;
  config.pool_connections_per_replica = 0;
  config.jitter_seed = 1;
  ChaosCluster cluster({{shard_[0]}, {shard_[1]}}, /*seed=*/46, config);
  ASSERT_TRUE(cluster.Start().ok());

  ChaosPolicy blackhole;
  blackhole.blackhole_probability = 1.0;
  cluster.proxy(0, 0).SetPolicy(blackhole);

  auto client = QueryClient::Connect("127.0.0.1", cluster.port());
  ASSERT_TRUE(client.ok());

  const Shape& box_shape = (*shapes_)[1];  // unlimited box query
  const Shape& knn_shape = (*shapes_)[3];
  const uint64_t survivor_mask = 0b10;

  {
    QueryOptions opt = ShapeOptions(box_shape, /*allow_partial=*/true);
    opt.deadline_ms = 1000;
    auto r = client->BoxQuery(box_shape.box, box_shape.limit, opt);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->partial);
    EXPECT_TRUE(r->degraded);
    EXPECT_EQ(r->shards_total, 2u);
    EXPECT_EQ(r->shards_answered, 1u);
    EXPECT_EQ(r->shards_mask, survivor_mask);
    const protocol::QueryReply want = ExpectedQuery(box_shape, survivor_mask);
    EXPECT_EQ(r->row_count, want.row_count);
    EXPECT_EQ(r->objids, want.objids);
  }
  {
    QueryOptions opt = ShapeOptions(knn_shape, /*allow_partial=*/true);
    opt.deadline_ms = 1000;
    auto r = client->Knn(knn_shape.point, knn_shape.k, opt);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->partial);
    EXPECT_TRUE(r->degraded);
    EXPECT_EQ(r->shards_mask, survivor_mask);
    const std::vector<WireNeighbor> want =
        ExpectedKnn(knn_shape, survivor_mask);
    ASSERT_EQ(r->neighbors.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(r->neighbors[j].id, want[j].id) << j;
      EXPECT_EQ(r->neighbors[j].squared_distance, want[j].squared_distance)
          << j;
    }
  }
  {
    // No opt-in, no degradation: the shard failure fails the request.
    QueryOptions opt = ShapeOptions(box_shape, /*allow_partial=*/false);
    opt.deadline_ms = 1000;
    auto r = client->BoxQuery(box_shape.box, box_shape.limit, opt);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(HonestFailure(r.status())) << r.status().ToString();
  }

  const auto stats = cluster.coordinator().Stats();
  EXPECT_EQ(stats.partial_replies, 2u);
  ASSERT_EQ(stats.shards.size(), 2u);
  EXPECT_GE(stats.shards[0].backend_errors, 3u);
  EXPECT_EQ(stats.shards[1].backend_errors, 0u);
}

}  // namespace
}  // namespace mds
