// The zero-copy reply path, regression-tested at the byte level: a cache
// hit must put the exact same bytes on the wire as the miss that
// populated it (re-headed in place, framed once, no payload copy), the
// BufferedSocket writev queue must survive partial writes that stop in
// the middle of an iovec, and a multi-megabyte reply must arrive intact
// through kernel backpressure. These tests speak raw frames where byte
// identity is the contract and the client library where decoding is.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/buffered_socket.h"
#include "common/crc32c.h"
#include "common/slab_pool.h"
#include "server/client.h"
#include "server/dataset.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/wire.h"

namespace mds {
namespace {

using protocol::MessageHeader;
using protocol::MessageType;

class ReplyPathTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetConfig config;
    // Enough rows that a whole-domain box reply exceeds 1 MiB of objids,
    // which both forces the oversize slice path and outruns the kernel
    // socket buffers (the backpressure test depends on that).
    config.num_rows = 150000;
    auto built = ServedDataset::Build(config);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    dataset_ = new ServedDataset(std::move(*built));
  }

  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static Socket MustConnectRaw(const QueryServer& server) {
    auto sock = TcpConnect("127.0.0.1", server.port(), 5000);
    EXPECT_TRUE(sock.ok()) << sock.status().ToString();
    return std::move(*sock);
  }

  /// A box around the stellar locus with a healthy number of matches.
  static Box LocusBox(double half_width) {
    double mags[kNumBands];
    StellarLocus(0.5, 0.0, mags);
    std::vector<double> lo(mags, mags + kNumBands);
    std::vector<double> hi = lo;
    for (size_t j = 0; j < kNumBands; ++j) {
      lo[j] -= half_width;
      hi[j] += half_width;
    }
    return Box(lo, hi);
  }

  /// Complete kBoxQuery request frame (prefix + payload) with a chosen
  /// request id — built by hand so two sends are bit-identical.
  static std::vector<uint8_t> BoxRequestFrame(uint64_t request_id,
                                              const Box& box,
                                              uint64_t limit = 0) {
    protocol::BoxQueryRequest req;
    req.lo = box.lo();
    req.hi = box.hi();
    req.limit = limit;
    std::vector<uint8_t> payload;
    WireWriter w(&payload);
    MessageHeader header;
    header.type = MessageType::kBoxQuery;
    header.request_id = request_id;
    EncodeMessageHeader(header, &w);
    w.PutU32(0);  // deadline_ms
    EncodeBoxQueryRequest(req, &w);
    std::vector<uint8_t> frame;
    protocol::AppendFrame(payload, &frame);
    return frame;
  }

  /// Reads one complete raw reply frame (prefix + payload) and checks the
  /// frame invariants (magic, CRC over the payload bytes).
  static std::vector<uint8_t> ReadRawFrame(Socket* sock) {
    std::vector<uint8_t> frame(protocol::kFramePrefixBytes);
    Status st =
        sock->ReadFull(frame.data(), frame.size(), IoDeadline::After(10000));
    EXPECT_TRUE(st.ok()) << st.ToString();
    if (!st.ok()) return {};
    uint32_t magic = 0, payload_len = 0, crc = 0;
    std::memcpy(&magic, frame.data(), 4);
    std::memcpy(&payload_len, frame.data() + 4, 4);
    std::memcpy(&crc, frame.data() + 8, 4);
    EXPECT_EQ(magic, protocol::kFrameMagic);
    EXPECT_LE(payload_len, protocol::kMaxPayloadBytes);
    frame.resize(protocol::kFramePrefixBytes + payload_len);
    st = sock->ReadFull(frame.data() + protocol::kFramePrefixBytes,
                        payload_len, IoDeadline::After(10000));
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(Crc32c(frame.data() + protocol::kFramePrefixBytes, payload_len),
              crc);
    return frame;
  }

  static ServedDataset* dataset_;
};

ServedDataset* ReplyPathTest::dataset_ = nullptr;

// Satellite bugfix #1: a cache hit is the SAME bytes as the miss that
// populated it. Sending the identical request frame twice (same request
// id) must produce two byte-identical reply frames — any divergence means
// the hit path re-encoded, re-framed, or re-copied the payload.
TEST_F(ReplyPathTest, CacheHitReplyBytesIdenticalToMissReply) {
  ServerConfig config;
  config.num_workers = 2;
  config.cache_bytes = 4u << 20;
  QueryServer server(dataset_, config);
  ASSERT_TRUE(server.Start().ok());

  Socket sock = MustConnectRaw(server);
  const std::vector<uint8_t> request = BoxRequestFrame(901, LocusBox(0.5));

  ASSERT_TRUE(sock.WriteFull(request.data(), request.size(),
                             IoDeadline::After(5000))
                  .ok());
  const std::vector<uint8_t> miss_reply = ReadRawFrame(&sock);
  ASSERT_FALSE(miss_reply.empty());

  ASSERT_TRUE(sock.WriteFull(request.data(), request.size(),
                             IoDeadline::After(5000))
                  .ok());
  const std::vector<uint8_t> hit_reply = ReadRawFrame(&sock);

  EXPECT_EQ(hit_reply, miss_reply);

  // The hit decodes as a well-formed successful reply.
  WireReader r(hit_reply.data() + protocol::kFramePrefixBytes,
               hit_reply.size() - protocol::kFramePrefixBytes);
  MessageHeader header;
  ASSERT_TRUE(DecodeMessageHeader(&r, &header).ok());
  EXPECT_EQ(header.request_id, 901u);
  EXPECT_NE(header.flags & protocol::kFlagReply, 0u);
  Status remote;
  ASSERT_TRUE(protocol::DecodeStatus(&r, &remote).ok());
  EXPECT_TRUE(remote.ok()) << remote.ToString();
  protocol::QueryReply reply;
  ASSERT_TRUE(DecodeQueryReply(&r, &reply).ok());
  EXPECT_GT(reply.row_count, 0u);

  // And the server counted it as an inline cache hit.
  auto client = QueryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto stats = client->ServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->cache_hits, 1u);
  EXPECT_GE(stats->cache_misses, 1u);

  server.Shutdown();
}

// A hit for a different requester re-heads the cached payload in place:
// the reply may differ from the original ONLY in the request-id field of
// the message header and the frame CRC that covers it.
TEST_F(ReplyPathTest, CacheHitReheadsOnlyRequestIdAndCrc) {
  ServerConfig config;
  config.num_workers = 2;
  config.cache_bytes = 4u << 20;
  QueryServer server(dataset_, config);
  ASSERT_TRUE(server.Start().ok());

  Socket sock = MustConnectRaw(server);
  const Box box = LocusBox(0.5);

  const std::vector<uint8_t> first = BoxRequestFrame(31, box);
  ASSERT_TRUE(
      sock.WriteFull(first.data(), first.size(), IoDeadline::After(5000))
          .ok());
  const std::vector<uint8_t> miss_reply = ReadRawFrame(&sock);
  ASSERT_FALSE(miss_reply.empty());

  const std::vector<uint8_t> second = BoxRequestFrame(32, box);
  ASSERT_TRUE(
      sock.WriteFull(second.data(), second.size(), IoDeadline::After(5000))
          .ok());
  const std::vector<uint8_t> hit_reply = ReadRawFrame(&sock);

  ASSERT_EQ(hit_reply.size(), miss_reply.size());
  // Frame layout: [0,8) magic+len, [8,12) crc, [12,28) message header of
  // which [20,28) is the request id, then the cached tail.
  for (size_t i = 0; i < hit_reply.size(); ++i) {
    const bool is_crc = i >= 8 && i < 12;
    const bool is_request_id = i >= 20 && i < 28;
    if (is_crc || is_request_id) continue;
    ASSERT_EQ(hit_reply[i], miss_reply[i]) << "byte " << i << " differs";
  }
  WireReader r(hit_reply.data() + protocol::kFramePrefixBytes,
               hit_reply.size() - protocol::kFramePrefixBytes);
  MessageHeader header;
  ASSERT_TRUE(DecodeMessageHeader(&r, &header).ok());
  EXPECT_EQ(header.request_id, 32u);

  server.Shutdown();
}

// The zero-copy gauge: serving hits must perform no payload memcpy and no
// slab allocation. reply_tail_copies / slab_allocations move only for
// executed (miss) replies, so their deltas across a pure-hit pass are
// bounded by the one stats reply that follows the first snapshot.
TEST_F(ReplyPathTest, CacheHitPassCopiesNoPayloadBytes) {
  ServerConfig config;
  config.num_workers = 2;
  config.cache_bytes = 8u << 20;
  QueryServer server(dataset_, config);
  ASSERT_TRUE(server.Start().ok());
  auto client = QueryClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // Prime the cache with 8 distinct boxes (all misses).
  std::vector<Box> boxes;
  for (int i = 0; i < 8; ++i) {
    boxes.push_back(LocusBox(0.30 + 0.02 * i));
  }
  auto before_misses = client->ServerStats();
  ASSERT_TRUE(before_misses.ok());
  for (const Box& box : boxes) {
    auto result = client->BoxQuery(box);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  auto before_hits = client->ServerStats();
  ASSERT_TRUE(before_hits.ok());
  // Every miss copied its scratch payload into a slab slice exactly once.
  EXPECT_GE(before_hits->reply_tail_copies - before_misses->reply_tail_copies,
            boxes.size());
  EXPECT_GE(before_hits->slab_allocations - before_misses->slab_allocations,
            boxes.size());

  // Pure-hit pass: the same boxes, five rounds.
  uint64_t hits = 0;
  for (int round = 0; round < 5; ++round) {
    for (const Box& box : boxes) {
      auto result = client->BoxQuery(box);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ++hits;
    }
  }
  auto after_hits = client->ServerStats();
  ASSERT_TRUE(after_hits.ok());
  EXPECT_GE(after_hits->cache_hits - before_hits->cache_hits, hits);
  // <= 1, not == 0: the before_hits stats reply itself is written (one
  // slice, one copy) after its snapshot was taken.
  EXPECT_LE(after_hits->reply_tail_copies - before_hits->reply_tail_copies,
            1u);
  EXPECT_LE(after_hits->slab_allocations - before_hits->slab_allocations,
            1u);
  // Cache entries pin live slab bytes.
  EXPECT_GT(after_hits->slab_bytes_in_use, 0u);

  server.Shutdown();
}

// Satellite bugfix #3, unit level: a writev that stops partway through a
// buffer (tiny SO_SNDBUF forces it constantly) must resume at the exact
// byte offset, across a queue that mixes owned vectors and refcounted
// slab slices of wildly different sizes.
TEST_F(ReplyPathTest, PartialWritevResumesMidIovecOverSocketpair) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Shrink the send buffer so nearly every flush ends mid-buffer.
  int sndbuf = 4096;
  ASSERT_EQ(setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf,
                       sizeof(sndbuf)),
            0);
  const uint64_t live_before = SlabPool::Global().Stats().live_slices;
  BufferedSocket writer{Socket(fds[0])};
  Socket reader(fds[1]);

  // Expected stream: alternating owned vectors and slab slices, sizes
  // chosen to straddle iovec boundaries at every scale (including one
  // above the writev batch the kernel will take in one go).
  const size_t sizes[] = {1,    3,     17,   256,  1000, 4093,
                          5000, 70000, 2,    300000, 9,   131072};
  std::vector<uint8_t> expected;
  uint64_t state = 0x1234;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  size_t chunk_index = 0;
  for (int lap = 0; lap < 3; ++lap) {
    for (size_t n : sizes) {
      std::vector<uint8_t> bytes(n);
      for (uint8_t& b : bytes) b = static_cast<uint8_t>(next());
      expected.insert(expected.end(), bytes.begin(), bytes.end());
      if (chunk_index++ % 2 == 0) {
        writer.QueueWrite(std::move(bytes));
      } else {
        SlabPool::Slice slice = SlabPool::Global().Allocate(n);
        ASSERT_TRUE(slice);
        std::memcpy(slice.data(), bytes.data(), n);
        writer.QueueWrite(std::move(slice));
      }
    }
  }
  ASSERT_GT(expected.size(), size_t{1} << 20);
  ASSERT_EQ(writer.pending_write_bytes(), expected.size());

  // Single-threaded drain: flush until the kernel refuses, then read an
  // odd-sized chunk to open space, repeat. Every handoff lands mid-iovec
  // somewhere over ~1.5 MiB of traffic.
  std::vector<uint8_t> received;
  received.reserve(expected.size());
  uint8_t buf[3171];
  while (writer.has_pending_write()) {
    BufferedSocket::IoResult r = writer.Flush();
    ASSERT_NE(r, BufferedSocket::IoResult::kError);
    ASSERT_NE(r, BufferedSocket::IoResult::kClosed);
    if (writer.has_pending_write()) {
      const size_t want = 1 + next() % sizeof(buf);
      const ssize_t got = recv(fds[1], buf, want, 0);
      ASSERT_GT(got, 0);
      received.insert(received.end(), buf, buf + got);
    }
  }
  while (received.size() < expected.size()) {
    const size_t want = std::min(sizeof(buf), expected.size() - received.size());
    ASSERT_TRUE(
        reader.ReadFull(buf, want, IoDeadline::After(5000)).ok());
    received.insert(received.end(), buf, buf + want);
  }
  ASSERT_EQ(received.size(), expected.size());
  EXPECT_EQ(received, expected);
  // Every queued slice was released once the kernel took its bytes.
  EXPECT_EQ(SlabPool::Global().Stats().live_slices, live_before);
}

// Satellite bugfix #3, end to end: a >1 MiB reply against a reader that
// drains slowly forces the server through EPOLLOUT re-arms and mid-iovec
// resumes; the frame must still arrive bit-perfect (CRC proves it) and
// complete.
TEST_F(ReplyPathTest, LargeReplyArrivesIntactUnderBackpressure) {
  ServerConfig config;
  config.num_workers = 2;
  QueryServer server(dataset_, config);
  ASSERT_TRUE(server.Start().ok());

  Socket sock = MustConnectRaw(server);
  // Shrink our receive window so the server's send side hits the wall
  // early and often.
  int rcvbuf = 16384;
  ASSERT_EQ(setsockopt(sock.fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                       sizeof(rcvbuf)),
            0);
  // Whole-domain box: every row qualifies, the objid vector alone is
  // 150000 * 8 B = 1.2 MB.
  Box everything = Box::Bounding(dataset_->points());
  std::vector<double> lo = everything.lo(), hi = everything.hi();
  for (double& v : lo) v -= 1.0;
  for (double& v : hi) v += 1.0;
  const std::vector<uint8_t> request = BoxRequestFrame(77, Box(lo, hi));
  ASSERT_TRUE(sock.WriteFull(request.data(), request.size(),
                             IoDeadline::After(5000))
                  .ok());

  // Let the server hit the kernel wall and queue the remainder.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const std::vector<uint8_t> frame = ReadRawFrame(&sock);
  ASSERT_FALSE(frame.empty());
  ASSERT_GT(frame.size(), size_t{1} << 20);

  WireReader r(frame.data() + protocol::kFramePrefixBytes,
               frame.size() - protocol::kFramePrefixBytes);
  MessageHeader header;
  ASSERT_TRUE(DecodeMessageHeader(&r, &header).ok());
  EXPECT_EQ(header.request_id, 77u);
  Status remote;
  ASSERT_TRUE(protocol::DecodeStatus(&r, &remote).ok());
  ASSERT_TRUE(remote.ok()) << remote.ToString();
  protocol::QueryReply reply;
  ASSERT_TRUE(DecodeQueryReply(&r, &reply).ok());
  EXPECT_EQ(reply.row_count, dataset_->num_rows());
  ASSERT_EQ(reply.objids.size(), dataset_->num_rows());
  std::vector<int64_t> sorted = reply.objids;
  std::sort(sorted.begin(), sorted.end());
  for (uint64_t i = 0; i < sorted.size(); ++i) {
    ASSERT_EQ(sorted[i], static_cast<int64_t>(i));
  }

  server.Shutdown();
}

}  // namespace
}  // namespace mds
