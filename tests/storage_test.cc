#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/clustered_index.h"
#include "storage/pager.h"
#include "storage/table.h"
#include "storage/table_sample.h"

namespace mds {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(FilePagerTest, WriteReadRoundTrip) {
  std::string path = TempPath("mds_pager_test.db");
  auto pager = FilePager::Create(path);
  ASSERT_TRUE(pager.ok());
  Page out;
  for (size_t i = 0; i < kPageSize; ++i) {
    out.bytes()[i] = static_cast<uint8_t>(i * 7);
  }
  auto id = (*pager)->AllocatePage();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE((*pager)->WritePage(*id, out).ok());
  ASSERT_TRUE((*pager)->Sync().ok());

  // Reopen and verify.
  auto reopened = FilePager::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->NumPages(), 1u);
  Page in;
  ASSERT_TRUE((*reopened)->ReadPage(*id, &in).ok());
  EXPECT_EQ(std::memcmp(in.bytes(), out.bytes(), kPageSize), 0);
  std::remove(path.c_str());
}

TEST(FilePagerTest, ReadBeyondEndFails) {
  auto pager = FilePager::Create(TempPath("mds_pager_oob.db"));
  ASSERT_TRUE(pager.ok());
  Page page;
  EXPECT_EQ((*pager)->ReadPage(0, &page).code(), StatusCode::kOutOfRange);
}

TEST(FilePagerTest, OpenMissingFileFails) {
  auto pager = FilePager::Open(TempPath("mds_definitely_missing.db"));
  EXPECT_EQ(pager.status().code(), StatusCode::kIOError);
}

TEST(MemPagerTest, Basics) {
  MemPager pager;
  auto id = pager.AllocatePage();
  ASSERT_TRUE(id.ok());
  Page page;
  page.WriteAt<uint64_t>(0, 0xdeadbeef);
  ASSERT_TRUE(pager.WritePage(*id, page).ok());
  Page readback;
  ASSERT_TRUE(pager.ReadPage(*id, &readback).ok());
  EXPECT_EQ(readback.ReadAt<uint64_t>(0), 0xdeadbeefULL);
  EXPECT_EQ(pager.ReadPage(99, &readback).code(), StatusCode::kOutOfRange);
}

TEST(FaultInjectionPagerTest, FailsAfterBudget) {
  MemPager base;
  FaultInjectionPager pager(&base, 2);
  Page page;
  auto a = pager.AllocatePage();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(pager.ReadPage(*a, &page).ok());
  EXPECT_EQ(pager.ReadPage(*a, &page).code(), StatusCode::kIOError);
  pager.Reset(1);
  EXPECT_TRUE(pager.ReadPage(*a, &page).ok());
  EXPECT_EQ(pager.Sync().code(), StatusCode::kIOError);
}

TEST(BufferPoolTest, CachesPages) {
  MemPager pager;
  BufferPool pool(&pager, 4);
  auto guard = pool.Allocate();
  ASSERT_TRUE(guard.ok());
  PageId id = guard->id();
  guard->MutablePage().WriteAt<uint32_t>(0, 1234);
  guard->Release();
  // First fetch hits the pool (page still resident).
  auto again = pool.Fetch(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->page().ReadAt<uint32_t>(0), 1234u);
  EXPECT_EQ(pool.stats().physical_reads, 0u);
}

TEST(BufferPoolTest, EvictsLruAndWritesBack) {
  MemPager pager;
  BufferPool pool(&pager, 2);
  std::vector<PageId> ids;
  for (uint32_t i = 0; i < 3; ++i) {
    auto guard = pool.Allocate();
    ASSERT_TRUE(guard.ok());
    guard->MutablePage().WriteAt<uint32_t>(0, 100 + i);
    ids.push_back(guard->id());
  }
  // Capacity 2, 3 pages allocated: at least one eviction with write-back.
  EXPECT_GE(pool.stats().evictions, 1u);
  // All pages still readable with their data (from pool or pager).
  for (uint32_t i = 0; i < 3; ++i) {
    auto guard = pool.Fetch(ids[i]);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->page().ReadAt<uint32_t>(0), 100 + i);
  }
}

TEST(BufferPoolTest, LruOrderEviction) {
  MemPager pager;
  BufferPool pool(&pager, 2);
  PageId a, b;
  {
    auto ga = pool.Allocate();
    a = ga->id();
  }
  {
    auto gb = pool.Allocate();
    b = gb->id();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  // Touch a so b is least recently used.
  { auto ga = pool.Fetch(a); }
  pool.ResetStats();
  // A third page evicts b (LRU), so fetching a is still a hit...
  { auto gc = pool.Allocate(); }
  { auto ga = pool.Fetch(a); }
  EXPECT_EQ(pool.stats().physical_reads, 0u);
  // ...and fetching b is a miss.
  { auto gb = pool.Fetch(b); }
  EXPECT_EQ(pool.stats().physical_reads, 1u);
}

TEST(BufferPoolTest, AllPinnedExhausts) {
  MemPager pager;
  BufferPool pool(&pager, 2);
  auto g1 = pool.Allocate();
  auto g2 = pool.Allocate();
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  auto g3 = pool.Allocate();
  EXPECT_EQ(g3.status().code(), StatusCode::kResourceExhausted);
}

TEST(BufferPoolTest, HitRate) {
  MemPager pager;
  BufferPool pool(&pager, 1);
  PageId a, b;
  {
    auto g = pool.Allocate();
    a = g->id();
  }
  {
    auto g = pool.Allocate();
    b = g->id();
  }
  pool.ResetStats();
  { auto g = pool.Fetch(a); }  // miss (b resident)
  { auto g = pool.Fetch(a); }  // hit
  { auto g = pool.Fetch(b); }  // miss
  EXPECT_EQ(pool.stats().logical_reads, 3u);
  EXPECT_EQ(pool.stats().physical_reads, 2u);
  EXPECT_NEAR(pool.stats().HitRate(), 1.0 / 3.0, 1e-12);
}

Schema TestSchema() {
  return Schema({{"id", ColumnType::kInt64, 0},
                 {"x", ColumnType::kFloat32, 0},
                 {"y", ColumnType::kFloat64, 0}});
}

TEST(TableTest, AppendScanRead) {
  MemPager pager;
  BufferPool pool(&pager, 16);
  auto table = Table::Create(&pool, TestSchema());
  ASSERT_TRUE(table.ok());
  RowBuilder row(&table->schema());
  const uint64_t n = 5000;  // spans multiple pages
  for (uint64_t i = 0; i < n; ++i) {
    row.SetInt64(0, static_cast<int64_t>(i));
    row.SetFloat32(1, static_cast<float>(i) * 0.5f);
    row.SetFloat64(2, static_cast<double>(i) * 2.0);
    ASSERT_TRUE(table->Append(row).ok());
  }
  EXPECT_EQ(table->num_rows(), n);
  EXPECT_GT(table->num_pages(), 1u);

  uint64_t visited = 0;
  ASSERT_TRUE(table
                  ->Scan([&](uint64_t row_id, RowRef ref) {
                    EXPECT_EQ(ref.GetInt64(0), static_cast<int64_t>(row_id));
                    EXPECT_FLOAT_EQ(ref.GetFloat32(1), row_id * 0.5f);
                    EXPECT_DOUBLE_EQ(ref.GetFloat64(2), row_id * 2.0);
                    ++visited;
                  })
                  .ok());
  EXPECT_EQ(visited, n);

  std::vector<uint8_t> buf(table->schema().row_size());
  ASSERT_TRUE(table->ReadRow(1234, buf.data()).ok());
  RowRef ref(&table->schema(), buf.data());
  EXPECT_EQ(ref.GetInt64(0), 1234);
}

TEST(TableTest, ScanRangeAndEarlyStop) {
  MemPager pager;
  BufferPool pool(&pager, 16);
  auto table = Table::Create(&pool, TestSchema());
  ASSERT_TRUE(table.ok());
  RowBuilder row(&table->schema());
  for (uint64_t i = 0; i < 1000; ++i) {
    row.SetInt64(0, static_cast<int64_t>(i));
    ASSERT_TRUE(table->Append(row).ok());
  }
  std::vector<int64_t> seen;
  ASSERT_TRUE(
      table->ScanRange(100, 110, [&](uint64_t, RowRef ref) {
        seen.push_back(ref.GetInt64(0));
      }).ok());
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(seen.front(), 100);
  EXPECT_EQ(seen.back(), 109);

  // Early stop via bool return.
  uint64_t count = 0;
  ASSERT_TRUE(table
                  ->Scan([&](uint64_t, RowRef) -> bool {
                    ++count;
                    return count < 5;
                  })
                  .ok());
  EXPECT_EQ(count, 5u);

  EXPECT_EQ(table->ScanRange(5, 2000, [](uint64_t, RowRef) {}).code(),
            StatusCode::kOutOfRange);
}

TEST(TableTest, RowTooLargeRejected) {
  MemPager pager;
  BufferPool pool(&pager, 4);
  auto table = Table::Create(
      &pool, Schema({{"blob", ColumnType::kBytes, kPageSize + 1}}));
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, IoErrorPropagates) {
  MemPager base;
  FaultInjectionPager faulty(&base, 1000000);
  BufferPool pool(&faulty, 4);
  auto table = Table::Create(&pool, TestSchema());
  ASSERT_TRUE(table.ok());
  RowBuilder row(&table->schema());
  for (uint64_t i = 0; i < 2000; ++i) {
    row.SetInt64(0, static_cast<int64_t>(i));
    ASSERT_TRUE(table->Append(row).ok());
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  faulty.Reset(0);  // every further pager op fails
  // Force physical reads by using a tiny second pool... the resident pages
  // make reads hits, so instead scan after evicting: create a fresh pool
  // over the same pager is not possible (page ids live in table). Instead
  // verify FlushAll error propagation with dirtied pages.
  RowBuilder row2(&table->schema());
  row2.SetInt64(0, 777);
  Status append_status = Status::OK();
  for (int i = 0; i < 5000 && append_status.ok(); ++i) {
    append_status = table->Append(row2);
  }
  EXPECT_FALSE(append_status.ok());
  EXPECT_EQ(append_status.code(), StatusCode::kIOError);
}

TEST(ClusteredKeyIndexTest, RangeScans) {
  MemPager pager;
  BufferPool pool(&pager, 64);
  auto table = Table::Create(&pool, TestSchema());
  ASSERT_TRUE(table.ok());
  RowBuilder row(&table->schema());
  // Keys 0,0,1,1,2,2,... (duplicates) over multiple pages.
  const uint64_t n = 4000;
  for (uint64_t i = 0; i < n; ++i) {
    row.SetInt64(0, static_cast<int64_t>(i / 2));
    row.SetFloat32(1, static_cast<float>(i));
    ASSERT_TRUE(table->Append(row).ok());
  }
  auto index = ClusteredKeyIndex::Build(&*table, 0);
  ASSERT_TRUE(index.ok());

  std::vector<int64_t> keys;
  ASSERT_TRUE(index
                  ->ScanKeyRange(10, 12,
                                 [&](uint64_t, RowRef ref) {
                                   keys.push_back(ref.GetInt64(0));
                                 })
                  .ok());
  EXPECT_EQ(keys.size(), 6u);
  for (int64_t k : keys) {
    EXPECT_GE(k, 10);
    EXPECT_LE(k, 12);
  }

  auto range = index->EqualRange(10, 12);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->second - range->first, 6u);
  EXPECT_EQ(range->first, 20u);

  // Empty range.
  auto empty = index->EqualRange(99999, 100000);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->first, empty->second);
}

TEST(ClusteredKeyIndexTest, ScanTouchesFewPages) {
  MemPager pager;
  BufferPool pool(&pager, 256);
  auto table = Table::Create(&pool, TestSchema());
  ASSERT_TRUE(table.ok());
  RowBuilder row(&table->schema());
  const uint64_t n = 50000;
  for (uint64_t i = 0; i < n; ++i) {
    row.SetInt64(0, static_cast<int64_t>(i));
    ASSERT_TRUE(table->Append(row).ok());
  }
  auto index = ClusteredKeyIndex::Build(&*table, 0);
  ASSERT_TRUE(index.ok());
  pool.ResetStats();
  uint64_t count = 0;
  ASSERT_TRUE(
      index->ScanKeyRange(1000, 1010, [&](uint64_t, RowRef) { ++count; })
          .ok());
  EXPECT_EQ(count, 11u);
  // A narrow key range in a 100+-page table touches only a couple pages.
  EXPECT_LE(pool.stats().logical_reads, 3u);
}

TEST(ClusteredKeyIndexTest, RejectsUnsortedTable) {
  MemPager pager;
  BufferPool pool(&pager, 16);
  auto table = Table::Create(&pool, TestSchema());
  ASSERT_TRUE(table.ok());
  RowBuilder row(&table->schema());
  for (int64_t key : {5, 3, 8}) {
    row.SetInt64(0, key);
    ASSERT_TRUE(table->Append(row).ok());
  }
  auto index = ClusteredKeyIndex::Build(&*table, 0);
  EXPECT_EQ(index.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TableSampleTest, FractionRoughlyHonored) {
  MemPager pager;
  BufferPool pool(&pager, 512);
  auto table = Table::Create(&pool, TestSchema());
  ASSERT_TRUE(table.ok());
  RowBuilder row(&table->schema());
  const uint64_t n = 100000;
  for (uint64_t i = 0; i < n; ++i) {
    row.SetInt64(0, static_cast<int64_t>(i));
    ASSERT_TRUE(table->Append(row).ok());
  }
  Rng rng(77);
  uint64_t sampled = 0;
  ASSERT_TRUE(
      TableSamplePages(*table, 10.0, rng, [&](uint64_t, RowRef) { ++sampled; })
          .ok());
  double fraction = static_cast<double>(sampled) / n;
  EXPECT_NEAR(fraction, 0.10, 0.04);
  // Page granularity: whole pages are emitted, so the count is a multiple
  // of rows-per-page (except possibly the last partial page).
  EXPECT_GT(sampled, 0u);
}

TEST(TableSampleTest, RejectsBadPercent) {
  MemPager pager;
  BufferPool pool(&pager, 4);
  auto table = Table::Create(&pool, TestSchema());
  ASSERT_TRUE(table.ok());
  Rng rng(1);
  EXPECT_FALSE(
      TableSamplePages(*table, -1.0, rng, [](uint64_t, RowRef) {}).ok());
  EXPECT_FALSE(
      TableSamplePages(*table, 101.0, rng, [](uint64_t, RowRef) {}).ok());
}

}  // namespace
}  // namespace mds
