#ifndef MDS_BENCH_BENCH_UTIL_H_
#define MDS_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/histogram.h"
#include "common/timer.h"
#include "storage/buffer_pool.h"

namespace mds::bench {

/// Common bench options. Every bench accepts:
///   --quick      reduced problem sizes (used by smoke runs / CI)
///   --n=<rows>   override the main table size
///   --json       additionally emit one JSON object per benchmark row, so
///                CI can track a perf trajectory across commits
struct BenchOptions {
  bool quick = false;
  bool json = false;
  uint64_t n = 0;  // 0 = bench default

  static BenchOptions Parse(int argc, char** argv) {
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        options.quick = true;
      } else if (std::strcmp(argv[i], "--json") == 0) {
        options.json = true;
      } else if (std::strncmp(argv[i], "--n=", 4) == 0) {
        options.n = std::strtoull(argv[i] + 4, nullptr, 10);
      }
    }
    return options;
  }
};

/// Section header in the output.
inline void PrintHeader(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n", experiment);
  std::printf("paper claim: %s\n", claim);
}

/// One machine-readable result row (only with --json): a single JSON
/// object per line, greppable out of the human-readable output.
inline void EmitJson(const BenchOptions& options, const char* name,
                     uint64_t n, double wall_ms, uint64_t pages_read) {
  if (!options.json) return;
  std::printf(
      "{\"name\":\"%s\",\"n\":%llu,\"wall_ms\":%.3f,\"pages_read\":%llu}\n",
      name, static_cast<unsigned long long>(n), wall_ms,
      static_cast<unsigned long long>(pages_read));
}

/// Per-measurement latency digest built on the shared log-bucketed
/// Histogram: benches report p50/p95/p99/max, not a mean that hides the
/// tail. Record() is lock-free, so closed-loop bench workers can record
/// from many threads into one recorder.
class LatencyRecorder {
 public:
  struct Digest {
    uint64_t count = 0;
    uint64_t p50_us = 0;
    uint64_t p95_us = 0;
    uint64_t p99_us = 0;
    uint64_t max_us = 0;
    double mean_us = 0.0;
  };

  void RecordMicros(uint64_t us) { hist_.Record(us); }
  void RecordMillis(double ms) {
    hist_.Record(ms <= 0.0 ? 0 : static_cast<uint64_t>(ms * 1000.0));
  }

  Digest Take() const {
    const Histogram::Snapshot s = hist_.TakeSnapshot();
    Digest d;
    d.count = s.count;
    d.p50_us = s.ValueAtPercentile(50);
    d.p95_us = s.ValueAtPercentile(95);
    d.p99_us = s.ValueAtPercentile(99);
    d.max_us = s.ValueAtPercentile(100);
    d.mean_us = s.Mean();
    return d;
  }

 private:
  Histogram hist_;
};

/// Human-readable percentile row.
inline void PrintLatency(const char* label, const LatencyRecorder::Digest& d) {
  std::printf(
      "%-24s n=%-8llu p50=%lluus p95=%lluus p99=%lluus max=%lluus "
      "mean=%.0fus\n",
      label, static_cast<unsigned long long>(d.count),
      static_cast<unsigned long long>(d.p50_us),
      static_cast<unsigned long long>(d.p95_us),
      static_cast<unsigned long long>(d.p99_us),
      static_cast<unsigned long long>(d.max_us), d.mean_us);
}

/// Machine-readable percentile row (only with --json).
inline void EmitJsonLatency(const BenchOptions& options, const char* name,
                            const LatencyRecorder::Digest& d,
                            double per_sec = 0.0) {
  if (!options.json) return;
  std::printf(
      "{\"name\":\"%s\",\"count\":%llu,\"p50_us\":%llu,\"p95_us\":%llu,"
      "\"p99_us\":%llu,\"max_us\":%llu,\"mean_us\":%.1f,\"per_sec\":%.1f}\n",
      name, static_cast<unsigned long long>(d.count),
      static_cast<unsigned long long>(d.p50_us),
      static_cast<unsigned long long>(d.p95_us),
      static_cast<unsigned long long>(d.p99_us),
      static_cast<unsigned long long>(d.max_us), d.mean_us, per_sec);
}

/// Per-measurement I/O probe over a buffer pool, built on the pool's
/// CounterSnapshot arithmetic — no hand-maintained counter deltas.
class IoProbe {
 public:
  explicit IoProbe(const BufferPool* pool)
      : pool_(pool), since_(pool->Snapshot()) {}

  CounterSnapshot::Delta Delta() const { return pool_->Delta(since_); }
  void Reset() { since_ = pool_->Snapshot(); }

 private:
  const BufferPool* pool_;
  CounterSnapshot since_;
};

}  // namespace mds::bench

#endif  // MDS_BENCH_BENCH_UTIL_H_
