#ifndef MDS_BENCH_BENCH_UTIL_H_
#define MDS_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/timer.h"
#include "storage/buffer_pool.h"

namespace mds::bench {

/// Common bench options. Every bench accepts:
///   --quick      reduced problem sizes (used by smoke runs / CI)
///   --n=<rows>   override the main table size
///   --json       additionally emit one JSON object per benchmark row, so
///                CI can track a perf trajectory across commits
struct BenchOptions {
  bool quick = false;
  bool json = false;
  uint64_t n = 0;  // 0 = bench default

  static BenchOptions Parse(int argc, char** argv) {
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        options.quick = true;
      } else if (std::strcmp(argv[i], "--json") == 0) {
        options.json = true;
      } else if (std::strncmp(argv[i], "--n=", 4) == 0) {
        options.n = std::strtoull(argv[i] + 4, nullptr, 10);
      }
    }
    return options;
  }
};

/// Section header in the output.
inline void PrintHeader(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n", experiment);
  std::printf("paper claim: %s\n", claim);
}

/// One machine-readable result row (only with --json): a single JSON
/// object per line, greppable out of the human-readable output.
inline void EmitJson(const BenchOptions& options, const char* name,
                     uint64_t n, double wall_ms, uint64_t pages_read) {
  if (!options.json) return;
  std::printf(
      "{\"name\":\"%s\",\"n\":%llu,\"wall_ms\":%.3f,\"pages_read\":%llu}\n",
      name, static_cast<unsigned long long>(n), wall_ms,
      static_cast<unsigned long long>(pages_read));
}

/// Per-measurement I/O probe over a buffer pool, built on the pool's
/// CounterSnapshot arithmetic — no hand-maintained counter deltas.
class IoProbe {
 public:
  explicit IoProbe(const BufferPool* pool)
      : pool_(pool), since_(pool->Snapshot()) {}

  CounterSnapshot::Delta Delta() const { return pool_->Delta(since_); }
  void Reset() { since_ = pool_->Snapshot(); }

 private:
  const BufferPool* pool_;
  CounterSnapshot since_;
};

}  // namespace mds::bench

#endif  // MDS_BENCH_BENCH_UTIL_H_
