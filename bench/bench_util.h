#ifndef MDS_BENCH_BENCH_UTIL_H_
#define MDS_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/timer.h"

namespace mds::bench {

/// Common bench options. Every bench accepts:
///   --quick      reduced problem sizes (used by smoke runs / CI)
///   --n=<rows>   override the main table size
struct BenchOptions {
  bool quick = false;
  uint64_t n = 0;  // 0 = bench default

  static BenchOptions Parse(int argc, char** argv) {
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        options.quick = true;
      } else if (std::strncmp(argv[i], "--n=", 4) == 0) {
        options.n = std::strtoull(argv[i] + 4, nullptr, 10);
      }
    }
    return options;
  }
};

/// Section header in the output.
inline void PrintHeader(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n", experiment);
  std::printf("paper claim: %s\n", claim);
}

}  // namespace mds::bench

#endif  // MDS_BENCH_BENCH_UTIL_H_
