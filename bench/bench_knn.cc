// E6 (§3.3): kd-tree k-nearest-neighbor search. The paper's boundary-point
// region-growing algorithm examines only a local neighborhood of leaves;
// this bench compares it against brute force and the classic best-first
// descent for k in {1, 10, 100}, for query points on the data distribution
// and in voids.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/knn.h"
#include "core/simd_dist.h"
#include "sdss/catalog.h"

namespace mds {
namespace {

struct MethodResult {
  double ms_per_query = 0.0;
  double leaves = 0.0;
  double points = 0.0;
};

void Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "E6 / §3.3: k-nearest-neighbor search engines",
      "boundary-point region growing answers exact k-NN touching only a "
      "local neighborhood of kd-boxes (TOP(k-f) refinement per box)");

  CatalogConfig config;
  config.num_objects = options.n != 0 ? options.n
                       : options.quick ? 200000
                                       : 1000000;
  Catalog cat = GenerateCatalog(config);
  auto tree = KdTreeIndex::Build(&cat.colors);
  MDS_CHECK(tree.ok());
  KdKnnSearcher searcher(&*tree);
  std::printf("N=%zu  leaves=%u\n", cat.colors.size(), tree->num_leaves());

  Rng rng(7);
  const int queries = options.quick ? 50 : 200;
  // Query points: half drawn near catalog objects, half uniform in the
  // bounding box (voids / outlier regions).
  Box bounds = Box::Bounding(cat.colors);
  std::vector<std::vector<double>> query_points;
  for (int i = 0; i < queries; ++i) {
    std::vector<double> q(kNumBands);
    if (i % 2 == 0) {
      uint64_t anchor = rng.NextBounded(cat.size());
      for (size_t j = 0; j < kNumBands; ++j) {
        q[j] = cat.colors.coord(anchor, j) + 0.02 * rng.NextGaussian();
      }
    } else {
      for (size_t j = 0; j < kNumBands; ++j) {
        q[j] = rng.NextUniform(bounds.lo(j), bounds.hi(j));
      }
    }
    query_points.push_back(std::move(q));
  }

  std::printf("%-5s %-14s %-10s %-12s %-12s %-10s\n", "k", "method",
              "ms/query", "leaves/q", "points/q", "exact");
  for (size_t k : {1u, 10u, 100u}) {
    // Ground truth once.
    std::vector<std::vector<Neighbor>> truth;
    MethodResult brute;
    {
      KnnStats stats;
      WallTimer timer;
      for (const auto& q : query_points) {
        truth.push_back(searcher.BruteForce(q.data(), k, &stats));
      }
      brute.ms_per_query = timer.Millis() / queries;
      brute.points = static_cast<double>(stats.points_examined) / queries;
    }
    std::printf("%-5zu %-14s %-10.3f %-12s %-12.0f %-10s\n", k, "brute-force",
                brute.ms_per_query, "-", brute.points, "ref");

    auto run = [&](const char* name, auto&& method) {
      KnnStats stats;
      bool exact = true;
      WallTimer timer;
      for (int i = 0; i < queries; ++i) {
        auto result = method(query_points[i].data(), k, &stats);
        for (size_t j = 0; j < result.size(); ++j) {
          if (result[j].squared_distance != truth[i][j].squared_distance) {
            exact = false;
          }
        }
      }
      double ms = timer.Millis() / queries;
      std::printf("%-5zu %-14s %-10.3f %-12.1f %-12.0f %-10s\n", k, name, ms,
                  static_cast<double>(stats.leaves_examined) / queries,
                  static_cast<double>(stats.points_examined) / queries,
                  exact ? "yes" : "NO");
    };
    run("best-first", [&](const double* q, size_t kk, KnnStats* s) {
      return searcher.BestFirst(q, kk, s);
    });
    run("boundary-grow", [&](const double* q, size_t kk, KnnStats* s) {
      return searcher.BoundaryGrow(q, kk, s);
    });
  }

  // --- SIMD distance-kernel tiers --------------------------------------
  // The leaf-scan inner loop is SquaredDistanceGather over clustered
  // rows. Time that sweep at the scalar tier vs the dispatched tier on
  // identical inputs, require bit-identical outputs (the kernels' whole
  // contract), and on AVX2 hosts hard-assert the >= 1.5x kernel speedup
  // the hot-path work banks on. End-to-end, the per-tier BestFirst
  // neighbor lists must also agree bit for bit.
  {
    const SimdTier active = ActiveSimdTier();
    const size_t rows = std::min<size_t>(cat.colors.size(), 200000);
    const auto& order = tree->clustered_order();
    std::vector<uint64_t> ids(order.begin(),
                              order.begin() + static_cast<ptrdiff_t>(rows));
    const double* probe = query_points[0].data();
    const int reps = options.quick ? 20 : 50;
    std::vector<double> d2(rows);
    // Best-of-5 rounds per tier: the minimum is robust against scheduler
    // noise, which single-shot wall timing on a shared host is not.
    auto time_tier = [&](SimdTier tier, std::vector<double>* out) {
      SetSimdTierForTest(tier);
      SquaredDistanceGather(probe, cat.colors.raw().data(), ids.data(), rows,
                            kNumBands, d2.data());  // warmup
      double best_ms = 0.0;
      for (int round = 0; round < 5; ++round) {
        WallTimer timer;
        for (int rep = 0; rep < reps; ++rep) {
          SquaredDistanceGather(probe, cat.colors.raw().data(), ids.data(),
                                rows, kNumBands, d2.data());
        }
        const double ms = timer.Millis();
        if (round == 0 || ms < best_ms) best_ms = ms;
      }
      *out = d2;
      SetSimdTierForTest(active);
      return best_ms;
    };
    std::vector<double> scalar_d2, simd_d2;
    const double scalar_ms = time_tier(SimdTier::kScalar, &scalar_d2);
    const double simd_ms = time_tier(active, &simd_d2);
    MDS_CHECK(std::memcmp(scalar_d2.data(), simd_d2.data(),
                          rows * sizeof(double)) == 0);

    bool best_first_identical = true;
    for (const auto& q : query_points) {
      SetSimdTierForTest(SimdTier::kScalar);
      const std::vector<Neighbor> ref = searcher.BestFirst(q.data(), 10);
      SetSimdTierForTest(active);
      const std::vector<Neighbor> got = searcher.BestFirst(q.data(), 10);
      if (got.size() != ref.size() ||
          std::memcmp(got.data(), ref.data(),
                      ref.size() * sizeof(Neighbor)) != 0) {
        best_first_identical = false;
      }
    }
    MDS_CHECK(best_first_identical);

    const double speedup = simd_ms > 0.0 ? scalar_ms / simd_ms : 0.0;
    std::printf(
        "\n-- distance kernel: leaf-scan gather, %zu rows x %d reps --\n"
        "scalar %.1f ms, %s %.1f ms: %.2fx, bit-identical d2 and "
        "neighbors\n",
        rows, reps, scalar_ms, SimdTierName(active), simd_ms, speedup);
    if (active == SimdTier::kAvx2) {
      MDS_CHECK(speedup >= 1.5);
    }
  }
}

}  // namespace
}  // namespace mds

int main(int argc, char** argv) {
  mds::Run(mds::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
