// E9 (§3.4): the sampled Voronoi index accelerates polyhedron queries by
// classifying whole cells as contained / outside / partially intersecting.
// Selectivity sweep comparing Voronoi execution against the kd-tree and
// the full scan on the same stored table.

#include <cmath>
#include <vector>

#include "bench/bench_util.h"
#include "core/access_path.h"
#include "core/kdtree.h"
#include "core/point_table.h"
#include "core/query_planner.h"
#include "core/voronoi_index.h"
#include "sdss/catalog.h"
#include "storage/pager.h"

namespace mds {
namespace {

void Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "E9 / §3.4: Voronoi-index polyhedron queries",
      "cells fully inside return their range; outside cells are rejected "
      "wholesale; only partially intersecting cells run the per-row test");

  CatalogConfig config;
  config.num_objects = options.n != 0 ? options.n
                       : options.quick ? 200000
                                       : 1000000;
  Catalog cat = GenerateCatalog(config);
  const PointSet& points = cat.colors;

  auto tree = KdTreeIndex::Build(&points);
  MDS_CHECK(tree.ok());
  VoronoiIndexConfig vc;
  vc.num_seeds = options.quick ? 1024 : 4096;
  WallTimer vbuild;
  auto voronoi = VoronoiIndex::Build(&points, vc);
  MDS_CHECK(voronoi.ok());
  std::printf("N=%zu  Nseed=%u  voronoi build=%.2fs\n", points.size(),
              voronoi->num_seeds(), vbuild.Seconds());

  MemPager pager;
  BufferPool pool(&pager, 1u << 18);
  auto kd_table = MaterializePointTable(&pool, points, tree->clustered_order());
  auto vo_table =
      MaterializePointTable(&pool, points, voronoi->clustered_order());
  MDS_CHECK(kd_table.ok());
  MDS_CHECK(vo_table.ok());
  PointTableBinding kd_binding = BindPointTable(&*kd_table, kNumBands);
  PointTableBinding vo_binding = BindPointTable(&*vo_table, kNumBands);

  std::vector<double> center(kNumBands);
  {
    double mags[kNumBands];
    GalaxyLocus(0.25, 0.0, mags);
    for (size_t j = 0; j < kNumBands; ++j) center[j] = mags[j];
  }
  std::printf("%-8s %-9s %-9s %-9s %-9s %-22s %-10s\n", "radius", "selectiv",
              "scan_ms", "kd_ms", "vor_ms", "cells in/part/out", "planner");
  for (double radius : {0.1, 0.3, 0.9, 2.7, 8.1}) {
    Polyhedron poly = Polyhedron::BallApproximation(center, radius, 24);

    WallTimer scan_timer;
    FullScanPath scan_path(kd_binding, poly);
    auto scan = ExecuteAccessPath(&scan_path);
    MDS_CHECK(scan.ok());
    double scan_ms = scan_timer.Millis();

    WallTimer kd_timer;
    KdTreePath kd_path(kd_binding, *tree, poly);
    auto kd = ExecuteAccessPath(&kd_path);
    MDS_CHECK(kd.ok());
    double kd_ms = kd_timer.Millis();

    WallTimer vo_timer;
    VoronoiPath vo_path(vo_binding, *voronoi, poly);
    QueryStats vstats;
    auto vo = ExecuteAccessPath(&vo_path, &vstats);
    MDS_CHECK(vo.ok());
    double vo_ms = vo_timer.Millis();

    // The planner's three-way choice for this selectivity.
    QueryPlanner planner;
    planner.AddPath(std::make_unique<FullScanPath>(kd_binding, poly))
        .AddPath(std::make_unique<KdTreePath>(kd_binding, *tree, poly))
        .AddPath(std::make_unique<VoronoiPath>(vo_binding, *voronoi, poly));
    auto best = planner.ChooseBest();
    MDS_CHECK(best.ok());

    MDS_CHECK(vo->objids.size() == scan->objids.size());
    MDS_CHECK(kd->objids.size() == scan->objids.size());
    char cells[64];
    std::snprintf(cells, sizeof(cells), "%llu/%llu/%llu",
                  (unsigned long long)vstats.cells_full,
                  (unsigned long long)vstats.cells_partial,
                  (unsigned long long)vstats.cells_pruned);
    std::printf("%-8.2f %-9.2g %-9.2f %-9.2f %-9.2f %-22s %-10s\n", radius,
                static_cast<double>(scan->objids.size()) / points.size(),
                scan_ms, kd_ms, vo_ms, cells, planner.path(*best).name());
    char row_name[64];
    std::snprintf(row_name, sizeof(row_name), "voronoi_query_r%.1f", radius);
    bench::EmitJson(options, row_name, points.size(), vo_ms, vstats.pages_read);
  }
}

}  // namespace
}  // namespace mds

int main(int argc, char** argv) {
  mds::Run(mds::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
