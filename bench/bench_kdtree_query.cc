// E4/E16 (Figure 5, §3.2): kd-tree polyhedron queries vs the "simple SQL
// query" full scan across selectivities. Expected shape: orders-of-
// magnitude speedup at low selectivity, crossover where the kd-tree stops
// paying off around returned/total ~ 0.25.

#include <cmath>
#include <vector>

#include "bench/bench_util.h"
#include "core/access_path.h"
#include "core/kdtree.h"
#include "core/point_table.h"
#include "core/query_planner.h"
#include "sdss/catalog.h"
#include "storage/pager.h"

namespace mds {
namespace {

void Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "E4+E16 / Figure 5: kd-tree polyhedron query vs full scan",
      "kd-tree wins by orders of magnitude at low selectivity; crossover "
      "near returned/total = 0.25");

  CatalogConfig config;
  config.num_objects = options.n != 0 ? options.n
                       : options.quick ? 200000
                                       : 2000000;
  Catalog cat = GenerateCatalog(config);
  const PointSet& points = cat.colors;

  WallTimer build_timer;
  auto tree = KdTreeIndex::Build(&points);
  MDS_CHECK(tree.ok());
  std::printf("N=%zu  levels=%u  leaves=%u  build=%.2fs\n", points.size(),
              tree->num_levels(), tree->num_leaves(), build_timer.Seconds());

  MemPager pager;
  BufferPool pool(&pager, 1u << 18);
  auto table = MaterializePointTable(&pool, points, tree->clustered_order());
  MDS_CHECK(table.ok());
  PointTableBinding binding = BindPointTable(&*table, kNumBands);

  // Nested ball-approximation polyhedra centered on the stellar locus;
  // radius sweeps selectivity from ~1e-5 to ~1.
  std::vector<double> center(kNumBands);
  {
    double mags[kNumBands];
    StellarLocus(0.5, 0.0, mags);
    for (size_t j = 0; j < kNumBands; ++j) center[j] = mags[j];
  }
  std::printf("%-10s %-9s %-10s %-10s %-9s %-10s %-10s %-10s\n", "radius",
              "selectiv", "scan_ms", "kd_ms", "speedup", "kd_rows",
              "kd_pages", "planner");
  double crossover_radius = -1.0;
  for (double radius :
       {0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8, 25.6}) {
    Polyhedron poly = Polyhedron::BallApproximation(center, radius, 24);
    WallTimer scan_timer;
    FullScanPath scan_path(binding, poly);
    auto scan = ExecuteAccessPath(&scan_path);
    MDS_CHECK(scan.ok());
    double scan_ms = scan_timer.Millis();

    WallTimer kd_timer;
    KdTreePath kd_path(binding, *tree, poly);
    auto kd = ExecuteAccessPath(&kd_path);
    MDS_CHECK(kd.ok());
    double kd_ms = kd_timer.Millis();
    MDS_CHECK(kd->objids.size() == scan->objids.size());

    // What the cost-based planner would have picked for this query.
    QueryPlanner planner;
    planner.AddPath(std::make_unique<FullScanPath>(binding, poly))
        .AddPath(std::make_unique<KdTreePath>(binding, *tree, poly));
    auto best = planner.ChooseBest();
    MDS_CHECK(best.ok());
    const char* chosen = planner.path(*best).name();

    double selectivity =
        static_cast<double>(kd->objids.size()) / points.size();
    double speedup = scan_ms / kd_ms;
    if (speedup < 1.0 && crossover_radius < 0.0) crossover_radius = radius;
    std::printf("%-10.2f %-9.2g %-10.2f %-10.2f %-9.2f %-10zu %-10llu %-10s\n",
                radius, selectivity, scan_ms, kd_ms, speedup,
                kd->objids.size(), (unsigned long long)kd->pages_fetched,
                chosen);
    char row_name[64];
    std::snprintf(row_name, sizeof(row_name), "kdtree_query_r%.2f", radius);
    bench::EmitJson(options, row_name, points.size(), kd_ms, kd->pages_read);
  }
  if (crossover_radius > 0.0) {
    std::printf("crossover (kd-tree slower than scan) first at radius %.2f\n",
                crossover_radius);
  } else {
    std::printf("no crossover observed in the sweep (kd-tree always won)\n");
  }
  std::printf(
      "E16: the paper reports kd-tree outperforms simple SQL whenever "
      "returned/total < 0.25.\n");
}

}  // namespace
}  // namespace mds

int main(int argc, char** argv) {
  mds::Run(mds::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
