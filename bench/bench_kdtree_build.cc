// E5 (§3.2): balanced kd-tree construction. The paper builds a 15-level
// tree (2^14 leaves, ~16K rows/leaf) over 270M rows in under 12 hours,
// sized so #leaves == rows-per-leaf == sqrt(N). This bench sweeps N and
// reports build time, levels, leaves, occupancy balance, and the
// round-robin vs max-spread split ablation.

#include <algorithm>
#include <cmath>

#include "bench/bench_util.h"
#include "core/kdtree.h"
#include "linalg/pca.h"
#include "sdss/catalog.h"

namespace mds {
namespace {

void Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "E5 / §3.2: kd-tree build scaling",
      "sqrt(N) leaves; balanced occupancy; iterative level-by-level build "
      "(270M rows built in < 12h on the paper's hardware)");

  std::vector<uint64_t> sizes =
      options.quick ? std::vector<uint64_t>{10000, 100000, 500000}
                    : std::vector<uint64_t>{10000, 100000, 1000000, 4000000};
  if (options.n != 0) sizes = {options.n};

  std::printf("%-9s %-8s %-8s %-10s %-10s %-10s %-12s\n", "N", "levels",
              "leaves", "rows/leaf", "build_s", "Mrows/s", "aspect(avg)");
  for (uint64_t n : sizes) {
    CatalogConfig config;
    config.num_objects = n;
    Catalog cat = GenerateCatalog(config);
    WallTimer timer;
    auto tree = KdTreeIndex::Build(&cat.colors);
    MDS_CHECK(tree.ok());
    double secs = timer.Seconds();

    uint64_t min_leaf = UINT64_MAX, max_leaf = 0;
    double aspect_sum = 0.0;
    for (uint32_t l = 0; l < tree->num_leaves(); ++l) {
      const auto& leaf = tree->leaf(l);
      uint64_t size = leaf.row_end - leaf.row_begin;
      min_leaf = std::min(min_leaf, size);
      max_leaf = std::max(max_leaf, size);
      double longest = 0.0, shortest = 1e300;
      for (size_t j = 0; j < kNumBands; ++j) {
        double ext = leaf.bounds.hi(j) - leaf.bounds.lo(j);
        longest = std::max(longest, ext);
        shortest = std::min(shortest, std::max(ext, 1e-9));
      }
      aspect_sum += longest / shortest;
    }
    std::printf("%-9llu %-8u %-8u %llu-%-6llu %-10.2f %-10.2f %-12.1f\n",
                (unsigned long long)n, tree->num_levels(), tree->num_leaves(),
                (unsigned long long)min_leaf, (unsigned long long)max_leaf,
                secs, n / secs / 1e6, aspect_sum / tree->num_leaves());
  }

  // Ablation: max-spread splitting counters the elongated leaf boxes the
  // paper observes (Figure 15: "boxes tend to be elongated along the
  // second and third principal components" / remedy per ref [8]). The
  // effect lives in the anisotropic principal-component space the
  // visualization uses, so the ablation runs there.
  {
    CatalogConfig config;
    config.num_objects = options.quick ? 200000 : 1000000;
    Catalog cat = GenerateCatalog(config);
    // Project to the 3 principal components (very unequal variances).
    Matrix data(std::min<size_t>(cat.size(), 50000), kNumBands);
    for (size_t i = 0; i < data.rows(); ++i) {
      const float* p = cat.colors.point(i);
      for (size_t j = 0; j < kNumBands; ++j) data(i, j) = p[j];
    }
    auto pca = Pca::Fit(data, 3);
    MDS_CHECK(pca.ok());
    PointSet projected(3, 0);
    projected.Reserve(cat.size());
    double row[kNumBands], out[3];
    for (size_t i = 0; i < cat.size(); ++i) {
      const float* p = cat.colors.point(i);
      for (size_t j = 0; j < kNumBands; ++j) row[j] = p[j];
      pca->TransformPoint(row, 3, out);
      projected.Append(out);
    }
    auto aspect = [&](bool max_spread) {
      KdTreeConfig kd;
      kd.max_spread_split = max_spread;
      WallTimer timer;
      auto tree = KdTreeIndex::Build(&projected, kd);
      MDS_CHECK(tree.ok());
      double total = 0.0;
      for (uint32_t l = 0; l < tree->num_leaves(); ++l) {
        const Box& b = tree->leaf(l).bounds;
        double longest = 0.0, shortest = 1e300;
        for (size_t j = 0; j < 3; ++j) {
          double ext = b.hi(j) - b.lo(j);
          longest = std::max(longest, ext);
          shortest = std::min(shortest, std::max(ext, 1e-9));
        }
        total += longest / shortest;
      }
      std::printf("  %-12s build=%.2fs avg leaf aspect=%.1f\n",
                  max_spread ? "max-spread" : "round-robin", timer.Seconds(),
                  total / tree->num_leaves());
      return total / tree->num_leaves();
    };
    std::printf("split-rule ablation on the 3-PC projection (N=%llu):\n",
                (unsigned long long)config.num_objects);
    double rr = aspect(false);
    double ms = aspect(true);
    std::printf("  max-spread changes mean elongation by %.2fx (Figure 15 remedy)\n", rr / ms);
  }
}

}  // namespace
}  // namespace mds

int main(int argc, char** argv) {
  mds::Run(mds::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
