// E3 (§3.1 baseline): TABLESAMPLE SYSTEM(p) + TOP(n) "worked fairly well,
// but it is not without problems": depending on the box and p it
// under-samples (returns fewer than n points) or over-samples (reads far
// more than needed), and TOP(n) returns a set that does not follow the
// underlying distribution. The layered grid column shows the fix.

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/access_path.h"
#include "core/layered_grid.h"
#include "core/point_table.h"
#include "sdss/catalog.h"
#include "storage/pager.h"

namespace mds {
namespace {

/// Chi-square statistic of the returned sample against the true conditional
/// distribution over a 4x4x4 spatial histogram of the query box.
double DistributionChi2(const PointSet& points, const Box& q,
                        const std::vector<int64_t>& returned) {
  const int res = 4;
  auto cell_of = [&](const float* p) {
    int64_t cell = 0;
    for (int j = 0; j < 3; ++j) {
      double t = (p[j] - q.lo(j)) / (q.hi(j) - q.lo(j));
      cell = cell * res + std::min<int64_t>(res - 1,
                                            std::max<int64_t>(0, t * res));
    }
    return cell;
  };
  std::vector<double> truth(res * res * res, 0.0);
  double truth_total = 0.0;
  for (uint64_t i = 0; i < points.size(); ++i) {
    if (q.Contains(points.point(i))) {
      truth[cell_of(points.point(i))] += 1.0;
      ++truth_total;
    }
  }
  if (truth_total == 0 || returned.empty()) return 0.0;
  std::vector<double> got(res * res * res, 0.0);
  for (int64_t id : returned) {
    got[cell_of(points.point(static_cast<uint64_t>(id)))] += 1.0;
  }
  double chi2 = 0.0;
  for (size_t c = 0; c < truth.size(); ++c) {
    double expect = truth[c] / truth_total * returned.size();
    if (expect < 1.0) continue;
    double diff = got[c] - expect;
    chi2 += diff * diff / expect;
  }
  return chi2 / truth.size();  // normalized: ~1 for a fair sample
}

PointSet Project3(const Catalog& cat) {
  PointSet out(3, 0);
  out.Reserve(cat.size());
  for (size_t i = 0; i < cat.size(); ++i) {
    const float* p = cat.colors.point(i);
    float q[3] = {p[1], p[2], p[3]};  // g, r, i
    out.Append(q);
  }
  return out;
}

void Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "E3 / §3.1 baseline: TABLESAMPLE(p) + TOP(n) vs layered grid",
      "p must be tuned per query box; wrong p under- or over-samples and "
      "TOP(n) does not follow the underlying distribution");

  CatalogConfig config;
  config.num_objects = options.n != 0 ? options.n
                       : options.quick ? 200000
                                       : 1000000;
  Catalog cat = GenerateCatalog(config);
  PointSet points = Project3(cat);
  auto index = LayeredGridIndex::Build(&points);
  MDS_CHECK(index.ok());

  MemPager pager;
  BufferPool pool(&pager, 256);
  // The heap table is ordered by r magnitude, as a survey table clustered
  // on a catalog key would be: TOP(n) then preferentially returns rows
  // from the first sampled pages — bright objects — which is exactly the
  // "set that does not follow the underlying distribution" failure.
  std::vector<uint64_t> brightness_order(points.size());
  for (uint64_t i = 0; i < points.size(); ++i) brightness_order[i] = i;
  std::sort(brightness_order.begin(), brightness_order.end(),
            [&](uint64_t a, uint64_t b) {
              return points.coord(a, 1) < points.coord(b, 1);
            });
  auto heap_table = MaterializePointTable(&pool, points, brightness_order);
  auto grid_table =
      MaterializePointTable(&pool, points, index->clustered_order());
  MDS_CHECK(heap_table.ok());
  MDS_CHECK(grid_table.ok());
  PointTableBinding heap_binding = BindPointTable(&*heap_table, 3);
  PointTableBinding grid_binding = BindPointTable(&*grid_table, 3);

  const Box bounds = index->bounding_box();
  const uint64_t n = 2000;
  Rng rng(42);
  std::printf("n=%llu requested per query\n", (unsigned long long)n);
  std::printf("%-9s %-8s %-9s %-10s %-9s %-10s\n", "box_frac", "method",
              "returned", "rows_read", "chi2", "verdict");
  for (double side : {1.0, 0.3, 0.1, 0.03}) {
    std::vector<double> lo(3), hi(3);
    for (int j = 0; j < 3; ++j) {
      double center = 0.5 * (bounds.lo(j) + bounds.hi(j));
      double half = 0.5 * (bounds.hi(j) - bounds.lo(j)) * side;
      lo[j] = center - half;
      hi[j] = center + half;
    }
    Box q(lo, hi);
    double frac = std::pow(side, 3);
    for (double percent : {1.0, 10.0, 50.0}) {
      TableSamplePath path(heap_binding, q, percent, n, &rng);
      auto result = ExecuteAccessPath(&path);
      MDS_CHECK(result.ok());
      double chi2 = DistributionChi2(points, q, result->objids);
      const char* verdict =
          result->objids.size() < n
              ? "UNDER-SAMPLED"
              : (chi2 > 3.0 ? "BIASED (TOP-n order)" : "ok");
      char method[32];
      std::snprintf(method, sizeof(method), "TS(%g%%)", percent);
      std::printf("%-9.3g %-8s %-9zu %-10llu %-9.2f %-10s\n", frac, method,
                  result->objids.size(),
                  (unsigned long long)result->rows_scanned, chi2, verdict);
    }
    {
      WallTimer timer;
      GridSamplePath path(grid_binding, *index, q, n);
      QueryStats stats;
      auto result = ExecuteAccessPath(&path, &stats);
      MDS_CHECK(result.ok());
      double ms = timer.Millis();
      double chi2 = DistributionChi2(points, q, result->objids);
      std::printf("%-9.3g %-8s %-9zu %-10llu %-9.2f %-10s\n", frac, "grid",
                  result->objids.size(),
                  (unsigned long long)result->rows_scanned, chi2,
                  result->objids.size() >= std::min<uint64_t>(n, 1) ? "ok"
                                                                    : "-");
      char row_name[64];
      std::snprintf(row_name, sizeof(row_name), "tablesample_grid_f%.3g",
                    frac);
      bench::EmitJson(options, row_name, points.size(), ms, stats.pages_read);
    }
  }
  std::printf(
      "The grid row needs no tuning parameter and stays unbiased (chi2 ~ "
      "1); TABLESAMPLE needs a different p per box and degrades either "
      "way.\n");
}

}  // namespace
}  // namespace mds

int main(int argc, char** argv) {
  mds::Run(mds::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
