// E1 (Figure 1): the SDSS color-space distribution is highly non-uniform —
// points cluster along loci, densities contrast by orders of magnitude,
// and outliers exist. This bench prints occupancy statistics of the
// synthetic catalog plus the 2-D projection histogram summary behind the
// Figure 1 analog.

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "geom/box.h"
#include "linalg/pca.h"
#include "sdss/catalog.h"

namespace mds {
namespace {

void Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "E1 / Figure 1: color-space distribution",
      "distribution is highly inhomogeneous; clustered along loci; outliers");

  CatalogConfig config;
  config.num_objects = options.n != 0 ? options.n
                       : options.quick ? 100000
                                       : 500000;
  WallTimer timer;
  Catalog cat = GenerateCatalog(config);
  std::printf("generated %zu objects in %.2fs\n", cat.size(), timer.Seconds());

  size_t counts[4] = {0, 0, 0, 0};
  for (SpectralClass c : cat.classes) ++counts[static_cast<size_t>(c)];
  std::printf("classes: stars=%zu galaxies=%zu quasars=%zu outliers=%zu\n",
              counts[0], counts[1], counts[2], counts[3]);

  // Occupancy of a 16^5 grid over the 5-D space.
  Box bounds = Box::Bounding(cat.colors);
  const int res = 16;
  std::map<int64_t, uint64_t> cells;
  for (size_t i = 0; i < cat.size(); ++i) {
    const float* p = cat.colors.point(i);
    int64_t cell = 0;
    for (size_t j = 0; j < kNumBands; ++j) {
      double t = (p[j] - bounds.lo(j)) / (bounds.hi(j) - bounds.lo(j));
      cell = cell * res + std::min<int64_t>(res - 1, static_cast<int64_t>(t * res));
    }
    ++cells[cell];
  }
  std::vector<uint64_t> occ;
  occ.reserve(cells.size());
  for (const auto& [cell, count] : cells) occ.push_back(count);
  std::sort(occ.begin(), occ.end());
  const double total_cells = std::pow(res, kNumBands);
  std::printf("grid 16^5: occupied cells %zu of %.0f (%.4f%%)\n", occ.size(),
              total_cells, 100.0 * occ.size() / total_cells);
  std::printf("occupancy: max=%llu median=%llu p99=%llu  uniform-expected=%.3f\n",
              (unsigned long long)occ.back(),
              (unsigned long long)occ[occ.size() / 2],
              (unsigned long long)occ[occ.size() * 99 / 100],
              cat.size() / total_cells);
  std::printf("density contrast (max cell / uniform expectation): %.0fx\n",
              occ.back() / (cat.size() / total_cells));

  // Figure 1 is a 2-D projection; report the per-class separation of the
  // first two principal components.
  const size_t sample = std::min<size_t>(cat.size(), 50000);
  Matrix data(sample, kNumBands);
  for (size_t i = 0; i < sample; ++i) {
    const float* p = cat.colors.point(i);
    for (size_t j = 0; j < kNumBands; ++j) data(i, j) = p[j];
  }
  auto pca = Pca::Fit(data, 2);
  if (pca.ok()) {
    double mean[3][2] = {};
    size_t cnt[3] = {};
    double out[2];
    for (size_t i = 0; i < sample; ++i) {
      if (cat.classes[i] == SpectralClass::kOutlier) continue;
      pca->TransformPoint(data.RowPtr(i), 2, out);
      size_t c = static_cast<size_t>(cat.classes[i]);
      mean[c][0] += out[0];
      mean[c][1] += out[1];
      ++cnt[c];
    }
    const char* names[3] = {"stars", "galaxies", "quasars"};
    std::printf("2-D PCA projection class centroids (Figure 1 analog):\n");
    for (int c = 0; c < 3; ++c) {
      if (cnt[c] == 0) continue;
      std::printf("  %-9s (%.3f, %.3f)\n", names[c], mean[c][0] / cnt[c],
                  mean[c][1] / cnt[c]);
    }
    std::printf("variance captured by 2 PCs: %.1f%%\n",
                100.0 * pca->ExplainedVarianceRatio(2));
  }
}

}  // namespace
}  // namespace mds

int main(int argc, char** argv) {
  mds::Run(mds::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
