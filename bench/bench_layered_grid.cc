// E2 (§3.1): the layered uniform grid returns >= n points following the
// underlying distribution for any query box, and "practically only points
// which are actually returned are read from disk". The series: query box
// volume fraction x n -> points returned, pages fetched, and the ratio of
// pages fetched to the ideal page count of the returned rows.

#include <cmath>
#include <vector>

#include "bench/bench_util.h"
#include "core/access_path.h"
#include "core/layered_grid.h"
#include "core/point_table.h"
#include "linalg/pca.h"
#include "sdss/catalog.h"
#include "storage/pager.h"

namespace mds {
namespace {

/// First three principal components of the magnitude table — the space the
/// visualization application navigates (§3.1/§5).
PointSet ProjectTo3D(const Catalog& cat) {
  const size_t fit_sample = std::min<size_t>(cat.size(), 50000);
  Matrix data(fit_sample, kNumBands);
  for (size_t i = 0; i < fit_sample; ++i) {
    const float* p = cat.colors.point(i);
    for (size_t j = 0; j < kNumBands; ++j) data(i, j) = p[j];
  }
  auto pca = Pca::Fit(data, 3);
  MDS_CHECK(pca.ok());
  PointSet projected(3, 0);
  projected.Reserve(cat.size());
  double row[kNumBands], out[3];
  for (size_t i = 0; i < cat.size(); ++i) {
    const float* p = cat.colors.point(i);
    for (size_t j = 0; j < kNumBands; ++j) row[j] = p[j];
    pca->TransformPoint(row, 3, out);
    projected.Append(out);
  }
  return projected;
}

void Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "E2 / §3.1: layered uniform grid sample queries",
      "returns ~n points following the distribution for any box size; "
      "practically only points actually returned are read from disk");

  CatalogConfig config;
  config.num_objects = options.n != 0 ? options.n
                       : options.quick ? 200000
                                       : 2000000;
  Catalog cat = GenerateCatalog(config);
  PointSet points = ProjectTo3D(cat);

  WallTimer build_timer;
  auto index = LayeredGridIndex::Build(&points);
  MDS_CHECK(index.ok());
  std::printf("N=%zu  layers=%u  build=%.2fs\n", points.size(),
              index->num_layers(), build_timer.Seconds());

  // A small buffer pool (256 pages ~ 2 MB) over the table so per-query
  // physical reads reflect actual page touches, as on the paper's
  // larger-than-memory table.
  MemPager pager;
  BufferPool pool(&pager, 256);
  auto table = MaterializePointTable(&pool, points, index->clustered_order());
  MDS_CHECK(table.ok());
  PointTableBinding binding = BindPointTable(&*table, 3);
  std::printf("table: %llu pages of %u rows (pool: 256 pages)\n",
              (unsigned long long)table->num_pages(), table->rows_per_page());

  const Box bounds = index->bounding_box();
  std::printf("%-10s %-8s %-9s %-9s %-10s %-12s %-8s\n", "box_frac", "n",
              "returned", "pages", "ideal_pg", "pages/ideal", "ms");
  for (double side_fraction : {1.0, 0.5, 0.25, 0.1, 0.05, 0.02}) {
    for (uint64_t n : {1000ull, 10000ull, 100000ull}) {
      // Box centered at the densest region's center.
      std::vector<double> lo(3), hi(3);
      for (int j = 0; j < 3; ++j) {
        double center = 0.5 * (bounds.lo(j) + bounds.hi(j));
        double half = 0.5 * (bounds.hi(j) - bounds.lo(j)) * side_fraction;
        lo[j] = center - half;
        hi[j] = center + half;
      }
      Box q(lo, hi);
      WallTimer timer;
      GridSamplePath path(binding, *index, q, n);
      QueryStats stats;
      auto result = ExecuteAccessPath(&path, &stats);
      MDS_CHECK(result.ok());
      double ms = timer.Millis();
      double ideal_pages =
          std::ceil(static_cast<double>(result->objids.size()) /
                    table->rows_per_page());
      // pages_fetched (logical) counts every page touch regardless of the
      // buffer pool's contents, so the ratio is cache-independent.
      std::printf("%-10.3g %-8llu %-9zu %-9llu %-10.0f %-12.2f %-8.2f\n",
                  std::pow(side_fraction, 3), (unsigned long long)n,
                  result->objids.size(),
                  (unsigned long long)stats.pages_fetched, ideal_pages,
                  stats.pages_fetched / std::max(ideal_pages, 1.0), ms);
      char row_name[64];
      std::snprintf(row_name, sizeof(row_name), "grid_sample_f%.3g_n%llu",
                    std::pow(side_fraction, 3), (unsigned long long)n);
      bench::EmitJson(options, row_name, points.size(), ms, stats.pages_read);
    }
  }
  std::printf(
      "pages/ideal close to 1 reproduces the \"only points actually "
      "returned are read\" claim; it grows only when the box straddles "
      "coarse cell boundaries.\n");
}

}  // namespace
}  // namespace mds

int main(int argc, char** argv) {
  mds::Run(mds::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
