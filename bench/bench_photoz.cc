// E11 (§4.1, Figures 7-8): photometric redshift estimation. Template
// fitting scatters badly because of template calibration problems
// (Figure 7); the k-NN local polynomial fit over the 1%-reference set is
// insensitive to calibration and cuts the average error by more than 50%
// (Figure 8). This bench reports RMS errors, the improvement factor, a
// calibration-offset sweep, and the k/degree ablation.

#include <cmath>
#include <vector>

#include "bench/bench_util.h"
#include "photoz/knn_photoz.h"
#include "photoz/template_fitting.h"
#include "sdss/catalog.h"

namespace mds {
namespace {

struct DataSets {
  PointSet ref_colors{kNumBands, 0};
  std::vector<float> ref_z;
  PointSet unk_colors{kNumBands, 0};
  std::vector<float> unk_z;
};

DataSets MakeData(uint64_t n, uint64_t seed) {
  CatalogConfig config;
  config.num_objects = n;
  config.seed = seed;
  config.star_fraction = 0.0;
  config.galaxy_fraction = 1.0;
  config.quasar_fraction = 0.0;
  Catalog cat = GenerateCatalog(config);
  // The paper: redshifts known for ~1% (1M of 270M). Use 1% here too.
  ReferenceSplit split = SplitReferenceSet(cat, 0.01, seed + 1);
  DataSets data;
  for (uint64_t id : split.reference) {
    data.ref_colors.Append(cat.colors.point(id));
    data.ref_z.push_back(cat.redshifts[id]);
  }
  for (uint64_t id : split.unknown) {
    data.unk_colors.Append(cat.colors.point(id));
    data.unk_z.push_back(cat.redshifts[id]);
  }
  return data;
}

void Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "E11 / §4.1 Figures 7-8: photometric redshift estimation",
      "k-NN polynomial fit over the reference set halves the error of "
      "(mis-calibrated) template fitting; insensitive to calibration");

  const uint64_t n = options.n != 0 ? options.n
                     : options.quick ? 200000
                                     : 1000000;
  DataSets data = MakeData(n, 13);
  std::printf("unknown set: %zu galaxies; reference set: %zu (1%%)\n",
              data.unk_colors.size(), data.ref_colors.size());

  const size_t eval_stride = options.quick ? 20 : 50;

  auto score_template = [&](const TemplateFittingConfig& config) {
    auto est = TemplateFittingEstimator::Build(config);
    MDS_CHECK(est.ok());
    PhotoZScorer scorer;
    for (size_t i = 0; i < data.unk_colors.size(); i += eval_stride) {
      scorer.Add(est->Estimate(data.unk_colors.point(i)), data.unk_z[i]);
    }
    return scorer.Finish();
  };
  auto score_knn = [&](const KnnPhotoZConfig& config, double* build_s,
                       double* ms_per_estimate) {
    WallTimer build;
    auto est = KnnPhotoZEstimator::Build(&data.ref_colors, &data.ref_z,
                                         config);
    MDS_CHECK(est.ok());
    if (build_s != nullptr) *build_s = build.Seconds();
    PhotoZScorer scorer;
    WallTimer timer;
    size_t count = 0;
    for (size_t i = 0; i < data.unk_colors.size(); i += eval_stride) {
      scorer.Add(est->Estimate(data.unk_colors.point(i)).redshift,
                 data.unk_z[i]);
      ++count;
    }
    if (ms_per_estimate != nullptr) *ms_per_estimate = timer.Millis() / count;
    return scorer.Finish();
  };

  // Headline comparison.
  double build_s = 0.0, ms_est = 0.0;
  PhotoZEvaluation knn = score_knn(KnnPhotoZConfig{}, &build_s, &ms_est);
  PhotoZEvaluation tmpl = score_template(TemplateFittingConfig{});
  TemplateFittingConfig oracle_config;
  oracle_config.calibration_offset = {0, 0, 0, 0, 0};
  oracle_config.miscalibration = 0.0;
  PhotoZEvaluation oracle = score_template(oracle_config);

  std::printf("%-28s %-10s %-10s %-10s\n", "method", "rms", "mean|err|",
              "bias");
  std::printf("%-28s %-10.4f %-10.4f %-+10.4f   (Figure 7)\n",
              "template fitting (miscal.)", tmpl.rms_error,
              tmpl.mean_abs_error, tmpl.bias);
  std::printf("%-28s %-10.4f %-10.4f %-+10.4f   (Figure 8)\n",
              "k-NN polynomial fit", knn.rms_error, knn.mean_abs_error,
              knn.bias);
  std::printf("%-28s %-10.4f %-10.4f %-+10.4f   (oracle calibration)\n",
              "template fitting (perfect)", oracle.rms_error,
              oracle.mean_abs_error, oracle.bias);
  std::printf("error reduction: %.0f%% (paper: >50%%)  [knn build %.2fs, "
              "%.3f ms/estimate]\n",
              100.0 * (1.0 - knn.rms_error / tmpl.rms_error), build_s, ms_est);

  // Calibration sensitivity sweep: the k-NN method's key advantage.
  std::printf("\ncalibration sweep (template rms vs k-NN rms):\n");
  std::printf("%-14s %-12s %-12s\n", "miscal.scale", "template_rms",
              "knn_rms");
  for (double scale : {0.0, 0.5, 1.0, 2.0}) {
    TemplateFittingConfig config;
    for (auto& o : config.calibration_offset) o *= scale;
    config.miscalibration *= scale;
    PhotoZEvaluation t = score_template(config);
    std::printf("%-14.1f %-12.4f %-12.4f\n", scale, t.rms_error,
                knn.rms_error);
  }

  // k / degree ablation for the k-NN estimator.
  std::printf("\nk-NN ablation:\n%-6s %-8s %-10s\n", "k", "degree", "rms");
  for (size_t k : {8u, 32u, 128u}) {
    for (int degree : {0, 1, 2}) {
      KnnPhotoZConfig config;
      config.k = k;
      config.degree = degree;
      if (data.ref_colors.size() < k) continue;
      PhotoZEvaluation e = score_knn(config, nullptr, nullptr);
      std::printf("%-6zu %-8d %-10.4f\n", k, degree, e.rms_error);
    }
  }
}

}  // namespace
}  // namespace mds

int main(int argc, char** argv) {
  mds::Run(mds::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
