// E12 (§4.2, Figures 9-10): spectral similarity search. 3000-sample
// spectra are reduced to their first 5 Karhunen-Loeve components ("enough
// to describe most of the physical characteristics"); nearest neighbors in
// the feature space retrieve spectra of the same kind of object.

#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "spectra/similarity.h"
#include "spectra/spectrum_generator.h"

namespace mds {
namespace {

void Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "E12 / §4.2 Figures 9-10: spectral similarity search",
      "5 principal components of 3000-sample spectra suffice; nearest "
      "feature-space neighbors are spectra of the same object type");

  SpectrumGrid grid;
  grid.num_samples = options.quick ? 750 : 3000;  // the paper's resolution
  SpectrumGenerator gen(grid);
  Rng rng(7);

  const size_t per_class = options.quick ? 100 : 300;
  std::vector<std::vector<float>> archive;
  std::vector<SpectrumClass> classes;
  WallTimer gen_timer;
  for (size_t c = 0; c < kNumSpectrumClasses; ++c) {
    for (size_t i = 0; i < per_class; ++i) {
      SpectrumParams p = gen.RandomParams(static_cast<SpectrumClass>(c), rng);
      archive.push_back(gen.GenerateNoisy(p, 0.02, rng));
      classes.push_back(p.cls);
    }
  }
  std::printf("archive: %zu spectra x %zu samples (%.2fs to synthesize)\n",
              archive.size(), grid.num_samples, gen_timer.Seconds());

  // PCA training on a subset (the paper fits the KL basis on a sample).
  std::vector<std::vector<float>> training(
      archive.begin(), archive.begin() + archive.size() / 2);
  WallTimer fit_timer;
  auto space = SpectralFeatureSpace::Fit(training, 5);
  MDS_CHECK(space.ok());
  std::printf("KL transform fit: %.2fs; 5 components capture %.1f%% of "
              "variance\n",
              fit_timer.Seconds(), 100.0 * space->ExplainedVarianceRatio());

  WallTimer index_timer;
  auto search = SpectralSimilaritySearch::Build(&*space, archive);
  MDS_CHECK(search.ok());
  std::printf("feature index over %zu spectra built in %.2fs\n",
              archive.size(), index_timer.Seconds());

  // Precision@k of class retrieval for fresh query spectra.
  const char* names[] = {"elliptical", "spiral", "starburst", "quasar"};
  std::printf("%-12s %-8s %-8s %-8s\n", "query_class", "P@1", "P@5", "P@10");
  const int queries = options.quick ? 20 : 50;
  WallTimer query_timer;
  uint64_t total_queries = 0;
  for (size_t c = 0; c < kNumSpectrumClasses; ++c) {
    uint64_t hits1 = 0, hits5 = 0, hits10 = 0;
    for (int t = 0; t < queries; ++t) {
      SpectrumParams p = gen.RandomParams(static_cast<SpectrumClass>(c), rng);
      std::vector<float> query = gen.GenerateNoisy(p, 0.02, rng);
      auto result = search->FindSimilar(query, 10);
      ++total_queries;
      for (size_t i = 0; i < result.size(); ++i) {
        bool match = classes[result[i].id] == p.cls;
        if (i < 1 && match) ++hits1;
        if (i < 5 && match) ++hits5;
        if (match) ++hits10;
      }
    }
    std::printf("%-12s %-8.2f %-8.2f %-8.2f\n", names[c],
                static_cast<double>(hits1) / queries,
                static_cast<double>(hits5) / (5.0 * queries),
                static_cast<double>(hits10) / (10.0 * queries));
  }
  std::printf("%.2f ms per similarity query (project + k-NN)\n",
              query_timer.Millis() / total_queries);
}

}  // namespace
}  // namespace mds

int main(int argc, char** argv) {
  mds::Run(mds::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
