// Checksum overhead on the clustered range scan (EXPERIMENTS.md E19): the
// same on-disk table scanned through a verifying and a non-verifying
// buffer pool. Every physical page miss pays one CRC-32C over the page, so
// the cold full scan is the worst case for verification cost; the
// acceptance target is <= 5% wall-clock overhead. The non-verifying pool
// exists only for this measurement — production pools always verify.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/access_path.h"
#include "core/point_table.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace mds {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

double Min(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

void Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "page checksum verification overhead on the clustered full scan",
      "integrity checking is nearly free: CRC-32C per page miss costs a "
      "few percent of a cold range scan, far below the I/O it protects");

  const size_t dim = 4;
  const uint64_t n = options.n != 0 ? options.n
                     : options.quick ? 200000
                                     : 2000000;

  Rng rng(2026);
  PointSet points(dim, 0);
  points.Reserve(n);
  std::vector<double> p(dim);
  for (uint64_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < dim; ++j) p[j] = rng.NextDouble();
    points.Append(p.data());
  }

  const std::string path = TempPath("mds_bench_integrity.db");
  Schema schema = PointTableSchema(dim);
  std::vector<PageId> page_ids;
  uint64_t num_rows = 0;
  {
    auto pager = FilePager::Create(path);
    if (!pager.ok()) {
      std::fprintf(stderr, "create failed: %s\n",
                   pager.status().ToString().c_str());
      return;
    }
    BufferPool pool(pager->get(), 1u << 14);
    auto table = MaterializePointTable(&pool, points, {});
    if (!table.ok() || !pool.FlushAll().ok()) {
      std::fprintf(stderr, "materialize failed\n");
      return;
    }
    num_rows = table->num_rows();
    for (uint64_t i = 0; i < table->num_pages(); ++i) {
      page_ids.push_back(table->page_id(i));
    }
  }
  std::printf("table: %llu rows, %zu pages on disk (%s)\n",
              static_cast<unsigned long long>(num_rows), page_ids.size(),
              path.c_str());

  std::vector<double> center(dim, 0.5);
  Polyhedron query = Polyhedron::BallApproximation(center, 0.4, 16);

  const int reps = options.quick ? 5 : 9;
  // One timed scan: a fresh pool (every fetch is a physical miss, so every
  // page pays — or skips — verification), one full-scan query.
  auto timed_scan = [&](bool verify, uint64_t* matches,
                        CounterSnapshot::Delta* io) -> double {
    auto pager = FilePager::Open(path);
    if (!pager.ok()) return -1.0;
    BufferPool pool(pager->get(), 1u << 14, 0, verify);
    auto table = Table::Attach(&pool, schema, page_ids, num_rows);
    if (!table.ok()) return -1.0;
    FullScanPath scan(BindPointTable(&*table, dim), query);
    bench::IoProbe probe(&pool);
    WallTimer timer;
    auto result = ExecuteAccessPath(&scan);
    const double ms = timer.Millis();
    if (!result.ok()) return -1.0;
    *matches = result->objids.size();
    *io = probe.Delta();
    return ms;
  };

  // Warm the OS page cache once so both modes measure CPU, not first-touch
  // disk latency.
  uint64_t matches = 0;
  CounterSnapshot::Delta io{};
  (void)timed_scan(true, &matches, &io);

  std::vector<double> on_ms, off_ms;
  for (int r = 0; r < reps; ++r) {
    // Alternate which mode goes first so drift (thermal, competing load)
    // hits both equally; best-of-reps rejects the noise floor.
    const bool on_first = (r % 2 == 0);
    for (int half = 0; half < 2; ++half) {
      const bool verify = (half == 0) == on_first;
      CounterSnapshot::Delta scan_io{};
      const double ms = timed_scan(verify, &matches, &scan_io);
      if (ms < 0) {
        std::fprintf(stderr, "scan failed\n");
        return;
      }
      if (verify) io = scan_io;
      (verify ? on_ms : off_ms).push_back(ms);
    }
  }

  const double on_med = Min(on_ms);
  const double off_med = Min(off_ms);
  const double overhead = (on_med - off_med) / off_med * 100.0;

  std::printf("\nquery: ball r=0.4 -> %llu matches, %llu physical page "
              "reads/scan, %llu pages verified\n",
              static_cast<unsigned long long>(matches),
              static_cast<unsigned long long>(io.physical_reads),
              static_cast<unsigned long long>(io.checksums_verified));
  std::printf("%-22s %-12s %-12s\n", "mode", "best_ms", "MB/s");
  const double mb = static_cast<double>(page_ids.size()) * kPageSize / 1e6;
  std::printf("%-22s %-12.2f %-12.1f\n", "verify_checksums=off", off_med,
              mb / (off_med / 1e3));
  std::printf("%-22s %-12.2f %-12.1f\n", "verify_checksums=on", on_med,
              mb / (on_med / 1e3));
  std::printf("checksum overhead: %+.2f%% wall-clock (target <= 5%%)\n",
              overhead);
  bench::EmitJson(options, "scan_verify_off", num_rows, off_med,
                  io.physical_reads);
  bench::EmitJson(options, "scan_verify_on", num_rows, on_med,
                  io.physical_reads);
  if (options.json) {
    std::printf("{\"name\":\"checksum_overhead_pct\",\"n\":%llu,"
                "\"wall_ms\":%.3f,\"pages_read\":%llu}\n",
                static_cast<unsigned long long>(num_rows), overhead,
                static_cast<unsigned long long>(io.physical_reads));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mds

int main(int argc, char** argv) {
  mds::Run(mds::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
