// E10 (§4, Figure 6): unsupervised classification with basin spanning
// trees over Voronoi cell densities. The paper reports 92% of 100K labeled
// objects classified correctly by cluster-majority vote. We report the
// measured accuracy, the per-cell majority oracle (an upper bound set by
// how much the synthetic classes overlap), and the seed-count sweep.

#include <vector>

#include "bench/bench_util.h"
#include "cluster/basin_spanning_tree.h"
#include "common/rng.h"
#include "core/voronoi_index.h"
#include "sdss/catalog.h"

namespace mds {
namespace {

void Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "E10 / §4 Figure 6: BST clustering classification",
      "connecting each Voronoi cell to its densest neighbor separates "
      "density clusters; 92% of 100K labeled objects classified correctly");

  CatalogConfig config;
  config.num_objects = options.n != 0 ? options.n
                       : options.quick ? 40000
                                       : 100000;  // the paper's subset size
  config.seed = 17;
  Catalog cat = GenerateCatalog(config);

  std::printf("N=%llu labeled objects\n",
              (unsigned long long)config.num_objects);
  std::printf("%-8s %-10s %-10s %-10s %-10s\n", "Nseed", "clusters",
              "accuracy", "oracle", "secs");
  for (uint32_t nseed : options.quick
                            ? std::vector<uint32_t>{400, 800}
                            : std::vector<uint32_t>{400, 800, 1600, 3200}) {
    WallTimer timer;
    VoronoiIndexConfig vc;
    vc.num_seeds = nseed;
    vc.seed = 5;
    auto index = VoronoiIndex::Build(&cat.colors, vc);
    MDS_CHECK(index.ok());
    Rng rng(3);
    std::vector<double> density = index->EstimateCellDensities(
        options.quick ? 200000 : 1000000, rng);
    auto bst = BuildBasinSpanningTree(index->seed_graph(), density);
    MDS_CHECK(bst.ok());

    std::vector<uint32_t> point_cluster, cell_of_point, point_label;
    for (uint64_t i = 0; i < cat.size(); ++i) {
      if (cat.classes[i] == SpectralClass::kOutlier) continue;
      point_cluster.push_back(bst->cluster[index->tag(i)]);
      cell_of_point.push_back(index->tag(i));
      point_label.push_back(static_cast<uint32_t>(cat.classes[i]));
    }
    auto eval = EvaluateClusterClassification(point_cluster, point_label,
                                              bst->num_clusters());
    auto oracle = EvaluateClusterClassification(cell_of_point, point_label,
                                                index->num_seeds());
    MDS_CHECK(eval.ok());
    MDS_CHECK(oracle.ok());
    std::printf("%-8u %-10u %-10.1f %-10.1f %-10.1f\n", index->num_seeds(),
                bst->num_clusters(), 100.0 * eval->accuracy,
                100.0 * oracle->accuracy, timer.Seconds());
  }
  std::printf(
      "paper: 92%% (real SDSS colors). The oracle column bounds what any "
      "cell-level method can reach on this synthetic color space.\n");
}

}  // namespace
}  // namespace mds

int main(int argc, char** argv) {
  mds::Run(mds::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
