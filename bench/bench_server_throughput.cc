// Closed-loop throughput of the mdsd query server on loopback: C client
// threads, each with its own connection, issue small box queries
// back-to-back and record end-to-end latency into one shared lock-free
// recorder. Reports req/s and p50/p95/p99 per phase, then drives the
// server into overload (closed-loop concurrency = 2x the admission cap)
// and verifies the server sheds with retryable rejections instead of
// buffering or hanging.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "sdss/catalog.h"
#include "server/client.h"
#include "server/coordinator.h"
#include "server/dataset.h"
#include "server/server.h"

namespace mds {
namespace {

/// Small query box #i: a tight cube around a point on the stellar locus,
/// cycling through locus positions so consecutive requests touch
/// different pages.
Box SmallBox(size_t i) {
  double mags[kNumBands];
  StellarLocus(0.05 + 0.9 * static_cast<double>(i % 97) / 97.0, 0.0, mags);
  std::vector<double> lo(mags, mags + kNumBands);
  std::vector<double> hi = lo;
  for (size_t j = 0; j < kNumBands; ++j) {
    lo[j] -= 0.15;
    hi[j] += 0.15;
  }
  return Box(lo, hi);
}

struct PhaseResult {
  uint64_t ok = 0;
  uint64_t rejected = 0;
  uint64_t failed = 0;
  double wall_ms = 0.0;
  bench::LatencyRecorder::Digest latency;
};

/// Runs `clients` closed-loop threads for `requests_per_client` requests
/// each; every thread owns one connection and reconnects if an exchange
/// fails. `distinct_boxes` != 0 folds the workload onto that many distinct
/// query boxes (a repeated workload, the response cache's target shape);
/// 0 keeps the full variety.
PhaseResult RunClosedLoop(uint16_t port, size_t clients,
                          int requests_per_client, size_t distinct_boxes = 0) {
  bench::LatencyRecorder recorder;
  std::atomic<uint64_t> ok{0}, rejected{0}, failed{0};
  std::vector<std::thread> threads;
  WallTimer wall;
  for (size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      auto client = QueryClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failed.fetch_add(static_cast<uint64_t>(requests_per_client));
        return;
      }
      for (int i = 0; i < requests_per_client; ++i) {
        size_t box_index = t * 131 + static_cast<size_t>(i);
        if (distinct_boxes != 0) box_index %= distinct_boxes;
        const Box box = SmallBox(box_index);
        WallTimer timer;
        auto result = client->PointCount(box);
        recorder.RecordMillis(timer.Millis());
        if (result.ok()) {
          ok.fetch_add(1);
        } else if (result.status().IsTransient()) {
          rejected.fetch_add(1);
        } else {
          failed.fetch_add(1);
          if (!client->connected()) {
            auto again = QueryClient::Connect("127.0.0.1", port);
            if (!again.ok()) return;
            *client = std::move(*again);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  PhaseResult r;
  r.wall_ms = wall.Millis();
  r.ok = ok.load();
  r.rejected = rejected.load();
  r.failed = failed.load();
  r.latency = recorder.Take();
  return r;
}

/// Pipelined counterpart of RunClosedLoop: `clients` threads, each with one
/// connection, issue `batches_per_client` batches of `batch` point counts via
/// QueryClient::PointCountPipeline — all requests of a batch stream out
/// before the first reply is read. Recorded latency is per *request* under
/// load: every request in a batch experienced the batch's wall clock, which
/// is what an open-loop arrival would see.
PhaseResult RunPipelined(uint16_t port, size_t clients, int batches_per_client,
                         size_t batch, size_t distinct_boxes) {
  bench::LatencyRecorder recorder;
  std::atomic<uint64_t> ok{0}, rejected{0}, failed{0};
  std::vector<std::thread> threads;
  WallTimer wall;
  for (size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      auto client = QueryClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failed.fetch_add(static_cast<uint64_t>(batches_per_client) * batch);
        return;
      }
      std::vector<Box> boxes;
      boxes.reserve(batch);
      for (int b = 0; b < batches_per_client; ++b) {
        boxes.clear();
        for (size_t i = 0; i < batch; ++i) {
          const size_t box_index =
              (t * 131 + static_cast<size_t>(b) * batch + i) % distinct_boxes;
          boxes.push_back(SmallBox(box_index));
        }
        WallTimer timer;
        auto results = client->PointCountPipeline(boxes);
        const double batch_ms = timer.Millis();
        for (const auto& result : results) {
          recorder.RecordMillis(batch_ms);
          if (result.ok()) {
            ok.fetch_add(1);
          } else if (result.status().IsTransient()) {
            rejected.fetch_add(1);
          } else {
            failed.fetch_add(1);
          }
        }
        if (!client->connected()) {
          auto again = QueryClient::Connect("127.0.0.1", port);
          if (!again.ok()) return;
          *client = std::move(*again);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  PhaseResult r;
  r.wall_ms = wall.Millis();
  r.ok = ok.load();
  r.rejected = rejected.load();
  r.failed = failed.load();
  r.latency = recorder.Take();
  return r;
}

void PrintPhase(const bench::BenchOptions& options, const char* name,
                const PhaseResult& r) {
  const uint64_t total = r.ok + r.rejected + r.failed;
  const double per_sec = r.wall_ms > 0.0
                             ? 1000.0 * static_cast<double>(total) / r.wall_ms
                             : 0.0;
  std::printf("%-22s %8.0f req/s  ok=%llu rejected=%llu failed=%llu\n", name,
              per_sec, (unsigned long long)r.ok,
              (unsigned long long)r.rejected, (unsigned long long)r.failed);
  bench::PrintLatency("  latency", r.latency);
  bench::EmitJsonLatency(options, name, r.latency, per_sec);
}

void Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "mdsd server throughput (loopback, closed-loop clients)",
      "a concurrent network front end sustains >= 10k small queries/s at 4 "
      "workers and sheds (not hangs) at 2x the admission cap");

  DatasetConfig dataset_config;
  dataset_config.num_rows = options.n != 0 ? options.n
                            : options.quick ? 100000
                                            : 500000;
  auto dataset = ServedDataset::Build(dataset_config);
  MDS_CHECK(dataset.ok());
  std::printf("dataset: %llu rows, dim %zu\n",
              (unsigned long long)dataset->num_rows(), dataset->dim());

  // --- Phase 1: throughput at 4 workers, cap comfortably above load ----
  {
    ServerConfig config;
    config.num_workers = 4;
    config.max_in_flight = 256;
    QueryServer server(&*dataset, config);
    MDS_CHECK(server.Start().ok());

    // Correctness probe before the clock starts: one remote count must
    // match a local brute force.
    {
      auto client = QueryClient::Connect("127.0.0.1", server.port());
      MDS_CHECK(client.ok());
      const Box probe = SmallBox(0);
      auto count = client->PointCount(probe);
      MDS_CHECK(count.ok());
      uint64_t expected = 0;
      const PointSet& points = dataset->points();
      for (uint64_t i = 0; i < points.size(); ++i) {
        if (probe.Contains(points.point(i))) ++expected;
      }
      MDS_CHECK(*count == expected);
    }

    const int per_client = options.quick ? 250 : 2500;
    std::printf("\n-- throughput: 4 workers, 4 closed-loop clients --\n");
    PhaseResult warm = RunClosedLoop(server.port(), 4, per_client / 5);
    (void)warm;  // connection + page-cache warmup, not reported
    PhaseResult r = RunClosedLoop(server.port(), 4, per_client);
    PrintPhase(options, "server_throughput", r);
    MDS_CHECK(r.failed == 0);
    MDS_CHECK(r.ok > 0);

    const auto stats = server.Stats();
    std::printf(
        "server: %llu requests, peak in-flight %llu, pool reads "
        "%llu logical / %llu physical\n",
        (unsigned long long)stats.requests_total,
        (unsigned long long)stats.in_flight_peak,
        (unsigned long long)stats.pool_logical_reads,
        (unsigned long long)stats.pool_physical_reads);
    server.Shutdown();
  }

  // --- Phase 2: overload — closed-loop concurrency 2x the cap ----------
  {
    ServerConfig config;
    config.num_workers = 2;
    config.max_in_flight = 4;
    QueryServer server(&*dataset, config);
    MDS_CHECK(server.Start().ok());

    const size_t clients = 2 * config.max_in_flight * 2;  // 2x cap, 2 each
    const int per_client = options.quick ? 50 : 250;
    std::printf("\n-- overload: cap %zu, %zu closed-loop clients --\n",
                config.max_in_flight, clients);
    PhaseResult r = RunClosedLoop(server.port(), clients, per_client);
    PrintPhase(options, "server_overload", r);

    // The shed contract: every request terminated, rejections are the
    // only non-OK outcome, and at this pressure some must have occurred.
    MDS_CHECK(r.failed == 0);
    MDS_CHECK(r.ok > 0);
    MDS_CHECK(r.rejected > 0);
    const auto stats = server.Stats();
    MDS_CHECK(stats.rejected_overload == r.rejected);
    MDS_CHECK(stats.in_flight_peak <= config.max_in_flight);
    std::printf("shed rate: %.1f%% of %llu arrivals\n",
                100.0 * static_cast<double>(r.rejected) /
                    static_cast<double>(r.ok + r.rejected),
                (unsigned long long)(r.ok + r.rejected));
    server.Shutdown();
  }

  // --- Phase 3: response cache on a repeated workload ------------------
  // The same tiny worker pool and admission cap as the overload phase, but
  // with the response cache on and the workload folded onto a fixed set of
  // distinct boxes. Once the cache is warm, hits are answered on reader
  // threads and never enter admission control: with 4x the cap in clients,
  // nothing is shed and the in-flight peak stays below the cap.
  {
    ServerConfig config;
    config.num_workers = 2;
    config.max_in_flight = 4;
    config.cache_bytes = 32u << 20;
    QueryServer server(&*dataset, config);
    MDS_CHECK(server.Start().ok());

    const size_t kDistinct = 64;
    const size_t hot_clients = 16;
    const int hot_per_client = options.quick ? 100 : 500;
    std::printf("\n-- response cache: %zu distinct boxes, %zu clients --\n",
                kDistinct, hot_clients);

    // Hit ratio over a window = counter deltas across one pass.
    uint64_t last_hits = 0, last_misses = 0;
    auto hit_ratio_since = [&]() {
      const auto stats = server.Stats();
      const uint64_t dh = stats.cache_hits - last_hits;
      const uint64_t dm = stats.cache_misses - last_misses;
      last_hits = stats.cache_hits;
      last_misses = stats.cache_misses;
      return dh + dm == 0
                 ? 0.0
                 : static_cast<double>(dh) / static_cast<double>(dh + dm);
    };

    // Cold pass: one client touches every distinct box once — all misses,
    // each executing through the engine. Its p50 is the execution cost.
    PhaseResult cold = RunClosedLoop(server.port(), 1,
                                     static_cast<int>(kDistinct), kDistinct);
    PrintPhase(options, "server_cache_cold", cold);
    MDS_CHECK(cold.failed == 0);
    const double cold_ratio = hit_ratio_since();
    std::printf("cold pass hit ratio: %.3f\n", cold_ratio);

    // Warm pass at the same concurrency (one client): every request is a
    // hit, so its p50 is the memoized-reply cost — an apples-to-apples
    // latency comparison against the cold pass.
    PhaseResult warm = RunClosedLoop(server.port(), 1,
                                     4 * static_cast<int>(kDistinct),
                                     kDistinct);
    PrintPhase(options, "server_cache_warm", warm);
    const double warm_ratio = hit_ratio_since();
    std::printf("warm pass hit ratio: %.3f\n", warm_ratio);
    MDS_CHECK(warm.failed == 0);
    MDS_CHECK(warm_ratio >= 0.9);
    MDS_CHECK(warm.latency.p50_us < cold.latency.p50_us);

    // Hot hammer: 4x the admission cap in clients; everything is memoized
    // and answered on the I/O thread, so nothing is shed and the workers
    // stay idle. The slab counters on the stats wire tail gauge the
    // zero-copy contract: a hit performs no payload memcpy and no slab
    // allocation, so across a pure-hit window reply_tail_copies and
    // slab_allocations may move only for the residual misses plus the
    // one stats reply written after the "before" snapshot.
    auto wire_stats = [&]() {
      auto client = QueryClient::Connect("127.0.0.1", server.port());
      MDS_CHECK(client.ok());
      auto stats = client->ServerStats();
      MDS_CHECK(stats.ok());
      return *stats;
    };
    const auto before_hot = wire_stats();
    PhaseResult hot = RunClosedLoop(server.port(), hot_clients,
                                    hot_per_client, kDistinct);
    const auto after_hot = wire_stats();
    PrintPhase(options, "server_cache_hot", hot);
    const double hot_ratio = hit_ratio_since();
    const auto hot_stats = server.Stats();
    std::printf("hot pass hit ratio: %.3f (cache: %llu entries, %llu bytes)\n",
                hot_ratio, (unsigned long long)hot_stats.cache_entries,
                (unsigned long long)hot_stats.cache_bytes);
    MDS_CHECK(hot.failed == 0);
    MDS_CHECK(hot.rejected == 0);  // hits bypass admission control
    MDS_CHECK(hot_ratio >= 0.9);
    MDS_CHECK(hot_stats.in_flight_peak < config.max_in_flight);

    const uint64_t hot_misses = after_hot.cache_misses - before_hot.cache_misses;
    const uint64_t hot_copies =
        after_hot.reply_tail_copies - before_hot.reply_tail_copies;
    const uint64_t hot_allocs =
        after_hot.slab_allocations - before_hot.slab_allocations;
    std::printf("zero-copy hot pass: %llu tail copies, %llu slab allocations "
                "over %llu misses (+1 stats reply); slab bytes in use %llu, "
                "recycle ratio %.2f\n",
                (unsigned long long)hot_copies, (unsigned long long)hot_allocs,
                (unsigned long long)hot_misses,
                (unsigned long long)after_hot.slab_bytes_in_use,
                after_hot.slab_allocations != 0
                    ? static_cast<double>(after_hot.slab_recycles) /
                          static_cast<double>(after_hot.slab_allocations)
                    : 0.0);
    MDS_CHECK(hot_copies <= hot_misses + 1);
    MDS_CHECK(hot_allocs <= hot_misses + 1);
    MDS_CHECK(after_hot.slab_bytes_in_use > 0);  // cache entries pin slices

    // Epoch bump mid-bench: one atomic store invalidates everything. The
    // next pass over the same boxes re-misses (~0 ratio), repopulates,
    // and the pass after that is hot again.
    dataset->BumpEpoch();
    PhaseResult repop = RunClosedLoop(server.port(), 1,
                                      static_cast<int>(kDistinct), kDistinct);
    MDS_CHECK(repop.failed == 0);
    const double bumped_ratio = hit_ratio_since();
    PhaseResult rehot = RunClosedLoop(server.port(), hot_clients,
                                      hot_per_client / 2, kDistinct);
    MDS_CHECK(rehot.failed == 0);
    const double recovered_ratio = hit_ratio_since();
    std::printf(
        "epoch bump: hit ratio %.3f -> %.3f after repopulation\n",
        bumped_ratio, recovered_ratio);
    MDS_CHECK(bumped_ratio <= 0.05);
    MDS_CHECK(recovered_ratio >= 0.9);

    server.Shutdown();
  }

  // --- Phase 4: pipelining — batched streams vs one-request-per-RTT ----
  // 64 connections on a cache-warm repeated workload, so the measured cost
  // is the wire layer itself: framing, syscalls, and scheduler wakeups.
  // One-per-RTT pays that cost per request; the pipelined client streams a
  // whole batch before reading the first reply, amortizing it ~batch-fold.
  // The acceptance bar is >= 1.5x throughput for the pipelined run.
  {
    ServerConfig config;
    config.num_workers = 4;
    config.max_in_flight = 256;
    config.cache_bytes = 32u << 20;
    QueryServer server(&*dataset, config);
    MDS_CHECK(server.Start().ok());

    const size_t kConns = 64;
    const size_t kDistinct = 64;
    const size_t kBatch = 16;
    const int per_client = options.quick ? 128 : 512;  // requests per conn
    std::printf("\n-- pipelining: %zu connections, batch %zu --\n", kConns,
                kBatch);

    // Parity probe before the clock starts: one pipelined batch must agree
    // slot-for-slot with sequential exchanges on the same connection.
    {
      auto client = QueryClient::Connect("127.0.0.1", server.port());
      MDS_CHECK(client.ok());
      std::vector<Box> probe_boxes;
      for (size_t i = 0; i < kBatch; ++i) probe_boxes.push_back(SmallBox(i));
      auto batched = client->PointCountPipeline(probe_boxes);
      MDS_CHECK(batched.size() == probe_boxes.size());
      for (size_t i = 0; i < probe_boxes.size(); ++i) {
        auto single = client->PointCount(probe_boxes[i]);
        MDS_CHECK(single.ok());
        MDS_CHECK(batched[i].ok());
        MDS_CHECK(*batched[i] == *single);
      }
    }

    // Warm the response cache over every distinct box, then measure.
    PhaseResult prewarm = RunClosedLoop(server.port(), 2,
                                        2 * static_cast<int>(kDistinct),
                                        kDistinct);
    MDS_CHECK(prewarm.failed == 0);

    PhaseResult serial =
        RunClosedLoop(server.port(), kConns, per_client, kDistinct);
    PrintPhase(options, "server_one_per_rtt", serial);
    MDS_CHECK(serial.failed == 0);

    PhaseResult piped =
        RunPipelined(server.port(), kConns,
                     per_client / static_cast<int>(kBatch), kBatch, kDistinct);
    PrintPhase(options, "server_pipelined", piped);
    MDS_CHECK(piped.failed == 0);
    MDS_CHECK(piped.ok == serial.ok);  // same request count, all answered

    const double serial_per_sec =
        1000.0 * static_cast<double>(serial.ok) / serial.wall_ms;
    const double piped_per_sec =
        1000.0 * static_cast<double>(piped.ok) / piped.wall_ms;
    std::printf("pipelining speedup: %.2fx (%.0f -> %.0f req/s)\n",
                piped_per_sec / serial_per_sec, serial_per_sec, piped_per_sec);
    MDS_CHECK(piped_per_sec >= 1.5 * serial_per_sec);

    server.Shutdown();
  }

  // --- Phase 5: scale-out — point counts through mdsc over S shards ----
  // Every shard set re-derives kd-subtree slices of the SAME catalog
  // (same --n/--seed), so each topology answers every query identically;
  // the coordinator fans a point count out to all S backends and sums.
  // On a multi-core host the shards' engine work runs concurrently and
  // throughput should scale; on one core the fan-out only adds hops, so
  // the >= 1.5x acceptance bar at 4 shards is gated on >= 4 cores and the
  // single-core result is reported flat, honestly.
  {
    std::printf("\n-- scale-out: closed-loop point counts through mdsc --\n");
    uint64_t expected_count = 0;
    {
      const Box probe = SmallBox(7);
      const PointSet& points = dataset->points();
      for (uint64_t i = 0; i < points.size(); ++i) {
        if (probe.Contains(points.point(i))) ++expected_count;
      }
    }

    const int per_client = options.quick ? 150 : 1000;
    double shards1_per_sec = 0.0;
    double shards4_per_sec = 0.0;
    for (const uint32_t num_shards : {1u, 2u, 4u}) {
      // Shard datasets: shard 0 of 1 is the full catalog, already built.
      std::vector<std::unique_ptr<ServedDataset>> shard_data;
      std::vector<std::unique_ptr<QueryServer>> backends;
      ShardMap map;
      for (uint32_t i = 0; i < num_shards; ++i) {
        ServedDataset* served = &*dataset;
        if (num_shards > 1) {
          DatasetConfig shard_config = dataset_config;
          shard_config.shard_index = i;
          shard_config.shard_count = num_shards;
          auto built = ServedDataset::Build(shard_config);
          MDS_CHECK(built.ok());
          shard_data.push_back(
              std::make_unique<ServedDataset>(std::move(*built)));
          served = shard_data.back().get();
        }
        ServerConfig backend_config;
        backend_config.num_workers = 2;
        backend_config.max_in_flight = 256;
        backends.push_back(
            std::make_unique<QueryServer>(served, backend_config));
        MDS_CHECK(backends.back()->Start().ok());
        map.shards.push_back({{"127.0.0.1", backends.back()->port()}});
      }
      Coordinator coordinator(map, CoordinatorConfig{});
      MDS_CHECK(coordinator.Start().ok());
      MDS_CHECK(coordinator.served_rows() == dataset->num_rows());

      // Parity probe before the clock starts: the fanned-out count must
      // match the local brute force, at every shard count.
      {
        auto client = QueryClient::Connect("127.0.0.1", coordinator.port());
        MDS_CHECK(client.ok());
        auto count = client->PointCount(SmallBox(7));
        MDS_CHECK(count.ok());
        MDS_CHECK(*count == expected_count);
      }

      PhaseResult warm =
          RunClosedLoop(coordinator.port(), 4, per_client / 5);
      (void)warm;
      PhaseResult r = RunClosedLoop(coordinator.port(), 4, per_client);
      const std::string name =
          "coordinator_shards_" + std::to_string(num_shards);
      PrintPhase(options, name.c_str(), r);
      MDS_CHECK(r.failed == 0);
      MDS_CHECK(r.ok > 0);

      const double per_sec = 1000.0 * static_cast<double>(r.ok) / r.wall_ms;
      if (num_shards == 1) shards1_per_sec = per_sec;
      if (num_shards == 4) shards4_per_sec = per_sec;

      coordinator.Shutdown();
      for (auto& b : backends) b->Shutdown();
    }

    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("scale-out speedup at 4 shards: %.2fx (%.0f -> %.0f req/s) "
                "on %u cores\n",
                shards4_per_sec / shards1_per_sec, shards1_per_sec,
                shards4_per_sec, cores);
    if (cores >= 4) {
      MDS_CHECK(shards4_per_sec >= 1.5 * shards1_per_sec);
    } else {
      std::printf("(single-core host: shards serialize onto one CPU, so no "
                  "speedup bar is enforced)\n");
    }
  }

  // --- Phase 6: dead replica — breakers keep degraded throughput up ----
  // 1 shard x 2 replicas over the same catalog. Baseline with both
  // healthy, then kill -9 one replica (Shutdown closes its socket the
  // same way) and measure again. The first few requests eat a
  // connect-refused + failover each; after breaker_failure_threshold
  // consecutive failures the dead replica's breaker opens and every
  // subsequent request short-circuits straight to the survivor, so
  // steady-state throughput must stay >= 90% of the all-healthy run.
  {
    std::printf("\n-- dead replica: 1 shard x 2 replicas, breakers on --\n");
    ServerConfig backend_config;
    backend_config.num_workers = 2;
    backend_config.max_in_flight = 256;
    QueryServer replica0(&*dataset, backend_config);
    QueryServer replica1(&*dataset, backend_config);
    MDS_CHECK(replica0.Start().ok());
    MDS_CHECK(replica1.Start().ok());
    ShardMap map;
    map.shards.push_back({{"127.0.0.1", replica0.port()},
                          {"127.0.0.1", replica1.port()}});
    Coordinator coordinator(map, CoordinatorConfig{});
    MDS_CHECK(coordinator.Start().ok());

    const int per_client = options.quick ? 150 : 1000;
    PhaseResult warm = RunClosedLoop(coordinator.port(), 4, per_client / 5);
    (void)warm;
    PhaseResult healthy = RunClosedLoop(coordinator.port(), 4, per_client);
    PrintPhase(options, "coordinator_all_healthy", healthy);
    MDS_CHECK(healthy.failed == 0);
    MDS_CHECK(healthy.ok > 0);

    replica0.Shutdown();
    // Breaker warmup: absorb the failover-per-request window until the
    // dead replica's breaker opens (threshold is 5 consecutive failures).
    PhaseResult opening = RunClosedLoop(coordinator.port(), 4, 25);
    MDS_CHECK(opening.failed == 0);

    PhaseResult degraded = RunClosedLoop(coordinator.port(), 4, per_client);
    PrintPhase(options, "coordinator_dead_replica", degraded);
    MDS_CHECK(degraded.failed == 0);
    MDS_CHECK(degraded.ok > 0);

    {
      auto client = QueryClient::Connect("127.0.0.1", coordinator.port());
      MDS_CHECK(client.ok());
      auto stats = client->ServerStats();
      MDS_CHECK(stats.ok());
      MDS_CHECK(stats->shards.size() == 1);
      const auto& shard = stats->shards[0];
      std::printf("shard 0 after kill: %u/%u replicas healthy, "
                  "failovers=%llu short-circuits=%llu open breakers=%u\n",
                  shard.healthy_replicas, shard.replicas,
                  (unsigned long long)shard.failovers,
                  (unsigned long long)shard.breaker_short_circuits,
                  shard.open_breakers);
      MDS_CHECK(shard.failovers > 0);
      MDS_CHECK(shard.breaker_short_circuits > 0);
    }

    const double healthy_per_sec =
        1000.0 * static_cast<double>(healthy.ok) / healthy.wall_ms;
    const double degraded_per_sec =
        1000.0 * static_cast<double>(degraded.ok) / degraded.wall_ms;
    std::printf("degraded throughput: %.0f req/s vs %.0f healthy (%.1f%%)\n",
                degraded_per_sec, healthy_per_sec,
                100.0 * degraded_per_sec / healthy_per_sec);
    MDS_CHECK(degraded_per_sec >= 0.9 * healthy_per_sec);

    coordinator.Shutdown();
    replica1.Shutdown();
  }

  // --- Phase 7: dataset lifecycle — mmap load, parity, live swap -------
  // The offline-build pipeline's bench: write the same catalog to a
  // dataset file, then (a) compare cold-start time for mmap-load vs
  // in-process synthetic build, (b) check the mmap-served server's
  // steady-state throughput is within 5% of the build-served one over
  // an identical workload, and (c) hot-swap the dataset mid-traffic
  // and compare p99 during the swap window against steady state — with
  // zero failed or shed requests.
  {
    std::printf("\n-- dataset lifecycle: mmap load, parity, live swap --\n");
    const std::string path =
        (std::filesystem::temp_directory_path() / "bench_lifecycle.mds")
            .string();
    {
      WallTimer timer;
      DatasetFileOptions file_options;
      file_options.dataset = dataset_config;
      MDS_CHECK(WriteDatasetFile(file_options, path).ok());
      std::printf("offline build+write: %.0f ms (%s)\n", timer.Millis(),
                  path.c_str());
    }

    WallTimer build_timer;
    auto built = ServedDataset::Build(dataset_config);
    const double build_ms = build_timer.Millis();
    MDS_CHECK(built.ok());
    WallTimer load_timer;
    auto loaded = ServedDataset::Load(path);
    const double load_ms = load_timer.Millis();
    MDS_CHECK(loaded.ok());
    std::printf("cold start: build %.0f ms vs %s load %.0f ms (%.1fx)\n",
                build_ms, loaded->mmap_backed() ? "mmap" : "file", load_ms,
                build_ms / load_ms);

    // Steady-state parity: same workload against a build-served and a
    // load-served server. The generations are identical (same seed), so
    // only the pager differs; the bar is >= 95% of build throughput.
    const int per_client = options.quick ? 250 : 2500;
    auto throughput_of = [&](ServedDataset* served, const char* name) {
      ServerConfig config;
      config.num_workers = 4;
      config.max_in_flight = 256;
      QueryServer server(served, config);
      MDS_CHECK(server.Start().ok());
      PhaseResult warm = RunClosedLoop(server.port(), 4, per_client / 5);
      (void)warm;
      PhaseResult r = RunClosedLoop(server.port(), 4, per_client);
      PrintPhase(options, name, r);
      MDS_CHECK(r.failed == 0);
      server.Shutdown();
      return 1000.0 * static_cast<double>(r.ok) / r.wall_ms;
    };
    const double build_per_sec = throughput_of(&*built, "server_from_build");
    const double mmap_per_sec = throughput_of(&*loaded, "server_from_mmap");
    std::printf("mmap parity: %.0f req/s vs %.0f built (%.1f%%)\n",
                mmap_per_sec, build_per_sec,
                100.0 * mmap_per_sec / build_per_sec);
    MDS_CHECK(mmap_per_sec >= 0.95 * build_per_sec);

    // Live swap: steady p99 first, then the same workload with a reload
    // landing mid-run. Every request must succeed across the swap.
    {
      auto served = std::make_shared<const ServedDataset>(std::move(*loaded));
      ServerConfig config;
      config.num_workers = 4;
      config.max_in_flight = 256;
      config.cache_bytes = 32u << 20;
      QueryServer server(served, config);
      server.SetReloadHandler(
          [path](const std::string&)
              -> Result<std::shared_ptr<ServedDataset>> {
            auto next = ServedDataset::Load(path);
            if (!next.ok()) return next.status();
            return std::make_shared<ServedDataset>(std::move(*next));
          });
      MDS_CHECK(server.Start().ok());

      PhaseResult steady = RunClosedLoop(server.port(), 4, per_client);
      PrintPhase(options, "server_swap_steady", steady);
      MDS_CHECK(steady.failed == 0);

      std::thread admin([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        auto client = QueryClient::Connect("127.0.0.1", server.port());
        MDS_CHECK(client.ok());
        QueryClient::Options slow;
        slow.deadline_ms = 60000;
        auto reply = client->Reload("", slow);
        MDS_CHECK(reply.ok());
        MDS_CHECK(reply->new_epoch == reply->old_epoch + 1);
      });
      PhaseResult swapping = RunClosedLoop(server.port(), 4, per_client);
      admin.join();
      PrintPhase(options, "server_swap_live", swapping);
      MDS_CHECK(swapping.failed == 0);
      MDS_CHECK(swapping.rejected == 0);  // the swap sheds nothing
      MDS_CHECK(server.Stats().dataset_epoch == 2);
      std::printf(
          "live swap p99: %llu us vs %llu us steady (zero failed requests)\n",
          (unsigned long long)swapping.latency.p99_us,
          (unsigned long long)steady.latency.p99_us);
      server.Shutdown();
    }
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace mds

int main(int argc, char** argv) {
  mds::Run(mds::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
