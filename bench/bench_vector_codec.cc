// E14 (§3.5): vector data type in the database. The paper found CLR UDTs
// with generic serialization too CPU-hungry and switched to a plain binary
// column decoded by unsafe pointer copies, which "only slows down table
// scan queries by 20% compared to queries using only native SQL data
// types". Reproduced as google-benchmark scan loops over stored tables:
// native float columns vs raw-blob vector column vs element-tagged (TLV)
// vector column.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "storage/table.h"
#include "storage/vector_codec.h"

namespace mds {
namespace {

constexpr size_t kDim = 5;
constexpr uint64_t kRows = 200000;

struct Fixture {
  MemPager pager;
  BufferPool pool{&pager, 1u << 16};
  std::unique_ptr<Table> native;
  std::unique_ptr<Table> raw_blob;
  std::unique_ptr<Table> tlv_blob;

  Fixture() {
    Rng rng(3);
    Schema native_schema({{"m0", ColumnType::kFloat32, 0},
                          {"m1", ColumnType::kFloat32, 0},
                          {"m2", ColumnType::kFloat32, 0},
                          {"m3", ColumnType::kFloat32, 0},
                          {"m4", ColumnType::kFloat32, 0}});
    Schema raw_schema({{"vec", ColumnType::kBytes,
                        static_cast<uint32_t>(RawVectorCodec::EncodedSize(kDim))}});
    Schema tlv_schema({{"vec", ColumnType::kBytes,
                        static_cast<uint32_t>(TlvVectorCodec::EncodedSize(kDim))}});
    native = std::make_unique<Table>(*Table::Create(&pool, native_schema));
    raw_blob = std::make_unique<Table>(*Table::Create(&pool, raw_schema));
    tlv_blob = std::make_unique<Table>(*Table::Create(&pool, tlv_schema));

    RowBuilder nrow(&native->schema());
    RowBuilder rrow(&raw_blob->schema());
    RowBuilder trow(&tlv_blob->schema());
    float v[kDim];
    std::vector<uint8_t> buf;
    for (uint64_t i = 0; i < kRows; ++i) {
      for (size_t j = 0; j < kDim; ++j) {
        v[j] = static_cast<float>(rng.NextGaussian());
        nrow.SetFloat32(j, v[j]);
      }
      MDS_CHECK(native->Append(nrow).ok());
      RawVectorCodec::Encode(v, kDim, &buf);
      rrow.SetBytes(0, buf.data(), buf.size());
      MDS_CHECK(raw_blob->Append(rrow).ok());
      TlvVectorCodec::Encode(v, kDim, &buf);
      trow.SetBytes(0, buf.data(), buf.size());
      MDS_CHECK(tlv_blob->Append(trow).ok());
    }
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

/// Scan summing all 5 magnitudes per row through native float columns.
void BM_ScanNativeColumns(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    double sum = 0.0;
    MDS_CHECK(f.native
                  ->Scan([&](uint64_t, RowRef ref) {
                    float v[kDim];
                    ref.GetFloat32Span(0, kDim, v);
                    for (size_t j = 0; j < kDim; ++j) sum += v[j];
                  })
                  .ok());
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ScanNativeColumns);

/// Scan through the raw binary vector column (the paper's unsafe-copy
/// design point).
void BM_ScanRawBlob(benchmark::State& state) {
  Fixture& f = GetFixture();
  const size_t width = RawVectorCodec::EncodedSize(kDim);
  for (auto _ : state) {
    double sum = 0.0;
    MDS_CHECK(f.raw_blob
                  ->Scan([&](uint64_t, RowRef ref) {
                    float v[kDim];
                    auto n = RawVectorCodec::DecodeInto(ref.GetBytes(0),
                                                        width, v, kDim);
                    MDS_CHECK(n.ok());
                    for (size_t j = 0; j < kDim; ++j) sum += v[j];
                  })
                  .ok());
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ScanRawBlob);

/// Scan through the element-tagged column (the UDT/BinaryFormatter analog).
void BM_ScanTlvBlob(benchmark::State& state) {
  Fixture& f = GetFixture();
  const size_t width = TlvVectorCodec::EncodedSize(kDim);
  for (auto _ : state) {
    double sum = 0.0;
    MDS_CHECK(f.tlv_blob
                  ->Scan([&](uint64_t, RowRef ref) {
                    auto v = TlvVectorCodec::Decode(ref.GetBytes(0), width);
                    MDS_CHECK(v.ok());
                    for (float x : *v) sum += x;
                  })
                  .ok());
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_ScanTlvBlob);

/// Pure codec micro-benchmarks (no storage).
void BM_CodecRawDecode(benchmark::State& state) {
  Rng rng(5);
  float v[kDim];
  for (size_t j = 0; j < kDim; ++j) v[j] = static_cast<float>(rng.NextGaussian());
  std::vector<uint8_t> buf;
  RawVectorCodec::Encode(v, kDim, &buf);
  float out[kDim];
  for (auto _ : state) {
    auto n = RawVectorCodec::DecodeInto(buf.data(), buf.size(), out, kDim);
    benchmark::DoNotOptimize(n);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_CodecRawDecode);

void BM_CodecTlvDecode(benchmark::State& state) {
  Rng rng(5);
  float v[kDim];
  for (size_t j = 0; j < kDim; ++j) v[j] = static_cast<float>(rng.NextGaussian());
  std::vector<uint8_t> buf;
  TlvVectorCodec::Encode(v, kDim, &buf);
  for (auto _ : state) {
    auto out = TlvVectorCodec::Decode(buf.data(), buf.size());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_CodecTlvDecode);

}  // namespace
}  // namespace mds

BENCHMARK_MAIN();
