// Thread-scaling of the parallel query machinery (DESIGN.md "Concurrency
// model"): intra-query ParallelRangeScanner speedup, inter-query
// ExecuteBatch throughput and the parallel kd-tree build, at 1/2/4/8
// workers over one shared lock-striped BufferPool. Correctness is asserted
// inline: every parallel execution must return the serial objid sequence,
// and (limit == 0) the identical pages_fetched count.

#include <cmath>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "core/access_path.h"
#include "core/kdtree.h"
#include "core/point_table.h"
#include "core/query_engine.h"
#include "sdss/catalog.h"
#include "storage/pager.h"

namespace mds {
namespace {

std::vector<Polyhedron> MakeQueryBatch(size_t count) {
  std::vector<Polyhedron> queries;
  queries.reserve(count);
  for (size_t q = 0; q < count; ++q) {
    double mags[kNumBands];
    StellarLocus(0.1 + 0.8 * static_cast<double>(q) / count, 0.0, mags);
    std::vector<double> center(mags, mags + kNumBands);
    const double radius = 0.2 * (1 << (q % 5));
    queries.push_back(Polyhedron::BallApproximation(center, radius, 24));
  }
  return queries;
}

void Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "parallel query scaling over the shared buffer pool",
      "parallel execution is an invisible optimization: identical results "
      "and page accounting, lower wall clock as workers are added");

  const unsigned hw = QueryThreads();
  std::printf("hardware threads (QueryThreads) = %u%s\n", hw,
              hw == 1 ? "  [single-core host: expect flat scaling]" : "");

  CatalogConfig config;
  config.num_objects = options.n != 0 ? options.n
                       : options.quick ? 200000
                                       : 2000000;
  Catalog cat = GenerateCatalog(config);
  const PointSet& points = cat.colors;

  // Parallel kd-tree build scaling (the tree is bit-identical per thread
  // count; the serial build is the baseline and the reference tree).
  std::printf("\n-- kd-tree build, N=%zu --\n", points.size());
  std::printf("%-8s %-10s %-9s\n", "threads", "build_ms", "speedup");
  KdTreeConfig serial_tree_config;
  serial_tree_config.build_threads = 1;
  WallTimer serial_build_timer;
  auto tree = KdTreeIndex::Build(&points, serial_tree_config);
  MDS_CHECK(tree.ok());
  const double serial_build_ms = serial_build_timer.Millis();
  std::printf("%-8u %-10.1f %-9.2f\n", 1u, serial_build_ms, 1.0);
  bench::EmitJson(options, "kd_build_t1", points.size(), serial_build_ms, 0);
  for (unsigned threads : {2u, 4u, 8u}) {
    KdTreeConfig tree_config;
    tree_config.build_threads = threads;
    WallTimer timer;
    auto parallel_tree = KdTreeIndex::Build(&points, tree_config);
    MDS_CHECK(parallel_tree.ok());
    const double ms = timer.Millis();
    MDS_CHECK(parallel_tree->clustered_order() == tree->clustered_order());
    std::printf("%-8u %-10.1f %-9.2f\n", threads, ms, serial_build_ms / ms);
    char name[32];
    std::snprintf(name, sizeof(name), "kd_build_t%u", threads);
    bench::EmitJson(options, name, points.size(), ms, 0);
  }

  MemPager pager;
  BufferPool pool(&pager, 1u << 18);
  auto table = MaterializePointTable(&pool, points, tree->clustered_order());
  MDS_CHECK(table.ok());
  PointTableBinding binding = BindPointTable(&*table, kNumBands);

  // Intra-query scaling: one wide polyhedron query (~10% selectivity) so
  // the scan half dominates; the serial RangeScanner is the baseline.
  std::vector<double> center(kNumBands);
  {
    double mags[kNumBands];
    StellarLocus(0.5, 0.0, mags);
    for (size_t j = 0; j < kNumBands; ++j) center[j] = mags[j];
  }
  const Polyhedron wide = Polyhedron::BallApproximation(center, 3.2, 24);

  KdTreePath warm(binding, *tree, wide);
  QueryStats serial_stats;
  WallTimer serial_timer;
  auto serial = ExecuteAccessPath(&warm, &serial_stats);
  MDS_CHECK(serial.ok());
  const double serial_ms = serial_timer.Millis();

  std::printf("\n-- intra-query: ParallelRangeScanner, %zu rows emitted --\n",
              serial->objids.size());
  std::printf("%-8s %-10s %-9s %-12s %-10s\n", "threads", "query_ms",
              "speedup", "pages_fetch", "pages_ok");
  std::printf("%-8s %-10.2f %-9.2f %-12llu %-10s\n", "serial", serial_ms, 1.0,
              (unsigned long long)serial_stats.pages_fetched, "baseline");
  bench::EmitJson(options, "intra_query_serial", points.size(), serial_ms,
                  serial_stats.pages_fetched);
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    KdTreePath path(binding, *tree, wide);
    QueryStats stats;
    WallTimer timer;
    auto result = ExecuteAccessPathParallel(&path, threads, &stats);
    MDS_CHECK(result.ok());
    const double ms = timer.Millis();
    MDS_CHECK(result->objids == serial->objids);
    // Acceptance bound: pages fetched within 1% of serial (exact equality
    // is the design contract at limit == 0; 1% is the allowed slack).
    const double page_drift =
        serial_stats.pages_fetched == 0
            ? 0.0
            : std::abs(static_cast<double>(stats.pages_fetched) -
                       static_cast<double>(serial_stats.pages_fetched)) /
                  static_cast<double>(serial_stats.pages_fetched);
    MDS_CHECK(page_drift <= 0.01);
    std::printf("%-8u %-10.2f %-9.2f %-12llu %-10s\n", threads, ms,
                serial_ms / ms, (unsigned long long)stats.pages_fetched,
                stats.pages_fetched == serial_stats.pages_fetched
                    ? "exact"
                    : "within-1%");
    char name[32];
    std::snprintf(name, sizeof(name), "intra_query_t%u", threads);
    bench::EmitJson(options, name, points.size(), ms, stats.pages_fetched);
  }

  // Inter-query scaling: a batch of mixed-selectivity queries; the serial
  // loop is the baseline, ExecuteBatch fans out over the shared pool.
  const size_t batch_size = options.quick ? 16 : 32;
  const auto queries = MakeQueryBatch(batch_size);

  std::vector<std::vector<int64_t>> expected;
  bench::LatencyRecorder per_query;
  WallTimer loop_timer;
  for (const Polyhedron& poly : queries) {
    KdTreePath path(binding, *tree, poly);
    WallTimer query_timer;
    auto result = ExecuteAccessPath(&path);
    per_query.RecordMillis(query_timer.Millis());
    MDS_CHECK(result.ok());
    expected.push_back(std::move(result->objids));
  }
  const double loop_ms = loop_timer.Millis();

  std::printf("\n-- inter-query: ExecuteBatch, %zu queries --\n", batch_size);
  bench::PrintLatency("per-query (serial)", per_query.Take());
  bench::EmitJsonLatency(options, "batch_query_latency", per_query.Take(),
                         1000.0 * static_cast<double>(batch_size) / loop_ms);
  std::printf("%-8s %-10s %-9s\n", "threads", "batch_ms", "speedup");
  std::printf("%-8s %-10.1f %-9.2f\n", "serial", loop_ms, 1.0);
  bench::EmitJson(options, "batch_serial", batch_size, loop_ms, 0);
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::unique_ptr<AccessPath>> paths;
    for (const Polyhedron& poly : queries) {
      paths.push_back(std::make_unique<KdTreePath>(binding, *tree, poly));
    }
    QueryEngine::BatchOptions batch_options;
    batch_options.num_threads = threads;
    WallTimer timer;
    auto results = QueryEngine::ExecuteBatch(std::move(paths), batch_options);
    const double ms = timer.Millis();
    MDS_CHECK(results.size() == queries.size());
    for (size_t q = 0; q < results.size(); ++q) {
      MDS_CHECK(results[q].ok());
      MDS_CHECK(results[q]->objids == expected[q]);
    }
    std::printf("%-8u %-10.1f %-9.2f\n", threads, ms, loop_ms / ms);
    char name[32];
    std::snprintf(name, sizeof(name), "batch_t%u", threads);
    bench::EmitJson(options, name, batch_size, ms, 0);
  }
}

}  // namespace
}  // namespace mds

int main(int argc, char** argv) {
  mds::Run(mds::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
