// E15 (§5, Figures 14-16): adaptive visualization. A scripted camera path
// zooms into the dense region of the 3-PC projection and back out; per
// step we report points delivered (must stay >= n), index fetches vs cache
// hits (zoom-out must be served entirely from cache), kd-boxes in view
// (>= 500), and the adaptive Delaunay level in use.

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/kdtree.h"
#include "core/layered_grid.h"
#include "core/voronoi_index.h"
#include "linalg/pca.h"
#include "sdss/catalog.h"
#include "viz/app.h"
#include "viz/producers.h"
#include "viz/renderer.h"

namespace mds {
namespace {

PointSet ProjectTo3D(const Catalog& cat) {
  const size_t fit_sample = std::min<size_t>(cat.size(), 50000);
  Matrix data(fit_sample, kNumBands);
  for (size_t i = 0; i < fit_sample; ++i) {
    const float* p = cat.colors.point(i);
    for (size_t j = 0; j < kNumBands; ++j) data(i, j) = p[j];
  }
  auto pca = Pca::Fit(data, 3);
  MDS_CHECK(pca.ok());
  PointSet projected(3, 0);
  projected.Reserve(cat.size());
  double row[kNumBands], out[3];
  for (size_t i = 0; i < cat.size(); ++i) {
    const float* p = cat.colors.point(i);
    for (size_t j = 0; j < kNumBands; ++j) row[j] = p[j];
    pca->TransformPoint(row, 3, out);
    projected.Append(out);
  }
  return projected;
}

/// Builds the 3-level adaptive Delaunay/Voronoi structure of §5.2 (1K /
/// 10K / 100K samples, scaled by `scale`).
std::vector<AdaptiveGraphLevel> BuildAdaptiveLevels(const PointSet& points,
                                                    double scale) {
  std::vector<AdaptiveGraphLevel> levels;
  Rng volume_rng(13);
  for (uint32_t nseed :
       {static_cast<uint32_t>(1000 * scale), static_cast<uint32_t>(10000 * scale),
        static_cast<uint32_t>(100000 * scale)}) {
    VoronoiIndexConfig vc;
    vc.num_seeds = std::max<uint32_t>(nseed, 16);
    auto index = VoronoiIndex::Build(&points, vc);
    MDS_CHECK(index.ok());
    AdaptiveGraphLevel level;
    level.seeds = PointSet(3, 0);
    for (uint32_t s = 0; s < index->num_seeds(); ++s) {
      level.seeds.Append(index->seeds().point(s));
    }
    const auto& graph = index->seed_graph();
    for (uint32_t u = 0; u < graph.size(); ++u) {
      for (uint32_t v : graph[u]) {
        if (u < v) level.edges.emplace_back(u, v);
      }
    }
    std::vector<double> volumes = index->EstimateCellVolumes(
        std::min<uint64_t>(200000, points.size()), volume_rng);
    level.seed_values.assign(volumes.begin(), volumes.end());
    levels.push_back(std::move(level));
  }
  return levels;
}

void Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "E15 / §5 Figures 14-16: adaptive visualization pipeline",
      "LOD keeps >= n points (100K) and >= 500 kd-boxes in view; zoom-out "
      "served from the plugin cache with zero database fetches; 3-level "
      "adaptive Delaunay");

  CatalogConfig config;
  config.num_objects = options.n != 0 ? options.n
                       : options.quick ? 300000
                                       : 2000000;
  Catalog cat = GenerateCatalog(config);
  PointSet points = ProjectTo3D(cat);

  WallTimer build_timer;
  auto grid = LayeredGridIndex::Build(&points);
  auto tree = KdTreeIndex::Build(&points);
  MDS_CHECK(grid.ok());
  MDS_CHECK(tree.ok());
  auto levels = BuildAdaptiveLevels(points, options.quick ? 0.02 : 0.1);
  std::printf("N=%zu; indexes + 3 adaptive levels built in %.1fs\n",
              points.size(), build_timer.Seconds());

  const uint64_t detail = options.quick ? 20000 : 100000;  // the paper's n
  VisualizationApp app;
  app.AddPipeline(std::make_unique<PointCloudProducer>(&*grid, false));
  app.AddPipeline(std::make_unique<KdBoxProducer>(&*tree, 500, false));
  app.AddPipeline(std::make_unique<DelaunayProducer>(levels, 500, false));
  auto renderer = std::make_unique<PpmRenderer>(256, 256);
  PpmRenderer* renderer_ptr = renderer.get();
  app.SetConsumer(std::move(renderer));
  MDS_CHECK(app.Start().ok());

  auto* cloud = dynamic_cast<PointCloudProducer*>(app.producer(0));
  auto* boxes = dynamic_cast<KdBoxProducer*>(app.producer(1));
  auto* delaunay = dynamic_cast<DelaunayProducer*>(app.producer(2));

  Camera camera = cloud->SuggestInitial();
  camera.detail = detail;

  // Zoom path: 6 steps in toward the dense center, then back out.
  std::vector<Camera> path = {camera};
  for (int i = 0; i < 6; ++i) path.push_back(ZoomCamera(path.back(), 0.55));
  for (int i = 5; i >= 0; --i) path.push_back(path[i]);

  std::printf("%-6s %-10s %-9s %-9s %-8s %-8s %-9s %-8s\n", "step",
              "view_frac", "points", "boxes", "fetches", "hits", "dl_level",
              "frame_ms");
  double full_volume = path[0].view.Volume();
  for (size_t step = 0; step < path.size(); ++step) {
    WallTimer frame_timer;
    app.SetCamera(path[step]);
    auto report = app.DrainFrames();
    double ms = frame_timer.Millis();
    size_t pts = 0, bx = 0;
    // Pull the last geometry via the producers directly for reporting.
    auto pg = cloud->GetOutput();
    auto bg = boxes->GetOutput();
    if (pg != nullptr) pts = pg->points.size();
    if (bg != nullptr) bx = bg->boxes.size();
    std::printf("%-6zu %-10.3g %-9zu %-9zu %-8llu %-8llu %-9u %-8.1f\n", step,
                path[step].view.Volume() / full_volume, pts, bx,
                (unsigned long long)cloud->db_fetches(),
                (unsigned long long)cloud->cache_hits(),
                delaunay->last_level(), ms);
    (void)report;
  }
  std::printf("fetch counter frozen during the zoom-out half => 'the cache "
              "reduces time delay to zero' (§5.1)\n");
  Status st = renderer_ptr->WritePpm("viz_final_frame.ppm");
  std::printf("final frame: %s (coverage %.1f%%)\n",
              st.ok() ? "viz_final_frame.ppm" : st.ToString().c_str(),
              100.0 * renderer_ptr->CoverageFraction());
  app.Stop();
}

}  // namespace
}  // namespace mds

int main(int argc, char** argv) {
  mds::Run(mds::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
