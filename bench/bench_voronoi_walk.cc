// E8 (§3.4): point location by directed walk on the Delaunay graph takes
// O(sqrt(Nseed)) steps on average. Sweep Nseed, measure mean walk steps
// from a fixed start, and fit the growth exponent.

#include <cmath>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/voronoi_index.h"
#include "sdss/catalog.h"

namespace mds {
namespace {

void Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "E8 / §3.4: directed walk point location",
      "finding the containing Voronoi cell via a directed walk on the "
      "Delaunay graph takes O(sqrt(Nseed)) steps on average");

  CatalogConfig config;
  config.num_objects = options.quick ? 100000 : 400000;
  config.seed = 3;
  Catalog cat = GenerateCatalog(config);

  // 3-D projection (g, r, i) keeps exact Delaunay affordable across the
  // whole Nseed sweep.
  PointSet points(3, 0);
  points.Reserve(cat.size());
  for (size_t i = 0; i < cat.size(); ++i) {
    const float* p = cat.colors.point(i);
    float q[3] = {p[1], p[2], p[3]};
    points.Append(q);
  }

  std::vector<uint32_t> seed_counts = options.quick
                                          ? std::vector<uint32_t>{256, 1024}
                                          : std::vector<uint32_t>{256, 1024,
                                                                  4096, 16384};
  Rng rng(17);
  const int queries = options.quick ? 200 : 1000;

  std::printf("%-8s %-10s %-12s %-12s %-10s %-10s\n", "Nseed", "steps(avg)",
              "sqrt(Nseed)", "steps/sqrt", "exact%%", "us/locate");
  std::vector<double> log_n, log_steps;
  for (uint32_t nseed : seed_counts) {
    VoronoiIndexConfig vc;
    vc.num_seeds = nseed;
    vc.graph_mode = VoronoiGraphMode::kExactDelaunay;
    auto index = VoronoiIndex::Build(&points, vc);
    if (!index.ok()) {
      std::printf("%-8u build failed: %s\n", nseed,
                  index.status().ToString().c_str());
      continue;
    }
    Box bounds = Box::Bounding(points);
    WalkStats stats;
    uint64_t exact = 0;
    WallTimer timer;
    for (int t = 0; t < queries; ++t) {
      double q[3];
      if (t % 2 == 0) {
        uint64_t anchor = rng.NextBounded(points.size());
        for (int j = 0; j < 3; ++j) {
          q[j] = points.coord(anchor, j) + 0.01 * rng.NextGaussian();
        }
      } else {
        for (int j = 0; j < 3; ++j) {
          q[j] = rng.NextUniform(bounds.lo(j), bounds.hi(j));
        }
      }
      uint32_t start =
          static_cast<uint32_t>(rng.NextBounded(index->num_seeds()));
      uint32_t walked = index->WalkLocate(q, start, &stats);
      double dw = SquaredDistance(q, index->seeds().point(walked), 3);
      double de =
          SquaredDistance(q, index->seeds().point(index->NearestSeed(q)), 3);
      if (dw == de) ++exact;
    }
    double us = timer.Micros() / queries;
    double steps = static_cast<double>(stats.steps) / queries;
    double root = std::sqrt(static_cast<double>(index->num_seeds()));
    std::printf("%-8u %-10.1f %-12.1f %-12.3f %-10.1f %-10.1f\n",
                index->num_seeds(), steps, root, steps / root,
                100.0 * exact / queries, us);
    log_n.push_back(std::log(static_cast<double>(index->num_seeds())));
    log_steps.push_back(std::log(std::max(steps, 1e-9)));
  }
  if (log_n.size() >= 2) {
    // Least-squares slope of log(steps) vs log(Nseed).
    double mx = 0, my = 0;
    for (size_t i = 0; i < log_n.size(); ++i) {
      mx += log_n[i];
      my += log_steps[i];
    }
    mx /= log_n.size();
    my /= log_n.size();
    double num = 0, den = 0;
    for (size_t i = 0; i < log_n.size(); ++i) {
      num += (log_n[i] - mx) * (log_steps[i] - my);
      den += (log_n[i] - mx) * (log_n[i] - mx);
    }
    std::printf("fitted growth exponent: steps ~ Nseed^%.2f "
                "(paper: ~0.5)\n", num / den);
  }
}

}  // namespace
}  // namespace mds

int main(int argc, char** argv) {
  mds::Run(mds::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
