// E7 (§3.4): Voronoi cell "roundness". The paper reports that 5-D Voronoi
// cells have about a thousand vertices (vs 32 corners for 5-D
// hyper-rectangles) and ~50 neighboring cells (vs 10 faces), confirming
// cells grow sphere-like with dimension. Sweep dimension and seed count
// over the exact Delaunay tessellation.

#include <cmath>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "hull/delaunay.h"
#include "hull/voronoi.h"
#include "sdss/catalog.h"

namespace mds {
namespace {

void Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "E7 / §3.4: Voronoi cell shape vs hyper-rectangles",
      "5-D cells: ~1000 vertices vs 32 box corners; ~50 neighbors vs 10 box "
      "faces (cells get sphere-like with dimension)");

  std::printf("%-5s %-7s %-10s %-12s %-12s %-10s %-10s %-9s\n", "dim",
              "Nseed", "simplices", "vertices/c", "box_corners", "neigh/c",
              "box_faces", "build_s");

  Rng data_rng(5);
  for (size_t d = 2; d <= 5; ++d) {
    // Seed counts shrink with dimension: exact 5-D tessellation is the
    // expensive regime the paper also hit (they used 10K seeds; we report
    // per-cell statistics, which stabilize at much smaller Nseed).
    std::vector<uint32_t> seed_counts;
    if (d <= 3) {
      seed_counts = {500, 2000};
    } else if (d == 4) {
      seed_counts = {500, options.quick ? 500u : 1500u};
    } else {
      // 5-D full mode: 2000 seeds reproduce the paper's ~50 neighbors per
      // cell in ~20s; the vertex count keeps growing toward the paper's
      // ~1000 at its Nseed = 10K (577 at 4000 seeds, measured offline).
      seed_counts = {options.quick ? 300u : 2000u};
    }
    for (uint32_t nseed : seed_counts) {
      // Seeds sampled from a synthetic color-space-like mixture projected
      // to d dims.
      CatalogConfig config;
      config.num_objects = nseed;
      config.seed = 11 + d;
      Catalog cat = GenerateCatalog(config);
      std::vector<double> seeds(nseed * d);
      for (uint32_t i = 0; i < nseed; ++i) {
        for (size_t j = 0; j < d; ++j) {
          seeds[i * d + j] = cat.colors.coord(i, j);
        }
      }
      WallTimer timer;
      auto tri = DelaunayTriangulation::Compute(seeds, d);
      if (!tri.ok()) {
        std::printf("%-5zu %-7u Delaunay failed: %s\n", d, nseed,
                    tri.status().ToString().c_str());
        continue;
      }
      double secs = timer.Seconds();
      VoronoiDiagram diagram(&*tri, &seeds);
      double vertex_sum = 0.0, neighbor_sum = 0.0;
      size_t bounded = 0;
      for (uint32_t c = 0; c < nseed; ++c) {
        VoronoiCellStats stats = diagram.CellStats(c);
        if (!stats.bounded) continue;
        vertex_sum += stats.num_vertices;
        neighbor_sum += stats.num_neighbors;
        ++bounded;
      }
      if (bounded == 0) continue;
      std::printf("%-5zu %-7u %-10zu %-12.0f %-12.0f %-10.1f %-10zu %-9.2f\n",
                  d, nseed, tri->simplices().size(), vertex_sum / bounded,
                  std::pow(2.0, d), neighbor_sum / bounded, 2 * d, secs);
    }
  }
  std::printf(
      "vertices/cell and neighbors/cell should exceed the box constants by "
      "growing factors as d rises — the paper's roundness argument.\n");
}

}  // namespace
}  // namespace mds

int main(int argc, char** argv) {
  mds::Run(mds::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
