// E17 (extension; §3.2 ref [8] and §3.4): outlier detection through the
// spatial indexes. The paper motivates both a kd-tree route ("kd-trees can
// be used efficiently for outlier detection") and a Voronoi route ("the
// volume of the cells ... can be used for finding clusters and outliers").
// This bench scores the synthetic catalog's measurement artifacts with
// both detectors and reports precision at the contamination level plus
// recall in the top 5% — the design-choice ablation called out in
// DESIGN.md.

#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/outlier.h"
#include "common/rng.h"
#include "sdss/catalog.h"

namespace mds {
namespace {

struct Scoreboard {
  double precision = 0.0;
  double recall_top5 = 0.0;
};

Scoreboard Evaluate(const std::vector<double>& scores,
                    const std::vector<char>& labels, double contamination) {
  Scoreboard sb;
  sb.precision = OutlierPrecisionAtTop(scores, labels, contamination);
  std::vector<double> sorted = scores;
  std::sort(sorted.begin(), sorted.end());
  double threshold = sorted[sorted.size() * 95 / 100];
  size_t recalled = 0, planted = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (!labels[i]) continue;
    ++planted;
    if (scores[i] >= threshold) ++recalled;
  }
  sb.recall_top5 =
      planted == 0 ? 0.0 : static_cast<double>(recalled) / planted;
  return sb;
}

void Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "E17 (extension) / §3.2+§3.4: index-based outlier detection",
      "kd-tree k-NN distances and Voronoi cell volumes both expose the "
      "catalog's measurement artifacts");

  CatalogConfig config;
  config.num_objects = options.n != 0 ? options.n
                       : options.quick ? 50000
                                       : 300000;
  config.seed = 13;
  Catalog cat = GenerateCatalog(config);
  std::vector<char> labels;
  size_t planted = 0;
  for (SpectralClass c : cat.classes) {
    bool out = c == SpectralClass::kOutlier;
    labels.push_back(out);
    planted += out;
  }
  double contamination = static_cast<double>(planted) / cat.size();
  std::printf("N=%zu with %zu labeled artifacts (%.2f%%)\n", cat.size(),
              planted, 100.0 * contamination);

  std::printf("%-22s %-12s %-12s %-10s\n", "detector", "precision@c",
              "recall@5%", "secs");
  // kd-tree k-NN distance detector, k sweep.
  for (size_t k : {4u, 8u, 32u}) {
    WallTimer timer;
    auto detector = KnnOutlierDetector::Build(&cat.colors, k);
    MDS_CHECK(detector.ok());
    std::vector<double> scores = detector->ScoreAll();
    Scoreboard sb = Evaluate(scores, labels, contamination);
    std::printf("knn(k=%-3zu)            %-12.2f %-12.2f %-10.1f\n", k,
                sb.precision, sb.recall_top5, timer.Seconds());
  }
  // Voronoi volume detector, seed sweep.
  for (uint32_t nseed : {1024u, 4096u}) {
    WallTimer timer;
    VoronoiIndexConfig vc;
    vc.num_seeds = nseed;
    auto index = VoronoiIndex::Build(&cat.colors, vc);
    MDS_CHECK(index.ok());
    Rng rng(7);
    auto detector = VoronoiOutlierDetector::Build(
        &*index, options.quick ? 200000 : 1000000, rng);
    MDS_CHECK(detector.ok());
    std::vector<double> scores = detector->ScoreAll();
    Scoreboard sb = Evaluate(scores, labels, contamination);
    std::printf("voronoi(seeds=%-6u) %-12.2f %-12.2f %-10.1f\n", nseed,
                sb.precision, sb.recall_top5, timer.Seconds());
  }
  std::printf(
      "half the artifacts are uniform-scatter points that can land inside "
      "dense regions, bounding precision below 1; both detectors must far "
      "exceed the %.3f chance level.\n",
      contamination);
}

}  // namespace
}  // namespace mds

int main(int argc, char** argv) {
  mds::Run(mds::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
