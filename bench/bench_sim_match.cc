// E13 (§4.2): comparing simulations with observations. The paper matches
// the observed catalog against 100K Bruzual-Charlot synthetic spectra and
// reads the physical parameters off the closest simulated spectrum
// ("reverse engineering" galaxies). Here: a simulated grid over (class,
// redshift, age, metallicity, dust), noisy "observed" spectra, and the
// parameter-recovery error of nearest-match lookups.

#include <cmath>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "spectra/similarity.h"
#include "spectra/spectrum_generator.h"

namespace mds {
namespace {

void Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "E13 / §4.2: simulation-vs-observation matching",
      "nearest simulated spectrum recovers the generating physical "
      "parameters (age, composition, redshift)");

  SpectrumGrid grid;
  grid.num_samples = options.quick ? 600 : 1500;
  SpectrumGenerator gen(grid);
  Rng rng(23);

  const size_t per_class = options.quick ? 500 : 5000;
  std::vector<std::vector<float>> simulated;
  std::vector<SpectrumParams> params;
  WallTimer sim_timer;
  for (size_t c = 0; c < kNumSpectrumClasses; ++c) {
    for (size_t i = 0; i < per_class; ++i) {
      SpectrumParams p = gen.RandomParams(static_cast<SpectrumClass>(c), rng);
      simulated.push_back(gen.Generate(p));
      params.push_back(p);
    }
  }
  std::printf("simulated grid: %zu spectra (%.1fs)\n", simulated.size(),
              sim_timer.Seconds());

  std::vector<std::vector<float>> training;
  for (size_t i = 0; i < simulated.size(); i += 10) {
    training.push_back(simulated[i]);
  }
  auto space = SpectralFeatureSpace::Fit(training, 5);
  MDS_CHECK(space.ok());
  WallTimer build_timer;
  auto search = SpectralSimilaritySearch::Build(&*space, simulated);
  MDS_CHECK(search.ok());
  std::printf("index build over simulation set: %.1fs\n",
              build_timer.Seconds());

  const int queries = options.quick ? 100 : 400;
  std::printf("%-12s %-10s %-10s %-10s %-10s\n", "noise", "class_acc",
              "|dz|", "|dage|", "|dmetal|");
  for (double noise : {0.0, 0.02, 0.05}) {
    uint64_t class_hits = 0;
    double dz = 0.0, dage = 0.0, dmetal = 0.0;
    for (int t = 0; t < queries; ++t) {
      SpectrumParams truth = gen.RandomParams(
          static_cast<SpectrumClass>(t % kNumSpectrumClasses), rng);
      std::vector<float> observed = gen.GenerateNoisy(truth, noise, rng);
      auto hits = search->FindSimilar(observed, 1);
      const SpectrumParams& match = params[hits[0].id];
      if (match.cls == truth.cls) ++class_hits;
      dz += std::abs(match.redshift - truth.redshift);
      dage += std::abs(match.age - truth.age);
      dmetal += std::abs(match.metallicity - truth.metallicity);
    }
    std::printf("%-12.2f %-10.2f %-10.4f %-10.3f %-10.3f\n", noise,
                static_cast<double>(class_hits) / queries, dz / queries,
                dage / queries, dmetal / queries);
  }
  std::printf(
      "|dz| near the grid spacing means the match recovers redshift to the "
      "resolution of the simulation library, as in the paper's workflow.\n");
}

}  // namespace
}  // namespace mds

int main(int argc, char** argv) {
  mds::Run(mds::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
