file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_match.dir/bench_sim_match.cc.o"
  "CMakeFiles/bench_sim_match.dir/bench_sim_match.cc.o.d"
  "bench_sim_match"
  "bench_sim_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
