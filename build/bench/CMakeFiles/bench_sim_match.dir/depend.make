# Empty dependencies file for bench_sim_match.
# This may be replaced when dependencies are built.
