# Empty dependencies file for bench_voronoi_walk.
# This may be replaced when dependencies are built.
