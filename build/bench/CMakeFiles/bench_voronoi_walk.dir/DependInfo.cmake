
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_voronoi_walk.cc" "bench/CMakeFiles/bench_voronoi_walk.dir/bench_voronoi_walk.cc.o" "gcc" "bench/CMakeFiles/bench_voronoi_walk.dir/bench_voronoi_walk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/mds_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mds_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mds_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/hull/CMakeFiles/mds_hull.dir/DependInfo.cmake"
  "/root/repo/build/src/sdss/CMakeFiles/mds_sdss.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mds_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/photoz/CMakeFiles/mds_photoz.dir/DependInfo.cmake"
  "/root/repo/build/src/spectra/CMakeFiles/mds_spectra.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/mds_viz.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
