file(REMOVE_RECURSE
  "CMakeFiles/bench_voronoi_walk.dir/bench_voronoi_walk.cc.o"
  "CMakeFiles/bench_voronoi_walk.dir/bench_voronoi_walk.cc.o.d"
  "bench_voronoi_walk"
  "bench_voronoi_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_voronoi_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
