file(REMOVE_RECURSE
  "CMakeFiles/bench_tablesample.dir/bench_tablesample.cc.o"
  "CMakeFiles/bench_tablesample.dir/bench_tablesample.cc.o.d"
  "bench_tablesample"
  "bench_tablesample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tablesample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
