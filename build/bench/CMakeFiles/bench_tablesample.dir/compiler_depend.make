# Empty compiler generated dependencies file for bench_tablesample.
# This may be replaced when dependencies are built.
