file(REMOVE_RECURSE
  "CMakeFiles/bench_bst_classify.dir/bench_bst_classify.cc.o"
  "CMakeFiles/bench_bst_classify.dir/bench_bst_classify.cc.o.d"
  "bench_bst_classify"
  "bench_bst_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bst_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
