# Empty compiler generated dependencies file for bench_bst_classify.
# This may be replaced when dependencies are built.
