file(REMOVE_RECURSE
  "CMakeFiles/bench_voronoi_query.dir/bench_voronoi_query.cc.o"
  "CMakeFiles/bench_voronoi_query.dir/bench_voronoi_query.cc.o.d"
  "bench_voronoi_query"
  "bench_voronoi_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_voronoi_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
