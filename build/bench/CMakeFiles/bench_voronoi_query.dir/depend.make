# Empty dependencies file for bench_voronoi_query.
# This may be replaced when dependencies are built.
