file(REMOVE_RECURSE
  "CMakeFiles/bench_catalog.dir/bench_catalog.cc.o"
  "CMakeFiles/bench_catalog.dir/bench_catalog.cc.o.d"
  "bench_catalog"
  "bench_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
