# Empty compiler generated dependencies file for bench_catalog.
# This may be replaced when dependencies are built.
