file(REMOVE_RECURSE
  "CMakeFiles/bench_photoz.dir/bench_photoz.cc.o"
  "CMakeFiles/bench_photoz.dir/bench_photoz.cc.o.d"
  "bench_photoz"
  "bench_photoz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_photoz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
