# Empty dependencies file for bench_photoz.
# This may be replaced when dependencies are built.
