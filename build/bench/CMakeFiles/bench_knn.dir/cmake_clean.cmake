file(REMOVE_RECURSE
  "CMakeFiles/bench_knn.dir/bench_knn.cc.o"
  "CMakeFiles/bench_knn.dir/bench_knn.cc.o.d"
  "bench_knn"
  "bench_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
