# Empty dependencies file for bench_knn.
# This may be replaced when dependencies are built.
