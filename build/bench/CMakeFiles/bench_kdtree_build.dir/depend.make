# Empty dependencies file for bench_kdtree_build.
# This may be replaced when dependencies are built.
