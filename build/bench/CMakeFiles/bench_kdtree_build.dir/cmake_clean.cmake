file(REMOVE_RECURSE
  "CMakeFiles/bench_kdtree_build.dir/bench_kdtree_build.cc.o"
  "CMakeFiles/bench_kdtree_build.dir/bench_kdtree_build.cc.o.d"
  "bench_kdtree_build"
  "bench_kdtree_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kdtree_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
