# Empty compiler generated dependencies file for bench_kdtree_query.
# This may be replaced when dependencies are built.
