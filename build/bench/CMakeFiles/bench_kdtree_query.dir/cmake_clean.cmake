file(REMOVE_RECURSE
  "CMakeFiles/bench_kdtree_query.dir/bench_kdtree_query.cc.o"
  "CMakeFiles/bench_kdtree_query.dir/bench_kdtree_query.cc.o.d"
  "bench_kdtree_query"
  "bench_kdtree_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kdtree_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
