# Empty dependencies file for bench_outlier.
# This may be replaced when dependencies are built.
