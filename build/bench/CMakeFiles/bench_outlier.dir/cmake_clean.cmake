file(REMOVE_RECURSE
  "CMakeFiles/bench_outlier.dir/bench_outlier.cc.o"
  "CMakeFiles/bench_outlier.dir/bench_outlier.cc.o.d"
  "bench_outlier"
  "bench_outlier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_outlier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
