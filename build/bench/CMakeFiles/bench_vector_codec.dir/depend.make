# Empty dependencies file for bench_vector_codec.
# This may be replaced when dependencies are built.
