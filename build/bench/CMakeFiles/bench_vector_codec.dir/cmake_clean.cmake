file(REMOVE_RECURSE
  "CMakeFiles/bench_vector_codec.dir/bench_vector_codec.cc.o"
  "CMakeFiles/bench_vector_codec.dir/bench_vector_codec.cc.o.d"
  "bench_vector_codec"
  "bench_vector_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vector_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
