file(REMOVE_RECURSE
  "CMakeFiles/bench_viz_adaptive.dir/bench_viz_adaptive.cc.o"
  "CMakeFiles/bench_viz_adaptive.dir/bench_viz_adaptive.cc.o.d"
  "bench_viz_adaptive"
  "bench_viz_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_viz_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
