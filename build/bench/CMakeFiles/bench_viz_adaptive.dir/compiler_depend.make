# Empty compiler generated dependencies file for bench_viz_adaptive.
# This may be replaced when dependencies are built.
