file(REMOVE_RECURSE
  "CMakeFiles/bench_layered_grid.dir/bench_layered_grid.cc.o"
  "CMakeFiles/bench_layered_grid.dir/bench_layered_grid.cc.o.d"
  "bench_layered_grid"
  "bench_layered_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_layered_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
