# Empty compiler generated dependencies file for bench_layered_grid.
# This may be replaced when dependencies are built.
