# Empty dependencies file for bench_voronoi_cells.
# This may be replaced when dependencies are built.
