file(REMOVE_RECURSE
  "CMakeFiles/bench_voronoi_cells.dir/bench_voronoi_cells.cc.o"
  "CMakeFiles/bench_voronoi_cells.dir/bench_voronoi_cells.cc.o.d"
  "bench_voronoi_cells"
  "bench_voronoi_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_voronoi_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
