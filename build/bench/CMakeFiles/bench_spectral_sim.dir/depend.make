# Empty dependencies file for bench_spectral_sim.
# This may be replaced when dependencies are built.
