file(REMOVE_RECURSE
  "CMakeFiles/bench_spectral_sim.dir/bench_spectral_sim.cc.o"
  "CMakeFiles/bench_spectral_sim.dir/bench_spectral_sim.cc.o.d"
  "bench_spectral_sim"
  "bench_spectral_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spectral_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
