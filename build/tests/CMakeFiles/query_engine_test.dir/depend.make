# Empty dependencies file for query_engine_test.
# This may be replaced when dependencies are built.
