file(REMOVE_RECURSE
  "CMakeFiles/query_engine_test.dir/query_engine_test.cc.o"
  "CMakeFiles/query_engine_test.dir/query_engine_test.cc.o.d"
  "query_engine_test"
  "query_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
