file(REMOVE_RECURSE
  "CMakeFiles/outlier_test.dir/outlier_test.cc.o"
  "CMakeFiles/outlier_test.dir/outlier_test.cc.o.d"
  "outlier_test"
  "outlier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outlier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
