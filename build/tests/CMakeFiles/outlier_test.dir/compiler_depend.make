# Empty compiler generated dependencies file for outlier_test.
# This may be replaced when dependencies are built.
