# Empty dependencies file for photoz_test.
# This may be replaced when dependencies are built.
