file(REMOVE_RECURSE
  "CMakeFiles/photoz_test.dir/photoz_test.cc.o"
  "CMakeFiles/photoz_test.dir/photoz_test.cc.o.d"
  "photoz_test"
  "photoz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photoz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
