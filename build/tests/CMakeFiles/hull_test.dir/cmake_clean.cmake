file(REMOVE_RECURSE
  "CMakeFiles/hull_test.dir/hull_test.cc.o"
  "CMakeFiles/hull_test.dir/hull_test.cc.o.d"
  "hull_test"
  "hull_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hull_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
