# Empty dependencies file for sdss_test.
# This may be replaced when dependencies are built.
