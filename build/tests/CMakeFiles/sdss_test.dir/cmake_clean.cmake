file(REMOVE_RECURSE
  "CMakeFiles/sdss_test.dir/sdss_test.cc.o"
  "CMakeFiles/sdss_test.dir/sdss_test.cc.o.d"
  "sdss_test"
  "sdss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
