file(REMOVE_RECURSE
  "CMakeFiles/knn_test.dir/knn_test.cc.o"
  "CMakeFiles/knn_test.dir/knn_test.cc.o.d"
  "knn_test"
  "knn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
