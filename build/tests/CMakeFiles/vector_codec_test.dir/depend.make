# Empty dependencies file for vector_codec_test.
# This may be replaced when dependencies are built.
