file(REMOVE_RECURSE
  "CMakeFiles/vector_codec_test.dir/vector_codec_test.cc.o"
  "CMakeFiles/vector_codec_test.dir/vector_codec_test.cc.o.d"
  "vector_codec_test"
  "vector_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
