# Empty compiler generated dependencies file for layered_grid_test.
# This may be replaced when dependencies are built.
