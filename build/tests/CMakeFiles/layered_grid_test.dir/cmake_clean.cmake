file(REMOVE_RECURSE
  "CMakeFiles/layered_grid_test.dir/layered_grid_test.cc.o"
  "CMakeFiles/layered_grid_test.dir/layered_grid_test.cc.o.d"
  "layered_grid_test"
  "layered_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layered_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
