# Empty dependencies file for spectra_test.
# This may be replaced when dependencies are built.
