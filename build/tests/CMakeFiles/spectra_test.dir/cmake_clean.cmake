file(REMOVE_RECURSE
  "CMakeFiles/spectra_test.dir/spectra_test.cc.o"
  "CMakeFiles/spectra_test.dir/spectra_test.cc.o.d"
  "spectra_test"
  "spectra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
