# Empty compiler generated dependencies file for viz_test.
# This may be replaced when dependencies are built.
