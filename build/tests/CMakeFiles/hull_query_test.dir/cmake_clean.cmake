file(REMOVE_RECURSE
  "CMakeFiles/hull_query_test.dir/hull_query_test.cc.o"
  "CMakeFiles/hull_query_test.dir/hull_query_test.cc.o.d"
  "hull_query_test"
  "hull_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hull_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
