# Empty dependencies file for hull_query_test.
# This may be replaced when dependencies are built.
