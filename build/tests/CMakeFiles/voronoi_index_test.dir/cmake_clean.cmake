file(REMOVE_RECURSE
  "CMakeFiles/voronoi_index_test.dir/voronoi_index_test.cc.o"
  "CMakeFiles/voronoi_index_test.dir/voronoi_index_test.cc.o.d"
  "voronoi_index_test"
  "voronoi_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voronoi_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
