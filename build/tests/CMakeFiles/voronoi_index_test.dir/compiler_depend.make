# Empty compiler generated dependencies file for voronoi_index_test.
# This may be replaced when dependencies are built.
