# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for voronoi_index_test.
