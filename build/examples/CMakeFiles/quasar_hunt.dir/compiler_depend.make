# Empty compiler generated dependencies file for quasar_hunt.
# This may be replaced when dependencies are built.
