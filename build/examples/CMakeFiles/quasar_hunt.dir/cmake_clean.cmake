file(REMOVE_RECURSE
  "CMakeFiles/quasar_hunt.dir/quasar_hunt.cpp.o"
  "CMakeFiles/quasar_hunt.dir/quasar_hunt.cpp.o.d"
  "quasar_hunt"
  "quasar_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quasar_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
