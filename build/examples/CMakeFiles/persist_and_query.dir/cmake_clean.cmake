file(REMOVE_RECURSE
  "CMakeFiles/persist_and_query.dir/persist_and_query.cpp.o"
  "CMakeFiles/persist_and_query.dir/persist_and_query.cpp.o.d"
  "persist_and_query"
  "persist_and_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persist_and_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
