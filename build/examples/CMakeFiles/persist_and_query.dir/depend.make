# Empty dependencies file for persist_and_query.
# This may be replaced when dependencies are built.
