file(REMOVE_RECURSE
  "CMakeFiles/spectrum_browser.dir/spectrum_browser.cpp.o"
  "CMakeFiles/spectrum_browser.dir/spectrum_browser.cpp.o.d"
  "spectrum_browser"
  "spectrum_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectrum_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
