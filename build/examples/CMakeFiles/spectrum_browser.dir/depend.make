# Empty dependencies file for spectrum_browser.
# This may be replaced when dependencies are built.
