file(REMOVE_RECURSE
  "CMakeFiles/sky_explorer.dir/sky_explorer.cpp.o"
  "CMakeFiles/sky_explorer.dir/sky_explorer.cpp.o.d"
  "sky_explorer"
  "sky_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sky_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
