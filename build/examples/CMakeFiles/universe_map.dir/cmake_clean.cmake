file(REMOVE_RECURSE
  "CMakeFiles/universe_map.dir/universe_map.cpp.o"
  "CMakeFiles/universe_map.dir/universe_map.cpp.o.d"
  "universe_map"
  "universe_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universe_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
