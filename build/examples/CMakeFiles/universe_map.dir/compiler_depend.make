# Empty compiler generated dependencies file for universe_map.
# This may be replaced when dependencies are built.
