# Empty dependencies file for photoz_pipeline.
# This may be replaced when dependencies are built.
