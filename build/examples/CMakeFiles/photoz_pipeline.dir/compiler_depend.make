# Empty compiler generated dependencies file for photoz_pipeline.
# This may be replaced when dependencies are built.
