file(REMOVE_RECURSE
  "CMakeFiles/photoz_pipeline.dir/photoz_pipeline.cpp.o"
  "CMakeFiles/photoz_pipeline.dir/photoz_pipeline.cpp.o.d"
  "photoz_pipeline"
  "photoz_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photoz_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
