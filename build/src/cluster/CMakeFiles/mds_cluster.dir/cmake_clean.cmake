file(REMOVE_RECURSE
  "CMakeFiles/mds_cluster.dir/basin_spanning_tree.cc.o"
  "CMakeFiles/mds_cluster.dir/basin_spanning_tree.cc.o.d"
  "CMakeFiles/mds_cluster.dir/outlier.cc.o"
  "CMakeFiles/mds_cluster.dir/outlier.cc.o.d"
  "libmds_cluster.a"
  "libmds_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mds_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
