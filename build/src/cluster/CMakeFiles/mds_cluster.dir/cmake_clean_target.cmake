file(REMOVE_RECURSE
  "libmds_cluster.a"
)
