# Empty dependencies file for mds_cluster.
# This may be replaced when dependencies are built.
