file(REMOVE_RECURSE
  "CMakeFiles/mds_sdss.dir/catalog.cc.o"
  "CMakeFiles/mds_sdss.dir/catalog.cc.o.d"
  "CMakeFiles/mds_sdss.dir/magnitude_table.cc.o"
  "CMakeFiles/mds_sdss.dir/magnitude_table.cc.o.d"
  "CMakeFiles/mds_sdss.dir/sky.cc.o"
  "CMakeFiles/mds_sdss.dir/sky.cc.o.d"
  "libmds_sdss.a"
  "libmds_sdss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mds_sdss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
