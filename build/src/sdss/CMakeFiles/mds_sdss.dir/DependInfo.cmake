
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdss/catalog.cc" "src/sdss/CMakeFiles/mds_sdss.dir/catalog.cc.o" "gcc" "src/sdss/CMakeFiles/mds_sdss.dir/catalog.cc.o.d"
  "/root/repo/src/sdss/magnitude_table.cc" "src/sdss/CMakeFiles/mds_sdss.dir/magnitude_table.cc.o" "gcc" "src/sdss/CMakeFiles/mds_sdss.dir/magnitude_table.cc.o.d"
  "/root/repo/src/sdss/sky.cc" "src/sdss/CMakeFiles/mds_sdss.dir/sky.cc.o" "gcc" "src/sdss/CMakeFiles/mds_sdss.dir/sky.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mds_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mds_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
