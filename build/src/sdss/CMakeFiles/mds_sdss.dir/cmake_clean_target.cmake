file(REMOVE_RECURSE
  "libmds_sdss.a"
)
