# Empty dependencies file for mds_sdss.
# This may be replaced when dependencies are built.
