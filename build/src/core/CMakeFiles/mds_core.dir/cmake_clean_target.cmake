file(REMOVE_RECURSE
  "libmds_core.a"
)
