
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/index_io.cc" "src/core/CMakeFiles/mds_core.dir/index_io.cc.o" "gcc" "src/core/CMakeFiles/mds_core.dir/index_io.cc.o.d"
  "/root/repo/src/core/kdtree.cc" "src/core/CMakeFiles/mds_core.dir/kdtree.cc.o" "gcc" "src/core/CMakeFiles/mds_core.dir/kdtree.cc.o.d"
  "/root/repo/src/core/knn.cc" "src/core/CMakeFiles/mds_core.dir/knn.cc.o" "gcc" "src/core/CMakeFiles/mds_core.dir/knn.cc.o.d"
  "/root/repo/src/core/layered_grid.cc" "src/core/CMakeFiles/mds_core.dir/layered_grid.cc.o" "gcc" "src/core/CMakeFiles/mds_core.dir/layered_grid.cc.o.d"
  "/root/repo/src/core/point_table.cc" "src/core/CMakeFiles/mds_core.dir/point_table.cc.o" "gcc" "src/core/CMakeFiles/mds_core.dir/point_table.cc.o.d"
  "/root/repo/src/core/query_engine.cc" "src/core/CMakeFiles/mds_core.dir/query_engine.cc.o" "gcc" "src/core/CMakeFiles/mds_core.dir/query_engine.cc.o.d"
  "/root/repo/src/core/voronoi_index.cc" "src/core/CMakeFiles/mds_core.dir/voronoi_index.cc.o" "gcc" "src/core/CMakeFiles/mds_core.dir/voronoi_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mds_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mds_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/hull/CMakeFiles/mds_hull.dir/DependInfo.cmake"
  "/root/repo/build/src/sdss/CMakeFiles/mds_sdss.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
