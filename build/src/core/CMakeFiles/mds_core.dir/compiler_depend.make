# Empty compiler generated dependencies file for mds_core.
# This may be replaced when dependencies are built.
