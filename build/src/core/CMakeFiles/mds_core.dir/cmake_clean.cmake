file(REMOVE_RECURSE
  "CMakeFiles/mds_core.dir/index_io.cc.o"
  "CMakeFiles/mds_core.dir/index_io.cc.o.d"
  "CMakeFiles/mds_core.dir/kdtree.cc.o"
  "CMakeFiles/mds_core.dir/kdtree.cc.o.d"
  "CMakeFiles/mds_core.dir/knn.cc.o"
  "CMakeFiles/mds_core.dir/knn.cc.o.d"
  "CMakeFiles/mds_core.dir/layered_grid.cc.o"
  "CMakeFiles/mds_core.dir/layered_grid.cc.o.d"
  "CMakeFiles/mds_core.dir/point_table.cc.o"
  "CMakeFiles/mds_core.dir/point_table.cc.o.d"
  "CMakeFiles/mds_core.dir/query_engine.cc.o"
  "CMakeFiles/mds_core.dir/query_engine.cc.o.d"
  "CMakeFiles/mds_core.dir/voronoi_index.cc.o"
  "CMakeFiles/mds_core.dir/voronoi_index.cc.o.d"
  "libmds_core.a"
  "libmds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
