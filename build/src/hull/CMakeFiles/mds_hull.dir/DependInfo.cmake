
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hull/delaunay.cc" "src/hull/CMakeFiles/mds_hull.dir/delaunay.cc.o" "gcc" "src/hull/CMakeFiles/mds_hull.dir/delaunay.cc.o.d"
  "/root/repo/src/hull/hull_query.cc" "src/hull/CMakeFiles/mds_hull.dir/hull_query.cc.o" "gcc" "src/hull/CMakeFiles/mds_hull.dir/hull_query.cc.o.d"
  "/root/repo/src/hull/quickhull.cc" "src/hull/CMakeFiles/mds_hull.dir/quickhull.cc.o" "gcc" "src/hull/CMakeFiles/mds_hull.dir/quickhull.cc.o.d"
  "/root/repo/src/hull/voronoi.cc" "src/hull/CMakeFiles/mds_hull.dir/voronoi.cc.o" "gcc" "src/hull/CMakeFiles/mds_hull.dir/voronoi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
