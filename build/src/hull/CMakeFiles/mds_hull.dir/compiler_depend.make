# Empty compiler generated dependencies file for mds_hull.
# This may be replaced when dependencies are built.
