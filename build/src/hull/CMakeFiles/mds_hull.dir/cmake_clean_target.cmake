file(REMOVE_RECURSE
  "libmds_hull.a"
)
