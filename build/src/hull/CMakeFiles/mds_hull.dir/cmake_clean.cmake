file(REMOVE_RECURSE
  "CMakeFiles/mds_hull.dir/delaunay.cc.o"
  "CMakeFiles/mds_hull.dir/delaunay.cc.o.d"
  "CMakeFiles/mds_hull.dir/hull_query.cc.o"
  "CMakeFiles/mds_hull.dir/hull_query.cc.o.d"
  "CMakeFiles/mds_hull.dir/quickhull.cc.o"
  "CMakeFiles/mds_hull.dir/quickhull.cc.o.d"
  "CMakeFiles/mds_hull.dir/voronoi.cc.o"
  "CMakeFiles/mds_hull.dir/voronoi.cc.o.d"
  "libmds_hull.a"
  "libmds_hull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mds_hull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
