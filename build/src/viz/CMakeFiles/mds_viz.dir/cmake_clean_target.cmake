file(REMOVE_RECURSE
  "libmds_viz.a"
)
