
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/app.cc" "src/viz/CMakeFiles/mds_viz.dir/app.cc.o" "gcc" "src/viz/CMakeFiles/mds_viz.dir/app.cc.o.d"
  "/root/repo/src/viz/camera.cc" "src/viz/CMakeFiles/mds_viz.dir/camera.cc.o" "gcc" "src/viz/CMakeFiles/mds_viz.dir/camera.cc.o.d"
  "/root/repo/src/viz/pipes.cc" "src/viz/CMakeFiles/mds_viz.dir/pipes.cc.o" "gcc" "src/viz/CMakeFiles/mds_viz.dir/pipes.cc.o.d"
  "/root/repo/src/viz/plugin.cc" "src/viz/CMakeFiles/mds_viz.dir/plugin.cc.o" "gcc" "src/viz/CMakeFiles/mds_viz.dir/plugin.cc.o.d"
  "/root/repo/src/viz/producers.cc" "src/viz/CMakeFiles/mds_viz.dir/producers.cc.o" "gcc" "src/viz/CMakeFiles/mds_viz.dir/producers.cc.o.d"
  "/root/repo/src/viz/renderer.cc" "src/viz/CMakeFiles/mds_viz.dir/renderer.cc.o" "gcc" "src/viz/CMakeFiles/mds_viz.dir/renderer.cc.o.d"
  "/root/repo/src/viz/threaded_producer.cc" "src/viz/CMakeFiles/mds_viz.dir/threaded_producer.cc.o" "gcc" "src/viz/CMakeFiles/mds_viz.dir/threaded_producer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mds_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hull/CMakeFiles/mds_hull.dir/DependInfo.cmake"
  "/root/repo/build/src/sdss/CMakeFiles/mds_sdss.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mds_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
