file(REMOVE_RECURSE
  "CMakeFiles/mds_viz.dir/app.cc.o"
  "CMakeFiles/mds_viz.dir/app.cc.o.d"
  "CMakeFiles/mds_viz.dir/camera.cc.o"
  "CMakeFiles/mds_viz.dir/camera.cc.o.d"
  "CMakeFiles/mds_viz.dir/pipes.cc.o"
  "CMakeFiles/mds_viz.dir/pipes.cc.o.d"
  "CMakeFiles/mds_viz.dir/plugin.cc.o"
  "CMakeFiles/mds_viz.dir/plugin.cc.o.d"
  "CMakeFiles/mds_viz.dir/producers.cc.o"
  "CMakeFiles/mds_viz.dir/producers.cc.o.d"
  "CMakeFiles/mds_viz.dir/renderer.cc.o"
  "CMakeFiles/mds_viz.dir/renderer.cc.o.d"
  "CMakeFiles/mds_viz.dir/threaded_producer.cc.o"
  "CMakeFiles/mds_viz.dir/threaded_producer.cc.o.d"
  "libmds_viz.a"
  "libmds_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mds_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
