# Empty dependencies file for mds_viz.
# This may be replaced when dependencies are built.
