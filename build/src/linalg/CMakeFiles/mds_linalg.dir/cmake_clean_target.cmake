file(REMOVE_RECURSE
  "libmds_linalg.a"
)
