file(REMOVE_RECURSE
  "CMakeFiles/mds_linalg.dir/eigen.cc.o"
  "CMakeFiles/mds_linalg.dir/eigen.cc.o.d"
  "CMakeFiles/mds_linalg.dir/least_squares.cc.o"
  "CMakeFiles/mds_linalg.dir/least_squares.cc.o.d"
  "CMakeFiles/mds_linalg.dir/matrix.cc.o"
  "CMakeFiles/mds_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/mds_linalg.dir/pca.cc.o"
  "CMakeFiles/mds_linalg.dir/pca.cc.o.d"
  "CMakeFiles/mds_linalg.dir/whitening.cc.o"
  "CMakeFiles/mds_linalg.dir/whitening.cc.o.d"
  "libmds_linalg.a"
  "libmds_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mds_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
