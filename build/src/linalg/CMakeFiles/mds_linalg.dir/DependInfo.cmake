
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/eigen.cc" "src/linalg/CMakeFiles/mds_linalg.dir/eigen.cc.o" "gcc" "src/linalg/CMakeFiles/mds_linalg.dir/eigen.cc.o.d"
  "/root/repo/src/linalg/least_squares.cc" "src/linalg/CMakeFiles/mds_linalg.dir/least_squares.cc.o" "gcc" "src/linalg/CMakeFiles/mds_linalg.dir/least_squares.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/linalg/CMakeFiles/mds_linalg.dir/matrix.cc.o" "gcc" "src/linalg/CMakeFiles/mds_linalg.dir/matrix.cc.o.d"
  "/root/repo/src/linalg/pca.cc" "src/linalg/CMakeFiles/mds_linalg.dir/pca.cc.o" "gcc" "src/linalg/CMakeFiles/mds_linalg.dir/pca.cc.o.d"
  "/root/repo/src/linalg/whitening.cc" "src/linalg/CMakeFiles/mds_linalg.dir/whitening.cc.o" "gcc" "src/linalg/CMakeFiles/mds_linalg.dir/whitening.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
