# Empty compiler generated dependencies file for mds_linalg.
# This may be replaced when dependencies are built.
