# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("linalg")
subdirs("geom")
subdirs("storage")
subdirs("hull")
subdirs("sdss")
subdirs("core")
subdirs("cluster")
subdirs("photoz")
subdirs("spectra")
subdirs("viz")
