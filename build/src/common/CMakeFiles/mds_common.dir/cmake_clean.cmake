file(REMOVE_RECURSE
  "CMakeFiles/mds_common.dir/rng.cc.o"
  "CMakeFiles/mds_common.dir/rng.cc.o.d"
  "CMakeFiles/mds_common.dir/status.cc.o"
  "CMakeFiles/mds_common.dir/status.cc.o.d"
  "libmds_common.a"
  "libmds_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mds_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
