# Empty dependencies file for mds_common.
# This may be replaced when dependencies are built.
