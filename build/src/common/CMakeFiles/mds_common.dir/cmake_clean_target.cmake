file(REMOVE_RECURSE
  "libmds_common.a"
)
