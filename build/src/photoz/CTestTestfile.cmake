# CMake generated Testfile for 
# Source directory: /root/repo/src/photoz
# Build directory: /root/repo/build/src/photoz
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
