file(REMOVE_RECURSE
  "CMakeFiles/mds_photoz.dir/knn_photoz.cc.o"
  "CMakeFiles/mds_photoz.dir/knn_photoz.cc.o.d"
  "CMakeFiles/mds_photoz.dir/template_fitting.cc.o"
  "CMakeFiles/mds_photoz.dir/template_fitting.cc.o.d"
  "libmds_photoz.a"
  "libmds_photoz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mds_photoz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
