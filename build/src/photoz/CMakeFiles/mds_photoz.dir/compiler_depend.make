# Empty compiler generated dependencies file for mds_photoz.
# This may be replaced when dependencies are built.
