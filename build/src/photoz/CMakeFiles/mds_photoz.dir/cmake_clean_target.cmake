file(REMOVE_RECURSE
  "libmds_photoz.a"
)
