# Empty compiler generated dependencies file for mds_storage.
# This may be replaced when dependencies are built.
