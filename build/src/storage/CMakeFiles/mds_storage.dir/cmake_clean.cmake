file(REMOVE_RECURSE
  "CMakeFiles/mds_storage.dir/bplus_tree.cc.o"
  "CMakeFiles/mds_storage.dir/bplus_tree.cc.o.d"
  "CMakeFiles/mds_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/mds_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/mds_storage.dir/clustered_index.cc.o"
  "CMakeFiles/mds_storage.dir/clustered_index.cc.o.d"
  "CMakeFiles/mds_storage.dir/page_stream.cc.o"
  "CMakeFiles/mds_storage.dir/page_stream.cc.o.d"
  "CMakeFiles/mds_storage.dir/pager.cc.o"
  "CMakeFiles/mds_storage.dir/pager.cc.o.d"
  "CMakeFiles/mds_storage.dir/table.cc.o"
  "CMakeFiles/mds_storage.dir/table.cc.o.d"
  "CMakeFiles/mds_storage.dir/vector_codec.cc.o"
  "CMakeFiles/mds_storage.dir/vector_codec.cc.o.d"
  "libmds_storage.a"
  "libmds_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mds_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
