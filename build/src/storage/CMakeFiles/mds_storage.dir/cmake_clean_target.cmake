file(REMOVE_RECURSE
  "libmds_storage.a"
)
