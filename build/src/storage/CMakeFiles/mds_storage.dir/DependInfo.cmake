
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bplus_tree.cc" "src/storage/CMakeFiles/mds_storage.dir/bplus_tree.cc.o" "gcc" "src/storage/CMakeFiles/mds_storage.dir/bplus_tree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/mds_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/mds_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/clustered_index.cc" "src/storage/CMakeFiles/mds_storage.dir/clustered_index.cc.o" "gcc" "src/storage/CMakeFiles/mds_storage.dir/clustered_index.cc.o.d"
  "/root/repo/src/storage/page_stream.cc" "src/storage/CMakeFiles/mds_storage.dir/page_stream.cc.o" "gcc" "src/storage/CMakeFiles/mds_storage.dir/page_stream.cc.o.d"
  "/root/repo/src/storage/pager.cc" "src/storage/CMakeFiles/mds_storage.dir/pager.cc.o" "gcc" "src/storage/CMakeFiles/mds_storage.dir/pager.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/storage/CMakeFiles/mds_storage.dir/table.cc.o" "gcc" "src/storage/CMakeFiles/mds_storage.dir/table.cc.o.d"
  "/root/repo/src/storage/vector_codec.cc" "src/storage/CMakeFiles/mds_storage.dir/vector_codec.cc.o" "gcc" "src/storage/CMakeFiles/mds_storage.dir/vector_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
