# Empty compiler generated dependencies file for mds_geom.
# This may be replaced when dependencies are built.
