file(REMOVE_RECURSE
  "libmds_geom.a"
)
