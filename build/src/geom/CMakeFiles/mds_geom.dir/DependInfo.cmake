
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/box.cc" "src/geom/CMakeFiles/mds_geom.dir/box.cc.o" "gcc" "src/geom/CMakeFiles/mds_geom.dir/box.cc.o.d"
  "/root/repo/src/geom/point_set.cc" "src/geom/CMakeFiles/mds_geom.dir/point_set.cc.o" "gcc" "src/geom/CMakeFiles/mds_geom.dir/point_set.cc.o.d"
  "/root/repo/src/geom/polyhedron.cc" "src/geom/CMakeFiles/mds_geom.dir/polyhedron.cc.o" "gcc" "src/geom/CMakeFiles/mds_geom.dir/polyhedron.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
