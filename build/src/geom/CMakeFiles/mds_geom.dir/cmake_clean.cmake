file(REMOVE_RECURSE
  "CMakeFiles/mds_geom.dir/box.cc.o"
  "CMakeFiles/mds_geom.dir/box.cc.o.d"
  "CMakeFiles/mds_geom.dir/point_set.cc.o"
  "CMakeFiles/mds_geom.dir/point_set.cc.o.d"
  "CMakeFiles/mds_geom.dir/polyhedron.cc.o"
  "CMakeFiles/mds_geom.dir/polyhedron.cc.o.d"
  "libmds_geom.a"
  "libmds_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mds_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
