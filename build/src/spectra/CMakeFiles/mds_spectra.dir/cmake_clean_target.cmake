file(REMOVE_RECURSE
  "libmds_spectra.a"
)
