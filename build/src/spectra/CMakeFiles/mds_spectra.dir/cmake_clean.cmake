file(REMOVE_RECURSE
  "CMakeFiles/mds_spectra.dir/similarity.cc.o"
  "CMakeFiles/mds_spectra.dir/similarity.cc.o.d"
  "CMakeFiles/mds_spectra.dir/spectrum_generator.cc.o"
  "CMakeFiles/mds_spectra.dir/spectrum_generator.cc.o.d"
  "libmds_spectra.a"
  "libmds_spectra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mds_spectra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
