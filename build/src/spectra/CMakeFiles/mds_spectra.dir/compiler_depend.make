# Empty compiler generated dependencies file for mds_spectra.
# This may be replaced when dependencies are built.
