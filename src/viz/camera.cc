#include "viz/camera.h"

namespace mds {

Camera ZoomCamera(const Camera& camera, double factor) {
  Camera out = camera;
  std::vector<double> center = camera.view.Center();
  for (size_t j = 0; j < camera.view.dim(); ++j) {
    double half = 0.5 * (camera.view.hi(j) - camera.view.lo(j)) * factor;
    out.view.set_lo(j, center[j] - half);
    out.view.set_hi(j, center[j] + half);
  }
  return out;
}

}  // namespace mds
