#ifndef MDS_VIZ_THREADED_PRODUCER_H_
#define MDS_VIZ_THREADED_PRODUCER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "viz/plugin.h"

namespace mds {

/// Base class implementing the §5.1 threading protocol for producers.
///
/// Camera events enqueue a production request. In multi-threaded mode a
/// worker thread picks up the latest request, calls Produce() and installs
/// the result, then raises SignalProduction; GetOutput() uses a try-lock
/// and returns nullptr if the worker is mid-swap ("the main application
/// will attempt to extract the 3D geometry in the next frame cycle"). In
/// single-threaded mode Produce runs inline in the event callback — "our
/// architecture is set up in a way to support both models".
///
/// Subclasses implement Produce(camera) only; it runs on the worker thread
/// in threaded mode.
class ThreadedProducer : public Producer {
 public:
  explicit ThreadedProducer(bool threaded) : threaded_(threaded) {}
  ~ThreadedProducer() override;

  bool Initialize(Registry* registry) override;
  bool Start() override;
  bool Stop() override;
  void Shutdown() override {}

  std::shared_ptr<const GeometrySet> GetOutput() override;
  Camera SuggestInitial() override { return Camera{}; }

  /// Productions completed since Start (for E15 accounting).
  uint64_t productions() const { return productions_.load(); }
  /// GetOutput calls that returned nullptr due to contention.
  uint64_t contended_gets() const { return contended_gets_.load(); }

  /// Blocks until all enqueued camera requests have been produced (test
  /// and benchmark synchronization point; not used by the frame loop).
  void WaitIdle();

 protected:
  virtual std::shared_ptr<GeometrySet> Produce(const Camera& camera) = 0;

  Registry* registry() const { return registry_; }

 private:
  void OnCamera(const Camera& camera);
  void WorkerLoop();
  void Install(std::shared_ptr<GeometrySet> geometry);

  const bool threaded_;
  Registry* registry_ = nullptr;

  std::mutex mu_;  // guards pending_/last_/stop_, and the swap in Install
  std::condition_variable cv_;
  std::optional<Camera> pending_;
  std::shared_ptr<const GeometrySet> last_;
  bool stop_ = false;
  bool busy_ = false;
  std::thread worker_;
  std::atomic<uint64_t> productions_{0};
  std::atomic<uint64_t> contended_gets_{0};
  std::atomic<uint64_t> revision_{0};
};

}  // namespace mds

#endif  // MDS_VIZ_THREADED_PRODUCER_H_
