#ifndef MDS_VIZ_PIPES_H_
#define MDS_VIZ_PIPES_H_

#include <memory>

#include "viz/plugin.h"

namespace mds {

/// Concrete Pipe plugins — "well designed pipes can be used in many
/// visualization contexts" (§5). Pipes transform GeometrySets between a
/// producer and the visualizer.

/// Keeps every `stride`-th point (a cheap client-side level-of-detail
/// reducer for slow render targets). Segments and boxes pass through.
class DecimatePipe : public Pipe {
 public:
  explicit DecimatePipe(uint32_t stride) : stride_(stride == 0 ? 1 : stride) {}

  bool Initialize(Registry*) override { return true; }
  bool Start() override { return true; }
  bool Stop() override { return true; }
  void Shutdown() override {}

  std::shared_ptr<const GeometrySet> Transform(
      std::shared_ptr<const GeometrySet> input) override;

 private:
  uint32_t stride_;
};

/// Colors points by one of their coordinates (a poor man's transfer
/// function: Figure 16 colors cells by volume; this pipe colors by height
/// or any axis when the producer supplies no scalars).
class ColorByAxisPipe : public Pipe {
 public:
  explicit ColorByAxisPipe(size_t axis) : axis_(axis) {}

  bool Initialize(Registry*) override { return true; }
  bool Start() override { return true; }
  bool Stop() override { return true; }
  void Shutdown() override {}

  std::shared_ptr<const GeometrySet> Transform(
      std::shared_ptr<const GeometrySet> input) override;

 private:
  size_t axis_;
};

/// Appends the bounding box of the incoming points to the geometry — the
/// visual frame around a dataset.
class BoundingBoxPipe : public Pipe {
 public:
  bool Initialize(Registry*) override { return true; }
  bool Start() override { return true; }
  bool Stop() override { return true; }
  void Shutdown() override {}

  std::shared_ptr<const GeometrySet> Transform(
      std::shared_ptr<const GeometrySet> input) override;
};

}  // namespace mds

#endif  // MDS_VIZ_PIPES_H_
