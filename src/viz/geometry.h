#ifndef MDS_VIZ_GEOMETRY_H_
#define MDS_VIZ_GEOMETRY_H_

#include <array>
#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "geom/point_set.h"

namespace mds {

/// 3-D geometry passed from producers through pipes to the visualizer —
/// the GeometrySet of the paper's plugin interface (Figure 12).
struct GeometrySet {
  /// Point cloud (dim 3) with an optional scalar per point (color source,
  /// e.g. Voronoi cell volume in Figure 16).
  PointSet points{3, 0};
  std::vector<float> point_values;

  /// Line segments (Delaunay edges, Figure 16).
  struct Segment {
    std::array<float, 3> a{};
    std::array<float, 3> b{};
  };
  std::vector<Segment> segments;

  /// Axis-aligned boxes (kd-tree cells, Figure 15).
  std::vector<Box> boxes;

  /// Monotonically increasing production counter set by the producer.
  uint64_t revision = 0;

  size_t TotalPrimitives() const {
    return points.size() + segments.size() + boxes.size();
  }
};

}  // namespace mds

#endif  // MDS_VIZ_GEOMETRY_H_
