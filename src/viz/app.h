#ifndef MDS_VIZ_APP_H_
#define MDS_VIZ_APP_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "viz/plugin.h"

namespace mds {

/// The visualization application driving the plugin graph (Figure 11):
/// camera events flow to producers, produced geometry flows through pipes
/// to the consumer. Headless — the "visualizer" is whatever Consumer is
/// attached (the PPM renderer, or a stats recorder in tests).
class VisualizationApp {
 public:
  VisualizationApp() = default;
  ~VisualizationApp();

  VisualizationApp(const VisualizationApp&) = delete;
  VisualizationApp& operator=(const VisualizationApp&) = delete;

  /// Adds a producer with an optional chain of pipes. The configuration
  /// XML of the paper is replaced by this programmatic graph assembly.
  void AddPipeline(std::unique_ptr<Producer> producer,
                   std::vector<std::unique_ptr<Pipe>> pipes = {});

  void SetConsumer(std::unique_ptr<Consumer> consumer);

  /// Initializes and starts all plugins.
  Status Start();

  /// Emits a camera event to every producer's registry.
  void SetCamera(const Camera& camera);

  /// Initial camera suggested by the first producer.
  Camera SuggestInitial() const;

  /// One frame cycle: for every producer whose registry has a production
  /// signal, attempt GetOutput(); null outputs (contended try-lock) are
  /// retried next frame by leaving the signal set. Collected geometry runs
  /// through the pipeline and into the consumer.
  struct FrameReport {
    uint32_t outputs_collected = 0;
    uint32_t outputs_deferred = 0;  ///< null GetOutput, retried next frame
    uint64_t primitives = 0;
  };
  FrameReport RunFrame();

  /// Blocks until all threaded producers finished outstanding work, then
  /// runs frames until every signal is drained. Test/benchmark helper.
  FrameReport DrainFrames();

  void Stop();

  size_t num_pipelines() const { return pipelines_.size(); }
  Producer* producer(size_t i) const { return pipelines_[i].producer.get(); }

 private:
  struct Pipeline {
    std::unique_ptr<Producer> producer;
    std::vector<std::unique_ptr<Pipe>> pipes;
    std::unique_ptr<Registry> registry;
    std::shared_ptr<const GeometrySet> last_geometry;
  };

  std::vector<Pipeline> pipelines_;
  std::unique_ptr<Consumer> consumer_;
  std::unique_ptr<Registry> consumer_registry_;
  bool started_ = false;
};

}  // namespace mds

#endif  // MDS_VIZ_APP_H_
