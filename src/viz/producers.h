#ifndef MDS_VIZ_PRODUCERS_H_
#define MDS_VIZ_PRODUCERS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/kdtree.h"
#include "core/layered_grid.h"
#include "viz/geometry_cache.h"
#include "viz/threaded_producer.h"

namespace mds {

/// Adaptive point-cloud producer (§5.2): keeps at least camera.detail
/// points in view by issuing layered-grid sample queries, serving repeats
/// from the local geometry cache ("the database is contacted only if
/// additional geometry is needed").
class PointCloudProducer : public ThreadedProducer {
 public:
  /// `index` must outlive the producer; its point set supplies the first
  /// three coordinates of each returned point.
  PointCloudProducer(const LayeredGridIndex* index, bool threaded = false,
                     size_t cache_capacity = 8);

  Camera SuggestInitial() override;

  /// Index queries actually issued (cache misses) — the E15 fetch counter.
  uint64_t db_fetches() const { return db_fetches_.load(); }
  uint64_t cache_hits() const;

 protected:
  std::shared_ptr<GeometrySet> Produce(const Camera& camera) override;

 private:
  const LayeredGridIndex* index_;
  mutable std::mutex cache_mu_;
  GeometryCache cache_;
  std::atomic<uint64_t> db_fetches_{0};
};

/// Adaptive kd-box producer (Figure 15): descends the tree level by level
/// until at least `min_boxes` node regions intersect the view, then emits
/// those boxes.
class KdBoxProducer : public ThreadedProducer {
 public:
  KdBoxProducer(const KdTreeIndex* index, uint32_t min_boxes = 500,
                bool threaded = false);

  Camera SuggestInitial() override;

 protected:
  std::shared_ptr<GeometrySet> Produce(const Camera& camera) override;

 private:
  const KdTreeIndex* index_;
  uint32_t min_boxes_;
};

/// One resolution level of the adaptive Delaunay / Voronoi visualization
/// (the paper exports 1K / 10K / 100K samples and walks them coarse to
/// fine).
struct AdaptiveGraphLevel {
  PointSet seeds{3, 0};
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  /// Scalar per seed (e.g. Voronoi cell volume for Figure 16 coloring).
  std::vector<float> seed_values;
};

/// Emits the Delaunay edges of the coarsest level that still shows at
/// least `min_edges` edges in view (Figure 16, left).
class DelaunayProducer : public ThreadedProducer {
 public:
  DelaunayProducer(std::vector<AdaptiveGraphLevel> levels,
                   uint64_t min_edges = 500, bool threaded = false);

  Camera SuggestInitial() override;

  /// Level used by the last production (coarse = 0), for tests.
  uint32_t last_level() const { return last_level_.load(); }

 protected:
  std::shared_ptr<GeometrySet> Produce(const Camera& camera) override;

 private:
  std::vector<AdaptiveGraphLevel> levels_;
  uint64_t min_edges_;
  std::atomic<uint32_t> last_level_{0};
};

/// Emits Voronoi cell sites colored by cell volume at adaptive resolution
/// (Figure 16, right).
class VoronoiCellProducer : public ThreadedProducer {
 public:
  VoronoiCellProducer(std::vector<AdaptiveGraphLevel> levels,
                      uint64_t min_points = 200, bool threaded = false);

  Camera SuggestInitial() override;
  uint32_t last_level() const { return last_level_.load(); }

 protected:
  std::shared_ptr<GeometrySet> Produce(const Camera& camera) override;

 private:
  std::vector<AdaptiveGraphLevel> levels_;
  uint64_t min_points_;
  std::atomic<uint32_t> last_level_{0};
};

}  // namespace mds

#endif  // MDS_VIZ_PRODUCERS_H_
