#include "viz/renderer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mds {

PpmRenderer::PpmRenderer(uint32_t width, uint32_t height)
    : width_(width), height_(height), framebuffer_(width * height) {}

bool PpmRenderer::Initialize(Registry* registry) {
  registry->SubscribeCameraChanged(
      [this](const Camera& camera) { SetViewport(camera); });
  return true;
}

void PpmRenderer::Clear() {
  std::fill(framebuffer_.begin(), framebuffer_.end(), Rgb{});
}

bool PpmRenderer::ProjectPoint(const float* p, int* px, int* py) const {
  double wx = camera_.view.hi(0) - camera_.view.lo(0);
  double wy = camera_.view.hi(1) - camera_.view.lo(1);
  if (wx <= 0.0 || wy <= 0.0) return false;
  double tx = (p[0] - camera_.view.lo(0)) / wx;
  double ty = (p[1] - camera_.view.lo(1)) / wy;
  if (tx < 0.0 || tx > 1.0 || ty < 0.0 || ty > 1.0) return false;
  *px = std::min<int>(static_cast<int>(tx * width_), width_ - 1);
  *py = std::min<int>(static_cast<int>((1.0 - ty) * height_), height_ - 1);
  return true;
}

void PpmRenderer::PutPixel(int x, int y, Rgb color) {
  if (x < 0 || y < 0 || x >= static_cast<int>(width_) ||
      y >= static_cast<int>(height_)) {
    return;
  }
  framebuffer_[static_cast<size_t>(y) * width_ + x] = color;
}

void PpmRenderer::DrawLine(int x0, int y0, int x1, int y1, Rgb color) {
  // Bresenham.
  int dx = std::abs(x1 - x0), sx = x0 < x1 ? 1 : -1;
  int dy = -std::abs(y1 - y0), sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  for (;;) {
    PutPixel(x0, y0, color);
    if (x0 == x1 && y0 == y1) break;
    int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

PpmRenderer::Rgb PpmRenderer::ValueToColor(float t) {
  t = std::min(std::max(t, 0.0f), 1.0f);
  // Blue (cold / large volume) to red (hot / dense).
  return Rgb{static_cast<uint8_t>(64 + 191 * t),
             static_cast<uint8_t>(64 + 64 * (1.0f - std::abs(t - 0.5f) * 2)),
             static_cast<uint8_t>(64 + 191 * (1.0f - t))};
}

void PpmRenderer::Consume(const GeometrySet& geometry) {
  Clear();
  ++frames_;
  // Normalize point scalars to [0, 1] for coloring.
  float vmin = 0.0f, vmax = 1.0f;
  if (!geometry.point_values.empty()) {
    vmin = *std::min_element(geometry.point_values.begin(),
                             geometry.point_values.end());
    vmax = *std::max_element(geometry.point_values.begin(),
                             geometry.point_values.end());
    if (vmax <= vmin) vmax = vmin + 1.0f;
  }
  int px, py;
  for (size_t i = 0; i < geometry.points.size(); ++i) {
    if (!ProjectPoint(geometry.points.point(i), &px, &py)) continue;
    Rgb color{220, 220, 220};
    if (i < geometry.point_values.size()) {
      color = ValueToColor((geometry.point_values[i] - vmin) / (vmax - vmin));
    }
    PutPixel(px, py, color);
  }
  const Rgb line_color{90, 200, 90};
  for (const auto& seg : geometry.segments) {
    int ax, ay, bx, by;
    if (ProjectPoint(seg.a.data(), &ax, &ay) &&
        ProjectPoint(seg.b.data(), &bx, &by)) {
      DrawLine(ax, ay, bx, by, line_color);
    }
  }
  const Rgb box_color{200, 160, 60};
  for (const Box& box : geometry.boxes) {
    float corners[4][3] = {
        {static_cast<float>(box.lo(0)), static_cast<float>(box.lo(1)), 0.0f},
        {static_cast<float>(box.hi(0)), static_cast<float>(box.lo(1)), 0.0f},
        {static_cast<float>(box.hi(0)), static_cast<float>(box.hi(1)), 0.0f},
        {static_cast<float>(box.lo(0)), static_cast<float>(box.hi(1)), 0.0f},
    };
    int xs[4], ys[4];
    bool ok = true;
    for (int c = 0; c < 4; ++c) {
      // Clamp corners into view before projecting so partially visible
      // boxes still draw their visible edges.
      float clamped[3] = {
          static_cast<float>(std::min(std::max<double>(corners[c][0],
                                                       camera_.view.lo(0)),
                                      camera_.view.hi(0))),
          static_cast<float>(std::min(std::max<double>(corners[c][1],
                                                       camera_.view.lo(1)),
                                      camera_.view.hi(1))),
          0.0f};
      if (!ProjectPoint(clamped, &xs[c], &ys[c])) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (int c = 0; c < 4; ++c) {
      DrawLine(xs[c], ys[c], xs[(c + 1) % 4], ys[(c + 1) % 4], box_color);
    }
  }
}

Status PpmRenderer::WritePpm(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open PPM output file: " + path);
  }
  std::fprintf(f, "P6\n%u %u\n255\n", width_, height_);
  for (const Rgb& px : framebuffer_) {
    uint8_t rgb[3] = {px.r, px.g, px.b};
    if (std::fwrite(rgb, 1, 3, f) != 3) {
      std::fclose(f);
      return Status::IOError("short write to PPM file: " + path);
    }
  }
  std::fclose(f);
  return Status::OK();
}

double PpmRenderer::CoverageFraction() const {
  uint64_t lit = 0;
  for (const Rgb& px : framebuffer_) {
    if (px.r != 0 || px.g != 0 || px.b != 0) ++lit;
  }
  return static_cast<double>(lit) / static_cast<double>(framebuffer_.size());
}

}  // namespace mds
