#ifndef MDS_VIZ_RENDERER_H_
#define MDS_VIZ_RENDERER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "viz/plugin.h"

namespace mds {

/// Offscreen software renderer writing PPM images — the headless stand-in
/// for the paper's Managed DirectX visualizer (see DESIGN.md). Projects
/// geometry orthographically onto the (x, y) plane of the current camera
/// view box; point colors follow their scalar values through a blue→red
/// ramp (Figure 16's volume coloring).
class PpmRenderer : public Consumer {
 public:
  PpmRenderer(uint32_t width, uint32_t height);

  bool Initialize(Registry* registry) override;
  bool Start() override { return true; }
  bool Stop() override { return true; }
  void Shutdown() override {}

  void Consume(const GeometrySet& geometry) override;

  /// Updates the projection window (called on camera events through the
  /// consumer registry, or directly by a driver).
  void SetViewport(const Camera& camera) { camera_ = camera; }

  /// Writes the current framebuffer as a binary PPM.
  Status WritePpm(const std::string& path) const;

  /// Fraction of non-background pixels (a cheap "did we draw something"
  /// probe for tests).
  double CoverageFraction() const;

  uint64_t frames_consumed() const { return frames_; }
  uint32_t width() const { return width_; }
  uint32_t height() const { return height_; }

 private:
  struct Rgb {
    uint8_t r = 0, g = 0, b = 0;
  };

  void Clear();
  bool ProjectPoint(const float* p, int* px, int* py) const;
  void PutPixel(int x, int y, Rgb color);
  void DrawLine(int x0, int y0, int x1, int y1, Rgb color);
  static Rgb ValueToColor(float t);

  uint32_t width_;
  uint32_t height_;
  Camera camera_;
  std::vector<Rgb> framebuffer_;
  uint64_t frames_ = 0;
};

/// Consumer that only records what it saw; the assertion target of the
/// pipeline tests.
class RecordingConsumer : public Consumer {
 public:
  bool Initialize(Registry*) override { return true; }
  bool Start() override { return true; }
  bool Stop() override { return true; }
  void Shutdown() override {}

  void Consume(const GeometrySet& geometry) override {
    ++frames_;
    last_points_ = geometry.points.size();
    last_segments_ = geometry.segments.size();
    last_boxes_ = geometry.boxes.size();
    last_revision_ = geometry.revision;
  }

  uint64_t frames() const { return frames_; }
  size_t last_points() const { return last_points_; }
  size_t last_segments() const { return last_segments_; }
  size_t last_boxes() const { return last_boxes_; }
  uint64_t last_revision() const { return last_revision_; }

 private:
  uint64_t frames_ = 0;
  size_t last_points_ = 0;
  size_t last_segments_ = 0;
  size_t last_boxes_ = 0;
  uint64_t last_revision_ = 0;
};

}  // namespace mds

#endif  // MDS_VIZ_RENDERER_H_
