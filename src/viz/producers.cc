#include "viz/producers.h"

#include <algorithm>

namespace mds {

namespace {

/// Copies the first three coordinates (zero-padded) of a source point.
void ToDisplayPoint(const float* src, size_t dim, float out[3]) {
  for (size_t j = 0; j < 3; ++j) {
    out[j] = j < dim ? src[j] : 0.0f;
  }
}

Box DisplayBounds(const Box& data_bounds) {
  std::vector<double> lo(3, 0.0), hi(3, 1.0);
  for (size_t j = 0; j < 3 && j < data_bounds.dim(); ++j) {
    lo[j] = data_bounds.lo(j);
    hi[j] = data_bounds.hi(j);
  }
  return Box(std::move(lo), std::move(hi));
}

/// View box in the source point space (first min(3, dim) axes constrained,
/// the rest unconstrained).
Box ViewToDataBox(const Box& view, size_t dim) {
  std::vector<double> lo(dim, -1e300), hi(dim, 1e300);
  for (size_t j = 0; j < dim && j < 3; ++j) {
    lo[j] = view.lo(j);
    hi[j] = view.hi(j);
  }
  return Box(std::move(lo), std::move(hi));
}

bool SegmentTouchesView(const Box& view, const float* a, const float* b) {
  // Conservative: either endpoint inside, or the segment's bounding box
  // intersects the view.
  std::vector<double> lo(3), hi(3);
  for (size_t j = 0; j < 3; ++j) {
    lo[j] = std::min(a[j], b[j]);
    hi[j] = std::max(a[j], b[j]);
  }
  return view.Intersects(Box(std::move(lo), std::move(hi)));
}

}  // namespace

PointCloudProducer::PointCloudProducer(const LayeredGridIndex* index,
                                       bool threaded, size_t cache_capacity)
    : ThreadedProducer(threaded), index_(index), cache_(cache_capacity) {}

Camera PointCloudProducer::SuggestInitial() {
  Camera camera;
  camera.view = DisplayBounds(index_->bounding_box());
  camera.detail = 100000;
  return camera;
}

uint64_t PointCloudProducer::cache_hits() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.hits();
}

std::shared_ptr<GeometrySet> PointCloudProducer::Produce(
    const Camera& camera) {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    std::shared_ptr<const GeometrySet> cached = cache_.Lookup(camera);
    if (cached != nullptr) {
      // Reuse: copy-on-write is unnecessary, the set is immutable; wrap in
      // a fresh mutable object sharing the data.
      return std::make_shared<GeometrySet>(*cached);
    }
  }
  ++db_fetches_;
  Box query = ViewToDataBox(camera.view, index_->dim());
  std::vector<uint64_t> ids;
  GridQueryStats stats;
  Status st = index_->SampleQuery(query, camera.detail, &ids, &stats);
  if (!st.ok()) return nullptr;

  auto geometry = std::make_shared<GeometrySet>();
  geometry->points = PointSet(3, 0);
  geometry->points.Reserve(ids.size());
  float display[3];
  const PointSet& points = index_->points();
  for (uint64_t id : ids) {
    ToDisplayPoint(points.point(id), points.dim(), display);
    geometry->points.Append(display);
  }
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    cache_.Insert(camera, geometry);
  }
  return geometry;
}

KdBoxProducer::KdBoxProducer(const KdTreeIndex* index, uint32_t min_boxes,
                             bool threaded)
    : ThreadedProducer(threaded), index_(index), min_boxes_(min_boxes) {}

Camera KdBoxProducer::SuggestInitial() {
  Camera camera;
  camera.view = DisplayBounds(index_->root().region);
  camera.detail = min_boxes_;
  return camera;
}

std::shared_ptr<GeometrySet> KdBoxProducer::Produce(const Camera& camera) {
  const Box query = ViewToDataBox(camera.view, index_->dim());
  const auto& nodes = index_->nodes();
  // Level-by-level descent: stop at the first depth with >= min_boxes
  // boxes in view (or the leaf level).
  std::vector<uint32_t> current = {0};
  std::vector<uint32_t> in_view;
  for (;;) {
    in_view.clear();
    for (uint32_t idx : current) {
      if (nodes[idx].region.Intersects(query)) in_view.push_back(idx);
    }
    bool has_children =
        !in_view.empty() && nodes[in_view.front()].split_dim >= 0;
    if (in_view.size() >= min_boxes_ || !has_children) break;
    std::vector<uint32_t> next;
    next.reserve(in_view.size() * 2);
    for (uint32_t idx : in_view) {
      next.push_back(nodes[idx].left);
      next.push_back(nodes[idx].right);
    }
    current = std::move(next);
  }
  auto geometry = std::make_shared<GeometrySet>();
  geometry->boxes.reserve(in_view.size());
  for (uint32_t idx : in_view) {
    geometry->boxes.push_back(nodes[idx].region);
  }
  return geometry;
}

DelaunayProducer::DelaunayProducer(std::vector<AdaptiveGraphLevel> levels,
                                   uint64_t min_edges, bool threaded)
    : ThreadedProducer(threaded),
      levels_(std::move(levels)),
      min_edges_(min_edges) {}

Camera DelaunayProducer::SuggestInitial() {
  Camera camera;
  if (!levels_.empty()) {
    camera.view = DisplayBounds(Box::Bounding(levels_.front().seeds));
  }
  camera.detail = min_edges_;
  return camera;
}

std::shared_ptr<GeometrySet> DelaunayProducer::Produce(const Camera& camera) {
  auto geometry = std::make_shared<GeometrySet>();
  float a[3], b[3];
  for (uint32_t l = 0; l < levels_.size(); ++l) {
    const AdaptiveGraphLevel& level = levels_[l];
    geometry->segments.clear();
    for (auto [u, v] : level.edges) {
      ToDisplayPoint(level.seeds.point(u), level.seeds.dim(), a);
      ToDisplayPoint(level.seeds.point(v), level.seeds.dim(), b);
      if (SegmentTouchesView(camera.view, a, b)) {
        GeometrySet::Segment seg;
        std::copy(a, a + 3, seg.a.begin());
        std::copy(b, b + 3, seg.b.begin());
        geometry->segments.push_back(seg);
      }
    }
    last_level_.store(l);
    // "if not enough edges are returned, it goes on to the 10K and
    // subsequently 100K tables to ensure a good level of detail".
    if (geometry->segments.size() >= min_edges_ || l + 1 == levels_.size()) {
      break;
    }
  }
  return geometry;
}

VoronoiCellProducer::VoronoiCellProducer(std::vector<AdaptiveGraphLevel> levels,
                                         uint64_t min_points, bool threaded)
    : ThreadedProducer(threaded),
      levels_(std::move(levels)),
      min_points_(min_points) {}

Camera VoronoiCellProducer::SuggestInitial() {
  Camera camera;
  if (!levels_.empty()) {
    camera.view = DisplayBounds(Box::Bounding(levels_.front().seeds));
  }
  camera.detail = min_points_;
  return camera;
}

std::shared_ptr<GeometrySet> VoronoiCellProducer::Produce(
    const Camera& camera) {
  auto geometry = std::make_shared<GeometrySet>();
  float display[3];
  for (uint32_t l = 0; l < levels_.size(); ++l) {
    const AdaptiveGraphLevel& level = levels_[l];
    geometry->points = PointSet(3, 0);
    geometry->point_values.clear();
    for (size_t i = 0; i < level.seeds.size(); ++i) {
      ToDisplayPoint(level.seeds.point(i), level.seeds.dim(), display);
      if (camera.view.Contains(display)) {
        geometry->points.Append(display);
        geometry->point_values.push_back(
            i < level.seed_values.size() ? level.seed_values[i] : 0.0f);
      }
    }
    last_level_.store(l);
    if (geometry->points.size() >= min_points_ || l + 1 == levels_.size()) {
      break;
    }
  }
  return geometry;
}

}  // namespace mds
