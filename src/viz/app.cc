#include "viz/app.h"

#include "viz/threaded_producer.h"

namespace mds {

VisualizationApp::~VisualizationApp() { Stop(); }

void VisualizationApp::AddPipeline(std::unique_ptr<Producer> producer,
                                   std::vector<std::unique_ptr<Pipe>> pipes) {
  Pipeline p;
  p.producer = std::move(producer);
  p.pipes = std::move(pipes);
  p.registry = std::make_unique<Registry>();
  pipelines_.push_back(std::move(p));
}

void VisualizationApp::SetConsumer(std::unique_ptr<Consumer> consumer) {
  consumer_ = std::move(consumer);
  consumer_registry_ = std::make_unique<Registry>();
}

Status VisualizationApp::Start() {
  for (Pipeline& p : pipelines_) {
    if (!p.producer->Initialize(p.registry.get())) {
      return Status::Internal("producer Initialize failed");
    }
    for (auto& pipe : p.pipes) {
      if (!pipe->Initialize(p.registry.get())) {
        return Status::Internal("pipe Initialize failed");
      }
    }
  }
  if (consumer_ != nullptr &&
      !consumer_->Initialize(consumer_registry_.get())) {
    return Status::Internal("consumer Initialize failed");
  }
  for (Pipeline& p : pipelines_) {
    if (!p.producer->Start()) return Status::Internal("producer Start failed");
    for (auto& pipe : p.pipes) {
      if (!pipe->Start()) return Status::Internal("pipe Start failed");
    }
  }
  if (consumer_ != nullptr && !consumer_->Start()) {
    return Status::Internal("consumer Start failed");
  }
  started_ = true;
  return Status::OK();
}

void VisualizationApp::SetCamera(const Camera& camera) {
  for (Pipeline& p : pipelines_) {
    p.registry->EmitCameraChanged(camera);
  }
  if (consumer_registry_ != nullptr) {
    consumer_registry_->EmitCameraChanged(camera);
  }
}

Camera VisualizationApp::SuggestInitial() const {
  if (pipelines_.empty()) return Camera{};
  return pipelines_.front().producer->SuggestInitial();
}

VisualizationApp::FrameReport VisualizationApp::RunFrame() {
  FrameReport report;
  for (Pipeline& p : pipelines_) {
    if (!p.registry->ConsumeProductionSignal()) continue;
    std::shared_ptr<const GeometrySet> geometry = p.producer->GetOutput();
    if (geometry == nullptr) {
      // Busy producer: re-arm the signal so the next frame retries —
      // "the main application will attempt to extract the 3D geometry in
      // the next frame cycle".
      p.registry->SignalProduction(p.producer.get());
      ++report.outputs_deferred;
      continue;
    }
    for (auto& pipe : p.pipes) {
      geometry = pipe->Transform(std::move(geometry));
      if (geometry == nullptr) break;
    }
    if (geometry == nullptr) {
      ++report.outputs_deferred;
      continue;
    }
    p.last_geometry = geometry;
    ++report.outputs_collected;
    report.primitives += geometry->TotalPrimitives();
    if (consumer_ != nullptr) consumer_->Consume(*geometry);
  }
  return report;
}

VisualizationApp::FrameReport VisualizationApp::DrainFrames() {
  FrameReport total;
  for (Pipeline& p : pipelines_) {
    auto* threaded = dynamic_cast<ThreadedProducer*>(p.producer.get());
    if (threaded != nullptr) threaded->WaitIdle();
  }
  // Signals may interleave with late worker completions; loop until quiet.
  for (int i = 0; i < 64; ++i) {
    FrameReport r = RunFrame();
    total.outputs_collected += r.outputs_collected;
    total.outputs_deferred += r.outputs_deferred;
    total.primitives += r.primitives;
    if (r.outputs_collected == 0 && r.outputs_deferred == 0) break;
  }
  return total;
}

void VisualizationApp::Stop() {
  if (!started_) return;
  for (Pipeline& p : pipelines_) {
    p.producer->Stop();
    for (auto& pipe : p.pipes) pipe->Stop();
    p.producer->Shutdown();
    for (auto& pipe : p.pipes) pipe->Shutdown();
  }
  if (consumer_ != nullptr) {
    consumer_->Stop();
    consumer_->Shutdown();
  }
  started_ = false;
}

}  // namespace mds
