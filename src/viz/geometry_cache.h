#ifndef MDS_VIZ_GEOMETRY_CACHE_H_
#define MDS_VIZ_GEOMETRY_CACHE_H_

#include <deque>
#include <memory>

#include "viz/camera.h"
#include "viz/geometry.h"

namespace mds {

/// Per-producer LRU cache of the last n production results, keyed by the
/// camera they were produced for. "when zooming in and then back out, the
/// cache reduces time delay to zero" (§5.1): a cached result produced for
/// a view box that covers the requested one at sufficient detail is reused
/// without contacting the database.
class GeometryCache {
 public:
  explicit GeometryCache(size_t capacity = 8) : capacity_(capacity) {}

  /// A cached entry satisfies `camera` when its view box covers the
  /// requested one AND it can actually supply the requested level of
  /// detail: either the views are identical (same query, detail already
  /// met by construction), or the cached geometry holds at least
  /// camera.detail points inside the requested box — zooming in past the
  /// cached density is "additional geometry" and must go to the database.
  std::shared_ptr<const GeometrySet> Lookup(const Camera& camera) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->camera.detail < camera.detail ||
          !it->camera.view.ContainsBox(camera.view)) {
        continue;
      }
      bool satisfied = it->camera.view == camera.view;
      if (!satisfied && it->geometry != nullptr) {
        uint64_t in_view = 0;
        const PointSet& pts = it->geometry->points;
        for (size_t i = 0; i < pts.size() && in_view < camera.detail; ++i) {
          if (camera.view.Contains(pts.point(i))) ++in_view;
        }
        satisfied = in_view >= camera.detail;
      }
      if (!satisfied) continue;
      Entry hit = *it;
      entries_.erase(it);
      entries_.push_front(hit);  // refresh LRU position
      ++hits_;
      return hit.geometry;
    }
    ++misses_;
    return nullptr;
  }

  void Insert(const Camera& camera, std::shared_ptr<const GeometrySet> g) {
    entries_.push_front(Entry{camera, std::move(g)});
    while (entries_.size() > capacity_) entries_.pop_back();
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    Camera camera;
    std::shared_ptr<const GeometrySet> geometry;
  };

  size_t capacity_;
  std::deque<Entry> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace mds

#endif  // MDS_VIZ_GEOMETRY_CACHE_H_
