#ifndef MDS_VIZ_CAMERA_H_
#define MDS_VIZ_CAMERA_H_

#include <cstdint>

#include "geom/box.h"

namespace mds {

/// Camera state delivered to plugins on CameraBoxChanged events. Matching
/// §3.1, the client communicates an axis-aligned view box plus the number
/// of points it wants to display from that region.
struct Camera {
  Box view{std::vector<double>(3, 0.0), std::vector<double>(3, 1.0)};
  /// Requested level of detail: minimum primitives in view (the paper uses
  /// n = 100K points for point clouds and n = 500 for kd-boxes).
  uint64_t detail = 100000;
};

/// Returns a camera zoomed by `factor` (< 1 zooms in) around the center of
/// `camera`'s view box.
Camera ZoomCamera(const Camera& camera, double factor);

}  // namespace mds

#endif  // MDS_VIZ_CAMERA_H_
