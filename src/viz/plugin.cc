#include "viz/plugin.h"

namespace mds {

void Registry::SubscribeCameraChanged(CameraCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  camera_callbacks_.push_back(std::move(callback));
}

void Registry::EmitCameraChanged(const Camera& camera) {
  std::vector<CameraCallback> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    callbacks = camera_callbacks_;
  }
  for (const auto& cb : callbacks) cb(camera);
}

void Registry::SignalProduction(Producer*) {
  std::lock_guard<std::mutex> lock(mu_);
  production_signaled_ = true;
}

bool Registry::ConsumeProductionSignal() {
  std::lock_guard<std::mutex> lock(mu_);
  bool was = production_signaled_;
  production_signaled_ = false;
  return was;
}

}  // namespace mds
