#include "viz/threaded_producer.h"

namespace mds {

ThreadedProducer::~ThreadedProducer() { Stop(); }

bool ThreadedProducer::Initialize(Registry* registry) {
  registry_ = registry;
  registry_->SubscribeCameraChanged(
      [this](const Camera& camera) { OnCamera(camera); });
  return true;
}

bool ThreadedProducer::Start() {
  if (threaded_ && !worker_.joinable()) {
    stop_ = false;
    worker_ = std::thread([this] { WorkerLoop(); });
  }
  return true;
}

bool ThreadedProducer::Stop() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }
  return true;
}

void ThreadedProducer::OnCamera(const Camera& camera) {
  if (!threaded_) {
    Install(Produce(camera));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Collapse outstanding requests: only the latest camera matters.
    pending_ = camera;
  }
  cv_.notify_all();
}

void ThreadedProducer::WorkerLoop() {
  for (;;) {
    Camera camera;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || pending_.has_value(); });
      if (stop_) return;
      camera = *pending_;
      pending_.reset();
      busy_ = true;
    }
    std::shared_ptr<GeometrySet> geometry = Produce(camera);
    Install(std::move(geometry));
    {
      std::lock_guard<std::mutex> lock(mu_);
      busy_ = false;
    }
    cv_.notify_all();
  }
}

void ThreadedProducer::Install(std::shared_ptr<GeometrySet> geometry) {
  if (geometry != nullptr) {
    geometry->revision = ++revision_;
    std::lock_guard<std::mutex> lock(mu_);
    last_ = std::move(geometry);
  }
  ++productions_;
  if (registry_ != nullptr) registry_->SignalProduction(this);
}

std::shared_ptr<const GeometrySet> ThreadedProducer::GetOutput() {
  // Non-blocking contract: never stall the frame loop.
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    ++contended_gets_;
    return nullptr;
  }
  return last_;
}

void ThreadedProducer::WaitIdle() {
  if (!threaded_) return;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !busy_ && !pending_.has_value(); });
}

}  // namespace mds
