#ifndef MDS_VIZ_PLUGIN_H_
#define MDS_VIZ_PLUGIN_H_

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "viz/camera.h"
#include "viz/geometry.h"

namespace mds {

class Producer;

/// Event hub handed to every plugin at Initialize time (one Registry per
/// plugin, as in the paper). Plugins subscribe to camera events and signal
/// completed productions back to the application; SignalProduction is
/// callable from any thread and merely sets a flag consumed on the next
/// frame cycle, so neither side ever blocks on the other (§5.1).
class Registry {
 public:
  using CameraCallback = std::function<void(const Camera&)>;

  /// Subscribes to CameraBoxChanged events (called from the app thread).
  void SubscribeCameraChanged(CameraCallback callback);

  /// Fires a camera event to all subscribers (app thread).
  void EmitCameraChanged(const Camera& camera);

  /// Called by the plugin (possibly from a worker thread) when new output
  /// is ready: "this simply sets a flag to signal the application that in
  /// the next frame cycle it should attempt a GetOutput() call".
  void SignalProduction(Producer* producer);

  /// App-side: atomically reads and clears the production flag.
  bool ConsumeProductionSignal();

 private:
  std::mutex mu_;
  std::vector<CameraCallback> camera_callbacks_;
  bool production_signaled_ = false;
};

/// Base plugin lifecycle (Figure 12).
class Plugin {
 public:
  virtual ~Plugin() = default;
  virtual bool Initialize(Registry* registry) = 0;
  virtual bool Start() = 0;
  virtual bool Stop() = 0;
  virtual void Shutdown() = 0;
};

/// Output-only plugin: the source of all geometry data. GetOutput must be
/// non-blocking: it returns nullptr when the producer is busy replacing
/// its result, and the application retries next frame.
class Producer : public Plugin {
 public:
  virtual std::shared_ptr<const GeometrySet> GetOutput() = 0;
  virtual Camera SuggestInitial() = 0;
};

/// Input/output plugin transforming geometry (ParaView-filter analog).
class Pipe : public Plugin {
 public:
  virtual std::shared_ptr<const GeometrySet> Transform(
      std::shared_ptr<const GeometrySet> input) = 0;
};

/// Terminal plugin: receives the geometry each frame (renderer, recorder).
class Consumer : public Plugin {
 public:
  virtual void Consume(const GeometrySet& geometry) = 0;
};

}  // namespace mds

#endif  // MDS_VIZ_PLUGIN_H_
