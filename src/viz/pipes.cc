#include "viz/pipes.h"

#include "geom/box.h"

namespace mds {

std::shared_ptr<const GeometrySet> DecimatePipe::Transform(
    std::shared_ptr<const GeometrySet> input) {
  if (input == nullptr || stride_ == 1) return input;
  auto out = std::make_shared<GeometrySet>();
  out->revision = input->revision;
  out->segments = input->segments;
  out->boxes = input->boxes;
  out->points = PointSet(3, 0);
  const bool has_values = !input->point_values.empty();
  for (size_t i = 0; i < input->points.size(); i += stride_) {
    out->points.Append(input->points.point(i));
    if (has_values) out->point_values.push_back(input->point_values[i]);
  }
  return out;
}

std::shared_ptr<const GeometrySet> ColorByAxisPipe::Transform(
    std::shared_ptr<const GeometrySet> input) {
  if (input == nullptr || axis_ >= 3) return input;
  auto out = std::make_shared<GeometrySet>(*input);
  out->point_values.resize(out->points.size());
  for (size_t i = 0; i < out->points.size(); ++i) {
    out->point_values[i] = out->points.coord(i, axis_);
  }
  return out;
}

std::shared_ptr<const GeometrySet> BoundingBoxPipe::Transform(
    std::shared_ptr<const GeometrySet> input) {
  if (input == nullptr || input->points.empty()) return input;
  auto out = std::make_shared<GeometrySet>(*input);
  out->boxes.push_back(Box::Bounding(input->points));
  return out;
}

}  // namespace mds
