#ifndef MDS_CORE_QUERY_PLANNER_H_
#define MDS_CORE_QUERY_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/access_path.h"

namespace mds {

/// Cost-based choice among the access paths registered for one query.
///
/// The planner is per-query, like the paths themselves: register every way
/// the query could run (each path may be bound to a differently-clustered
/// copy of the point table), then Execute() estimates all of them from
/// index metadata and runs the cheapest. This is the optimizer the paper
/// leaves to SQL Server — with the crossover behaviour of Figure 5/E16
/// (index plans win at low selectivity, the full scan wins when the query
/// would touch most pages anyway) falling out of the page estimates.
class QueryPlanner {
 public:
  /// Estimate of one registered candidate, for EXPLAIN-style reporting.
  struct Candidate {
    std::string name;
    CostEstimate cost;
  };

  /// Registers a path. Returns *this so registrations chain.
  QueryPlanner& AddPath(std::unique_ptr<AccessPath> path);

  size_t num_paths() const { return paths_.size(); }
  const AccessPath& path(size_t i) const { return *paths_[i]; }

  /// Estimates every feasible path; returns the index of the cheapest.
  /// Fails if no feasible path is registered.
  Result<size_t> ChooseBest() const;

  /// Estimates all registered paths (EXPLAIN output, aligned with path
  /// indices).
  std::vector<Candidate> ExplainAll() const;

  /// Degradation policy for Execute (see DESIGN.md "Failure model").
  struct ExecuteOptions {
    /// When the chosen path fails with kCorruption (a checksum failure in
    /// its index or data pages), try the remaining feasible paths in cost
    /// order — typically ending at the clustered full scan, which depends
    /// on no index pages. A result produced after a fallback is marked
    /// degraded even when complete: corruption was detected on the way.
    bool fallback_on_corruption = true;
    /// Scan-level policy, forwarded to the executing RangeScanner.
    RangeScanner::ScanOptions scan;
    /// Planner hint: when non-empty, only paths with this name() are
    /// considered (the protocol's force-full-scan / force-index flags).
    /// Fails with InvalidArgument if no registered path matches.
    std::string required_path;
  };

  /// Chooses the cheapest path and executes it. `chosen` (optional)
  /// receives the winning path's name.
  Result<StorageQueryResult> Execute(QueryStats* stats = nullptr,
                                     std::string* chosen = nullptr);

  /// As above with an explicit degradation policy.
  Result<StorageQueryResult> Execute(const ExecuteOptions& options,
                                     QueryStats* stats = nullptr,
                                     std::string* chosen = nullptr);

 private:
  std::vector<std::unique_ptr<AccessPath>> paths_;
};

}  // namespace mds

#endif  // MDS_CORE_QUERY_PLANNER_H_
