#include "core/index_io.h"

#include <cstring>

#include "common/crc32c.h"

namespace mds {

namespace {

constexpr uint64_t kKdMagic = 0x4d44534b44543031ULL;    // "MDSKDT01"
constexpr uint64_t kGridMagic = 0x4d445347524431ULL;    // "MDSGRD1"
constexpr uint64_t kVoronoiMagic = 0x4d4453564f5231ULL;  // "MDSVOR1"
constexpr uint64_t kPointsMagic = 0x4d44535054533031ULL;    // "MDSPTS01"
constexpr uint64_t kManifestMagic = 0x4d44534d414e3031ULL;  // "MDSMAN01"
constexpr uint64_t kSuperMagic = 0x4d44535355503031ULL;     // "MDSSUP01"
constexpr uint32_t kSuperVersion = 1;
/// Superblock layout on page 0: [u64 magic][u32 version][u32 reserved]
/// [u64 manifest_head][u32 crc32c over bytes 0..24).
constexpr size_t kSuperCrcOffset = 24;

Status WriteBox(PageStreamWriter* w, const Box& box) {
  MDS_RETURN_NOT_OK(w->WriteVector(box.lo()));
  return w->WriteVector(box.hi());
}

Result<Box> ReadBox(PageStreamReader* r, size_t dim) {
  MDS_ASSIGN_OR_RETURN(std::vector<double> lo, r->ReadVector<double>());
  MDS_ASSIGN_OR_RETURN(std::vector<double> hi, r->ReadVector<double>());
  if (lo.size() != dim || hi.size() != dim) {
    return Status::Corruption("IndexIo: box dimension mismatch");
  }
  return Box(std::move(lo), std::move(hi));
}

std::string HeadContext(const char* what, PageId head) {
  return std::string(what) + "(head=" + std::to_string(head) + ")";
}

/// Shared tail of every Save: finish the chain, then make it durable
/// before the head escapes. Save chains live in freshly allocated pages,
/// so a crash or I/O failure anywhere in here leaves any previously saved
/// index physically untouched — the caller still holds the old head and
/// the old chain still loads. Only after FlushAll (write-back + fsync)
/// succeeds is the new head returned for the caller to swap into its
/// catalog: the classic write-new / sync / swap-pointer commit protocol.
Result<PageId> FinishAtomic(BufferPool* pool, PageStreamWriter* w,
                            const char* what) {
  Result<PageId> head = w->Finish();
  if (!head.ok()) return AnnotateStatus(head.status(), what);
  Status flushed = pool->FlushAll();
  if (!flushed.ok()) {
    return AnnotateStatus(flushed, HeadContext(what, *head));
  }
  return *head;
}

Status ValidateHeader(PageStreamReader* r, uint64_t magic,
                      const PointSet* points) {
  MDS_ASSIGN_OR_RETURN(uint64_t got_magic, r->ReadValue<uint64_t>());
  if (got_magic != magic) {
    return Status::Corruption("IndexIo: bad magic (wrong index type?)");
  }
  MDS_ASSIGN_OR_RETURN(uint64_t dim, r->ReadValue<uint64_t>());
  MDS_ASSIGN_OR_RETURN(uint64_t n, r->ReadValue<uint64_t>());
  if (dim != points->dim() || n != points->size()) {
    return Status::InvalidArgument(
        "IndexIo: point set does not match the saved index");
  }
  return Status::OK();
}

/// Minimal little-endian blob codec for the manifest. core/ cannot reach
/// for the server's wire codec (layering), and the manifest wants to be a
/// single contiguous byte blob so one CRC32C covers every field.
class BlobWriter {
 public:
  explicit BlobWriter(std::vector<uint8_t>* out) : out_(out) {}

  template <typename T>
  void Put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
    out_->insert(out_->end(), p, p + sizeof(T));
  }
  void PutString(const std::string& s) {
    Put<uint32_t>(static_cast<uint32_t>(s.size()));
    out_->insert(out_->end(), s.begin(), s.end());
  }
  template <typename T>
  void PutVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Put<uint64_t>(v.size());
    const uint8_t* p = reinterpret_cast<const uint8_t*>(v.data());
    out_->insert(out_->end(), p, p + v.size() * sizeof(T));
  }

 private:
  std::vector<uint8_t>* out_;
};

/// Bounds-checked reader over the manifest blob; any overrun trips the
/// sticky failed() flag instead of reading past the buffer.
class BlobReader {
 public:
  BlobReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool failed() const { return failed_; }
  size_t remaining() const { return size_ - pos_; }

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    if (failed_ || sizeof(T) > remaining()) {
      failed_ = true;
      return v;
    }
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  std::string GetString() {
    const uint32_t n = Get<uint32_t>();
    if (failed_ || n > remaining()) {
      failed_ = true;
      return std::string();
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  template <typename T>
  std::vector<T> GetVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint64_t n = Get<uint64_t>();
    if (failed_ || n > remaining() / sizeof(T)) {
      failed_ = true;
      return {};
    }
    std::vector<T> v(static_cast<size_t>(n));
    std::memcpy(v.data(), data_ + pos_, v.size() * sizeof(T));
    pos_ += v.size() * sizeof(T);
    return v;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// Kd-tree

Result<PageId> IndexIo::SaveKdTree(BufferPool* pool,
                                   const KdTreeIndex& index) {
  PageStreamWriter w(pool);
  auto write = [&]() -> Status {
    MDS_RETURN_NOT_OK(w.WriteValue(kKdMagic));
  MDS_RETURN_NOT_OK(w.WriteValue<uint64_t>(index.dim()));
  MDS_RETURN_NOT_OK(w.WriteValue<uint64_t>(index.num_points()));
    MDS_RETURN_NOT_OK(w.WriteValue<uint32_t>(index.num_levels_));
    MDS_RETURN_NOT_OK(w.WriteValue<uint32_t>(index.num_leaves_));
    MDS_RETURN_NOT_OK(w.WriteValue<uint64_t>(index.nodes_.size()));
    for (const KdTreeIndex::Node& node : index.nodes_) {
      MDS_RETURN_NOT_OK(w.WriteValue<int32_t>(node.split_dim));
      MDS_RETURN_NOT_OK(w.WriteValue<double>(node.split_value));
      MDS_RETURN_NOT_OK(w.WriteValue<uint32_t>(node.left));
      MDS_RETURN_NOT_OK(w.WriteValue<uint32_t>(node.right));
      MDS_RETURN_NOT_OK(w.WriteValue<uint32_t>(node.post_order));
      MDS_RETURN_NOT_OK(w.WriteValue<uint32_t>(node.first_leaf));
      MDS_RETURN_NOT_OK(w.WriteValue<uint32_t>(node.last_leaf));
      MDS_RETURN_NOT_OK(w.WriteValue<uint64_t>(node.row_begin));
      MDS_RETURN_NOT_OK(w.WriteValue<uint64_t>(node.row_end));
      MDS_RETURN_NOT_OK(WriteBox(&w, node.region));
      MDS_RETURN_NOT_OK(WriteBox(&w, node.bounds));
    }
    MDS_RETURN_NOT_OK(w.WriteVector(index.leaf_node_index_));
    return w.WriteVector(index.clustered_order_);
  };
  MDS_RETURN_NOT_OK(AnnotateStatus(write(), "IndexIo::SaveKdTree"));
  return FinishAtomic(pool, &w, "IndexIo::SaveKdTree");
}

Result<KdTreeIndex> IndexIo::LoadKdTree(BufferPool* pool, PageId head,
                                        const PointSet* points) {
  auto load = [&]() -> Result<KdTreeIndex> {
  PageStreamReader r(pool, head);
  MDS_RETURN_NOT_OK(ValidateHeader(&r, kKdMagic, points));
  KdTreeIndex index;
  index.points_ = points;
  MDS_ASSIGN_OR_RETURN(index.num_levels_, r.ReadValue<uint32_t>());
  MDS_ASSIGN_OR_RETURN(index.num_leaves_, r.ReadValue<uint32_t>());
  MDS_ASSIGN_OR_RETURN(uint64_t num_nodes, r.ReadValue<uint64_t>());
  if (num_nodes != 2ull * index.num_leaves_ - 1) {
    return Status::Corruption("IndexIo: kd-tree node count inconsistent");
  }
  index.nodes_.resize(num_nodes);
  const size_t dim = points->dim();
  for (KdTreeIndex::Node& node : index.nodes_) {
    MDS_ASSIGN_OR_RETURN(node.split_dim, r.ReadValue<int32_t>());
    MDS_ASSIGN_OR_RETURN(node.split_value, r.ReadValue<double>());
    MDS_ASSIGN_OR_RETURN(node.left, r.ReadValue<uint32_t>());
    MDS_ASSIGN_OR_RETURN(node.right, r.ReadValue<uint32_t>());
    MDS_ASSIGN_OR_RETURN(node.post_order, r.ReadValue<uint32_t>());
    MDS_ASSIGN_OR_RETURN(node.first_leaf, r.ReadValue<uint32_t>());
    MDS_ASSIGN_OR_RETURN(node.last_leaf, r.ReadValue<uint32_t>());
    MDS_ASSIGN_OR_RETURN(node.row_begin, r.ReadValue<uint64_t>());
    MDS_ASSIGN_OR_RETURN(node.row_end, r.ReadValue<uint64_t>());
    MDS_ASSIGN_OR_RETURN(node.region, ReadBox(&r, dim));
    MDS_ASSIGN_OR_RETURN(node.bounds, ReadBox(&r, dim));
  }
  MDS_ASSIGN_OR_RETURN(index.leaf_node_index_, r.ReadVector<uint32_t>());
  MDS_ASSIGN_OR_RETURN(index.clustered_order_, r.ReadVector<uint64_t>());
  if (index.leaf_node_index_.size() != index.num_leaves_ ||
      index.clustered_order_.size() != points->size()) {
    return Status::Corruption("IndexIo: kd-tree payload sizes inconsistent");
  }
  return index;
  };
  Result<KdTreeIndex> result = load();
  if (!result.ok()) {
    return AnnotateStatus(result.status(),
                          HeadContext("IndexIo::LoadKdTree", head));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Layered grid

Result<PageId> IndexIo::SaveLayeredGrid(BufferPool* pool,
                                        const LayeredGridIndex& index) {
  PageStreamWriter w(pool);
  auto write = [&]() -> Status {
    MDS_RETURN_NOT_OK(w.WriteValue(kGridMagic));
    MDS_RETURN_NOT_OK(w.WriteValue<uint64_t>(index.dim()));
    MDS_RETURN_NOT_OK(w.WriteValue<uint64_t>(index.points_->size()));
    MDS_RETURN_NOT_OK(WriteBox(&w, index.bounds_));
    MDS_RETURN_NOT_OK(w.WriteValue<uint32_t>(index.num_layers()));
    for (const LayeredGridIndex::Layer& layer : index.layers_) {
      MDS_RETURN_NOT_OK(w.WriteValue<uint32_t>(layer.resolution));
      MDS_RETURN_NOT_OK(w.WriteValue<uint64_t>(layer.row_begin));
      MDS_RETURN_NOT_OK(w.WriteValue<uint64_t>(layer.row_end));
      MDS_RETURN_NOT_OK(w.WriteVector(layer.cells));
    }
    MDS_RETURN_NOT_OK(w.WriteVector(index.random_id_));
    MDS_RETURN_NOT_OK(w.WriteVector(index.layer_of_));
    MDS_RETURN_NOT_OK(w.WriteVector(index.contained_by_));
    return w.WriteVector(index.clustered_order_);
  };
  MDS_RETURN_NOT_OK(AnnotateStatus(write(), "IndexIo::SaveLayeredGrid"));
  return FinishAtomic(pool, &w, "IndexIo::SaveLayeredGrid");
}

Result<LayeredGridIndex> IndexIo::LoadLayeredGrid(BufferPool* pool,
                                                  PageId head,
                                                  const PointSet* points) {
  auto load = [&]() -> Result<LayeredGridIndex> {
  PageStreamReader r(pool, head);
  MDS_RETURN_NOT_OK(ValidateHeader(&r, kGridMagic, points));
  LayeredGridIndex index;
  index.points_ = points;
  MDS_ASSIGN_OR_RETURN(index.bounds_, ReadBox(&r, points->dim()));
  MDS_ASSIGN_OR_RETURN(uint32_t num_layers, r.ReadValue<uint32_t>());
  index.layers_.resize(num_layers);
  for (LayeredGridIndex::Layer& layer : index.layers_) {
    MDS_ASSIGN_OR_RETURN(layer.resolution, r.ReadValue<uint32_t>());
    MDS_ASSIGN_OR_RETURN(layer.row_begin, r.ReadValue<uint64_t>());
    MDS_ASSIGN_OR_RETURN(layer.row_end, r.ReadValue<uint64_t>());
    MDS_ASSIGN_OR_RETURN(layer.cells,
                         r.ReadVector<LayeredGridIndex::CellRange>());
  }
  MDS_ASSIGN_OR_RETURN(index.random_id_, r.ReadVector<int64_t>());
  MDS_ASSIGN_OR_RETURN(index.layer_of_, r.ReadVector<int32_t>());
  MDS_ASSIGN_OR_RETURN(index.contained_by_, r.ReadVector<int64_t>());
  MDS_ASSIGN_OR_RETURN(index.clustered_order_, r.ReadVector<uint64_t>());
  if (index.random_id_.size() != points->size() ||
      index.clustered_order_.size() != points->size()) {
    return Status::Corruption("IndexIo: grid payload sizes inconsistent");
  }
  return index;
  };
  Result<LayeredGridIndex> result = load();
  if (!result.ok()) {
    return AnnotateStatus(result.status(),
                          HeadContext("IndexIo::LoadLayeredGrid", head));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Voronoi

Result<PageId> IndexIo::SaveVoronoi(BufferPool* pool,
                                    const VoronoiIndex& index) {
  PageStreamWriter w(pool);
  auto write = [&]() -> Status {
    MDS_RETURN_NOT_OK(w.WriteValue(kVoronoiMagic));
    MDS_RETURN_NOT_OK(w.WriteValue<uint64_t>(index.dim()));
    MDS_RETURN_NOT_OK(w.WriteValue<uint64_t>(index.points_->size()));
    MDS_RETURN_NOT_OK(WriteBox(&w, index.data_bounds_));
    MDS_RETURN_NOT_OK(w.WriteValue<uint32_t>(index.num_seeds()));
    MDS_RETURN_NOT_OK(w.WriteVector(index.seeds_->raw()));
    MDS_RETURN_NOT_OK(w.WriteVector(index.seed_ids_));
    MDS_RETURN_NOT_OK(w.WriteVector(index.tags_));
    MDS_RETURN_NOT_OK(w.WriteVector(index.clustered_order_));
    MDS_RETURN_NOT_OK(w.WriteVector(index.cell_rows_));
    for (const Box& box : index.cell_bounds_) {
      MDS_RETURN_NOT_OK(WriteBox(&w, box));
    }
    // Adjacency: offsets + flattened edges (the Delaunay triangulation
    // itself is not persisted — the graph is what queries use; §3.4
    // likewise suggests storing only the Delaunay edges).
    std::vector<uint64_t> offsets(index.graph_.size() + 1, 0);
    std::vector<uint32_t> edges;
    for (size_t s = 0; s < index.graph_.size(); ++s) {
      offsets[s + 1] = offsets[s] + index.graph_[s].size();
      edges.insert(edges.end(), index.graph_[s].begin(),
                   index.graph_[s].end());
    }
    MDS_RETURN_NOT_OK(w.WriteVector(offsets));
    return w.WriteVector(edges);
  };
  MDS_RETURN_NOT_OK(AnnotateStatus(write(), "IndexIo::SaveVoronoi"));
  return FinishAtomic(pool, &w, "IndexIo::SaveVoronoi");
}

Result<VoronoiIndex> IndexIo::LoadVoronoi(BufferPool* pool, PageId head,
                                          const PointSet* points) {
  auto load = [&]() -> Result<VoronoiIndex> {
  PageStreamReader r(pool, head);
  MDS_RETURN_NOT_OK(ValidateHeader(&r, kVoronoiMagic, points));
  VoronoiIndex index;
  index.points_ = points;
  MDS_ASSIGN_OR_RETURN(index.data_bounds_, ReadBox(&r, points->dim()));
  MDS_ASSIGN_OR_RETURN(uint32_t num_seeds, r.ReadValue<uint32_t>());
  MDS_ASSIGN_OR_RETURN(std::vector<float> seed_coords, r.ReadVector<float>());
  if (seed_coords.size() != static_cast<size_t>(num_seeds) * points->dim()) {
    return Status::Corruption("IndexIo: seed payload size inconsistent");
  }
  index.seeds_ = std::make_unique<PointSet>(points->dim(), 0);
  index.seeds_->mutable_raw() = std::move(seed_coords);
  MDS_ASSIGN_OR_RETURN(index.seed_ids_, r.ReadVector<uint64_t>());
  MDS_ASSIGN_OR_RETURN(index.tags_, r.ReadVector<uint32_t>());
  MDS_ASSIGN_OR_RETURN(index.clustered_order_, r.ReadVector<uint64_t>());
  MDS_ASSIGN_OR_RETURN(index.cell_rows_, r.ReadVector<uint64_t>());
  index.cell_bounds_.reserve(num_seeds);
  for (uint32_t c = 0; c < num_seeds; ++c) {
    MDS_ASSIGN_OR_RETURN(Box box, ReadBox(&r, points->dim()));
    index.cell_bounds_.push_back(std::move(box));
  }
  MDS_ASSIGN_OR_RETURN(std::vector<uint64_t> offsets,
                       r.ReadVector<uint64_t>());
  MDS_ASSIGN_OR_RETURN(std::vector<uint32_t> edges, r.ReadVector<uint32_t>());
  if (offsets.size() != num_seeds + 1 || index.tags_.size() != points->size() ||
      index.cell_rows_.size() != num_seeds + 1) {
    return Status::Corruption("IndexIo: voronoi payload sizes inconsistent");
  }
  index.graph_.resize(num_seeds);
  for (uint32_t s = 0; s < num_seeds; ++s) {
    if (offsets[s + 1] < offsets[s] || offsets[s + 1] > edges.size()) {
      return Status::Corruption("IndexIo: voronoi adjacency corrupt");
    }
    index.graph_[s].assign(edges.begin() + offsets[s],
                           edges.begin() + offsets[s + 1]);
  }
  // The nearest-seed kd-tree is cheap to rebuild over the seeds.
  auto tree = KdTreeIndex::Build(index.seeds_.get(), KdTreeConfig{});
  if (!tree.ok()) return tree.status();
  index.seed_tree_ = std::make_unique<KdTreeIndex>(std::move(*tree));
  return index;
  };
  Result<VoronoiIndex> result = load();
  if (!result.ok()) {
    return AnnotateStatus(result.status(),
                          HeadContext("IndexIo::LoadVoronoi", head));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Point set

Result<PageId> IndexIo::SavePointSet(BufferPool* pool,
                                     const PointSet& points) {
  PageStreamWriter w(pool);
  auto write = [&]() -> Status {
    MDS_RETURN_NOT_OK(w.WriteValue(kPointsMagic));
    MDS_RETURN_NOT_OK(w.WriteValue<uint64_t>(points.dim()));
    MDS_RETURN_NOT_OK(w.WriteValue<uint64_t>(points.size()));
    return w.WriteVector(points.raw());
  };
  MDS_RETURN_NOT_OK(AnnotateStatus(write(), "IndexIo::SavePointSet"));
  return FinishAtomic(pool, &w, "IndexIo::SavePointSet");
}

Result<PointSet> IndexIo::LoadPointSet(BufferPool* pool, PageId head) {
  auto load = [&]() -> Result<PointSet> {
    PageStreamReader r(pool, head);
    MDS_ASSIGN_OR_RETURN(uint64_t magic, r.ReadValue<uint64_t>());
    if (magic != kPointsMagic) {
      return Status::Corruption("IndexIo: bad point-set magic");
    }
    MDS_ASSIGN_OR_RETURN(uint64_t dim, r.ReadValue<uint64_t>());
    MDS_ASSIGN_OR_RETURN(uint64_t n, r.ReadValue<uint64_t>());
    MDS_ASSIGN_OR_RETURN(std::vector<float> raw, r.ReadVector<float>());
    if (dim == 0 || raw.size() != dim * n) {
      return Status::Corruption("IndexIo: point-set payload size inconsistent");
    }
    PointSet points(dim, 0);
    points.mutable_raw() = std::move(raw);
    return points;
  };
  Result<PointSet> result = load();
  if (!result.ok()) {
    return AnnotateStatus(result.status(),
                          HeadContext("IndexIo::LoadPointSet", head));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Manifest

Result<PageId> IndexIo::SaveManifest(BufferPool* pool,
                                     const DatasetManifest& manifest) {
  std::vector<uint8_t> blob;
  BlobWriter b(&blob);
  b.Put<uint32_t>(manifest.version);
  b.Put<uint32_t>(manifest.dim);
  b.Put<uint64_t>(manifest.table_rows);
  b.Put<uint64_t>(manifest.total_rows);
  b.Put<uint64_t>(manifest.seed);
  b.PutString(manifest.provenance);
  b.Put<uint32_t>(manifest.shard_index);
  b.Put<uint32_t>(manifest.shard_count);
  b.PutVector(manifest.table_pages);
  b.Put<uint64_t>(manifest.points_head);
  b.Put<uint64_t>(manifest.kdtree_head);
  b.Put<uint64_t>(manifest.grid_head);
  b.Put<uint64_t>(manifest.voronoi_head);
  b.Put<uint32_t>(Crc32c(blob.data(), blob.size()));

  PageStreamWriter w(pool);
  auto write = [&]() -> Status {
    MDS_RETURN_NOT_OK(w.WriteValue(kManifestMagic));
    return w.WriteVector(blob);
  };
  MDS_RETURN_NOT_OK(AnnotateStatus(write(), "IndexIo::SaveManifest"));
  return FinishAtomic(pool, &w, "IndexIo::SaveManifest");
}

Result<DatasetManifest> IndexIo::LoadManifest(BufferPool* pool, PageId head) {
  auto load = [&]() -> Result<DatasetManifest> {
    PageStreamReader r(pool, head);
    MDS_ASSIGN_OR_RETURN(uint64_t magic, r.ReadValue<uint64_t>());
    if (magic != kManifestMagic) {
      return Status::Corruption("IndexIo: bad manifest magic");
    }
    MDS_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, r.ReadVector<uint8_t>());
    if (blob.size() < sizeof(uint32_t)) {
      return Status::Corruption("IndexIo: manifest blob truncated");
    }
    const size_t covered = blob.size() - sizeof(uint32_t);
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, blob.data() + covered, sizeof(stored_crc));
    if (Crc32c(blob.data(), covered) != stored_crc) {
      return Status::Corruption("IndexIo: manifest CRC mismatch");
    }

    BlobReader b(blob.data(), covered);
    DatasetManifest m;
    m.version = b.Get<uint32_t>();
    if (!b.failed() && m.version != DatasetManifest::kVersion) {
      return Status::InvalidArgument("IndexIo: unsupported manifest version " +
                                     std::to_string(m.version));
    }
    m.dim = b.Get<uint32_t>();
    m.table_rows = b.Get<uint64_t>();
    m.total_rows = b.Get<uint64_t>();
    m.seed = b.Get<uint64_t>();
    m.provenance = b.GetString();
    m.shard_index = b.Get<uint32_t>();
    m.shard_count = b.Get<uint32_t>();
    m.table_pages = b.GetVector<PageId>();
    m.points_head = b.Get<uint64_t>();
    m.kdtree_head = b.Get<uint64_t>();
    m.grid_head = b.Get<uint64_t>();
    m.voronoi_head = b.Get<uint64_t>();
    if (b.failed() || b.remaining() != 0) {
      // A CRC-valid blob that mis-parses means writer/reader skew, not bit
      // rot — but either way the manifest cannot be trusted.
      return Status::Corruption("IndexIo: manifest blob malformed");
    }
    if (m.dim == 0 || m.shard_count == 0 || m.shard_index >= m.shard_count) {
      return Status::Corruption("IndexIo: manifest fields out of range");
    }
    return m;
  };
  Result<DatasetManifest> result = load();
  if (!result.ok()) {
    return AnnotateStatus(result.status(),
                          HeadContext("IndexIo::LoadManifest", head));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Superblock

Status IndexIo::WriteSuperblock(BufferPool* pool, PageId manifest_head) {
  auto write = [&]() -> Status {
    MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool->Fetch(0));
    Page& page = guard.MutablePage();
    page.WriteAt<uint64_t>(0, kSuperMagic);
    page.WriteAt<uint32_t>(8, kSuperVersion);
    page.WriteAt<uint32_t>(12, 0);  // reserved
    page.WriteAt<uint64_t>(16, manifest_head);
    page.WriteAt<uint32_t>(kSuperCrcOffset,
                           Crc32c(page.bytes(), kSuperCrcOffset));
    guard.Release();
    return pool->FlushAll();
  };
  return AnnotateStatus(write(), "IndexIo::WriteSuperblock");
}

Result<PageId> IndexIo::ReadSuperblock(BufferPool* pool) {
  auto read = [&]() -> Result<PageId> {
    if (pool->pager()->NumPages() == 0) {
      return Status::Corruption("IndexIo: empty dataset file (no superblock)");
    }
    MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool->Fetch(0));
    const Page& page = guard.page();
    if (page.ReadAt<uint64_t>(0) != kSuperMagic) {
      return Status::Corruption(
          "IndexIo: bad superblock magic (not a dataset file, or an "
          "incomplete build)");
    }
    if (page.ReadAt<uint32_t>(kSuperCrcOffset) !=
        Crc32c(page.bytes(), kSuperCrcOffset)) {
      return Status::Corruption("IndexIo: superblock CRC mismatch");
    }
    const uint32_t version = page.ReadAt<uint32_t>(8);
    if (version != kSuperVersion) {
      return Status::InvalidArgument(
          "IndexIo: unsupported dataset format version " +
          std::to_string(version));
    }
    return page.ReadAt<uint64_t>(16);
  };
  Result<PageId> result = read();
  if (!result.ok()) {
    return AnnotateStatus(result.status(), "IndexIo::ReadSuperblock");
  }
  return result;
}

}  // namespace mds
