#ifndef MDS_CORE_VORONOI_INDEX_H_
#define MDS_CORE_VORONOI_INDEX_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/kdtree.h"
#include "geom/box.h"
#include "geom/point_set.h"
#include "geom/polyhedron.h"
#include "hull/delaunay.h"

namespace mds {

/// How the Delaunay/neighbor graph over the seeds is obtained.
enum class VoronoiGraphMode {
  /// Exact Delaunay triangulation via the lifted quickhull (QHull path of
  /// the paper). Cost grows steeply with dimension; intended for d <= 5
  /// and a few thousand seeds.
  kExactDelaunay,
  /// Witness graph: two seeds are connected if some data point has them as
  /// its first and second nearest seeds. Scalable approximation of the
  /// Delaunay graph (the paper cites approximate Voronoi diagrams [6] as
  /// the standard workaround); edges are a subset of Delaunay edges and the
  /// dense regions that matter are covered by construction.
  kWitness,
};

struct VoronoiIndexConfig {
  uint32_t num_seeds = 1024;  ///< the paper samples Nseed = 10K of 270M
  uint64_t seed = 7;          ///< RNG seed for sampling
  VoronoiGraphMode graph_mode = VoronoiGraphMode::kWitness;
};

/// Polyhedron-query counters (E9).
struct VoronoiQueryStats {
  uint64_t cells_inside = 0;
  uint64_t cells_outside = 0;
  uint64_t cells_partial = 0;
  uint64_t points_tested = 0;
  uint64_t points_emitted = 0;
};

/// Directed-walk counters (E8).
struct WalkStats {
  uint64_t steps = 0;
  uint64_t neighbor_evaluations = 0;
};

/// Sampled flat Voronoi tessellation index (§3.4).
///
/// Nseed representative data points become seeds; every row is tagged with
/// its nearest seed (the ContainedBy analog) and rows are clustered by tag,
/// so retrieving one cell's points is a contiguous range scan. Cells are
/// numbered along a space-filling (Morton) curve as in the paper. Point
/// location runs as a directed walk on the Delaunay (or witness) graph;
/// polyhedron queries classify cells as inside / outside / partial.
class VoronoiIndex {
 public:
  static Result<VoronoiIndex> Build(const PointSet* points,
                                    const VoronoiIndexConfig& config = {});

  size_t dim() const { return points_->dim(); }
  uint32_t num_seeds() const { return static_cast<uint32_t>(seeds_->size()); }
  /// Seed coordinates (ordered along the space-filling curve).
  const PointSet& seeds() const { return *seeds_; }
  /// Original data ids of the seeds (aligned with seed ids).
  const std::vector<uint64_t>& seed_point_ids() const { return seed_ids_; }

  /// Nearest-seed tag per original point id.
  uint32_t tag(uint64_t point_id) const { return tags_[point_id]; }

  /// Clustered row order (sorted by tag); cell c owns rows
  /// [cell_row_begin(c), cell_row_end(c)).
  const std::vector<uint64_t>& clustered_order() const {
    return clustered_order_;
  }
  uint64_t cell_row_begin(uint32_t cell) const { return cell_rows_[cell]; }
  uint64_t cell_row_end(uint32_t cell) const { return cell_rows_[cell + 1]; }
  uint64_t cell_size(uint32_t cell) const {
    return cell_rows_[cell + 1] - cell_rows_[cell];
  }

  /// Tight bounding box of the points of one cell.
  const Box& cell_bounds(uint32_t cell) const { return cell_bounds_[cell]; }

  /// The seed adjacency graph (Delaunay or witness).
  const std::vector<std::vector<uint32_t>>& seed_graph() const {
    return graph_;
  }

  /// The exact Delaunay triangulation; present only in kExactDelaunay mode.
  const std::optional<DelaunayTriangulation>& delaunay() const {
    return delaunay_;
  }

  /// Exact nearest seed of p (kd-tree over the seeds).
  uint32_t NearestSeed(const double* p) const;
  uint32_t NearestSeed(const float* p) const;

  /// Directed walk on the seed graph from `start`: repeatedly hop to the
  /// neighbor closest to p until no neighbor improves (§3.4; expected
  /// O(sqrt(Nseed)) steps). Exact on the Delaunay graph; on the witness
  /// graph it may stop at a local minimum (tests quantify the miss rate).
  uint32_t WalkLocate(const double* p, uint32_t start,
                      WalkStats* stats = nullptr) const;

  /// Polyhedron query via cell classification; appends original point ids.
  void QueryPolyhedron(const Polyhedron& query, std::vector<uint64_t>* out,
                       VoronoiQueryStats* stats = nullptr) const;

  /// Monte-Carlo estimate of cell volumes restricted to the data bounding
  /// box (cells of hull seeds are unbounded; the restriction makes the
  /// inverse-volume density estimator of §3.4/§4 well defined). Returns
  /// one volume per cell.
  std::vector<double> EstimateCellVolumes(uint64_t samples, Rng& rng) const;

  /// Inverse-volume density estimate per cell: cell point count divided by
  /// estimated volume (the §3.4 "parameter-free density map").
  std::vector<double> EstimateCellDensities(uint64_t volume_samples,
                                            Rng& rng) const;

  const PointSet& points() const { return *points_; }

 private:
  VoronoiIndex() = default;
  friend class IndexIo;

  const PointSet* points_ = nullptr;
  /// Behind a unique_ptr so the kd-tree's pointer into it survives moves
  /// of the index object.
  std::unique_ptr<PointSet> seeds_;
  std::vector<uint64_t> seed_ids_;
  std::vector<uint32_t> tags_;
  std::vector<uint64_t> clustered_order_;
  std::vector<uint64_t> cell_rows_;  // size num_seeds + 1
  std::vector<Box> cell_bounds_;
  std::vector<std::vector<uint32_t>> graph_;
  std::optional<DelaunayTriangulation> delaunay_;
  std::unique_ptr<KdTreeIndex> seed_tree_;
  Box data_bounds_;
};

}  // namespace mds

#endif  // MDS_CORE_VORONOI_INDEX_H_
