#include "core/query_engine.h"

#include <atomic>

#include "common/parallel.h"

namespace mds {

std::vector<Result<StorageQueryResult>> QueryEngine::ExecuteBatch(
    const std::vector<AccessPath*>& paths, const BatchOptions& options,
    std::vector<QueryStats>* stats) {
  std::vector<Result<StorageQueryResult>> results;
  results.reserve(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    results.emplace_back(Status::Internal("query not executed"));
  }
  if (stats != nullptr) {
    stats->assign(paths.size(), QueryStats{});
  }
  if (paths.empty()) return results;

  unsigned threads = options.num_threads != 0 ? options.num_threads
                                              : QueryThreads();
  if (threads > paths.size()) threads = static_cast<unsigned>(paths.size());

  // Fork/join over a fixed pool: workers pull the next un-run query from
  // a shared counter, so long and short queries load-balance dynamically
  // while every result still lands at its input index.
  TaskPool pool(threads);
  std::atomic<size_t> next{0};
  pool.Run([&](unsigned) {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= paths.size()) return;
      QueryStats* st = stats != nullptr ? &(*stats)[i] : nullptr;
      Result<StorageQueryResult> r = paths[i] != nullptr
                                         ? ExecuteAccessPath(paths[i], st)
                                         : Result<StorageQueryResult>(
                                               Status::InvalidArgument(
                                                   "null access path"));
      if (!r.ok()) {
        // A failing sub-query fails only its own slot — siblings keep
        // their results — and names its batch index so a caller fanning
        // out hundreds of queries can attribute the failure.
        results[i] = AnnotateStatus(
            r.status(), "ExecuteBatch[" + std::to_string(i) + "]");
      } else {
        results[i] = std::move(r);
      }
    }
  });
  return results;
}

std::vector<Result<StorageQueryResult>> QueryEngine::ExecuteBatch(
    std::vector<std::unique_ptr<AccessPath>> paths,
    const BatchOptions& options, std::vector<QueryStats>* stats) {
  std::vector<AccessPath*> raw;
  raw.reserve(paths.size());
  for (const auto& path : paths) raw.push_back(path.get());
  return ExecuteBatch(raw, options, stats);
}

Result<StorageQueryResult> StorageQueryExecutor::FullScan(
    const PointTableBinding& binding, const Polyhedron& query) {
  FullScanPath path(binding, query);
  return ExecuteAccessPath(&path);
}

Result<StorageQueryResult> StorageQueryExecutor::ExecuteKdPlan(
    const PointTableBinding& binding, const KdTreeIndex& index,
    const Polyhedron& query) {
  KdTreePath path(binding, index, query);
  return ExecuteAccessPath(&path);
}

Result<StorageQueryResult> StorageQueryExecutor::GridSample(
    const PointTableBinding& binding, const LayeredGridIndex& index,
    const Box& query, uint64_t n, GridQueryStats* grid_stats) {
  GridSamplePath path(binding, index, query, n);
  QueryStats stats;
  auto result = ExecuteAccessPath(&path, &stats);
  if (result.ok() && grid_stats != nullptr) {
    grid_stats->layers_visited = static_cast<uint32_t>(stats.plan_steps);
    grid_stats->cells_visited = stats.cells_full + stats.cells_partial;
    grid_stats->points_scanned = stats.rows_scanned;
    grid_stats->points_returned = stats.rows_emitted;
  }
  return result;
}

Result<StorageQueryResult> StorageQueryExecutor::TableSampleTopN(
    const PointTableBinding& binding, const Box& query, double percent,
    uint64_t n, Rng& rng) {
  TableSamplePath path(binding, query, percent, n, &rng);
  return ExecuteAccessPath(&path);
}

Result<StorageQueryResult> StorageQueryExecutor::ExecuteVoronoi(
    const PointTableBinding& binding, const VoronoiIndex& index,
    const Polyhedron& query, VoronoiQueryStats* voronoi_stats) {
  VoronoiPath path(binding, index, query);
  QueryStats stats;
  auto result = ExecuteAccessPath(&path, &stats);
  if (result.ok() && voronoi_stats != nullptr) {
    voronoi_stats->cells_inside = stats.cells_full;
    voronoi_stats->cells_outside = stats.cells_pruned;
    voronoi_stats->cells_partial = stats.cells_partial;
    voronoi_stats->points_tested = stats.rows_tested;
    voronoi_stats->points_emitted = stats.rows_emitted;
  }
  return result;
}

}  // namespace mds
