#include "core/query_engine.h"

#include <algorithm>

#include "storage/table_sample.h"

namespace mds {

namespace {

constexpr size_t kMaxDim = 16;

/// Coalesces sorted row ranges that touch or overlap, so consecutive cell
/// or leaf ranges sharing a page are scanned in one pass (one fetch per
/// page instead of one per range).
void MergeRanges(std::vector<std::pair<uint64_t, uint64_t>>* ranges) {
  if (ranges->empty()) return;
  std::sort(ranges->begin(), ranges->end());
  size_t out = 0;
  for (size_t i = 1; i < ranges->size(); ++i) {
    if ((*ranges)[i].first <= (*ranges)[out].second) {
      (*ranges)[out].second =
          std::max((*ranges)[out].second, (*ranges)[i].second);
    } else {
      (*ranges)[++out] = (*ranges)[i];
    }
  }
  ranges->resize(out + 1);
}

/// Snapshot of pool stats to compute per-query deltas.
struct IoProbe {
  BufferPool* pool;
  uint64_t physical0;
  uint64_t logical0;

  explicit IoProbe(BufferPool* p)
      : pool(p),
        physical0(p->stats().physical_reads),
        logical0(p->stats().logical_reads) {}

  void Finish(StorageQueryResult* result) const {
    result->pages_read = pool->stats().physical_reads - physical0;
    result->pages_fetched = pool->stats().logical_reads - logical0;
  }
};

}  // namespace

Result<StorageQueryResult> StorageQueryExecutor::FullScan(
    const PointTableBinding& binding, const Polyhedron& query) {
  if (binding.dim != query.dim() || binding.dim > kMaxDim) {
    return Status::InvalidArgument("FullScan: dimension mismatch");
  }
  StorageQueryResult result;
  IoProbe probe(binding.table->pool());
  float coords[kMaxDim];
  MDS_RETURN_NOT_OK(binding.table->Scan([&](uint64_t, RowRef ref) {
    ++result.rows_scanned;
    ref.GetFloat32Span(binding.first_coord_col, binding.dim, coords);
    if (query.Contains(coords)) {
      result.objids.push_back(ref.GetInt64(binding.objid_col));
    }
  }));
  probe.Finish(&result);
  return result;
}

Result<StorageQueryResult> StorageQueryExecutor::ExecuteKdPlan(
    const PointTableBinding& binding, const KdTreeIndex& index,
    const Polyhedron& query) {
  if (binding.dim != query.dim() || binding.dim > kMaxDim) {
    return Status::InvalidArgument("ExecuteKdPlan: dimension mismatch");
  }
  std::vector<std::pair<uint64_t, uint64_t>> full;
  std::vector<std::pair<uint64_t, uint64_t>> partial;
  index.PlanPolyhedron(query, &full, &partial);
  MergeRanges(&full);
  MergeRanges(&partial);

  StorageQueryResult result;
  IoProbe probe(binding.table->pool());
  // Emit fully-contained subtrees without per-row geometry: the paper's
  // "child leaf nodes can be selected trivially using BETWEEN".
  for (auto [begin, end] : full) {
    MDS_RETURN_NOT_OK(
        binding.table->ScanRange(begin, end, [&](uint64_t, RowRef ref) {
          ++result.rows_scanned;
          result.objids.push_back(ref.GetInt64(binding.objid_col));
        }));
  }
  float coords[kMaxDim];
  for (auto [begin, end] : partial) {
    MDS_RETURN_NOT_OK(
        binding.table->ScanRange(begin, end, [&](uint64_t, RowRef ref) {
          ++result.rows_scanned;
          ref.GetFloat32Span(binding.first_coord_col, binding.dim, coords);
          if (query.Contains(coords)) {
            result.objids.push_back(ref.GetInt64(binding.objid_col));
          }
        }));
  }
  probe.Finish(&result);
  return result;
}

Result<StorageQueryResult> StorageQueryExecutor::GridSample(
    const PointTableBinding& binding, const LayeredGridIndex& index,
    const Box& query, uint64_t n, GridQueryStats* grid_stats) {
  if (binding.dim != query.dim() || binding.dim > kMaxDim) {
    return Status::InvalidArgument("GridSample: dimension mismatch");
  }
  GridQueryStats local;
  GridQueryStats* st = grid_stats != nullptr ? grid_stats : &local;
  StorageQueryResult result;
  IoProbe probe(binding.table->pool());
  std::vector<LayeredGridIndex::CellRange> ranges;
  float coords[kMaxDim];
  uint64_t found = 0;
  std::vector<std::pair<uint64_t, uint64_t>> merged;
  for (uint32_t l = 0; l < index.num_layers(); ++l) {
    ++st->layers_visited;
    ranges.clear();
    index.CellRangesFor(query, l, &ranges);
    st->cells_visited += ranges.size();
    merged.clear();
    merged.reserve(ranges.size());
    for (const auto& cr : ranges) merged.emplace_back(cr.row_begin, cr.row_end);
    MergeRanges(&merged);
    for (const auto& cr : merged) {
      MDS_RETURN_NOT_OK(binding.table->ScanRange(
          cr.first, cr.second, [&](uint64_t, RowRef ref) {
            ++result.rows_scanned;
            ++st->points_scanned;
            ref.GetFloat32Span(binding.first_coord_col, binding.dim, coords);
            if (query.Contains(coords)) {
              result.objids.push_back(ref.GetInt64(binding.objid_col));
              ++st->points_returned;
              ++found;
            }
          }));
    }
    if (found >= n) break;
  }
  probe.Finish(&result);
  return result;
}

Result<StorageQueryResult> StorageQueryExecutor::TableSampleTopN(
    const PointTableBinding& binding, const Box& query, double percent,
    uint64_t n, Rng& rng) {
  if (binding.dim != query.dim() || binding.dim > kMaxDim) {
    return Status::InvalidArgument("TableSampleTopN: dimension mismatch");
  }
  StorageQueryResult result;
  IoProbe probe(binding.table->pool());
  float coords[kMaxDim];
  MDS_RETURN_NOT_OK(TableSamplePages(
      *binding.table, percent, rng, [&](uint64_t, RowRef ref) -> bool {
        ++result.rows_scanned;
        ref.GetFloat32Span(binding.first_coord_col, binding.dim, coords);
        if (query.Contains(coords)) {
          result.objids.push_back(ref.GetInt64(binding.objid_col));
          if (result.objids.size() >= n) return false;  // TOP(n)
        }
        return true;
      }));
  probe.Finish(&result);
  return result;
}

Result<StorageQueryResult> StorageQueryExecutor::ExecuteVoronoi(
    const PointTableBinding& binding, const VoronoiIndex& index,
    const Polyhedron& query, VoronoiQueryStats* voronoi_stats) {
  if (binding.dim != query.dim() || binding.dim > kMaxDim) {
    return Status::InvalidArgument("ExecuteVoronoi: dimension mismatch");
  }
  VoronoiQueryStats local;
  VoronoiQueryStats* st = voronoi_stats != nullptr ? voronoi_stats : &local;
  StorageQueryResult result;
  IoProbe probe(binding.table->pool());
  float coords[kMaxDim];
  for (uint32_t c = 0; c < index.num_seeds(); ++c) {
    if (index.cell_size(c) == 0) {
      ++st->cells_outside;
      continue;
    }
    BoxClass cls = query.Classify(index.cell_bounds(c));
    if (cls == BoxClass::kOutside) {
      ++st->cells_outside;
      continue;
    }
    const uint64_t begin = index.cell_row_begin(c);
    const uint64_t end = index.cell_row_end(c);
    if (cls == BoxClass::kInside) {
      ++st->cells_inside;
      MDS_RETURN_NOT_OK(
          binding.table->ScanRange(begin, end, [&](uint64_t, RowRef ref) {
            ++result.rows_scanned;
            result.objids.push_back(ref.GetInt64(binding.objid_col));
            ++st->points_emitted;
          }));
      continue;
    }
    ++st->cells_partial;
    MDS_RETURN_NOT_OK(
        binding.table->ScanRange(begin, end, [&](uint64_t, RowRef ref) {
          ++result.rows_scanned;
          ++st->points_tested;
          ref.GetFloat32Span(binding.first_coord_col, binding.dim, coords);
          if (query.Contains(coords)) {
            result.objids.push_back(ref.GetInt64(binding.objid_col));
            ++st->points_emitted;
          }
        }));
  }
  probe.Finish(&result);
  return result;
}

}  // namespace mds
