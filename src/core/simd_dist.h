#ifndef MDS_CORE_SIMD_DIST_H_
#define MDS_CORE_SIMD_DIST_H_

#include <cstddef>
#include <cstdint>

namespace mds {

/// Runtime-dispatched SIMD kernels for the two per-row operations every
/// scan hot loop reduces to: squared Euclidean distance from one probe to
/// many clustered float rows (kd-tree leaf scans, brute-force kNN, the
/// Voronoi walk) and axis-interval containment of many rows in one box
/// (the partial-range filter).
///
/// Bit-exactness contract: every kernel produces results BIT-IDENTICAL to
/// the scalar reference (`SquaredDistance` in geom/point_set.h,
/// `Box::Contains` in geom/box.cc) on every input, including NaN and
/// infinity. The vector kernels achieve this by vectorizing ACROSS rows —
/// one vector lane per row — so each lane performs exactly the scalar
/// op sequence (promote float to double, subtract, multiply, add, in
/// dimension order) in IEEE double with no FMA contraction and no
/// reassociation. Callers may therefore switch tiers freely without
/// changing any observable result: neighbor sets, tie ordering and wire
/// bytes are invariant.
///
/// Dispatch (modeled on common/crc32c.cc): the tier is detected once via
/// cpuid, capped by environment —
///   MDS_NO_SIMD=1            force scalar
///   MDS_SIMD_TIER=scalar|sse2|avx2   cap at the named tier
/// — and can be lowered per-process by tests with SetSimdTierForTest.
/// Binaries are compiled for the baseline target; AVX2 code is emitted
/// with a function-level target attribute and only reached after the
/// cpuid check.
enum class SimdTier {
  kScalar = 0,
  kSse2 = 1,  ///< 2 double lanes (baseline on x86-64)
  kAvx2 = 2,  ///< 4 double lanes
};

/// The tier kernels currently dispatch to (detection ∧ env cap ∧ test cap).
SimdTier ActiveSimdTier();

/// Lowers (never raises beyond hardware) the dispatch tier; pass the value
/// returned by ActiveSimdTier() at startup to restore. Not thread-safe
/// against concurrent kernel calls — test setup only.
void SetSimdTierForTest(SimdTier tier);

const char* SimdTierName(SimdTier tier);

/// d2[i] = squared distance from probe `p` (dim doubles) to the i-th of
/// `n` contiguous float rows at `rows + i*dim`.
void SquaredDistanceBatch(const double* p, const float* rows, size_t n,
                          size_t dim, double* d2);

/// d2[i] = squared distance from `p` to row ids[i] of the row-major float
/// table `points` (the clustered-order gather of a kd-tree leaf scan).
void SquaredDistanceGather(const double* p, const float* points,
                           const uint64_t* ids, size_t n, size_t dim,
                           double* d2);
/// Same with 32-bit ids (Voronoi seed-graph neighbors).
void SquaredDistanceGather(const double* p, const float* points,
                           const uint32_t* ids, size_t n, size_t dim,
                           double* d2);

/// mask[i] = 1 iff row i lies in [lo, hi] on every axis, with exactly
/// Box::Contains semantics: the test is `!(v < lo) && !(v > hi)` per
/// axis, so a NaN coordinate compares false on both sides and the row
/// counts as contained.
void BoxContainsBatch(const double* lo, const double* hi, const float* rows,
                      size_t n, size_t dim, uint8_t* mask);

}  // namespace mds

#endif  // MDS_CORE_SIMD_DIST_H_
