#include "core/layered_grid.h"

#include <algorithm>
#include <cmath>

namespace mds {

namespace {

/// Cell coordinate of x on a grid of `res` cells over [lo, hi].
int64_t CellCoord(double x, double lo, double hi, uint32_t res) {
  double t = (x - lo) / (hi - lo);
  int64_t c = static_cast<int64_t>(t * res);
  if (c < 0) c = 0;
  if (c >= res) c = res - 1;
  return c;
}

}  // namespace

Result<LayeredGridIndex> LayeredGridIndex::Build(
    const PointSet* points, const LayeredGridConfig& config) {
  const uint64_t n = points->size();
  const size_t d = points->dim();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("LayeredGridIndex::Build: empty point set");
  }
  // Cap the layer count so cell ids fit the 48-bit field of EncodeKey
  // (resolution 2^layers per axis, d axes).
  uint32_t max_layers = config.max_layers;
  if (d * max_layers >= 48) {
    max_layers = static_cast<uint32_t>(47 / d);
  }
  if (max_layers == 0) {
    return Status::InvalidArgument(
        "LayeredGridIndex::Build: dimension too high for cell id encoding");
  }
  LayeredGridIndex index;
  index.points_ = points;
  index.bounds_ = Box::Bounding(*points);
  // A degenerate axis (all points equal) would divide by zero in CellOf.
  for (size_t j = 0; j < d; ++j) {
    if (index.bounds_.hi(j) <= index.bounds_.lo(j)) {
      index.bounds_.set_hi(j, index.bounds_.lo(j) + 1.0);
    }
  }

  // RandomID: the random permutation column.
  Rng rng(config.seed);
  std::vector<uint64_t> perm = rng.Permutation(n);
  index.random_id_.resize(n);
  for (uint64_t pos = 0; pos < n; ++pos) {
    index.random_id_[perm[pos]] = static_cast<int64_t>(pos);
  }

  // Layer sizes: base, base*2^d, base*4^d, ... last layer absorbs the rest.
  const uint64_t mult = uint64_t{1} << d;
  std::vector<uint64_t> layer_sizes;
  uint64_t assigned = 0;
  uint64_t size = config.base_layer_points;
  while (assigned < n) {
    if (layer_sizes.size() + 1 == max_layers || assigned + size >= n) {
      layer_sizes.push_back(n - assigned);
      assigned = n;
    } else {
      layer_sizes.push_back(size);
      assigned += size;
      size *= mult;
    }
  }

  index.layer_of_.resize(n);
  index.contained_by_.resize(n);
  uint64_t pos = 0;
  for (uint32_t l = 0; l < layer_sizes.size(); ++l) {
    const uint32_t res = uint32_t{1} << (l + 1);
    for (uint64_t i = 0; i < layer_sizes[l]; ++i, ++pos) {
      uint64_t id = perm[pos];
      index.layer_of_[id] = static_cast<int32_t>(l + 1);
      const float* pnt = points->point(id);
      int64_t cell = 0;
      for (size_t j = d; j-- > 0;) {
        cell = cell * res + CellCoord(pnt[j], index.bounds_.lo(j),
                                      index.bounds_.hi(j), res);
      }
      index.contained_by_[id] = cell;
    }
  }

  // Clustered order: sort by (Layer, ContainedBy, RandomID).
  index.clustered_order_.resize(n);
  for (uint64_t i = 0; i < n; ++i) index.clustered_order_[i] = i;
  std::sort(index.clustered_order_.begin(), index.clustered_order_.end(),
            [&](uint64_t a, uint64_t b) {
              if (index.layer_of_[a] != index.layer_of_[b]) {
                return index.layer_of_[a] < index.layer_of_[b];
              }
              if (index.contained_by_[a] != index.contained_by_[b]) {
                return index.contained_by_[a] < index.contained_by_[b];
              }
              return index.random_id_[a] < index.random_id_[b];
            });

  // Per-layer cell directories.
  index.layers_.resize(layer_sizes.size());
  uint64_t row = 0;
  for (uint32_t l = 0; l < layer_sizes.size(); ++l) {
    Layer& layer = index.layers_[l];
    layer.resolution = uint32_t{1} << (l + 1);
    layer.row_begin = row;
    layer.row_end = row + layer_sizes[l];
    uint64_t r = layer.row_begin;
    while (r < layer.row_end) {
      int64_t cell = index.contained_by_[index.clustered_order_[r]];
      uint64_t begin = r;
      while (r < layer.row_end &&
             index.contained_by_[index.clustered_order_[r]] == cell) {
        ++r;
      }
      layer.cells.push_back(CellRange{cell, begin, r});
    }
    row = layer.row_end;
  }
  return index;
}

int64_t LayeredGridIndex::CellOf(const float* p, uint32_t l) const {
  const uint32_t res = layers_[l].resolution;
  int64_t cell = 0;
  for (size_t j = dim(); j-- > 0;) {
    cell = cell * res + CellCoord(p[j], bounds_.lo(j), bounds_.hi(j), res);
  }
  return cell;
}

int64_t LayeredGridIndex::CellOf(const double* p, uint32_t l) const {
  const uint32_t res = layers_[l].resolution;
  int64_t cell = 0;
  for (size_t j = dim(); j-- > 0;) {
    cell = cell * res + CellCoord(p[j], bounds_.lo(j), bounds_.hi(j), res);
  }
  return cell;
}

void LayeredGridIndex::CellRangesFor(const Box& q, uint32_t l,
                                     std::vector<CellRange>* out) const {
  const Layer& layer = layers_[l];
  const uint32_t res = layer.resolution;
  const size_t d = dim();
  // Cell coordinate interval intersecting q along each axis.
  std::vector<int64_t> clo(d), chi(d);
  for (size_t j = 0; j < d; ++j) {
    if (q.hi(j) < bounds_.lo(j) || q.lo(j) > bounds_.hi(j)) return;
    clo[j] = CellCoord(q.lo(j), bounds_.lo(j), bounds_.hi(j), res);
    chi[j] = CellCoord(q.hi(j), bounds_.lo(j), bounds_.hi(j), res);
  }
  // Enumerate the lattice box of intersecting cells; for each, look up its
  // row range (cells with no points are absent from the directory).
  std::vector<int64_t> coord(clo);
  for (;;) {
    int64_t cell = 0;
    for (size_t j = d; j-- > 0;) cell = cell * res + coord[j];
    auto it = std::lower_bound(
        layer.cells.begin(), layer.cells.end(), cell,
        [](const CellRange& cr, int64_t c) { return cr.cell < c; });
    if (it != layer.cells.end() && it->cell == cell) out->push_back(*it);
    // Odometer increment.
    size_t j = 0;
    while (j < d) {
      if (++coord[j] <= chi[j]) break;
      coord[j] = clo[j];
      ++j;
    }
    if (j == d) break;
  }
}

Status LayeredGridIndex::SampleQuery(const Box& q, uint64_t n,
                                     std::vector<uint64_t>* out,
                                     GridQueryStats* stats) const {
  return SampleQueryStream(
      q, n, [&](uint64_t id, uint32_t) { out->push_back(id); }, stats);
}

}  // namespace mds
