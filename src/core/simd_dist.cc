#include "core/simd_dist.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "geom/point_set.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define MDS_SIMD_HAVE_X86 1
#endif

namespace mds {

namespace {

// --- scalar reference paths --------------------------------------------------

void DistBatchScalar(const double* p, const float* rows, size_t n, size_t dim,
                     double* d2) {
  for (size_t i = 0; i < n; ++i) {
    d2[i] = SquaredDistance(p, rows + i * dim, dim);
  }
}

template <typename Id>
void DistGatherScalar(const double* p, const float* points, const Id* ids,
                      size_t n, size_t dim, double* d2) {
  for (size_t i = 0; i < n; ++i) {
    d2[i] = SquaredDistance(p, points + static_cast<size_t>(ids[i]) * dim,
                            dim);
  }
}

void BoxScalar(const double* lo, const double* hi, const float* rows,
               size_t n, size_t dim, uint8_t* mask) {
  for (size_t i = 0; i < n; ++i) {
    const float* r = rows + i * dim;
    uint8_t in = 1;
    for (size_t j = 0; j < dim; ++j) {
      const double v = r[j];
      if (v < lo[j] || v > hi[j]) {
        in = 0;
        break;
      }
    }
    mask[i] = in;
  }
}

#if defined(MDS_SIMD_HAVE_X86)

// --- SSE2 tier (baseline on x86-64): 2 double lanes --------------------------
//
// Lane-per-row layout: lane l accumulates the full scalar op sequence for
// row i+l. Per dimension the two rows' floats are promoted and combined
// with sub/mul/add in double — the identical IEEE operations, in the
// identical order, as the scalar loop, so every lane is bit-exact. No
// horizontal reduction ever happens.

inline __m128d Promote2(const float* r0, const float* r1, size_t j) {
  return _mm_setr_pd(static_cast<double>(r0[j]), static_cast<double>(r1[j]));
}

void Dist2Rows(const double* p, const float* r0, const float* r1, size_t dim,
               double* out) {
  __m128d acc = _mm_setzero_pd();
  for (size_t j = 0; j < dim; ++j) {
    const __m128d pv = _mm_set1_pd(p[j]);
    const __m128d diff = _mm_sub_pd(pv, Promote2(r0, r1, j));
    acc = _mm_add_pd(acc, _mm_mul_pd(diff, diff));
  }
  _mm_storeu_pd(out, acc);
}

void DistBatchSse2(const double* p, const float* rows, size_t n, size_t dim,
                   double* d2) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    Dist2Rows(p, rows + i * dim, rows + (i + 1) * dim, dim, d2 + i);
  }
  for (; i < n; ++i) d2[i] = SquaredDistance(p, rows + i * dim, dim);
}

template <typename Id>
void DistGatherSse2(const double* p, const float* points, const Id* ids,
                    size_t n, size_t dim, double* d2) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    Dist2Rows(p, points + static_cast<size_t>(ids[i]) * dim,
              points + static_cast<size_t>(ids[i + 1]) * dim, dim, d2 + i);
  }
  for (; i < n; ++i) {
    d2[i] = SquaredDistance(p, points + static_cast<size_t>(ids[i]) * dim,
                            dim);
  }
}

void BoxSse2(const double* lo, const double* hi, const float* rows, size_t n,
             size_t dim, uint8_t* mask) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float* r0 = rows + i * dim;
    const float* r1 = rows + (i + 1) * dim;
    // Box::Contains semantics via unordered-quiet compares: inside on an
    // axis is !(v < lo) && !(v > hi); cmpnlt/cmpnle return true for NaN,
    // so NaN coordinates count as contained, exactly like the scalar.
    __m128d in = _mm_castsi128_pd(_mm_set1_epi64x(-1));
    for (size_t j = 0; j < dim; ++j) {
      const __m128d v = Promote2(r0, r1, j);
      const __m128d ge_lo = _mm_cmpnlt_pd(v, _mm_set1_pd(lo[j]));
      const __m128d le_hi = _mm_cmpngt_pd(v, _mm_set1_pd(hi[j]));
      in = _mm_and_pd(in, _mm_and_pd(ge_lo, le_hi));
    }
    const int bits = _mm_movemask_pd(in);
    mask[i] = static_cast<uint8_t>(bits & 1);
    mask[i + 1] = static_cast<uint8_t>((bits >> 1) & 1);
  }
  if (i < n) BoxScalar(lo, hi, rows + i * dim, n - i, dim, mask + i);
}

// --- AVX2 tier: 4 double lanes, reached only after a cpuid check -------------

__attribute__((target("avx2"))) inline __m256d Promote4(const float* r0,
                                                        const float* r1,
                                                        const float* r2,
                                                        const float* r3,
                                                        size_t j) {
  return _mm256_setr_pd(static_cast<double>(r0[j]), static_cast<double>(r1[j]),
                        static_cast<double>(r2[j]),
                        static_cast<double>(r3[j]));
}

__attribute__((target("avx2"))) void Dist4Rows(const double* p,
                                               const float* r0,
                                               const float* r1,
                                               const float* r2,
                                               const float* r3, size_t dim,
                                               double* out) {
  __m256d acc = _mm256_setzero_pd();
  size_t j = 0;
  // Four dimensions per step: load 4 floats of each row, transpose to
  // per-dimension vectors, promote with cvtps_pd (exact, like the scalar
  // float->double promotion) and accumulate in dimension order — the
  // per-lane op sequence is still exactly the scalar one. The transpose
  // replaces 16 scalar loads + inserts per step with 4 loads + shuffles.
  for (; j + 4 <= dim; j += 4) {
    __m128 a0 = _mm_loadu_ps(r0 + j);
    __m128 a1 = _mm_loadu_ps(r1 + j);
    __m128 a2 = _mm_loadu_ps(r2 + j);
    __m128 a3 = _mm_loadu_ps(r3 + j);
    _MM_TRANSPOSE4_PS(a0, a1, a2, a3);
    const __m128 cols[4] = {a0, a1, a2, a3};
    for (int c = 0; c < 4; ++c) {
      const __m256d pv = _mm256_set1_pd(p[j + static_cast<size_t>(c)]);
      const __m256d diff = _mm256_sub_pd(pv, _mm256_cvtps_pd(cols[c]));
      // Explicit mul-then-add (not fmadd): FMA's unrounded intermediate
      // would diverge from the scalar reference in the last ulp.
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
  }
  for (; j < dim; ++j) {
    const __m256d pv = _mm256_set1_pd(p[j]);
    const __m256d diff = _mm256_sub_pd(pv, Promote4(r0, r1, r2, r3, j));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
  }
  _mm256_storeu_pd(out, acc);
}

__attribute__((target("avx2"))) void DistBatchAvx2(const double* p,
                                                   const float* rows,
                                                   size_t n, size_t dim,
                                                   double* d2) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* base = rows + i * dim;
    Dist4Rows(p, base, base + dim, base + 2 * dim, base + 3 * dim, dim,
              d2 + i);
  }
  for (; i < n; ++i) d2[i] = SquaredDistance(p, rows + i * dim, dim);
}

template <typename Id>
__attribute__((target("avx2"))) void DistGatherAvx2(const double* p,
                                                    const float* points,
                                                    const Id* ids, size_t n,
                                                    size_t dim, double* d2) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (i + 12 <= n) {
      // Rows land at id-driven (effectively random) addresses; prefetch
      // two iterations ahead so the loads overlap the arithmetic.
      _mm_prefetch(reinterpret_cast<const char*>(
                       points + static_cast<size_t>(ids[i + 8]) * dim),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(
                       points + static_cast<size_t>(ids[i + 9]) * dim),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(
                       points + static_cast<size_t>(ids[i + 10]) * dim),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(
                       points + static_cast<size_t>(ids[i + 11]) * dim),
                   _MM_HINT_T0);
    }
    Dist4Rows(p, points + static_cast<size_t>(ids[i]) * dim,
              points + static_cast<size_t>(ids[i + 1]) * dim,
              points + static_cast<size_t>(ids[i + 2]) * dim,
              points + static_cast<size_t>(ids[i + 3]) * dim, dim, d2 + i);
  }
  for (; i < n; ++i) {
    d2[i] = SquaredDistance(p, points + static_cast<size_t>(ids[i]) * dim,
                            dim);
  }
}

__attribute__((target("avx2"))) void BoxAvx2(const double* lo,
                                             const double* hi,
                                             const float* rows, size_t n,
                                             size_t dim, uint8_t* mask) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float* r0 = rows + i * dim;
    const float* r1 = r0 + dim;
    const float* r2 = r1 + dim;
    const float* r3 = r2 + dim;
    __m256d in = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    for (size_t j = 0; j < dim; ++j) {
      const __m256d v = Promote4(r0, r1, r2, r3, j);
      // NLT_UQ / NGT_UQ: true on NaN, matching scalar `!(v<lo) && !(v>hi)`.
      const __m256d ge_lo =
          _mm256_cmp_pd(v, _mm256_set1_pd(lo[j]), _CMP_NLT_UQ);
      const __m256d le_hi =
          _mm256_cmp_pd(v, _mm256_set1_pd(hi[j]), _CMP_NGT_UQ);
      in = _mm256_and_pd(in, _mm256_and_pd(ge_lo, le_hi));
    }
    const int bits = _mm256_movemask_pd(in);
    mask[i] = static_cast<uint8_t>(bits & 1);
    mask[i + 1] = static_cast<uint8_t>((bits >> 1) & 1);
    mask[i + 2] = static_cast<uint8_t>((bits >> 2) & 1);
    mask[i + 3] = static_cast<uint8_t>((bits >> 3) & 1);
  }
  if (i < n) BoxScalar(lo, hi, rows + i * dim, n - i, dim, mask + i);
}

bool CpuHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }

#endif  // MDS_SIMD_HAVE_X86

SimdTier HardwareTier() {
#if defined(MDS_SIMD_HAVE_X86)
  return CpuHasAvx2() ? SimdTier::kAvx2 : SimdTier::kSse2;
#else
  return SimdTier::kScalar;
#endif
}

/// Detection ∧ environment cap, computed once.
SimdTier DetectTier() {
  SimdTier tier = HardwareTier();
  const char* no_simd = std::getenv("MDS_NO_SIMD");
  if (no_simd != nullptr && no_simd[0] == '1') return SimdTier::kScalar;
  const char* cap = std::getenv("MDS_SIMD_TIER");
  if (cap != nullptr) {
    const std::string s(cap);
    if (s == "scalar") {
      tier = SimdTier::kScalar;
    } else if (s == "sse2" && tier > SimdTier::kSse2) {
      tier = SimdTier::kSse2;
    }
    // "avx2" (or anything else) never raises past hardware.
  }
  return tier;
}

std::atomic<int>& TierCell() {
  static std::atomic<int> tier{static_cast<int>(DetectTier())};
  return tier;
}

}  // namespace

SimdTier ActiveSimdTier() {
  return static_cast<SimdTier>(TierCell().load(std::memory_order_relaxed));
}

void SetSimdTierForTest(SimdTier tier) {
  // Clamp to the startup tier (hardware ∧ env caps), not raw hardware:
  // MDS_NO_SIMD / MDS_SIMD_TIER promise the process never runs above the
  // capped tier, and a test helper must not be able to break that.
  static const SimdTier kCeiling = DetectTier();
  if (tier > kCeiling) tier = kCeiling;
  TierCell().store(static_cast<int>(tier), std::memory_order_relaxed);
}

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kSse2: return "sse2";
    case SimdTier::kAvx2: return "avx2";
  }
  return "unknown";
}

void SquaredDistanceBatch(const double* p, const float* rows, size_t n,
                          size_t dim, double* d2) {
  switch (ActiveSimdTier()) {
#if defined(MDS_SIMD_HAVE_X86)
    case SimdTier::kAvx2:
      DistBatchAvx2(p, rows, n, dim, d2);
      return;
    case SimdTier::kSse2:
      DistBatchSse2(p, rows, n, dim, d2);
      return;
#endif
    default:
      DistBatchScalar(p, rows, n, dim, d2);
  }
}

void SquaredDistanceGather(const double* p, const float* points,
                           const uint64_t* ids, size_t n, size_t dim,
                           double* d2) {
  switch (ActiveSimdTier()) {
#if defined(MDS_SIMD_HAVE_X86)
    case SimdTier::kAvx2:
      DistGatherAvx2(p, points, ids, n, dim, d2);
      return;
    case SimdTier::kSse2:
      DistGatherSse2(p, points, ids, n, dim, d2);
      return;
#endif
    default:
      DistGatherScalar(p, points, ids, n, dim, d2);
  }
}

void SquaredDistanceGather(const double* p, const float* points,
                           const uint32_t* ids, size_t n, size_t dim,
                           double* d2) {
  switch (ActiveSimdTier()) {
#if defined(MDS_SIMD_HAVE_X86)
    case SimdTier::kAvx2:
      DistGatherAvx2(p, points, ids, n, dim, d2);
      return;
    case SimdTier::kSse2:
      DistGatherSse2(p, points, ids, n, dim, d2);
      return;
#endif
    default:
      DistGatherScalar(p, points, ids, n, dim, d2);
  }
}

void BoxContainsBatch(const double* lo, const double* hi, const float* rows,
                      size_t n, size_t dim, uint8_t* mask) {
  switch (ActiveSimdTier()) {
#if defined(MDS_SIMD_HAVE_X86)
    case SimdTier::kAvx2:
      BoxAvx2(lo, hi, rows, n, dim, mask);
      return;
    case SimdTier::kSse2:
      BoxSse2(lo, hi, rows, n, dim, mask);
      return;
#endif
    default:
      BoxScalar(lo, hi, rows, n, dim, mask);
  }
}

}  // namespace mds
