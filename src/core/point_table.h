#ifndef MDS_CORE_POINT_TABLE_H_
#define MDS_CORE_POINT_TABLE_H_

#include <vector>

#include "common/result.h"
#include "core/query_engine.h"
#include "storage/bplus_tree.h"
#include "geom/point_set.h"
#include "storage/table.h"

namespace mds {

/// Schema of a generic stored point table: objID plus d float coordinate
/// columns.
Schema PointTableSchema(size_t dim);

/// Materializes `points` into a table in the order given by `order` (the
/// clustered order of an index; empty means natural order). Column 0 holds
/// the original point id.
Result<Table> MaterializePointTable(BufferPool* pool, const PointSet& points,
                                    const std::vector<uint64_t>& order);

/// Binding of a table produced by MaterializePointTable.
inline PointTableBinding BindPointTable(const Table* table, size_t dim) {
  return PointTableBinding{table, 0, 1, dim};
}

/// Builds a B+-tree secondary index mapping objID -> row id over a point
/// table (any row order). The nonclustered-index analog: spatial queries
/// return objIDs, and this index joins them back to stored rows without a
/// table scan.
Result<BPlusTree> BuildObjIdIndex(BufferPool* pool, const Table& table);

/// Fetches the row of one objID through the secondary index; writes the
/// coordinates to `out` (dim floats). Fails with NotFound for unknown ids.
Status LookupByObjId(const Table& table, const BPlusTree& index,
                     int64_t objid, float* out, size_t dim);

}  // namespace mds

#endif  // MDS_CORE_POINT_TABLE_H_
