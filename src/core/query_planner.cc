#include "core/query_planner.h"

namespace mds {

QueryPlanner& QueryPlanner::AddPath(std::unique_ptr<AccessPath> path) {
  paths_.push_back(std::move(path));
  return *this;
}

Result<size_t> QueryPlanner::ChooseBest() const {
  size_t best = paths_.size();
  double best_cost = 0.0;
  for (size_t i = 0; i < paths_.size(); ++i) {
    if (!paths_[i]->Validate().ok()) continue;
    const CostEstimate estimate = paths_[i]->Estimate();
    if (!estimate.feasible) continue;
    const double cost = estimate.Total();
    if (best == paths_.size() || cost < best_cost) {
      best = i;
      best_cost = cost;
    }
  }
  if (best == paths_.size()) {
    return Status::InvalidArgument("QueryPlanner: no feasible access path");
  }
  return best;
}

std::vector<QueryPlanner::Candidate> QueryPlanner::ExplainAll() const {
  std::vector<Candidate> out;
  out.reserve(paths_.size());
  for (const auto& path : paths_) {
    out.push_back(Candidate{path->name(), path->Estimate()});
  }
  return out;
}

Result<StorageQueryResult> QueryPlanner::Execute(QueryStats* stats,
                                                 std::string* chosen) {
  MDS_ASSIGN_OR_RETURN(size_t best, ChooseBest());
  if (chosen != nullptr) *chosen = paths_[best]->name();
  return ExecuteAccessPath(paths_[best].get(), stats);
}

}  // namespace mds
