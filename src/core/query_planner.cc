#include "core/query_planner.h"

#include <algorithm>
#include <utility>

namespace mds {

QueryPlanner& QueryPlanner::AddPath(std::unique_ptr<AccessPath> path) {
  paths_.push_back(std::move(path));
  return *this;
}

Result<size_t> QueryPlanner::ChooseBest() const {
  size_t best = paths_.size();
  double best_cost = 0.0;
  for (size_t i = 0; i < paths_.size(); ++i) {
    if (!paths_[i]->Validate().ok()) continue;
    const CostEstimate estimate = paths_[i]->Estimate();
    if (!estimate.feasible) continue;
    const double cost = estimate.Total();
    if (best == paths_.size() || cost < best_cost) {
      best = i;
      best_cost = cost;
    }
  }
  if (best == paths_.size()) {
    return Status::InvalidArgument("QueryPlanner: no feasible access path");
  }
  return best;
}

std::vector<QueryPlanner::Candidate> QueryPlanner::ExplainAll() const {
  std::vector<Candidate> out;
  out.reserve(paths_.size());
  for (const auto& path : paths_) {
    out.push_back(Candidate{path->name(), path->Estimate()});
  }
  return out;
}

Result<StorageQueryResult> QueryPlanner::Execute(QueryStats* stats,
                                                 std::string* chosen) {
  return Execute(ExecuteOptions{}, stats, chosen);
}

Result<StorageQueryResult> QueryPlanner::Execute(const ExecuteOptions& options,
                                                 QueryStats* stats,
                                                 std::string* chosen) {
  // Rank every feasible path by estimated cost; execution walks this order
  // so a corruption fallback lands on the next-cheapest alternative.
  std::vector<std::pair<double, size_t>> order;
  for (size_t i = 0; i < paths_.size(); ++i) {
    if (!options.required_path.empty() &&
        options.required_path != paths_[i]->name()) {
      continue;
    }
    if (!paths_[i]->Validate().ok()) continue;
    const CostEstimate estimate = paths_[i]->Estimate();
    if (!estimate.feasible) continue;
    order.emplace_back(estimate.Total(), i);
  }
  if (order.empty()) {
    if (!options.required_path.empty()) {
      return Status::InvalidArgument(
          "QueryPlanner: required path '" + options.required_path +
          "' is not registered or not feasible");
    }
    return Status::InvalidArgument("QueryPlanner: no feasible access path");
  }
  std::sort(order.begin(), order.end());

  Status last;
  bool fell_back = false;
  for (const auto& [cost, i] : order) {
    Result<StorageQueryResult> attempt =
        ExecuteAccessPath(paths_[i].get(), options.scan, stats);
    if (attempt.ok()) {
      if (chosen != nullptr) *chosen = paths_[i]->name();
      StorageQueryResult result = std::move(*attempt);
      if (fell_back) {
        // The answer is trustworthy (this path verified clean) but the
        // query did hit corruption en route; surface that to the caller.
        result.degraded = true;
        if (stats != nullptr) stats->degraded = true;
      }
      return result;
    }
    last = attempt.status();
    if (!options.fallback_on_corruption ||
        last.code() != StatusCode::kCorruption) {
      return last;
    }
    fell_back = true;
  }
  return AnnotateStatus(last, "QueryPlanner: every access path failed");
}

}  // namespace mds
