#ifndef MDS_CORE_ACCESS_PATH_H_
#define MDS_CORE_ACCESS_PATH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/kdtree.h"
#include "core/layered_grid.h"
#include "core/voronoi_index.h"
#include "geom/predicate.h"
#include "storage/range_scanner.h"
#include "storage/table.h"

namespace mds {

/// Binds a stored point table to the query engine: which column carries
/// the original object id and where the coordinate columns start.
struct PointTableBinding {
  const Table* table = nullptr;
  size_t objid_col = 0;
  size_t first_coord_col = 1;
  size_t dim = 0;
};

/// I/O-level result of a storage-backed query.
struct StorageQueryResult {
  std::vector<int64_t> objids;
  uint64_t rows_scanned = 0;
  uint64_t pages_read = 0;     ///< physical page reads during the query
  uint64_t pages_fetched = 0;  ///< logical page fetches (hits + misses)

  /// Degradation contract: when `degraded` is true the result is an
  /// explicitly partial answer — `pages_skipped` clustered pages failed
  /// checksum verification and their rows are absent. A non-degraded
  /// result is complete (or the query returned a non-OK Status instead).
  uint64_t pages_skipped = 0;
  bool degraded = false;
};

/// Cost of one access path for one query, estimated from index metadata
/// only (node counts, cell directories, table page counts) — no row is
/// touched while estimating.
struct CostEstimate {
  double page_fetches = 0;  ///< expected logical page fetches
  double ranges = 0;        ///< discontiguous ranges (seek-equivalents)
  double planning = 0;      ///< index metadata units examined while planning
  bool feasible = true;     ///< false: this path cannot answer the query

  /// Comparison scalar: pages dominate, each discontiguous range costs
  /// about half a page of seek overhead, and planning work breaks ties —
  /// so a full scan beats an index plan that would touch every page
  /// anyway (the paper's returned/total ~ 0.25 crossover, Figure 5).
  double Total() const {
    return page_fetches + 0.5 * ranges + 1e-3 * planning;
  }
};

/// One way of executing a spatial query against a stored point table.
///
/// An access path is a per-query object: it is constructed from (binding,
/// index, query), can estimate its cost from index metadata, and emits its
/// physical plan as a sequence of PlanSteps of tagged row ranges that the
/// shared RangeScanner executes. Paths never touch pages themselves — all
/// physical I/O happens in the scanner, which is what makes per-query
/// instrumentation uniform across every index.
///
/// The referenced table, index and query must outlive the path. A path is
/// single-use: once NextStep has returned false it is exhausted.
class AccessPath {
 public:
  virtual ~AccessPath() = default;

  /// Display name ("full-scan", "kd-tree", ...).
  virtual const char* name() const = 0;

  /// Checks the binding/query combination before any page is touched.
  virtual Status Validate() const;

  /// Metadata-only cost estimate, used by QueryPlanner.
  virtual CostEstimate Estimate() const = 0;

  /// Emits the next batch of candidate ranges into `step` (cleared first).
  /// Returns false when the plan is exhausted. `stats` carries progress
  /// from prior steps (rows_emitted lets adaptive paths stop early) and
  /// receives this step's planning counters.
  virtual bool NextStep(QueryStats* stats, PlanStep* step) = 0;

  const PointTableBinding& binding() const { return binding_; }
  const SpatialPredicate& predicate() const { return *predicate_; }

  /// TOP(n) row limit; 0 means unlimited.
  virtual uint64_t limit() const { return 0; }

 protected:
  AccessPath(const PointTableBinding& binding,
             const SpatialPredicate* predicate)
      : binding_(binding), predicate_(predicate) {}

  double TablePages() const {
    return static_cast<double>(binding_.table->num_pages());
  }
  double PagesSpanned(uint64_t rows) const;

  PointTableBinding binding_;
  const SpatialPredicate* predicate_;
};

/// The paper's "simple SQL query" baseline: one partial range covering the
/// whole table.
class FullScanPath final : public AccessPath {
 public:
  FullScanPath(const PointTableBinding& binding, const Polyhedron& query);
  FullScanPath(const PointTableBinding& binding, const Box& query);

  const char* name() const override { return "full-scan"; }
  CostEstimate Estimate() const override;
  bool NextStep(QueryStats* stats, PlanStep* step) override;

 private:
  std::unique_ptr<SpatialPredicate> owned_predicate_;
  bool done_ = false;
};

/// §3.2: fully-contained subtrees become `full` BETWEEN ranges over the
/// leaf-clustered row order; straddling leaves become `partial` ranges.
class KdTreePath final : public AccessPath {
 public:
  KdTreePath(const PointTableBinding& binding, const KdTreeIndex& index,
             const Polyhedron& query);

  const char* name() const override { return "kd-tree"; }
  CostEstimate Estimate() const override;
  bool NextStep(QueryStats* stats, PlanStep* step) override;

  const KdQueryStats& plan_stats() const { return plan_stats_; }

 private:
  PolyhedronPredicate polyhedron_predicate_;
  std::vector<RowRange> ranges_;  // disjoint, ascending by row position
  KdQueryStats plan_stats_;
  uint64_t candidate_rows_ = 0;
  bool done_ = false;
};

/// §3.1 sample query: one step per layer, coarse to fine; cells wholly
/// inside the query box are emitted as `full` ranges, straddling cells as
/// `partial`. The walk halts at the end of the first layer where at least
/// n rows have been emitted (the paper's "at least n points" semantics).
class GridSamplePath final : public AccessPath {
 public:
  GridSamplePath(const PointTableBinding& binding,
                 const LayeredGridIndex& index, const Box& query, uint64_t n);

  const char* name() const override { return "layered-grid"; }
  CostEstimate Estimate() const override;
  bool NextStep(QueryStats* stats, PlanStep* step) override;

 private:
  /// Bounding box of cell `cell` of layer `l`, shrunk by a hair so the
  /// `full` classification stays conservative under float rounding.
  Box CellBox(uint32_t l, int64_t cell) const;

  BoxPredicate box_predicate_;
  const LayeredGridIndex* index_;
  const Box* query_;
  uint64_t n_;
  uint32_t next_layer_ = 0;
  std::vector<LayeredGridIndex::CellRange> cell_scratch_;
};

/// §3.4: Voronoi cells classified inside / outside / partial from their
/// tight bounding boxes; inside cells are `full` tag ranges.
class VoronoiPath final : public AccessPath {
 public:
  VoronoiPath(const PointTableBinding& binding, const VoronoiIndex& index,
              const Polyhedron& query);

  const char* name() const override { return "voronoi"; }
  CostEstimate Estimate() const override;
  bool NextStep(QueryStats* stats, PlanStep* step) override;

 private:
  void Classify();

  PolyhedronPredicate polyhedron_predicate_;
  const VoronoiIndex* index_;
  std::vector<RowRange> ranges_;
  uint64_t cells_full_ = 0;
  uint64_t cells_partial_ = 0;
  uint64_t cells_pruned_ = 0;
  uint64_t candidate_rows_ = 0;
  bool classified_ = false;
  bool done_ = false;
};

/// The E3 baseline: TABLESAMPLE SYSTEM(percent) + TOP(n). Pages are drawn
/// lazily (one step per sampled page) so the RNG consumption matches the
/// SQL semantics of stopping the sample at the TOP(n) mark.
class TableSamplePath final : public AccessPath {
 public:
  TableSamplePath(const PointTableBinding& binding, const Box& query,
                  double percent, uint64_t n, Rng* rng);

  const char* name() const override { return "tablesample"; }
  Status Validate() const override;
  CostEstimate Estimate() const override;
  bool NextStep(QueryStats* stats, PlanStep* step) override;
  uint64_t limit() const override { return n_; }

 private:
  BoxPredicate box_predicate_;
  const Box* query_;
  double percent_;
  uint64_t n_;
  Rng* rng_;
  uint64_t next_page_ = 0;
};

/// Runs an access path to completion through a RangeScanner over the
/// path's bound table. Fills `stats` (optional) with the unified per-query
/// instrumentation, including the scanner's page-fetch accounting.
/// Thread-compatible: many calls may run concurrently (each builds its own
/// scanner) as long as each call owns its path object.
Result<StorageQueryResult> ExecuteAccessPath(AccessPath* path,
                                             QueryStats* stats = nullptr);

/// As above with an explicit degradation policy: pass
/// ScanOptions{.skip_corrupt_pages = true} to turn checksum failures into
/// a degraded (partial, flagged) result instead of a kCorruption error.
Result<StorageQueryResult> ExecuteAccessPath(
    AccessPath* path, const RangeScanner::ScanOptions& scan_options,
    QueryStats* stats = nullptr);

/// Intra-query parallel variant: executes the same plan through a
/// ParallelRangeScanner, which splits each PlanStep's row ranges across
/// `num_threads` workers (0 = MDS_QUERY_THREADS / hardware_concurrency).
/// Returns the identical result set and, for limit-free paths, identical
/// QueryStats to ExecuteAccessPath — see ParallelRangeScanner for the
/// merge contract.
Result<StorageQueryResult> ExecuteAccessPathParallel(
    AccessPath* path, unsigned num_threads, QueryStats* stats = nullptr);

/// Parallel variant with an explicit degradation policy.
Result<StorageQueryResult> ExecuteAccessPathParallel(
    AccessPath* path, unsigned num_threads,
    const RangeScanner::ScanOptions& scan_options, QueryStats* stats = nullptr);

}  // namespace mds

#endif  // MDS_CORE_ACCESS_PATH_H_
