#include "core/point_table.h"

#include <algorithm>
#include <string>

namespace mds {

Schema PointTableSchema(size_t dim) {
  std::vector<ColumnSpec> columns;
  columns.push_back({"objID", ColumnType::kInt64, 0});
  for (size_t j = 0; j < dim; ++j) {
    columns.push_back({"x" + std::to_string(j), ColumnType::kFloat32, 0});
  }
  return Schema(std::move(columns));
}

Result<Table> MaterializePointTable(BufferPool* pool, const PointSet& points,
                                    const std::vector<uint64_t>& order) {
  MDS_ASSIGN_OR_RETURN(Table table,
                       Table::Create(pool, PointTableSchema(points.dim())));
  RowBuilder row(&table.schema());
  // `order` may cover a subset of the points (a kd-subtree shard's
  // clustered slice); an empty order means identity over the whole set.
  const uint64_t n = order.empty() ? points.size() : order.size();
  for (uint64_t pos = 0; pos < n; ++pos) {
    uint64_t id = order.empty() ? pos : order[pos];
    row.SetInt64(0, static_cast<int64_t>(id));
    const float* p = points.point(id);
    for (size_t j = 0; j < points.dim(); ++j) {
      row.SetFloat32(1 + j, p[j]);
    }
    MDS_RETURN_NOT_OK(table.Append(row));
  }
  return table;
}

Result<BPlusTree> BuildObjIdIndex(BufferPool* pool, const Table& table) {
  std::vector<std::pair<int64_t, uint64_t>> pairs;
  pairs.reserve(table.num_rows());
  MDS_RETURN_NOT_OK(table.Scan([&](uint64_t row_id, RowRef ref) {
    pairs.emplace_back(ref.GetInt64(0), row_id);
  }));
  std::sort(pairs.begin(), pairs.end());
  return BPlusTree::BulkLoad(pool, pairs);
}

Status LookupByObjId(const Table& table, const BPlusTree& index,
                     int64_t objid, float* out, size_t dim) {
  MDS_ASSIGN_OR_RETURN(std::vector<uint64_t> rows, index.Lookup(objid));
  if (rows.empty()) {
    return Status::NotFound("LookupByObjId: unknown objID");
  }
  std::vector<uint8_t> buf(table.schema().row_size());
  MDS_RETURN_NOT_OK(table.ReadRow(rows.front(), buf.data()));
  RowRef ref(&table.schema(), buf.data());
  ref.GetFloat32Span(1, dim, out);
  return Status::OK();
}

}  // namespace mds
