#ifndef MDS_CORE_LAYERED_GRID_H_
#define MDS_CORE_LAYERED_GRID_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "geom/box.h"
#include "geom/point_set.h"

namespace mds {

/// Build options for the layered uniform grid of §3.1.
struct LayeredGridConfig {
  /// Points on the first layer; layer l holds base_layer_points * (2^d)^(l-1)
  /// so the expected points-per-cell stays constant across layers (128 in
  /// the paper's 3-D setup: 1024 points on a 2x2x2 grid, 8*1024 on 4x4x4...).
  uint64_t base_layer_points = 1024;
  /// Permutation seed for the RandomID column.
  uint64_t seed = 1;
  /// Upper bound on layers (grid resolution 2^max_layers per axis must keep
  /// cell ids in int64). The final layer absorbs all remaining points.
  uint32_t max_layers = 15;
};

/// Per-query counters for E2/E3.
struct GridQueryStats {
  uint32_t layers_visited = 0;
  uint64_t cells_visited = 0;
  uint64_t points_scanned = 0;   ///< rows read from candidate cells
  uint64_t points_returned = 0;  ///< rows inside the query box
};

/// The layered uniform grid index.
///
/// Build: points get a RandomID (a random permutation), the first
/// base_layer_points go to layer 1, the next 2^d * base_layer_points to
/// layer 2, and so on; layer l is cut by a uniform 2^l-per-axis grid and
/// every point is tagged with its cell (ContainedBy). Rows clustered by
/// (Layer, ContainedBy) make each cell a contiguous row range, so a sample
/// query reads (almost) only pages holding returned points.
///
/// Query(q, n): walk layers from coarse to fine, fetching the points of
/// cells intersecting q and keeping those inside q, until at least n points
/// have been found. Each layer is an unbiased random sample of the data, so
/// the returned set follows the underlying distribution at any zoom level —
/// the property TABLESAMPLE + TOP(n) lacks (E3).
class LayeredGridIndex {
 public:
  struct CellRange {
    int64_t cell = 0;        ///< ContainedBy value
    uint64_t row_begin = 0;  ///< clustered row range of the cell
    uint64_t row_end = 0;
  };

  struct Layer {
    uint32_t resolution = 0;  ///< cells per axis (2^layer)
    uint64_t row_begin = 0;   ///< clustered rows of the whole layer
    uint64_t row_end = 0;
    std::vector<CellRange> cells;  ///< sorted by cell id
  };

  static Result<LayeredGridIndex> Build(const PointSet* points,
                                        const LayeredGridConfig& config = {});

  size_t dim() const { return points_->dim(); }
  uint32_t num_layers() const { return static_cast<uint32_t>(layers_.size()); }
  const Layer& layer(uint32_t l) const { return layers_[l]; }
  const Box& bounding_box() const { return bounds_; }

  /// Clustered row order: clustered_order()[pos] = original point id. Rows
  /// are sorted by (Layer, ContainedBy, RandomID).
  const std::vector<uint64_t>& clustered_order() const {
    return clustered_order_;
  }

  /// The three added columns of §3.1 for original point `id`.
  int64_t random_id(uint64_t id) const { return random_id_[id]; }
  int32_t layer_of(uint64_t id) const { return layer_of_[id]; }
  int64_t contained_by(uint64_t id) const { return contained_by_[id]; }

  /// Cell id of point p on layer `l` (row-major over the 2^l grid).
  int64_t CellOf(const float* p, uint32_t l) const;
  int64_t CellOf(const double* p, uint32_t l) const;

  /// Returns at least n points of `q` following the underlying
  /// distribution (all of them if the box holds fewer). Appends original
  /// point ids. Layers are consumed coarse-to-fine and the walk halts at
  /// the end of the first layer where the running total reaches n, so
  /// callers can receive slightly more than n — the paper's semantics.
  Status SampleQuery(const Box& q, uint64_t n, std::vector<uint64_t>* out,
                     GridQueryStats* stats = nullptr) const;

  /// Streaming variant of SampleQuery — the §3.1 "interesting feature
  /// possibility": "when points from the first layer are available, start
  /// sending them back to the client as we fetch more points from layer 2".
  /// Invokes on_point(point_id, layer_number) for every match as it is
  /// found; the callback may return void, or bool where false aborts the
  /// stream early (a disconnecting client).
  template <typename Fn>
  Status SampleQueryStream(const Box& q, uint64_t n, Fn&& on_point,
                           GridQueryStats* stats = nullptr) const;

  /// Enumerates the clustered-row ranges of the cells of layer `l` that
  /// intersect q (the storage executor's access path).
  void CellRangesFor(const Box& q, uint32_t l,
                     std::vector<CellRange>* out) const;

  /// Encodes the (Layer, ContainedBy) pair into the single int64 clustered
  /// key used when materializing the table.
  static int64_t EncodeKey(uint32_t layer, int64_t cell) {
    return (static_cast<int64_t>(layer) << 48) | cell;
  }

  const PointSet& points() const { return *points_; }

 private:
  LayeredGridIndex() = default;
  friend class IndexIo;

  const PointSet* points_ = nullptr;
  Box bounds_;
  std::vector<Layer> layers_;
  std::vector<uint64_t> clustered_order_;
  std::vector<int64_t> random_id_;
  std::vector<int32_t> layer_of_;
  std::vector<int64_t> contained_by_;
};

template <typename Fn>
Status LayeredGridIndex::SampleQueryStream(const Box& q, uint64_t n,
                                           Fn&& on_point,
                                           GridQueryStats* stats) const {
  if (q.dim() != dim()) {
    return Status::InvalidArgument(
        "SampleQueryStream: box dimension mismatch");
  }
  GridQueryStats local;
  GridQueryStats* st = stats != nullptr ? stats : &local;
  std::vector<CellRange> ranges;
  uint64_t found = 0;
  for (uint32_t l = 0; l < num_layers(); ++l) {
    ++st->layers_visited;
    ranges.clear();
    CellRangesFor(q, l, &ranges);
    for (const CellRange& cr : ranges) {
      ++st->cells_visited;
      for (uint64_t r = cr.row_begin; r < cr.row_end; ++r) {
        uint64_t id = clustered_order_[r];
        ++st->points_scanned;
        if (!q.Contains(points_->point(id))) continue;
        ++st->points_returned;
        ++found;
        if constexpr (std::is_void_v<decltype(on_point(id, l + 1))>) {
          on_point(id, l + 1);
        } else {
          if (!on_point(id, l + 1)) return Status::OK();
        }
      }
    }
    if (found >= n) break;
  }
  return Status::OK();
}

}  // namespace mds

#endif  // MDS_CORE_LAYERED_GRID_H_
