#ifndef MDS_CORE_QUERY_ENGINE_H_
#define MDS_CORE_QUERY_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/kdtree.h"
#include "core/layered_grid.h"
#include "core/voronoi_index.h"
#include "geom/polyhedron.h"
#include "storage/table.h"

namespace mds {

/// Binds a stored point table to the query engine: which column carries
/// the original object id and where the coordinate columns start.
struct PointTableBinding {
  const Table* table = nullptr;
  size_t objid_col = 0;
  size_t first_coord_col = 1;
  size_t dim = 0;
};

/// I/O-level result of a storage-backed query.
struct StorageQueryResult {
  std::vector<int64_t> objids;
  uint64_t rows_scanned = 0;
  uint64_t pages_read = 0;     ///< physical page reads during the query
  uint64_t pages_fetched = 0;  ///< logical page fetches (hits + misses)
};

/// Executes spatial queries against tables through the buffer pool, so
/// every experiment can report page-level I/O. The three index execution
/// paths assume the table rows were materialized in the respective index's
/// clustered order; the full-scan path is the paper's "simple SQL query"
/// baseline (Figure 5) and works on any order.
class StorageQueryExecutor {
 public:
  /// Full-table scan with a per-row polyhedron predicate.
  static Result<StorageQueryResult> FullScan(const PointTableBinding& binding,
                                             const Polyhedron& query);

  /// Executes a kd-tree query plan: `full` row ranges are emitted without
  /// per-row tests (the post-order BETWEEN case); `partial` ranges are
  /// filtered by the polyhedron.
  static Result<StorageQueryResult> ExecuteKdPlan(
      const PointTableBinding& binding, const KdTreeIndex& index,
      const Polyhedron& query);

  /// §3.1 sample query over a table clustered by (Layer, ContainedBy):
  /// returns at least n box points following the data distribution.
  static Result<StorageQueryResult> GridSample(
      const PointTableBinding& binding, const LayeredGridIndex& index,
      const Box& query, uint64_t n, GridQueryStats* grid_stats = nullptr);

  /// The paper's pre-grid baseline: TABLESAMPLE SYSTEM(percent) + TOP(n)
  /// with a box predicate (E3).
  static Result<StorageQueryResult> TableSampleTopN(
      const PointTableBinding& binding, const Box& query, double percent,
      uint64_t n, Rng& rng);

  /// Voronoi-index execution over a table clustered by cell tag.
  static Result<StorageQueryResult> ExecuteVoronoi(
      const PointTableBinding& binding, const VoronoiIndex& index,
      const Polyhedron& query, VoronoiQueryStats* voronoi_stats = nullptr);
};

}  // namespace mds

#endif  // MDS_CORE_QUERY_ENGINE_H_
