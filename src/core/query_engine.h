#ifndef MDS_CORE_QUERY_ENGINE_H_
#define MDS_CORE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/access_path.h"
#include "core/kdtree.h"
#include "core/layered_grid.h"
#include "core/voronoi_index.h"
#include "geom/polyhedron.h"
#include "storage/table.h"

namespace mds {

/// Concurrent query entry point: executes many independent queries at
/// once over one shared (thread-safe) BufferPool — the serving shape the
/// survey-scale studies (Berriman et al.) measure, where throughput under
/// concurrent load, not single-query latency, is the limiting metric.
///
/// Thread safety: ExecuteBatch is self-contained fork/join — it owns its
/// worker pool for the duration of the call and is itself thread-safe as
/// long as each call's paths are not shared with another call. Every
/// query gets a private RangeScanner (thread-compatible) over the shared
/// pool; results and per-query stats land at the query's input index, so
/// output order is deterministic regardless of scheduling.
class QueryEngine {
 public:
  struct BatchOptions {
    BatchOptions() : num_threads(0) {}

    /// Concurrent workers; 0 picks QueryThreads() (MDS_QUERY_THREADS,
    /// default hardware_concurrency).
    unsigned num_threads;
  };

  /// Runs every path to completion, `num_threads` at a time, over the
  /// shared buffer pool. paths[i]'s result lands in slot i of the
  /// returned vector (and its instrumentation in (*stats)[i], resized to
  /// match, if stats is non-null). A failing sub-query fails only its own
  /// slot — sibling results are preserved — and its Status is annotated
  /// with the batch index ("ExecuteBatch[i]"). Each path must bind a table whose
  /// BufferPool and Pager are thread-safe (the library's are) — paths may
  /// bind the same table or different tables of one pool. Per-query page
  /// accounting stays exact under the interleaving because each scanner
  /// counts its own fetches.
  static std::vector<Result<StorageQueryResult>> ExecuteBatch(
      const std::vector<AccessPath*>& paths,
      const BatchOptions& options = BatchOptions(),
      std::vector<QueryStats>* stats = nullptr);

  /// Convenience overload taking ownership of the paths.
  static std::vector<Result<StorageQueryResult>> ExecuteBatch(
      std::vector<std::unique_ptr<AccessPath>> paths,
      const BatchOptions& options = BatchOptions(),
      std::vector<QueryStats>* stats = nullptr);
};

/// Legacy façade over the AccessPath / RangeScanner execution layer.
///
/// Each entry point builds the corresponding access path and runs it
/// through ExecuteAccessPath — the five methods share one physical scan
/// loop and one instrumentation struct (QueryStats). New code should use
/// the access paths (or QueryPlanner) directly; these wrappers keep the
/// original signatures stable for existing tests, benches and examples.
///
/// Thread safety: all entry points are stateless and thread-safe given a
/// thread-safe BufferPool behind the binding — each call builds its own
/// path and scanner. GridSample/TableSampleTopN mutate caller-supplied
/// stats/rng, which must not be shared across concurrent calls.
class StorageQueryExecutor {
 public:
  /// Full-table scan with a per-row polyhedron predicate.
  static Result<StorageQueryResult> FullScan(const PointTableBinding& binding,
                                             const Polyhedron& query);

  /// Executes a kd-tree query plan: `full` row ranges are emitted without
  /// per-row tests (the post-order BETWEEN case); `partial` ranges are
  /// filtered by the polyhedron.
  static Result<StorageQueryResult> ExecuteKdPlan(
      const PointTableBinding& binding, const KdTreeIndex& index,
      const Polyhedron& query);

  /// §3.1 sample query over a table clustered by (Layer, ContainedBy):
  /// returns at least n box points following the data distribution.
  static Result<StorageQueryResult> GridSample(
      const PointTableBinding& binding, const LayeredGridIndex& index,
      const Box& query, uint64_t n, GridQueryStats* grid_stats = nullptr);

  /// The paper's pre-grid baseline: TABLESAMPLE SYSTEM(percent) + TOP(n)
  /// with a box predicate (E3).
  static Result<StorageQueryResult> TableSampleTopN(
      const PointTableBinding& binding, const Box& query, double percent,
      uint64_t n, Rng& rng);

  /// Voronoi-index execution over a table clustered by cell tag.
  static Result<StorageQueryResult> ExecuteVoronoi(
      const PointTableBinding& binding, const VoronoiIndex& index,
      const Polyhedron& query, VoronoiQueryStats* voronoi_stats = nullptr);
};

}  // namespace mds

#endif  // MDS_CORE_QUERY_ENGINE_H_
