#ifndef MDS_CORE_QUERY_ENGINE_H_
#define MDS_CORE_QUERY_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/access_path.h"
#include "core/kdtree.h"
#include "core/layered_grid.h"
#include "core/voronoi_index.h"
#include "geom/polyhedron.h"
#include "storage/table.h"

namespace mds {

/// Legacy façade over the AccessPath / RangeScanner execution layer.
///
/// Each entry point builds the corresponding access path and runs it
/// through ExecuteAccessPath — the five methods share one physical scan
/// loop and one instrumentation struct (QueryStats). New code should use
/// the access paths (or QueryPlanner) directly; these wrappers keep the
/// original signatures stable for existing tests, benches and examples.
class StorageQueryExecutor {
 public:
  /// Full-table scan with a per-row polyhedron predicate.
  static Result<StorageQueryResult> FullScan(const PointTableBinding& binding,
                                             const Polyhedron& query);

  /// Executes a kd-tree query plan: `full` row ranges are emitted without
  /// per-row tests (the post-order BETWEEN case); `partial` ranges are
  /// filtered by the polyhedron.
  static Result<StorageQueryResult> ExecuteKdPlan(
      const PointTableBinding& binding, const KdTreeIndex& index,
      const Polyhedron& query);

  /// §3.1 sample query over a table clustered by (Layer, ContainedBy):
  /// returns at least n box points following the data distribution.
  static Result<StorageQueryResult> GridSample(
      const PointTableBinding& binding, const LayeredGridIndex& index,
      const Box& query, uint64_t n, GridQueryStats* grid_stats = nullptr);

  /// The paper's pre-grid baseline: TABLESAMPLE SYSTEM(percent) + TOP(n)
  /// with a box predicate (E3).
  static Result<StorageQueryResult> TableSampleTopN(
      const PointTableBinding& binding, const Box& query, double percent,
      uint64_t n, Rng& rng);

  /// Voronoi-index execution over a table clustered by cell tag.
  static Result<StorageQueryResult> ExecuteVoronoi(
      const PointTableBinding& binding, const VoronoiIndex& index,
      const Polyhedron& query, VoronoiQueryStats* voronoi_stats = nullptr);
};

}  // namespace mds

#endif  // MDS_CORE_QUERY_ENGINE_H_
