#include "core/kdtree.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/parallel.h"

namespace mds {

namespace {

uint64_t NextPowerOfTwo(uint64_t x) {
  uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Post-order numbering plus covered-leaf intervals: the invariant behind
/// the BETWEEN trick (§3.2) — a subtree's leaves are contiguous ordinals.
/// `nodes` is an implicit complete tree (children of i at 2i+1, 2i+2);
/// leaves live at [first_leaf_idx, 2*first_leaf_idx].
void AssignPostOrder(std::vector<KdTreeIndex::Node>* nodes,
                     size_t first_leaf_idx) {
  uint32_t counter = 0;
  // Iterative post-order over the implicit complete tree.
  struct Item {
    uint32_t idx;
    bool expanded;
  };
  std::vector<Item> stack;
  stack.push_back({0, false});
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    KdTreeIndex::Node& node = (*nodes)[item.idx];
    if (node.split_dim < 0) {
      node.post_order = counter++;
      uint32_t ordinal = item.idx - static_cast<uint32_t>(first_leaf_idx);
      node.first_leaf = ordinal;
      node.last_leaf = ordinal;
      continue;
    }
    if (!item.expanded) {
      stack.push_back({item.idx, true});
      stack.push_back({node.right, false});
      stack.push_back({node.left, false});
    } else {
      node.post_order = counter++;
      node.first_leaf = (*nodes)[node.left].first_leaf;
      node.last_leaf = (*nodes)[node.right].last_leaf;
    }
  }
}

}  // namespace

Result<KdTreeIndex> KdTreeIndex::Build(const PointSet* points,
                                       const KdTreeConfig& config) {
  const uint64_t n = points->size();
  const size_t d = points->dim();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("KdTreeIndex::Build: empty point set");
  }
  uint64_t leaves = config.num_leaves;
  if (leaves == 0) {
    // The paper's optimum: #leaves == points per leaf == sqrt(N).
    leaves = NextPowerOfTwo(static_cast<uint64_t>(
        std::ceil(std::sqrt(static_cast<double>(n)))));
  }
  leaves = NextPowerOfTwo(leaves);
  while (leaves > 1 && leaves > n) leaves >>= 1;

  KdTreeIndex index;
  index.points_ = points;
  index.num_leaves_ = static_cast<uint32_t>(leaves);
  uint32_t depth = 0;  // number of split levels; leaves = 2^depth
  while ((uint64_t{1} << depth) < leaves) ++depth;
  index.num_levels_ = depth + 1;

  const size_t num_nodes = 2 * leaves - 1;
  index.nodes_.resize(num_nodes);
  index.clustered_order_.resize(n);
  for (uint64_t i = 0; i < n; ++i) index.clustered_order_[i] = i;
  std::vector<uint64_t>& perm = index.clustered_order_;

  // Root region = bounding box of the data.
  index.nodes_[0].region = Box::Bounding(*points);
  index.nodes_[0].row_begin = 0;
  index.nodes_[0].row_end = n;

  auto tight_box = [&](uint64_t begin, uint64_t end) {
    Box b = Box::Empty(d);
    for (uint64_t r = begin; r < end; ++r) b.Extend(points->point(perm[r]));
    return b;
  };

  // Iterative level-by-level build, the paper's "build the tree iteratively
  // (not recursively)" lesson: each pass splits every node of one level.
  // The nodes of one level partition the permutation into disjoint slices,
  // so they split in parallel across the worker pool (each worker handles
  // whole subtree slices — the task-recursion shape without recursion);
  // levels are barriers. Node computations are pure functions of their
  // slice, so the tree is identical for any thread count.
  TaskPool build_pool(config.build_threads);
  for (uint32_t level = 0; level < depth; ++level) {
    const size_t level_begin = (size_t{1} << level) - 1;
    const size_t level_end = (size_t{1} << (level + 1)) - 1;
    const size_t level_nodes = level_end - level_begin;
    auto split_node = [&](uint64_t node_offset) {
      const size_t idx = level_begin + node_offset;
      Node& node = index.nodes_[idx];
      const uint64_t b = node.row_begin;
      const uint64_t e = node.row_end;
      size_t dim;
      if (config.max_spread_split) {
        Box tb = tight_box(b, e);
        dim = 0;
        double best = -1.0;
        for (size_t j = 0; j < d; ++j) {
          double spread = tb.hi(j) - tb.lo(j);
          if (spread > best) {
            best = spread;
            dim = j;
          }
        }
      } else {
        dim = level % d;
      }
      const uint64_t m = b + (e - b + 1) / 2;  // left child gets ceil half
      std::nth_element(
          perm.begin() + b, perm.begin() + m, perm.begin() + e,
          [&](uint64_t x, uint64_t y) {
            return points->coord(x, dim) < points->coord(y, dim);
          });
      const double split = points->coord(perm[m], dim);
      node.split_dim = static_cast<int32_t>(dim);
      node.split_value = split;
      const size_t li = 2 * idx + 1;
      const size_t ri = 2 * idx + 2;
      node.left = static_cast<uint32_t>(li);
      node.right = static_cast<uint32_t>(ri);
      Node& lnode = index.nodes_[li];
      Node& rnode = index.nodes_[ri];
      lnode.region = node.region;
      lnode.region.set_hi(dim, split);
      lnode.row_begin = b;
      lnode.row_end = m;
      rnode.region = node.region;
      rnode.region.set_lo(dim, split);
      rnode.row_begin = m;
      rnode.row_end = e;
    };
    ParallelFor(&build_pool, level_nodes, /*grain=*/1, split_node);
  }

  // Leaf ordinals, left to right.
  const size_t first_leaf_idx = leaves - 1;
  index.leaf_node_index_.resize(leaves);
  for (size_t o = 0; o < leaves; ++o) {
    index.leaf_node_index_[o] = static_cast<uint32_t>(first_leaf_idx + o);
  }

  // Tight bounding boxes bottom-up. The leaf scans dominate (they touch
  // every point once) and are independent, so they run on the pool; the
  // internal merges are O(#nodes) and stay serial.
  ParallelFor(&build_pool, leaves, /*grain=*/1, [&](uint64_t o) {
    Node& node = index.nodes_[first_leaf_idx + o];
    node.bounds = tight_box(node.row_begin, node.row_end);
  });
  for (size_t idx = first_leaf_idx; idx-- > 0;) {
    Node& node = index.nodes_[idx];
    node.bounds = index.nodes_[node.left].bounds;
    const Box& rb = index.nodes_[node.right].bounds;
    node.bounds.Extend(rb.lo().data());
    node.bounds.Extend(rb.hi().data());
  }

  AssignPostOrder(&index.nodes_, first_leaf_idx);
  return index;
}

Result<KdTreeIndex> KdTreeIndex::ExtractSubtree(const KdTreeIndex& source,
                                                uint32_t node_index) {
  if (node_index >= source.nodes_.size()) {
    return Status::InvalidArgument(
        "KdTreeIndex::ExtractSubtree: node index " +
        std::to_string(node_index) + " out of range");
  }
  const Node& src_root = source.nodes_[node_index];
  const uint64_t leaves = src_root.last_leaf - src_root.first_leaf + 1;
  const uint64_t base_row = src_root.row_begin;
  const uint32_t base_leaf = src_root.first_leaf;

  KdTreeIndex index;
  index.points_ = source.points_;
  index.num_leaves_ = static_cast<uint32_t>(leaves);
  uint32_t depth = 0;
  while ((uint64_t{1} << depth) < leaves) ++depth;
  index.num_levels_ = depth + 1;

  // Map the new implicit complete tree onto the source's: new node j sits
  // at old index old_of_new[j], and the implicit child rule is preserved
  // on both sides, so children map to children.
  const size_t num_nodes = 2 * leaves - 1;
  std::vector<uint32_t> old_of_new(num_nodes);
  old_of_new[0] = node_index;
  for (size_t j = 0; j + 1 < leaves; ++j) {
    old_of_new[2 * j + 1] = 2 * old_of_new[j] + 1;
    old_of_new[2 * j + 2] = 2 * old_of_new[j] + 2;
  }

  index.nodes_.resize(num_nodes);
  const size_t first_leaf_idx = leaves - 1;
  for (size_t j = 0; j < num_nodes; ++j) {
    Node node = source.nodes_[old_of_new[j]];
    if (node.split_dim >= 0) {
      node.left = static_cast<uint32_t>(2 * j + 1);
      node.right = static_cast<uint32_t>(2 * j + 2);
    } else {
      node.left = kNoChild;
      node.right = kNoChild;
    }
    node.row_begin -= base_row;
    node.row_end -= base_row;
    node.first_leaf -= base_leaf;
    node.last_leaf -= base_leaf;
    index.nodes_[j] = node;
  }

  index.leaf_node_index_.resize(leaves);
  for (size_t o = 0; o < leaves; ++o) {
    index.leaf_node_index_[o] = static_cast<uint32_t>(first_leaf_idx + o);
  }
  index.clustered_order_.assign(
      source.clustered_order_.begin() + static_cast<ptrdiff_t>(base_row),
      source.clustered_order_.begin() + static_cast<ptrdiff_t>(src_root.row_end));
  AssignPostOrder(&index.nodes_, first_leaf_idx);
  return index;
}

uint32_t KdTreeIndex::FindLeaf(const double* p) const {
  uint32_t idx = 0;
  while (nodes_[idx].split_dim >= 0) {
    const Node& node = nodes_[idx];
    idx = p[node.split_dim] <= node.split_value ? node.left : node.right;
  }
  return idx - (num_leaves_ - 1);
}

uint32_t KdTreeIndex::FindLeaf(const float* p) const {
  std::vector<double> q(dim());
  for (size_t j = 0; j < dim(); ++j) q[j] = p[j];
  return FindLeaf(q.data());
}

uint32_t KdTreeIndex::FindLeafDirected(const double* b, size_t face_dim,
                                       bool positive) const {
  uint32_t idx = 0;
  while (nodes_[idx].split_dim >= 0) {
    const Node& node = nodes_[idx];
    const size_t j = static_cast<size_t>(node.split_dim);
    const double v = b[j];
    bool go_left;
    if (v < node.split_value) {
      go_left = true;
    } else if (v > node.split_value) {
      go_left = false;
    } else if (j == face_dim) {
      // Exactly on a split plane along the crossing axis: the direction
      // decides which side we are entering.
      go_left = !positive;
    } else {
      go_left = true;  // same closure convention as FindLeaf
    }
    idx = go_left ? node.left : node.right;
  }
  return idx - (num_leaves_ - 1);
}

template <typename Visitor>
void KdTreeIndex::Visit(const Polyhedron& query, Visitor&& visitor,
                        KdQueryStats* stats) const {
  KdQueryStats local;
  KdQueryStats* st = stats != nullptr ? stats : &local;
  // Explicit stack; the paper recurses in a stored procedure, we avoid
  // deep call stacks the same way the build does.
  std::vector<uint32_t> stack = {0};
  while (!stack.empty()) {
    uint32_t idx = stack.back();
    stack.pop_back();
    const Node& node = nodes_[idx];
    ++st->nodes_visited;
    BoxClass cls = query.Classify(node.bounds);
    if (cls == BoxClass::kOutside) continue;
    if (cls == BoxClass::kInside) {
      visitor.EmitFull(node);
      continue;
    }
    if (node.split_dim < 0) {
      ++st->leaves_partial;
      visitor.EmitPartial(node);
      continue;
    }
    stack.push_back(node.right);
    stack.push_back(node.left);
  }
}

namespace {

struct CollectVisitor {
  const KdTreeIndex* index;
  const Polyhedron* query;
  std::vector<uint64_t>* out;
  KdQueryStats* stats;

  void EmitFull(const KdTreeIndex::Node& node) {
    if (stats != nullptr) {
      // Count the whole subtree's leaves as range-emitted.
      stats->leaves_full += node.last_leaf - node.first_leaf + 1;
    }
    const auto& order = index->clustered_order();
    for (uint64_t r = node.row_begin; r < node.row_end; ++r) {
      out->push_back(order[r]);
    }
    if (stats != nullptr) {
      stats->points_emitted += node.row_end - node.row_begin;
    }
  }

  void EmitPartial(const KdTreeIndex::Node& node) {
    const auto& order = index->clustered_order();
    const PointSet& points = index->points();
    for (uint64_t r = node.row_begin; r < node.row_end; ++r) {
      uint64_t id = order[r];
      if (stats != nullptr) ++stats->points_tested;
      if (query->Contains(points.point(id))) {
        out->push_back(id);
        if (stats != nullptr) ++stats->points_emitted;
      }
    }
  }
};

struct PlanVisitor {
  std::vector<std::pair<uint64_t, uint64_t>>* full;
  std::vector<std::pair<uint64_t, uint64_t>>* partial;
  KdQueryStats* stats;

  void EmitFull(const KdTreeIndex::Node& node) {
    if (stats != nullptr) {
      stats->leaves_full += node.last_leaf - node.first_leaf + 1;
    }
    full->emplace_back(node.row_begin, node.row_end);
  }
  void EmitPartial(const KdTreeIndex::Node& node) {
    partial->emplace_back(node.row_begin, node.row_end);
  }
};

}  // namespace

void KdTreeIndex::QueryPolyhedron(const Polyhedron& query,
                                  std::vector<uint64_t>* out,
                                  KdQueryStats* stats) const {
  CollectVisitor visitor{this, &query, out, stats};
  Visit(query, visitor, stats);
}

void KdTreeIndex::QueryBox(const Box& query, std::vector<uint64_t>* out,
                           KdQueryStats* stats) const {
  Polyhedron poly = Polyhedron::FromBox(query);
  QueryPolyhedron(poly, out, stats);
}

void KdTreeIndex::PlanPolyhedron(
    const Polyhedron& query, std::vector<std::pair<uint64_t, uint64_t>>* full,
    std::vector<std::pair<uint64_t, uint64_t>>* partial,
    KdQueryStats* stats) const {
  PlanVisitor visitor{full, partial, stats};
  Visit(query, visitor, stats);
}

}  // namespace mds
