#ifndef MDS_CORE_KNN_H_
#define MDS_CORE_KNN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/kdtree.h"

namespace mds {

/// One k-nearest-neighbor answer.
struct Neighbor {
  uint64_t id = 0;            ///< original point id
  double squared_distance = 0.0;

  bool operator<(const Neighbor& other) const {
    return squared_distance < other.squared_distance ||
           (squared_distance == other.squared_distance && id < other.id);
  }
};

/// Work counters for k-NN searches (E6).
struct KnnStats {
  uint64_t leaves_examined = 0;
  uint64_t points_examined = 0;
  uint64_t boundary_points_checked = 0;  ///< boundary-grow only
  uint64_t rounds = 0;                   ///< boundary-grow expansion rounds
  uint64_t top_k_pruned = 0;  ///< points skipped by the TOP(k-f) refinement
};

/// k-nearest-neighbor search over a kd-tree (§3.3).
///
/// Three interchangeable engines, all exact:
///  * BruteForce       — ground truth, linear scan.
///  * BestFirst        — classic priority-queue descent by box distance
///                       (the standard memory-algorithm baseline).
///  * BoundaryGrow     — the paper's algorithm: grow the explored region
///                       around p leaf-box by leaf-box, maintaining the
///                       result list; a leaf across a boundary point b is
///                       examined only while dist(p, b) < m, the current
///                       k-th distance, and its scan is bounded by the
///                       TOP(k - f) refinement.
class KdKnnSearcher {
 public:
  explicit KdKnnSearcher(const KdTreeIndex* index) : index_(index) {}

  /// Exact k nearest neighbors of `p` (ascending distance).
  std::vector<Neighbor> BruteForce(const double* p, size_t k,
                                   KnnStats* stats = nullptr) const;
  std::vector<Neighbor> BestFirst(const double* p, size_t k,
                                  KnnStats* stats = nullptr) const;
  std::vector<Neighbor> BoundaryGrow(const double* p, size_t k,
                                     KnnStats* stats = nullptr) const;

  /// Float-point convenience wrappers.
  std::vector<Neighbor> BoundaryGrow(const float* p, size_t k,
                                     KnnStats* stats = nullptr) const;

 private:
  /// Scans leaf `ordinal`, merging its points into the running result heap
  /// (max-heap on squared distance, capped at k). `lower_bound_sq` is a
  /// proven lower bound on the distance of every point in the leaf, used
  /// for the paper's TOP(k - f) refinement accounting.
  void ScanLeaf(uint32_t ordinal, const double* p, size_t k,
                double lower_bound_sq, std::vector<Neighbor>* heap,
                KnnStats* stats) const;

  const KdTreeIndex* index_;
};

}  // namespace mds

#endif  // MDS_CORE_KNN_H_
