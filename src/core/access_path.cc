#include "core/access_path.h"

#include <algorithm>
#include <string>

namespace mds {

namespace {

constexpr size_t kMaxQueryDim = 16;

/// Exact page span of a clustered row interval.
double RangePages(const RowRange& range, uint32_t rows_per_page) {
  if (range.begin >= range.end) return 0.0;
  const uint64_t first_page = range.begin / rows_per_page;
  const uint64_t last_page = (range.end - 1) / rows_per_page;
  return static_cast<double>(last_page - first_page + 1);
}

double PlanPages(const std::vector<RowRange>& ranges,
                 uint32_t rows_per_page) {
  double pages = 0.0;
  for (const RowRange& range : ranges) {
    pages += RangePages(range, rows_per_page);
  }
  return pages;
}

void AppendPairs(const std::vector<std::pair<uint64_t, uint64_t>>& pairs,
                 RangeKind kind, std::vector<RowRange>* out) {
  for (const auto& [begin, end] : pairs) {
    out->push_back(RowRange{begin, end, kind});
  }
}

}  // namespace

Status AccessPath::Validate() const {
  if (binding_.table == nullptr) {
    return Status::InvalidArgument(std::string(name()) + ": no table bound");
  }
  if (binding_.dim != predicate_->dim() || binding_.dim > kMaxQueryDim) {
    return Status::InvalidArgument(std::string(name()) +
                                   ": dimension mismatch");
  }
  return Status::OK();
}

double AccessPath::PagesSpanned(uint64_t rows) const {
  const uint32_t rows_per_page = binding_.table->rows_per_page();
  return static_cast<double>((rows + rows_per_page - 1) / rows_per_page);
}

// --- FullScanPath ----------------------------------------------------------

FullScanPath::FullScanPath(const PointTableBinding& binding,
                           const Polyhedron& query)
    : AccessPath(binding, nullptr),
      owned_predicate_(std::make_unique<PolyhedronPredicate>(&query)) {
  predicate_ = owned_predicate_.get();
}

FullScanPath::FullScanPath(const PointTableBinding& binding, const Box& query)
    : AccessPath(binding, nullptr),
      owned_predicate_(std::make_unique<BoxPredicate>(&query)) {
  predicate_ = owned_predicate_.get();
}

CostEstimate FullScanPath::Estimate() const {
  CostEstimate estimate;
  estimate.page_fetches = TablePages();
  estimate.ranges = 1;
  estimate.planning = 0;
  return estimate;
}

bool FullScanPath::NextStep(QueryStats* stats, PlanStep* step) {
  (void)stats;
  if (done_) return false;
  done_ = true;
  step->ranges.assign(
      1, RowRange{0, binding_.table->num_rows(), RangeKind::kPartial});
  return true;
}

// --- KdTreePath ------------------------------------------------------------

KdTreePath::KdTreePath(const PointTableBinding& binding,
                       const KdTreeIndex& index, const Polyhedron& query)
    : AccessPath(binding, &polyhedron_predicate_),
      polyhedron_predicate_(&query) {
  std::vector<std::pair<uint64_t, uint64_t>> full;
  std::vector<std::pair<uint64_t, uint64_t>> partial;
  index.PlanPolyhedron(query, &full, &partial, &plan_stats_);
  std::vector<RowRange> full_ranges, partial_ranges;
  AppendPairs(full, RangeKind::kFull, &full_ranges);
  AppendPairs(partial, RangeKind::kPartial, &partial_ranges);
  CoalesceRanges(&full_ranges);
  CoalesceRanges(&partial_ranges);
  ranges_ = std::move(full_ranges);
  ranges_.insert(ranges_.end(), partial_ranges.begin(), partial_ranges.end());
  // Positional order, not full-before-partial: rows then emit in the
  // clustered row order, so TOP(limit) really is the first `limit`
  // matches of the clustered order (client.h's contract) and a
  // kd-subtree shard's reply is a contiguous slice of the full tree's
  // (the mdsc coordinator's concatenation-parity invariant).
  std::sort(ranges_.begin(), ranges_.end(),
            [](const RowRange& a, const RowRange& b) {
              return a.begin < b.begin;
            });
  for (const RowRange& range : ranges_) {
    candidate_rows_ += range.end - range.begin;
  }
}

CostEstimate KdTreePath::Estimate() const {
  CostEstimate estimate;
  estimate.page_fetches =
      PlanPages(ranges_, binding_.table->rows_per_page());
  estimate.ranges = static_cast<double>(ranges_.size());
  estimate.planning = static_cast<double>(plan_stats_.nodes_visited);
  return estimate;
}

bool KdTreePath::NextStep(QueryStats* stats, PlanStep* step) {
  if (done_) return false;
  done_ = true;
  stats->cells_full += plan_stats_.leaves_full;
  stats->cells_partial += plan_stats_.leaves_partial;
  step->ranges = ranges_;
  return true;
}

// --- GridSamplePath --------------------------------------------------------

GridSamplePath::GridSamplePath(const PointTableBinding& binding,
                               const LayeredGridIndex& index, const Box& query,
                               uint64_t n)
    : AccessPath(binding, &box_predicate_),
      box_predicate_(&query),
      index_(&index),
      query_(&query),
      n_(n) {}

Box GridSamplePath::CellBox(uint32_t l, int64_t cell) const {
  const uint32_t res = index_->layer(l).resolution;
  const Box& bounds = index_->bounding_box();
  const size_t d = bounds.dim();
  std::vector<double> lo(d), hi(d);
  int64_t c = cell;
  for (size_t j = 0; j < d; ++j) {
    const int64_t coord = c % res;
    c /= res;
    const double width = (bounds.hi(j) - bounds.lo(j)) / res;
    // Inflated by a hair: a point the grid assigned to this cell may sit a
    // rounding error outside the exact cell box, so `full` is only claimed
    // when the query contains the inflated box.
    const double margin = width * 1e-9;
    lo[j] = bounds.lo(j) + coord * width - margin;
    hi[j] = (coord + 1 == static_cast<int64_t>(res)
                 ? bounds.hi(j)
                 : bounds.lo(j) + (coord + 1) * width) +
            margin;
  }
  return Box(std::move(lo), std::move(hi));
}

CostEstimate GridSamplePath::Estimate() const {
  CostEstimate estimate;
  const double query_volume = query_->Volume();
  std::vector<LayeredGridIndex::CellRange> ranges;
  double expected_hits = 0.0;
  for (uint32_t l = 0; l < index_->num_layers(); ++l) {
    ranges.clear();
    index_->CellRangesFor(*query_, l, &ranges);
    estimate.planning += static_cast<double>(ranges.size());
    estimate.ranges += static_cast<double>(ranges.size());
    uint64_t candidate_rows = 0;
    double cell_volume = 1.0;
    const uint32_t res = index_->layer(l).resolution;
    const Box& bounds = index_->bounding_box();
    for (size_t j = 0; j < bounds.dim(); ++j) {
      cell_volume *= (bounds.hi(j) - bounds.lo(j)) / res;
    }
    for (const auto& cr : ranges) candidate_rows += cr.row_end - cr.row_begin;
    estimate.page_fetches += PagesSpanned(candidate_rows);
    const double covered = cell_volume * static_cast<double>(ranges.size());
    const double hit_fraction =
        covered > 0.0 ? std::min(1.0, query_volume / covered) : 0.0;
    expected_hits += static_cast<double>(candidate_rows) * hit_fraction;
    if (expected_hits >= static_cast<double>(n_)) break;
  }
  return estimate;
}

bool GridSamplePath::NextStep(QueryStats* stats, PlanStep* step) {
  if (next_layer_ >= index_->num_layers()) return false;
  // The paper's stop rule: finish the layer during which the n-th point
  // was found, then halt — layers are unbiased samples, so the result
  // follows the data distribution at any size.
  if (next_layer_ > 0 && stats->rows_emitted >= n_) return false;
  const uint32_t l = next_layer_++;
  cell_scratch_.clear();
  index_->CellRangesFor(*query_, l, &cell_scratch_);
  step->ranges.clear();
  step->ranges.reserve(cell_scratch_.size());
  for (const auto& cr : cell_scratch_) {
    const bool full = box_predicate_.Classify(CellBox(l, cr.cell)) ==
                      BoxClass::kInside;
    if (full) {
      ++stats->cells_full;
    } else {
      ++stats->cells_partial;
    }
    step->ranges.push_back(RowRange{
        cr.row_begin, cr.row_end, full ? RangeKind::kFull : RangeKind::kPartial});
  }
  CoalesceRanges(&step->ranges);
  return true;
}

// --- VoronoiPath -----------------------------------------------------------

VoronoiPath::VoronoiPath(const PointTableBinding& binding,
                         const VoronoiIndex& index, const Polyhedron& query)
    : AccessPath(binding, &polyhedron_predicate_),
      polyhedron_predicate_(&query),
      index_(&index) {
  Classify();
}

void VoronoiPath::Classify() {
  std::vector<RowRange> full_ranges, partial_ranges;
  for (uint32_t c = 0; c < index_->num_seeds(); ++c) {
    if (index_->cell_size(c) == 0) {
      ++cells_pruned_;
      continue;
    }
    const BoxClass cls =
        polyhedron_predicate_.Classify(index_->cell_bounds(c));
    if (cls == BoxClass::kOutside) {
      ++cells_pruned_;
      continue;
    }
    const RowRange range{index_->cell_row_begin(c), index_->cell_row_end(c),
                         cls == BoxClass::kInside ? RangeKind::kFull
                                                  : RangeKind::kPartial};
    if (cls == BoxClass::kInside) {
      ++cells_full_;
      full_ranges.push_back(range);
    } else {
      ++cells_partial_;
      partial_ranges.push_back(range);
    }
    candidate_rows_ += range.end - range.begin;
  }
  CoalesceRanges(&full_ranges);
  CoalesceRanges(&partial_ranges);
  ranges_ = std::move(full_ranges);
  ranges_.insert(ranges_.end(), partial_ranges.begin(), partial_ranges.end());
}

CostEstimate VoronoiPath::Estimate() const {
  CostEstimate estimate;
  estimate.page_fetches =
      PlanPages(ranges_, binding_.table->rows_per_page());
  estimate.ranges = static_cast<double>(ranges_.size());
  estimate.planning = static_cast<double>(index_->num_seeds());
  return estimate;
}

bool VoronoiPath::NextStep(QueryStats* stats, PlanStep* step) {
  if (done_) return false;
  done_ = true;
  stats->cells_full += cells_full_;
  stats->cells_partial += cells_partial_;
  stats->cells_pruned += cells_pruned_;
  step->ranges = ranges_;
  return true;
}

// --- TableSamplePath -------------------------------------------------------

TableSamplePath::TableSamplePath(const PointTableBinding& binding,
                                 const Box& query, double percent, uint64_t n,
                                 Rng* rng)
    : AccessPath(binding, &box_predicate_),
      box_predicate_(&query),
      query_(&query),
      percent_(percent),
      n_(n),
      rng_(rng) {}

Status TableSamplePath::Validate() const {
  if (percent_ < 0.0 || percent_ > 100.0) {
    return Status::InvalidArgument("tablesample: bad percentage");
  }
  return AccessPath::Validate();
}

CostEstimate TableSamplePath::Estimate() const {
  CostEstimate estimate;
  estimate.page_fetches = TablePages() * percent_ / 100.0;
  estimate.ranges = estimate.page_fetches;
  estimate.planning = 0;
  return estimate;
}

bool TableSamplePath::NextStep(QueryStats* stats, PlanStep* step) {
  (void)stats;
  const Table& table = *binding_.table;
  const double p = percent_ / 100.0;
  while (next_page_ < table.num_pages()) {
    const uint64_t page = next_page_++;
    if (rng_->NextDouble() >= p) {
      ++stats->cells_pruned;
      continue;
    }
    ++stats->cells_partial;
    const uint64_t begin = page * table.rows_per_page();
    const uint64_t end =
        std::min<uint64_t>(begin + table.rows_per_page(), table.num_rows());
    step->ranges.assign(1, RowRange{begin, end, RangeKind::kPartial});
    return true;
  }
  return false;
}

// --- Executor --------------------------------------------------------------

namespace {

/// The shared plan-drive loop: pulls PlanSteps from the path and hands
/// them to `scanner` (RangeScanner or ParallelRangeScanner — same
/// interface by design).
template <typename Scanner>
Result<StorageQueryResult> DriveAccessPath(AccessPath* path, Scanner* scanner,
                                           QueryStats* st) {
  StorageQueryResult result;
  const uint64_t limit = path->limit();
  PlanStep step;
  while (path->NextStep(st, &step)) {
    ++st->plan_steps;
    MDS_RETURN_NOT_OK(scanner->ScanStep(step, path->predicate(), limit, st,
                                        &result.objids));
    if (limit != 0 && result.objids.size() >= limit) break;
  }
  scanner->AccumulateIo(st);
  result.rows_scanned = st->rows_scanned;
  result.pages_read = st->pages_read;
  result.pages_fetched = st->pages_fetched;
  result.pages_skipped = st->pages_skipped;
  result.degraded = st->degraded;
  return result;
}

RangeScanner::Layout LayoutOf(const AccessPath& path) {
  return RangeScanner::Layout{path.binding().objid_col,
                              path.binding().first_coord_col,
                              path.binding().dim};
}

}  // namespace

Result<StorageQueryResult> ExecuteAccessPath(AccessPath* path,
                                             QueryStats* stats) {
  return ExecuteAccessPath(path, RangeScanner::ScanOptions{}, stats);
}

Result<StorageQueryResult> ExecuteAccessPath(
    AccessPath* path, const RangeScanner::ScanOptions& scan_options,
    QueryStats* stats) {
  QueryStats local;
  QueryStats* st = stats != nullptr ? stats : &local;
  *st = QueryStats{};
  MDS_RETURN_NOT_OK(path->Validate());
  RangeScanner scanner(path->binding().table, LayoutOf(*path), scan_options);
  return DriveAccessPath(path, &scanner, st);
}

Result<StorageQueryResult> ExecuteAccessPathParallel(AccessPath* path,
                                                     unsigned num_threads,
                                                     QueryStats* stats) {
  return ExecuteAccessPathParallel(path, num_threads,
                                   RangeScanner::ScanOptions{}, stats);
}

Result<StorageQueryResult> ExecuteAccessPathParallel(
    AccessPath* path, unsigned num_threads,
    const RangeScanner::ScanOptions& scan_options, QueryStats* stats) {
  QueryStats local;
  QueryStats* st = stats != nullptr ? stats : &local;
  *st = QueryStats{};
  MDS_RETURN_NOT_OK(path->Validate());
  ParallelRangeScanner scanner(path->binding().table, LayoutOf(*path),
                               num_threads, scan_options);
  return DriveAccessPath(path, &scanner, st);
}

}  // namespace mds
