#ifndef MDS_CORE_KDTREE_H_
#define MDS_CORE_KDTREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "geom/box.h"
#include "geom/point_set.h"
#include "geom/polyhedron.h"

namespace mds {

/// Build options for the balanced kd-tree of §3.2.
struct KdTreeConfig {
  /// Number of leaves; 0 picks 2^ceil(log2(sqrt(N))) — the paper's
  /// "number of leaves equal to the square root of the number of rows"
  /// optimum (15 levels / 2^14 leaves / ~16K rows per leaf at N = 270M).
  uint64_t num_leaves = 0;

  /// false: cycle the split dimension per level (classic kd-tree, what the
  /// paper built). true: split the widest dimension of each node's tight
  /// bounding box — the [8] variant that counteracts the elongated boxes
  /// the paper observes in Figure 15. Benched as an ablation.
  bool max_spread_split = false;

  /// Build workers: 1 = serial, 0 = QueryThreads() (MDS_QUERY_THREADS /
  /// hardware_concurrency). The level-by-level build parallelizes over
  /// the nodes of each level — every node's median split touches a
  /// disjoint slice of the permutation, the subtree-task analog of
  /// recursive task spawning without the recursion the paper warns
  /// against. The built tree is bit-identical for every thread count.
  unsigned build_threads = 0;
};

/// Per-query work counters.
struct KdQueryStats {
  uint64_t nodes_visited = 0;
  uint64_t leaves_full = 0;     ///< leaves fully inside: emitted via range
  uint64_t leaves_partial = 0;  ///< leaves needing per-point tests (Fig. 4 red)
  uint64_t points_tested = 0;
  uint64_t points_emitted = 0;
};

/// Balanced kd-tree over an in-memory PointSet.
///
/// Construction follows the paper: iterative level-by-level median
/// splitting (never recursive), one cut per level. Nodes are numbered
/// post-order so that the leaves under any inner node form a contiguous
/// leaf-id interval — at query time a fully-contained subtree turns into a
/// single `BETWEEN` range over the leaf-clustered row order (§3.2).
///
/// The tree keeps two boxes per node: the partition box (the region the
/// node tiles; used for point location and the k-NN boundary walk) and the
/// tight bounding box of its points (used for query pruning).
class KdTreeIndex {
 public:
  static constexpr uint32_t kNoChild = ~uint32_t{0};

  struct Node {
    Box region;        ///< partition box: tiles the root region
    Box bounds;        ///< tight bounding box of the node's points
    int32_t split_dim = -1;     ///< -1 for leaves
    double split_value = 0.0;
    uint32_t left = kNoChild;   ///< index into nodes()
    uint32_t right = kNoChild;
    uint32_t post_order = 0;    ///< the paper's node numbering
    uint32_t first_leaf = 0;    ///< leaf ordinals covered: [first_leaf,
    uint32_t last_leaf = 0;     ///<   last_leaf] inclusive
    uint64_t row_begin = 0;     ///< clustered row range [row_begin, row_end)
    uint64_t row_end = 0;
  };

  /// Builds the index. `points` must stay alive while the index is used.
  static Result<KdTreeIndex> Build(const PointSet* points,
                                   const KdTreeConfig& config = {});

  /// Extracts the subtree rooted at `node_index` (an index into
  /// source.nodes()) as a standalone index over the same PointSet. The
  /// extracted tree keeps the source's split planes, boxes and clustered
  /// order verbatim: its clustered_order() is exactly the source's
  /// clustered rows [row_begin, row_end) of that node, its node row ranges
  /// are rebased to that slice, and its leaf ordinals to the subtree.
  /// Queries against it therefore return the same original point ids, in
  /// the same clustered order, as the source tree restricted to the
  /// subtree — the invariant shard-of-N serving relies on (a shard serves
  /// one level-log2(N) subtree and a coordinator concatenates shard
  /// replies in shard order; see server/coordinator.h).
  static Result<KdTreeIndex> ExtractSubtree(const KdTreeIndex& source,
                                            uint32_t node_index);

  size_t dim() const { return points_->dim(); }
  /// Number of points the index covers (== clustered_order().size();
  /// smaller than points().size() for an extracted subtree).
  uint64_t num_points() const { return clustered_order_.size(); }
  uint32_t num_levels() const { return num_levels_; }
  uint32_t num_leaves() const { return num_leaves_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& root() const { return nodes_[0]; }
  const Node& leaf(uint32_t ordinal) const {
    return nodes_[leaf_node_index_[ordinal]];
  }

  /// Clustered row order: clustered_order()[pos] is the original point id
  /// stored at clustered row `pos`; leaf ordinal L owns rows
  /// [leaf(L).row_begin, leaf(L).row_end).
  const std::vector<uint64_t>& clustered_order() const {
    return clustered_order_;
  }

  /// Leaf ordinal whose partition box contains p (ties on split planes go
  /// to the left child, matching partition-box closure).
  uint32_t FindLeaf(const double* p) const;
  uint32_t FindLeaf(const float* p) const;

  /// Leaf adjacent to leaf `from` across the face point `b`: descends like
  /// FindLeaf but breaks ties on coordinate `face_dim` toward `positive`.
  /// Exact — no epsilon nudging. Returns the leaf ordinal.
  uint32_t FindLeafDirected(const double* b, size_t face_dim,
                            bool positive) const;

  /// Evaluates a polyhedron query, appending the *original* ids of all
  /// points inside `query` to out (Figure 4 evaluation: inside boxes emit
  /// whole leaf ranges, partial boxes fall back to per-point tests).
  void QueryPolyhedron(const Polyhedron& query, std::vector<uint64_t>* out,
                       KdQueryStats* stats = nullptr) const;

  /// Same access path restricted to an axis-aligned box query.
  void QueryBox(const Box& query, std::vector<uint64_t>* out,
                KdQueryStats* stats = nullptr) const;

  /// Collects the clustered-row intervals a polyhedron query would touch:
  /// `full` ranges (every row qualifies — the BETWEEN case) and `partial`
  /// ranges (rows need testing). This is what the storage-backed executor
  /// consumes.
  void PlanPolyhedron(const Polyhedron& query,
                      std::vector<std::pair<uint64_t, uint64_t>>* full,
                      std::vector<std::pair<uint64_t, uint64_t>>* partial,
                      KdQueryStats* stats = nullptr) const;

  const PointSet& points() const { return *points_; }

 private:
  KdTreeIndex() = default;
  friend class IndexIo;

  template <typename Visitor>
  void Visit(const Polyhedron& query, Visitor&& visitor,
             KdQueryStats* stats) const;

  const PointSet* points_ = nullptr;
  std::vector<Node> nodes_;  // heap order: node i has children 2i+1, 2i+2
  std::vector<uint32_t> leaf_node_index_;  // leaf ordinal -> node index
  std::vector<uint64_t> clustered_order_;
  uint32_t num_levels_ = 0;
  uint32_t num_leaves_ = 0;
};

}  // namespace mds

#endif  // MDS_CORE_KDTREE_H_
