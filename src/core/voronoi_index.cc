#include "core/voronoi_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/knn.h"
#include "core/simd_dist.h"

namespace mds {

namespace {

/// Morton (Z-order) key of p within `bounds`, `bits` bits per dimension.
/// The paper numbers Voronoi cells along a space-filling curve so nearby
/// cells get nearby clustered keys; this is that numbering.
uint64_t MortonKey(const float* p, const Box& bounds, size_t dim,
                   uint32_t bits) {
  uint64_t key = 0;
  std::vector<uint32_t> q(dim);
  for (size_t j = 0; j < dim; ++j) {
    double extent = bounds.hi(j) - bounds.lo(j);
    double t = extent > 0.0 ? (p[j] - bounds.lo(j)) / extent : 0.0;
    t = std::min(std::max(t, 0.0), 1.0);
    q[j] = static_cast<uint32_t>(t * ((uint64_t{1} << bits) - 1));
  }
  for (uint32_t b = bits; b-- > 0;) {
    for (size_t j = 0; j < dim; ++j) {
      key = (key << 1) | ((q[j] >> b) & 1);
    }
  }
  return key;
}

}  // namespace

Result<VoronoiIndex> VoronoiIndex::Build(const PointSet* points,
                                         const VoronoiIndexConfig& config) {
  const uint64_t n = points->size();
  const size_t d = points->dim();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("VoronoiIndex::Build: empty point set");
  }
  uint32_t num_seeds = config.num_seeds;
  if (num_seeds < d + 2) num_seeds = static_cast<uint32_t>(d + 2);
  if (num_seeds > n) num_seeds = static_cast<uint32_t>(n);

  VoronoiIndex index;
  index.points_ = points;
  index.data_bounds_ = Box::Bounding(*points);

  // Sample Nseed representative points (§3.4: "we have chosen the seeds
  // randomly") and order them along a space-filling curve.
  Rng rng(config.seed);
  index.seed_ids_ = rng.SampleWithoutReplacement(n, num_seeds);
  const uint32_t morton_bits = static_cast<uint32_t>(std::min<size_t>(60 / d, 16));
  std::sort(index.seed_ids_.begin(), index.seed_ids_.end(),
            [&](uint64_t a, uint64_t b) {
              uint64_t ka = MortonKey(points->point(a), index.data_bounds_, d,
                                      morton_bits);
              uint64_t kb = MortonKey(points->point(b), index.data_bounds_, d,
                                      morton_bits);
              if (ka != kb) return ka < kb;
              return a < b;
            });
  index.seeds_ = std::make_unique<PointSet>(d, 0);
  index.seeds_->Reserve(num_seeds);
  for (uint64_t id : index.seed_ids_) index.seeds_->Append(points->point(id));

  // kd-tree over the seeds for exact nearest-seed assignment. The seed
  // PointSet sits behind a unique_ptr, so the tree's pointer into it stays
  // valid when the finished index is moved out of Build.
  VoronoiIndex& self = index;
  auto tree = KdTreeIndex::Build(self.seeds_.get(), KdTreeConfig{});
  if (!tree.ok()) return tree.status();
  self.seed_tree_ = std::make_unique<KdTreeIndex>(std::move(*tree));

  // Tag every point with its nearest seed and collect witness edges.
  KdKnnSearcher searcher(self.seed_tree_.get());
  self.tags_.resize(n);
  std::vector<std::pair<uint32_t, uint32_t>> witness_edges;
  const bool witness = config.graph_mode == VoronoiGraphMode::kWitness;
  std::vector<double> buf(d);
  for (uint64_t i = 0; i < n; ++i) {
    const float* p = self.points_->point(i);
    for (size_t j = 0; j < d; ++j) buf[j] = p[j];
    size_t k = witness ? 2 : 1;
    std::vector<Neighbor> nearest = searcher.BestFirst(buf.data(), k);
    self.tags_[i] = static_cast<uint32_t>(nearest[0].id);
    if (witness && nearest.size() > 1) {
      uint32_t a = static_cast<uint32_t>(nearest[0].id);
      uint32_t b = static_cast<uint32_t>(nearest[1].id);
      witness_edges.emplace_back(std::min(a, b), std::max(a, b));
    }
  }

  // Clustered order by tag (counting sort keeps it deterministic).
  self.cell_rows_.assign(num_seeds + 1, 0);
  for (uint64_t i = 0; i < n; ++i) ++self.cell_rows_[self.tags_[i] + 1];
  for (uint32_t c = 0; c < num_seeds; ++c) {
    self.cell_rows_[c + 1] += self.cell_rows_[c];
  }
  self.clustered_order_.resize(n);
  {
    std::vector<uint64_t> cursor(self.cell_rows_.begin(),
                                 self.cell_rows_.end() - 1);
    for (uint64_t i = 0; i < n; ++i) {
      self.clustered_order_[cursor[self.tags_[i]]++] = i;
    }
  }

  // Tight per-cell bounding boxes.
  self.cell_bounds_.assign(num_seeds, Box::Empty(d));
  for (uint64_t i = 0; i < n; ++i) {
    self.cell_bounds_[self.tags_[i]].Extend(self.points_->point(i));
  }
  for (uint32_t c = 0; c < num_seeds; ++c) {
    if (self.cell_size(c) == 0) {
      // Empty cell: collapse its box onto the seed so queries skip it.
      std::vector<double> seed_coords(d);
      const float* s = self.seeds_->point(c);
      for (size_t j = 0; j < d; ++j) seed_coords[j] = s[j];
      self.cell_bounds_[c] = Box(seed_coords, seed_coords);
    }
  }

  // Neighbor graph.
  self.graph_.assign(num_seeds, {});
  if (witness) {
    std::sort(witness_edges.begin(), witness_edges.end());
    witness_edges.erase(
        std::unique(witness_edges.begin(), witness_edges.end()),
        witness_edges.end());
    for (auto [a, b] : witness_edges) {
      self.graph_[a].push_back(b);
      self.graph_[b].push_back(a);
    }
    for (auto& adjacency : self.graph_) {
      std::sort(adjacency.begin(), adjacency.end());
    }
  } else {
    std::vector<double> coords(num_seeds * d);
    for (uint32_t s = 0; s < num_seeds; ++s) {
      const float* p = self.seeds_->point(s);
      for (size_t j = 0; j < d; ++j) coords[s * d + j] = p[j];
    }
    auto delaunay = DelaunayTriangulation::Compute(coords, d);
    if (!delaunay.ok()) return delaunay.status();
    self.delaunay_.emplace(std::move(*delaunay));
    self.graph_ = self.delaunay_->seed_graph();
  }
  return index;
}

uint32_t VoronoiIndex::NearestSeed(const double* p) const {
  KdKnnSearcher searcher(seed_tree_.get());
  return static_cast<uint32_t>(searcher.BestFirst(p, 1)[0].id);
}

uint32_t VoronoiIndex::NearestSeed(const float* p) const {
  std::vector<double> buf(dim());
  for (size_t j = 0; j < dim(); ++j) buf[j] = p[j];
  return NearestSeed(buf.data());
}

uint32_t VoronoiIndex::WalkLocate(const double* p, uint32_t start,
                                  WalkStats* stats) const {
  uint32_t current = start;
  double current_d2 = SquaredDistance(p, seeds_->point(current), dim());
  std::vector<double> d2;
  for (uint32_t guard = 0; guard < num_seeds(); ++guard) {
    uint32_t best = current;
    double best_d2 = current_d2;
    // Kernel the whole adjacency list at once (seed coordinates are a
    // gather over the seed-graph neighbor ids), then pick the strict
    // minimum in list order — the same winner as the one-at-a-time walk.
    const std::vector<uint32_t>& nbs = graph_[current];
    d2.resize(nbs.size());
    SquaredDistanceGather(p, seeds_->raw().data(), nbs.data(), nbs.size(),
                          dim(), d2.data());
    for (size_t i = 0; i < nbs.size(); ++i) {
      if (stats != nullptr) ++stats->neighbor_evaluations;
      if (d2[i] < best_d2) {
        best_d2 = d2[i];
        best = nbs[i];
      }
    }
    if (best == current) break;
    current = best;
    current_d2 = best_d2;
    if (stats != nullptr) ++stats->steps;
  }
  return current;
}

void VoronoiIndex::QueryPolyhedron(const Polyhedron& query,
                                   std::vector<uint64_t>* out,
                                   VoronoiQueryStats* stats) const {
  VoronoiQueryStats local;
  VoronoiQueryStats* st = stats != nullptr ? stats : &local;
  for (uint32_t c = 0; c < num_seeds(); ++c) {
    if (cell_size(c) == 0) {
      ++st->cells_outside;
      continue;
    }
    BoxClass cls = query.Classify(cell_bounds_[c]);
    if (cls == BoxClass::kOutside) {
      ++st->cells_outside;
      continue;
    }
    if (cls == BoxClass::kInside) {
      ++st->cells_inside;
      for (uint64_t r = cell_rows_[c]; r < cell_rows_[c + 1]; ++r) {
        out->push_back(clustered_order_[r]);
      }
      st->points_emitted += cell_size(c);
      continue;
    }
    ++st->cells_partial;
    for (uint64_t r = cell_rows_[c]; r < cell_rows_[c + 1]; ++r) {
      uint64_t id = clustered_order_[r];
      ++st->points_tested;
      if (query.Contains(points_->point(id))) {
        out->push_back(id);
        ++st->points_emitted;
      }
    }
  }
}

std::vector<double> VoronoiIndex::EstimateCellVolumes(uint64_t samples,
                                                      Rng& rng) const {
  std::vector<uint64_t> counts(num_seeds(), 0);
  const size_t d = dim();
  std::vector<double> p(d);
  for (uint64_t s = 0; s < samples; ++s) {
    for (size_t j = 0; j < d; ++j) {
      p[j] = rng.NextUniform(data_bounds_.lo(j), data_bounds_.hi(j));
    }
    ++counts[NearestSeed(p.data())];
  }
  const double box_volume = data_bounds_.Volume();
  std::vector<double> volumes(num_seeds());
  for (uint32_t c = 0; c < num_seeds(); ++c) {
    volumes[c] = box_volume * static_cast<double>(counts[c]) /
                 static_cast<double>(samples);
  }
  return volumes;
}

std::vector<double> VoronoiIndex::EstimateCellDensities(
    uint64_t volume_samples, Rng& rng) const {
  std::vector<double> volumes = EstimateCellVolumes(volume_samples, rng);
  std::vector<double> densities(num_seeds(), 0.0);
  // Floor: a cell so small that no Monte-Carlo sample landed in it is very
  // dense; use one sample quantum as the volume floor.
  const double floor_volume =
      data_bounds_.Volume() / static_cast<double>(volume_samples);
  for (uint32_t c = 0; c < num_seeds(); ++c) {
    double v = std::max(volumes[c], floor_volume);
    densities[c] = static_cast<double>(cell_size(c)) / v;
  }
  return densities;
}

}  // namespace mds
