#include "core/knn.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "core/simd_dist.h"

namespace mds {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Rows per distance-kernel call in the scan loops: big enough to amortize
/// dispatch, small enough that the d2 scratch stays in L1.
constexpr size_t kDistChunk = 256;

// Max-heap ordering on squared distance.
struct HeapLess {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    return a.squared_distance < b.squared_distance;
  }
};

void HeapInsert(std::vector<Neighbor>* heap, size_t k, Neighbor n) {
  if (heap->size() < k) {
    heap->push_back(n);
    std::push_heap(heap->begin(), heap->end(), HeapLess{});
  } else if (n.squared_distance < heap->front().squared_distance) {
    std::pop_heap(heap->begin(), heap->end(), HeapLess{});
    heap->back() = n;
    std::push_heap(heap->begin(), heap->end(), HeapLess{});
  }
}

std::vector<Neighbor> HeapFinish(std::vector<Neighbor> heap) {
  std::sort(heap.begin(), heap.end());
  return heap;
}

double CurrentBound(const std::vector<Neighbor>& heap, size_t k) {
  return heap.size() < k ? kInf : heap.front().squared_distance;
}

}  // namespace

std::vector<Neighbor> KdKnnSearcher::BruteForce(const double* p, size_t k,
                                                KnnStats* stats) const {
  const PointSet& points = index_->points();
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  // Chunked over the contiguous row store: the kernel fills d2 for a block
  // of rows, the heap consumes them in the original order, so insert order
  // (and therefore tie resolution) matches the row-at-a-time loop exactly.
  double d2[kDistChunk];
  const size_t n = points.size();
  for (uint64_t base = 0; base < n; base += kDistChunk) {
    const size_t len = std::min<size_t>(kDistChunk, n - base);
    SquaredDistanceBatch(p, points.point(base), len, points.dim(), d2);
    for (size_t i = 0; i < len; ++i) {
      if (stats != nullptr) ++stats->points_examined;
      HeapInsert(&heap, k, {base + i, d2[i]});
    }
  }
  return HeapFinish(std::move(heap));
}

void KdKnnSearcher::ScanLeaf(uint32_t ordinal, const double* p, size_t k,
                             double lower_bound_sq,
                             std::vector<Neighbor>* heap,
                             KnnStats* stats) const {
  const KdTreeIndex::Node& leaf = index_->leaf(ordinal);
  const PointSet& points = index_->points();
  const auto& order = index_->clustered_order();
  if (stats != nullptr) {
    ++stats->leaves_examined;
    // The paper's TOP(k - f) refinement: result entries already closer than
    // the leaf's distance lower bound can never be displaced by its points.
    uint64_t f = 0;
    for (const Neighbor& n : *heap) {
      if (n.squared_distance < lower_bound_sq) ++f;
    }
    stats->top_k_pruned += f;
  }
  // The leaf's rows are contiguous in clustered order; gather-kernel their
  // distances a chunk at a time, then feed the heap in the original order
  // so tie resolution is identical to the row-at-a-time loop.
  double d2[kDistChunk];
  for (uint64_t r = leaf.row_begin; r < leaf.row_end; r += kDistChunk) {
    const size_t len =
        std::min<uint64_t>(kDistChunk, leaf.row_end - r);
    const uint64_t* ids = &order[r];
    SquaredDistanceGather(p, points.raw().data(), ids, len, points.dim(), d2);
    for (size_t i = 0; i < len; ++i) {
      if (stats != nullptr) ++stats->points_examined;
      HeapInsert(heap, k, {ids[i], d2[i]});
    }
  }
}

std::vector<Neighbor> KdKnnSearcher::BestFirst(const double* p, size_t k,
                                               KnnStats* stats) const {
  // Classic branch-and-bound: a min-heap of tree nodes keyed by the
  // distance from p to their tight bounding box.
  using Entry = std::pair<double, uint32_t>;  // (min dist^2, node index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  const auto& nodes = index_->nodes();
  pq.emplace(nodes[0].bounds.MinSquaredDistance(p), 0u);
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  while (!pq.empty()) {
    auto [d2, idx] = pq.top();
    pq.pop();
    if (d2 >= CurrentBound(heap, k)) break;
    const KdTreeIndex::Node& node = nodes[idx];
    if (node.split_dim < 0) {
      uint32_t ordinal = node.first_leaf;
      ScanLeaf(ordinal, p, k, d2, &heap, stats);
      continue;
    }
    pq.emplace(nodes[node.left].bounds.MinSquaredDistance(p), node.left);
    pq.emplace(nodes[node.right].bounds.MinSquaredDistance(p), node.right);
  }
  return HeapFinish(std::move(heap));
}

namespace {

/// Enumerates the leaves adjacent to the `positive` face (along `face_dim`,
/// at coordinate `plane`) of the region rectangle `region`: every leaf
/// whose partition box touches that plane from the outside and overlaps the
/// face rectangle in the other dimensions.
void CollectFaceNeighbors(const KdTreeIndex& index, const Box& region,
                          size_t face_dim, bool positive, double plane,
                          std::vector<uint32_t>* out) {
  const auto& nodes = index.nodes();
  std::vector<uint32_t> stack = {0};
  while (!stack.empty()) {
    uint32_t idx = stack.back();
    stack.pop_back();
    const KdTreeIndex::Node& node = nodes[idx];
    if (node.split_dim < 0) {
      out->push_back(node.first_leaf);
      continue;
    }
    const size_t j = static_cast<size_t>(node.split_dim);
    const double s = node.split_value;
    if (j == face_dim) {
      // Single path: we want regions touching `plane` from the outside.
      bool go_right;
      if (positive) {
        go_right = s <= plane;
      } else {
        go_right = s < plane;
      }
      stack.push_back(go_right ? node.right : node.left);
    } else {
      if (region.lo(j) <= s) stack.push_back(node.left);
      if (region.hi(j) >= s) stack.push_back(node.right);
    }
  }
}

}  // namespace

std::vector<Neighbor> KdKnnSearcher::BoundaryGrow(const double* p, size_t k,
                                                  KnnStats* stats) const {
  const size_t d = index_->dim();
  const uint32_t num_leaves = index_->num_leaves();
  const Box& root_region = index_->root().region;

  std::vector<char> explored(num_leaves, 0);
  std::vector<char> queued(num_leaves, 0);
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);

  // Frontier of candidate leaves ordered by their region's distance to p —
  // the "index list" of §3.3. A leaf enters the list when it lies across a
  // boundary point b of the explored region with dist(p, b) below the
  // current k-th distance m.
  using Entry = std::pair<double, uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;

  std::vector<double> b(d);
  std::vector<uint32_t> adjacent;

  // Pushes the unexplored leaves across every face of `leaf_ordinal` whose
  // boundary point is closer than the current bound m.
  auto expand = [&](uint32_t leaf_ordinal) {
    const Box& region = index_->leaf(leaf_ordinal).region;
    for (size_t j = 0; j < d; ++j) {
      for (int side = 0; side < 2; ++side) {
        const bool positive = side == 1;
        const double plane = positive ? region.hi(j) : region.lo(j);
        // Faces on the root boundary have no outside.
        if (positive ? plane >= root_region.hi(j)
                     : plane <= root_region.lo(j)) {
          continue;
        }
        // Boundary point: projection of p onto the face, clamped to it —
        // a vertex of the face when p projects outside (the paper's
        // "vertex of a kd-box" boundary points are this degenerate case).
        for (size_t a = 0; a < d; ++a) {
          b[a] = std::min(std::max(p[a], region.lo(a)), region.hi(a));
        }
        b[j] = plane;
        if (stats != nullptr) ++stats->boundary_points_checked;
        double face_d2 = SquaredDistance(p, b.data(), d);
        if (face_d2 >= CurrentBound(heap, k)) continue;
        adjacent.clear();
        CollectFaceNeighbors(*index_, region, j, positive, plane, &adjacent);
        for (uint32_t nb : adjacent) {
          if (explored[nb] || queued[nb]) continue;
          const Box& nb_region = index_->leaf(nb).region;
          double d2 = nb_region.MinSquaredDistance(p);
          if (d2 >= CurrentBound(heap, k)) continue;
          queued[nb] = 1;
          frontier.emplace(d2, nb);
        }
      }
    }
  };

  uint32_t start = index_->FindLeaf(p);
  ScanLeaf(start, p, k, 0.0, &heap, stats);
  explored[start] = 1;
  expand(start);

  while (!frontier.empty()) {
    auto [d2, ordinal] = frontier.top();
    frontier.pop();
    if (d2 >= CurrentBound(heap, k)) break;
    if (explored[ordinal]) continue;
    explored[ordinal] = 1;
    if (stats != nullptr) ++stats->rounds;
    ScanLeaf(ordinal, p, k, d2, &heap, stats);
    expand(ordinal);
  }
  return HeapFinish(std::move(heap));
}

std::vector<Neighbor> KdKnnSearcher::BoundaryGrow(const float* p, size_t k,
                                                  KnnStats* stats) const {
  std::vector<double> q(index_->dim());
  for (size_t j = 0; j < index_->dim(); ++j) q[j] = p[j];
  return BoundaryGrow(q.data(), k, stats);
}

}  // namespace mds
