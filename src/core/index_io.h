#ifndef MDS_CORE_INDEX_IO_H_
#define MDS_CORE_INDEX_IO_H_

#include "common/result.h"
#include "core/kdtree.h"
#include "core/layered_grid.h"
#include "core/voronoi_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_stream.h"

namespace mds {

/// Persistence for the spatial indexes: an index is serialized into a
/// chain of buffer-pool pages living in the same pager file as the tables
/// it indexes, so a database file reopens with its indexes intact — the
/// paper's indexes likewise persist inside SQL Server alongside the
/// magnitude table.
///
/// The coordinate data itself is not duplicated: Load takes the same
/// PointSet the index was built over (normally re-materialized from the
/// stored table) and validates that its size and dimension match.
class IndexIo {
 public:
  /// Serializes the index; returns the head page of its chain (store it in
  /// your catalog/metadata page).
  static Result<PageId> SaveKdTree(BufferPool* pool, const KdTreeIndex& index);
  static Result<PageId> SaveLayeredGrid(BufferPool* pool,
                                        const LayeredGridIndex& index);
  static Result<PageId> SaveVoronoi(BufferPool* pool,
                                    const VoronoiIndex& index);

  /// Deserializes an index saved by the matching Save call. `points` must
  /// contain the identical point set (same size/dim, same order) and must
  /// outlive the index. Fails with Corruption on bad magic and
  /// InvalidArgument on a mismatched point set.
  static Result<KdTreeIndex> LoadKdTree(BufferPool* pool, PageId head,
                                        const PointSet* points);
  static Result<LayeredGridIndex> LoadLayeredGrid(BufferPool* pool,
                                                  PageId head,
                                                  const PointSet* points);
  static Result<VoronoiIndex> LoadVoronoi(BufferPool* pool, PageId head,
                                          const PointSet* points);
};

}  // namespace mds

#endif  // MDS_CORE_INDEX_IO_H_
