#ifndef MDS_CORE_INDEX_IO_H_
#define MDS_CORE_INDEX_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/kdtree.h"
#include "core/layered_grid.h"
#include "core/voronoi_index.h"
#include "geom/point_set.h"
#include "storage/buffer_pool.h"
#include "storage/page_stream.h"

namespace mds {

/// On-disk description of one dataset release: everything a server needs
/// to reopen a pager file written by `mdsctl build` and serve it — the
/// table's pages, the index-chain heads, the coordinate chain, and the
/// provenance (dim, row counts, seed, shard slice) that reload validation
/// checks before a file is allowed to replace live data.
///
/// The manifest is serialized as a single length-prefixed blob with its
/// own CRC32C over the serialized bytes, inside a page-stream chain whose
/// head the page-0 superblock points at. Page footers already checksum
/// each 8 KB page; the blob CRC additionally catches a manifest stitched
/// together from pages of different writes. See docs/PROTOCOL.md
/// "Dataset file format" for the byte layout.
struct DatasetManifest {
  static constexpr uint32_t kVersion = 1;

  uint32_t version = kVersion;
  uint32_t dim = 0;
  /// Rows materialized in the stored table (the shard's slice).
  uint64_t table_rows = 0;
  /// Rows in the full point set (equal to table_rows when shard_count=1).
  uint64_t total_rows = 0;
  /// Generator seed for synthetic catalogs; 0 for ingested data.
  uint64_t seed = 0;
  /// Free-form origin string, e.g. "synthetic seed=42" or "csv:sky.csv".
  std::string provenance;
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
  /// Pages of the clustered point table, in append order (Table::Attach).
  std::vector<PageId> table_pages;
  /// Full-point-set coordinate chain (IndexIo::SavePointSet).
  PageId points_head = kInvalidPageId;
  /// Index chains over the FULL point set. The kd-tree is mandatory (the
  /// server re-extracts its shard subtree from it at load time); grid and
  /// Voronoi are optional (kInvalidPageId when absent).
  PageId kdtree_head = kInvalidPageId;
  PageId grid_head = kInvalidPageId;
  PageId voronoi_head = kInvalidPageId;
};

/// Persistence for the spatial indexes: an index is serialized into a
/// chain of buffer-pool pages living in the same pager file as the tables
/// it indexes, so a database file reopens with its indexes intact — the
/// paper's indexes likewise persist inside SQL Server alongside the
/// magnitude table.
///
/// The coordinate data itself is not duplicated: Load takes the same
/// PointSet the index was built over (normally re-materialized from the
/// stored table) and validates that its size and dimension match.
class IndexIo {
 public:
  /// Serializes the index; returns the head page of its chain (store it in
  /// your catalog/metadata page).
  static Result<PageId> SaveKdTree(BufferPool* pool, const KdTreeIndex& index);
  static Result<PageId> SaveLayeredGrid(BufferPool* pool,
                                        const LayeredGridIndex& index);
  static Result<PageId> SaveVoronoi(BufferPool* pool,
                                    const VoronoiIndex& index);

  /// Deserializes an index saved by the matching Save call. `points` must
  /// contain the identical point set (same size/dim, same order) and must
  /// outlive the index. Fails with Corruption on bad magic and
  /// InvalidArgument on a mismatched point set.
  static Result<KdTreeIndex> LoadKdTree(BufferPool* pool, PageId head,
                                        const PointSet* points);
  static Result<LayeredGridIndex> LoadLayeredGrid(BufferPool* pool,
                                                  PageId head,
                                                  const PointSet* points);
  static Result<VoronoiIndex> LoadVoronoi(BufferPool* pool, PageId head,
                                          const PointSet* points);

  // --- dataset lifecycle (manifest + coordinates + superblock) -------------

  /// Serializes the raw coordinates so a dataset file is self-contained:
  /// Load* above validates against a PointSet the caller supplies, and this
  /// chain is where a reopening server gets that PointSet from.
  static Result<PageId> SavePointSet(BufferPool* pool, const PointSet& points);
  static Result<PointSet> LoadPointSet(BufferPool* pool, PageId head);

  /// Serializes/loads the manifest blob (CRC-protected; see
  /// DatasetManifest). Fails with Corruption on bad magic, short blob or
  /// CRC mismatch, InvalidArgument on an unsupported version.
  static Result<PageId> SaveManifest(BufferPool* pool,
                                     const DatasetManifest& manifest);
  static Result<DatasetManifest> LoadManifest(BufferPool* pool, PageId head);

  /// Commit point of a dataset file: stamps page 0 (which the writer must
  /// have allocated first, before any chain) with the superblock — magic,
  /// format version, manifest head, CRC — and flushes. Until this
  /// succeeds, page 0 is unformatted and ReadSuperblock refuses the file,
  /// so a crashed or failed build never yields a loadable-but-incomplete
  /// dataset: the classic write-everything / sync / swap-pointer protocol,
  /// with the superblock as the pointer.
  static Status WriteSuperblock(BufferPool* pool, PageId manifest_head);

  /// Validates page 0 and returns the manifest head.
  static Result<PageId> ReadSuperblock(BufferPool* pool);
};

}  // namespace mds

#endif  // MDS_CORE_INDEX_IO_H_
