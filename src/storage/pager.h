#ifndef MDS_STORAGE_PAGER_H_
#define MDS_STORAGE_PAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace mds {

/// Abstract page-granular storage device. Implementations: FilePager
/// (POSIX file), MemPager (RAM, for tests), FaultInjectionPager (wraps
/// another pager and fails after a programmable number of operations, for
/// error-path tests).
///
/// Thread safety contract: implementations must support concurrent
/// ReadPage/WritePage/AllocatePage calls on *distinct* pages — the sharded
/// BufferPool issues miss I/O from several shards at once. Concurrent
/// operations on the same page are serialized by the buffer pool (a page
/// lives in exactly one shard), so implementations need not handle them.
class Pager {
 public:
  virtual ~Pager() = default;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Appends a zeroed page; returns its id.
  virtual Result<PageId> AllocatePage() = 0;

  /// Reads page `id` into *page.
  virtual Status ReadPage(PageId id, Page* page) = 0;

  /// Writes *page to page `id`.
  virtual Status WritePage(PageId id, const Page& page) = 0;

  /// Number of allocated pages.
  virtual uint64_t NumPages() const = 0;

  /// Flushes to durable storage where applicable.
  virtual Status Sync() = 0;

 protected:
  Pager() = default;
};

/// File-backed pager using pread/pwrite on a single file.
///
/// Thread-safe: reads and writes of allocated pages go straight to
/// positioned I/O (pread/pwrite carry their own offset, no shared file
/// cursor); the append edge — AllocatePage and the WritePage extension
/// case — is serialized by a mutex, and the page count is atomic so
/// readers never lock.
class FilePager : public Pager {
 public:
  ~FilePager() override;

  /// Creates (truncates) a new pager file.
  static Result<std::unique_ptr<FilePager>> Create(const std::string& path);

  /// Opens an existing pager file; size must be a multiple of kPageSize.
  static Result<std::unique_ptr<FilePager>> Open(const std::string& path);

  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* page) override;
  Status WritePage(PageId id, const Page& page) override;
  uint64_t NumPages() const override { return num_pages_; }
  Status Sync() override;

 private:
  FilePager(int fd, std::string path, uint64_t num_pages)
      : fd_(fd), path_(std::move(path)), num_pages_(num_pages) {}

  int fd_ = -1;
  std::string path_;
  std::mutex append_mu_;  // serializes growth of the file
  std::atomic<uint64_t> num_pages_{0};
};

/// In-memory pager; used by unit tests and small pipelines.
///
/// Thread-safe: a reader/writer lock guards the page directory, so any
/// number of ReadPage calls proceed in parallel while AllocatePage /
/// WritePage take the lock exclusively (pages are stored behind stable
/// unique_ptrs, but allocation may reallocate the directory vector).
class MemPager : public Pager {
 public:
  MemPager() = default;

  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* page) override;
  Status WritePage(PageId id, const Page& page) override;
  uint64_t NumPages() const override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return pages_.size();
  }
  Status Sync() override { return Status::OK(); }

 private:
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Page>> pages_;
};

/// Wraps a pager and injects an IOError after `fail_after` successful
/// operations (reads+writes+allocations). Used to test that storage errors
/// propagate as Status through every layer instead of crashing.
/// Thread-safe (the budget is an atomic) to the extent the wrapped pager is.
class FaultInjectionPager : public Pager {
 public:
  explicit FaultInjectionPager(Pager* base, uint64_t fail_after)
      : base_(base), remaining_(fail_after) {}

  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* page) override;
  Status WritePage(PageId id, const Page& page) override;
  uint64_t NumPages() const override { return base_->NumPages(); }
  Status Sync() override;

  /// Re-arms the injector.
  void Reset(uint64_t fail_after) { remaining_ = fail_after; }

 private:
  Status Tick();

  Pager* base_;
  std::atomic<uint64_t> remaining_;
};

}  // namespace mds

#endif  // MDS_STORAGE_PAGER_H_
