#ifndef MDS_STORAGE_PAGER_H_
#define MDS_STORAGE_PAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "storage/page.h"

namespace mds {

/// Abstract page-granular storage device. Implementations: FilePager
/// (POSIX file), MemPager (RAM, for tests), FaultInjectionPager (wraps
/// another pager and injects seeded probabilistic faults, for integrity
/// and error-path tests), RetryingPager (wraps another pager and retries
/// transient failures with bounded exponential backoff).
///
/// Error taxonomy: implementations report transient failures (safe to
/// retry: EINTR, injected transients) as kUnavailable and everything else
/// as kIOError / kOutOfRange / kCorruption. Callers that do not retry can
/// treat kUnavailable as an I/O error.
///
/// Thread safety contract: implementations must support concurrent
/// ReadPage/WritePage/AllocatePage calls on *distinct* pages — the sharded
/// BufferPool issues miss I/O from several shards at once. Concurrent
/// operations on the same page are serialized by the buffer pool (a page
/// lives in exactly one shard), so implementations need not handle them.
class Pager {
 public:
  virtual ~Pager() = default;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Appends a zeroed page; returns its id.
  virtual Result<PageId> AllocatePage() = 0;

  /// Reads page `id` into *page.
  virtual Status ReadPage(PageId id, Page* page) = 0;

  /// Writes *page to page `id`.
  virtual Status WritePage(PageId id, const Page& page) = 0;

  /// Number of allocated pages.
  virtual uint64_t NumPages() const = 0;

  /// Flushes to durable storage where applicable.
  virtual Status Sync() = 0;

 protected:
  Pager() = default;
};

/// File-backed pager using pread/pwrite on a single file.
///
/// Robustness: every transfer runs through a bounded retry loop that
/// resumes partial preads/pwrites at the interrupted offset and backs off
/// exponentially on EINTR, so a signal-interrupted or short transfer never
/// surfaces as a failure unless it persists past the retry budget (then it
/// surfaces as kUnavailable). Retries are counted in io_retries(). Error
/// messages carry the file path and page id.
///
/// Thread-safe: reads and writes of allocated pages go straight to
/// positioned I/O (pread/pwrite carry their own offset, no shared file
/// cursor); the append edge — AllocatePage and the WritePage extension
/// case — is serialized by a mutex, and the page count is atomic so
/// readers never lock.
class FilePager : public Pager {
 public:
  ~FilePager() override;

  /// Creates (truncates) a new pager file.
  static Result<std::unique_ptr<FilePager>> Create(const std::string& path);

  /// Opens an existing pager file; size must be a multiple of kPageSize.
  static Result<std::unique_ptr<FilePager>> Open(const std::string& path);

  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* page) override;
  Status WritePage(PageId id, const Page& page) override;
  uint64_t NumPages() const override { return num_pages_; }
  Status Sync() override;

  const std::string& path() const { return path_; }

  /// Transfers that had to be resumed or repeated (EINTR, partial
  /// pread/pwrite) since construction.
  uint64_t io_retries() const {
    return io_retries_.load(std::memory_order_relaxed);
  }

  /// Retry budget per transfer: a transfer may be resumed/repeated this
  /// many times before failing with kUnavailable.
  static constexpr int kMaxIoRetries = 8;

 private:
  FilePager(int fd, std::string path, uint64_t num_pages)
      : fd_(fd), path_(std::move(path)), num_pages_(num_pages) {}

  /// Full-length positioned transfer with EINTR/partial-transfer retries.
  Status TransferFull(bool write, PageId id, uint64_t offset, uint8_t* buf,
                      size_t len);
  Status WritePageLocked(PageId id, const Page& page);

  int fd_ = -1;
  std::string path_;
  std::mutex append_mu_;  // serializes growth of the file
  std::atomic<uint64_t> num_pages_{0};
  std::atomic<uint64_t> io_retries_{0};
};

/// In-memory pager; used by unit tests and small pipelines.
///
/// Thread-safe: a reader/writer lock guards the page directory, so any
/// number of ReadPage calls proceed in parallel while AllocatePage /
/// WritePage take the lock exclusively (pages are stored behind stable
/// unique_ptrs, but allocation may reallocate the directory vector).
class MemPager : public Pager {
 public:
  MemPager() = default;

  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* page) override;
  Status WritePage(PageId id, const Page& page) override;
  uint64_t NumPages() const override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return pages_.size();
  }
  Status Sync() override { return Status::OK(); }

 private:
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Page>> pages_;
};

/// Seeded probabilistic fault model for FaultInjectionPager. All
/// probabilities are per-operation; with a fixed seed the injected fault
/// sequence is fully deterministic (single-threaded use), which is what
/// makes CI fault campaigns reproducible from a seed.
struct FaultConfig {
  static constexpr uint64_t kUnlimited = ~uint64_t{0};

  uint64_t seed = 1;

  /// Reads: the read succeeds but 1–4 random bits of the returned page
  /// are flipped — silent corruption, detectable only by checksum.
  double p_bit_flip = 0.0;

  /// Writes: only a sector-aligned prefix of the page reaches the base
  /// pager, yet the write reports success — a torn write, detectable only
  /// by checksum on a later read.
  double p_torn_write = 0.0;

  /// Reads: the read fails with a transient kUnavailable before touching
  /// the base pager (a short pread); the retry succeeds.
  double p_short_read = 0.0;

  /// Any operation: transient kUnavailable; retrying the same operation
  /// (same op kind and page) is guaranteed to pass the fault draws.
  double p_transient = 0.0;

  /// Any operation: permanent kIOError; retries fail the draws afresh.
  double p_permanent = 0.0;

  /// Deterministic budget: admit exactly this many operations, then fail
  /// every further one with kIOError (kUnlimited disables). Drives the
  /// fault-at-every-op-index atomic-save sweep.
  uint64_t fail_after = kUnlimited;
};

/// Injected-fault accounting, by kind. total_injected() is the campaign
/// metric (the acceptance gate wants >= 10k injected faults).
struct FaultStats {
  uint64_t ops = 0;  ///< operations that entered the injector
  uint64_t bit_flips = 0;
  uint64_t torn_writes = 0;
  uint64_t short_reads = 0;
  uint64_t transients = 0;
  uint64_t permanents = 0;
  uint64_t budget_faults = 0;

  uint64_t total_injected() const {
    return bit_flips + torn_writes + short_reads + transients + permanents +
           budget_faults;
  }
};

/// Wraps a pager and injects seeded probabilistic faults — bit flips,
/// torn writes, short reads, transient and permanent I/O errors — plus an
/// optional deterministic fail-after-N budget. Used to prove that storage
/// errors propagate as Status (never crash) and that the checksum /
/// quarantine / retry machinery turns silent corruption into detected,
/// recoverable degradation.
///
/// Thread-safe: one mutex serializes the fault draws, the base operation
/// and the stats, so concurrent callers see a consistent (if arbitrary)
/// interleaving. Deterministic fault sequences require single-threaded
/// use, which is how the campaigns run.
class FaultInjectionPager : public Pager {
 public:
  FaultInjectionPager(Pager* base, const FaultConfig& config)
      : base_(base), config_(config), rng_(config.seed) {}

  /// Legacy convenience: fail every operation after the first
  /// `fail_after` (no probabilistic faults).
  FaultInjectionPager(Pager* base, uint64_t fail_after)
      : FaultInjectionPager(base, BudgetOnly(fail_after)) {}

  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* page) override;
  Status WritePage(PageId id, const Page& page) override;
  uint64_t NumPages() const override { return base_->NumPages(); }
  Status Sync() override;

  /// Re-arms the deterministic budget and clears transient bookkeeping
  /// (probabilities and RNG state are left as they are).
  void Reset(uint64_t fail_after);

  FaultStats stats() const;

 private:
  enum class Op : uint8_t { kAlloc, kRead, kWrite, kSync };

  static FaultConfig BudgetOnly(uint64_t fail_after) {
    FaultConfig config;
    config.fail_after = fail_after;
    return config;
  }

  /// Runs the fault draws for one operation; called with mu_ held.
  /// On OK, *flip_bits / *torn_prefix describe silent corruption to apply
  /// (0 = none).
  Status Draw(Op op, PageId id, int* flip_bits, size_t* torn_prefix);

  static uint64_t TransientKey(Op op, PageId id) {
    return (static_cast<uint64_t>(op) << 56) ^ (id & ((1ull << 56) - 1));
  }

  Pager* base_;
  FaultConfig config_;
  mutable std::mutex mu_;
  Rng rng_;
  uint64_t ops_admitted_ = 0;
  FaultStats stats_;
  /// (op, page) pairs whose last failure was transient: the next attempt
  /// bypasses the draws, so "succeeds on retry" holds deterministically.
  std::unordered_set<uint64_t> pending_transients_;
};

/// Wraps any pager and retries operations that fail transiently
/// (kUnavailable) with bounded exponential backoff. This is the recovery
/// half of the fault-tolerance story: FaultInjectionPager (or a flaky
/// device) produces transients, RetryingPager absorbs them, and only
/// persistent failures propagate to the buffer pool.
///
/// Thread-safe to the extent the wrapped pager is (counters are atomics;
/// the backoff sleeps are per-call).
class RetryingPager : public Pager {
 public:
  struct Options {
    int max_attempts = 4;          ///< total tries per operation (>= 1)
    uint64_t backoff_base_us = 0;  ///< sleep before retry k: base << (k-1)
  };

  explicit RetryingPager(Pager* base) : base_(base) {}
  RetryingPager(Pager* base, const Options& options)
      : base_(base), options_(options) {}

  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* page) override;
  Status WritePage(PageId id, const Page& page) override;
  uint64_t NumPages() const override { return base_->NumPages(); }
  Status Sync() override;

  /// Transient failures that were retried (whether or not the retry won).
  uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }
  /// Operations that still failed after exhausting the retry budget.
  uint64_t exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

 private:
  template <typename Fn>
  Status RunWithRetry(Fn&& fn);

  Pager* base_;
  Options options_;
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> exhausted_{0};
};

}  // namespace mds

#endif  // MDS_STORAGE_PAGER_H_
