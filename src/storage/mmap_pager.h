#ifndef MDS_STORAGE_MMAP_PAGER_H_
#define MDS_STORAGE_MMAP_PAGER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace mds {

/// Read-only pager over an mmap(2) mapping of a pager file. Serving an
/// immutable dataset release does not need write access, and mapping the
/// file replaces every per-miss pread syscall with a copy straight out of
/// the kernel page cache — the buffer pool's miss path (including checksum
/// verification) runs unchanged on top.
///
/// The mapping is established with MAP_POPULATE where the kernel supports
/// it (pre-faulting the file so first-touch misses do not each take a
/// major fault) and falls back to a plain mapping otherwise;
/// madvise(MADV_WILLNEED) hints the readahead either way. Callers that
/// need write access — or run where mmap fails (exotic filesystems,
/// address-space exhaustion) — use FilePager::Open instead;
/// ServedDataset::Load does that fallback automatically.
///
/// Error taxonomy (same contract as pager.h): open/stat/map failures are
/// kIOError with errno text, a size that is not a whole number of pages is
/// kCorruption, reads past the end are kOutOfRange, and every mutating
/// operation (AllocatePage/WritePage) is kFailedPrecondition — a read-only
/// device, not a transient fault, so nothing retries it.
///
/// Thread safety: fully thread-safe. The mapping is immutable after Open,
/// so concurrent ReadPage calls on any pages need no synchronization.
class MmapPager : public Pager {
 public:
  ~MmapPager() override;

  /// Maps an existing pager file read-only; its size must be a multiple of
  /// kPageSize.
  static Result<std::unique_ptr<MmapPager>> Open(const std::string& path);

  Result<PageId> AllocatePage() override;
  Status ReadPage(PageId id, Page* page) override;
  Status WritePage(PageId id, const Page& page) override;
  uint64_t NumPages() const override { return num_pages_; }
  Status Sync() override { return Status::OK(); }  // nothing to flush

  const std::string& path() const { return path_; }
  /// True when the mapping was pre-faulted with MAP_POPULATE (false when
  /// the kernel rejected the flag and Open fell back to a lazy mapping).
  bool populated() const { return populated_; }

 private:
  MmapPager(std::string path, const uint8_t* base, size_t mapped_bytes,
            uint64_t num_pages, bool populated)
      : path_(std::move(path)),
        base_(base),
        mapped_bytes_(mapped_bytes),
        num_pages_(num_pages),
        populated_(populated) {}

  std::string path_;
  const uint8_t* base_ = nullptr;
  size_t mapped_bytes_ = 0;
  uint64_t num_pages_ = 0;
  bool populated_ = false;
};

}  // namespace mds

#endif  // MDS_STORAGE_MMAP_PAGER_H_
