#ifndef MDS_STORAGE_TABLE_SAMPLE_H_
#define MDS_STORAGE_TABLE_SAMPLE_H_

#include "common/rng.h"
#include "common/status.h"
#include "storage/table.h"

namespace mds {

/// Page-level Bernoulli sampling, the semantics of SQL Server's
/// `TABLESAMPLE SYSTEM (p PERCENT)` that the paper's first visualization
/// prototype used (§3.1): each *page* is included with probability
/// percent/100 and every row on an included page is produced. This is the
/// E3 baseline whose under/over-sampling problems motivate the layered
/// grid.
///
/// fn(row_id, RowRef) may return void or bool (false stops the sample
/// early, the analog of a TOP(n) clause).
template <typename Fn>
Status TableSamplePages(const Table& table, double percent, Rng& rng,
                        Fn&& fn) {
  if (percent < 0.0 || percent > 100.0) {
    return Status::InvalidArgument("TableSamplePages: bad percentage");
  }
  const double p = percent / 100.0;
  bool stopped = false;
  for (uint64_t page = 0; page < table.num_pages() && !stopped; ++page) {
    if (rng.NextDouble() >= p) continue;
    MDS_RETURN_NOT_OK(table.ScanPage(page, [&](uint64_t row_id, RowRef ref) {
      if constexpr (std::is_void_v<decltype(fn(row_id, ref))>) {
        fn(row_id, ref);
        return true;
      } else {
        if (!fn(row_id, ref)) {
          stopped = true;
          return false;
        }
        return true;
      }
    }));
  }
  return Status::OK();
}

}  // namespace mds

#endif  // MDS_STORAGE_TABLE_SAMPLE_H_
