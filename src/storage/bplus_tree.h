#ifndef MDS_STORAGE_BPLUS_TREE_H_
#define MDS_STORAGE_BPLUS_TREE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"

namespace mds {

/// Paged B+-tree mapping int64 keys to uint64 values (row ids). Duplicate
/// keys are allowed. This is the secondary-index substrate (the analog of
/// the SQL Server nonclustered indexes backing RandomID / Layer /
/// ContainedBy predicates); nodes live in buffer-pool pages so lookups are
/// I/O-accounted like everything else.
///
/// Node layout (little-endian):
///   common   : u8 is_leaf, u8 pad, u16 count
///   leaf     : u64 next_leaf, then count * (i64 key, u64 value)
///   internal : u64 child0, then count * (i64 key, u64 child)
///              subtree child0 holds keys < key[0]; child[i] holds keys in
///              [key[i-1] ... key[i]); the last child holds keys >= key[count-1].
class BPlusTree {
 public:
  /// Creates an empty tree (a single empty leaf).
  static Result<BPlusTree> Create(BufferPool* pool);

  /// Builds a tree bottom-up from key-sorted (key, value) pairs; much
  /// faster and denser than repeated Insert.
  static Result<BPlusTree> BulkLoad(
      BufferPool* pool, const std::vector<std::pair<int64_t, uint64_t>>& pairs);

  /// Inserts one (key, value) pair.
  Status Insert(int64_t key, uint64_t value);

  /// Calls fn(key, value) for every entry with key in [lo, hi], in key
  /// order. fn may return void or bool (false stops the walk).
  Status RangeLookup(int64_t lo, int64_t hi,
                     const std::function<bool(int64_t, uint64_t)>& fn) const;

  /// Collects all values with exactly this key.
  Result<std::vector<uint64_t>> Lookup(int64_t key) const;

  uint64_t num_entries() const { return num_entries_; }
  uint32_t height() const { return height_; }
  PageId root() const { return root_; }

 private:
  explicit BPlusTree(BufferPool* pool) : pool_(pool) {}

  struct SplitResult {
    bool split = false;
    int64_t sep_key = 0;
    PageId right = kInvalidPageId;
  };

  Result<SplitResult> InsertRecursive(PageId node, uint32_t level, int64_t key,
                                      uint64_t value);

  /// Descends to the leaf that may contain `key`.
  Result<PageId> FindLeaf(int64_t key) const;

  BufferPool* pool_;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 1;  // number of levels; 1 == root is a leaf
  uint64_t num_entries_ = 0;

 public:
  // Capacity constants exposed for tests.
  static constexpr size_t kHeaderSize = 4;
  static constexpr size_t kLeafHeader = kHeaderSize + 8;   // + next pointer
  static constexpr size_t kLeafCapacity = (kPageUsableSize - kLeafHeader) / 16;
  static constexpr size_t kInternalHeader = kHeaderSize + 8;  // + child0
  static constexpr size_t kInternalCapacity =
      (kPageUsableSize - kInternalHeader) / 16;
};

}  // namespace mds

#endif  // MDS_STORAGE_BPLUS_TREE_H_
