#include "storage/buffer_pool.h"

#include "common/logging.h"

namespace mds {

namespace {

size_t AutoShards(size_t capacity) {
  size_t shards = 1;
  while (shards < BufferPool::kMaxAutoShards &&
         capacity / (shards * 2) >= BufferPool::kMinShardCapacity) {
    shards *= 2;
  }
  return shards;
}

}  // namespace

BufferPool::BufferPool(Pager* pager, size_t capacity, size_t shards,
                       bool verify_checksums)
    : pager_(pager), capacity_(capacity), verify_checksums_(verify_checksums) {
  MDS_CHECK(capacity_ > 0);
  if (shards == 0) shards = AutoShards(capacity);
  if (shards > capacity) shards = capacity;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    // First `capacity % shards` shards absorb the remainder.
    shards_[s]->capacity = capacity / shards + (s < capacity % shards ? 1 : 0);
  }
}

BufferPool::~BufferPool() {
  // Best-effort flush; errors at teardown cannot be reported.
  (void)FlushAll();
}

Result<BufferPool::PageGuard> BufferPool::Fetch(PageId id, bool* physical) {
  if (IsQuarantined(id)) {
    return Status::Corruption("page " + std::to_string(id) +
                              " is quarantined (failed checksum earlier)");
  }
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.logical_reads.fetch_add(1, std::memory_order_relaxed);
  MDS_ASSIGN_OR_RETURN(Frame * frame,
                       GetFrame(shard, id, /*load=*/true, physical));
  Pin(shard, frame);
  return PageGuard(this, frame);
}

Result<BufferPool::PageGuard> BufferPool::Allocate() {
  MDS_ASSIGN_OR_RETURN(PageId id, pager_->AllocatePage());
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.logical_reads.fetch_add(1, std::memory_order_relaxed);
  MDS_ASSIGN_OR_RETURN(Frame * frame,
                       GetFrame(shard, id, /*load=*/false, nullptr));
  Pin(shard, frame);
  PageGuard guard(this, frame);
  guard.MarkDirty();
  return guard;
}

Result<BufferPool::Frame*> BufferPool::GetFrame(Shard& shard, PageId id,
                                                bool load, bool* physical) {
  if (physical != nullptr) *physical = false;
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    return it->second.get();
  }
  while (shard.frames.size() >= shard.capacity) {
    MDS_RETURN_NOT_OK(EvictOne(shard));
  }
  auto frame = std::make_unique<Frame>();
  frame->id = id;
  if (load) {
    shard.physical_reads.fetch_add(1, std::memory_order_relaxed);
    if (physical != nullptr) *physical = true;
    MDS_RETURN_NOT_OK(pager_->ReadPage(id, &frame->page));
    if (verify_checksums_) {
      switch (VerifyPageChecksum(frame->page)) {
        case PageVerdict::kOk:
          shard.checksums_verified.fetch_add(1, std::memory_order_relaxed);
          break;
        case PageVerdict::kUnformatted:
          shard.checksum_skips.fetch_add(1, std::memory_order_relaxed);
          break;
        case PageVerdict::kCorrupt:
          // The frame is dropped, never entering the table: a corrupt
          // page must not be served from cache, not even by accident.
          shard.checksum_failures.fetch_add(1, std::memory_order_relaxed);
          Quarantine(id);
          return Status::Corruption(
              "page " + std::to_string(id) + " failed checksum: stored=" +
              std::to_string(PageStoredCrc(frame->page)) +
              " computed=" + std::to_string(PageComputedCrc(frame->page)));
      }
    }
  }
  Frame* raw = frame.get();
  shard.frames.emplace(id, std::move(frame));
  return raw;
}

Status BufferPool::EvictOne(Shard& shard) {
  // Evict the least recently used unpinned page of this shard.
  for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
    PageId victim = *it;
    auto fit = shard.frames.find(victim);
    MDS_CHECK(fit != shard.frames.end());
    Frame* f = fit->second.get();
    if (f->pins != 0) continue;
    if (f->dirty) {
      MDS_RETURN_NOT_OK(WriteBack(shard, f));
    }
    shard.lru.erase(std::next(it).base());
    shard.frames.erase(fit);
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  return Status::ResourceExhausted("buffer pool: all pages of shard pinned");
}

void BufferPool::Pin(Shard& shard, Frame* f) {
  if (f->in_lru) {
    shard.lru.erase(f->lru_pos);
    f->in_lru = false;
  }
  ++f->pins;
}

void BufferPool::Unpin(Frame* f, bool dirty) {
  Shard& shard = ShardFor(f->id);
  std::lock_guard<std::mutex> lock(shard.mu);
  MDS_CHECK(f->pins > 0);
  f->dirty = f->dirty || dirty;
  --f->pins;
  if (f->pins == 0) {
    shard.lru.push_front(f->id);
    f->lru_pos = shard.lru.begin();
    f->in_lru = true;
  }
}

Status BufferPool::FlushAll() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [id, frame] : shard->frames) {
      if (frame->dirty) {
        MDS_RETURN_NOT_OK(WriteBack(*shard, frame.get()));
        frame->dirty = false;
      }
    }
  }
  return pager_->Sync();
}

Status BufferPool::WriteBack(Shard& shard, Frame* f) {
  // Stamp the footer CRC right before the bytes leave the pool — the one
  // choke point every physical write funnels through, so no page reaches
  // the device unstamped.
  if (verify_checksums_) StampPageChecksum(&f->page);
  shard.physical_writes.fetch_add(1, std::memory_order_relaxed);
  return pager_->WritePage(f->id, f->page);
}

void BufferPool::Quarantine(PageId id) {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  quarantined_.insert(id);
  quarantine_nonempty_.store(true, std::memory_order_release);
}

bool BufferPool::IsQuarantined(PageId id) const {
  if (!quarantine_nonempty_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return quarantined_.count(id) != 0;
}

size_t BufferPool::quarantined_count() const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return quarantined_.size();
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (const auto& shard : shards_) {
    total.logical_reads += shard->logical_reads.load(std::memory_order_relaxed);
    total.physical_reads +=
        shard->physical_reads.load(std::memory_order_relaxed);
    total.physical_writes +=
        shard->physical_writes.load(std::memory_order_relaxed);
    total.evictions += shard->evictions.load(std::memory_order_relaxed);
    total.checksums_verified +=
        shard->checksums_verified.load(std::memory_order_relaxed);
    total.checksum_skips +=
        shard->checksum_skips.load(std::memory_order_relaxed);
    total.checksum_failures +=
        shard->checksum_failures.load(std::memory_order_relaxed);
  }
  return total;
}

void BufferPool::ResetStats() {
  for (auto& shard : shards_) {
    shard->logical_reads.store(0, std::memory_order_relaxed);
    shard->physical_reads.store(0, std::memory_order_relaxed);
    shard->physical_writes.store(0, std::memory_order_relaxed);
    shard->evictions.store(0, std::memory_order_relaxed);
    shard->checksums_verified.store(0, std::memory_order_relaxed);
    shard->checksum_skips.store(0, std::memory_order_relaxed);
    shard->checksum_failures.store(0, std::memory_order_relaxed);
  }
}

CounterSnapshot BufferPool::Snapshot() const {
  const BufferPoolStats total = stats();
  return CounterSnapshot{total.logical_reads, total.physical_reads,
                         total.checksums_verified, total.checksum_skips};
}

CounterSnapshot::Delta BufferPool::Delta(const CounterSnapshot& since) const {
  const BufferPoolStats total = stats();
  return CounterSnapshot::Delta{
      total.logical_reads - since.logical_reads,
      total.physical_reads - since.physical_reads,
      total.checksums_verified - since.checksums_verified,
      total.checksum_skips - since.checksum_skips};
}

size_t BufferPool::resident() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->frames.size();
  }
  return n;
}

}  // namespace mds
