#include "storage/buffer_pool.h"

#include "common/logging.h"

namespace mds {

BufferPool::BufferPool(Pager* pager, size_t capacity)
    : pager_(pager), capacity_(capacity) {
  MDS_CHECK(capacity_ > 0);
}

BufferPool::~BufferPool() {
  // Best-effort flush; errors at teardown cannot be reported.
  (void)FlushAll();
}

Result<BufferPool::PageGuard> BufferPool::Fetch(PageId id) {
  ++stats_.logical_reads;
  MDS_ASSIGN_OR_RETURN(Frame * frame, GetFrame(id, /*load=*/true));
  Pin(frame);
  return PageGuard(this, frame);
}

Result<BufferPool::PageGuard> BufferPool::Allocate() {
  MDS_ASSIGN_OR_RETURN(PageId id, pager_->AllocatePage());
  ++stats_.logical_reads;
  MDS_ASSIGN_OR_RETURN(Frame * frame, GetFrame(id, /*load=*/false));
  Pin(frame);
  PageGuard guard(this, frame);
  guard.MarkDirty();
  return guard;
}

Result<BufferPool::Frame*> BufferPool::GetFrame(PageId id, bool load) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    return it->second.get();
  }
  while (frames_.size() >= capacity_) {
    MDS_RETURN_NOT_OK(EvictOne());
  }
  auto frame = std::make_unique<Frame>();
  frame->id = id;
  if (load) {
    ++stats_.physical_reads;
    MDS_RETURN_NOT_OK(pager_->ReadPage(id, &frame->page));
  }
  Frame* raw = frame.get();
  frames_.emplace(id, std::move(frame));
  return raw;
}

Status BufferPool::EvictOne() {
  // Evict the least recently used unpinned page.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    PageId victim = *it;
    auto fit = frames_.find(victim);
    MDS_CHECK(fit != frames_.end());
    Frame* f = fit->second.get();
    if (f->pins != 0) continue;
    if (f->dirty) {
      ++stats_.physical_writes;
      MDS_RETURN_NOT_OK(pager_->WritePage(f->id, f->page));
    }
    lru_.erase(std::next(it).base());
    frames_.erase(fit);
    ++stats_.evictions;
    return Status::OK();
  }
  return Status::ResourceExhausted("buffer pool: all pages pinned");
}

void BufferPool::Pin(Frame* f) {
  if (f->in_lru) {
    lru_.erase(f->lru_pos);
    f->in_lru = false;
  }
  ++f->pins;
}

void BufferPool::Unpin(Frame* f, bool dirty) {
  MDS_CHECK(f->pins > 0);
  f->dirty = f->dirty || dirty;
  --f->pins;
  if (f->pins == 0) {
    lru_.push_front(f->id);
    f->lru_pos = lru_.begin();
    f->in_lru = true;
  }
}

Status BufferPool::FlushAll() {
  for (auto& [id, frame] : frames_) {
    if (frame->dirty) {
      ++stats_.physical_writes;
      MDS_RETURN_NOT_OK(pager_->WritePage(frame->id, frame->page));
      frame->dirty = false;
    }
  }
  return pager_->Sync();
}

}  // namespace mds
