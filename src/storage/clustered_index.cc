#include "storage/clustered_index.h"

#include <algorithm>

namespace mds {

Result<ClusteredKeyIndex> ClusteredKeyIndex::Build(const Table* table,
                                                   size_t key_col) {
  if (key_col >= table->schema().num_columns() ||
      table->schema().column(key_col).type != ColumnType::kInt64) {
    return Status::InvalidArgument(
        "ClusteredKeyIndex: key column must be int64");
  }
  ClusteredKeyIndex index(table, key_col);
  index.first_keys_.reserve(table->num_pages());
  int64_t prev = INT64_MIN;
  bool monotone = true;
  MDS_RETURN_NOT_OK(table->Scan([&](uint64_t row_id, RowRef ref) {
    int64_t k = ref.GetInt64(key_col);
    if (k < prev) monotone = false;
    prev = k;
    if (row_id % table->rows_per_page() == 0) index.first_keys_.push_back(k);
  }));
  if (!monotone) {
    return Status::FailedPrecondition(
        "ClusteredKeyIndex: table not sorted by key column");
  }
  return index;
}

uint64_t ClusteredKeyIndex::FirstCandidatePage(int64_t key) const {
  // Last page whose first key is <= key.
  auto it = std::upper_bound(first_keys_.begin(), first_keys_.end(), key);
  if (it == first_keys_.begin()) return 0;
  return static_cast<uint64_t>(std::distance(first_keys_.begin(), it)) - 1;
}

Result<std::pair<uint64_t, uint64_t>> ClusteredKeyIndex::EqualRange(
    int64_t key_lo, int64_t key_hi) const {
  uint64_t begin = table_->num_rows();
  uint64_t end = table_->num_rows();
  bool found_begin = false;
  if (table_->num_rows() == 0 || key_lo > key_hi) return std::make_pair(uint64_t{0}, uint64_t{0});
  uint64_t page = FirstCandidatePage(key_lo);
  uint64_t start_row = page * table_->rows_per_page();
  MDS_RETURN_NOT_OK(table_->ScanRange(
      start_row, table_->num_rows(), [&](uint64_t row_id, RowRef ref) -> bool {
        int64_t k = ref.GetInt64(key_col_);
        if (!found_begin) {
          if (k >= key_lo) {
            begin = row_id;
            found_begin = true;
          }
        }
        if (k > key_hi) {
          end = row_id;
          return false;
        }
        return true;
      }));
  if (!found_begin) return std::make_pair(table_->num_rows(), table_->num_rows());
  if (end < begin) end = begin;
  return std::make_pair(begin, end);
}

}  // namespace mds
