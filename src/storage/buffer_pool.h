#ifndef MDS_STORAGE_BUFFER_POOL_H_
#define MDS_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace mds {

/// I/O accounting, the primary metric for experiments E2/E3: the paper's
/// key claim for the layered grid is that "practically only points which
/// are actually returned are read from disk", which we verify by counting
/// physical page reads here.
struct BufferPoolStats {
  uint64_t logical_reads = 0;   ///< page fetches served (hit or miss)
  uint64_t physical_reads = 0;  ///< fetches that had to hit the pager
  uint64_t physical_writes = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    return logical_reads == 0
               ? 1.0
               : 1.0 - static_cast<double>(physical_reads) /
                           static_cast<double>(logical_reads);
  }
};

/// Point-in-time copy of the pool's read counters plus delta arithmetic —
/// the one way to measure per-query I/O. Take a snapshot before the query,
/// subtract after; no caller should diff raw `stats()` fields by hand.
struct CounterSnapshot {
  uint64_t logical_reads = 0;
  uint64_t physical_reads = 0;

  struct Delta {
    uint64_t logical_reads = 0;   ///< page fetches since the snapshot
    uint64_t physical_reads = 0;  ///< fetches that missed the pool
  };
};

/// Fixed-capacity LRU buffer pool over a Pager. Pages are pinned while a
/// PageGuard is alive; unpinned pages are eligible for eviction (dirty
/// pages are written back). Single-threaded by design: the query engine
/// executes one query at a time, as the paper's stored procedures do.
class BufferPool {
 public:
  /// capacity: maximum resident pages (> 0).
  BufferPool(Pager* pager, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  class PageGuard;

  /// Fetches a page, pinning it for the guard's lifetime.
  Result<PageGuard> Fetch(PageId id);

  /// Allocates a fresh page in the pager and returns it pinned (dirty).
  Result<PageGuard> Allocate();

  /// Writes back all dirty pages.
  Status FlushAll();

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats{}; }

  /// Captures the current read counters for later Delta() calls.
  CounterSnapshot Snapshot() const {
    return CounterSnapshot{stats_.logical_reads, stats_.physical_reads};
  }

  /// Reads performed since `since` was taken.
  CounterSnapshot::Delta Delta(const CounterSnapshot& since) const {
    return CounterSnapshot::Delta{stats_.logical_reads - since.logical_reads,
                                  stats_.physical_reads -
                                      since.physical_reads};
  }

  size_t capacity() const { return capacity_; }
  size_t resident() const { return frames_.size(); }
  Pager* pager() const { return pager_; }

 private:
  struct Frame {
    PageId id = kInvalidPageId;
    Page page;
    uint32_t pins = 0;
    bool dirty = false;
    std::list<PageId>::iterator lru_pos;  // valid iff pins == 0
    bool in_lru = false;
  };

  Result<Frame*> GetFrame(PageId id, bool load);
  Status EvictOne();
  void Pin(Frame* f);
  void Unpin(Frame* f, bool dirty);

  Pager* pager_;
  size_t capacity_;
  std::unordered_map<PageId, std::unique_ptr<Frame>> frames_;
  std::list<PageId> lru_;  // front = most recently used
  BufferPoolStats stats_;

  friend class PageGuard;
};

/// RAII pin on a buffered page. Mark dirty via MarkDirty() before writing.
class BufferPool::PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, Frame* frame) : pool_(pool), frame_(frame) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      dirty_ = other.dirty_;
      other.pool_ = nullptr;
      other.frame_ = nullptr;
      other.dirty_ = false;
    }
    return *this;
  }

  bool valid() const { return frame_ != nullptr; }
  PageId id() const { return frame_->id; }
  const Page& page() const { return frame_->page; }
  Page& MutablePage() {
    dirty_ = true;
    return frame_->page;
  }
  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (pool_ != nullptr && frame_ != nullptr) {
      pool_->Unpin(frame_, dirty_);
    }
    pool_ = nullptr;
    frame_ = nullptr;
    dirty_ = false;
  }

 private:
  BufferPool* pool_ = nullptr;
  Frame* frame_ = nullptr;
  bool dirty_ = false;
};

}  // namespace mds

#endif  // MDS_STORAGE_BUFFER_POOL_H_
