#ifndef MDS_STORAGE_BUFFER_POOL_H_
#define MDS_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "storage/page.h"
#include "storage/page_checksum.h"
#include "storage/pager.h"

namespace mds {

/// I/O accounting, the primary metric for experiments E2/E3: the paper's
/// key claim for the layered grid is that "practically only points which
/// are actually returned are read from disk", which we verify by counting
/// physical page reads here.
struct BufferPoolStats {
  uint64_t logical_reads = 0;   ///< page fetches served (hit or miss)
  uint64_t physical_reads = 0;  ///< fetches that had to hit the pager
  uint64_t physical_writes = 0;
  uint64_t evictions = 0;
  uint64_t checksums_verified = 0;  ///< miss reads whose CRC checked out
  uint64_t checksum_skips = 0;      ///< unformatted (fresh zero) pages
  uint64_t checksum_failures = 0;   ///< miss reads rejected -> quarantined

  double HitRate() const {
    return logical_reads == 0
               ? 1.0
               : 1.0 - static_cast<double>(physical_reads) /
                           static_cast<double>(logical_reads);
  }
};

/// Point-in-time copy of the pool's read counters plus delta arithmetic —
/// the one way to measure pool-level I/O. Take a snapshot before the work,
/// subtract after; no caller should diff raw `stats()` fields by hand.
/// Under concurrency a snapshot is a monotone (per-shard-consistent) cut:
/// deltas are exact when the pool is externally quiescent over the window,
/// and otherwise attribute all threads' I/O to the window — per-query
/// attribution under concurrency belongs to RangeScanner, which counts its
/// own fetches.
struct CounterSnapshot {
  uint64_t logical_reads = 0;
  uint64_t physical_reads = 0;
  uint64_t checksums_verified = 0;
  uint64_t checksum_skips = 0;

  struct Delta {
    uint64_t logical_reads = 0;   ///< page fetches since the snapshot
    uint64_t physical_reads = 0;  ///< fetches that missed the pool
    uint64_t checksums_verified = 0;  ///< CRC verifications in the window
    uint64_t checksum_skips = 0;      ///< unformatted pages skipped
  };
};

/// Fixed-capacity LRU buffer pool over a Pager. Pages are pinned while a
/// PageGuard is alive; unpinned pages are eligible for eviction (dirty
/// pages are written back).
///
/// Thread safety: the pool is fully thread-safe — any number of threads
/// may Fetch/Allocate/release guards concurrently, which is what lets the
/// query engine run many queries at once over one shared pool (the
/// concurrent-serving setup of DESIGN.md "Concurrency model"). Internally
/// the pool is lock-striped: pages are distributed over independent shards
/// (page id modulo shard count), each with its own mutex, frame table, LRU
/// list and capacity slice, so two queries touching different pages rarely
/// contend. Counters are per-shard atomics aggregated on read.
///
/// Per-method guarantees:
///  - Fetch / Allocate / guard release: thread-safe (shard mutex held only
///    for table/LRU bookkeeping and miss I/O of that shard).
///  - FlushAll: thread-safe, but flushes a moving target if writers are
///    active; quiesce writers for a meaningful barrier.
///  - stats / Snapshot / Delta: thread-safe, lock-free counter reads.
///  - resident: thread-safe (briefly takes each shard lock in turn).
///  - ResetStats: thread-safe, but only meaningful while quiescent.
///  - Construction/destruction: single-threaded, strictly before/after all
///    concurrent use.
///
/// Physical I/O through the pager requires the Pager implementation to be
/// thread-safe (FilePager and MemPager are; see pager.h).
class BufferPool {
 public:
  /// capacity: maximum resident pages (> 0), partitioned over the shards.
  /// shards: lock stripes; 0 picks a power of two such that every shard
  /// owns at least kMinShardCapacity pages (small pools degrade to a
  /// single shard, i.e. exactly the old single-threaded LRU semantics,
  /// which the storage tests rely on).
  /// verify_checksums: when true (default), every dirty write-back stamps
  /// the page footer CRC and every pool miss verifies it; false disables
  /// both, which exists solely so bench_integrity can measure the cost.
  BufferPool(Pager* pager, size_t capacity, size_t shards = 0,
             bool verify_checksums = true);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  class PageGuard;

  /// Fetches a page, pinning it for the guard's lifetime. If `physical`
  /// is non-null it is set to whether this fetch missed the pool and hit
  /// the pager — how RangeScanner attributes I/O to one query even while
  /// other queries run (a pool-wide counter delta could not).
  Result<PageGuard> Fetch(PageId id, bool* physical = nullptr);

  /// Allocates a fresh page in the pager and returns it pinned (dirty).
  Result<PageGuard> Allocate();

  /// Writes back all dirty pages.
  Status FlushAll();

  /// Aggregated counters across shards (by value: the per-shard counters
  /// are the source of truth and must be summed under concurrency).
  BufferPoolStats stats() const;
  void ResetStats();

  /// Captures the current read counters for later Delta() calls.
  CounterSnapshot Snapshot() const;

  /// Reads performed since `since` was taken.
  CounterSnapshot::Delta Delta(const CounterSnapshot& since) const;

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  size_t resident() const;
  Pager* pager() const { return pager_; }
  bool verify_checksums() const { return verify_checksums_; }

  /// True if `id` failed checksum verification earlier. Quarantined pages
  /// never enter the frame table: Fetch fails fast with kCorruption without
  /// re-reading the device, so a scan that skips corrupt pages pays for the
  /// bad page once, not once per query.
  bool IsQuarantined(PageId id) const;
  size_t quarantined_count() const;

  /// Auto-sharding floor: a shard is only split off while every shard
  /// keeps at least this many pages, so tiny pools stay single-sharded
  /// (global LRU order) and eviction pressure is not amplified.
  static constexpr size_t kMinShardCapacity = 64;
  /// Auto-sharding ceiling: enough stripes to keep a typical worker-pool's
  /// pin/unpin traffic spread out, small enough that per-shard LRU slices
  /// stay deep. See DESIGN.md "Concurrency model" for the rationale.
  static constexpr size_t kMaxAutoShards = 16;

 private:
  struct Frame {
    PageId id = kInvalidPageId;
    Page page;
    uint32_t pins = 0;
    bool dirty = false;
    std::list<PageId>::iterator lru_pos;  // valid iff pins == 0
    bool in_lru = false;
  };

  /// One lock stripe: an independent LRU pool over the page ids congruent
  /// to its index modulo the shard count. All fields below `mu` are
  /// guarded by `mu`; the counters are atomics so readers never lock.
  struct Shard {
    std::mutex mu;
    size_t capacity = 0;
    std::unordered_map<PageId, std::unique_ptr<Frame>> frames;
    std::list<PageId> lru;  // front = most recently used

    std::atomic<uint64_t> logical_reads{0};
    std::atomic<uint64_t> physical_reads{0};
    std::atomic<uint64_t> physical_writes{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> checksums_verified{0};
    std::atomic<uint64_t> checksum_skips{0};
    std::atomic<uint64_t> checksum_failures{0};
  };

  Shard& ShardFor(PageId id) { return *shards_[id % shards_.size()]; }

  /// Looks up or loads a frame; called with the shard mutex held.
  Result<Frame*> GetFrame(Shard& shard, PageId id, bool load, bool* physical);
  Status EvictOne(Shard& shard);
  void Pin(Shard& shard, Frame* f);
  void Unpin(Frame* f, bool dirty);
  Status WriteBack(Shard& shard, Frame* f);
  void Quarantine(PageId id);

  Pager* pager_;
  size_t capacity_;
  bool verify_checksums_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Pages rejected by checksum verification. Kept out of the sharded
  /// frame tables on purpose: the set is expected to be empty in healthy
  /// operation, so the hot Fetch path only pays one relaxed atomic load
  /// (quarantine_nonempty_) before skipping the lookup entirely.
  mutable std::mutex quarantine_mu_;
  std::unordered_set<PageId> quarantined_;
  std::atomic<bool> quarantine_nonempty_{false};

  friend class PageGuard;
};

/// RAII pin on a buffered page. Mark dirty via MarkDirty() before writing.
///
/// Thread safety: a guard is thread-compatible — it may be moved between
/// threads but must not be accessed from two threads at once. The page
/// bytes it exposes are protected only by the pin (eviction is blocked);
/// two guards on the same page see the same bytes, so concurrent writers
/// of one page must coordinate externally (the query path never writes).
class BufferPool::PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, Frame* frame) : pool_(pool), frame_(frame) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      frame_ = other.frame_;
      dirty_ = other.dirty_;
      other.pool_ = nullptr;
      other.frame_ = nullptr;
      other.dirty_ = false;
    }
    return *this;
  }

  bool valid() const { return frame_ != nullptr; }
  PageId id() const { return frame_->id; }
  const Page& page() const { return frame_->page; }
  Page& MutablePage() {
    dirty_ = true;
    return frame_->page;
  }
  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (pool_ != nullptr && frame_ != nullptr) {
      pool_->Unpin(frame_, dirty_);
    }
    pool_ = nullptr;
    frame_ = nullptr;
    dirty_ = false;
  }

 private:
  BufferPool* pool_ = nullptr;
  Frame* frame_ = nullptr;
  bool dirty_ = false;
};

}  // namespace mds

#endif  // MDS_STORAGE_BUFFER_POOL_H_
