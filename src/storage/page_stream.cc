#include "storage/page_stream.h"

namespace mds {

Status PageStreamWriter::EnsurePage() {
  if (current_ != kInvalidPageId) return Status::OK();
  MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool_->Allocate());
  Page& page = guard.MutablePage();
  page.WriteAt<PageId>(0, kInvalidPageId);
  page.WriteAt<uint32_t>(8, 0);
  if (first_ == kInvalidPageId) {
    first_ = guard.id();
  } else {
    // Link the previous page to this one.
    MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard prev, pool_->Fetch(current_prev_));
    prev.MutablePage().WriteAt<PageId>(0, guard.id());
  }
  current_ = guard.id();
  buffer_.clear();
  return Status::OK();
}

Status PageStreamWriter::Write(const void* data, size_t len) {
  if (finished_) {
    return Status::FailedPrecondition("PageStreamWriter: already finished");
  }
  const uint8_t* src = static_cast<const uint8_t*>(data);
  while (len > 0) {
    MDS_RETURN_NOT_OK(EnsurePage());
    size_t room = kCapacity - buffer_.size();
    size_t take = std::min(room, len);
    buffer_.insert(buffer_.end(), src, src + take);
    src += take;
    len -= take;
    if (buffer_.size() == kCapacity) {
      // Flush the full page and chain a new one on the next write.
      MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool_->Fetch(current_));
      Page& page = guard.MutablePage();
      std::memcpy(page.bytes() + kHeader, buffer_.data(), buffer_.size());
      page.WriteAt<uint32_t>(8, static_cast<uint32_t>(buffer_.size()));
      current_prev_ = current_;
      current_ = kInvalidPageId;
      buffer_.clear();
    }
  }
  return Status::OK();
}

Result<PageId> PageStreamWriter::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("PageStreamWriter: already finished");
  }
  if (current_ == kInvalidPageId && first_ == kInvalidPageId) {
    // Empty stream still gets one page so the chain has a head.
    MDS_RETURN_NOT_OK(EnsurePage());
  }
  if (current_ != kInvalidPageId) {
    MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool_->Fetch(current_));
    Page& page = guard.MutablePage();
    std::memcpy(page.bytes() + kHeader, buffer_.data(), buffer_.size());
    page.WriteAt<uint32_t>(8, static_cast<uint32_t>(buffer_.size()));
  }
  finished_ = true;
  return first_;
}

Status PageStreamReader::LoadNextPage() {
  if (next_ == kInvalidPageId) {
    return Status::OutOfRange("PageStreamReader: end of stream");
  }
  MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool_->Fetch(next_));
  const Page& page = guard.page();
  next_ = page.ReadAt<PageId>(0);
  uint32_t used = page.ReadAt<uint32_t>(8);
  if (used > kPageUsableSize - kHeader) {
    return Status::Corruption("PageStreamReader: bad page header");
  }
  buffer_.assign(page.bytes() + kHeader, page.bytes() + kHeader + used);
  pos_ = 0;
  return Status::OK();
}

Status PageStreamReader::Read(void* out, size_t len) {
  uint8_t* dst = static_cast<uint8_t*>(out);
  while (len > 0) {
    if (pos_ == buffer_.size()) {
      MDS_RETURN_NOT_OK(LoadNextPage());
      if (buffer_.empty() && len > 0) {
        return Status::OutOfRange("PageStreamReader: truncated stream");
      }
    }
    size_t take = std::min(buffer_.size() - pos_, len);
    std::memcpy(dst, buffer_.data() + pos_, take);
    pos_ += take;
    dst += take;
    len -= take;
  }
  return Status::OK();
}

}  // namespace mds
