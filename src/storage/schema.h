#ifndef MDS_STORAGE_SCHEMA_H_
#define MDS_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace mds {

/// Column value types. All fixed width so rows pack densely into pages;
/// kBytes is a fixed-size binary blob (the "vector data type" of §3.5).
enum class ColumnType : uint8_t {
  kInt64 = 0,
  kFloat32 = 1,
  kFloat64 = 2,
  kBytes = 3,
};

struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  /// Width in bytes; only meaningful (and required) for kBytes.
  uint32_t width = 0;
};

inline uint32_t ColumnWidth(const ColumnSpec& spec) {
  switch (spec.type) {
    case ColumnType::kInt64:
      return 8;
    case ColumnType::kFloat32:
      return 4;
    case ColumnType::kFloat64:
      return 8;
    case ColumnType::kBytes:
      return spec.width;
  }
  return 0;
}

/// Fixed-width row schema: ordered columns with computed byte offsets.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSpec> columns)
      : columns_(std::move(columns)) {
    offsets_.reserve(columns_.size());
    uint32_t off = 0;
    for (const ColumnSpec& c : columns_) {
      offsets_.push_back(off);
      uint32_t w = ColumnWidth(c);
      MDS_CHECK(w > 0);
      off += w;
    }
    row_size_ = off;
  }

  size_t num_columns() const { return columns_.size(); }
  const ColumnSpec& column(size_t i) const { return columns_[i]; }
  uint32_t offset(size_t i) const { return offsets_[i]; }
  uint32_t row_size() const { return row_size_; }

  /// Index of the column named `name`, or -1 if absent.
  int FindColumn(const std::string& name) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

 private:
  std::vector<ColumnSpec> columns_;
  std::vector<uint32_t> offsets_;
  uint32_t row_size_ = 0;
};

}  // namespace mds

#endif  // MDS_STORAGE_SCHEMA_H_
