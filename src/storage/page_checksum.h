#ifndef MDS_STORAGE_PAGE_CHECKSUM_H_
#define MDS_STORAGE_PAGE_CHECKSUM_H_

#include <cstdint>

#include "storage/page.h"

namespace mds {

/// Per-page integrity footer (see page.h for the layout). The buffer pool
/// stamps on every physical write and verifies on every physical read, so
/// any bit rot, torn write or wild write that reaches the pager is caught
/// before a single row of the page is decoded — the storage analog of the
/// DBMS-inherited integrity machinery the paper relies on (the indexes
/// live inside SQL Server precisely to get this for free).

/// Outcome of verifying one page.
enum class PageVerdict {
  kOk,           ///< format byte recognized, CRC matches
  kUnformatted,  ///< format 0: written before any stamp (e.g. fresh zero
                 ///< page); nothing to verify
  kCorrupt,      ///< recognized format but CRC mismatch, or unknown format
};

/// Stamps the footer: sets the format byte to kPageFormatV1, keeps the
/// epoch byte, and writes the CRC-32C of bytes [0, kPageCrcOffset).
void StampPageChecksum(Page* page);

/// Verifies a page read from storage against its footer.
PageVerdict VerifyPageChecksum(const Page& page);

/// Stored CRC field (valid only for formatted pages); exposed for tests.
uint32_t PageStoredCrc(const Page& page);

/// CRC over the page's covered bytes as they are now; exposed for tests.
uint32_t PageComputedCrc(const Page& page);

}  // namespace mds

#endif  // MDS_STORAGE_PAGE_CHECKSUM_H_
