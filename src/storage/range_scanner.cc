#include "storage/range_scanner.h"

#include <algorithm>
#include <cstring>

namespace mds {

void CoalesceRanges(std::vector<RowRange>* ranges) {
  if (ranges->empty()) return;
  std::sort(ranges->begin(), ranges->end(),
            [](const RowRange& a, const RowRange& b) {
              return a.begin != b.begin ? a.begin < b.begin : a.kind < b.kind;
            });
  size_t out = 0;
  for (size_t i = 1; i < ranges->size(); ++i) {
    RowRange& prev = (*ranges)[out];
    const RowRange& cur = (*ranges)[i];
    if (cur.kind == prev.kind && cur.begin <= prev.end) {
      prev.end = std::max(prev.end, cur.end);
    } else {
      (*ranges)[++out] = cur;
    }
  }
  ranges->resize(out + 1);
}

RangeScanner::RangeScanner(const Table* table, const Layout& layout)
    : RangeScanner(table, layout, ScanOptions{}) {}

RangeScanner::RangeScanner(const Table* table, const Layout& layout,
                           const ScanOptions& options)
    : table_(table), layout_(layout), options_(options) {
  coord_batch_.resize(static_cast<size_t>(table->rows_per_page()) *
                      layout.dim);
}

Status RangeScanner::ScanStep(const PlanStep& step,
                              const SpatialPredicate& predicate,
                              uint64_t limit, QueryStats* stats,
                              std::vector<int64_t>* out) {
  for (const RowRange& range : step.ranges) {
    if (limit != 0 && out->size() >= limit) return Status::OK();
    if (range.kind == RangeKind::kFull) {
      ++stats->ranges_full;
    } else {
      ++stats->ranges_partial;
    }
    MDS_RETURN_NOT_OK(ScanRange(range, predicate, limit, stats, out));
  }
  return Status::OK();
}

Status RangeScanner::ScanRange(const RowRange& range,
                               const SpatialPredicate& predicate,
                               uint64_t limit, QueryStats* stats,
                               std::vector<int64_t>* out) {
  if (range.begin > range.end || range.end > table_->num_rows()) {
    return Status::OutOfRange("RangeScanner: bad row range");
  }
  const Schema& schema = table_->schema();
  const uint32_t row_size = schema.row_size();
  const uint32_t objid_off = schema.offset(layout_.objid_col);
  const uint32_t coord_off = schema.offset(layout_.first_coord_col);
  const uint32_t rows_per_page = table_->rows_per_page();
  const size_t dim = layout_.dim;

  uint64_t row = range.begin;
  while (row < range.end) {
    const uint64_t page_index = row / rows_per_page;
    const uint64_t first_in_page = row % rows_per_page;
    const uint64_t rows_here =
        std::min<uint64_t>(range.end - row, rows_per_page - first_in_page);
    bool physical = false;
    Result<BufferPool::PageGuard> fetched =
        table_->pool()->Fetch(table_->page_id(page_index), &physical);
    if (!fetched.ok()) {
      if (options_.skip_corrupt_pages &&
          fetched.status().code() == StatusCode::kCorruption) {
        // Degraded mode: the page is quarantined; drop its rows, say so.
        ++stats->pages_skipped;
        stats->degraded = true;
        row += rows_here;
        continue;
      }
      return fetched.status();
    }
    BufferPool::PageGuard guard = std::move(*fetched);
    ++pages_fetched_;
    if (physical) ++pages_read_;
    const uint8_t* base = guard.page().bytes() + first_in_page * row_size;

    if (range.kind == RangeKind::kFull) {
      // The BETWEEN case: every row qualifies, only the objid column is
      // decoded.
      for (uint64_t i = 0; i < rows_here; ++i) {
        int64_t objid;
        std::memcpy(&objid, base + i * row_size + objid_off, sizeof(objid));
        out->push_back(objid);
        ++stats->rows_scanned;
        ++stats->rows_emitted;
        if (limit != 0 && out->size() >= limit) return Status::OK();
      }
    } else {
      // Batched page decode: gather the page's coordinate columns into one
      // contiguous buffer, then run the predicate over the batch. The
      // membership mask is computed page-at-a-time (SIMD for boxes); the
      // emit loop and its counters are row-exact regardless, matching the
      // per-row Matches path bit for bit.
      for (uint64_t i = 0; i < rows_here; ++i) {
        std::memcpy(&coord_batch_[i * dim], base + i * row_size + coord_off,
                    dim * sizeof(float));
      }
      match_mask_.resize(rows_here);
      predicate.MatchBatch(coord_batch_.data(), rows_here,
                           match_mask_.data());
      for (uint64_t i = 0; i < rows_here; ++i) {
        ++stats->rows_scanned;
        ++stats->rows_tested;
        if (match_mask_[i] == 0) continue;
        int64_t objid;
        std::memcpy(&objid, base + i * row_size + objid_off, sizeof(objid));
        out->push_back(objid);
        ++stats->rows_emitted;
        if (limit != 0 && out->size() >= limit) return Status::OK();
      }
    }
    row += rows_here;
  }
  return Status::OK();
}

void RangeScanner::AccumulateIo(QueryStats* stats) {
  stats->pages_fetched += pages_fetched_;
  stats->pages_read += pages_read_;
  pages_fetched_ = 0;
  pages_read_ = 0;
}

// --- ParallelRangeScanner --------------------------------------------------

ParallelRangeScanner::ParallelRangeScanner(const Table* table,
                                           const RangeScanner::Layout& layout,
                                           unsigned num_threads)
    : ParallelRangeScanner(table, layout, num_threads,
                           RangeScanner::ScanOptions{}) {}

ParallelRangeScanner::ParallelRangeScanner(
    const Table* table, const RangeScanner::Layout& layout,
    unsigned num_threads, const RangeScanner::ScanOptions& options)
    : table_(table), layout_(layout), pool_(num_threads) {
  workers_.reserve(pool_.num_threads());
  for (unsigned w = 0; w < pool_.num_threads(); ++w) {
    workers_.emplace_back(table, layout, options);
  }
  partitions_.resize(pool_.num_threads());
}

Status ParallelRangeScanner::ScanStep(const PlanStep& step,
                                      const SpatialPredicate& predicate,
                                      uint64_t limit, QueryStats* stats,
                                      std::vector<int64_t>* out) {
  // Range counters come from the original (un-split) step so the parallel
  // scan reports the same plan shape as the serial one.
  uint64_t total_rows = 0;
  for (const RowRange& range : step.ranges) {
    total_rows += range.end - range.begin;
    if (range.kind == RangeKind::kFull) {
      ++stats->ranges_full;
    } else {
      ++stats->ranges_partial;
    }
  }
  const uint64_t remaining =
      limit == 0 ? 0 : (out->size() >= limit ? 0 : limit - out->size());
  if (limit != 0 && remaining == 0) return Status::OK();

  const unsigned threads = pool_.num_threads();
  const uint32_t rows_per_page = table_->rows_per_page();
  // Below ~one page per worker the fork/join overhead cannot pay off.
  if (threads == 1 || total_rows < uint64_t{2} * threads * rows_per_page) {
    QueryStats local;
    Status status =
        workers_[0].ScanStep(step, predicate, limit, &local, out);
    stats->rows_scanned += local.rows_scanned;
    stats->rows_tested += local.rows_tested;
    stats->rows_emitted += local.rows_emitted;
    stats->pages_skipped += local.pages_skipped;
    stats->degraded = stats->degraded || local.degraded;
    return status;
  }

  // Partition the plan's rows into `threads` contiguous, page-aligned
  // chunks. Page alignment keeps worker page sets disjoint within each
  // range, which is what makes summed pages_fetched match serial exactly.
  for (auto& partition : partitions_) partition.clear();
  const uint64_t target = (total_rows + threads - 1) / threads;
  unsigned w = 0;
  uint64_t quota = target;
  for (const RowRange& range : step.ranges) {
    uint64_t begin = range.begin;
    while (begin < range.end) {
      if (quota == 0 && w + 1 < threads) {
        ++w;
        quota = target;
      }
      uint64_t cut = range.end;
      if (range.end - begin > quota && w + 1 < threads) {
        // Round the cut up to the next page boundary (always progresses,
        // since begin + quota rounds past begin's page start).
        const uint64_t raw = begin + quota;
        cut = std::min<uint64_t>(
            range.end,
            (raw + rows_per_page - 1) / rows_per_page * rows_per_page);
      }
      partitions_[w].push_back(RowRange{begin, cut, range.kind});
      const uint64_t taken = cut - begin;
      quota -= std::min(quota, taken);
      begin = cut;
    }
  }

  std::vector<QueryStats> worker_stats(threads);
  std::vector<std::vector<int64_t>> worker_out(threads);
  std::vector<Status> worker_status(threads);
  pool_.Run([&](unsigned worker) {
    if (partitions_[worker].empty()) return;
    PlanStep part;
    part.ranges = partitions_[worker];
    worker_status[worker] =
        workers_[worker].ScanStep(part, predicate, remaining,
                                  &worker_stats[worker], &worker_out[worker]);
  });

  for (unsigned i = 0; i < threads; ++i) {
    MDS_RETURN_NOT_OK(worker_status[i]);
  }

  for (unsigned i = 0; i < threads; ++i) {
    stats->rows_scanned += worker_stats[i].rows_scanned;
    stats->rows_tested += worker_stats[i].rows_tested;
    stats->pages_skipped += worker_stats[i].pages_skipped;
    stats->degraded = stats->degraded || worker_stats[i].degraded;
  }

  // Deterministic merge: concatenate in partition order (== plan order),
  // truncating at the limit, so the emitted sequence matches serial.
  uint64_t emitted = 0;
  for (unsigned i = 0; i < threads; ++i) {
    uint64_t take = worker_out[i].size();
    if (limit != 0) {
      const uint64_t room = limit - out->size();
      take = std::min<uint64_t>(take, room);
    }
    out->insert(out->end(), worker_out[i].begin(),
                worker_out[i].begin() + static_cast<ptrdiff_t>(take));
    emitted += take;
    if (limit != 0 && out->size() >= limit) break;
  }
  stats->rows_emitted += emitted;
  return Status::OK();
}

void ParallelRangeScanner::AccumulateIo(QueryStats* stats) {
  for (RangeScanner& worker : workers_) {
    worker.AccumulateIo(stats);
  }
}

}  // namespace mds
