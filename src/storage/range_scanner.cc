#include "storage/range_scanner.h"

#include <algorithm>
#include <cstring>

namespace mds {

void CoalesceRanges(std::vector<RowRange>* ranges) {
  if (ranges->empty()) return;
  std::sort(ranges->begin(), ranges->end(),
            [](const RowRange& a, const RowRange& b) {
              return a.begin != b.begin ? a.begin < b.begin : a.kind < b.kind;
            });
  size_t out = 0;
  for (size_t i = 1; i < ranges->size(); ++i) {
    RowRange& prev = (*ranges)[out];
    const RowRange& cur = (*ranges)[i];
    if (cur.kind == prev.kind && cur.begin <= prev.end) {
      prev.end = std::max(prev.end, cur.end);
    } else {
      (*ranges)[++out] = cur;
    }
  }
  ranges->resize(out + 1);
}

RangeScanner::RangeScanner(const Table* table, const Layout& layout)
    : table_(table), layout_(layout), io_since_(table->pool()->Snapshot()) {
  coord_batch_.resize(static_cast<size_t>(table->rows_per_page()) *
                      layout.dim);
}

Status RangeScanner::ScanStep(const PlanStep& step,
                              const SpatialPredicate& predicate,
                              uint64_t limit, QueryStats* stats,
                              std::vector<int64_t>* out) {
  for (const RowRange& range : step.ranges) {
    if (limit != 0 && out->size() >= limit) return Status::OK();
    if (range.kind == RangeKind::kFull) {
      ++stats->ranges_full;
    } else {
      ++stats->ranges_partial;
    }
    MDS_RETURN_NOT_OK(ScanRange(range, predicate, limit, stats, out));
  }
  return Status::OK();
}

Status RangeScanner::ScanRange(const RowRange& range,
                               const SpatialPredicate& predicate,
                               uint64_t limit, QueryStats* stats,
                               std::vector<int64_t>* out) {
  if (range.begin > range.end || range.end > table_->num_rows()) {
    return Status::OutOfRange("RangeScanner: bad row range");
  }
  const Schema& schema = table_->schema();
  const uint32_t row_size = schema.row_size();
  const uint32_t objid_off = schema.offset(layout_.objid_col);
  const uint32_t coord_off = schema.offset(layout_.first_coord_col);
  const uint32_t rows_per_page = table_->rows_per_page();
  const size_t dim = layout_.dim;

  uint64_t row = range.begin;
  while (row < range.end) {
    const uint64_t page_index = row / rows_per_page;
    const uint64_t first_in_page = row % rows_per_page;
    const uint64_t rows_here =
        std::min<uint64_t>(range.end - row, rows_per_page - first_in_page);
    MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard,
                         table_->pool()->Fetch(table_->page_id(page_index)));
    const uint8_t* base = guard.page().bytes() + first_in_page * row_size;

    if (range.kind == RangeKind::kFull) {
      // The BETWEEN case: every row qualifies, only the objid column is
      // decoded.
      for (uint64_t i = 0; i < rows_here; ++i) {
        int64_t objid;
        std::memcpy(&objid, base + i * row_size + objid_off, sizeof(objid));
        out->push_back(objid);
        ++stats->rows_scanned;
        ++stats->rows_emitted;
        if (limit != 0 && out->size() >= limit) return Status::OK();
      }
    } else {
      // Batched page decode: gather the page's coordinate columns into one
      // contiguous buffer, then run the predicate over the batch.
      for (uint64_t i = 0; i < rows_here; ++i) {
        std::memcpy(&coord_batch_[i * dim], base + i * row_size + coord_off,
                    dim * sizeof(float));
      }
      for (uint64_t i = 0; i < rows_here; ++i) {
        ++stats->rows_scanned;
        ++stats->rows_tested;
        if (!predicate.Matches(&coord_batch_[i * dim])) continue;
        int64_t objid;
        std::memcpy(&objid, base + i * row_size + objid_off, sizeof(objid));
        out->push_back(objid);
        ++stats->rows_emitted;
        if (limit != 0 && out->size() >= limit) return Status::OK();
      }
    }
    row += rows_here;
  }
  return Status::OK();
}

void RangeScanner::AccumulateIo(QueryStats* stats) {
  CounterSnapshot::Delta delta = table_->pool()->Delta(io_since_);
  stats->pages_fetched += delta.logical_reads;
  stats->pages_read += delta.physical_reads;
  io_since_ = table_->pool()->Snapshot();
}

}  // namespace mds
