#ifndef MDS_STORAGE_RANGE_SCANNER_H_
#define MDS_STORAGE_RANGE_SCANNER_H_

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "geom/predicate.h"
#include "storage/table.h"

namespace mds {

/// How a planned row range is to be consumed. This is the paper's central
/// distinction: ranges whose every row is known to qualify from index
/// metadata alone (`BETWEEN` over a fully-contained subtree / cell) are
/// emitted without touching the geometry; only `partial` ranges pay the
/// per-row predicate.
enum class RangeKind {
  kFull,     ///< emit every row, no per-row test
  kPartial,  ///< test each row against the query predicate
};

/// Half-open clustered row interval [begin, end) tagged with how to scan it.
struct RowRange {
  uint64_t begin = 0;
  uint64_t end = 0;
  RangeKind kind = RangeKind::kPartial;
};

/// One batch of ranges an access path hands to the scanner. Adaptive paths
/// (grid layers, TABLESAMPLE pages) emit several steps and inspect
/// progress between them; single-shot paths emit everything in one step.
struct PlanStep {
  std::vector<RowRange> ranges;
};

/// Unified per-query counters shared by every access path — supersedes the
/// per-index KdQueryStats / GridQueryStats / VoronoiQueryStats plumbing on
/// the storage-backed path. Planning fields are filled by the access path,
/// row fields by the RangeScanner, page fields by the scanner's own fetch
/// accounting. `pages_fetched` vs rows_emitted is the paper's E2
/// "practically only points which are actually returned are read from
/// disk" measurement; rows_tested / rows_scanned is the Figure 5
/// full-vs-partial split.
struct QueryStats {
  // Planning (access-path) counters.
  uint64_t plan_steps = 0;      ///< batches executed (grid: layers visited)
  uint64_t ranges_full = 0;     ///< merged `full` ranges scanned
  uint64_t ranges_partial = 0;  ///< merged `partial` ranges scanned
  uint64_t cells_full = 0;      ///< index units wholly inside the query
  uint64_t cells_partial = 0;   ///< index units straddling the boundary
  uint64_t cells_pruned = 0;    ///< index units rejected from metadata only

  // Row-level (RangeScanner) counters.
  uint64_t rows_scanned = 0;  ///< rows decoded from candidate ranges
  uint64_t rows_tested = 0;   ///< rows run through the predicate (partial)
  uint64_t rows_emitted = 0;  ///< rows in the result set

  // Page-level I/O (per-scanner fetch accounting).
  uint64_t pages_fetched = 0;  ///< logical page fetches (hits + misses)
  uint64_t pages_read = 0;     ///< physical page reads

  // Degradation (checksum-failure fallback; see DESIGN.md "Failure
  // model"). A degraded result is explicitly partial: `pages_skipped`
  // pages failed verification and their rows are missing from the output.
  uint64_t pages_skipped = 0;  ///< quarantined pages skipped over
  bool degraded = false;       ///< true iff pages_skipped > 0 anywhere
};

/// Sorts ranges by begin row and coalesces touching or overlapping ranges
/// of the same kind, so consecutive cell / leaf ranges sharing a page are
/// scanned in one pass. Ranges of different kinds are never merged.
void CoalesceRanges(std::vector<RowRange>* ranges);

/// Executes range plans against one stored point table through the buffer
/// pool — the single physical scan loop every access path shares. Pages
/// are pinned once each; the coordinate columns of a page's rows are
/// decoded in one batch before predicate evaluation.
///
/// I/O accounting: the scanner counts its own page fetches and misses
/// (via BufferPool::Fetch's physical-read report) rather than diffing
/// pool-wide counters, so per-query pages_fetched / pages_read stay exact
/// even while other queries run concurrently on the same pool — the
/// invariant behind the E2/E3 page-accounting tables.
///
/// Thread safety: thread-compatible. One scanner belongs to one thread
/// (it owns mutable scratch and counters); any number of scanners may
/// scan the same table through the same (thread-safe) BufferPool
/// concurrently. That is exactly how ParallelRangeScanner and
/// QueryEngine::ExecuteBatch parallelize: one private RangeScanner per
/// worker.
class RangeScanner {
 public:
  /// Column layout of the scanned table (a point table: one int64 objid
  /// column plus `dim` contiguous float32 coordinate columns).
  struct Layout {
    size_t objid_col = 0;
    size_t first_coord_col = 1;
    size_t dim = 0;
  };

  /// Degradation policy. Strict (default) propagates a checksum failure
  /// as kCorruption and aborts the scan; skip mode drops the corrupt
  /// page's rows, counts it in QueryStats::pages_skipped and marks the
  /// result degraded — the explicit partial-answer contract.
  struct ScanOptions {
    bool skip_corrupt_pages = false;
  };

  RangeScanner(const Table* table, const Layout& layout);
  RangeScanner(const Table* table, const Layout& layout,
               const ScanOptions& options);

  /// Scans one plan step, appending qualifying objids to `out` and
  /// updating row counters in `stats`. `limit` (0 = none) stops the scan
  /// exactly when `out` reaches `limit` rows — the TOP(n) clause.
  /// Single-threaded per scanner; see class comment.
  Status ScanStep(const PlanStep& step, const SpatialPredicate& predicate,
                  uint64_t limit, QueryStats* stats,
                  std::vector<int64_t>* out);

  /// Adds the page fetches/misses this scanner performed since
  /// construction (or since the previous call) to `stats` and resets the
  /// internal tally. Must be called by the scanner's owning thread.
  void AccumulateIo(QueryStats* stats);

  const Table* table() const { return table_; }

 private:
  Status ScanRange(const RowRange& range, const SpatialPredicate& predicate,
                   uint64_t limit, QueryStats* stats,
                   std::vector<int64_t>* out);

  const Table* table_;
  Layout layout_;
  ScanOptions options_;
  uint64_t pages_fetched_ = 0;  // this scanner's pins (logical fetches)
  uint64_t pages_read_ = 0;     // the subset that missed the pool
  std::vector<float> coord_batch_;  // page-at-a-time coordinate scratch
  std::vector<uint8_t> match_mask_;  // page-at-a-time membership mask
};

/// Data-parallel variant of RangeScanner: splits one PlanStep's row
/// ranges across a fixed worker pool, scans the partitions concurrently
/// (one private RangeScanner per worker) and merges the per-worker
/// results and QueryStats deterministically.
///
/// Determinism and stats parity (the contract EXPERIMENTS.md's page
/// tables rely on):
///  - Partition cuts are page-aligned and workers own disjoint page sets
///    within each range, so summed pages_fetched/pages_read equal the
///    serial scan's exactly (when limit == 0).
///  - Outputs are concatenated in partition order, so the emitted objid
///    sequence is identical to the serial scan's.
///  - ranges_full/ranges_partial are taken from the original step, not
///    the split pieces.
///  - With limit != 0 the result (first `limit` qualifying rows in plan
///    order) is still identical to serial, but workers may overshoot:
///    rows_scanned/pages_fetched can exceed the serial scan's.
///
/// Thread safety: thread-compatible — one ParallelRangeScanner per query;
/// it spawns onto its own TaskPool. Concurrent instances over one shared
/// BufferPool are safe.
class ParallelRangeScanner {
 public:
  /// num_threads == 0 picks QueryThreads() (MDS_QUERY_THREADS).
  ParallelRangeScanner(const Table* table, const RangeScanner::Layout& layout,
                       unsigned num_threads = 0);
  ParallelRangeScanner(const Table* table, const RangeScanner::Layout& layout,
                       unsigned num_threads,
                       const RangeScanner::ScanOptions& options);

  /// Parallel equivalent of RangeScanner::ScanStep; same contract, same
  /// counters (see class comment for the limit != 0 caveat).
  Status ScanStep(const PlanStep& step, const SpatialPredicate& predicate,
                  uint64_t limit, QueryStats* stats,
                  std::vector<int64_t>* out);

  /// Adds the pooled workers' page fetch/miss tallies to `stats` (exactly
  /// like RangeScanner::AccumulateIo, summed over workers).
  void AccumulateIo(QueryStats* stats);

  unsigned num_threads() const { return pool_.num_threads(); }

 private:
  const Table* table_;
  RangeScanner::Layout layout_;
  TaskPool pool_;
  std::vector<RangeScanner> workers_;  // one per pool thread
  // Sub-ranges assigned per worker, rebuilt each ScanStep (page-aligned).
  std::vector<std::vector<RowRange>> partitions_;
};

}  // namespace mds

#endif  // MDS_STORAGE_RANGE_SCANNER_H_
