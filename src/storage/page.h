#ifndef MDS_STORAGE_PAGE_H_
#define MDS_STORAGE_PAGE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/logging.h"

namespace mds {

/// Fixed page size, matching the 8 KB pages of the SQL Server instance the
/// paper ran on. All on-disk structures (tables, B+-trees) are built from
/// these pages, and the buffer pool accounts I/O in page units — the unit
/// in which the paper's "only points actually returned are read from disk"
/// claim is measured.
inline constexpr size_t kPageSize = 8192;

/// Integrity footer at the tail of every page:
///   [u8 format][u8 epoch][u16 reserved][u32 crc32c]
/// The CRC covers bytes [0, kPageSize - 4) — payload plus format/epoch —
/// and is stamped by the buffer pool on every physical write and verified
/// on every physical read (see storage/page_checksum.h). Pages written
/// before the stamp (freshly allocated zero pages) carry format 0 and are
/// skipped by verification rather than failed.
inline constexpr size_t kPageFooterSize = 8;

/// Bytes usable by page consumers (tables, page streams, B+-tree nodes);
/// the footer claims the rest.
inline constexpr size_t kPageUsableSize = kPageSize - kPageFooterSize;

/// Footer field offsets within the page.
inline constexpr size_t kPageFormatOffset = kPageSize - 8;
inline constexpr size_t kPageEpochOffset = kPageSize - 7;
inline constexpr size_t kPageCrcOffset = kPageSize - 4;

/// Format byte values. kPageFormatNone marks a page never stamped by the
/// checksum layer (e.g. a freshly allocated zero page); kPageFormatV1 is
/// the current checksummed format.
inline constexpr uint8_t kPageFormatNone = 0;
inline constexpr uint8_t kPageFormatV1 = 1;

using PageId = uint64_t;
inline constexpr PageId kInvalidPageId = ~PageId{0};

/// Raw page buffer with typed access helpers. Offsets are bounds-checked
/// in debug builds; release builds trust the callers (the hot row-decode
/// paths pre-validate their offsets against the schema).
struct Page {
  std::array<uint8_t, kPageSize> data{};

  template <typename T>
  T ReadAt(size_t offset) const {
    MDS_DCHECK(offset <= kPageSize && sizeof(T) <= kPageSize - offset);
    T v;
    std::memcpy(&v, data.data() + offset, sizeof(T));
    return v;
  }

  template <typename T>
  void WriteAt(size_t offset, const T& v) {
    MDS_DCHECK(offset <= kPageSize && sizeof(T) <= kPageSize - offset);
    std::memcpy(data.data() + offset, &v, sizeof(T));
  }

  const uint8_t* bytes() const { return data.data(); }
  uint8_t* bytes() { return data.data(); }
};

}  // namespace mds

#endif  // MDS_STORAGE_PAGE_H_
