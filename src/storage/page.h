#ifndef MDS_STORAGE_PAGE_H_
#define MDS_STORAGE_PAGE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace mds {

/// Fixed page size, matching the 8 KB pages of the SQL Server instance the
/// paper ran on. All on-disk structures (tables, B+-trees) are built from
/// these pages, and the buffer pool accounts I/O in page units — the unit
/// in which the paper's "only points actually returned are read from disk"
/// claim is measured.
inline constexpr size_t kPageSize = 8192;

using PageId = uint64_t;
inline constexpr PageId kInvalidPageId = ~PageId{0};

/// Raw page buffer with typed access helpers. Readers/writers are
/// responsible for staying inside kPageSize (checked in debug builds by the
/// callers' offsets).
struct Page {
  std::array<uint8_t, kPageSize> data{};

  template <typename T>
  T ReadAt(size_t offset) const {
    T v;
    std::memcpy(&v, data.data() + offset, sizeof(T));
    return v;
  }

  template <typename T>
  void WriteAt(size_t offset, const T& v) {
    std::memcpy(data.data() + offset, &v, sizeof(T));
  }

  const uint8_t* bytes() const { return data.data(); }
  uint8_t* bytes() { return data.data(); }
};

}  // namespace mds

#endif  // MDS_STORAGE_PAGE_H_
