#ifndef MDS_STORAGE_TABLE_H_
#define MDS_STORAGE_TABLE_H_

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/schema.h"

namespace mds {

/// Read-only view of one row; valid only inside the scan/read callback
/// that produced it.
class RowRef {
 public:
  RowRef() = default;
  RowRef(const Schema* schema, const uint8_t* data)
      : schema_(schema), data_(data) {}

  int64_t GetInt64(size_t col) const {
    int64_t v;
    std::memcpy(&v, data_ + schema_->offset(col), sizeof(v));
    return v;
  }
  float GetFloat32(size_t col) const {
    float v;
    std::memcpy(&v, data_ + schema_->offset(col), sizeof(v));
    return v;
  }
  double GetFloat64(size_t col) const {
    double v;
    std::memcpy(&v, data_ + schema_->offset(col), sizeof(v));
    return v;
  }
  const uint8_t* GetBytes(size_t col) const {
    return data_ + schema_->offset(col);
  }

  /// Copies `count` consecutive kFloat32 columns starting at `first_col`
  /// into `out` — the hot path for reading a point's coordinates.
  void GetFloat32Span(size_t first_col, size_t count, float* out) const {
    std::memcpy(out, data_ + schema_->offset(first_col), count * sizeof(float));
  }

 private:
  const Schema* schema_ = nullptr;
  const uint8_t* data_ = nullptr;
};

/// Mutable staging buffer for one row.
class RowBuilder {
 public:
  explicit RowBuilder(const Schema* schema)
      : schema_(schema), data_(schema->row_size(), 0) {}

  void SetInt64(size_t col, int64_t v) {
    std::memcpy(&data_[schema_->offset(col)], &v, sizeof(v));
  }
  void SetFloat32(size_t col, float v) {
    std::memcpy(&data_[schema_->offset(col)], &v, sizeof(v));
  }
  void SetFloat64(size_t col, double v) {
    std::memcpy(&data_[schema_->offset(col)], &v, sizeof(v));
  }
  void SetBytes(size_t col, const uint8_t* src, size_t len) {
    MDS_CHECK(len <= ColumnWidth(schema_->column(col)));
    std::memcpy(&data_[schema_->offset(col)], src, len);
  }

  const uint8_t* data() const { return data_.data(); }

 private:
  const Schema* schema_;
  std::vector<uint8_t> data_;
};

/// Heap table of fixed-width rows packed into buffer-pool pages.
///
/// Rows live at consecutive row ids; page p holds rows
/// [p*rows_per_page, ...). A table whose rows were appended in the order of
/// a key column is "clustered" on that key: range scans over a key interval
/// then touch only the pages that actually hold qualifying rows, which is
/// how the paper's `BETWEEN` leaf-range trick and the (Layer, ContainedBy)
/// clustering get their I/O behaviour.
class Table {
 public:
  /// Creates an empty table with its own page range inside `pool`.
  static Result<Table> Create(BufferPool* pool, Schema schema);

  /// Re-binds a table persisted in an existing pager file: `page_ids` are
  /// the pages the rows were appended into (in order) and `num_rows` the
  /// row count — both recorded in the caller's catalog metadata when the
  /// file was created.
  static Result<Table> Attach(BufferPool* pool, Schema schema,
                              std::vector<PageId> page_ids,
                              uint64_t num_rows);

  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }
  uint32_t rows_per_page() const { return rows_per_page_; }
  uint64_t num_pages() const { return page_ids_.size(); }
  /// Pool page holding rows [page_index*rows_per_page, ...) — lets
  /// page-at-a-time readers (RangeScanner) drive the buffer pool directly.
  PageId page_id(uint64_t page_index) const { return page_ids_[page_index]; }

  /// Appends one row.
  Status Append(const RowBuilder& row);

  /// Reads row `row_id` through the buffer pool into the builder-sized
  /// buffer `out` (schema().row_size() bytes).
  Status ReadRow(uint64_t row_id, uint8_t* out) const;

  /// Invokes fn(row_id, RowRef) for every row in [begin, end). Pages are
  /// fetched once each through the buffer pool (I/O is accounted there).
  /// The callback may return void, or bool where `false` stops the scan
  /// early.
  template <typename Fn>
  Status ScanRange(uint64_t begin, uint64_t end, Fn&& fn) const;

  /// Full-table scan.
  template <typename Fn>
  Status Scan(Fn&& fn) const {
    return ScanRange(0, num_rows_, std::forward<Fn>(fn));
  }

  /// Invokes fn for every row of page `page_index` (used by TABLESAMPLE).
  template <typename Fn>
  Status ScanPage(uint64_t page_index, Fn&& fn) const;

  BufferPool* pool() const { return pool_; }

 private:
  Table(BufferPool* pool, Schema schema);

  template <typename Fn>
  static bool InvokeRow(Fn&& fn, uint64_t row_id, RowRef ref) {
    if constexpr (std::is_void_v<decltype(fn(row_id, ref))>) {
      fn(row_id, ref);
      return true;
    } else {
      return fn(row_id, ref);
    }
  }

  BufferPool* pool_;
  Schema schema_;
  uint32_t rows_per_page_;
  uint64_t num_rows_ = 0;
  std::vector<PageId> page_ids_;
};

template <typename Fn>
Status Table::ScanRange(uint64_t begin, uint64_t end, Fn&& fn) const {
  if (begin > end || end > num_rows_) {
    return Status::OutOfRange("Table::ScanRange: bad row range");
  }
  const uint32_t row_size = schema_.row_size();
  uint64_t row = begin;
  while (row < end) {
    uint64_t page_index = row / rows_per_page_;
    uint64_t first_in_page = row % rows_per_page_;
    uint64_t rows_here =
        std::min<uint64_t>(end - row, rows_per_page_ - first_in_page);
    MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard,
                         pool_->Fetch(page_ids_[page_index]));
    const uint8_t* base = guard.page().bytes() + first_in_page * row_size;
    for (uint64_t i = 0; i < rows_here; ++i) {
      if (!InvokeRow(fn, row + i, RowRef(&schema_, base + i * row_size))) {
        return Status::OK();
      }
    }
    row += rows_here;
  }
  return Status::OK();
}

template <typename Fn>
Status Table::ScanPage(uint64_t page_index, Fn&& fn) const {
  if (page_index >= page_ids_.size()) {
    return Status::OutOfRange("Table::ScanPage: bad page index");
  }
  uint64_t begin = page_index * rows_per_page_;
  uint64_t end = std::min<uint64_t>(begin + rows_per_page_, num_rows_);
  return ScanRange(begin, end, std::forward<Fn>(fn));
}

}  // namespace mds

#endif  // MDS_STORAGE_TABLE_H_
