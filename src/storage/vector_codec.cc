#include "storage/vector_codec.h"

#include <cstring>

namespace mds {

namespace {

// Type-name preamble mimicking a self-describing serializer header.
constexpr char kTlvTypeName[] = "System.Single[]";
constexpr size_t kTlvTypeNameLen = sizeof(kTlvTypeName) - 1;
constexpr uint8_t kTlvFloatTag = 0x0b;

}  // namespace

void RawVectorCodec::Encode(const float* v, size_t n,
                            std::vector<uint8_t>* out) {
  out->resize(EncodedSize(n));
  uint32_t count = static_cast<uint32_t>(n);
  std::memcpy(out->data(), &count, 4);
  std::memcpy(out->data() + 4, v, 4 * n);
}

Result<std::vector<float>> RawVectorCodec::Decode(const uint8_t* data,
                                                  size_t len) {
  if (len < 4) return Status::Corruption("RawVectorCodec: truncated header");
  uint32_t count;
  std::memcpy(&count, data, 4);
  if (len < 4 + 4 * static_cast<size_t>(count)) {
    return Status::Corruption("RawVectorCodec: truncated payload");
  }
  std::vector<float> out(count);
  std::memcpy(out.data(), data + 4, 4 * static_cast<size_t>(count));
  return out;
}

Result<size_t> RawVectorCodec::DecodeInto(const uint8_t* data, size_t len,
                                          float* out, size_t cap) {
  if (len < 4) return Status::Corruption("RawVectorCodec: truncated header");
  uint32_t count;
  std::memcpy(&count, data, 4);
  if (count > cap) {
    return Status::InvalidArgument("RawVectorCodec: output buffer too small");
  }
  if (len < 4 + 4 * static_cast<size_t>(count)) {
    return Status::Corruption("RawVectorCodec: truncated payload");
  }
  std::memcpy(out, data + 4, 4 * static_cast<size_t>(count));
  return static_cast<size_t>(count);
}

size_t TlvVectorCodec::EncodedSize(size_t n) {
  // [u16 name_len][name][u32 count] + n * ([u8 tag][u8 len][f32]).
  return 2 + kTlvTypeNameLen + 4 + n * 6;
}

void TlvVectorCodec::Encode(const float* v, size_t n,
                            std::vector<uint8_t>* out) {
  out->resize(EncodedSize(n));
  uint8_t* p = out->data();
  uint16_t name_len = static_cast<uint16_t>(kTlvTypeNameLen);
  std::memcpy(p, &name_len, 2);
  p += 2;
  std::memcpy(p, kTlvTypeName, kTlvTypeNameLen);
  p += kTlvTypeNameLen;
  uint32_t count = static_cast<uint32_t>(n);
  std::memcpy(p, &count, 4);
  p += 4;
  for (size_t i = 0; i < n; ++i) {
    *p++ = kTlvFloatTag;
    *p++ = 4;
    std::memcpy(p, &v[i], 4);
    p += 4;
  }
}

Result<std::vector<float>> TlvVectorCodec::Decode(const uint8_t* data,
                                                  size_t len) {
  const uint8_t* p = data;
  const uint8_t* end = data + len;
  if (end - p < 2) return Status::Corruption("TlvVectorCodec: no name length");
  uint16_t name_len;
  std::memcpy(&name_len, p, 2);
  p += 2;
  if (end - p < name_len) {
    return Status::Corruption("TlvVectorCodec: truncated type name");
  }
  if (name_len != kTlvTypeNameLen ||
      std::memcmp(p, kTlvTypeName, kTlvTypeNameLen) != 0) {
    return Status::Corruption("TlvVectorCodec: unexpected type name");
  }
  p += name_len;
  if (end - p < 4) return Status::Corruption("TlvVectorCodec: no count");
  uint32_t count;
  std::memcpy(&count, p, 4);
  p += 4;
  // Validate the count against the bytes actually present before sizing the
  // output: a corrupted count must fail cleanly, not drive a huge reserve().
  if (static_cast<uint64_t>(end - p) < static_cast<uint64_t>(count) * 6) {
    return Status::Corruption("TlvVectorCodec: count exceeds payload");
  }
  std::vector<float> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (end - p < 6) return Status::Corruption("TlvVectorCodec: short record");
    if (p[0] != kTlvFloatTag || p[1] != 4) {
      return Status::Corruption("TlvVectorCodec: bad element tag");
    }
    float v;
    std::memcpy(&v, p + 2, 4);
    out.push_back(v);
    p += 6;
  }
  // A count that shrank (e.g. a flipped bit) leaves well-formed records
  // unconsumed; reject that instead of silently dropping elements.
  if (p != end) {
    return Status::Corruption("TlvVectorCodec: trailing bytes after records");
  }
  return out;
}

}  // namespace mds
