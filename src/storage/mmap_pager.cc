#include "storage/mmap_pager.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mds {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

MmapPager::~MmapPager() {
  if (base_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(base_), mapped_bytes_);
  }
}

Result<std::unique_ptr<MmapPager>> MmapPager::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot open pager file", path));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("cannot stat pager file", path));
  }
  if (static_cast<uint64_t>(size) % kPageSize != 0) {
    ::close(fd);
    return Status::Corruption("pager file size not a multiple of page size: " +
                              path);
  }
  if (size == 0) {
    // mmap(len=0) is EINVAL; an empty pager file maps to zero pages.
    ::close(fd);
    return std::unique_ptr<MmapPager>(
        new MmapPager(path, nullptr, 0, 0, false));
  }

  // Pre-fault the whole file where the kernel allows it; some kernels and
  // filesystems reject MAP_POPULATE (EINVAL), in which case a lazy mapping
  // plus the WILLNEED hint below still gets sequential readahead.
  const size_t len = static_cast<size_t>(size);
  bool populated = true;
  void* base =
      ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE | MAP_POPULATE, fd, 0);
  if (base == MAP_FAILED) {
    populated = false;
    base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  }
  if (base == MAP_FAILED) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("cannot mmap pager file", path));
  }
  // The mapping pins the file contents; the descriptor is no longer needed.
  ::close(fd);
  (void)::madvise(base, len, MADV_WILLNEED);
  return std::unique_ptr<MmapPager>(
      new MmapPager(path, static_cast<const uint8_t*>(base), len,
                    len / kPageSize, populated));
}

Result<PageId> MmapPager::AllocatePage() {
  return Status::FailedPrecondition("MmapPager: read-only pager ('" + path_ +
                                    "') cannot allocate pages");
}

Status MmapPager::ReadPage(PageId id, Page* page) {
  if (id >= num_pages_) {
    return Status::OutOfRange("ReadPage(id=" + std::to_string(id) +
                              ", file '" + path_ + "'): page out of range");
  }
  std::memcpy(page->bytes(), base_ + id * kPageSize, kPageSize);
  return Status::OK();
}

Status MmapPager::WritePage(PageId id, const Page&) {
  return Status::FailedPrecondition(
      "WritePage(id=" + std::to_string(id) + ", file '" + path_ +
      "'): MmapPager is read-only");
}

}  // namespace mds
