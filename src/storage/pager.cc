#include "storage/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace mds {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

std::string PageContext(const char* op, PageId id, const std::string& path) {
  return std::string(op) + "(id=" + std::to_string(id) + ", file '" + path +
         "')";
}

void BackoffSleep(uint64_t base_us, int retry) {
  if (base_us == 0) return;
  const uint64_t us = base_us << (retry < 20 ? retry : 20);
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

// --- FilePager -------------------------------------------------------------

FilePager::~FilePager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<FilePager>> FilePager::Create(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot create pager file", path));
  }
  return std::unique_ptr<FilePager>(new FilePager(fd, path, 0));
}

Result<std::unique_ptr<FilePager>> FilePager::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot open pager file", path));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("cannot stat pager file", path));
  }
  if (static_cast<uint64_t>(size) % kPageSize != 0) {
    ::close(fd);
    return Status::Corruption("pager file size not a multiple of page size: " +
                              path);
  }
  return std::unique_ptr<FilePager>(
      new FilePager(fd, path, static_cast<uint64_t>(size) / kPageSize));
}

Status FilePager::TransferFull(bool write, PageId id, uint64_t offset,
                               uint8_t* buf, size_t len) {
  // Bounded resume loop: partial transfers continue at the interrupted
  // offset, EINTR repeats with exponential backoff. Only after
  // kMaxIoRetries resumptions does the transfer fail — and then as
  // kUnavailable, because the condition is by definition transient.
  int retries = 0;
  while (len > 0) {
    const ssize_t n =
        write ? ::pwrite(fd_, buf, len, static_cast<off_t>(offset))
              : ::pread(fd_, buf, len, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno != EINTR) {
        return Status::IOError(AnnotateStatus(
                                   Status::IOError(std::strerror(errno)),
                                   PageContext(write ? "WritePage" : "ReadPage",
                                               id, path_))
                                   .message());
      }
    } else if (n == 0 && !write) {
      // Read past EOF inside the allocated range: the file was truncated
      // underneath us — not retryable.
      return Status::IOError(
          PageContext("ReadPage", id, path_) +
          ": unexpected EOF (file truncated externally?)");
    } else {
      buf += n;
      offset += static_cast<uint64_t>(n);
      len -= static_cast<size_t>(n);
      if (len == 0) break;
    }
    // Partial transfer or EINTR: account and retry within budget.
    io_retries_.fetch_add(1, std::memory_order_relaxed);
    if (++retries > kMaxIoRetries) {
      return Status::Unavailable(
          PageContext(write ? "WritePage" : "ReadPage", id, path_) +
          ": transfer kept stalling after " + std::to_string(kMaxIoRetries) +
          " retries");
    }
    BackoffSleep(10, retries - 1);
  }
  return Status::OK();
}

Result<PageId> FilePager::AllocatePage() {
  // The append edge is the only operation two threads could collide on;
  // pread/pwrite of already-allocated pages need no lock.
  std::lock_guard<std::mutex> lock(append_mu_);
  Page zero;
  PageId id = num_pages_.load(std::memory_order_relaxed);
  MDS_RETURN_NOT_OK(TransferFull(/*write=*/true, id, id * kPageSize,
                                 zero.bytes(), kPageSize));
  num_pages_.store(id + 1, std::memory_order_release);
  return id;
}

Status FilePager::ReadPage(PageId id, Page* page) {
  if (id >= num_pages_.load(std::memory_order_acquire)) {
    return Status::OutOfRange(PageContext("ReadPage", id, path_) +
                              ": page id out of range");
  }
  return TransferFull(/*write=*/false, id, id * kPageSize, page->bytes(),
                      kPageSize);
}

Status FilePager::WritePageLocked(PageId id, const Page& page) {
  return TransferFull(/*write=*/true, id, id * kPageSize,
                      const_cast<uint8_t*>(page.bytes()), kPageSize);
}

Status FilePager::WritePage(PageId id, const Page& page) {
  if (id >= num_pages_.load(std::memory_order_acquire)) {
    // Extension writes race with other extenders; take the append lock and
    // re-check. In-place writes (the common case) skip the lock entirely.
    std::lock_guard<std::mutex> lock(append_mu_);
    const uint64_t n_pages = num_pages_.load(std::memory_order_relaxed);
    if (id > n_pages) {
      return Status::OutOfRange(PageContext("WritePage", id, path_) +
                                ": page id beyond end");
    }
    MDS_RETURN_NOT_OK(WritePageLocked(id, page));
    if (id == n_pages) num_pages_.store(id + 1, std::memory_order_release);
    return Status::OK();
  }
  return WritePageLocked(id, page);
}

Status FilePager::Sync() {
  int retries = 0;
  while (::fsync(fd_) != 0) {
    if (errno != EINTR) {
      return Status::IOError(ErrnoMessage("fsync failed on", path_));
    }
    io_retries_.fetch_add(1, std::memory_order_relaxed);
    if (++retries > kMaxIoRetries) {
      return Status::Unavailable("fsync kept getting interrupted on '" +
                                 path_ + "'");
    }
    BackoffSleep(10, retries - 1);
  }
  return Status::OK();
}

// --- MemPager --------------------------------------------------------------

Result<PageId> MemPager::AllocatePage() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  pages_.push_back(std::make_unique<Page>());
  return PageId{pages_.size() - 1};
}

Status MemPager::ReadPage(PageId id, Page* page) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (id >= pages_.size()) {
    return Status::OutOfRange("ReadPage(id=" + std::to_string(id) +
                              ", mem): page id out of range");
  }
  *page = *pages_[id];
  return Status::OK();
}

Status MemPager::WritePage(PageId id, const Page& page) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (id > pages_.size()) {
    return Status::OutOfRange("WritePage(id=" + std::to_string(id) +
                              ", mem): page id beyond end");
  }
  if (id == pages_.size()) {
    pages_.push_back(std::make_unique<Page>(page));
  } else {
    *pages_[id] = page;
  }
  return Status::OK();
}

// --- FaultInjectionPager ---------------------------------------------------

Status FaultInjectionPager::Draw(Op op, PageId id, int* flip_bits,
                                 size_t* torn_prefix) {
  *flip_bits = 0;
  *torn_prefix = 0;
  ++stats_.ops;

  // Deterministic budget first: admit exactly fail_after ops, then fail
  // everything (the fault-at-every-op-index sweep relies on this).
  if (config_.fail_after != FaultConfig::kUnlimited) {
    if (ops_admitted_ >= config_.fail_after) {
      ++stats_.budget_faults;
      return Status::IOError("injected fault (budget exhausted at op " +
                             std::to_string(ops_admitted_) + ")");
    }
    ++ops_admitted_;
  }

  // A retry of an operation that just failed transiently is guaranteed to
  // pass the probabilistic draws — "transient" means exactly that.
  if (pending_transients_.erase(TransientKey(op, id)) != 0) {
    return Status::OK();
  }

  if (config_.p_transient > 0.0 &&
      rng_.NextDouble() < config_.p_transient) {
    ++stats_.transients;
    pending_transients_.insert(TransientKey(op, id));
    return Status::Unavailable("injected transient fault (op " +
                               std::to_string(stats_.ops - 1) + ")");
  }
  if (config_.p_permanent > 0.0 && rng_.NextDouble() < config_.p_permanent) {
    ++stats_.permanents;
    return Status::IOError("injected permanent fault (op " +
                           std::to_string(stats_.ops - 1) + ")");
  }
  if (op == Op::kRead) {
    if (config_.p_short_read > 0.0 &&
        rng_.NextDouble() < config_.p_short_read) {
      ++stats_.short_reads;
      pending_transients_.insert(TransientKey(op, id));
      return Status::Unavailable("injected short read (op " +
                                 std::to_string(stats_.ops - 1) + ")");
    }
    if (config_.p_bit_flip > 0.0 && rng_.NextDouble() < config_.p_bit_flip) {
      ++stats_.bit_flips;
      *flip_bits = 1 + static_cast<int>(rng_.NextBounded(4));
    }
  }
  if (op == Op::kWrite && config_.p_torn_write > 0.0 &&
      rng_.NextDouble() < config_.p_torn_write) {
    ++stats_.torn_writes;
    // Tear at a 512-byte sector boundary strictly inside the page.
    constexpr size_t kSector = 512;
    constexpr size_t kSectors = kPageSize / kSector;
    *torn_prefix = kSector * (1 + rng_.NextBounded(kSectors - 1));
  }
  return Status::OK();
}

Result<PageId> FaultInjectionPager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  int flip_bits;
  size_t torn_prefix;
  MDS_RETURN_NOT_OK(Draw(Op::kAlloc, kInvalidPageId, &flip_bits,
                         &torn_prefix));
  return base_->AllocatePage();
}

Status FaultInjectionPager::ReadPage(PageId id, Page* page) {
  std::lock_guard<std::mutex> lock(mu_);
  int flip_bits;
  size_t torn_prefix;
  MDS_RETURN_NOT_OK(Draw(Op::kRead, id, &flip_bits, &torn_prefix));
  MDS_RETURN_NOT_OK(base_->ReadPage(id, page));
  // Silent read corruption: flip random bits anywhere in the page
  // (payload or footer — the checksum must catch either).
  for (int b = 0; b < flip_bits; ++b) {
    const uint64_t bit = rng_.NextBounded(kPageSize * 8);
    page->bytes()[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
  return Status::OK();
}

Status FaultInjectionPager::WritePage(PageId id, const Page& page) {
  std::lock_guard<std::mutex> lock(mu_);
  int flip_bits;
  size_t torn_prefix;
  MDS_RETURN_NOT_OK(Draw(Op::kWrite, id, &flip_bits, &torn_prefix));
  if (torn_prefix == 0) {
    return base_->WritePage(id, page);
  }
  // Torn write: only the first torn_prefix bytes reach the device, the
  // tail keeps its previous content — and the write still reports
  // success, exactly like a power cut between sector writes. Detectable
  // only by the page checksum on a later read.
  Page torn;
  if (!base_->ReadPage(id, &torn).ok()) {
    torn = Page{};  // extension write: the tail reads back as zeroes
  }
  std::memcpy(torn.bytes(), page.bytes(), torn_prefix);
  return base_->WritePage(id, torn);
}

Status FaultInjectionPager::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  int flip_bits;
  size_t torn_prefix;
  MDS_RETURN_NOT_OK(Draw(Op::kSync, kInvalidPageId, &flip_bits,
                         &torn_prefix));
  return base_->Sync();
}

void FaultInjectionPager::Reset(uint64_t fail_after) {
  std::lock_guard<std::mutex> lock(mu_);
  config_.fail_after = fail_after;
  ops_admitted_ = 0;
  pending_transients_.clear();
}

FaultStats FaultInjectionPager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// --- RetryingPager ---------------------------------------------------------

template <typename Fn>
Status RetryingPager::RunWithRetry(Fn&& fn) {
  Status status;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      BackoffSleep(options_.backoff_base_us, attempt - 1);
    }
    status = fn();
    if (!status.IsTransient()) return status;
  }
  exhausted_.fetch_add(1, std::memory_order_relaxed);
  return status;
}

Result<PageId> RetryingPager::AllocatePage() {
  PageId id = kInvalidPageId;
  Status status = RunWithRetry([&]() {
    Result<PageId> r = base_->AllocatePage();
    if (!r.ok()) return r.status();
    id = *r;
    return Status::OK();
  });
  if (!status.ok()) return status;
  return id;
}

Status RetryingPager::ReadPage(PageId id, Page* page) {
  return RunWithRetry([&]() { return base_->ReadPage(id, page); });
}

Status RetryingPager::WritePage(PageId id, const Page& page) {
  return RunWithRetry([&]() { return base_->WritePage(id, page); });
}

Status RetryingPager::Sync() {
  return RunWithRetry([&]() { return base_->Sync(); });
}

}  // namespace mds
