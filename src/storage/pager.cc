#include "storage/pager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mds {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

FilePager::~FilePager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<FilePager>> FilePager::Create(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot create pager file", path));
  }
  return std::unique_ptr<FilePager>(new FilePager(fd, path, 0));
}

Result<std::unique_ptr<FilePager>> FilePager::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("cannot open pager file", path));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("cannot stat pager file", path));
  }
  if (static_cast<uint64_t>(size) % kPageSize != 0) {
    ::close(fd);
    return Status::Corruption("pager file size not a multiple of page size: " +
                              path);
  }
  return std::unique_ptr<FilePager>(
      new FilePager(fd, path, static_cast<uint64_t>(size) / kPageSize));
}

Result<PageId> FilePager::AllocatePage() {
  // The append edge is the only operation two threads could collide on;
  // pread/pwrite of already-allocated pages need no lock.
  std::lock_guard<std::mutex> lock(append_mu_);
  Page zero;
  PageId id = num_pages_.load(std::memory_order_relaxed);
  ssize_t n = ::pwrite(fd_, zero.bytes(), kPageSize,
                       static_cast<off_t>(id * kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(ErrnoMessage("short write to pager file", path_));
  }
  num_pages_.store(id + 1, std::memory_order_release);
  return id;
}

Status FilePager::ReadPage(PageId id, Page* page) {
  if (id >= num_pages_.load(std::memory_order_acquire)) {
    return Status::OutOfRange("ReadPage: page id out of range");
  }
  ssize_t n = ::pread(fd_, page->bytes(), kPageSize,
                      static_cast<off_t>(id * kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(ErrnoMessage("short read from pager file", path_));
  }
  return Status::OK();
}

Status FilePager::WritePage(PageId id, const Page& page) {
  if (id >= num_pages_.load(std::memory_order_acquire)) {
    // Extension writes race with other extenders; take the append lock and
    // re-check. In-place writes (the common case) skip the lock entirely.
    std::lock_guard<std::mutex> lock(append_mu_);
    const uint64_t n_pages = num_pages_.load(std::memory_order_relaxed);
    if (id > n_pages) {
      return Status::OutOfRange("WritePage: page id beyond end");
    }
    ssize_t n = ::pwrite(fd_, page.bytes(), kPageSize,
                         static_cast<off_t>(id * kPageSize));
    if (n != static_cast<ssize_t>(kPageSize)) {
      return Status::IOError(ErrnoMessage("short write to pager file", path_));
    }
    if (id == n_pages) num_pages_.store(id + 1, std::memory_order_release);
    return Status::OK();
  }
  ssize_t n = ::pwrite(fd_, page.bytes(), kPageSize,
                       static_cast<off_t>(id * kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(ErrnoMessage("short write to pager file", path_));
  }
  return Status::OK();
}

Status FilePager::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fsync failed on", path_));
  }
  return Status::OK();
}

Result<PageId> MemPager::AllocatePage() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  pages_.push_back(std::make_unique<Page>());
  return PageId{pages_.size() - 1};
}

Status MemPager::ReadPage(PageId id, Page* page) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (id >= pages_.size()) {
    return Status::OutOfRange("ReadPage: page id out of range");
  }
  *page = *pages_[id];
  return Status::OK();
}

Status MemPager::WritePage(PageId id, const Page& page) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (id > pages_.size()) {
    return Status::OutOfRange("WritePage: page id beyond end");
  }
  if (id == pages_.size()) {
    pages_.push_back(std::make_unique<Page>(page));
  } else {
    *pages_[id] = page;
  }
  return Status::OK();
}

Status FaultInjectionPager::Tick() {
  // Atomic decrement-if-nonzero, so a budget of N admits exactly N
  // operations no matter how they interleave across threads.
  uint64_t budget = remaining_.load(std::memory_order_relaxed);
  do {
    if (budget == 0) {
      return Status::IOError("injected fault");
    }
  } while (!remaining_.compare_exchange_weak(budget, budget - 1,
                                             std::memory_order_relaxed));
  return Status::OK();
}

Result<PageId> FaultInjectionPager::AllocatePage() {
  MDS_RETURN_NOT_OK(Tick());
  return base_->AllocatePage();
}

Status FaultInjectionPager::ReadPage(PageId id, Page* page) {
  MDS_RETURN_NOT_OK(Tick());
  return base_->ReadPage(id, page);
}

Status FaultInjectionPager::WritePage(PageId id, const Page& page) {
  MDS_RETURN_NOT_OK(Tick());
  return base_->WritePage(id, page);
}

Status FaultInjectionPager::Sync() {
  MDS_RETURN_NOT_OK(Tick());
  return base_->Sync();
}

}  // namespace mds
