#ifndef MDS_STORAGE_CLUSTERED_INDEX_H_
#define MDS_STORAGE_CLUSTERED_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace mds {

/// Sparse index over a table whose rows were appended in nondecreasing
/// order of one int64 key column (a "clustered index" in the paper's SQL
/// Server sense). Stores the first key of each page; a key-range scan then
/// touches only pages that can contain qualifying rows and stops early.
///
/// Both the kd-tree's post-order `BETWEEN` leaf ranges (§3.2) and the
/// Voronoi cell tags (§3.4) use this access path.
class ClusteredKeyIndex {
 public:
  /// Scans the table once to record per-page first keys; fails with
  /// FailedPrecondition if the key column is not nondecreasing.
  static Result<ClusteredKeyIndex> Build(const Table* table, size_t key_col);

  /// Calls fn(row_id, RowRef) for every row whose key lies in
  /// [key_lo, key_hi]. Rows are visited in key order. The callback may
  /// return void or bool (false stops the scan).
  template <typename Fn>
  Status ScanKeyRange(int64_t key_lo, int64_t key_hi, Fn&& fn) const;

  /// Row-id interval [begin, end) of keys in [key_lo, key_hi], located by
  /// binary search over pages plus a bounded scan at the edges.
  Result<std::pair<uint64_t, uint64_t>> EqualRange(int64_t key_lo,
                                                   int64_t key_hi) const;

  size_t key_col() const { return key_col_; }

 private:
  ClusteredKeyIndex(const Table* table, size_t key_col)
      : table_(table), key_col_(key_col) {}

  /// First page that could contain `key` (its first_key <= key), by binary
  /// search over first_keys_.
  uint64_t FirstCandidatePage(int64_t key) const;

  const Table* table_;
  size_t key_col_;
  std::vector<int64_t> first_keys_;  // first key of each page
};

template <typename Fn>
Status ClusteredKeyIndex::ScanKeyRange(int64_t key_lo, int64_t key_hi,
                                       Fn&& fn) const {
  if (table_->num_rows() == 0 || key_lo > key_hi) return Status::OK();
  uint64_t page = FirstCandidatePage(key_lo);
  uint64_t begin = page * table_->rows_per_page();
  bool done = false;
  MDS_RETURN_NOT_OK(table_->ScanRange(
      begin, table_->num_rows(), [&](uint64_t row_id, RowRef ref) -> bool {
        int64_t k = ref.GetInt64(key_col_);
        if (k > key_hi) {
          done = true;
          return false;
        }
        if (k < key_lo) return true;
        if constexpr (std::is_void_v<decltype(fn(row_id, ref))>) {
          fn(row_id, ref);
          return true;
        } else {
          if (!fn(row_id, ref)) {
            done = true;
            return false;
          }
          return true;
        }
      }));
  (void)done;
  return Status::OK();
}

}  // namespace mds

#endif  // MDS_STORAGE_CLUSTERED_INDEX_H_
