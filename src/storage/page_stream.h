#ifndef MDS_STORAGE_PAGE_STREAM_H_
#define MDS_STORAGE_PAGE_STREAM_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"

namespace mds {

/// Byte-stream serialization over chained buffer-pool pages: the substrate
/// for persisting index structures next to their tables, so a database
/// file reopens with its indexes intact (the out-of-core property the
/// paper gets from SQL Server's catalog).
///
/// Page layout: [u64 next_page][u32 used][payload ...].
class PageStreamWriter {
 public:
  explicit PageStreamWriter(BufferPool* pool) : pool_(pool) {}

  /// Appends raw bytes.
  Status Write(const void* data, size_t len);

  /// Appends a trivially-copyable value.
  template <typename T>
  Status WriteValue(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Write(&v, sizeof(T));
  }

  /// Appends a length-prefixed vector of trivially-copyable elements.
  template <typename T>
  Status WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    MDS_RETURN_NOT_OK(WriteValue<uint64_t>(v.size()));
    return Write(v.data(), v.size() * sizeof(T));
  }

  /// Flushes the current page and returns the first page of the chain.
  Result<PageId> Finish();

 private:
  Status EnsurePage();

  BufferPool* pool_;
  PageId first_ = kInvalidPageId;
  PageId current_ = kInvalidPageId;
  PageId current_prev_ = kInvalidPageId;  // last flushed page, for chaining
  std::vector<uint8_t> buffer_;  // staged payload of the current page
  bool finished_ = false;

  static constexpr size_t kHeader = 12;
  static constexpr size_t kCapacity = kPageUsableSize - kHeader;
};

/// Reader for chains written by PageStreamWriter.
class PageStreamReader {
 public:
  PageStreamReader(BufferPool* pool, PageId first)
      : pool_(pool), next_(first) {}

  /// Reads exactly `len` bytes; fails with OutOfRange past the end.
  Status Read(void* out, size_t len);

  template <typename T>
  Result<T> ReadValue() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    MDS_RETURN_NOT_OK(Read(&v, sizeof(T)));
    return v;
  }

  /// Reads a vector written by WriteVector. `max_elements` guards against
  /// corrupted length prefixes.
  template <typename T>
  Result<std::vector<T>> ReadVector(uint64_t max_elements = (1ull << 32)) {
    MDS_ASSIGN_OR_RETURN(uint64_t n, ReadValue<uint64_t>());
    if (n > max_elements) {
      return Status::Corruption("PageStreamReader: implausible vector size");
    }
    std::vector<T> v(n);
    MDS_RETURN_NOT_OK(Read(v.data(), n * sizeof(T)));
    return v;
  }

 private:
  Status LoadNextPage();

  BufferPool* pool_;
  PageId next_;
  std::vector<uint8_t> buffer_;
  size_t pos_ = 0;

  static constexpr size_t kHeader = 12;
};

}  // namespace mds

#endif  // MDS_STORAGE_PAGE_STREAM_H_
