#ifndef MDS_STORAGE_VECTOR_CODEC_H_
#define MDS_STORAGE_VECTOR_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace mds {

/// Binary codecs for vector-valued columns, reproducing the §3.5 ablation.
///
/// The paper found SQL Server CLR UDTs with the generic BinaryFormatter
/// serializer too CPU-hungry and replaced them with a plain binary column
/// decoded by unsafe pointer copies, at ~20% scan overhead vs native
/// columns. RawVectorCodec is the unsafe-copy design point; TlvVectorCodec
/// emulates the self-describing, per-element-tagged format of a generic
/// serializer.

/// Fixed little-endian float array: [u32 count][count * f32].
class RawVectorCodec {
 public:
  /// Bytes needed for a vector of n floats.
  static size_t EncodedSize(size_t n) { return 4 + 4 * n; }

  /// Encodes into out (resized).
  static void Encode(const float* v, size_t n, std::vector<uint8_t>* out);

  /// Decodes from a buffer of `len` bytes. Fails with Corruption on
  /// malformed input.
  static Result<std::vector<float>> Decode(const uint8_t* data, size_t len);

  /// Zero-copy style decode into a caller buffer of capacity `cap` floats;
  /// returns the element count.
  static Result<size_t> DecodeInto(const uint8_t* data, size_t len, float* out,
                                   size_t cap);
};

/// Self-describing element-tagged format, one header string plus a
/// [tag u8][len u8][payload] record per element — the shape (and per-element
/// branching cost) of a generic object serializer.
class TlvVectorCodec {
 public:
  static size_t EncodedSize(size_t n);
  static void Encode(const float* v, size_t n, std::vector<uint8_t>* out);
  static Result<std::vector<float>> Decode(const uint8_t* data, size_t len);
};

}  // namespace mds

#endif  // MDS_STORAGE_VECTOR_CODEC_H_
