#include "storage/bplus_tree.h"

#include <algorithm>

#include "common/logging.h"

namespace mds {

namespace {

// Node accessors over a raw Page. Offsets per the layout in the header.
bool NodeIsLeaf(const Page& p) { return p.ReadAt<uint8_t>(0) != 0; }
void NodeSetLeaf(Page& p, bool leaf) {
  p.WriteAt<uint8_t>(0, leaf ? 1 : 0);
}
uint16_t NodeCount(const Page& p) { return p.ReadAt<uint16_t>(2); }
void NodeSetCount(Page& p, uint16_t c) { p.WriteAt<uint16_t>(2, c); }

// Leaf entries.
PageId LeafNext(const Page& p) { return p.ReadAt<PageId>(4); }
void LeafSetNext(Page& p, PageId id) { p.WriteAt<PageId>(4, id); }
size_t LeafEntryOffset(size_t i) { return BPlusTree::kLeafHeader + i * 16; }
int64_t LeafKey(const Page& p, size_t i) {
  return p.ReadAt<int64_t>(LeafEntryOffset(i));
}
uint64_t LeafValue(const Page& p, size_t i) {
  return p.ReadAt<uint64_t>(LeafEntryOffset(i) + 8);
}
void LeafSetEntry(Page& p, size_t i, int64_t key, uint64_t value) {
  p.WriteAt<int64_t>(LeafEntryOffset(i), key);
  p.WriteAt<uint64_t>(LeafEntryOffset(i) + 8, value);
}

// Internal entries.
PageId InternalChild0(const Page& p) { return p.ReadAt<PageId>(4); }
void InternalSetChild0(Page& p, PageId id) { p.WriteAt<PageId>(4, id); }
size_t InternalEntryOffset(size_t i) {
  return BPlusTree::kInternalHeader + i * 16;
}
int64_t InternalKey(const Page& p, size_t i) {
  return p.ReadAt<int64_t>(InternalEntryOffset(i));
}
PageId InternalChild(const Page& p, size_t i) {
  return p.ReadAt<PageId>(InternalEntryOffset(i) + 8);
}
void InternalSetEntry(Page& p, size_t i, int64_t key, PageId child) {
  p.WriteAt<int64_t>(InternalEntryOffset(i), key);
  p.WriteAt<PageId>(InternalEntryOffset(i) + 8, child);
}

// Child slot for `key` in an internal node: index into the child list of
// count+1 children (slot 0 = child0). Strict comparison so that the
// leftmost leaf that can hold duplicates of `key` is found; range scans
// then walk rightwards over the leaf chain.
size_t ChildSlot(const Page& p, int64_t key) {
  size_t lo = 0, hi = NodeCount(p);
  // First separator >= key; the child before it covers the leftmost `key`.
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (InternalKey(p, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;  // 0..count
}

PageId ChildAt(const Page& p, size_t slot) {
  return slot == 0 ? InternalChild0(p) : InternalChild(p, slot - 1);
}

}  // namespace

Result<BPlusTree> BPlusTree::Create(BufferPool* pool) {
  BPlusTree tree(pool);
  MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool->Allocate());
  Page& page = guard.MutablePage();
  NodeSetLeaf(page, true);
  NodeSetCount(page, 0);
  LeafSetNext(page, kInvalidPageId);
  tree.root_ = guard.id();
  tree.height_ = 1;
  return tree;
}

Result<BPlusTree> BPlusTree::BulkLoad(
    BufferPool* pool, const std::vector<std::pair<int64_t, uint64_t>>& pairs) {
  for (size_t i = 1; i < pairs.size(); ++i) {
    if (pairs[i].first < pairs[i - 1].first) {
      return Status::InvalidArgument("BPlusTree::BulkLoad: pairs not sorted");
    }
  }
  BPlusTree tree(pool);
  tree.num_entries_ = pairs.size();

  // Fill leaves ~90% full so subsequent inserts don't immediately split.
  const size_t per_leaf = std::max<size_t>(1, kLeafCapacity * 9 / 10);
  std::vector<std::pair<int64_t, PageId>> level;  // (first key, page)
  size_t i = 0;
  PageId prev_leaf = kInvalidPageId;
  if (pairs.empty()) return Create(pool);
  while (i < pairs.size()) {
    size_t n = std::min(per_leaf, pairs.size() - i);
    MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool->Allocate());
    Page& page = guard.MutablePage();
    NodeSetLeaf(page, true);
    NodeSetCount(page, static_cast<uint16_t>(n));
    LeafSetNext(page, kInvalidPageId);
    for (size_t j = 0; j < n; ++j) {
      LeafSetEntry(page, j, pairs[i + j].first, pairs[i + j].second);
    }
    if (prev_leaf != kInvalidPageId) {
      MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard prev, pool->Fetch(prev_leaf));
      LeafSetNext(prev.MutablePage(), guard.id());
    }
    level.emplace_back(pairs[i].first, guard.id());
    prev_leaf = guard.id();
    i += n;
  }

  // Build internal levels bottom-up.
  uint32_t height = 1;
  const size_t per_node = std::max<size_t>(2, kInternalCapacity * 9 / 10);
  while (level.size() > 1) {
    std::vector<std::pair<int64_t, PageId>> next_level;
    size_t j = 0;
    while (j < level.size()) {
      size_t n = std::min(per_node + 1, level.size() - j);  // children count
      if (level.size() - j - n == 1) --n;  // avoid a trailing 1-child node
      MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool->Allocate());
      Page& page = guard.MutablePage();
      NodeSetLeaf(page, false);
      NodeSetCount(page, static_cast<uint16_t>(n - 1));
      InternalSetChild0(page, level[j].second);
      for (size_t c = 1; c < n; ++c) {
        InternalSetEntry(page, c - 1, level[j + c].first, level[j + c].second);
      }
      next_level.emplace_back(level[j].first, guard.id());
      j += n;
    }
    level = std::move(next_level);
    ++height;
  }
  tree.root_ = level[0].second;
  tree.height_ = height;
  return tree;
}

Result<PageId> BPlusTree::FindLeaf(int64_t key) const {
  PageId node = root_;
  for (uint32_t level = height_; level > 1; --level) {
    MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool_->Fetch(node));
    const Page& page = guard.page();
    MDS_CHECK(!NodeIsLeaf(page));
    node = ChildAt(page, ChildSlot(page, key));
  }
  return node;
}

Status BPlusTree::Insert(int64_t key, uint64_t value) {
  MDS_ASSIGN_OR_RETURN(SplitResult split,
                       InsertRecursive(root_, height_, key, value));
  if (split.split) {
    // Grow a new root.
    MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool_->Allocate());
    Page& page = guard.MutablePage();
    NodeSetLeaf(page, false);
    NodeSetCount(page, 1);
    InternalSetChild0(page, root_);
    InternalSetEntry(page, 0, split.sep_key, split.right);
    root_ = guard.id();
    ++height_;
  }
  ++num_entries_;
  return Status::OK();
}

Result<BPlusTree::SplitResult> BPlusTree::InsertRecursive(PageId node,
                                                          uint32_t level,
                                                          int64_t key,
                                                          uint64_t value) {
  if (level == 1) {
    // Leaf insert.
    MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool_->Fetch(node));
    Page& page = guard.MutablePage();
    MDS_CHECK(NodeIsLeaf(page));
    uint16_t count = NodeCount(page);
    // Position: first entry with key > `key` (stable for duplicates).
    size_t pos = 0;
    {
      size_t lo = 0, hi = count;
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (LeafKey(page, mid) <= key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      pos = lo;
    }
    if (count < kLeafCapacity) {
      for (size_t j = count; j > pos; --j) {
        LeafSetEntry(page, j, LeafKey(page, j - 1), LeafValue(page, j - 1));
      }
      LeafSetEntry(page, pos, key, value);
      NodeSetCount(page, count + 1);
      return SplitResult{};
    }
    // Split: left keeps half, right gets the rest; insert into the proper
    // side afterwards (gather-into-vector keeps the logic simple).
    std::vector<std::pair<int64_t, uint64_t>> entries;
    entries.reserve(count + 1);
    for (size_t j = 0; j < count; ++j) {
      entries.emplace_back(LeafKey(page, j), LeafValue(page, j));
    }
    entries.insert(entries.begin() + pos, {key, value});
    size_t left_n = entries.size() / 2;

    MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard rguard, pool_->Allocate());
    Page& right = rguard.MutablePage();
    NodeSetLeaf(right, true);
    LeafSetNext(right, LeafNext(page));
    LeafSetNext(page, rguard.id());
    NodeSetCount(page, static_cast<uint16_t>(left_n));
    NodeSetCount(right, static_cast<uint16_t>(entries.size() - left_n));
    for (size_t j = 0; j < left_n; ++j) {
      LeafSetEntry(page, j, entries[j].first, entries[j].second);
    }
    for (size_t j = left_n; j < entries.size(); ++j) {
      LeafSetEntry(right, j - left_n, entries[j].first, entries[j].second);
    }
    SplitResult res;
    res.split = true;
    res.sep_key = entries[left_n].first;
    res.right = rguard.id();
    return res;
  }

  // Internal node.
  PageId child;
  size_t slot;
  {
    MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool_->Fetch(node));
    const Page& page = guard.page();
    MDS_CHECK(!NodeIsLeaf(page));
    slot = ChildSlot(page, key);
    child = ChildAt(page, slot);
  }
  MDS_ASSIGN_OR_RETURN(SplitResult child_split,
                       InsertRecursive(child, level - 1, key, value));
  if (!child_split.split) return SplitResult{};

  MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool_->Fetch(node));
  Page& page = guard.MutablePage();
  uint16_t count = NodeCount(page);
  if (count < kInternalCapacity) {
    for (size_t j = count; j > slot; --j) {
      InternalSetEntry(page, j, InternalKey(page, j - 1),
                       InternalChild(page, j - 1));
    }
    InternalSetEntry(page, slot, child_split.sep_key, child_split.right);
    NodeSetCount(page, count + 1);
    return SplitResult{};
  }
  // Split internal node.
  std::vector<std::pair<int64_t, PageId>> entries;  // separators + right child
  entries.reserve(count + 1);
  for (size_t j = 0; j < count; ++j) {
    entries.emplace_back(InternalKey(page, j), InternalChild(page, j));
  }
  entries.insert(entries.begin() + slot,
                 {child_split.sep_key, child_split.right});
  PageId child0 = InternalChild0(page);
  size_t mid = entries.size() / 2;  // separator promoted upward

  MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard rguard, pool_->Allocate());
  Page& right = rguard.MutablePage();
  NodeSetLeaf(right, false);
  NodeSetCount(page, static_cast<uint16_t>(mid));
  InternalSetChild0(page, child0);
  for (size_t j = 0; j < mid; ++j) {
    InternalSetEntry(page, j, entries[j].first, entries[j].second);
  }
  NodeSetCount(right, static_cast<uint16_t>(entries.size() - mid - 1));
  InternalSetChild0(right, entries[mid].second);
  for (size_t j = mid + 1; j < entries.size(); ++j) {
    InternalSetEntry(right, j - mid - 1, entries[j].first, entries[j].second);
  }
  SplitResult res;
  res.split = true;
  res.sep_key = entries[mid].first;
  res.right = rguard.id();
  return res;
}

Status BPlusTree::RangeLookup(
    int64_t lo, int64_t hi,
    const std::function<bool(int64_t, uint64_t)>& fn) const {
  if (lo > hi || num_entries_ == 0) return Status::OK();
  MDS_ASSIGN_OR_RETURN(PageId leaf, FindLeaf(lo));
  while (leaf != kInvalidPageId) {
    MDS_ASSIGN_OR_RETURN(BufferPool::PageGuard guard, pool_->Fetch(leaf));
    const Page& page = guard.page();
    uint16_t count = NodeCount(page);
    for (size_t j = 0; j < count; ++j) {
      int64_t k = LeafKey(page, j);
      if (k < lo) continue;
      if (k > hi) return Status::OK();
      if (!fn(k, LeafValue(page, j))) return Status::OK();
    }
    leaf = LeafNext(page);
  }
  return Status::OK();
}

Result<std::vector<uint64_t>> BPlusTree::Lookup(int64_t key) const {
  std::vector<uint64_t> out;
  MDS_RETURN_NOT_OK(RangeLookup(key, key, [&](int64_t, uint64_t v) {
    out.push_back(v);
    return true;
  }));
  return out;
}

}  // namespace mds
